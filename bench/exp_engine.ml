(* E19 — engine scheduling throughput.

   Every theorem reproduction and every adversary campaign funnels its
   work through Engine.run, so the statements-per-second of one engine
   is the repo-wide cost unit. This experiment pins that number down
   across the dimensions that stress the scheduler's per-decision work:

     N  processes            2, 8, 32, 128, 1024
     P  processors           1, 4 (cells with P > N are skipped)
     observer                off / full Hwf_obs.Metrics collector
                             (via the allocation-free Metrics.sink)

   Each cell runs the same two-band workload (processes round-robin
   over the processors, alternating between two priority levels, each
   performing 8-statement invocations until a shared statement target
   is met) under a seeded random policy, and reports wall-clock
   statements/sec. Results go to stdout and to BENCH_engine.json
   ({schema, target, cells[]}) so the perf trajectory of the scheduling
   loop is recorded per run; EXPERIMENTS.md (E19) keeps the pre/post
   numbers of the incremental-scheduler rewrite. *)

open Hwf_sim
open Hwf_workload

type cell = {
  n : int;
  processors : int;
  observer : bool;
  statements : int;
  seconds : float;
}

let stmts_per_sec c =
  if c.seconds > 0. then float_of_int c.statements /. c.seconds else 0.

(* Two priority bands, processors filled round-robin: exercises both the
   Axiom 1 ready-level comparisons and the Axiom 2 guard checks. *)
let layout ~n ~processors =
  List.init n (fun i -> (i mod processors, 1 + (i / processors mod 2)))

let workload ~n ~processors ~target =
  let config = Layout.to_config ~quantum:6 (layout ~n ~processors) in
  let inv_len = 8 in
  let invs = max 1 (target / n / inv_len) in
  let bodies () =
    Array.init n (fun _ () ->
        for _ = 1 to invs do
          Eff.invocation "w" (fun () ->
              for _ = 1 to inv_len do
                Eff.local "s"
              done)
        done)
  in
  (config, bodies)

let measure ~reps ~observer ~n ~processors ~target =
  let config, bodies = workload ~n ~processors ~target in
  (* Best-of-[reps] wall clock: the cell reports the engine's
     throughput, not the container's scheduling noise, so take the
     fastest trial (identical deterministic work each time). *)
  let best = ref None in
  for _ = 1 to reps do
    (* The observer cells feed the full metrics collector through the
       allocation-free sink path: the statement callback takes fields
       instead of a Trace.Stmt record, so the cell measures collection
       cost, not event-boxing cost. A fresh collector per trial — the
       shadow state must start from the run's initial priorities. *)
    let sink =
      if observer then Some (Hwf_obs.Metrics.sink (Hwf_obs.Metrics.collector config))
      else None
    in
    (* Collect before the timed region so a trial measures the engine,
       not the previous trial's floating garbage. *)
    Gc.full_major ();
    let t0 = Unix.gettimeofday () in
    let r =
      Engine.run ~step_limit:100_000_000 ?sink ~config ~policy:(Policy.random ~seed:7)
        (bodies ())
    in
    let seconds = Unix.gettimeofday () -. t0 in
    assert (Array.for_all Fun.id r.Engine.finished);
    let statements = Trace.statements r.Engine.trace in
    match !best with
    | Some (_, s) when s <= seconds -> ()
    | _ -> best := Some (statements, seconds)
  done;
  let statements, seconds = Option.get !best in
  { n; processors; observer; statements; seconds }

(* --self-check: run the same layout through the batched/cached engine
   and through the self-checking reference (quantum-burst batching and
   schedulable-list caching disabled, incremental structures audited)
   and require byte-identical traces and identical results. This is the
   differential gate behind the hot-path rewrite: any divergence is an
   engine bug, not a tolerable perf artifact. *)
let differential ~n ~processors ~target =
  let config, bodies = workload ~n ~processors ~target in
  let go ~self_check =
    Engine.run ~step_limit:100_000_000 ~self_check ~config
      ~policy:(Policy.random ~seed:7) (bodies ())
  in
  let fast = go ~self_check:false in
  let slow = go ~self_check:true in
  if
    Hwf_obs.Jsonl.trace_to_string fast.Engine.trace
    <> Hwf_obs.Jsonl.trace_to_string slow.Engine.trace
    || fast.Engine.stop <> slow.Engine.stop
    || fast.Engine.finished <> slow.Engine.finished
  then
    failwith
      (Printf.sprintf
         "E19 --self-check: batched engine diverges from the reference at N=%d P=%d" n
         processors)

let json_of_cells ~target ~truncated cells =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\n";
  Buffer.add_string b "  \"schema\": \"hwf-bench-engine/1\",\n";
  Printf.bprintf b "  \"target_statements\": %d,\n" target;
  Printf.bprintf b "  \"truncated\": %b,\n" truncated;
  Buffer.add_string b "  \"cells\": [\n";
  List.iteri
    (fun i c ->
      Printf.bprintf b
        "    {\"n\": %d, \"processors\": %d, \"observer\": %b, \"statements\": %d, \
         \"seconds\": %.6f, \"stmts_per_sec\": %.1f}%s\n"
        c.n c.processors c.observer c.statements c.seconds (stmts_per_sec c)
        (if i = List.length cells - 1 then "" else ","))
    cells;
  Buffer.add_string b "  ]\n}\n";
  Buffer.contents b

let run ~quick =
  Tbl.section "E19: engine scheduling throughput";
  let target = if quick then 24_000 else 120_000 in
  (* Graceful degradation: on SIGINT/SIGTERM the remaining cells are
     dropped at the next cell boundary and the export is marked
     truncated, instead of finishing a multi-second sweep the user has
     already asked to stop (docs/ROBUSTNESS.md). *)
  let params =
    List.concat_map
      (fun n ->
        List.concat_map
          (fun processors ->
            if processors > n then []
            else List.map (fun observer -> (n, processors, observer)) [ false; true ])
          [ 1; 4 ])
      [ 2; 8; 32; 128; 1024 ]
  in
  let reps = if quick then 1 else 5 in
  let cells =
    List.filter_map
      (fun (n, processors, observer) ->
        if Hwf_resil.Resil.interrupted () then None
        else Some (measure ~reps ~observer ~n ~processors ~target))
      params
  in
  let truncated = List.length cells < List.length params in
  Tbl.print
    ~title:
      (Printf.sprintf "statements/sec, ~%d statements per cell, best of %d (seed 7%s)"
         target reps
         (if quick then ", quick" else ""))
    ~header:[ "N"; "P"; "observer"; "statements"; "seconds"; "stmts/sec" ]
    (List.map
       (fun c ->
         [
           string_of_int c.n;
           string_of_int c.processors;
           (if c.observer then "metrics" else "off");
           string_of_int c.statements;
           Printf.sprintf "%.3f" c.seconds;
           Printf.sprintf "%.0f" (stmts_per_sec c);
         ])
       cells);
  let path = "BENCH_engine.json" in
  let oc = open_out path in
  output_string oc (json_of_cells ~target ~truncated cells);
  close_out oc;
  Tbl.note
    "wrote %s%s; the N=128 rows are the scheduling-loop stress cells the\n\
     incremental-structure rewrite is measured by (EXPERIMENTS.md, E19)."
    path
    (if truncated then " (TRUNCATED: interrupted mid-sweep)" else "");
  if !Jobs.self_check && not truncated then begin
    List.iter
      (fun n ->
        List.iter
          (fun processors ->
            if processors <= n && not (Hwf_resil.Resil.interrupted ()) then
              differential ~n ~processors ~target)
          [ 1; 4 ])
      [ 2; 8; 32; 128; 1024 ];
    Tbl.note
      "self-check: batched engine byte-identical to the reference on every layout"
  end;
  (* Throughput regression gate (CI): the headline cell is the one the
     tentpole targets — N=128, single processor, observer off. *)
  match !Jobs.min_stmts_per_sec with
  | Some floor when not truncated -> (
    match
      List.find_opt (fun c -> c.n = 128 && c.processors = 1 && not c.observer) cells
    with
    | Some c when stmts_per_sec c < floor ->
      failwith
        (Printf.sprintf
           "E19: headline cell (N=128, P=1, observer off) ran at %.0f stmts/s, below \
            the --min-stmts-per-sec floor %.0f"
           (stmts_per_sec c) floor)
    | Some c ->
      Tbl.note "headline cell %.0f stmts/s clears the --min-stmts-per-sec floor %.0f"
        (stmts_per_sec c) floor
    | None -> ())
  | _ -> ()
