(* E19 — engine scheduling throughput.

   Every theorem reproduction and every adversary campaign funnels its
   work through Engine.run, so the statements-per-second of one engine
   is the repo-wide cost unit. This experiment pins that number down
   across the dimensions that stress the scheduler's per-decision work:

     N  processes            2, 8, 32, 128
     P  processors           1, 4 (cells with P > N are skipped)
     observer                off / full Hwf_obs.Metrics collector

   Each cell runs the same two-band workload (processes round-robin
   over the processors, alternating between two priority levels, each
   performing 8-statement invocations until a shared statement target
   is met) under a seeded random policy, and reports wall-clock
   statements/sec. Results go to stdout and to BENCH_engine.json
   ({schema, target, cells[]}) so the perf trajectory of the scheduling
   loop is recorded per run; EXPERIMENTS.md (E19) keeps the pre/post
   numbers of the incremental-scheduler rewrite. *)

open Hwf_sim
open Hwf_workload

type cell = {
  n : int;
  processors : int;
  observer : bool;
  statements : int;
  seconds : float;
}

let stmts_per_sec c =
  if c.seconds > 0. then float_of_int c.statements /. c.seconds else 0.

(* Two priority bands, processors filled round-robin: exercises both the
   Axiom 1 ready-level comparisons and the Axiom 2 guard checks. *)
let layout ~n ~processors =
  List.init n (fun i -> (i mod processors, 1 + (i / processors mod 2)))

let measure ~observer ~n ~processors ~target =
  let config = Layout.to_config ~quantum:6 (layout ~n ~processors) in
  let inv_len = 8 in
  let invs = max 1 (target / n / inv_len) in
  let bodies =
    Array.init n (fun _ () ->
        for _ = 1 to invs do
          Eff.invocation "w" (fun () ->
              for _ = 1 to inv_len do
                Eff.local "s"
              done)
        done)
  in
  let obs =
    if observer then Some (Hwf_obs.Metrics.feed (Hwf_obs.Metrics.collector config))
    else None
  in
  let t0 = Unix.gettimeofday () in
  let r =
    Engine.run ~step_limit:100_000_000 ?observer:obs ~config
      ~policy:(Policy.random ~seed:7) bodies
  in
  let seconds = Unix.gettimeofday () -. t0 in
  assert (Array.for_all Fun.id r.Engine.finished);
  { n; processors; observer; statements = Trace.statements r.Engine.trace; seconds }

let json_of_cells ~target ~truncated cells =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\n";
  Buffer.add_string b "  \"schema\": \"hwf-bench-engine/1\",\n";
  Printf.bprintf b "  \"target_statements\": %d,\n" target;
  Printf.bprintf b "  \"truncated\": %b,\n" truncated;
  Buffer.add_string b "  \"cells\": [\n";
  List.iteri
    (fun i c ->
      Printf.bprintf b
        "    {\"n\": %d, \"processors\": %d, \"observer\": %b, \"statements\": %d, \
         \"seconds\": %.6f, \"stmts_per_sec\": %.1f}%s\n"
        c.n c.processors c.observer c.statements c.seconds (stmts_per_sec c)
        (if i = List.length cells - 1 then "" else ","))
    cells;
  Buffer.add_string b "  ]\n}\n";
  Buffer.contents b

let run ~quick =
  Tbl.section "E19: engine scheduling throughput";
  let target = if quick then 24_000 else 120_000 in
  (* Graceful degradation: on SIGINT/SIGTERM the remaining cells are
     dropped at the next cell boundary and the export is marked
     truncated, instead of finishing a multi-second sweep the user has
     already asked to stop (docs/ROBUSTNESS.md). *)
  let params =
    List.concat_map
      (fun n ->
        List.concat_map
          (fun processors ->
            if processors > n then []
            else List.map (fun observer -> (n, processors, observer)) [ false; true ])
          [ 1; 4 ])
      [ 2; 8; 32; 128 ]
  in
  let cells =
    List.filter_map
      (fun (n, processors, observer) ->
        if Hwf_resil.Resil.interrupted () then None
        else Some (measure ~observer ~n ~processors ~target))
      params
  in
  let truncated = List.length cells < List.length params in
  Tbl.print
    ~title:
      (Printf.sprintf "statements/sec, ~%d statements per cell (seed 7%s)" target
         (if quick then ", quick" else ""))
    ~header:[ "N"; "P"; "observer"; "statements"; "seconds"; "stmts/sec" ]
    (List.map
       (fun c ->
         [
           string_of_int c.n;
           string_of_int c.processors;
           (if c.observer then "metrics" else "off");
           string_of_int c.statements;
           Printf.sprintf "%.3f" c.seconds;
           Printf.sprintf "%.0f" (stmts_per_sec c);
         ])
       cells);
  let path = "BENCH_engine.json" in
  let oc = open_out path in
  output_string oc (json_of_cells ~target ~truncated cells);
  close_out oc;
  Tbl.note
    "wrote %s%s; the N=128 rows are the scheduling-loop stress cells the\n\
     incremental-structure rewrite is measured by (EXPERIMENTS.md, E19)."
    path
    (if truncated then " (TRUNCATED: interrupted mid-sweep)" else "")
