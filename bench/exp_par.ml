(* E17 — the domain-parallel speedup campaign.

   The three hot paths that lib/par parallelizes — schedule exploration
   (Explore.explore subtree fan-out over the work-stealing pool),
   fault-plan certification (Certify.certify cell distribution), and
   random volume testing — are each run at the campaign's worker count
   and grain, recording wall-clock, work units per second and the pool's
   steal count per cell.

   With --self-check each cell is additionally re-run at --jobs 1 on
   identical inputs, the two outcomes are compared field by field (the
   determinism contract of docs/PARALLELISM.md), and the per-cell
   speedup is derived; a divergence fails the harness. Without it the
   benchmark measures the pool alone — the sequential baseline costs as
   much as the campaign itself, so it is opt-in. --min-speedup S (with
   --self-check) turns the overall speedup into a regression gate: CI
   runs E17 with --jobs 4 --self-check --min-speedup 1.0.

   A sleep-set cross-check rides along: two exhaustive two-processor
   suites are explored with and without pruning (--no-dpor's
   Explore ~dpor:false), asserting identical verdicts and recording the
   run-count reduction. Results go to stdout as tables and to
   BENCH_par.json (schema: docs/OBSERVABILITY.md); on a single-core
   container the speedup hovers around 1.0x, on >= 4 cores the
   certification sweeps are expected to clear 2x. *)

open Hwf_sim
open Hwf_adversary
open Hwf_workload
open Hwf_faults

type cell = {
  name : string;
  units : int;  (* engine runs / plan cells completed *)
  par_s : float;
  steals : int;
  seq_s : float option;  (* --self-check only *)
  identical : bool option;  (* --self-check only *)
}

type dpor_check = {
  dname : string;
  runs_full : int;
  runs_pruned : int;
  pruned_branches : int;
  verdict_equal : bool;
}

let wall f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let speedup c =
  match c.seq_s with
  | Some s when c.par_s > 0. -> Some (s /. c.par_s)
  | _ -> None

let outcomes_identical (o1 : Explore.outcome) (o2 : Explore.outcome) =
  o1.Explore.runs = o2.Explore.runs
  && o1.Explore.exhaustive = o2.Explore.exhaustive
  && (match (o1.Explore.counterexample, o2.Explore.counterexample) with
     | None, None -> true
     | Some c1, Some c2 ->
       c1.Explore.message = c2.Explore.message
       && c1.Explore.decisions = c2.Explore.decisions
     | _ -> false)
  && o1.Explore.coverage = o2.Explore.coverage

let explore_cell ~jobs ~grain ~self_check ~name scenario =
  let stats = Explore.make_stats ~jobs scenario in
  let o2, par_s = wall (fun () -> Explore.explore ~jobs ?grain ~stats scenario) in
  let steals = Hwf_par.Pool.stats_steals (Explore.stats_pool stats) in
  let seq_s, identical =
    if not self_check then (None, None)
    else
      let o1, seq_s = wall (fun () -> Explore.explore ~jobs:1 scenario) in
      (Some seq_s, Some (outcomes_identical o1 o2))
  in
  { name; units = o2.Explore.runs; par_s; steals; seq_s; identical }

let certify_cell ~jobs ~grain ~self_check ~quick ~seed ~name make_subject =
  let subject = make_subject ?seed:(Some seed) () in
  let plans = Suite.campaign ~quick ~seed subject in
  let pool_stats = Hwf_par.Pool.make_stats ~jobs in
  let r2, par_s =
    wall (fun () -> Certify.certify ~jobs ?grain ~pool_stats subject plans)
  in
  let steals = Hwf_par.Pool.stats_steals pool_stats in
  let failure_key (f : Certify.failure) = (f.message, f.schedule, f.shrunk_from) in
  let seq_s, identical =
    if not self_check then (None, None)
    else
      let r1, seq_s = wall (fun () -> Certify.certify ~jobs:1 subject plans) in
      let same =
        r1.Certify.passed = r2.Certify.passed
        && r1.Certify.blocked = r2.Certify.blocked
        && r1.Certify.worst_own_steps = r2.Certify.worst_own_steps
        && List.map failure_key r1.Certify.failures
           = List.map failure_key r2.Certify.failures
        && r1.Certify.coverage = r2.Certify.coverage
      in
      (Some seq_s, Some same)
  in
  { name; units = List.length plans; par_s; steals; seq_s; identical }

let random_cell ~jobs ~grain ~self_check ~name ~runs ~seed scenario =
  let stats = Explore.make_stats ~jobs scenario in
  let o2, par_s =
    wall (fun () -> Explore.random_runs ~runs ~jobs ?grain ~stats ~seed scenario)
  in
  let steals = Hwf_par.Pool.stats_steals (Explore.stats_pool stats) in
  let seq_s, identical =
    if not self_check then (None, None)
    else
      let o1, seq_s = wall (fun () -> Explore.random_runs ~runs ~jobs:1 ~seed scenario) in
      ( Some seq_s,
        Some (o1.Explore.runs = o2.Explore.runs && o1.Explore.coverage = o2.Explore.coverage)
      )
  in
  { name; units = runs; par_s; steals; seq_s; identical }

(* ---- the sleep-set cross-check suites ----

   Exhaustive two-processor scenarios built from the simulator
   primitives: one with disjoint footprints (pruning collapses the
   interleaving lattice; the clean verdict must survive) and one with a
   genuine lost-update race (the counterexample must survive byte for
   byte). Small enough to enumerate in full both ways on every bench
   run. *)

let two_cpu ~name mk =
  let config = Layout.to_config ~quantum:4 [ (0, 1); (1, 1) ] in
  let make () =
    let programs, finals = mk () in
    let check (r : Engine.result) =
      if not (Array.for_all Fun.id r.Engine.finished) then
        Error "not all processes finished"
      else finals ()
    in
    Explore.{ programs; check }
  in
  Explore.{ name; config; make }

let disjoint_suite =
  two_cpu ~name:"2cpu disjoint counters" (fun () ->
      let a = Shared.make "a" 0 and b = Shared.make "b" 0 in
      let bump v = Shared.write v (Shared.read v + 1) in
      let prog v () = Eff.invocation "bump" (fun () -> bump v; bump v; bump v) in
      let finals () =
        if Shared.peek a = 3 && Shared.peek b = 3 then Ok () else Error "bad finals"
      in
      ([| prog a; prog b |], finals))

let racy_suite =
  two_cpu ~name:"2cpu racy counter" (fun () ->
      let x = Shared.make "x" 0 in
      let incr () =
        let v = Shared.read x in
        Shared.write x (v + 1)
      in
      let prog () = Eff.invocation "incr" incr in
      let finals () =
        let v = Shared.peek x in
        if v = 2 then Ok () else Error (Fmt.str "lost update: x=%d" v)
      in
      ([| prog; prog |], finals))

let dpor_cell scenario =
  let stats = Explore.make_stats ~jobs:1 scenario in
  let full = Explore.explore ~dpor:false scenario in
  let pruned = Explore.explore ~stats scenario in
  let verdict_equal =
    full.Explore.exhaustive = pruned.Explore.exhaustive
    &&
    match (full.Explore.counterexample, pruned.Explore.counterexample) with
    | None, None -> true
    | Some c1, Some c2 ->
      c1.Explore.message = c2.Explore.message
      && c1.Explore.decisions = c2.Explore.decisions
    | _ -> false
  in
  {
    dname = scenario.Explore.name;
    runs_full = full.Explore.runs;
    runs_pruned = pruned.Explore.runs;
    pruned_branches = Explore.stats_pruned stats;
    verdict_equal;
  }

(* ---- output ---- *)

let json_of ~jobs ~grain ~self_check cells dpor =
  let b = Buffer.create 1024 in
  let total_par = List.fold_left (fun a c -> a +. c.par_s) 0. cells in
  let opt_f = function None -> "null" | Some v -> Printf.sprintf "%.6f" v in
  let opt_b = function None -> "null" | Some v -> string_of_bool v in
  let opt_speedup c =
    match speedup c with None -> "null" | Some s -> Printf.sprintf "%.3f" s
  in
  Buffer.add_string b "{\n";
  Printf.bprintf b "  \"jobs\": %d,\n" jobs;
  Printf.bprintf b "  \"grain\": %s,\n"
    (match grain with None -> "\"auto\"" | Some g -> string_of_int g);
  Printf.bprintf b "  \"recommended_domains\": %d,\n" (Hwf_par.Pool.default_jobs ());
  Printf.bprintf b "  \"self_check\": %b,\n" self_check;
  Buffer.add_string b "  \"cells\": [\n";
  List.iteri
    (fun i c ->
      Printf.bprintf b
        "    {\"name\": %S, \"units\": %d, \"par_seconds\": %.6f, \
         \"par_units_per_sec\": %.1f, \"steals\": %d, \"seq_seconds\": %s, \
         \"speedup\": %s, \"identical\": %s}%s\n"
        c.name c.units c.par_s
        (if c.par_s > 0. then float_of_int c.units /. c.par_s else 0.)
        c.steals (opt_f c.seq_s) (opt_speedup c) (opt_b c.identical)
        (if i = List.length cells - 1 then "" else ","))
    cells;
  Buffer.add_string b "  ],\n";
  Buffer.add_string b "  \"dpor\": [\n";
  List.iteri
    (fun i d ->
      Printf.bprintf b
        "    {\"suite\": %S, \"runs_full\": %d, \"runs_pruned\": %d, \
         \"pruned_branches\": %d, \"verdict_equal\": %b}%s\n"
        d.dname d.runs_full d.runs_pruned d.pruned_branches d.verdict_equal
        (if i = List.length dpor - 1 then "" else ","))
    dpor;
  Buffer.add_string b "  ],\n";
  Printf.bprintf b "  \"total_par_seconds\": %.6f,\n" total_par;
  (match
     List.fold_left
       (fun acc c -> match (acc, c.seq_s) with Some a, Some s -> Some (a +. s) | _ -> None)
       (Some 0.) cells
   with
  | Some total_seq ->
    Printf.bprintf b "  \"total_seq_seconds\": %.6f,\n" total_seq;
    Printf.bprintf b "  \"overall_speedup\": %.3f\n"
      (if total_par > 0. then total_seq /. total_par else 1.)
  | None ->
    Buffer.add_string b "  \"total_seq_seconds\": null,\n";
    Buffer.add_string b "  \"overall_speedup\": null\n");
  Buffer.add_string b "}\n";
  Buffer.contents b

let run ~quick =
  let jobs = max 1 !Jobs.n in
  let grain = !Jobs.grain in
  let self_check = !Jobs.self_check in
  Tbl.section
    (Printf.sprintf "E17: domain-parallel speedup campaign (jobs=%d, grain=%s%s)"
       jobs
       (match grain with None -> "auto" | Some g -> string_of_int g)
       (if self_check then ", self-check" else ""));
  let seed = 41 in
  let fig3_scn pris quantum =
    (Scenarios.consensus ~name:"e17.f3" ~impl:Scenarios.Fig3 ~quantum
       ~layout:(List.map (fun p -> (0, p)) pris))
      .Scenarios.scenario
  in
  let cells =
    [
      explore_cell ~jobs ~grain ~self_check ~name:"explore fig3 Q=8 3p"
        (fig3_scn [ 1; 1; 1 ] 8);
      random_cell ~jobs ~grain ~self_check ~name:"random fig3 Q=8 3p"
        ~runs:(if quick then 400 else 2_000)
        ~seed (fig3_scn [ 1; 1; 1 ] 8);
      certify_cell ~jobs ~grain ~self_check ~quick ~seed
        ~name:"certify fig3 (E16 sweep)" Suite.fig3;
      certify_cell ~jobs ~grain ~self_check ~quick ~seed
        ~name:"certify fig5 (E16 sweep)" Suite.fig5;
      certify_cell ~jobs ~grain ~self_check ~quick ~seed
        ~name:"certify universal (E16 sweep)" Suite.universal;
    ]
  in
  let dpor = [ dpor_cell disjoint_suite; dpor_cell racy_suite ] in
  let dash = function None -> "-" | Some s -> s in
  Tbl.print
    ~title:
      (Printf.sprintf "jobs=%d on identical inputs (seed %d%s)" jobs seed
         (if quick then ", quick" else ""))
    ~header:[ "cell"; "units"; "par s"; "units/s"; "steals"; "seq s"; "speedup"; "identical" ]
    (List.map
       (fun c ->
         [
           c.name;
           string_of_int c.units;
           Printf.sprintf "%.3f" c.par_s;
           Printf.sprintf "%.0f"
             (if c.par_s > 0. then float_of_int c.units /. c.par_s else 0.);
           string_of_int c.steals;
           dash (Option.map (Printf.sprintf "%.3f") c.seq_s);
           dash (Option.map (Printf.sprintf "%.2fx") (speedup c));
           dash (Option.map string_of_bool c.identical);
         ])
       cells);
  Tbl.print ~title:"sleep-set pruning cross-check (dpor vs --no-dpor)"
    ~header:[ "suite"; "runs full"; "runs pruned"; "branches cut"; "verdict equal" ]
    (List.map
       (fun d ->
         [
           d.dname;
           string_of_int d.runs_full;
           string_of_int d.runs_pruned;
           string_of_int d.pruned_branches;
           string_of_bool d.verdict_equal;
         ])
       dpor);
  let path = "BENCH_par.json" in
  let oc = open_out path in
  output_string oc (json_of ~jobs ~grain ~self_check cells dpor);
  close_out oc;
  Tbl.note
    "wrote %s; speedup scales with cores (expect >= 2x on >= 4 cores for\n\
     the certification sweeps; ~1x is normal on a single-core container).\n\
     Pass --self-check to re-run every cell at jobs=1 and verify the\n\
     determinism contract of docs/PARALLELISM.md; --min-speedup S gates on\n\
     the overall speedup."
    path;
  if List.exists (fun d -> not d.verdict_equal) dpor then
    failwith "E17: sleep-set pruning changed a verdict";
  if self_check then begin
    if List.exists (fun c -> c.identical = Some false) cells then
      failwith "E17: a parallel outcome diverged from the sequential one";
    match !Jobs.min_speedup with
    | None -> ()
    | Some m ->
      let total_seq =
        List.fold_left (fun a c -> a +. Option.value ~default:0. c.seq_s) 0. cells
      in
      let total_par = List.fold_left (fun a c -> a +. c.par_s) 0. cells in
      let overall = if total_par > 0. then total_seq /. total_par else 1. in
      if overall < m then
        failwith
          (Printf.sprintf "E17: overall speedup %.3f below the --min-speedup gate %.2f"
             overall m)
  end
