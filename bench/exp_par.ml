(* E17 — the domain-parallel speedup campaign.

   The three hot paths that lib/par parallelizes — schedule exploration
   (Explore.explore subtree fan-out), fault-plan certification
   (Certify.certify cell distribution), and random volume testing — are
   each run twice on identical inputs: once at --jobs 1 and once at the
   campaign's worker count. Per cell we record wall-clock, work units
   per second, the speedup, and whether the two outcomes were identical
   (they must be: the determinism contract of docs/PARALLELISM.md is
   checked here on every bench run, not just in the test suite).

   Results go to stdout as a table and to BENCH_par.json as a
   machine-readable record {jobs, cores, cells[], overall_speedup} for
   the speedup tables in the docs and for CI trending. On a single-core
   container the speedup hovers around 1.0x (the contract check still
   bites); on a >= 4-core machine the E16-style certification sweep is
   expected to clear 2x. *)

open Hwf_adversary
open Hwf_workload
open Hwf_faults

type cell = {
  name : string;
  units : int;  (* engine runs / plan cells completed *)
  seq_s : float;
  par_s : float;
  identical : bool;
}

let wall f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let speedup c = if c.par_s > 0. then c.seq_s /. c.par_s else 1.

let explore_cell ~jobs ~name scenario =
  let o1, seq_s = wall (fun () -> Explore.explore ~jobs:1 scenario) in
  let o2, par_s = wall (fun () -> Explore.explore ~jobs scenario) in
  let identical =
    o1.Explore.runs = o2.Explore.runs
    && o1.Explore.exhaustive = o2.Explore.exhaustive
    && (match (o1.Explore.counterexample, o2.Explore.counterexample) with
       | None, None -> true
       | Some c1, Some c2 ->
         c1.Explore.message = c2.Explore.message
         && c1.Explore.decisions = c2.Explore.decisions
       | _ -> false)
    && o1.Explore.coverage = o2.Explore.coverage
  in
  { name; units = o1.Explore.runs; seq_s; par_s; identical }

let certify_cell ~jobs ~quick ~seed ~name make_subject =
  let subject = make_subject ?seed:(Some seed) () in
  let plans = Suite.campaign ~quick ~seed subject in
  let r1, seq_s = wall (fun () -> Certify.certify ~jobs:1 subject plans) in
  let r2, par_s = wall (fun () -> Certify.certify ~jobs subject plans) in
  let failure_key (f : Certify.failure) = (f.message, f.schedule, f.shrunk_from) in
  let identical =
    r1.Certify.passed = r2.Certify.passed
    && r1.Certify.blocked = r2.Certify.blocked
    && r1.Certify.worst_own_steps = r2.Certify.worst_own_steps
    && List.map failure_key r1.Certify.failures
       = List.map failure_key r2.Certify.failures
    && r1.Certify.coverage = r2.Certify.coverage
  in
  { name; units = List.length plans; seq_s; par_s; identical }

let random_cell ~jobs ~name ~runs ~seed scenario =
  let o1, seq_s = wall (fun () -> Explore.random_runs ~runs ~jobs:1 ~seed scenario) in
  let o2, par_s = wall (fun () -> Explore.random_runs ~runs ~jobs ~seed scenario) in
  let identical =
    o1.Explore.runs = o2.Explore.runs
    && o1.Explore.coverage = o2.Explore.coverage
  in
  { name; units = runs; seq_s; par_s; identical }

let json_of_cells ~jobs cells =
  let b = Buffer.create 1024 in
  let total_seq = List.fold_left (fun a c -> a +. c.seq_s) 0. cells in
  let total_par = List.fold_left (fun a c -> a +. c.par_s) 0. cells in
  Buffer.add_string b "{\n";
  Printf.bprintf b "  \"jobs\": %d,\n" jobs;
  Printf.bprintf b "  \"recommended_domains\": %d,\n" (Hwf_par.Pool.default_jobs ());
  Buffer.add_string b "  \"cells\": [\n";
  List.iteri
    (fun i c ->
      Printf.bprintf b
        "    {\"name\": %S, \"units\": %d, \"seq_seconds\": %.6f, \"par_seconds\": \
         %.6f, \"seq_units_per_sec\": %.1f, \"par_units_per_sec\": %.1f, \
         \"speedup\": %.3f, \"identical\": %b}%s\n"
        c.name c.units c.seq_s c.par_s
        (if c.seq_s > 0. then float_of_int c.units /. c.seq_s else 0.)
        (if c.par_s > 0. then float_of_int c.units /. c.par_s else 0.)
        (speedup c) c.identical
        (if i = List.length cells - 1 then "" else ","))
    cells;
  Buffer.add_string b "  ],\n";
  Printf.bprintf b "  \"total_seq_seconds\": %.6f,\n" total_seq;
  Printf.bprintf b "  \"total_par_seconds\": %.6f,\n" total_par;
  Printf.bprintf b "  \"overall_speedup\": %.3f\n"
    (if total_par > 0. then total_seq /. total_par else 1.);
  Buffer.add_string b "}\n";
  Buffer.contents b

let run ~quick =
  let jobs = max 1 !Jobs.n in
  Tbl.section
    (Printf.sprintf "E17: domain-parallel speedup campaign (jobs=%d)" jobs);
  let seed = 41 in
  let fig3_scn pris quantum =
    (Scenarios.consensus ~name:"e17.f3" ~impl:Scenarios.Fig3 ~quantum
       ~layout:(List.map (fun p -> (0, p)) pris))
      .Scenarios.scenario
  in
  let cells =
    [
      explore_cell ~jobs ~name:"explore fig3 Q=8 3p" (fig3_scn [ 1; 1; 1 ] 8);
      random_cell ~jobs ~name:"random fig3 Q=8 3p"
        ~runs:(if quick then 400 else 2_000)
        ~seed (fig3_scn [ 1; 1; 1 ] 8);
      certify_cell ~jobs ~quick ~seed ~name:"certify fig3 (E16 sweep)" Suite.fig3;
      certify_cell ~jobs ~quick ~seed ~name:"certify fig5 (E16 sweep)" Suite.fig5;
      certify_cell ~jobs ~quick ~seed ~name:"certify universal (E16 sweep)"
        Suite.universal;
    ]
  in
  Tbl.print
    ~title:
      (Printf.sprintf "jobs=1 vs jobs=%d on identical inputs (seed %d%s)" jobs seed
         (if quick then ", quick" else ""))
    ~header:[ "cell"; "units"; "seq s"; "par s"; "speedup"; "identical" ]
    (List.map
       (fun c ->
         [
           c.name;
           string_of_int c.units;
           Printf.sprintf "%.3f" c.seq_s;
           Printf.sprintf "%.3f" c.par_s;
           Printf.sprintf "%.2fx" (speedup c);
           string_of_bool c.identical;
         ])
       cells);
  let path = "BENCH_par.json" in
  let oc = open_out path in
  output_string oc (json_of_cells ~jobs cells);
  close_out oc;
  Tbl.note
    "wrote %s; speedup scales with cores (expect >= 2x on >= 4 cores for\n\
     the certification sweeps; ~1x is normal on a single-core container).\n\
     'identical' re-checks the determinism contract of docs/PARALLELISM.md\n\
     on every bench run."
    path;
  if List.exists (fun c -> not c.identical) cells then
    failwith "E17: a parallel outcome diverged from the sequential one"
