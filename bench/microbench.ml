(* Bechamel wrapper: run staged thunks and print ns/run (OLS estimate on
   the monotonic clock). *)
open Bechamel
open Toolkit

let run_tests ~title tests =
  let test = Test.make_grouped ~name:title ~fmt:"%s/%s" tests in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:true () in
  let raw = Benchmark.all cfg instances test in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        let est =
          match Analyze.OLS.estimates ols with
          | Some (t :: _) -> Printf.sprintf "%.0f" t
          | Some [] | None -> "n/a"
        in
        let r2 =
          match Analyze.OLS.r_square ols with
          | Some r -> Printf.sprintf "%.4f" r
          | None -> "n/a"
        in
        [ name; est; r2 ] :: acc)
      results []
    |> List.sort compare
  in
  Tbl.print ~title:(title ^ " (wall-clock of the simulated run)")
    ~header:[ "benchmark"; "ns/run"; "r^2" ] rows

let staged name f = Test.make ~name (Staged.stage f)
