(* Benchmark and experiment harness: one entry per paper table/figure
   (see DESIGN.md's per-experiment index and EXPERIMENTS.md for the
   recorded results), plus a bechamel timing suite for the core
   operations.

   Usage:
     dune exec bench/main.exe                 -- all experiments, quick
     dune exec bench/main.exe -- --full       -- larger trial counts
     dune exec bench/main.exe -- table1 thm3  -- selected experiments
     dune exec bench/main.exe -- timing       -- bechamel suite only
     dune exec bench/main.exe -- --csv ...    -- tables as CSV blocks
     dune exec bench/main.exe -- faults --checkpoint B [--resume]
                                              -- E16 cell journaling
     dune exec bench/main.exe -- par --jobs 4 --self-check [--grain G]
                  [--min-speedup S]           -- E17 with the determinism
                                                 re-check + speedup gate
     dune exec bench/main.exe -- engine --self-check
                  [--min-stmts-per-sec F]     -- E19 with the batched-vs-
                                                 reference differential and
                                                 the throughput floor *)

open Hwf_sim
open Hwf_workload

let experiments : (string * string * (quick:bool -> unit)) list =
  [
    ("table1", "E1: Table 1 universality thresholds", Exp_table1.run);
    ("figs12", "E2: Figs 1-2 interleaving diagrams", Exp_figs12.run);
    ("thm1", "E3: Theorem 1 (Fig 3 uniprocessor consensus)", Exp_thm1.run);
    ("thm2", "E4: Theorem 2 (Fig 5 hybrid C&S, O(V))", Exp_thm2.run);
    ("thm4", "E5: Theorem 4 (Fig 7/8 multiprocessor consensus)", Exp_thm4.run);
    ("thm3", "E6: Theorem 3 lower bound (Figs 6/10)", Exp_thm3.run);
    ("lemma3", "E7: Lemmas 2/3 access-failure accounting", Exp_lemma3.run);
    ("fair", "E8: Fig 9 fair scheduling", Exp_fair.run);
    ("complexity", "E9: polynomial vs exponential baseline", Exp_complexity.run);
    ("universal", "E10: universal construction objects", Exp_universal.run);
    ("axiom2", "E11: necessity of Axiom 2", Exp_axiom2.run);
    ("modes", "E12: pure-priority / pure-quantum modes", Exp_modes.run);
    ("dynamic", "E13: dynamic priorities and renaming (Sec 5)", Exp_dynamic.run);
    ("time", "E14: the time model (Tmax/Tmin of Table 1)", Exp_time.run);
    ("crash", "E15: halting failures / wait-freedom", Exp_crash.run);
    ("faults", "E16: fault-injection campaigns / wait-freedom certifier", Exp_faults.run);
    ("par", "E17: domain-parallel speedup campaign (BENCH_par.json)", Exp_par.run);
    ("obs", "E18: observability overhead (observer hook on vs off)", Exp_obs.run);
    ("engine", "E19: engine scheduling throughput (BENCH_engine.json)", Exp_engine.run);
    ("sched", "E20: randomized-scheduler bug-finding power (BENCH_sched.json)", Exp_sched.run);
  ]

(* Bechamel micro-benchmarks: wall-clock cost of simulated operations. *)
let timing () =
  let uni_consensus () =
    let config = Layout.to_config ~quantum:8 [ (0, 1); (0, 1) ] in
    let obj = Hwf_core.Uni_consensus.make "c" in
    let bodies =
      Array.init 2 (fun pid () ->
          Eff.invocation "d" (fun () -> ignore (Hwf_core.Uni_consensus.decide obj pid)))
    in
    ignore (Engine.run ~config ~policy:Policy.first bodies)
  in
  let q_cas () =
    let config = Layout.to_config ~quantum:64 [ (0, 1); (0, 1) ] in
    let obj = Hwf_core.Q_cas.make "x" 0 in
    let bodies =
      Array.init 2 (fun pid () ->
          Eff.invocation "cas" (fun () ->
              ignore (Hwf_core.Q_cas.cas obj ~who:pid ~expected:0 ~desired:pid)))
    in
    ignore (Engine.run ~config ~policy:(Policy.random ~seed:1) bodies)
  in
  let hybrid_cas v () =
    let layout = List.init v (fun i -> (0, i + 1)) in
    let config = Layout.to_config ~quantum:600 layout in
    let obj = Hwf_core.Hybrid_cas.make ~config ~name:"o" ~init:0 in
    let bodies =
      Array.init v (fun pid () ->
          Eff.invocation "cas" (fun () ->
              ignore (Hwf_core.Hybrid_cas.cas obj ~pid ~expected:0 ~desired:pid)))
    in
    ignore (Engine.run ~config ~policy:(Policy.random ~seed:2) bodies)
  in
  let multi_consensus () =
    let layout = Layout.uniform ~processors:2 ~per_processor:2 in
    let config = Layout.to_config ~quantum:4000 layout in
    let obj = Hwf_core.Multi_consensus.make ~config ~name:"mc" ~consensus_number:2 () in
    let bodies =
      Array.init 4 (fun pid () ->
          Eff.invocation "d" (fun () ->
              ignore (Hwf_core.Multi_consensus.decide obj ~pid pid)))
    in
    ignore (Engine.run ~step_limit:8_000_000 ~config ~policy:(Policy.random ~seed:3) bodies)
  in
  let universal_counter () =
    let layout = [ (0, 1); (0, 1); (0, 2) ] in
    let config = Layout.to_config ~quantum:3000 layout in
    let c =
      Hwf_core.Wf_objects.counter ~name:"c" ~n:3
        ~factory:(Hwf_core.Wf_objects.uni_factory ())
    in
    let bodies =
      Array.init 3 (fun pid () ->
          Eff.invocation "i" (fun () -> ignore (Hwf_core.Wf_objects.incr c ~pid)))
    in
    ignore (Engine.run ~step_limit:4_000_000 ~config ~policy:(Policy.random ~seed:4) bodies)
  in
  Microbench.run_tests ~title:"core operations"
    [
      Microbench.staged "fig3-consensus-2p" uni_consensus;
      Microbench.staged "q-cas-2p" q_cas;
      Microbench.staged "fig5-cas-v1" (hybrid_cas 1);
      Microbench.staged "fig5-cas-v4" (hybrid_cas 4);
      Microbench.staged "fig7-consensus-p2c2" multi_consensus;
      Microbench.staged "universal-counter-3p" universal_counter;
    ]

(* Pull "--jobs N" out of the argument list (the remaining args keep
   their simple flag/experiment-name shape). *)
let rec extract_jobs = function
  | [] -> ([], None)
  | "--jobs" :: n :: rest ->
    let args, _ = extract_jobs rest in
    (args, int_of_string_opt n)
  | a :: rest ->
    let args, j = extract_jobs rest in
    (a :: args, j)

(* Same shape for the structured-export sinks ("--trace-out F",
   "--metrics-out F"); see Exp_obs.export. *)
let rec extract_opt key = function
  | [] -> ([], None)
  | k :: v :: rest when k = key ->
    let args, _ = extract_opt key rest in
    (args, Some v)
  | a :: rest ->
    let args, v = extract_opt key rest in
    (a :: args, v)

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let args, jobs = extract_jobs args in
  let args, trace_out = extract_opt "--trace-out" args in
  let args, metrics_out = extract_opt "--metrics-out" args in
  let args, checkpoint = extract_opt "--checkpoint" args in
  let args, grain = extract_opt "--grain" args in
  let args, min_speedup = extract_opt "--min-speedup" args in
  let args, min_stmts_per_sec = extract_opt "--min-stmts-per-sec" args in
  Jobs.n := (match jobs with Some j when j >= 1 -> j | _ -> 1);
  Jobs.checkpoint := checkpoint;
  Jobs.resume := List.mem "--resume" args;
  Jobs.grain :=
    (match Option.bind grain int_of_string_opt with
    | Some g when g >= 1 -> Some g
    | _ -> None);
  Jobs.self_check := List.mem "--self-check" args;
  Jobs.min_speedup := Option.bind min_speedup float_of_string_opt;
  Jobs.min_stmts_per_sec := Option.bind min_stmts_per_sec float_of_string_opt;
  let full = List.mem "--full" args in
  Tbl.csv_mode := List.mem "--csv" args;
  let quick = not full in
  let selected = List.filter (fun a -> not (String.length a > 1 && a.[0] = '-')) args in
  let want name = selected = [] || List.mem name selected in
  (* SIGINT/SIGTERM stop the harness at the next cell boundary: the
     running experiment flushes a truncated partial result (E16's
     checkpoints let --resume finish it later) and the process exits 2
     instead of dying mid-write (docs/ROBUSTNESS.md). *)
  Hwf_resil.Resil.install_interrupt_handlers ();
  let interrupted () = Hwf_resil.Resil.interrupted () in
  Printf.printf
    "hybridwf experiment harness (%s mode, jobs=%d)\nPaper: Anderson & Moir, PODC 1999\n"
    (if quick then "quick" else "full")
    !Jobs.n;
  List.iter
    (fun (name, _desc, run) ->
      if want name && name <> "timing" && not (interrupted ()) then run ~quick)
    experiments;
  if (selected = [] || List.mem "timing" selected) && not (interrupted ()) then begin
    Tbl.section "timing (bechamel)";
    timing ()
  end;
  Exp_obs.export ~trace_out ~metrics_out;
  if interrupted () then begin
    Printf.printf
      "\nInterrupted: remaining experiments skipped; partial results are\n\
       marked truncated (rerun with --checkpoint/--resume to finish E16).\n";
    exit Hwf_resil.Resil.exit_harness
  end;
  Printf.printf "\nAll selected experiments completed.\n"
