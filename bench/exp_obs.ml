(* E18 — observability overhead.

   The engine's observer hook must be free when no sink is configured:
   the only cost is one match on an option per recorded event. This
   experiment measures that claim the same way E17 measures the
   parallel contract — on every bench run, not just once. Three
   configurations execute the identical workload (same config, policy
   seed and programs, so the schedules are statement-for-statement
   equal):

     off       engine run with no observer installed (the default)
     count     a minimal observer (one int incr per event)
     metrics   the full Hwf_obs.Metrics collector

   Reported per configuration: mean wall-clock per run and the
   overhead relative to `off`. The `count` row isolates the hook
   dispatch itself; `metrics` adds the per-event accounting. Numbers
   are recorded in EXPERIMENTS.md (E18).

   This module also hosts the bench harness's structured-export demo:
   `bench/main.exe --trace-out F / --metrics-out F` writes a canonical
   deterministic run (Fig. 3, quantum 8, two equal-priority processes,
   first-fit policy) through the same JSONL writers the CLI uses. *)

open Hwf_sim
open Hwf_workload

let wall f =
  let t0 = Unix.gettimeofday () in
  f ();
  Unix.gettimeofday () -. t0

(* One workload execution; identical schedule in all configurations
   (the observer cannot influence scheduling). *)
let one_run ?observer () =
  let layout = [ (0, 1); (0, 1); (0, 2) ] in
  let config = Layout.to_config ~quantum:6 layout in
  let script = Scenarios.random_script ~seed:11 ~n:3 ~ops_per:4 in
  let b = Scenarios.hybrid_cas ~name:"e18" ~quantum:6 ~layout ~script in
  let inst = b.Hwf_adversary.Explore.make () in
  ignore
    (Engine.run ~step_limit:4_000_000 ?observer ~config ~policy:(Policy.random ~seed:5)
       inst.Hwf_adversary.Explore.programs)

let run ~quick =
  Tbl.section "E18: observability overhead (observer hook on vs off)";
  let reps = if quick then 30 else 200 in
  let timed mk =
    one_run ?observer:(mk ()) ();
    (* warm-up *)
    let t = wall (fun () -> for _ = 1 to reps do one_run ?observer:(mk ()) () done) in
    t /. float_of_int reps
  in
  let off = timed (fun () -> None) in
  let counter = ref 0 in
  let count = timed (fun () -> Some (fun _ -> incr counter)) in
  let config = Layout.to_config ~quantum:6 [ (0, 1); (0, 1); (0, 2) ] in
  let metrics =
    timed (fun () -> Some (Hwf_obs.Metrics.feed (Hwf_obs.Metrics.collector config)))
  in
  let pct base x = if base > 0. then (x /. base -. 1.) *. 100. else 0. in
  Tbl.print
    ~title:(Printf.sprintf "mean wall-clock per run, %d runs each" reps)
    ~header:[ "observer"; "us/run"; "overhead" ]
    [
      [ "off (no sink)"; Printf.sprintf "%.1f" (off *. 1e6); "baseline" ];
      [ "count only"; Printf.sprintf "%.1f" (count *. 1e6);
        Printf.sprintf "%+.1f%%" (pct off count) ];
      [ "full metrics"; Printf.sprintf "%.1f" (metrics *. 1e6);
        Printf.sprintf "%+.1f%%" (pct off metrics) ];
    ];
  Tbl.note
    "identical workload and schedule in all rows; 'off' pays one option\n\
     match per event and nothing else (the acceptance bar: no measurable\n\
     overhead when no sink is configured)."

(* The canonical demo export: small, deterministic (fixed policy, no
   seeds involved), so repeated invocations produce identical bytes. *)
let export ~trace_out ~metrics_out =
  if trace_out <> None || metrics_out <> None then begin
    let layout = [ (0, 1); (0, 1) ] in
    let config = Layout.to_config ~quantum:8 layout in
    let b =
      Scenarios.consensus ~name:"bench.demo" ~impl:Scenarios.Fig3 ~quantum:8 ~layout
    in
    let inst = b.Scenarios.scenario.Hwf_adversary.Explore.make () in
    let collector = Hwf_obs.Metrics.collector config in
    let r =
      Engine.run ~step_limit:1_000_000
        ~observer:(Hwf_obs.Metrics.feed collector)
        ~config ~policy:Policy.first inst.Hwf_adversary.Explore.programs
    in
    Option.iter
      (fun path ->
        Hwf_obs.Jsonl.write_trace ~path r.Engine.trace;
        Tbl.note "trace: %s (canonical fig3 demo run)" path)
      trace_out;
    Option.iter
      (fun path ->
        Hwf_obs.Jsonl.write_metrics ~path (Hwf_obs.Metrics.finish collector);
        Tbl.note "metrics: %s (canonical fig3 demo run)" path)
      metrics_out
  end
