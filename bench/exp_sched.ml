(* E20 — randomized-scheduler bug-finding power (schedules-to-first-bug).

   Head-to-head of the four sampling strategies (naive uniform, PCT,
   POS, SURW — lib/adversary/randsched.ml, docs/SAMPLING.md) on two
   families of known-bad subjects:

   - every dynamically sampleable case of the lint corpus
     (test/lint_corpus, via [Corpus.scenarios]) — planted harness
     escapes, an unbounded spin loop, a misdeclared statement constant,
     and the genuinely schedule-dependent quantum-below consensus;
   - the E16 negative fault control: Fig. 3 under
     [Suite.negative_plan] (Axiom 2 suspended), routed through
     [Inject.run] with [Explore.sample]'s [?runner] hook. A second
     fault cell runs the same subject under [Plan.none] (Axiom 2
     enforced) as a clean control — no strategy may find anything, and
     the row records the rule-of-three lower bound instead.

   Each (case, strategy) cell reports the schedule index of the first
   bug with an exact 95% geometric CI ([Explore.stf_ci]), at one shared
   seed and budget (quick: 50 runs, full: 2000). Three gates fail the
   harness: every expected-bug corpus case must be found by at least
   one strategy; PCT/POS/SURW must each find every corpus bug naive
   finds at the same budget (the power-parity claim); and one found
   cell is re-run at jobs=1 vs jobs=2, whose outcomes must be
   identical (the determinism contract of docs/SAMPLING.md). Results
   go to stdout as a table and to BENCH_sched.json (schema
   hwf-bench-sched/1). *)

open Hwf_sim
open Hwf_adversary
open Hwf_faults
module Corpus = Hwf_lint_corpus.Corpus

let seed = 1
let pct_depth = 4
let strategies = Randsched.[ Naive; Pct { depth = pct_depth }; Pos; Surw ]

type cell = {
  case : string;
  source : string;  (* "lint-corpus" | "fault-plan" *)
  expect_bug : bool;
  strategy : Randsched.strategy;
  step_limit : int;
  scenario : Explore.scenario;
  runner :
    (step_limit:int -> policy:Policy.t -> Explore.instance -> Engine.result)
    option;
}

type row = {
  cell : cell;
  budget : int;
  outcome : Explore.outcome;
  wall_s : float;
}

let wall f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

(* The E16 negative control re-posed as an [Explore.scenario]: the
   subject's [check ~survivors] is closed over the finished-pid list
   (no crashes in either plan, so survivors = finished). *)
let fault_cells () =
  let neg = Suite.negative () in
  let scenario =
    {
      Explore.name = "fault:" ^ neg.Certify.name;
      config = neg.Certify.config;
      make =
        (fun () ->
          let inst = neg.Certify.make () in
          let check (r : Engine.result) =
            let survivors =
              List.filter
                (fun p -> r.Engine.finished.(p))
                (List.init (Array.length r.Engine.finished) Fun.id)
            in
            inst.Certify.check ~survivors r
          in
          { Explore.programs = inst.Certify.programs; check });
    }
  in
  let runner plan ~step_limit ~policy instance =
    Inject.run ~step_limit ~plan ~config:neg.Certify.config ~policy
      instance.Explore.programs
  in
  List.concat_map
    (fun strategy ->
      [
        {
          case = neg.Certify.name ^ "/axiom2-suspended";
          source = "fault-plan";
          expect_bug = true;
          strategy;
          step_limit = neg.Certify.step_limit;
          scenario;
          runner = Some (runner Suite.negative_plan);
        };
        {
          case = neg.Certify.name ^ "/no-faults";
          source = "fault-plan";
          expect_bug = false;
          strategy;
          step_limit = neg.Certify.step_limit;
          scenario;
          runner = Some (runner Plan.none);
        };
      ])
    strategies

let corpus_cells () =
  List.concat_map
    (fun ((c : Corpus.case), scenario) ->
      List.map
        (fun strategy ->
          {
            case = c.Corpus.spec.Hwf_lint.Lint.name;
            source = "lint-corpus";
            expect_bug = true;
            strategy;
            step_limit = c.Corpus.spec.Hwf_lint.Lint.step_limit;
            scenario;
            runner = None;
          })
        strategies)
    (Corpus.scenarios ())

let run_cell ~budget ~jobs (cell : cell) =
  Explore.sample ~runs:budget ~step_limit:cell.step_limit ~jobs
    ?runner:cell.runner ~strategy:cell.strategy ~seed cell.scenario

(* ---- gates ---- *)

let found (r : row) = r.outcome.Explore.counterexample <> None

let gate_coverage rows =
  let corpus = List.filter (fun r -> r.cell.source = "lint-corpus") rows in
  let cases =
    List.sort_uniq compare (List.map (fun r -> r.cell.case) corpus)
  in
  let missed =
    List.filter
      (fun case ->
        not
          (List.exists (fun r -> r.cell.case = case && found r) corpus))
      cases
  in
  if missed <> [] then
    failwith
      (Printf.sprintf "E20: corpus case(s) found by no strategy: %s"
         (String.concat ", " missed));
  List.length cases

(* The power-parity gate covers the corpus cases (the acceptance
   criterion); the fault-plan rows are informative — a strategy may
   legitimately trail naive there at small budgets. *)
let gate_parity rows =
  let naive_found =
    List.filter
      (fun r ->
        r.cell.source = "lint-corpus"
        && r.cell.strategy = Randsched.Naive
        && found r)
      rows
  in
  List.iter
    (fun (n : row) ->
      List.iter
        (fun s ->
          if s <> Randsched.Naive then
            let peer =
              List.find
                (fun r -> r.cell.case = n.cell.case && r.cell.strategy = s)
                rows
            in
            if not (found peer) then
              failwith
                (Printf.sprintf
                   "E20: naive finds %s at schedule %d but %s misses it at \
                    the same budget (%d)"
                   n.cell.case n.outcome.Explore.runs
                   (Fmt.str "%a" Randsched.pp s)
                   peer.budget))
        strategies)
    naive_found

let outcome_sig (o : Explore.outcome) =
  ( o.Explore.runs,
    Option.map
      (fun (c : Explore.counterexample) -> (c.Explore.message, c.Explore.decisions))
      o.Explore.counterexample )

let gate_determinism rows =
  match List.find_opt found rows with
  | None -> false
  | Some r ->
    let o1 = run_cell ~budget:r.budget ~jobs:1 r.cell in
    let o2 = run_cell ~budget:r.budget ~jobs:2 r.cell in
    if outcome_sig o1 <> outcome_sig o2 then
      failwith
        (Printf.sprintf
           "E20: sample on %s/%s diverges between --jobs 1 and --jobs 2"
           r.cell.case
           (Fmt.str "%a" Randsched.pp r.cell.strategy));
    true

(* ---- reporting ---- *)

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (function
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 32 -> Printf.bprintf b "\\u%04x" (Char.code c)
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_of ~quick ~jobs ~budget ~deterministic rows =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\n";
  Buffer.add_string b "  \"schema\": \"hwf-bench-sched/1\",\n";
  Printf.bprintf b "  \"seed\": %d,\n" seed;
  Printf.bprintf b "  \"quick\": %b,\n" quick;
  Printf.bprintf b "  \"jobs\": %d,\n" jobs;
  Printf.bprintf b "  \"pct_depth\": %d,\n" pct_depth;
  Printf.bprintf b "  \"runs_budget\": %d,\n" budget;
  Printf.bprintf b "  \"determinism_recheck\": %b,\n" deterministic;
  Buffer.add_string b "  \"cells\": [\n";
  List.iteri
    (fun i (r : row) ->
      let lo, hi = Explore.stf_ci r.outcome in
      let first_bug, message =
        match r.outcome.Explore.counterexample with
        | Some c -> (string_of_int r.outcome.Explore.runs, Some c.Explore.message)
        | None -> ("null", None)
      in
      Printf.bprintf b
        "    {\"case\": \"%s\", \"source\": \"%s\", \"expect_bug\": %b, \
         \"strategy\": \"%s\", \"depth\": %s, \"runs\": %d, \"found\": %b, \
         \"first_bug\": %s, \"stf_lo\": %.3f, \"stf_hi\": %s, \
         \"wall_s\": %.3f%s}%s\n"
        (json_escape r.cell.case) r.cell.source r.cell.expect_bug
        (Randsched.name r.cell.strategy)
        (match r.cell.strategy with
        | Randsched.Pct { depth } -> string_of_int depth
        | _ -> "null")
        r.budget (found r) first_bug lo
        (if Float.is_finite hi then Printf.sprintf "%.3f" hi else "null")
        r.wall_s
        (match message with
        | Some m -> Printf.sprintf ", \"message\": \"%s\"" (json_escape m)
        | None -> "")
        (if i = List.length rows - 1 then "" else ","))
    rows;
  Buffer.add_string b "  ]\n";
  Buffer.add_string b "}\n";
  Buffer.contents b

let run ~quick =
  Tbl.section "E20: randomized-scheduler bug-finding power";
  let budget = if quick then 50 else 2_000 in
  let jobs = !Jobs.n in
  let cells = corpus_cells () @ fault_cells () in
  Tbl.note
    "seed %d, budget %d schedules/cell, pct depth %d, %d cells, jobs %d"
    seed budget pct_depth (List.length cells) jobs;
  let rows =
    List.map
      (fun cell ->
        let outcome, wall_s = wall (fun () -> run_cell ~budget ~jobs cell) in
        { cell; budget; outcome; wall_s })
      cells
  in
  Tbl.print ~title:"schedules to first bug (95% CI)"
    ~header:[ "case"; "source"; "strategy"; "first bug"; "stf 95% CI"; "wall s" ]
    (List.map
       (fun (r : row) ->
         let lo, hi = Explore.stf_ci r.outcome in
         [
           r.cell.case;
           r.cell.source;
           Fmt.str "%a" Randsched.pp r.cell.strategy;
           (match r.outcome.Explore.counterexample with
           | Some _ -> string_of_int r.outcome.Explore.runs
           | None -> Printf.sprintf "none/%d" r.budget);
           (if Float.is_finite hi then Printf.sprintf "[%.1f, %.1f]" lo hi
            else Printf.sprintf "[%.1f, inf)" lo);
           Printf.sprintf "%.2f" r.wall_s;
         ])
       rows);
  let clean_leak =
    List.filter (fun r -> (not r.cell.expect_bug) && found r) rows
  in
  (match clean_leak with
  | r :: _ ->
    failwith
      (Printf.sprintf "E20: clean control %s failed under %s: %s"
         r.cell.case
         (Fmt.str "%a" Randsched.pp r.cell.strategy)
         (match r.outcome.Explore.counterexample with
         | Some c -> c.Explore.message
         | None -> assert false))
  | [] -> ());
  let cases = gate_coverage rows in
  gate_parity rows;
  let deterministic = gate_determinism rows in
  Tbl.note
    "gates: %d corpus cases each found by >= 1 strategy; PCT/POS/SURW match \
     naive's finds at equal budget; jobs=1 vs jobs=2 outcomes identical: %b"
    cases deterministic;
  let path = "BENCH_sched.json" in
  let oc = open_out path in
  output_string oc (json_of ~quick ~jobs ~budget ~deterministic rows);
  close_out oc;
  Tbl.note "wrote %s (schema hwf-bench-sched/1)" path
