(* Worker-domain count for the parallelizable experiments (E16's
   certifier cells, E17's speedup campaign), set by bench/main.ml's
   --jobs flag. 1 = fully sequential, the historical behaviour. *)
let n = ref 1
