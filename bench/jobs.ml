(* Worker-domain count for the parallelizable experiments (E16's
   certifier cells, E17's speedup campaign), set by bench/main.ml's
   --jobs flag. 1 = fully sequential, the historical behaviour. *)
let n = ref 1

(* Resilience knobs for the campaign experiments (E16), set by
   bench/main.ml's --checkpoint/--resume flags: [checkpoint] is the base
   path for per-subject hwf-ckpt/1 journals, [resume] restores completed
   cells from them (see docs/ROBUSTNESS.md). *)
let checkpoint : string option ref = ref None
let resume = ref false
