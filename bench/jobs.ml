(* Worker-domain count for the parallelizable experiments (E16's
   certifier cells, E17's speedup campaign), set by bench/main.ml's
   --jobs flag. 1 = fully sequential, the historical behaviour. *)
let n = ref 1

(* Pool cells-per-claim, set by --grain (None = automatic; see
   docs/PARALLELISM.md's tuning guide). *)
let grain : int option ref = ref None

(* E17 knobs: --self-check re-runs every E17 cell at jobs=1 and verifies
   the determinism contract (doubling the campaign's cost, so opt-in);
   --min-speedup S (with --self-check) fails the harness when the
   overall E17 speedup lands below S — CI's regression gate. *)
let self_check = ref false
let min_speedup : float option ref = ref None

(* E19 knobs: --self-check (shared flag) re-runs every E19 layout with
   the engine's self-checking reference mode (burst batching and
   schedulable-list caching disabled) and requires byte-identical
   traces; --min-stmts-per-sec F fails the harness when the headline
   E19 cell (N=128, P=1, observer off) lands below F — CI's throughput
   regression gate for the engine hot path. *)
let min_stmts_per_sec : float option ref = ref None

(* Resilience knobs for the campaign experiments (E16), set by
   bench/main.ml's --checkpoint/--resume flags: [checkpoint] is the base
   path for per-subject hwf-ckpt/1 journals, [resume] restores completed
   cells from them (see docs/ROBUSTNESS.md). *)
let checkpoint : string option ref = ref None
let resume = ref false
