(* E16 — fault-injection campaigns and the wait-freedom certifier.

   For each core algorithm we sweep composable fault plans — an
   exhaustive single-victim crash-point sweep (every own-statement index
   up to the victim's solo run length), two-victim crash pairs,
   adversarial statement costs in the time model, and seeded chaos plans
   layering them — and certify three properties per run: every
   unblocked survivor finishes, nobody exceeds the theorem's own-step
   bound, and the surviving history stays correct (agreement /
   linearizability with crashed operations pending).

   The last row is the negative control: the same certifier pointed at a
   hand-derived Fig. 3 schedule with the Axiom 2 quantum guarantee
   suspended. It must FAIL — the paper's Sec. 2 point is that the
   algorithms genuinely rely on Axiom 2, and a certifier that cannot see
   them fail without it proves nothing. *)

open Hwf_faults

let seed = 41

let report_row report verdict =
  [
    report.Certify.subject;
    string_of_int report.Certify.plans;
    string_of_int report.Certify.passed;
    string_of_int report.Certify.blocked;
    string_of_int report.Certify.worst_own_steps;
    report.Certify.bound_desc;
    verdict;
  ]

let certify_row ?(quick = false) subject =
  let plans = Suite.campaign ~quick ~seed subject in
  let report = Certify.certify ~jobs:!Jobs.n subject plans in
  let verdict =
    if Certify.certified report then "CERTIFIED"
    else Printf.sprintf "FAILED (%d)" (List.length report.Certify.failures)
  in
  (report, report_row report verdict)

let negative_row () =
  let subject = Suite.negative () in
  let report = Certify.certify subject [ Suite.negative_plan ] in
  let verdict =
    if Certify.certified report then "CERTIFIED (BUG: control not rejected!)"
    else "REJECTED (expected)"
  in
  (report, report_row report verdict)

let run ~quick =
  Tbl.section "E16: fault-injection campaigns / wait-freedom certifier";
  let reports_rows = List.map (certify_row ~quick) (Suite.positive_subjects ~seed ()) in
  let neg_report, neg_row = negative_row () in
  Tbl.print
    ~title:
      (Printf.sprintf
         "certification under exhaustive crash sweeps + chaos plans (seed %d%s)" seed
         (if quick then ", quick" else ""))
    ~header:[ "subject"; "plans"; "passed"; "blocked"; "worst own-steps"; "bound"; "verdict" ]
    (List.map snd reports_rows @ [ neg_row ]);
  Tbl.note
    "blocked = passing runs where an unfinished survivor was excused:\n\
     a parked victim of strictly higher priority stays ready and blocks\n\
     it forever (Axiom 1) - the scheduler starves it, not the algorithm.\n\
     The last row suspends Axiom 2 under a hand-derived schedule and\n\
     must be REJECTED: it is the control that proves the certifier can\n\
     see the algorithms fail when the quantum guarantee is withdrawn.";
  List.iter
    (fun (report, _) ->
      if not (Certify.certified report) then
        Fmt.pr "@.%a@." Certify.pp_report report)
    reports_rows;
  (match neg_report.Certify.failures with
  | f :: _ ->
    Tbl.note "negative-control counterexample (shrunk): plan [%s]; %s"
      (Plan.to_string f.Certify.plan)
      f.Certify.message
  | [] -> ());
  if List.exists (fun (r, _) -> not (Certify.certified r)) reports_rows then
    failwith "E16: a positive campaign failed certification";
  if Certify.certified neg_report then
    failwith "E16: the negative control was not rejected"
