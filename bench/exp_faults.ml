(* E16 — fault-injection campaigns and the wait-freedom certifier.

   For each core algorithm we sweep composable fault plans — an
   exhaustive single-victim crash-point sweep (every own-statement index
   up to the victim's solo run length), two-victim crash pairs,
   adversarial statement costs in the time model, and seeded chaos plans
   layering them — and certify three properties per run: every
   unblocked survivor finishes, nobody exceeds the theorem's own-step
   bound, and the surviving history stays correct (agreement /
   linearizability with crashed operations pending).

   The last row is the negative control: the same certifier pointed at a
   hand-derived Fig. 3 schedule with the Axiom 2 quantum guarantee
   suspended. It must FAIL — the paper's Sec. 2 point is that the
   algorithms genuinely rely on Axiom 2, and a certifier that cannot see
   them fail without it proves nothing.

   Resilience (docs/ROBUSTNESS.md): with bench/main.ml's --checkpoint
   BASE each subject journals its completed cells to
   BASE.<subject>.ckpt.jsonl and --resume restores them, so a killed
   campaign finishes from where it stopped; an interrupted run (SIGINT/
   SIGTERM) stops at the next cell boundary and records a truncated
   partial result instead of vanishing. Results also go to
   BENCH_faults.json (schema hwf-bench-faults/1) — deterministic bytes
   for a completed campaign, so CI can diff a kill+resume run against a
   clean one. *)

open Hwf_faults
module Resil = Hwf_resil.Resil

let seed = 41

let report_row report verdict =
  [
    report.Certify.subject;
    string_of_int report.Certify.plans;
    string_of_int report.Certify.passed;
    string_of_int report.Certify.blocked;
    string_of_int report.Certify.worst_own_steps;
    report.Certify.bound_desc;
    verdict;
  ]

let ckpt_for name =
  Option.map
    (fun base -> Printf.sprintf "%s.%s.ckpt.jsonl" base name)
    !Jobs.checkpoint

let verdict_of report =
  let c = report.Certify.coverage in
  if not (Resil.complete c) then
    Printf.sprintf "INCOMPLETE (%d/%d cells)" c.Resil.cells_done c.Resil.cells_total
  else if Certify.certified report then "CERTIFIED"
  else Printf.sprintf "FAILED (%d)" (List.length report.Certify.failures)

let certify_row ?(quick = false) subject =
  let plans = Suite.campaign ~quick ~seed subject in
  let report =
    Certify.certify ~jobs:!Jobs.n ?grain:!Jobs.grain
      ?checkpoint:(ckpt_for subject.Certify.name)
      ~resume:!Jobs.resume subject plans
  in
  (report, report_row report (verdict_of report))

let negative_row () =
  let subject = Suite.negative () in
  let report =
    Certify.certify
      ?checkpoint:(ckpt_for subject.Certify.name)
      ~resume:!Jobs.resume subject [ Suite.negative_plan ]
  in
  let verdict =
    if not (Resil.complete report.Certify.coverage) then verdict_of report
    else if Certify.certified report then "CERTIFIED (BUG: control not rejected!)"
    else "REJECTED (expected)"
  in
  (report, report_row report verdict)

(* BENCH_faults.json: the machine-readable record of the campaign.
   Deterministic — every value is an int, bool or string derived from
   the (seeded) campaign, never from the wall clock — so two completed
   runs of the same campaign produce identical bytes, including a
   kill+--resume run vs a clean one (the CI kill/resume smoke diffs
   exactly this file). A truncated run flips "truncated" and carries the
   partial coverage instead. *)
let json_of ~quick ~truncated reports neg_report =
  let b = Buffer.create 1024 in
  let coverage_fields c =
    Printf.sprintf
      "\"cells_total\": %d, \"cells_done\": %d, \"timeouts\": %d, \
       \"errors\": %d, \"skipped\": %d, \"retries\": %d, \"degraded\": %d"
      c.Resil.cells_total c.Resil.cells_done c.Resil.timeouts c.Resil.errors
      c.Resil.skipped c.Resil.retries c.Resil.degraded
  in
  Buffer.add_string b "{\n";
  Buffer.add_string b "  \"schema\": \"hwf-bench-faults/1\",\n";
  Printf.bprintf b "  \"seed\": %d,\n" seed;
  Printf.bprintf b "  \"quick\": %b,\n" quick;
  Printf.bprintf b "  \"truncated\": %b,\n" truncated;
  Buffer.add_string b "  \"subjects\": [\n";
  List.iteri
    (fun i (r, _) ->
      Printf.bprintf b
        "    {\"name\": %S, \"plans\": %d, \"passed\": %d, \"blocked\": %d, \
         \"worst_own_steps\": %d, \"certified\": %b, %s}%s\n"
        r.Certify.subject r.Certify.plans r.Certify.passed r.Certify.blocked
        r.Certify.worst_own_steps (Certify.certified r)
        (coverage_fields r.Certify.coverage)
        (if i = List.length reports - 1 then "" else ","))
    reports;
  Buffer.add_string b "  ],\n";
  Printf.bprintf b "  \"negative_rejected\": %b,\n"
    (not (Certify.certified neg_report));
  Printf.bprintf b "  \"negative_coverage\": {%s}\n"
    (coverage_fields neg_report.Certify.coverage);
  Buffer.add_string b "}\n";
  Buffer.contents b

let run ~quick =
  Tbl.section "E16: fault-injection campaigns / wait-freedom certifier";
  let reports_rows = List.map (certify_row ~quick) (Suite.positive_subjects ~seed ()) in
  let neg_report, neg_row = negative_row () in
  let coverage =
    List.fold_left
      (fun acc (r, _) -> Resil.coverage_union acc r.Certify.coverage)
      neg_report.Certify.coverage reports_rows
  in
  let truncated = not (Resil.complete coverage) in
  Tbl.print
    ~title:
      (Printf.sprintf
         "certification under exhaustive crash sweeps + chaos plans (seed %d%s)" seed
         (if quick then ", quick" else ""))
    ~header:[ "subject"; "plans"; "passed"; "blocked"; "worst own-steps"; "bound"; "verdict" ]
    (List.map snd reports_rows @ [ neg_row ]);
  Tbl.note
    "blocked = passing runs where an unfinished survivor was excused:\n\
     a parked victim of strictly higher priority stays ready and blocks\n\
     it forever (Axiom 1) - the scheduler starves it, not the algorithm.\n\
     The last row suspends Axiom 2 under a hand-derived schedule and\n\
     must be REJECTED: it is the control that proves the certifier can\n\
     see the algorithms fail when the quantum guarantee is withdrawn.";
  List.iter
    (fun (report, _) ->
      if not (Certify.certified report) then
        Fmt.pr "@.%a@." Certify.pp_report report)
    reports_rows;
  (match neg_report.Certify.failures with
  | f :: _ ->
    Tbl.note "negative-control counterexample (shrunk): plan [%s]; %s"
      (Plan.to_string f.Certify.plan)
      f.Certify.message
  | [] -> ());
  let path = "BENCH_faults.json" in
  let oc = open_out path in
  output_string oc (json_of ~quick ~truncated reports_rows neg_report);
  close_out oc;
  Tbl.note "wrote %s%s" path
    (if truncated then " (TRUNCATED: partial campaign, see coverage fields)"
     else "");
  if truncated then
    Fmt.pr "@.E16 incomplete: %a@." Resil.pp_coverage coverage
  else begin
    (* Only a completed campaign can be judged: a truncated one has an
       untrustworthy failure list (bench/main.ml exits 2 for it). *)
    if List.exists (fun (r, _) -> not (Certify.certified r)) reports_rows then
      failwith "E16: a positive campaign failed certification";
    if Certify.certified neg_report then
      failwith "E16: the negative control was not rejected"
  end
