(** Concurrent-history recording for linearizability checking.

    Process code wraps each high-level operation with {!wrap}; the
    recorder timestamps the operation's interval in global statement
    indices (via {!Hwf_sim.Eff.now}, which costs no statements) and
    stores the operation descriptor and its observed result. *)

type ('op, 'r) entry = {
  pid : int;
  op : 'op;
  result : 'r;
  t0 : int;  (** Statement count just before the first statement. *)
  t1 : int;  (** Statement count just after the last statement. *)
}

type ('op, 'r) t

val create : unit -> ('op, 'r) t

val wrap : ('op, 'r) t -> pid:int -> 'op -> (unit -> 'r) -> 'r
(** [wrap h ~pid op f] registers the operation as started, runs [f ()],
    records the completed operation and returns its result. Must run
    inside the simulator. *)

val entries : ('op, 'r) t -> ('op, 'r) entry list
(** In completion order. Harness use (after the run). *)

val pending : ('op, 'r) t -> (int * 'op * int) list
(** [(pid, op, t0)] for operations begun by {!wrap} but never completed
    — the process crashed or was parked mid-operation. Their effects may
    or may not be visible to other processes, so a linearizability
    checker must treat each as optionally taking effect anywhere after
    [t0] (see {!Lincheck.check_with_pending}). In start order. *)

val pp :
  op:'op Fmt.t -> result:'r Fmt.t -> ('op, 'r) t Fmt.t
