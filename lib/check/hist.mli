(** Concurrent-history recording for linearizability checking.

    Process code wraps each high-level operation with {!wrap}; the
    recorder timestamps the operation's interval in {e per-processor}
    statement counts (via {!Hwf_sim.Eff.stamp}, which costs no
    statements) and stores the operation descriptor and its observed
    result.

    Per-processor timestamps order two operations only when they ran on
    the same processor; cross-processor intervals are incomparable and a
    checker must treat them as concurrent. This is deliberately weaker
    than the real-time order of the run — and exactly as strong as what
    survives partial-order reduction: the explorer's pruning
    ({!Hwf_adversary.Explore}) commutes independent statements of
    different processors, which preserves every per-processor count but
    not the global clock. Recording through {!Hwf_sim.Eff.now} would
    taint the run and disable pruning; recording through
    {!Hwf_sim.Eff.stamp} keeps it prunable. On a uniprocessor the two
    coincide (one processor's count {e is} the global count), so
    uniprocessor verdicts are unchanged. *)

type ('op, 'r) entry = {
  pid : int;
  op : 'op;
  result : 'r;
  proc : int;  (** Processor the operation ran on. *)
  t0 : int;  (** [proc]'s statement count just before the first statement. *)
  t1 : int;  (** [proc]'s statement count just after the last statement. *)
}

type ('op, 'r) t

val create : unit -> ('op, 'r) t

val wrap : ('op, 'r) t -> pid:int -> 'op -> (unit -> 'r) -> 'r
(** [wrap h ~pid op f] registers the operation as started, runs [f ()],
    records the completed operation and returns its result. Must run
    inside the simulator. *)

val entries : ('op, 'r) t -> ('op, 'r) entry list
(** In completion order. Harness use (after the run). *)

val pending : ('op, 'r) t -> (int * 'op * int * int) list
(** [(pid, op, proc, t0)] for operations begun by {!wrap} but never
    completed — the process crashed or was parked mid-operation. Their
    effects may or may not be visible to other processes, so a
    linearizability checker must treat each as optionally taking effect
    anywhere after [t0] (see {!Lincheck.check_with_pending}). In start
    order. *)

val pp :
  op:'op Fmt.t -> result:'r Fmt.t -> ('op, 'r) t Fmt.t
