type ('op, 'r) spec =
  | Spec : { init : 's; apply : 's -> 'op -> 's * 'r } -> ('op, 'r) spec

let make_spec ~init ~apply = Spec { init; apply }

exception Found

(* A compact bitmask identifies the set of already-linearized operations;
   histories beyond 62 operations are rejected up front (the suites stay
   far below that).

   Shared search: [precede] gives, per op, the bitmask of ops that must
   come earlier in any witness order. [results.(i)] is [Some r] when op
   [i] completed and must reproduce [r]; [None] marks a pending op
   (begun by a process that crashed mid-operation) whose result is
   unconstrained and whose linearization is optional. [required] is the
   bitmask of completed ops: the search succeeds as soon as every
   required op has been linearized, whether or not any pending op was. *)
let search_order spec ~ops ~results ~precede ~required =
  match spec with
  | Spec { init; apply } ->
    let n = Array.length ops in
    begin
      let seen = Hashtbl.create 1024 in
      (* The memo table compares states structurally. A spec state that
         embeds a closure defeats that: [Hashtbl.mem] raises
         [Invalid_argument "compare: functional value"] the first time
         two such keys collide in a bucket. Detect it once and degrade
         to the (correct, merely slower) unmemoized search. *)
      let memo_ok = ref true in
      let visited key =
        !memo_ok
        &&
        try
          if Hashtbl.mem seen key then true
          else begin
            Hashtbl.add seen key ();
            false
          end
        with Invalid_argument _ ->
          memo_ok := false;
          Hashtbl.reset seen;
          false
      in
      let rec search done_mask state =
        if done_mask land required = required then raise Found;
        if not (visited (done_mask, state)) then begin
          for i = 0 to n - 1 do
            let bit = 1 lsl i in
            if done_mask land bit = 0 && precede.(i) land lnot done_mask = 0 then begin
              let state', r = apply state ops.(i) in
              match results.(i) with
              | Some expected when r <> expected -> ()
              | Some _ | None -> search (done_mask lor bit) state'
            end
          done
        end
      in
      match search 0 init with
      | () -> Error "no valid order exists"
      | exception Found -> Ok ()
    end

let check spec entries =
  let entries = Array.of_list entries in
  let n = Array.length entries in
  if n > 62 then Error "Lincheck.check: history too long (> 62 operations)"
  else
    let precede =
      Array.init n (fun i ->
          let e = entries.(i) in
          let mask = ref 0 in
          for j = 0 to n - 1 do
            (* Per-processor timestamps order intervals only within one
               processor; cross-processor operations are concurrent. *)
            if
              j <> i
              && entries.(j).Hist.proc = e.Hist.proc
              && entries.(j).Hist.t1 <= e.Hist.t0
            then mask := !mask lor (1 lsl j)
          done;
          !mask)
    in
    let ops = Array.map (fun e -> e.Hist.op) entries in
    let results = Array.map (fun e -> Some e.Hist.result) entries in
    match search_order spec ~ops ~results ~precede ~required:((1 lsl n) - 1) with
    | Ok () -> Ok ()
    | Error _ -> Error "not linearizable: no valid linearization order exists"

let check_hist spec hist = check spec (Hist.entries hist)

let check_with_pending spec entries ~pending =
  let completed = Array.of_list entries in
  let pend = Array.of_list pending in
  let nc = Array.length completed in
  let np = Array.length pend in
  let n = nc + np in
  if n > 62 then Error "Lincheck.check_with_pending: history too long (> 62 operations)"
  else
    (* Indices [0, nc) are completed ops with their real-time interval;
       [nc, n) are pending ops, whose interval is [t0, +inf): every
       completed op that finished before t0 must precede them, and they
       precede nothing. *)
    let ops =
      Array.init n (fun i ->
          if i < nc then completed.(i).Hist.op
          else
            let _, op, _, _ = pend.(i - nc) in
            op)
    in
    let results =
      Array.init n (fun i -> if i < nc then Some completed.(i).Hist.result else None)
    in
    let start i =
      if i < nc then (completed.(i).Hist.proc, completed.(i).Hist.t0)
      else
        let _, _, proc, t0 = pend.(i - nc) in
        (proc, t0)
    in
    let precede =
      Array.init n (fun i ->
          let proc, t0 = start i in
          let mask = ref 0 in
          for j = 0 to nc - 1 do
            if j <> i && completed.(j).Hist.proc = proc && completed.(j).Hist.t1 <= t0
            then mask := !mask lor (1 lsl j)
          done;
          !mask)
    in
    match search_order spec ~ops ~results ~precede ~required:((1 lsl nc) - 1) with
    | Ok () -> Ok ()
    | Error _ ->
      Error
        "not linearizable: no valid linearization order exists (even allowing \
         pending operations to take effect or not)"

let check_hist_with_pending spec hist =
  check_with_pending spec (Hist.entries hist) ~pending:(Hist.pending hist)

let check_sequential_consistency spec entries =
  let entries = Array.of_list entries in
  let n = Array.length entries in
  if n > 62 then Error "Lincheck.check_sequential_consistency: history too long"
  else
    (* only same-process program order constrains *)
    let precede =
      Array.init n (fun i ->
          let e = entries.(i) in
          let mask = ref 0 in
          for j = 0 to n - 1 do
            if j <> i && entries.(j).Hist.pid = e.Hist.pid && entries.(j).Hist.t1 <= e.Hist.t0
            then mask := !mask lor (1 lsl j)
          done;
          !mask)
    in
    let ops = Array.map (fun e -> e.Hist.op) entries in
    let results = Array.map (fun e -> Some e.Hist.result) entries in
    match search_order spec ~ops ~results ~precede ~required:((1 lsl n) - 1) with
    | Ok () -> Ok ()
    | Error _ -> Error "not sequentially consistent: no program-order-respecting order"
