(** Linearizability checking (Wing–Gong style).

    Decides whether a recorded concurrent history is linearizable with
    respect to a sequential specification: is there a total order of the
    completed operations that (a) respects observable precedence
    (operation [a] precedes [b] whenever both ran on the same processor
    and [a.t1 <= b.t0] in that processor's statement count) and (b)
    replays through the spec with every operation producing exactly the
    result it returned in the concurrent run?

    Precedence is per-processor because {!Hist} timestamps are
    ({!Hwf_sim.Eff.stamp}): cross-processor intervals are incomparable,
    so they constrain nothing. This weakening is sound (it can only
    admit more witness orders than real time would) and is exactly the
    order that survives partial-order reduction — commuting independent
    cross-processor statements preserves every per-processor count, so
    the verdict is a trace invariant and pruned exploration can rely on
    it. On a uniprocessor the per-processor count is the global count
    and the classical real-time check is recovered unchanged.

    The search memoizes on (set of linearized ops, spec state), which
    keeps the small histories used by the test suites tractable. Spec
    states and results must support structural equality and hashing. *)

type ('op, 'r) spec

val make_spec : init:'s -> apply:('s -> 'op -> 's * 'r) -> ('op, 'r) spec
(** Wraps a typed sequential specification. [apply] must be pure. *)

val check : ('op, 'r) spec -> ('op, 'r) Hist.entry list -> (unit, string) result
(** [Ok ()] iff the history is linearizable. *)

val check_hist : ('op, 'r) spec -> ('op, 'r) Hist.t -> (unit, string) result

val check_with_pending :
  ('op, 'r) spec ->
  ('op, 'r) Hist.entry list ->
  pending:(int * 'op * int * int) list ->
  (unit, string) result
(** Like {!check}, but tolerant of {e pending} operations: ops that were
    started (on processor [proc] at its statement count [t0]) by a
    process that crashed before returning. A crashed process may have
    taken effect on shared memory before halting, so each pending op may
    be linearized at any point after [t0] — with an unconstrained
    result, since none was observed — or omitted entirely. The history
    is accepted iff some such choice makes the completed operations
    linearizable. [pending] elements are [(pid, op, proc, t0)] as
    returned by {!Hist.pending}. *)

val check_hist_with_pending :
  ('op, 'r) spec -> ('op, 'r) Hist.t -> (unit, string) result
(** [check_with_pending] applied to a recorder's completed and pending
    operations. The right default check for runs with crash faults. *)

val check_sequential_consistency :
  ('op, 'r) spec -> ('op, 'r) Hist.entry list -> (unit, string) result
(** The weaker criterion: a total order that respects only each
    process's {e program order} (not cross-process real time) and
    replays through the spec. Every linearizable history is sequentially
    consistent; the converse fails — the paper's algorithms are held to
    the stronger bar, and the test suite exhibits a history separating
    the two so this checker documents what linearizability adds. *)
