open Hwf_sim

type ('op, 'r) entry = {
  pid : int;
  op : 'op;
  result : 'r;
  proc : int;
  t0 : int;
  t1 : int;
}

type ('op, 'r) t = {
  completed : ('op, 'r) entry Vec.t;
  mutable started : (int * 'op * int * int) list;
      (* (pid, op, proc, t0), newest first *)
}

let create () = { completed = Vec.create (); started = [] }

let remove_first p l =
  let rec go acc = function
    | [] -> List.rev acc
    | x :: tl -> if p x then List.rev_append acc tl else go (x :: acc) tl
  in
  go [] l

let wrap h ~pid op f =
  let proc, t0 = Eff.stamp () in
  h.started <- (pid, op, proc, t0) :: h.started;
  let result = f () in
  let _, t1 = Eff.stamp () in
  h.started <- remove_first (fun (p, _, _, s) -> p = pid && s = t0) h.started;
  Vec.push h.completed { pid; op; result; proc; t0; t1 };
  result

let entries h = Vec.to_list h.completed

let pending h = List.rev h.started

let pp ~op ~result ppf h =
  let pp_entry ppf e =
    Fmt.pf ppf "[%d,%d)@@%d p%d: %a -> %a" e.t0 e.t1 e.proc (e.pid + 1) op e.op
      result e.result
  in
  let pp_pending ppf (pid, o, proc, t0) =
    Fmt.pf ppf "[%d,?)@@%d p%d: %a -> PENDING" t0 proc (pid + 1) op o
  in
  Fmt.pf ppf "@[<v>%a%a@]"
    Fmt.(list ~sep:(any "@,") pp_entry)
    (entries h)
    Fmt.(list ~sep:nop (fun ppf e -> Fmt.pf ppf "@,%a" pp_pending e))
    (pending h)
