(** Randomized scheduling adversaries (docs/SAMPLING.md).

    Exhaustive exploration ({!Explore.explore}) caps out at tiny process
    counts; these strategies trade certainty for statistical power at
    production scale. Each is a seeded {!Hwf_sim.Policy.t} factory —
    [seed -> schedule], with all state created per run — so a sampled
    counterexample is replayable bit-for-bit and shrinkable through the
    ordinary {!Schedule}/{!Shrink} pipeline, and the same seed yields
    the same schedule regardless of how runs are distributed over
    domains.

    - {b Naive}: a uniform draw among runnable processes per decision
      ({!Hwf_sim.Policy.random}) — the baseline.
    - {b PCT} (Burckhardt et al., ASPLOS 2010): priority-point
      scheduling with a [1/(n·k^(d-1))] guarantee of hitting any bug of
      depth [d] over horizon [k].
    - {b POS} (Yuan et al., CAV 2018): random priorities reassigned
      after each partial-order-relevant step, using the same
      {!Hwf_sim.Policy.footprint} independence the sleep sets use.
    - {b SURW} (ASPLOS 2025): random walk weighted per state by each
      candidate's estimated remaining statements, approximating a
      uniform draw over maximal schedules rather than over decisions.

    {!Explore.sample} hosts them over a scenario and reports
    schedules-to-first-bug; [hybridsim explore --strategy] and the E20
    benchmark ([bench/exp_sched.ml]) are the entry points. *)

type strategy =
  | Naive
  | Pct of { depth : int }
      (** [depth] is the targeted bug depth [d] (number of ordered
          scheduling constraints); [d - 1] priority-change points are
          drawn per run. *)
  | Pos
  | Surw

val name : strategy -> string
(** ["naive" | "pct" | "pos" | "surw"] — the CLI/JSON token. *)

val pp : Format.formatter -> strategy -> unit

val of_name : ?depth:int -> string -> (strategy, string) result
(** Parse a CLI token ([?depth], default 3, applies to ["pct"]). *)

val mix : int -> int -> int
(** [mix seed i] derives the seed of run [i] of campaign [seed] with a
    splitmix64-style finalizer: non-negative, and unrelated across both
    arguments — adjacent campaign seeds share no per-run streams
    (unlike the earlier [seed + i] scheme). *)

val policy : ?horizon:int -> ?profile:int array -> strategy -> seed:int -> Hwf_sim.Policy.t
(** The strategy as a per-run-deterministic policy. [horizon] (default
    1024) is PCT's schedule-length estimate [k], over which the change
    points are drawn. [profile] is SURW's per-pid total-statement
    estimate, typically a pilot run's [Engine.result.own_steps];
    without it SURW degrades to a uniform walk. Both are ignored by the
    other strategies. *)
