open Hwf_sim

type strategy = Naive | Pct of { depth : int } | Pos | Surw

let name = function
  | Naive -> "naive"
  | Pct _ -> "pct"
  | Pos -> "pos"
  | Surw -> "surw"

let pp ppf = function
  | Pct { depth } -> Fmt.pf ppf "pct(d=%d)" depth
  | s -> Fmt.string ppf (name s)

let of_name ?(depth = 3) = function
  | "naive" | "random" -> Ok Naive
  | "pct" ->
    if depth >= 1 then Ok (Pct { depth })
    else Error "pct depth must be >= 1"
  | "pos" -> Ok Pos
  | "surw" -> Ok Surw
  | s -> Error (Printf.sprintf "unknown strategy %S (naive|pct|pos|surw)" s)

(* Splitmix64 finalizer over (seed, i): the per-run seed derivation for
   sampling campaigns. Adjacent campaign seeds must produce unrelated
   per-run streams — the naive [seed + i] scheme made campaigns 41 and
   42 share all but one of their runs. *)
let mix seed i =
  let open Int64 in
  let z =
    ref
      (logxor
         (mul (of_int seed) 0x9E3779B97F4A7C15L)
         (mul (of_int (i + 1)) 0xBF58476D1CE4E5B9L))
  in
  z := add !z 0x9E3779B97F4A7C15L;
  z := mul (logxor !z (shift_right_logical !z 30)) 0xBF58476D1CE4E5B9L;
  z := mul (logxor !z (shift_right_logical !z 27)) 0x94D049BB133111EBL;
  z := logxor !z (shift_right_logical !z 31);
  to_int (shift_right_logical !z 1)

(* Argmax of [pri] over the runnable list (ties by lowest pid; the
   strategies below keep priorities distinct, so ties only matter
   transiently). *)
let argmax (pri : float array) = function
  | [] -> None
  | p0 :: rest ->
    Some (List.fold_left (fun best p -> if pri.(p) > pri.(best) then p else best) p0 rest)

(* PCT (Burckhardt et al., ASPLOS 2010). n distinct initial priorities,
   d-1 priority-change points drawn uniformly over the horizon; each
   decision runs the highest-priority runnable process; when the global
   statement count crosses change point i, the process that executed it
   drops to priority i — below every initial priority, so a bug needing
   d ordered preemption points is hit with probability >= 1/(n·k^(d-1)). *)
let pct ~depth ~horizon ~seed =
  Policy.of_factory
    (Printf.sprintf "pct(d=%d,%d)" depth seed)
    (fun () ->
      let st = Random.State.make [| seed; 0x9c7 |] in
      let horizon = max 1 horizon in
      (* Change point i sits at a uniform position k_i and carries the
         priority value i. The value is tied to the point's {e index},
         not its time order — sorted by position, the values form a
         random permutation, which is what lets a later change point
         demote the running process below an earlier victim and revive
         it (the A-B-A alternations depth-d bugs are made of). *)
      let change =
        Array.init
          (max 0 (depth - 1))
          (fun i -> (1 + Random.State.int st horizon, i + 1))
      in
      Array.sort compare change;
      let next_change = ref 0 in
      let decisions = ref 0 in
      let pri = ref [||] in
      fun (v : Policy.view) ->
        let n = Array.length v.procs in
        if Array.length !pri < n then begin
          (* Random permutation of d .. d+n-1 (all above the change-point
             priorities 1 .. d-1), mapped into floats for [argmax]. *)
          let a = Array.init n (fun i -> depth + i) in
          for i = n - 1 downto 1 do
            let j = Random.State.int st (i + 1) in
            let t = a.(i) in
            a.(i) <- a.(j);
            a.(j) <- t
          done;
          pri := Array.map float_of_int a
        end;
        match argmax !pri v.runnable with
        | None -> None
        | Some pick ->
          incr decisions;
          while
            !next_change < Array.length change
            && fst change.(!next_change) <= !decisions
          do
            !pri.(pick) <- float_of_int (snd change.(!next_change));
            incr next_change
          done;
          Some pick)

(* POS (Yuan et al., CAV 2018 "Partial Order Aware Concurrency
   Sampling"). Every process holds a random real priority; each decision
   runs the highest-priority runnable process, then reassigns fresh
   priorities to the executed process and to every runnable process
   whose next statement is dependent on (not independent of) the
   executed one — the same independence judgement the sleep sets use,
   via [Policy.footprint]. Racing statements thus get fresh coin flips
   at every race, which samples partial orders far more evenly than a
   plain random walk. *)
let pos ~seed =
  Policy.of_factory
    (Printf.sprintf "pos(%d)" seed)
    (fun () ->
      let st = Random.State.make [| seed; 0x905 |] in
      let pri = ref [||] in
      fun (v : Policy.view) ->
        let n = Array.length v.procs in
        if Array.length !pri < n then
          pri := Array.init n (fun _ -> Random.State.float st 1.0);
        match argmax !pri v.runnable with
        | None -> None
        | Some pick ->
          let fp = Policy.footprint v pick in
          !pri.(pick) <- Random.State.float st 1.0;
          List.iter
            (fun q ->
              if q <> pick && not (Policy.independent fp (Policy.footprint v q))
              then !pri.(q) <- Random.State.float st 1.0)
            v.runnable;
          Some pick)

(* SURW (selectively uniform random walk, ASPLOS 2025). A uniform draw
   per decision does not sample maximal schedules uniformly: a process
   with many statements left roots more distinct completions than one
   about to finish. For independent fixed-length programs the exact
   fix is to weight each candidate by its remaining statement count
   (the number of interleavings beginning with candidate i is
   total · r_i / Σ r_j). [profile] supplies the per-pid total-statement
   estimate (a pilot run); without it the walk degrades to uniform. *)
(* Burst-safe: the singleton arm below returns the forced candidate
   without touching the RNG, so the engine may skip forced decisions.
   PCT and POS are not — PCT's change points are keyed to the decision
   count (which must advance on forced picks) and POS redraws the
   executed process's priority on every decision. *)
let surw ~profile ~seed =
  Policy.of_factory ~burst_safe:true
    (Printf.sprintf "surw(%d)" seed)
    (fun () ->
      let st = Random.State.make [| seed; 0x5324 |] in
      let weight (v : Policy.view) p =
        match profile with
        | None -> 1
        | Some est ->
          let e = if p < Array.length est then est.(p) else 0 in
          max 1 (e - v.procs.(p).Policy.own_steps)
      in
      fun (v : Policy.view) ->
        match v.runnable with
        | [] -> None
        | [ p ] -> Some p
        | l ->
          let total = List.fold_left (fun acc p -> acc + weight v p) 0 l in
          let r = ref (Random.State.int st total) in
          let pick = ref (List.hd l) in
          (try
             List.iter
               (fun p ->
                 let w = weight v p in
                 if !r < w then begin
                   pick := p;
                   raise Exit
                 end
                 else r := !r - w)
               l
           with Exit -> ());
          Some !pick)

let policy ?(horizon = 1024) ?profile strategy ~seed =
  match strategy with
  | Naive -> Policy.random ~seed
  | Pct { depth } -> pct ~depth ~horizon ~seed
  | Pos -> pos ~seed
  | Surw -> surw ~profile ~seed
