(* Remove the half-open index range [i, j) from a list. *)
let remove_range l i j =
  List.filteri (fun idx _ -> idx < i || idx >= j) l

let shrink_by ?(max_rounds = 200) ~fails failing =
  if not (fails failing) then failing
  else begin
    let budget = ref max_rounds in
    let try_candidate cur cand =
      if !budget <= 0 || List.length cand >= List.length cur then None
      else begin
        decr budget;
        if fails cand then Some cand else None
      end
    in
    (* Phase 1: drop exponentially shrinking chunks. *)
    let rec chunk_pass cur size =
      if size = 0 then cur
      else begin
        let rec at i cur =
          if i >= List.length cur then cur
          else
            match try_candidate cur (remove_range cur i (min (i + size) (List.length cur))) with
            | Some cand -> at i cand (* removed; same index now holds the next chunk *)
            | None -> at (i + size) cur
        in
        let cur = at 0 cur in
        (* Halve against the list as it is *after* the pass, not the
           length captured before it: a pass that removed most of the
           list would otherwise keep scheduling chunk sizes larger than
           what remains, burning shrink budget on candidates that are
           just the empty list. *)
        let n = List.length cur in
        chunk_pass cur (if size > n then n / 2 else size / 2)
      end
    in
    let cur = chunk_pass failing (List.length failing / 2) in
    (* Phase 2: single-decision removal until a fixed point. *)
    let rec singles cur =
      let n = List.length cur in
      let rec at i cur changed =
        if i >= List.length cur then (cur, changed)
        else
          match try_candidate cur (remove_range cur i (i + 1)) with
          | Some cand -> at i cand true
          | None -> at (i + 1) cur changed
      in
      let cur', changed = at 0 cur false in
      if changed && !budget > 0 && List.length cur' < n then singles cur' else cur'
    in
    singles cur
  end

let shrink ?max_rounds ?step_limit scenario failing =
  let fails schedule =
    match Schedule.verdict ?step_limit scenario schedule with
    | Error _ -> true
    | Ok () -> false
  in
  shrink_by ?max_rounds ~fails failing
