open Hwf_sim

type t = Proc.pid list

let to_string s = String.concat " " (List.map (fun p -> string_of_int (p + 1)) s)

let of_string str =
  try
    let toks =
      String.split_on_char ' ' (String.trim str)
      |> List.concat_map (String.split_on_char '\n')
      |> List.filter (fun s -> s <> "")
    in
    Ok (List.map (fun tok -> int_of_string tok - 1) toks)
  with Failure _ -> Error (Printf.sprintf "Schedule.of_string: cannot parse %S" str)

let save ~path s =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string s ^ "\n"))

let load ~path =
  try
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> of_string (In_channel.input_all ic))
  with Sys_error msg -> Error msg

let replay ?(step_limit = 1_000_000) (scenario : Explore.scenario) schedule =
  let instance = scenario.make () in
  let policy = Policy.scripted ~fallback:Policy.first schedule in
  let result = Engine.run ~step_limit ~config:scenario.config ~policy instance.programs in
  (result, instance)

let verdict ?step_limit scenario schedule =
  let result, instance = replay ?step_limit scenario schedule in
  match Wellformed.check result.trace with
  | v :: _ -> Error (Fmt.str "ill-formed: %a" Wellformed.pp_violation v)
  | [] -> (
    match result.stop with
    | Engine.Step_limit -> Error "step limit hit"
    | Engine.All_finished | Engine.Policy_stopped | Engine.All_halted ->
      instance.check result)
