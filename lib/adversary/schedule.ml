open Hwf_sim

type t = Proc.pid list

let to_string s = String.concat " " (List.map (fun p -> string_of_int (p + 1)) s)

let of_string ?n str =
  let toks =
    String.split_on_char ' ' (String.trim str)
    |> List.concat_map (String.split_on_char '\n')
    |> List.filter (fun s -> s <> "")
  in
  (* Tokens are 1-based pids. Validate each one: a malformed or
     out-of-range token used to parse into a pid that is silently never
     runnable, so a corrupt saved schedule replayed as if empty and its
     verdict could vacuously pass. *)
  let rec parse acc = function
    | [] -> Ok (List.rev acc)
    | tok :: rest -> (
      match int_of_string_opt tok with
      | None ->
        Error (Printf.sprintf "Schedule.of_string: cannot parse token %S" tok)
      | Some v when v < 1 ->
        Error
          (Printf.sprintf
             "Schedule.of_string: token %S out of range (pids are 1-based)" tok)
      | Some v when (match n with Some n -> v > n | None -> false) ->
        Error
          (Printf.sprintf
             "Schedule.of_string: token %S out of range (scenario has %d processes)"
             tok (Option.get n))
      | Some v -> parse ((v - 1) :: acc) rest)
  in
  parse [] toks

let save ~path s =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string s ^ "\n"))

let load ?n ~path () =
  try
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> of_string ?n (In_channel.input_all ic))
  with Sys_error msg -> Error msg

let replay ?(step_limit = 1_000_000) (scenario : Explore.scenario) schedule =
  let instance = scenario.make () in
  let policy = Policy.scripted ~fallback:Policy.first schedule in
  let result = Engine.run ~step_limit ~config:scenario.config ~policy instance.programs in
  (result, instance)

let verdict ?step_limit scenario schedule =
  let result, instance = replay ?step_limit scenario schedule in
  match Wellformed.check result.trace with
  | v :: _ -> Error (Fmt.str "ill-formed: %a" Wellformed.pp_violation v)
  | [] -> (
    match result.stop with
    | Engine.Step_limit -> Error "step limit hit"
    | Engine.Decision_limit -> Error "decision limit hit (statement-free spin)"
    | Engine.All_finished | Engine.Policy_stopped | Engine.All_halted ->
      instance.check result)
