open Hwf_sim

let wrap ~victims (policy : Policy.t) =
  (* A victim is parked at the first legal parking point at or after its
     crash threshold: while it holds an active quantum guarantee the
     well-formedness rules forbid running its same-level peers instead,
     so parking it there would (legally but unhelpfully) freeze the whole
     level — the scheduler keeps it running until the guarantee drains. *)
  let crashed (view : Policy.view) pid =
    match List.assoc_opt pid victims with
    | Some after ->
      let p = view.procs.(pid) in
      p.Policy.own_steps >= after && p.Policy.guarantee = 0
    | None -> false
  in
  Policy.of_factory (policy.name ^ "+crash") (fun () ->
      let choose = Policy.prepare policy in
      fun view ->
        let alive = List.filter (fun p -> not (crashed view p)) view.runnable in
        match alive with
        | [] -> None (* only crashed processes are runnable: halt *)
        | _ -> choose { view with runnable = alive })

let survivors_finished (r : Engine.result) ~victims =
  let ok = ref true in
  Array.iteri
    (fun pid finished -> if (not (List.mem pid victims)) && not finished then ok := false)
    r.finished;
  !ok
