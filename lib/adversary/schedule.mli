(** Schedules as data: serialize, replay and re-judge the decision
    sequences produced by {!Explore}, so counterexamples can be saved,
    shared and re-examined.

    A schedule is the pid sequence of scheduling decisions. Replaying
    follows it with a strict scripted policy backed by a deterministic
    fallback ({!Hwf_sim.Policy.first}) for decisions the script cannot
    take (after shrinking, some entries may no longer be runnable at
    their turn — they are skipped). *)

type t = Hwf_sim.Proc.pid list

val to_string : t -> string
(** One decision per token, 1-based pids: ["1 2 2 1"]. *)

val of_string : ?n:int -> string -> (t, string) result
(** Parses and validates: every token must be an integer [>= 1] (pids
    are 1-based on the wire) and [<= n] when the scenario's process
    count [n] is known. A failing token is named in the [Error] —
    out-of-range pids used to parse into decisions that were silently
    never runnable, so a corrupt saved schedule replayed as if empty
    and could vacuously pass {!verdict}. *)

val save : path:string -> t -> unit

val load : ?n:int -> path:string -> unit -> (t, string) result
(** [of_string] over the file's contents; [Sys_error]s become [Error]. *)

val replay :
  ?step_limit:int ->
  Explore.scenario ->
  t ->
  Hwf_sim.Engine.result * Explore.instance
(** Runs a fresh instance of the scenario under the schedule. *)

val verdict : ?step_limit:int -> Explore.scenario -> t -> (unit, string) result
(** Replays and judges: well-formedness, then the scenario's own check.
    A step-limit stop is an error. *)
