(** Counterexample minimization.

    Greedy delta debugging over failing schedules: repeatedly try to
    remove chunks of decisions, keeping any candidate that still fails
    the scenario's verdict under {!Schedule.verdict}. The result is
    locally minimal — removing any single remaining decision makes the
    failure disappear (under the deterministic replay semantics).

    Shrinking may converge on a {e different} failure than the original;
    for debugging that is a feature (it is still a real counterexample
    of the same scenario). *)

val shrink :
  ?max_rounds:int ->
  ?step_limit:int ->
  Explore.scenario ->
  Schedule.t ->
  Schedule.t
(** [shrink scenario failing] returns a minimized failing schedule.
    If [failing] does not actually fail on replay, it is returned
    unchanged. [max_rounds] (default 200) bounds replays. *)

val shrink_by :
  ?max_rounds:int -> fails:(Schedule.t -> bool) -> Schedule.t -> Schedule.t
(** The same minimization against an arbitrary failure predicate.
    [fails] must be deterministic (replay-based); it is called up to
    [max_rounds] + 1 times. Used by fault-injection campaigns, where
    replay re-runs the whole faulted configuration, not just a bare
    scenario. *)
