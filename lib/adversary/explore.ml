open Hwf_sim

type instance = {
  programs : (unit -> unit) array;
  check : Engine.result -> (unit, string) result;
}

type scenario = { name : string; config : Config.t; make : unit -> instance }

type counterexample = {
  message : string;
  trace : Trace.t;
  decisions : Proc.pid list;
}

type outcome = {
  runs : int;
  exhaustive : bool;
  counterexample : counterexample option;
}

(* One decision point of a completed run: the index chosen among
   [candidates] alternatives, and the pid it mapped to. *)
type slot = { choice : int; candidates : int; pid : Proc.pid }

(* Search-layer counters (observability; see docs/OBSERVABILITY.md).
   Atomics because subtree DFSs run on pool domains. Off by default:
   without a [stats] argument nothing is allocated or touched. The
   per-root run counts are schedule-deterministic when the search
   completes; the pool counters depend on domain racing and are
   display-only. *)
type stats = {
  subtree_runs : int Atomic.t array;  (* indexed by top-level choice *)
  pool : Hwf_par.Pool.stats;
}

let make_stats ?jobs scenario =
  let jobs =
    match jobs with Some j -> max 1 j | None -> Hwf_par.Pool.default_jobs ()
  in
  {
    subtree_runs = Array.init (max 1 (Config.n scenario.config)) (fun _ -> Atomic.make 0);
    pool = Hwf_par.Pool.make_stats ~jobs;
  }

let stats_subtree_runs s = Array.map Atomic.get s.subtree_runs
let stats_pool s = s.pool

let record_run stats slots =
  match stats with
  | None -> ()
  | Some s ->
    if Vec.length slots > 0 then begin
      let c = (Vec.get slots 0).choice in
      if c < Array.length s.subtree_runs then
        ignore (Atomic.fetch_and_add s.subtree_runs.(c) 1)
    end

let pool_of stats = Option.map (fun s -> s.pool) stats

let verdict ~on_step_limit instance (result : Engine.result) =
  match Wellformed.check result.trace with
  | v :: _ ->
    Error (Fmt.str "engine produced ill-formed trace: %a" Wellformed.pp_violation v)
  | [] -> (
    match (result.stop, on_step_limit) with
    | Engine.Step_limit, `Fail -> Error "step limit hit (possible non-termination)"
    | (Engine.Step_limit | Engine.All_finished | Engine.Policy_stopped
      | Engine.All_halted), _ ->
      instance.check result)

(* Run one schedule: follow [prefix] (indices into the candidate lists),
   then always take index 0. Records the decision slots taken. *)
let run_one ~preemption_bound ~max_depth ~step_limit ~config instance prefix =
  let slots = Vec.create () in
  let depth = ref 0 in
  let prev = ref (-1) in
  let budget = ref (match preemption_bound with None -> max_int | Some b -> b) in
  let truncated = ref false in
  let choose (view : Policy.view) =
    let r = view.runnable in
    let preferred = if List.mem !prev r then Some !prev else None in
    let candidates =
      match preferred with
      | Some p when !budget = 0 -> [ p ]
      | Some p -> p :: List.filter (fun q -> q <> p) r
      | None -> r
    in
    let d = !depth in
    incr depth;
    let idx =
      if d < Array.length prefix then prefix.(d)
      else begin
        if d >= max_depth then truncated := true;
        0
      end
    in
    let idx = if idx < List.length candidates then idx else 0 in
    let pick = List.nth candidates idx in
    let n = if d >= max_depth then 1 else List.length candidates in
    Vec.push slots { choice = idx; candidates = n; pid = pick };
    (match preferred with
    | Some p when pick <> p -> decr budget
    | Some _ | None -> ());
    prev := pick;
    Some pick
  in
  let policy = Policy.of_fun "explore" choose in
  let result = Engine.run ~step_limit ~config ~policy instance.programs in
  (result, slots, !truncated)

let backtrack slots =
  (* Deepest slot with an unexplored sibling. *)
  let n = Vec.length slots in
  let rec find i =
    if i < 0 then None
    else
      let s = Vec.get slots i in
      if s.choice + 1 < s.candidates then Some i else find (i - 1)
  in
  match find (n - 1) with
  | None -> None
  | Some i ->
    let prefix = Array.make (i + 1) 0 in
    for j = 0 to i - 1 do
      prefix.(j) <- (Vec.get slots j).choice
    done;
    prefix.(i) <- (Vec.get slots i).choice + 1;
    Some prefix

(* ---- parallel fan-out (see docs/PARALLELISM.md) ----

   [explore ~jobs] splits the decision tree at depth 0: each top-level
   candidate index roots an independent subtree, and the sequential DFS
   runs unchanged inside each one (backtracking is forbidden from
   crossing slot 0). Because the sequential DFS visits subtree 0 in
   full, then subtree 1, ... — [backtrack] increments slot 0 only when
   no deeper slot has unexplored siblings — concatenating the per-subtree
   results in index order reproduces the sequential run order exactly,
   which is what makes the merged outcome bit-identical to [~jobs:1]
   whenever the search completes within [max_runs]. *)

(* Outcome of one subtree's DFS. [sruns] counts runs actually performed
   in the subtree; on a counterexample the DFS stops, so [sruns] is also
   the canonical "runs until failure" of that subtree. *)
type subtree = { sruns : int; sexhaustive : bool; scx : counterexample option }

(* DFS from [start], restricted to the top-level branch [root] (when
   given): a backtrack prefix whose slot 0 differs means the subtree is
   exhausted. [claim] is the global max_runs budget — one claim per run,
   so the total number of engine runs across all domains never exceeds
   [max_runs]. [aborted] lets a worker retire once a lower-indexed
   subtree (earlier in canonical order) has found a counterexample. *)
let subtree_dfs ~claim ~aborted ~stats ~preemption_bound ~max_depth ~step_limit
    ~on_step_limit ~root scenario start =
  let runs = ref 0 in
  let exhaustive = ref true in
  let in_subtree prefix =
    match root with
    | None -> true
    | Some i -> Array.length prefix > 0 && prefix.(0) = i
  in
  let rec loop prefix =
    if aborted () || not (claim ()) then
      { sruns = !runs; sexhaustive = false; scx = None }
    else begin
      incr runs;
      let instance = scenario.make () in
      let result, slots, truncated =
        run_one ~preemption_bound ~max_depth ~step_limit ~config:scenario.config
          instance prefix
      in
      record_run stats slots;
      if truncated then exhaustive := false;
      match verdict ~on_step_limit instance result with
      | Error message ->
        let decisions = List.map (fun s -> s.pid) (Vec.to_list slots) in
        {
          sruns = !runs;
          sexhaustive = false;
          scx = Some { message; trace = result.trace; decisions };
        }
      | Ok () -> (
        match backtrack slots with
        | Some prefix when in_subtree prefix -> loop prefix
        | Some _ | None -> { sruns = !runs; sexhaustive = !exhaustive; scx = None })
    end
  in
  loop start

let rec atomic_min a v =
  let cur = Atomic.get a in
  if v < cur && not (Atomic.compare_and_set a cur v) then atomic_min a v

let outcome_of st =
  { runs = st.sruns; exhaustive = st.sexhaustive; counterexample = st.scx }

let explore ?preemption_bound ?(max_runs = 200_000) ?(max_depth = 10_000)
    ?(step_limit = 100_000) ?(on_step_limit = `Fail) ?(jobs = 1) ?stats scenario =
  let claimed = Atomic.make 0 in
  let claim () =
    Atomic.get claimed < max_runs && Atomic.fetch_and_add claimed 1 < max_runs
  in
  let dfs = subtree_dfs ~stats ~preemption_bound ~max_depth ~step_limit ~on_step_limit in
  let never_aborted () = false in
  if jobs <= 1 then
    outcome_of (dfs ~claim ~aborted:never_aborted ~root:None scenario [||])
  else if not (claim ()) then { runs = 0; exhaustive = false; counterexample = None }
  else begin
    (* Probe: canonical run #1 (the all-zeros schedule, i.e. the first
       run of subtree 0), which also reveals the top-level width. *)
    let instance = scenario.make () in
    let result, slots, probe_truncated =
      run_one ~preemption_bound ~max_depth ~step_limit ~config:scenario.config
        instance [||]
    in
    record_run stats slots;
    match verdict ~on_step_limit instance result with
    | Error message ->
      let decisions = List.map (fun s -> s.pid) (Vec.to_list slots) in
      {
        runs = 1;
        exhaustive = false;
        counterexample = Some { message; trace = result.trace; decisions };
      }
    | Ok () -> (
      let width = if Vec.length slots = 0 then 0 else (Vec.get slots 0).candidates in
      let continuation = backtrack slots in
      if width <= 1 then
        (* No depth-0 branching to fan out; finish sequentially. *)
        match continuation with
        | None -> { runs = 1; exhaustive = not probe_truncated; counterexample = None }
        | Some prefix ->
          let st = dfs ~claim ~aborted:never_aborted ~root:None scenario prefix in
          outcome_of
            {
              st with
              sruns = st.sruns + 1;
              sexhaustive = st.sexhaustive && not probe_truncated;
            }
      else begin
        (* Lowest subtree index with a counterexample so far: workers on
           canonically-later subtrees retire early (their results are
           discarded by the merge anyway, exactly as the sequential DFS
           never reaches them). *)
        let best = Atomic.make max_int in
        let run_subtree i =
          let aborted () = Atomic.get best < i in
          let st =
            if i = 0 then
              (* The probe was subtree 0's first run; continue after it. *)
              match continuation with
              | Some p when p.(0) = 0 ->
                let st = dfs ~claim ~aborted ~root:(Some 0) scenario p in
                {
                  st with
                  sruns = st.sruns + 1;
                  sexhaustive = st.sexhaustive && not probe_truncated;
                }
              | Some _ | None ->
                { sruns = 1; sexhaustive = not probe_truncated; scx = None }
            else dfs ~claim ~aborted ~root:(Some i) scenario [| i |]
          in
          (match st.scx with Some _ -> atomic_min best i | None -> ());
          st
        in
        let results =
          Hwf_par.Pool.map ~jobs ~batch:1 ?stats:(pool_of stats) run_subtree
            (Array.init width Fun.id)
        in
        (* Canonical merge: walk subtrees in index order — the order the
           sequential DFS visits them — summing run counts until the
           first counterexample; later subtrees' work is discarded. *)
        let total = ref 0 and exhaustive = ref true and cx = ref None in
        (try
           Array.iter
             (fun st ->
               total := !total + st.sruns;
               if not st.sexhaustive then exhaustive := false;
               match st.scx with
               | Some c ->
                 cx := Some c;
                 raise Exit
               | None -> ())
             results
         with Exit -> ());
        {
          runs = !total;
          exhaustive = !exhaustive && !cx = None;
          counterexample = !cx;
        }
      end)
  end

let iter_schedules ?preemption_bound ?(max_runs = 200_000) ?(max_depth = 10_000)
    ?(step_limit = 100_000) scenario ~f =
  let runs = ref 0 in
  let rec loop prefix =
    if !runs < max_runs then begin
      incr runs;
      let instance = scenario.make () in
      let result, slots, _truncated =
        run_one ~preemption_bound ~max_depth ~step_limit ~config:scenario.config
          instance prefix
      in
      let pids = List.map (fun s -> s.pid) (Vec.to_list slots) in
      match f ~pids result with
      | `Stop -> ()
      | `Continue -> (
        match backtrack slots with None -> () | Some prefix -> loop prefix)
    end
  in
  loop [||];
  !runs

let random_runs ?(runs = 1_000) ?(step_limit = 100_000) ?(on_step_limit = `Fail)
    ?(jobs = 1) ?stats ~seed scenario =
  (* Run [i] is fully determined by [seed + i], so the cells are
     independent and the parallel merge is by index: the reported
     counterexample is the lowest-index failure, exactly the one the
     sequential loop stops at. *)
  let one i =
    let instance = scenario.make () in
    let policy = Policy.random ~seed:(seed + i) in
    let result =
      Engine.run ~step_limit ~config:scenario.config ~policy instance.programs
    in
    match verdict ~on_step_limit instance result with
    | Error message ->
      Some { message; trace = result.trace; decisions = [] }
    | Ok () -> None
  in
  if jobs <= 1 then begin
    let rec loop i =
      if i >= runs then { runs = i; exhaustive = false; counterexample = None }
      else
        match one i with
        | Some cx -> { runs = i + 1; exhaustive = false; counterexample = Some cx }
        | None -> loop (i + 1)
    in
    loop 0
  end
  else begin
    let best = Atomic.make max_int in
    let cell i =
      (* Cells canonically after a known failure are skipped; cells
         before it still run, so the minimum failing index is exact. *)
      if Atomic.get best < i then None
      else
        match one i with
        | Some cx ->
          atomic_min best i;
          Some cx
        | None -> None
    in
    let results = Hwf_par.Pool.map ~jobs ?stats:(pool_of stats) cell (Array.init runs Fun.id) in
    let hit = ref None in
    Array.iteri
      (fun i r -> if !hit = None && r <> None then hit := Some (i, Option.get r))
      results;
    match !hit with
    | Some (i, cx) -> { runs = i + 1; exhaustive = false; counterexample = Some cx }
    | None -> { runs; exhaustive = false; counterexample = None }
  end

let pp_outcome ppf o =
  match o.counterexample with
  | None ->
    Fmt.pf ppf "OK after %d runs%s" o.runs
      (if o.exhaustive then " (exhaustive)" else "")
  | Some c -> Fmt.pf ppf "FAIL after %d runs: %s" o.runs c.message
