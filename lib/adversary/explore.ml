open Hwf_sim
module Resil = Hwf_resil.Resil
module Checkpoint = Hwf_resil.Checkpoint

type instance = {
  programs : (unit -> unit) array;
  check : Engine.result -> (unit, string) result;
}

type scenario = { name : string; config : Config.t; make : unit -> instance }

type counterexample = {
  message : string;
  trace : Trace.t;
  decisions : Proc.pid list;
}

type outcome = {
  runs : int;
  exhaustive : bool;
  counterexample : counterexample option;
  coverage : Resil.coverage;
}

(* ---- sleep-set pruning (dynamic partial-order reduction) ----

   Two scheduler transitions are {e independent} when executing them in
   either order yields the same engine state. In this engine all
   scheduler accounting — preemption stamps, ready-level counts, quantum
   guards — is per {e processor}, so transitions of processes on the
   same processor never commute (each statement advances the preemption
   accounting of every other process on that processor). Transitions on
   {e different} processors commute exactly when their data footprints
   do not conflict: same shared variable with at least one write. That
   relation is computed per decision point from the policy view
   ([next_op] of each candidate); anything unknown — a process not yet
   [Ready], a missing [next_op] — is conservatively dependent.

   The relation is only valid while programs never observe global state
   outside their [Shared] footprints. The one such door in this codebase
   is [Eff.now] (the global statement clock, counted per run by
   [Trace.now_reads]): a run that read the clock taints the search —
   see [explore] below for how taint is handled. *)

(* Footprint of one candidate at one decision point. The footprint
   record and the independence judgement live in [Policy] (the view
   layer) since the POS sampler in [Randsched] needs the same notions. *)
type cand = Policy.footprint

(* Sleep sets are pid bitmasks in an [int]; pruning is disabled for
   configurations wider than this (none exist in practice). *)
let max_sleep_pids = 62

let footprint = Policy.footprint

(* The independence relation the pruning runs on. The baseline is
   [Policy.independent]; [Hwf_lint.Indep] derives stronger (still
   sound) relations from static analysis and feeds them in through
   [explore ?relation]. The name is part of the campaign identity: a
   stronger relation changes run counts, so a checkpoint journal
   written under one relation cannot seed a resume under another. *)
type relation = { rname : string; rel : Policy.relation }

let base_relation = { rname = "base"; rel = Policy.independent }

let slept mask pid = mask land (1 lsl pid) <> 0

(* First candidate not in the sleep set, or [-1] when every candidate
   is slept. A fully-slept decision point means every enabled
   transition here is covered by a DFS-earlier sibling subtree — the
   source-set refinement discards the whole prefix instead of
   re-exploring a covered schedule (the pre-source-set fallback was
   "take 0: redundant but sound"). *)
let first_awake cands mask =
  let n = Array.length cands in
  let rec go j =
    if j >= n then -1 else if slept mask cands.(j).Policy.fpid then go (j + 1) else j
  in
  go 0

let no_cands : cand array = [||]

(* One decision point of a completed run: the index chosen among
   [candidates] alternatives, the pid it mapped to, and — when pruning —
   the candidates' footprints plus the sleep set this node was entered
   with (both recomputed from the prefix on every replay, so they are
   pure functions of the prefix and identical across jobs/grain). *)
type slot = {
  choice : int;
  candidates : int;
  pid : Proc.pid;
  cands : cand array;  (* [no_cands] when pruning is off *)
  sleep : int;  (* entry sleep set (pid bitmask); 0 when pruning is off *)
}

(* Search-layer counters (observability; see docs/OBSERVABILITY.md).
   Atomics because subtree DFSs run on pool domains. Off by default:
   without a [stats] argument nothing is allocated or touched. The
   per-root run counts are schedule-deterministic when the search
   completes; the pool counters depend on domain racing and are
   display-only. *)
type stats = {
  subtree_runs : int Atomic.t array;  (* indexed by top-level choice *)
  pruned : int Atomic.t;  (* sibling branches skipped as slept *)
  source_prunes : int Atomic.t;  (* fully-slept prefixes discarded *)
  sampled : int Atomic.t;  (* engine runs performed by [sample] *)
  pool : Hwf_par.Pool.stats;
}

let make_stats ?jobs scenario =
  let jobs =
    match jobs with Some j -> max 1 j | None -> Hwf_par.Pool.default_jobs ()
  in
  {
    subtree_runs = Array.init (max 1 (Config.n scenario.config)) (fun _ -> Atomic.make 0);
    pruned = Atomic.make 0;
    source_prunes = Atomic.make 0;
    sampled = Atomic.make 0;
    pool = Hwf_par.Pool.make_stats ~jobs;
  }

let stats_subtree_runs s = Array.map Atomic.get s.subtree_runs
let stats_pruned s = Atomic.get s.pruned
let stats_source_prunes s = Atomic.get s.source_prunes
let stats_sampled s = Atomic.get s.sampled
let stats_pool s = s.pool

let record_sampled stats =
  match stats with
  | None -> ()
  | Some s -> ignore (Atomic.fetch_and_add s.sampled 1)

let record_run stats slots =
  match stats with
  | None -> ()
  | Some s ->
    if Vec.length slots > 0 then begin
      let c = (Vec.get slots 0).choice in
      if c < Array.length s.subtree_runs then
        ignore (Atomic.fetch_and_add s.subtree_runs.(c) 1)
    end

let record_pruned stats k =
  match stats with
  | None -> ()
  | Some s -> if k > 0 then ignore (Atomic.fetch_and_add s.pruned k)

let record_source_prune stats =
  match stats with
  | None -> ()
  | Some s -> ignore (Atomic.fetch_and_add s.source_prunes 1)

let pool_of stats = Option.map (fun s -> s.pool) stats

let verdict ~on_step_limit instance (result : Engine.result) =
  match Wellformed.check result.trace with
  | v :: _ ->
    Error (Fmt.str "engine produced ill-formed trace: %a" Wellformed.pp_violation v)
  | [] -> (
    match (result.stop, on_step_limit) with
    | Engine.Step_limit, `Fail -> Error "step limit hit (possible non-termination)"
    | Engine.Decision_limit, `Fail ->
      Error "decision limit hit (statement-free spin; possible non-termination)"
    | (Engine.Step_limit | Engine.Decision_limit | Engine.All_finished
      | Engine.Policy_stopped | Engine.All_halted), _ ->
      instance.check result)

(* ---- per-worker scratch arenas ----

   A worker performs thousands of engine runs; the trace event buffer
   and the decision stack dominate its allocation. Each pool worker
   keeps one arena (created on its own domain via [Pool.map_scratch])
   and reuses both buffers across runs. The trace must be severed from
   the arena whenever it escapes into a result that outlives the run —
   a counterexample. *)
type arena = { mutable atrace : Trace.t option; aslots : slot Vec.t }

let make_arena () = { atrace = None; aslots = Vec.create () }

let arena_trace arena config =
  match arena.atrace with
  | Some t -> t
  | None ->
    let t = Trace.create config in
    arena.atrace <- Some t;
    t

let sever arena = arena.atrace <- None

(* Run one schedule: follow [prefix] (indices into the candidate lists),
   then always take the first non-slept index (index 0 when pruning is
   off). Records the decision slots taken; with [dpor] also recomputes
   the sleep sets along the path — a pure function of the prefix, which
   is what keeps checkpoint/resume and the parallel fan-out oblivious
   to pruning. Returns [(result, slots, truncated, tainted, blocked)];
   [tainted] is true when the program read the global statement clock
   ([Eff.now]), which invalidates the independence relation; [blocked]
   is true when the run was cut off at a fully-slept decision point
   (every enabled transition covered by an earlier sibling subtree), in
   which case the prefix must be discarded without a verdict check. *)
let run_one ~dpor ~relation ~preemption_bound ~max_depth ~step_limit ~config ?arena
    instance prefix =
  let slots =
    match arena with
    | Some a ->
      Vec.clear a.aslots;
      a.aslots
    | None -> Vec.create ()
  in
  let depth = ref 0 in
  let prev = ref (-1) in
  let budget = ref (match preemption_bound with None -> max_int | Some b -> b) in
  let truncated = ref false in
  let blocked = ref false in
  let sleep = ref 0 in
  let independent = relation.rel in
  let choose (view : Policy.view) =
    let r = view.runnable in
    let preferred = if List.mem !prev r then Some !prev else None in
    let candidates =
      match preferred with
      | Some p when !budget = 0 -> [ p ]
      | Some p -> p :: List.filter (fun q -> q <> p) r
      | None -> r
    in
    let cands =
      if dpor then Array.of_list (List.map (footprint view) candidates)
      else no_cands
    in
    let d = !depth in
    incr depth;
    let idx =
      if d < Array.length prefix then prefix.(d)
      else begin
        if d >= max_depth then truncated := true;
        if dpor && !sleep <> 0 then first_awake cands !sleep else 0
      end
    in
    if idx < 0 then begin
      (* Fully-slept decision point: every enabled transition is covered
         by a DFS-earlier sibling. Stop the run (Policy_stopped) — the
         caller discards the prefix without a verdict check. *)
      blocked := true;
      None
    end
    else begin
      let idx = if idx < List.length candidates then idx else 0 in
      let pick = List.nth candidates idx in
      let n = if d >= max_depth then 1 else List.length candidates in
      Vec.push slots { choice = idx; candidates = n; pid = pick; cands; sleep = !sleep };
      if dpor then begin
        (* Child sleep set: of the processes slept here or explored as
           earlier siblings, those independent of the taken transition
           still have their (unchanged) transition covered elsewhere. *)
        let taken = cands.(idx) in
        let z = ref 0 in
        Array.iteri
          (fun j c ->
            if (j < idx || slept !sleep c.Policy.fpid) && independent c taken then
              z := !z lor (1 lsl c.Policy.fpid))
          cands;
        sleep := !z
      end;
      (match preferred with
      | Some p when pick <> p -> decr budget
      | Some _ | None -> ());
      prev := pick;
      Some pick
    end
  in
  let policy = Policy.of_fun "explore" choose in
  let trace_buf = Option.map (fun a -> arena_trace a config) arena in
  let result = Engine.run ~step_limit ?trace_buf ~config ~policy instance.programs in
  (result, slots, !truncated, Trace.now_reads result.trace > 0, !blocked)

(* Deepest slot with an unexplored, non-slept sibling. With [dpor],
   siblings in the slot's entry sleep set are skipped — their subtrees
   are covered by the sibling that put them to sleep — and each skip is
   counted through [stats] (a state is abandoned exactly once, so no
   skip is double-counted). *)
let backtrack ~dpor ?stats slots =
  let n = Vec.length slots in
  let next_choice (s : slot) =
    if not dpor then
      if s.choice + 1 < s.candidates then Some (s.choice + 1) else None
    else begin
      let skipped = ref 0 in
      let rec go j =
        if j >= s.candidates then begin
          record_pruned stats !skipped;
          None
        end
        else if slept s.sleep s.cands.(j).Policy.fpid then begin
          incr skipped;
          go (j + 1)
        end
        else begin
          record_pruned stats !skipped;
          Some j
        end
      in
      go (s.choice + 1)
    end
  in
  let rec find i =
    if i < 0 then None
    else
      let s = Vec.get slots i in
      match next_choice s with Some c -> Some (i, c) | None -> find (i - 1)
  in
  match find (n - 1) with
  | None -> None
  | Some (i, c) ->
    let prefix = Array.make (i + 1) 0 in
    for j = 0 to i - 1 do
      prefix.(j) <- (Vec.get slots j).choice
    done;
    prefix.(i) <- c;
    Some prefix

(* ---- parallel fan-out (see docs/PARALLELISM.md) ----

   [explore ~jobs] splits the decision tree at depth 0: each top-level
   candidate index roots an independent subtree, and the sequential DFS
   runs unchanged inside each one (backtracking is forbidden from
   crossing slot 0). Because the sequential DFS visits subtree 0 in
   full, then subtree 1, ... — [backtrack] increments slot 0 only when
   no deeper slot has unexplored siblings — concatenating the per-subtree
   results in index order reproduces the sequential run order exactly,
   which is what makes the merged outcome bit-identical to [~jobs:1]
   whenever the search completes within [max_runs]. Sleep sets do not
   disturb this: they are recomputed from the prefix alone, so subtree
   [i]'s pruning is identical whether it runs on the caller's domain
   after subtree [i-1] or on a stolen chunk of a pool worker. *)

let tainted_msg =
  "Explore.explore: the program read the global statement clock (Eff.now) on \
   some schedules only, which invalidates sleep-set pruning; re-run with \
   ~dpor:false (--no-dpor)"

(* Outcome of one subtree's DFS. [sruns] counts runs actually performed
   in the subtree; on a counterexample the DFS stops, so [sruns] is also
   the canonical "runs until failure" of that subtree. *)
type subtree = { sruns : int; sexhaustive : bool; scx : counterexample option }

(* DFS from [start], restricted to the top-level branch [root] (when
   given): a backtrack prefix whose slot 0 differs means the subtree is
   exhausted. [claim] is the global max_runs budget — one claim per run,
   so the total number of engine runs across all domains never exceeds
   [max_runs]. [aborted] lets a worker retire once a lower-indexed
   subtree (earlier in canonical order) has found a counterexample. *)
let subtree_dfs ~dpor ~relation ~claim ~aborted ~stats ~preemption_bound ~max_depth
    ~step_limit ~on_step_limit ~root ?arena scenario start =
  let runs = ref 0 in
  let exhaustive = ref true in
  let in_subtree prefix =
    match root with
    | None -> true
    | Some i -> Array.length prefix > 0 && prefix.(0) = i
  in
  let rec loop prefix =
    if aborted () || not (claim ()) then
      { sruns = !runs; sexhaustive = false; scx = None }
    else begin
      let instance = scenario.make () in
      let result, slots, truncated, tainted, blocked =
        run_one ~dpor ~relation ~preemption_bound ~max_depth ~step_limit
          ~config:scenario.config ?arena instance prefix
      in
      if tainted && dpor then invalid_arg tainted_msg;
      if truncated then exhaustive := false;
      if blocked then begin
        (* Source-set prune: the prefix ran into a fully-slept decision
           point, so every completion of it is Mazurkiewicz-equivalent
           to a schedule in a DFS-earlier subtree. Discard it without a
           verdict check (the run is incomplete by construction) and
           keep backtracking from the decisions gathered so far. *)
        record_source_prune stats;
        match backtrack ~dpor ?stats slots with
        | Some prefix when in_subtree prefix -> loop prefix
        | Some _ | None -> { sruns = !runs; sexhaustive = !exhaustive; scx = None }
      end
      else begin
        incr runs;
        record_run stats slots;
        match verdict ~on_step_limit instance result with
        | Error message ->
          let decisions = List.map (fun s -> s.pid) (Vec.to_list slots) in
          Option.iter sever arena;
          {
            sruns = !runs;
            sexhaustive = false;
            scx = Some { message; trace = result.trace; decisions };
          }
        | Ok () -> (
          match backtrack ~dpor ?stats slots with
          | Some prefix when in_subtree prefix -> loop prefix
          | Some _ | None -> { sruns = !runs; sexhaustive = !exhaustive; scx = None })
      end
    end
  in
  loop start

let rec atomic_min a v =
  let cur = Atomic.get a in
  if v < cur && not (Atomic.compare_and_set a cur v) then atomic_min a v

(* Legacy (non-checkpointed) searches run as one completed unit; their
   coverage is trivially full. Real per-cell accounting belongs to the
   checkpointed path below. *)
let outcome_of st =
  {
    runs = st.sruns;
    exhaustive = st.sexhaustive;
    counterexample = st.scx;
    coverage = Resil.full_coverage 1;
  }

(* Pruning is requested by default but only armed when the relation is
   valid: never under a preemption bound (the candidate lists are then
   restricted, breaking the "explored or slept" invariant) and never for
   configurations too wide for the bitmask. The probe run decides the
   rest: a probe that read the global clock ([Eff.now] — every
   history-recording scenario does, on every run) disarms pruning for
   the whole search. A clock read appearing only on a {e later} schedule
   is an error ([tainted_msg]); it cannot hide behind pruning, because a
   pruned schedule executes the same per-process statement sequences as
   the explored schedule that covers it. *)
let dpor_requested ~dpor ~preemption_bound scenario =
  dpor && preemption_bound = None && Config.n scenario.config <= max_sleep_pids

let explore_plain ?preemption_bound ~max_runs ~max_depth ~step_limit ~on_step_limit
    ~jobs ~grain ~dpor ~relation ?stats scenario =
  let claimed = Atomic.make 0 in
  let claim () =
    Atomic.get claimed < max_runs && Atomic.fetch_and_add claimed 1 < max_runs
  in
  let never_aborted () = false in
  if not (claim ()) then
    {
      runs = 0;
      exhaustive = false;
      counterexample = None;
      coverage = Resil.full_coverage 1;
    }
  else begin
    let dpor_req = dpor_requested ~dpor ~preemption_bound scenario in
    (* Probe: canonical run #1 (the all-zeros schedule — sleep sets are
       empty along the all-defaults path, so this is the same schedule
       with pruning armed or not). It reveals the top-level width and
       whether the scenario reads the global clock. *)
    let arena0 = make_arena () in
    let instance = scenario.make () in
    let result, slots, probe_truncated, probe_tainted, _ =
      run_one ~dpor:dpor_req ~relation ~preemption_bound ~max_depth ~step_limit
        ~config:scenario.config ~arena:arena0 instance [||]
    in
    record_run stats slots;
    let dpor = dpor_req && not probe_tainted in
    let dfs =
      subtree_dfs ~dpor ~relation ~stats ~preemption_bound ~max_depth ~step_limit
        ~on_step_limit
    in
    match verdict ~on_step_limit instance result with
    | Error message ->
      let decisions = List.map (fun s -> s.pid) (Vec.to_list slots) in
      sever arena0;
      {
        runs = 1;
        exhaustive = false;
        counterexample = Some { message; trace = result.trace; decisions };
        coverage = Resil.full_coverage 1;
      }
    | Ok () -> (
      let width = if Vec.length slots = 0 then 0 else (Vec.get slots 0).candidates in
      let continuation = backtrack ~dpor ?stats slots in
      if jobs <= 1 || width <= 1 then
        (* No fan-out: finish the DFS on the calling domain. *)
        match continuation with
        | None ->
          {
            runs = 1;
            exhaustive = not probe_truncated;
            counterexample = None;
            coverage = Resil.full_coverage 1;
          }
        | Some prefix ->
          let st =
            dfs ~claim ~aborted:never_aborted ~root:None ~arena:arena0 scenario
              prefix
          in
          outcome_of
            {
              st with
              sruns = st.sruns + 1;
              sexhaustive = st.sexhaustive && not probe_truncated;
            }
      else begin
        (* Lowest subtree index with a counterexample so far: workers on
           canonically-later subtrees retire early (their results are
           discarded by the merge anyway, exactly as the sequential DFS
           never reaches them). *)
        let best = Atomic.make max_int in
        let run_subtree arena i =
          let aborted () = Atomic.get best < i in
          let st =
            if i = 0 then
              (* The probe was subtree 0's first run; continue after it. *)
              match continuation with
              | Some p when p.(0) = 0 ->
                let st = dfs ~claim ~aborted ~root:(Some 0) ~arena scenario p in
                {
                  st with
                  sruns = st.sruns + 1;
                  sexhaustive = st.sexhaustive && not probe_truncated;
                }
              | Some _ | None ->
                { sruns = 1; sexhaustive = not probe_truncated; scx = None }
            else dfs ~claim ~aborted ~root:(Some i) ~arena scenario [| i |]
          in
          (match st.scx with Some _ -> atomic_min best i | None -> ());
          st
        in
        let results =
          Hwf_par.Pool.map_scratch ~jobs ?grain ?stats:(pool_of stats)
            ~make:make_arena run_subtree
            (Array.init width Fun.id)
        in
        (* Canonical merge: walk subtrees in index order — the order the
           sequential DFS visits them — summing run counts until the
           first counterexample; later subtrees' work is discarded. *)
        let total = ref 0 and exhaustive = ref true and cx = ref None in
        (try
           Array.iter
             (fun st ->
               total := !total + st.sruns;
               if not st.sexhaustive then exhaustive := false;
               match st.scx with
               | Some c ->
                 cx := Some c;
                 raise Exit
               | None -> ())
             results
         with Exit -> ());
        {
          runs = !total;
          exhaustive = !exhaustive && !cx = None;
          counterexample = !cx;
          coverage = Resil.full_coverage 1;
        }
      end)
  end

(* ---- checkpointed exploration (see docs/ROBUSTNESS.md) ----

   With a checkpoint the search is always decomposed into top-level
   subtrees — the journal's cells — even at [jobs = 1], because the
   subtree is the unit of resume. Subtree [i] runs the DFS from prefix
   [|i|], whose first run is exactly the schedule the sequential DFS
   reaches when it first enters that subtree, so a clean completed
   campaign merges to the plain outcome run for run. Grain only groups
   subtree cells for distribution — the journal stays per subtree, so a
   resumed campaign is byte-identical at every grain. *)

let strip_prefix ~prefix s =
  let np = String.length prefix and ns = String.length s in
  if ns >= np && String.sub s 0 np = prefix then Some (String.sub s np (ns - np))
  else None

let index_of_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i =
    if i + m > n then None else if String.sub s i m = sub then Some i else go (i + 1)
  in
  go 0

(* [msg] is last: counterexample messages may contain any character
   (the journal layer JSON-escapes; this layer only needs an
   unambiguous last field). The schedule is the raw 0-based pid
   sequence, space-separated. *)
let payload_of_subtree st =
  match st.scx with
  | None ->
    Printf.sprintf "runs=%d;exh=%d;cx=none" st.sruns (if st.sexhaustive then 1 else 0)
  | Some c ->
    Printf.sprintf "runs=%d;exh=0;cx=%s;msg=%s" st.sruns
      (String.concat " " (List.map string_of_int c.decisions))
      c.message

(* A restored counterexample's trace is reconstructed by replaying its
   decision sequence (scripted policy, deterministic fallback) — the
   same mechanism Schedule.replay uses. *)
let replay_decisions ~step_limit scenario decisions message =
  let instance = scenario.make () in
  let policy = Policy.scripted ~fallback:Policy.first decisions in
  let result = Engine.run ~step_limit ~config:scenario.config ~policy instance.programs in
  { message; trace = result.trace; decisions }

let subtree_of_payload ~step_limit scenario payload =
  let ( let* ) = Option.bind in
  let int_kv key part =
    Option.bind (strip_prefix ~prefix:(key ^ "=") part) int_of_string_opt
  in
  let* mi = index_of_sub payload ";cx=" in
  let tail = String.sub payload (mi + 4) (String.length payload - mi - 4) in
  let* sruns, sexh =
    match String.split_on_char ';' (String.sub payload 0 mi) with
    | [ r; e ] ->
      let* r = int_kv "runs" r in
      let* e = int_kv "exh" e in
      Some (r, e = 1)
    | _ -> None
  in
  if tail = "none" then Some { sruns; sexhaustive = sexh; scx = None }
  else
    let* mi = index_of_sub tail ";msg=" in
    let message = String.sub tail (mi + 5) (String.length tail - mi - 5) in
    let sched = String.sub tail 0 mi in
    let* decisions =
      List.fold_left
        (fun acc p ->
          let* acc = acc in
          let* v = int_of_string_opt p in
          Some (v :: acc))
        (Some [])
        (if sched = "" then [] else String.split_on_char ' ' sched)
      |> Option.map List.rev
    in
    Some
      {
        sruns;
        sexhaustive = false;
        scx = Some (replay_decisions ~step_limit scenario decisions message);
      }

(* [dpor] is the {e armed} value (after the probe's taint decision): it
   changes run counts, so it is part of the campaign identity — a
   journal written with pruning cannot seed a resume without it. *)
let campaign_id ~dpor ~relation ~preemption_bound ~max_runs ~max_depth ~step_limit
    ~on_step_limit scenario =
  let params =
    Printf.sprintf "%s|pb=%s|runs=%d|depth=%d|steps=%d|osl=%s|dpor=%b|rel=%s"
      scenario.name
      (match preemption_bound with None -> "-" | Some b -> string_of_int b)
      max_runs max_depth step_limit
      (match on_step_limit with `Fail -> "fail" | `Ignore -> "ignore")
      dpor relation.rname
  in
  Printf.sprintf "explore/%s/%s" scenario.name (Digest.to_hex (Digest.string params))

let explore_checkpointed ~preemption_bound ~max_runs ~max_depth ~step_limit
    ~on_step_limit ~jobs ~grain ~dpor ~relation ~stats ~cell_wall_s ~path ~resume
    ~should_stop scenario =
  (* Structural probe: discovers the top-level width and the clock-read
     taint that decides pruning. Uncounted and unrecorded — subtree 0
     re-runs this schedule as its first run. *)
  let dpor_req = dpor_requested ~dpor ~preemption_bound scenario in
  let probe_inst = scenario.make () in
  let _, probe_slots, _, probe_tainted, _ =
    run_one ~dpor:dpor_req ~relation ~preemption_bound ~max_depth ~step_limit
      ~config:scenario.config probe_inst [||]
  in
  let dpor = dpor_req && not probe_tainted in
  let width =
    if Vec.length probe_slots = 0 then 1 else max 1 (Vec.get probe_slots 0).candidates
  in
  let campaign =
    campaign_id ~dpor ~relation ~preemption_bound ~max_runs ~max_depth ~step_limit
      ~on_step_limit scenario
  in
  match Checkpoint.open_ ~path ~campaign ~cells:width ~resume with
  | Error msg -> invalid_arg ("Explore.explore: " ^ msg)
  | Ok (journal, entries) ->
    let restored = Hashtbl.create 8 in
    List.iter
      (fun (e : Checkpoint.entry) ->
        if e.idx >= 0 && e.idx < width then
          match subtree_of_payload ~step_limit scenario e.payload with
          | Some st -> Hashtbl.replace restored e.idx st
          | None -> ())
      entries;
    (* Seed the global budget with the journaled work, so the resumed
       search claims only the remaining runs. *)
    let already = Hashtbl.fold (fun _ st acc -> acc + st.sruns) restored 0 in
    let claimed = Atomic.make already in
    let claim () =
      Atomic.get claimed < max_runs && Atomic.fetch_and_add claimed 1 < max_runs
    in
    let best = Atomic.make max_int in
    let eval arena i deadline =
      let aborted () =
        Atomic.get best < i || should_stop () || Resil.interrupted ()
        (* Watchdog demotion: an expired deadline retires the subtree
           with a partial, non-exhaustive result instead of hanging. *)
        || Resil.expired deadline
      in
      let root = if width <= 1 then None else Some i in
      let start = if width <= 1 then [||] else [| i |] in
      let st =
        subtree_dfs ~dpor ~relation ~claim ~aborted ~stats ~preemption_bound
          ~max_depth ~step_limit ~on_step_limit ~root ~arena scenario start
      in
      (match st.scx with Some _ -> atomic_min best i | None -> ());
      (* Journal only untainted cells: a cell cut short by an interrupt
         or stop request must re-run on resume, not restore partial. *)
      if not (should_stop () || Resil.interrupted ()) then
        Checkpoint.record journal ~idx:i
          ~key:(Printf.sprintf "subtree-%d" i)
          ~payload:(payload_of_subtree st);
      st
    in
    let deadline_for ~attempt:_ =
      match cell_wall_s with
      | None -> Resil.no_deadline
      | Some s -> Resil.deadline ~wall_s:s ()
    in
    let cells =
      Hwf_par.Pool.map_scratch ~jobs ?grain ?stats:(pool_of stats)
        ~make:make_arena
        (fun arena i ->
          match Hashtbl.find_opt restored i with
          | Some st -> { Resil.outcome = Resil.Ok_cell st; attempts = 1 }
          | None ->
            if Resil.interrupted () || should_stop () then
              { Resil.outcome = Resil.Skipped "interrupted"; attempts = 0 }
            else Resil.run_cell ~retry:Resil.no_retry ~deadline_for (eval arena i))
        (Array.init width Fun.id)
    in
    Checkpoint.close journal;
    (* Canonical merge, stopping at the first cell without a result: a
       counterexample found after a gap cannot be called canonical, so
       the gap truncates the merge and coverage reports the rest. *)
    let total = ref 0 and exhaustive = ref true and cx = ref None in
    (try
       Array.iter
         (fun cell ->
           match cell.Resil.outcome with
           | Resil.Ok_cell st -> (
             total := !total + st.sruns;
             if not st.sexhaustive then exhaustive := false;
             match st.scx with
             | Some c ->
               cx := Some c;
               raise Exit
             | None -> ())
           | Resil.Timed_out _ | Resil.Errored _ | Resil.Skipped _ ->
             exhaustive := false;
             raise Exit)
         cells
     with Exit -> ());
    {
      runs = !total;
      exhaustive = !exhaustive && !cx = None;
      counterexample = !cx;
      coverage = Resil.coverage_of_cells cells;
    }

let explore ?preemption_bound ?(max_runs = 200_000) ?(max_depth = 10_000)
    ?(step_limit = 100_000) ?(on_step_limit = `Fail) ?(jobs = 1) ?grain
    ?(dpor = true) ?(relation = base_relation) ?stats ?cell_wall_s ?checkpoint
    ?(resume = false) ?(should_stop = fun () -> false) scenario =
  match checkpoint with
  | None ->
    explore_plain ?preemption_bound ~max_runs ~max_depth ~step_limit ~on_step_limit
      ~jobs ~grain ~dpor ~relation ?stats scenario
  | Some path ->
    explore_checkpointed ~preemption_bound ~max_runs ~max_depth ~step_limit
      ~on_step_limit ~jobs ~grain ~dpor ~relation ~stats ~cell_wall_s ~path ~resume
      ~should_stop scenario

let iter_schedules ?preemption_bound ?(max_runs = 200_000) ?(max_depth = 10_000)
    ?(step_limit = 100_000) scenario ~f =
  (* Deliberately unpruned: callers (Bivalence) reason about the full
     schedule enumeration, not a reduced one. *)
  let runs = ref 0 in
  let rec loop prefix =
    if !runs < max_runs then begin
      incr runs;
      let instance = scenario.make () in
      let result, slots, _truncated, _tainted, _blocked =
        run_one ~dpor:false ~relation:base_relation ~preemption_bound ~max_depth
          ~step_limit ~config:scenario.config instance prefix
      in
      let pids = List.map (fun s -> s.pid) (Vec.to_list slots) in
      match f ~pids result with
      | `Stop -> ()
      | `Continue -> (
        match backtrack ~dpor:false slots with
        | None -> ()
        | Some prefix -> loop prefix)
    end
  in
  loop [||];
  !runs

(* Per-run seed derivation for sampling campaigns, exposed for the
   regression test that adjacent campaign seeds stay disjoint. *)
let run_seed = Randsched.mix

(* Wrap a policy so the decisions it takes (the schedule) are recorded:
   a sampled counterexample then carries a replayable decision list and
   flows through the ordinary [Schedule]/[Shrink] pipeline. *)
let record_decisions policy decisions =
  Policy.of_factory policy.Policy.name (fun () ->
      let choose = Policy.prepare policy in
      fun view ->
        match choose view with
        | Some pid as r ->
          decisions := pid :: !decisions;
          r
        | None -> None)

let sample ?(runs = 1_000) ?(step_limit = 100_000) ?(on_step_limit = `Fail)
    ?(jobs = 1) ?grain ?stats ?runner ~strategy ~seed scenario =
  (* Run [i] is fully determined by [run_seed seed i] (a splitmix-style
     hash — the earlier [seed + i] scheme made adjacent campaign seeds
     share all but one of their runs), so the cells are independent and
     the parallel merge is by index: the reported counterexample is the
     lowest-index failure, exactly the one the sequential loop stops
     at. *)
  let profile, horizon =
    (* SURW weights candidates by estimated remaining statements and PCT
       draws change points over a schedule-length horizon; both
       estimates come from one deterministic pilot run, computed before
       the fan-out so run [i] stays a pure function of [run_seed seed i]
       and cells remain independent across [jobs]. *)
    match strategy with
    | Randsched.Naive | Randsched.Pos -> (None, None)
    | Randsched.Pct _ | Randsched.Surw ->
      let instance = scenario.make () in
      let result =
        Engine.run ~step_limit ~config:scenario.config
          ~policy:(Policy.round_robin ()) instance.programs
      in
      let total = Array.fold_left ( + ) 0 result.own_steps in
      (Some result.own_steps, Some (max 16 total))
  in
  let one arena i =
    let instance = scenario.make () in
    let decisions = ref [] in
    let policy =
      record_decisions
        (Randsched.policy ?horizon ?profile strategy
           ~seed:(run_seed seed i))
        decisions
    in
    let result =
      match runner with
      | None ->
        let trace_buf = arena_trace arena scenario.config in
        Engine.run ~step_limit ~trace_buf ~config:scenario.config ~policy
          instance.programs
      | Some f -> f ~step_limit ~policy instance
    in
    record_sampled stats;
    match verdict ~on_step_limit instance result with
    | Error message ->
      sever arena;
      Some { message; trace = result.trace; decisions = List.rev !decisions }
    | Ok () -> None
  in
  if jobs <= 1 then begin
    let arena = make_arena () in
    let rec loop i =
      if i >= runs then
        {
          runs = i;
          exhaustive = false;
          counterexample = None;
          coverage = Resil.full_coverage 1;
        }
      else
        match one arena i with
        | Some cx ->
          {
            runs = i + 1;
            exhaustive = false;
            counterexample = Some cx;
            coverage = Resil.full_coverage 1;
          }
        | None -> loop (i + 1)
    in
    loop 0
  end
  else begin
    let best = Atomic.make max_int in
    let cell arena i =
      (* Cells canonically after a known failure are skipped; cells
         before it still run, so the minimum failing index is exact. *)
      if Atomic.get best < i then None
      else
        match one arena i with
        | Some cx ->
          atomic_min best i;
          Some cx
        | None -> None
    in
    let results =
      Hwf_par.Pool.map_scratch ~jobs ?grain ?stats:(pool_of stats)
        ~make:make_arena cell (Array.init runs Fun.id)
    in
    let hit = ref None in
    Array.iteri
      (fun i r -> if !hit = None && r <> None then hit := Some (i, Option.get r))
      results;
    match !hit with
    | Some (i, cx) ->
      {
        runs = i + 1;
        exhaustive = false;
        counterexample = Some cx;
        coverage = Resil.full_coverage 1;
      }
    | None ->
      { runs; exhaustive = false; counterexample = None; coverage = Resil.full_coverage 1 }
  end

let random_runs ?runs ?step_limit ?on_step_limit ?jobs ?grain ?stats ~seed
    scenario =
  sample ?runs ?step_limit ?on_step_limit ?jobs ?grain ?stats
    ~strategy:Randsched.Naive ~seed scenario

(* Exact (Clopper–Pearson-style) confidence interval on
   schedules-to-first-bug from a geometric observation: the first bug at
   run [k] inverts P(X <= k) resp. P(X >= k) at alpha/2; no bug in [n]
   runs gives the one-sided "rule of three" bound. *)
let stf_ci ?(level = 0.95) (o : outcome) =
  let alpha = 1.0 -. level in
  match o.counterexample with
  | Some _ ->
    let k = float_of_int (max 1 o.runs) in
    let p_lo = 1.0 -. ((1.0 -. (alpha /. 2.0)) ** (1.0 /. k)) in
    let p_hi =
      if o.runs <= 1 then 1.0 else 1.0 -. ((alpha /. 2.0) ** (1.0 /. (k -. 1.0)))
    in
    (1.0 /. p_hi, 1.0 /. p_lo)
  | None ->
    if o.runs <= 0 then (0.0, infinity)
    else
      let n = float_of_int o.runs in
      let p_hi = 1.0 -. (alpha ** (1.0 /. n)) in
      (1.0 /. p_hi, infinity)

let pp_outcome ppf o =
  (match o.counterexample with
  | None ->
    Fmt.pf ppf "OK after %d runs%s" o.runs
      (if o.exhaustive then " (exhaustive)" else "")
  | Some c -> Fmt.pf ppf "FAIL after %d runs: %s" o.runs c.message);
  (* Printed only when incomplete: clean-run output is unchanged, and a
     partial result cannot be mistaken for a complete one. *)
  if not (Resil.complete o.coverage) then
    Fmt.pf ppf " [INCOMPLETE coverage: %a]" Resil.pp_coverage o.coverage
