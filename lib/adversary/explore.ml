open Hwf_sim

type instance = {
  programs : (unit -> unit) array;
  check : Engine.result -> (unit, string) result;
}

type scenario = { name : string; config : Config.t; make : unit -> instance }

type counterexample = {
  message : string;
  trace : Trace.t;
  decisions : Proc.pid list;
}

type outcome = {
  runs : int;
  exhaustive : bool;
  counterexample : counterexample option;
}

(* One decision point of a completed run: the index chosen among
   [candidates] alternatives, and the pid it mapped to. *)
type slot = { choice : int; candidates : int; pid : Proc.pid }

let verdict ~on_step_limit instance (result : Engine.result) =
  match Wellformed.check result.trace with
  | v :: _ ->
    Error (Fmt.str "engine produced ill-formed trace: %a" Wellformed.pp_violation v)
  | [] -> (
    match (result.stop, on_step_limit) with
    | Engine.Step_limit, `Fail -> Error "step limit hit (possible non-termination)"
    | (Engine.Step_limit | Engine.All_finished | Engine.Policy_stopped
      | Engine.All_halted), _ ->
      instance.check result)

(* Run one schedule: follow [prefix] (indices into the candidate lists),
   then always take index 0. Records the decision slots taken. *)
let run_one ~preemption_bound ~max_depth ~step_limit ~config instance prefix =
  let slots = Vec.create () in
  let depth = ref 0 in
  let prev = ref (-1) in
  let budget = ref (match preemption_bound with None -> max_int | Some b -> b) in
  let truncated = ref false in
  let choose (view : Policy.view) =
    let r = view.runnable in
    let preferred = if List.mem !prev r then Some !prev else None in
    let candidates =
      match preferred with
      | Some p when !budget = 0 -> [ p ]
      | Some p -> p :: List.filter (fun q -> q <> p) r
      | None -> r
    in
    let d = !depth in
    incr depth;
    let idx =
      if d < Array.length prefix then prefix.(d)
      else begin
        if d >= max_depth then truncated := true;
        0
      end
    in
    let idx = if idx < List.length candidates then idx else 0 in
    let pick = List.nth candidates idx in
    let n = if d >= max_depth then 1 else List.length candidates in
    Vec.push slots { choice = idx; candidates = n; pid = pick };
    (match preferred with
    | Some p when pick <> p -> decr budget
    | Some _ | None -> ());
    prev := pick;
    Some pick
  in
  let policy = Policy.of_fun "explore" choose in
  let result = Engine.run ~step_limit ~config ~policy instance.programs in
  (result, slots, !truncated)

let backtrack slots =
  (* Deepest slot with an unexplored sibling. *)
  let n = Vec.length slots in
  let rec find i =
    if i < 0 then None
    else
      let s = Vec.get slots i in
      if s.choice + 1 < s.candidates then Some i else find (i - 1)
  in
  match find (n - 1) with
  | None -> None
  | Some i ->
    let prefix = Array.make (i + 1) 0 in
    for j = 0 to i - 1 do
      prefix.(j) <- (Vec.get slots j).choice
    done;
    prefix.(i) <- (Vec.get slots i).choice + 1;
    Some prefix

let explore ?preemption_bound ?(max_runs = 200_000) ?(max_depth = 10_000)
    ?(step_limit = 100_000) ?(on_step_limit = `Fail) scenario =
  let runs = ref 0 in
  let exhaustive = ref true in
  let rec loop prefix =
    if !runs >= max_runs then begin
      exhaustive := false;
      { runs = !runs; exhaustive = false; counterexample = None }
    end
    else begin
      incr runs;
      let instance = scenario.make () in
      let result, slots, truncated =
        run_one ~preemption_bound ~max_depth ~step_limit ~config:scenario.config
          instance prefix
      in
      if truncated then exhaustive := false;
      match verdict ~on_step_limit instance result with
      | Error message ->
        let decisions = List.map (fun s -> s.pid) (Vec.to_list slots) in
        {
          runs = !runs;
          exhaustive = false;
          counterexample = Some { message; trace = result.trace; decisions };
        }
      | Ok () -> (
        match backtrack slots with
        | None -> { runs = !runs; exhaustive = !exhaustive; counterexample = None }
        | Some prefix -> loop prefix)
    end
  in
  loop [||]

let iter_schedules ?preemption_bound ?(max_runs = 200_000) ?(max_depth = 10_000)
    ?(step_limit = 100_000) scenario ~f =
  let runs = ref 0 in
  let rec loop prefix =
    if !runs < max_runs then begin
      incr runs;
      let instance = scenario.make () in
      let result, slots, _truncated =
        run_one ~preemption_bound ~max_depth ~step_limit ~config:scenario.config
          instance prefix
      in
      let pids = List.map (fun s -> s.pid) (Vec.to_list slots) in
      match f ~pids result with
      | `Stop -> ()
      | `Continue -> (
        match backtrack slots with None -> () | Some prefix -> loop prefix)
    end
  in
  loop [||];
  !runs

let random_runs ?(runs = 1_000) ?(step_limit = 100_000) ?(on_step_limit = `Fail)
    ~seed scenario =
  let rec loop i =
    if i >= runs then { runs = i; exhaustive = false; counterexample = None }
    else begin
      let instance = scenario.make () in
      let policy = Policy.random ~seed:(seed + i) in
      let result =
        Engine.run ~step_limit ~config:scenario.config ~policy instance.programs
      in
      match verdict ~on_step_limit instance result with
      | Error message ->
        {
          runs = i + 1;
          exhaustive = false;
          counterexample = Some { message; trace = result.trace; decisions = [] };
        }
      | Ok () -> loop (i + 1)
    end
  in
  loop 0

let pp_outcome ppf o =
  match o.counterexample with
  | None ->
    Fmt.pf ppf "OK after %d runs%s" o.runs
      (if o.exhaustive then " (exhaustive)" else "")
  | Some c -> Fmt.pf ppf "FAIL after %d runs: %s" o.runs c.message
