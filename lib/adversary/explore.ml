open Hwf_sim
module Resil = Hwf_resil.Resil
module Checkpoint = Hwf_resil.Checkpoint

type instance = {
  programs : (unit -> unit) array;
  check : Engine.result -> (unit, string) result;
}

type scenario = { name : string; config : Config.t; make : unit -> instance }

type counterexample = {
  message : string;
  trace : Trace.t;
  decisions : Proc.pid list;
}

type outcome = {
  runs : int;
  exhaustive : bool;
  counterexample : counterexample option;
  coverage : Resil.coverage;
}

(* One decision point of a completed run: the index chosen among
   [candidates] alternatives, and the pid it mapped to. *)
type slot = { choice : int; candidates : int; pid : Proc.pid }

(* Search-layer counters (observability; see docs/OBSERVABILITY.md).
   Atomics because subtree DFSs run on pool domains. Off by default:
   without a [stats] argument nothing is allocated or touched. The
   per-root run counts are schedule-deterministic when the search
   completes; the pool counters depend on domain racing and are
   display-only. *)
type stats = {
  subtree_runs : int Atomic.t array;  (* indexed by top-level choice *)
  pool : Hwf_par.Pool.stats;
}

let make_stats ?jobs scenario =
  let jobs =
    match jobs with Some j -> max 1 j | None -> Hwf_par.Pool.default_jobs ()
  in
  {
    subtree_runs = Array.init (max 1 (Config.n scenario.config)) (fun _ -> Atomic.make 0);
    pool = Hwf_par.Pool.make_stats ~jobs;
  }

let stats_subtree_runs s = Array.map Atomic.get s.subtree_runs
let stats_pool s = s.pool

let record_run stats slots =
  match stats with
  | None -> ()
  | Some s ->
    if Vec.length slots > 0 then begin
      let c = (Vec.get slots 0).choice in
      if c < Array.length s.subtree_runs then
        ignore (Atomic.fetch_and_add s.subtree_runs.(c) 1)
    end

let pool_of stats = Option.map (fun s -> s.pool) stats

let verdict ~on_step_limit instance (result : Engine.result) =
  match Wellformed.check result.trace with
  | v :: _ ->
    Error (Fmt.str "engine produced ill-formed trace: %a" Wellformed.pp_violation v)
  | [] -> (
    match (result.stop, on_step_limit) with
    | Engine.Step_limit, `Fail -> Error "step limit hit (possible non-termination)"
    | (Engine.Step_limit | Engine.All_finished | Engine.Policy_stopped
      | Engine.All_halted), _ ->
      instance.check result)

(* Run one schedule: follow [prefix] (indices into the candidate lists),
   then always take index 0. Records the decision slots taken. *)
let run_one ~preemption_bound ~max_depth ~step_limit ~config instance prefix =
  let slots = Vec.create () in
  let depth = ref 0 in
  let prev = ref (-1) in
  let budget = ref (match preemption_bound with None -> max_int | Some b -> b) in
  let truncated = ref false in
  let choose (view : Policy.view) =
    let r = view.runnable in
    let preferred = if List.mem !prev r then Some !prev else None in
    let candidates =
      match preferred with
      | Some p when !budget = 0 -> [ p ]
      | Some p -> p :: List.filter (fun q -> q <> p) r
      | None -> r
    in
    let d = !depth in
    incr depth;
    let idx =
      if d < Array.length prefix then prefix.(d)
      else begin
        if d >= max_depth then truncated := true;
        0
      end
    in
    let idx = if idx < List.length candidates then idx else 0 in
    let pick = List.nth candidates idx in
    let n = if d >= max_depth then 1 else List.length candidates in
    Vec.push slots { choice = idx; candidates = n; pid = pick };
    (match preferred with
    | Some p when pick <> p -> decr budget
    | Some _ | None -> ());
    prev := pick;
    Some pick
  in
  let policy = Policy.of_fun "explore" choose in
  let result = Engine.run ~step_limit ~config ~policy instance.programs in
  (result, slots, !truncated)

let backtrack slots =
  (* Deepest slot with an unexplored sibling. *)
  let n = Vec.length slots in
  let rec find i =
    if i < 0 then None
    else
      let s = Vec.get slots i in
      if s.choice + 1 < s.candidates then Some i else find (i - 1)
  in
  match find (n - 1) with
  | None -> None
  | Some i ->
    let prefix = Array.make (i + 1) 0 in
    for j = 0 to i - 1 do
      prefix.(j) <- (Vec.get slots j).choice
    done;
    prefix.(i) <- (Vec.get slots i).choice + 1;
    Some prefix

(* ---- parallel fan-out (see docs/PARALLELISM.md) ----

   [explore ~jobs] splits the decision tree at depth 0: each top-level
   candidate index roots an independent subtree, and the sequential DFS
   runs unchanged inside each one (backtracking is forbidden from
   crossing slot 0). Because the sequential DFS visits subtree 0 in
   full, then subtree 1, ... — [backtrack] increments slot 0 only when
   no deeper slot has unexplored siblings — concatenating the per-subtree
   results in index order reproduces the sequential run order exactly,
   which is what makes the merged outcome bit-identical to [~jobs:1]
   whenever the search completes within [max_runs]. *)

(* Outcome of one subtree's DFS. [sruns] counts runs actually performed
   in the subtree; on a counterexample the DFS stops, so [sruns] is also
   the canonical "runs until failure" of that subtree. *)
type subtree = { sruns : int; sexhaustive : bool; scx : counterexample option }

(* DFS from [start], restricted to the top-level branch [root] (when
   given): a backtrack prefix whose slot 0 differs means the subtree is
   exhausted. [claim] is the global max_runs budget — one claim per run,
   so the total number of engine runs across all domains never exceeds
   [max_runs]. [aborted] lets a worker retire once a lower-indexed
   subtree (earlier in canonical order) has found a counterexample. *)
let subtree_dfs ~claim ~aborted ~stats ~preemption_bound ~max_depth ~step_limit
    ~on_step_limit ~root scenario start =
  let runs = ref 0 in
  let exhaustive = ref true in
  let in_subtree prefix =
    match root with
    | None -> true
    | Some i -> Array.length prefix > 0 && prefix.(0) = i
  in
  let rec loop prefix =
    if aborted () || not (claim ()) then
      { sruns = !runs; sexhaustive = false; scx = None }
    else begin
      incr runs;
      let instance = scenario.make () in
      let result, slots, truncated =
        run_one ~preemption_bound ~max_depth ~step_limit ~config:scenario.config
          instance prefix
      in
      record_run stats slots;
      if truncated then exhaustive := false;
      match verdict ~on_step_limit instance result with
      | Error message ->
        let decisions = List.map (fun s -> s.pid) (Vec.to_list slots) in
        {
          sruns = !runs;
          sexhaustive = false;
          scx = Some { message; trace = result.trace; decisions };
        }
      | Ok () -> (
        match backtrack slots with
        | Some prefix when in_subtree prefix -> loop prefix
        | Some _ | None -> { sruns = !runs; sexhaustive = !exhaustive; scx = None })
    end
  in
  loop start

let rec atomic_min a v =
  let cur = Atomic.get a in
  if v < cur && not (Atomic.compare_and_set a cur v) then atomic_min a v

(* Legacy (non-checkpointed) searches run as one completed unit; their
   coverage is trivially full. Real per-cell accounting belongs to the
   checkpointed path below. *)
let outcome_of st =
  {
    runs = st.sruns;
    exhaustive = st.sexhaustive;
    counterexample = st.scx;
    coverage = Resil.full_coverage 1;
  }

let explore_plain ?preemption_bound ~max_runs ~max_depth ~step_limit ~on_step_limit
    ~jobs ?stats scenario =
  let claimed = Atomic.make 0 in
  let claim () =
    Atomic.get claimed < max_runs && Atomic.fetch_and_add claimed 1 < max_runs
  in
  let dfs = subtree_dfs ~stats ~preemption_bound ~max_depth ~step_limit ~on_step_limit in
  let never_aborted () = false in
  if jobs <= 1 then
    outcome_of (dfs ~claim ~aborted:never_aborted ~root:None scenario [||])
  else if not (claim ()) then
    {
      runs = 0;
      exhaustive = false;
      counterexample = None;
      coverage = Resil.full_coverage 1;
    }
  else begin
    (* Probe: canonical run #1 (the all-zeros schedule, i.e. the first
       run of subtree 0), which also reveals the top-level width. *)
    let instance = scenario.make () in
    let result, slots, probe_truncated =
      run_one ~preemption_bound ~max_depth ~step_limit ~config:scenario.config
        instance [||]
    in
    record_run stats slots;
    match verdict ~on_step_limit instance result with
    | Error message ->
      let decisions = List.map (fun s -> s.pid) (Vec.to_list slots) in
      {
        runs = 1;
        exhaustive = false;
        counterexample = Some { message; trace = result.trace; decisions };
        coverage = Resil.full_coverage 1;
      }
    | Ok () -> (
      let width = if Vec.length slots = 0 then 0 else (Vec.get slots 0).candidates in
      let continuation = backtrack slots in
      if width <= 1 then
        (* No depth-0 branching to fan out; finish sequentially. *)
        match continuation with
        | None ->
          {
            runs = 1;
            exhaustive = not probe_truncated;
            counterexample = None;
            coverage = Resil.full_coverage 1;
          }
        | Some prefix ->
          let st = dfs ~claim ~aborted:never_aborted ~root:None scenario prefix in
          outcome_of
            {
              st with
              sruns = st.sruns + 1;
              sexhaustive = st.sexhaustive && not probe_truncated;
            }
      else begin
        (* Lowest subtree index with a counterexample so far: workers on
           canonically-later subtrees retire early (their results are
           discarded by the merge anyway, exactly as the sequential DFS
           never reaches them). *)
        let best = Atomic.make max_int in
        let run_subtree i =
          let aborted () = Atomic.get best < i in
          let st =
            if i = 0 then
              (* The probe was subtree 0's first run; continue after it. *)
              match continuation with
              | Some p when p.(0) = 0 ->
                let st = dfs ~claim ~aborted ~root:(Some 0) scenario p in
                {
                  st with
                  sruns = st.sruns + 1;
                  sexhaustive = st.sexhaustive && not probe_truncated;
                }
              | Some _ | None ->
                { sruns = 1; sexhaustive = not probe_truncated; scx = None }
            else dfs ~claim ~aborted ~root:(Some i) scenario [| i |]
          in
          (match st.scx with Some _ -> atomic_min best i | None -> ());
          st
        in
        let results =
          Hwf_par.Pool.map ~jobs ~batch:1 ?stats:(pool_of stats) run_subtree
            (Array.init width Fun.id)
        in
        (* Canonical merge: walk subtrees in index order — the order the
           sequential DFS visits them — summing run counts until the
           first counterexample; later subtrees' work is discarded. *)
        let total = ref 0 and exhaustive = ref true and cx = ref None in
        (try
           Array.iter
             (fun st ->
               total := !total + st.sruns;
               if not st.sexhaustive then exhaustive := false;
               match st.scx with
               | Some c ->
                 cx := Some c;
                 raise Exit
               | None -> ())
             results
         with Exit -> ());
        {
          runs = !total;
          exhaustive = !exhaustive && !cx = None;
          counterexample = !cx;
          coverage = Resil.full_coverage 1;
        }
      end)
  end

(* ---- checkpointed exploration (see docs/ROBUSTNESS.md) ----

   With a checkpoint the search is always decomposed into top-level
   subtrees — the journal's cells — even at [jobs = 1], because the
   subtree is the unit of resume. Subtree [i] runs the DFS from prefix
   [|i|], whose first run is exactly the schedule the sequential DFS
   reaches when it first enters that subtree, so a clean completed
   campaign merges to the plain outcome run for run. *)

let strip_prefix ~prefix s =
  let np = String.length prefix and ns = String.length s in
  if ns >= np && String.sub s 0 np = prefix then Some (String.sub s np (ns - np))
  else None

let index_of_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i =
    if i + m > n then None else if String.sub s i m = sub then Some i else go (i + 1)
  in
  go 0

(* [msg] is last: counterexample messages may contain any character
   (the journal layer JSON-escapes; this layer only needs an
   unambiguous last field). The schedule is the raw 0-based pid
   sequence, space-separated. *)
let payload_of_subtree st =
  match st.scx with
  | None ->
    Printf.sprintf "runs=%d;exh=%d;cx=none" st.sruns (if st.sexhaustive then 1 else 0)
  | Some c ->
    Printf.sprintf "runs=%d;exh=0;cx=%s;msg=%s" st.sruns
      (String.concat " " (List.map string_of_int c.decisions))
      c.message

(* A restored counterexample's trace is reconstructed by replaying its
   decision sequence (scripted policy, deterministic fallback) — the
   same mechanism Schedule.replay uses. *)
let replay_decisions ~step_limit scenario decisions message =
  let instance = scenario.make () in
  let policy = Policy.scripted ~fallback:Policy.first decisions in
  let result = Engine.run ~step_limit ~config:scenario.config ~policy instance.programs in
  { message; trace = result.trace; decisions }

let subtree_of_payload ~step_limit scenario payload =
  let ( let* ) = Option.bind in
  let int_kv key part =
    Option.bind (strip_prefix ~prefix:(key ^ "=") part) int_of_string_opt
  in
  let* mi = index_of_sub payload ";cx=" in
  let tail = String.sub payload (mi + 4) (String.length payload - mi - 4) in
  let* sruns, sexh =
    match String.split_on_char ';' (String.sub payload 0 mi) with
    | [ r; e ] ->
      let* r = int_kv "runs" r in
      let* e = int_kv "exh" e in
      Some (r, e = 1)
    | _ -> None
  in
  if tail = "none" then Some { sruns; sexhaustive = sexh; scx = None }
  else
    let* mi = index_of_sub tail ";msg=" in
    let message = String.sub tail (mi + 5) (String.length tail - mi - 5) in
    let sched = String.sub tail 0 mi in
    let* decisions =
      List.fold_left
        (fun acc p ->
          let* acc = acc in
          let* v = int_of_string_opt p in
          Some (v :: acc))
        (Some [])
        (if sched = "" then [] else String.split_on_char ' ' sched)
      |> Option.map List.rev
    in
    Some
      {
        sruns;
        sexhaustive = false;
        scx = Some (replay_decisions ~step_limit scenario decisions message);
      }

let campaign_id ~preemption_bound ~max_runs ~max_depth ~step_limit ~on_step_limit
    scenario =
  let params =
    Printf.sprintf "%s|pb=%s|runs=%d|depth=%d|steps=%d|osl=%s" scenario.name
      (match preemption_bound with None -> "-" | Some b -> string_of_int b)
      max_runs max_depth step_limit
      (match on_step_limit with `Fail -> "fail" | `Ignore -> "ignore")
  in
  Printf.sprintf "explore/%s/%s" scenario.name (Digest.to_hex (Digest.string params))

let explore_checkpointed ~preemption_bound ~max_runs ~max_depth ~step_limit
    ~on_step_limit ~jobs ~stats ~cell_wall_s ~path ~resume ~should_stop scenario =
  (* Structural probe: discovers the top-level width only. Uncounted and
     unrecorded — subtree 0 re-runs this schedule as its first run. *)
  let probe_inst = scenario.make () in
  let _, probe_slots, _ =
    run_one ~preemption_bound ~max_depth ~step_limit ~config:scenario.config probe_inst
      [||]
  in
  let width =
    if Vec.length probe_slots = 0 then 1 else max 1 (Vec.get probe_slots 0).candidates
  in
  let campaign =
    campaign_id ~preemption_bound ~max_runs ~max_depth ~step_limit ~on_step_limit
      scenario
  in
  match Checkpoint.open_ ~path ~campaign ~cells:width ~resume with
  | Error msg -> invalid_arg ("Explore.explore: " ^ msg)
  | Ok (journal, entries) ->
    let restored = Hashtbl.create 8 in
    List.iter
      (fun (e : Checkpoint.entry) ->
        if e.idx >= 0 && e.idx < width then
          match subtree_of_payload ~step_limit scenario e.payload with
          | Some st -> Hashtbl.replace restored e.idx st
          | None -> ())
      entries;
    (* Seed the global budget with the journaled work, so the resumed
       search claims only the remaining runs. *)
    let already = Hashtbl.fold (fun _ st acc -> acc + st.sruns) restored 0 in
    let claimed = Atomic.make already in
    let claim () =
      Atomic.get claimed < max_runs && Atomic.fetch_and_add claimed 1 < max_runs
    in
    let best = Atomic.make max_int in
    let eval i deadline =
      let aborted () =
        Atomic.get best < i || should_stop () || Resil.interrupted ()
        (* Watchdog demotion: an expired deadline retires the subtree
           with a partial, non-exhaustive result instead of hanging. *)
        || Resil.expired deadline
      in
      let root = if width <= 1 then None else Some i in
      let start = if width <= 1 then [||] else [| i |] in
      let st =
        subtree_dfs ~claim ~aborted ~stats ~preemption_bound ~max_depth ~step_limit
          ~on_step_limit ~root scenario start
      in
      (match st.scx with Some _ -> atomic_min best i | None -> ());
      (* Journal only untainted cells: a cell cut short by an interrupt
         or stop request must re-run on resume, not restore partial. *)
      if not (should_stop () || Resil.interrupted ()) then
        Checkpoint.record journal ~idx:i
          ~key:(Printf.sprintf "subtree-%d" i)
          ~payload:(payload_of_subtree st);
      st
    in
    let deadline_for ~attempt:_ =
      match cell_wall_s with
      | None -> Resil.no_deadline
      | Some s -> Resil.deadline ~wall_s:s ()
    in
    let cells =
      Hwf_par.Pool.map ~jobs ~batch:1 ?stats:(pool_of stats)
        (fun i ->
          match Hashtbl.find_opt restored i with
          | Some st -> { Resil.outcome = Resil.Ok_cell st; attempts = 1 }
          | None ->
            if Resil.interrupted () || should_stop () then
              { Resil.outcome = Resil.Skipped "interrupted"; attempts = 0 }
            else Resil.run_cell ~retry:Resil.no_retry ~deadline_for (eval i))
        (Array.init width Fun.id)
    in
    Checkpoint.close journal;
    (* Canonical merge, stopping at the first cell without a result: a
       counterexample found after a gap cannot be called canonical, so
       the gap truncates the merge and coverage reports the rest. *)
    let total = ref 0 and exhaustive = ref true and cx = ref None in
    (try
       Array.iter
         (fun cell ->
           match cell.Resil.outcome with
           | Resil.Ok_cell st -> (
             total := !total + st.sruns;
             if not st.sexhaustive then exhaustive := false;
             match st.scx with
             | Some c ->
               cx := Some c;
               raise Exit
             | None -> ())
           | Resil.Timed_out _ | Resil.Errored _ | Resil.Skipped _ ->
             exhaustive := false;
             raise Exit)
         cells
     with Exit -> ());
    {
      runs = !total;
      exhaustive = !exhaustive && !cx = None;
      counterexample = !cx;
      coverage = Resil.coverage_of_cells cells;
    }

let explore ?preemption_bound ?(max_runs = 200_000) ?(max_depth = 10_000)
    ?(step_limit = 100_000) ?(on_step_limit = `Fail) ?(jobs = 1) ?stats ?cell_wall_s
    ?checkpoint ?(resume = false) ?(should_stop = fun () -> false) scenario =
  match checkpoint with
  | None ->
    explore_plain ?preemption_bound ~max_runs ~max_depth ~step_limit ~on_step_limit
      ~jobs ?stats scenario
  | Some path ->
    explore_checkpointed ~preemption_bound ~max_runs ~max_depth ~step_limit
      ~on_step_limit ~jobs ~stats ~cell_wall_s ~path ~resume ~should_stop scenario

let iter_schedules ?preemption_bound ?(max_runs = 200_000) ?(max_depth = 10_000)
    ?(step_limit = 100_000) scenario ~f =
  let runs = ref 0 in
  let rec loop prefix =
    if !runs < max_runs then begin
      incr runs;
      let instance = scenario.make () in
      let result, slots, _truncated =
        run_one ~preemption_bound ~max_depth ~step_limit ~config:scenario.config
          instance prefix
      in
      let pids = List.map (fun s -> s.pid) (Vec.to_list slots) in
      match f ~pids result with
      | `Stop -> ()
      | `Continue -> (
        match backtrack slots with None -> () | Some prefix -> loop prefix)
    end
  in
  loop [||];
  !runs

let random_runs ?(runs = 1_000) ?(step_limit = 100_000) ?(on_step_limit = `Fail)
    ?(jobs = 1) ?stats ~seed scenario =
  (* Run [i] is fully determined by [seed + i], so the cells are
     independent and the parallel merge is by index: the reported
     counterexample is the lowest-index failure, exactly the one the
     sequential loop stops at. *)
  let one i =
    let instance = scenario.make () in
    let policy = Policy.random ~seed:(seed + i) in
    let result =
      Engine.run ~step_limit ~config:scenario.config ~policy instance.programs
    in
    match verdict ~on_step_limit instance result with
    | Error message ->
      Some { message; trace = result.trace; decisions = [] }
    | Ok () -> None
  in
  if jobs <= 1 then begin
    let rec loop i =
      if i >= runs then
        {
          runs = i;
          exhaustive = false;
          counterexample = None;
          coverage = Resil.full_coverage 1;
        }
      else
        match one i with
        | Some cx ->
          {
            runs = i + 1;
            exhaustive = false;
            counterexample = Some cx;
            coverage = Resil.full_coverage 1;
          }
        | None -> loop (i + 1)
    in
    loop 0
  end
  else begin
    let best = Atomic.make max_int in
    let cell i =
      (* Cells canonically after a known failure are skipped; cells
         before it still run, so the minimum failing index is exact. *)
      if Atomic.get best < i then None
      else
        match one i with
        | Some cx ->
          atomic_min best i;
          Some cx
        | None -> None
    in
    let results = Hwf_par.Pool.map ~jobs ?stats:(pool_of stats) cell (Array.init runs Fun.id) in
    let hit = ref None in
    Array.iteri
      (fun i r -> if !hit = None && r <> None then hit := Some (i, Option.get r))
      results;
    match !hit with
    | Some (i, cx) ->
      {
        runs = i + 1;
        exhaustive = false;
        counterexample = Some cx;
        coverage = Resil.full_coverage 1;
      }
    | None ->
      { runs; exhaustive = false; counterexample = None; coverage = Resil.full_coverage 1 }
  end

let pp_outcome ppf o =
  (match o.counterexample with
  | None ->
    Fmt.pf ppf "OK after %d runs%s" o.runs
      (if o.exhaustive then " (exhaustive)" else "")
  | Some c -> Fmt.pf ppf "FAIL after %d runs: %s" o.runs c.message);
  (* Printed only when incomplete: clean-run output is unchanged, and a
     partial result cannot be mistaken for a complete one. *)
  if not (Resil.complete o.coverage) then
    Fmt.pf ppf " [INCOMPLETE coverage: %a]" Resil.pp_coverage o.coverage
