open Hwf_sim

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let preempt_after_rmw ?(victim_ops = 1) ~var_prefix ~(fallback : Policy.t) () =
  Policy.of_factory
    (Printf.sprintf "stagger(%s)" var_prefix)
    (fun () ->
      let fb = Policy.prepare fallback in
      let last = ref (-1) in
      let last_was_target = ref false in
      let victimized = Hashtbl.create 8 in
      fun (view : Policy.view) ->
        let switch_target () =
          (* Prefer a runnable process other than the one just preempted. *)
          match List.filter (fun p -> p <> !last) view.runnable with
          | [] -> fb view
          | others ->
            (* Deterministic rotation: pick the next pid after [last]. *)
            (match List.find_opt (fun p -> p > !last) others with
            | Some p -> Some p
            | None -> Some (List.hd others))
        in
        let count pid = Option.value ~default:0 (Hashtbl.find_opt victimized pid) in
        let pick =
          if !last_was_target && count !last < victim_ops then begin
            Hashtbl.replace victimized !last (count !last + 1);
            switch_target ()
          end
          else fb view
        in
        (match pick with
        | Some pid ->
          last := pid;
          let pv = view.procs.(pid) in
          last_was_target :=
            (match pv.next_op with
            | Some (Op.Rmw { var; _ }) -> starts_with ~prefix:var_prefix var
            | Some (Op.Read _ | Op.Write _ | Op.Local _) | None -> false)
        | None -> ());
        pick)

let exhaustion_pressure ~seed ~var_prefix () =
  preempt_after_rmw ~var_prefix ~fallback:(Policy.random ~seed) ()

let delayed_wake ~seed ~wake_every () =
  Policy.of_factory
    (Printf.sprintf "delayed-wake(%d)" wake_every)
    (fun () ->
      let st = Random.State.make [| seed; 0xd31a |] in
      fun (view : Policy.view) ->
      let ready, thinking =
        List.partition
          (fun p -> view.procs.(p).Policy.phase = Policy.Ready)
          view.runnable
      in
      let pick = function
        | [] -> None
        | l -> Some (List.nth l (Random.State.int st (List.length l)))
      in
      (* Wake a thinking process only on a sparse schedule (or when
         nothing else can run): freshly woken high-priority processes
         then land in the middle of lower ones' invocations. *)
      if ready = [] then pick thinking
      else if thinking <> [] && view.step mod wake_every = wake_every - 1 then
        pick thinking
      else pick ready)

let max_interleave () =
  Policy.of_fun "max-interleave" (fun (view : Policy.view) ->
      match view.runnable with
      | [] -> None
      | runnable ->
        let steps p = view.procs.(p).Policy.own_steps in
        Some
          (List.fold_left
             (fun best p -> if steps p < steps best then p else best)
             (List.hd runnable) (List.tl runnable)))
