(** Stateless model checking of simulator programs.

    Explores the tree of scheduler decisions by re-execution (one-shot
    continuations cannot be forked, so each path is replayed from
    scratch, CHESS-style). Every explored trace is additionally passed
    through {!Hwf_sim.Wellformed}, so an engine bug surfaces as a
    counterexample rather than silently shrinking the schedule space.

    Exploration is optionally {e context-bounded}: scheduling decisions
    that continue the process that executed the previous statement (or
    switch away from a process that cannot continue) are free, while
    genuine preemptions consume a budget. With an unlimited budget the
    search is exhaustive over all well-formed schedules; with a small
    budget it covers exactly the schedules the paper's arguments reason
    about (at most one quantum preemption per short code sequence) plus
    a margin.

    No partial-order reduction is applied, deliberately: in this model
    even statements on disjoint variables do not commute, because every
    statement advances the scheduler's preemption accounting (pending
    flags, quantum guarantees) of every other process on its processor —
    reordering two "independent" statements can change which schedules
    are subsequently legal. Context bounding is the reduction that is
    sound here. *)

type instance = {
  programs : (unit -> unit) array;
  check : Hwf_sim.Engine.result -> (unit, string) result;
      (** Verdict on one complete run; [Error msg] is a counterexample. *)
}

type scenario = {
  name : string;
  config : Hwf_sim.Config.t;
  make : unit -> instance;
      (** Must build fresh shared state and closures on every call:
          runs are replayed from scratch. *)
}

type counterexample = {
  message : string;
  trace : Hwf_sim.Trace.t;
  decisions : Hwf_sim.Proc.pid list;  (** The schedule that failed. *)
}

type outcome = {
  runs : int;
  exhaustive : bool;
      (** True if the search space was fully covered within the bounds. *)
  counterexample : counterexample option;
  coverage : Hwf_resil.Resil.coverage;
      (** Harness-level accounting (see [docs/ROBUSTNESS.md]). Plain
          searches run as one completed unit and report full coverage;
          checkpointed searches report per-subtree cells, so an
          interrupted or degraded campaign is visibly partial. *)
}

type stats
(** Search-layer counters for the observability layer: engine runs per
    top-level scheduling choice (subtree sizes), plus the domain pool's
    occupancy counters. Off by default — without a [?stats] argument
    nothing is counted. The per-root run counts are deterministic
    whenever the search completes; the pool counters depend on domain
    racing and are display-only (never exported to JSONL). *)

val make_stats : ?jobs:int -> scenario -> stats
(** [jobs] sizes the pool's per-worker histogram (default
    {!Hwf_par.Pool.default_jobs}); the subtree histogram is sized by the
    scenario's process count. *)

val stats_subtree_runs : stats -> int array
(** Runs performed per top-level choice index — the subtree sizes of the
    parallel fan-out (index 0 includes the probe run). *)

val stats_pool : stats -> Hwf_par.Pool.stats

val explore :
  ?preemption_bound:int ->
  ?max_runs:int ->
  ?max_depth:int ->
  ?step_limit:int ->
  ?on_step_limit:[ `Fail | `Ignore ] ->
  ?jobs:int ->
  ?stats:stats ->
  ?cell_wall_s:float ->
  ?checkpoint:string ->
  ?resume:bool ->
  ?should_stop:(unit -> bool) ->
  scenario ->
  outcome
(** DFS over schedules. [preemption_bound] (default unlimited) caps paid
    context switches per schedule; [max_runs] (default 200_000) and
    [max_depth] (default 10_000 decisions) bound the search; runs hitting
    [step_limit] (default 100_000 statements) are treated per
    [on_step_limit] (default [`Fail] — suitable for wait-free algorithms,
    which must terminate under every schedule).

    [jobs] (default 1) fans the search out over that many domains: each
    top-level scheduler candidate roots an independent subtree explored
    by the unchanged sequential DFS, and the per-subtree results are
    merged in canonical (sequential DFS) order. Whenever the search
    completes within [max_runs] the outcome — run count, exhaustiveness,
    and the first counterexample with its decision path — is identical
    to [~jobs:1]; [scenario.make] must therefore be domain-safe (fresh
    state per call, which well-behaved scenarios already guarantee — see
    [docs/PARALLELISM.md]). The [max_runs] budget is claimed from one
    global atomic counter, one claim per engine run, so the total number
    of runs across all domains never exceeds [max_runs]; if the budget
    truncates the parallel search, the outcome reports
    [exhaustive = false] just as the sequential search does, but the
    truncation point (and so [runs]) may differ.

    Resilience (see [docs/ROBUSTNESS.md]): [checkpoint] journals each
    completed top-level subtree to an [hwf-ckpt/1] file, and forces the
    subtree decomposition even at [jobs = 1] (the subtree is the unit
    of resume; subtree [i]'s first run is exactly the schedule the
    sequential DFS reaches on entering it, so a clean completed
    campaign merges to the plain outcome run for run). With
    [resume = true] journaled subtrees are restored instead of re-run —
    their run counts re-seed the [max_runs] budget and a restored
    counterexample's trace is rebuilt by replaying its decisions — and
    the journal must match the campaign (same scenario name and search
    bounds) or the call raises [Invalid_argument]. [cell_wall_s] gives
    each subtree a wall-clock budget; an expired subtree is {e demoted}
    (retired with a partial, non-exhaustive result) rather than hung.
    [should_stop] (polled between runs, ORed with
    {!Hwf_resil.Resil.interrupted}) stops the search cooperatively;
    cells cut short by it are not journaled, so a resume re-runs them
    in full. *)

val iter_schedules :
  ?preemption_bound:int ->
  ?max_runs:int ->
  ?max_depth:int ->
  ?step_limit:int ->
  scenario ->
  f:(pids:Hwf_sim.Proc.pid list -> Hwf_sim.Engine.result -> [ `Continue | `Stop ]) ->
  int
(** Lower-level driver underlying [explore]: enumerates schedules in the
    same DFS order and hands each completed run (with its decision path)
    to [f]. Returns the number of runs performed. Used by
    {!Bivalence}. *)

val random_runs :
  ?runs:int ->
  ?step_limit:int ->
  ?on_step_limit:[ `Fail | `Ignore ] ->
  ?jobs:int ->
  ?stats:stats ->
  seed:int ->
  scenario ->
  outcome
(** Volume testing with seeded random schedules; a complement to
    [explore] for configurations too large to enumerate. Run [i] uses
    seed [seed + i], so runs are independent cells: with [jobs > 1] they
    are distributed over a domain pool and the reported counterexample
    is the lowest-index failure — the same one the sequential loop stops
    at, with the same [runs] count. *)

val pp_outcome : outcome Fmt.t
