(** Stateless model checking of simulator programs.

    Explores the tree of scheduler decisions by re-execution (one-shot
    continuations cannot be forked, so each path is replayed from
    scratch, CHESS-style). Every explored trace is additionally passed
    through {!Hwf_sim.Wellformed}, so an engine bug surfaces as a
    counterexample rather than silently shrinking the schedule space.

    Exploration is optionally {e context-bounded}: scheduling decisions
    that continue the process that executed the previous statement (or
    switch away from a process that cannot continue) are free, while
    genuine preemptions consume a budget. With an unlimited budget the
    search is exhaustive over all well-formed schedules; with a small
    budget it covers exactly the schedules the paper's arguments reason
    about (at most one quantum preemption per short code sequence) plus
    a margin.

    {2 Sleep-set pruning and source sets}

    The search applies {e sleep-set pruning} (dynamic partial-order
    reduction) by default. Within one processor no reduction is
    possible: every statement advances the scheduler's preemption
    accounting (pending flags, quantum guarantees) of every other
    process on its processor, so even statements on disjoint variables
    do not commute — uniprocessor scenarios are explored in full,
    bit-identically to [~dpor:false]. {e Across} processors the
    scheduler state is disjoint by construction, so two transitions of
    processes on different processors commute exactly when their data
    footprints do not conflict (same shared variable, at least one
    write — the baseline {!Hwf_sim.Policy.independent}). The explorer
    computes that relation per decision point from the policy view
    ([next_op]), carries a sleep set down each path (recomputed from
    the decision prefix alone, so pruning is oblivious to [jobs],
    [grain] and checkpoint/resume), and skips sibling branches whose
    first transition is slept — their interleavings are covered by the
    sibling that put them to sleep.

    {e Source-set refinement}: sleeping is not closed under "something
    must run", so a DFS prefix can reach a decision point whose every
    candidate is slept. Each candidate's next transition is then
    covered by a DFS-earlier sibling subtree, and (inductively) so is
    every completion of the prefix — the prefix is a {e sleep-set
    blocked} schedule in Abdulla et al.'s sense. The search discards it
    without a verdict check (counted as a {!stats_source_prunes}
    prune), where it previously fell back to re-exploring a covered
    schedule. Blocked prefixes are the exact gap between plain sleep
    sets and source-set optimality: with them discarded, every
    completed run the search performs sits in a distinct Mazurkiewicz
    class.

    {e Stronger relations}: [explore ?relation] accepts an independence
    judgement stronger than the footprint baseline — in practice the
    statically-derived oracle of [Hwf_lint.Indep], which additionally
    commutes same-variable RMW pairs proven result-insensitive (e.g.
    two fetch&adds whose return values steer no branch). The relation's
    name is part of the checkpoint campaign identity, since run counts
    depend on it.

    Validity boundary: the relation assumes programs observe nothing
    global outside their {!Hwf_sim.Shared} footprints. The one such
    door is [Eff.now] (the global statement clock): if the probe run
    reads it, pruning is silently disarmed for the whole search; if a
    {e later} schedule is the first to read it, the search raises
    [Invalid_argument] telling you to pass [~dpor:false] — it cannot
    miss that schedule, because a pruned schedule executes the same
    per-process statement sequences as the explored schedule covering
    it. [Eff.stamp] (the per-processor timestamp pair) is {e not} such
    a door and does not taint: same-processor transitions never
    commute, so per-processor statement counts are invariant under
    every commutation the pruning performs — history recorders
    ({!Hwf_check.Hist}) use it precisely so linearizability scenarios
    stay prunable. Pruning is also disarmed under a [preemption_bound]
    (the restricted candidate lists break the sleep-set invariant) and
    for configurations wider than 62 processes (the sleep set is a pid
    bitmask). Context bounding remains the reduction of choice for
    uniprocessor scenarios; sleep sets are the multiprocessor one, and
    the two are never armed together. *)

type instance = {
  programs : (unit -> unit) array;
  check : Hwf_sim.Engine.result -> (unit, string) result;
      (** Verdict on one complete run; [Error msg] is a counterexample. *)
}

type scenario = {
  name : string;
  config : Hwf_sim.Config.t;
  make : unit -> instance;
      (** Must build fresh shared state and closures on every call:
          runs are replayed from scratch. *)
}

type counterexample = {
  message : string;
  trace : Hwf_sim.Trace.t;
  decisions : Hwf_sim.Proc.pid list;  (** The schedule that failed. *)
}

type outcome = {
  runs : int;
  exhaustive : bool;
      (** True if the search space was fully covered within the bounds
          (with pruning: covered up to commutation of independent
          transitions, which preserves every verdict). *)
  counterexample : counterexample option;
  coverage : Hwf_resil.Resil.coverage;
      (** Harness-level accounting (see [docs/ROBUSTNESS.md]). Plain
          searches run as one completed unit and report full coverage;
          checkpointed searches report per-subtree cells, so an
          interrupted or degraded campaign is visibly partial. *)
}

type stats
(** Search-layer counters for the observability layer: engine runs per
    top-level scheduling choice (subtree sizes), sibling branches
    skipped by sleep-set pruning, blocked prefixes discarded by source
    sets, plus the domain pool's occupancy counters. Off by default —
    without a [?stats] argument nothing is counted. The per-root run
    counts and the prune counts are deterministic whenever the search
    completes; the pool counters depend on domain racing and are
    display-only (never exported to JSONL). *)

type relation = { rname : string; rel : Hwf_sim.Policy.relation }
(** A named independence relation for the pruning. The name is part of
    the checkpoint campaign identity (run counts depend on the
    relation, so a journal written under one relation cannot seed a
    resume under another). The relation must be sound: [rel a b = true]
    only when executing [a] and [b] in either order yields the same
    engine state and downstream behaviour. *)

val base_relation : relation
(** The footprint baseline {!Hwf_sim.Policy.independent}, named
    ["base"]. *)

val make_stats : ?jobs:int -> scenario -> stats
(** [jobs] sizes the pool's per-worker histogram (default
    {!Hwf_par.Pool.default_jobs}); the subtree histogram is sized by the
    scenario's process count. *)

val stats_subtree_runs : stats -> int array
(** Runs performed per top-level choice index — the subtree sizes of the
    parallel fan-out (index 0 includes the probe run). *)

val stats_pruned : stats -> int
(** Sibling branches skipped because their first transition was slept —
    each skip is a whole subtree the pruned search did not have to
    enumerate. Zero on uniprocessor scenarios and with [~dpor:false]. *)

val stats_source_prunes : stats -> int
(** Sleep-set blocked prefixes discarded by the source-set refinement:
    runs that reached a decision point with every candidate slept and
    were abandoned without a verdict check. Zero on uniprocessor
    scenarios and with [~dpor:false]. *)

val stats_sampled : stats -> int
(** Engine runs performed by {!sample} (and {!random_runs}) — the
    sampling analogue of the subtree run counts. *)

val stats_pool : stats -> Hwf_par.Pool.stats

val explore :
  ?preemption_bound:int ->
  ?max_runs:int ->
  ?max_depth:int ->
  ?step_limit:int ->
  ?on_step_limit:[ `Fail | `Ignore ] ->
  ?jobs:int ->
  ?grain:int ->
  ?dpor:bool ->
  ?relation:relation ->
  ?stats:stats ->
  ?cell_wall_s:float ->
  ?checkpoint:string ->
  ?resume:bool ->
  ?should_stop:(unit -> bool) ->
  scenario ->
  outcome
(** DFS over schedules. [preemption_bound] (default unlimited) caps paid
    context switches per schedule; [max_runs] (default 200_000) and
    [max_depth] (default 10_000 decisions) bound the search; runs hitting
    [step_limit] (default 100_000 statements) are treated per
    [on_step_limit] (default [`Fail] — suitable for wait-free algorithms,
    which must terminate under every schedule).

    [dpor] (default [true]) arms sleep-set pruning with the source-set
    refinement — see the module preamble for semantics, the cases where
    it silently disarms itself, and the soundness argument. [relation]
    (default {!base_relation}) substitutes a stronger independence
    judgement (see [Hwf_lint.Indep]). Verdicts, counterexamples and
    exhaustiveness are unchanged by pruning; [runs] shrinks on
    multiprocessor scenarios (the cross-check is regression-tested and
    part of the E17 campaign). [runs] counts verdict-checked schedules;
    prefixes discarded as sleep-set blocked are reported through
    {!stats_source_prunes} instead.

    [jobs] (default 1) fans the search out over that many domains: each
    top-level scheduler candidate roots an independent subtree explored
    by the unchanged sequential DFS, and the per-subtree results are
    merged in canonical (sequential DFS) order. Whenever the search
    completes within [max_runs] the outcome — run count, exhaustiveness,
    and the first counterexample with its decision path — is identical
    to [~jobs:1]; [scenario.make] must therefore be domain-safe (fresh
    state per call, which well-behaved scenarios already guarantee — see
    [docs/PARALLELISM.md]). Sleep sets are recomputed from each decision
    prefix, so pruning commutes with the fan-out and the identity holds
    with [dpor] on. [grain] sets the pool's cells-per-claim (default
    automatic; subtree cells are coarse, so the default resolves to 1
    here — the knob matters for {!random_runs}). Workers reuse
    per-domain scratch arenas (trace and decision buffers) across runs;
    this is invisible in results. The [max_runs] budget is claimed from
    one global atomic counter, one claim per engine run, so the total
    number of runs across all domains never exceeds [max_runs]; if the
    budget truncates the parallel search, the outcome reports
    [exhaustive = false] just as the sequential search does, but the
    truncation point (and so [runs]) may differ.

    Resilience (see [docs/ROBUSTNESS.md]): [checkpoint] journals each
    completed top-level subtree to an [hwf-ckpt/1] file, and forces the
    subtree decomposition even at [jobs = 1] (the subtree is the unit
    of resume; subtree [i]'s first run is exactly the schedule the
    sequential DFS reaches on entering it, so a clean completed
    campaign merges to the plain outcome run for run; the journal stays
    per subtree at every [grain]). With [resume = true] journaled
    subtrees are restored instead of re-run — their run counts re-seed
    the [max_runs] budget and a restored counterexample's trace is
    rebuilt by replaying its decisions — and the journal must match the
    campaign (same scenario name, search bounds, and armed [dpor]) or
    the call raises [Invalid_argument]. [cell_wall_s] gives
    each subtree a wall-clock budget; an expired subtree is {e demoted}
    (retired with a partial, non-exhaustive result) rather than hung.
    [should_stop] (polled between runs, ORed with
    {!Hwf_resil.Resil.interrupted}) stops the search cooperatively;
    cells cut short by it are not journaled, so a resume re-runs them
    in full. *)

val iter_schedules :
  ?preemption_bound:int ->
  ?max_runs:int ->
  ?max_depth:int ->
  ?step_limit:int ->
  scenario ->
  f:(pids:Hwf_sim.Proc.pid list -> Hwf_sim.Engine.result -> [ `Continue | `Stop ]) ->
  int
(** Lower-level driver underlying [explore]: enumerates schedules in the
    same DFS order and hands each completed run (with its decision path)
    to [f]. Returns the number of runs performed. Deliberately unpruned
    — callers ({!Bivalence}) reason about the full enumeration. Used by
    {!Bivalence}. *)

val run_seed : int -> int -> int
(** [run_seed seed i] is the seed of run [i] of sampling campaign
    [seed] ({!Randsched.mix}): a splitmix-style hash, so adjacent
    campaign seeds share no per-run streams. Exposed for tests. *)

val sample :
  ?runs:int ->
  ?step_limit:int ->
  ?on_step_limit:[ `Fail | `Ignore ] ->
  ?jobs:int ->
  ?grain:int ->
  ?stats:stats ->
  ?runner:
    (step_limit:int -> policy:Hwf_sim.Policy.t -> instance -> Hwf_sim.Engine.result) ->
  strategy:Randsched.strategy ->
  seed:int ->
  scenario ->
  outcome
(** Volume testing with seeded randomized schedules — the statistical
    complement to [explore] for configurations too large to enumerate,
    parametric in the {!Randsched.strategy} (docs/SAMPLING.md). Run [i]
    uses seed [run_seed seed i], so runs are independent cells: with
    [jobs > 1] they are distributed over a domain pool and the reported
    counterexample is the lowest-index failure — the same one the
    sequential loop stops at, with the same [runs] count, byte-identical
    across [jobs]/[grain]. These cells are micro-cells (one engine run
    each), so [grain] matters here: the default chunks hundreds of runs
    per claim ([docs/PARALLELISM.md] has the tuning guide).

    [outcome.runs] is the number of schedules to the first bug when a
    counterexample is reported ({!stf_ci} turns it into an interval),
    and the full budget otherwise; [exhaustive] is always false. The
    counterexample carries the recorded decision schedule, so it replays
    and shrinks through {!Schedule}/{!Shrink} exactly like an [explore]
    counterexample.

    PCT's horizon and SURW's per-pid statement profile are estimated by
    one deterministic round-robin pilot run before the fan-out (pure
    function of the scenario, so determinism across [jobs] holds).

    [runner] substitutes the engine invocation (e.g. routing through
    [Hwf_faults.Inject.run] with a fault plan); it must execute
    [instance.programs] under exactly the given policy and step limit,
    freshly per call. Default: a plain [Engine.run] with per-worker
    scratch traces. *)

val stf_ci : ?level:float -> outcome -> float * float
(** Exact confidence interval (default [level] 0.95) on the expected
    schedules-to-first-bug implied by a {!sample} outcome, from the
    geometric likelihood of the observation. First bug at run [k]:
    two-sided interval around [k]; no bug in [n] runs: one-sided
    [(lo, infinity)] ("rule of three"). *)

val random_runs :
  ?runs:int ->
  ?step_limit:int ->
  ?on_step_limit:[ `Fail | `Ignore ] ->
  ?jobs:int ->
  ?grain:int ->
  ?stats:stats ->
  seed:int ->
  scenario ->
  outcome
(** [sample ~strategy:Randsched.Naive] — uniform random schedules. *)

val pp_outcome : outcome Fmt.t
