(** Campaign checkpoint journals ([hwf-ckpt/1]).

    A checkpoint file is JSON lines: a header
    [{"schema":"hwf-ckpt/1","campaign":"...","cells":N}] followed by one
    record [{"cell":I,"key":"...","payload":"..."}] per completed cell,
    appended and flushed as cells finish — so the journal survives a
    SIGKILL at any point (at worst the last line is partial, and the
    loader drops it). [campaign] identifies the run's parameters
    (subject, seeds, sweep shape): resuming against a journal whose
    campaign string differs is refused, because merging cells from a
    different campaign would silently corrupt the result. [cells] is
    the campaign's total cell count (coverage denominator). [key] is a
    human-readable per-cell sanity label (a plan label, a subtree
    index); [payload] is the runner's own serialization of the cell's
    result. Schema documented in [docs/ROBUSTNESS.md]; validated by
    [scripts/check_jsonl.sh]. *)

type t
(** An open journal (append mode, line-buffered, flushed per record).
    Safe to {!record} from multiple pool domains. *)

type header = { campaign : string; cells : int }
type entry = { idx : int; key : string; payload : string }

val load : path:string -> (header * entry list, string) result
(** Parse a journal. A trailing partial line (interrupted write) is
    dropped; parsing stops at the first malformed line. Entries are in
    file order; on duplicate [idx] the last record wins (already
    folded: the returned list has unique indices). *)

val create : path:string -> campaign:string -> cells:int -> t
(** Truncate/create [path] and write the header. *)

val append : path:string -> t
(** Reopen an existing journal for appending (no validation — callers
    go through {!open_} or {!load} first). *)

val open_ :
  path:string -> campaign:string -> cells:int -> resume:bool ->
  (t * entry list, string) result
(** The campaign-runner entry point. [resume = false]: fresh journal
    (existing file truncated), no entries. [resume = true]: load an
    existing journal, validate that [campaign] and [cells] match, and
    return its entries with the journal reopened for appending; a
    missing file degrades to a fresh journal. *)

val record : t -> idx:int -> key:string -> payload:string -> unit
(** Append one completed-cell record and flush. *)

val close : t -> unit
