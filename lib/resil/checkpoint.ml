(* hwf-ckpt/1 journals: append-only JSONL, one flushed line per
   completed campaign cell. The JSON emitted here is flat (string/int
   values only), and the parser below handles exactly that shape — no
   external JSON dependency. *)

let schema = "hwf-ckpt/1"

type t = { oc : out_channel; lock : Mutex.t }
type header = { campaign : string; cells : int }
type entry = { idx : int; key : string; payload : string }

(* ---- emission (same escaping as Hwf_obs.Jsonl) ---- *)

let escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | ch when Char.code ch < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code ch))
      | ch -> Buffer.add_char b ch)
    s;
  Buffer.contents b

let header_line ~campaign ~cells =
  Printf.sprintf "{\"schema\":\"%s\",\"campaign\":\"%s\",\"cells\":%d}" schema
    (escape campaign) cells

let record_line ~idx ~key ~payload =
  Printf.sprintf "{\"cell\":%d,\"key\":\"%s\",\"payload\":\"%s\"}" idx (escape key)
    (escape payload)

(* ---- a scanner for the flat objects we emit ---- *)

exception Bad of string

(* Parse one flat JSON object into (key, value) pairs, values being
   [`Str s] or [`Int n]. Raises [Bad] on anything else — which is how a
   truncated trailing line is detected and dropped by [load]. *)
let parse_flat line =
  let n = String.length line in
  let pos = ref 0 in
  let peek () = if !pos < n then Some line.[!pos] else None in
  let advance () = incr pos in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> raise (Bad (Printf.sprintf "expected %C at %d" c !pos))
  in
  let skip_ws () =
    while !pos < n && (line.[!pos] = ' ' || line.[!pos] = '\t') do
      advance ()
    done
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then raise (Bad "unterminated string");
      match line.[!pos] with
      | '"' -> advance ()
      | '\\' ->
        advance ();
        if !pos >= n then raise (Bad "unterminated escape");
        (match line.[!pos] with
        | '"' -> Buffer.add_char b '"'
        | '\\' -> Buffer.add_char b '\\'
        | 'n' -> Buffer.add_char b '\n'
        | 'r' -> Buffer.add_char b '\r'
        | 't' -> Buffer.add_char b '\t'
        | 'u' ->
          if !pos + 4 >= n then raise (Bad "short \\u escape");
          let hex = String.sub line (!pos + 1) 4 in
          (match int_of_string_opt ("0x" ^ hex) with
          | Some code when code < 0x80 -> Buffer.add_char b (Char.chr code)
          | Some _ | None -> raise (Bad "bad \\u escape"));
          pos := !pos + 4
        | c -> raise (Bad (Printf.sprintf "bad escape \\%C" c)));
        advance ();
        go ()
      | c ->
        Buffer.add_char b c;
        advance ();
        go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_int () =
    let start = !pos in
    if peek () = Some '-' then advance ();
    while !pos < n && line.[!pos] >= '0' && line.[!pos] <= '9' do
      advance ()
    done;
    match int_of_string_opt (String.sub line start (!pos - start)) with
    | Some v -> v
    | None -> raise (Bad (Printf.sprintf "expected int at %d" start))
  in
  let fields = ref [] in
  skip_ws ();
  expect '{';
  skip_ws ();
  if peek () = Some '}' then advance ()
  else begin
    let rec members () =
      skip_ws ();
      let k = parse_string () in
      skip_ws ();
      expect ':';
      skip_ws ();
      let v =
        match peek () with
        | Some '"' -> `Str (parse_string ())
        | Some ('-' | '0' .. '9') -> `Int (parse_int ())
        | _ -> raise (Bad (Printf.sprintf "unsupported value at %d" !pos))
      in
      fields := (k, v) :: !fields;
      skip_ws ();
      match peek () with
      | Some ',' ->
        advance ();
        members ()
      | Some '}' -> advance ()
      | _ -> raise (Bad "expected , or }")
    in
    members ()
  end;
  List.rev !fields

let field_str fields k =
  match List.assoc_opt k fields with
  | Some (`Str s) -> s
  | _ -> raise (Bad (Printf.sprintf "missing string field %S" k))

let field_int fields k =
  match List.assoc_opt k fields with
  | Some (`Int v) -> v
  | _ -> raise (Bad (Printf.sprintf "missing int field %S" k))

(* ---- load ---- *)

let read_all path =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () -> In_channel.input_all ic)

let load ~path =
  match read_all path with
  | exception Sys_error msg -> Error msg
  | contents ->
    let lines = String.split_on_char '\n' contents |> List.filter (fun l -> l <> "") in
    (match lines with
    | [] -> Error (path ^ ": empty checkpoint file")
    | head :: rest -> (
      let parse_header () =
        let fields = parse_flat head in
        let s = field_str fields "schema" in
        if s <> schema then
          raise (Bad (Printf.sprintf "schema %S, expected %S" s schema));
        { campaign = field_str fields "campaign"; cells = field_int fields "cells" }
      in
      match parse_header () with
      | exception Bad msg -> Error (Printf.sprintf "%s: bad header: %s" path msg)
      | hdr ->
        (* Records: stop at the first malformed line — writes are
           flushed per line, so only a trailing partial write can be
           malformed, and everything before it is intact. *)
        let entries = ref [] in
        (try
           List.iter
             (fun line ->
               let fields = parse_flat line in
               let e =
                 {
                   idx = field_int fields "cell";
                   key = field_str fields "key";
                   payload = field_str fields "payload";
                 }
               in
               entries := e :: !entries)
             rest
         with Bad _ -> ());
        (* Fold duplicates: last record for an idx wins, first
           occurrence keeps its position. *)
        let tbl = Hashtbl.create 64 in
        let order = ref [] in
        List.iter
          (fun e ->
            if not (Hashtbl.mem tbl e.idx) then order := e.idx :: !order;
            Hashtbl.replace tbl e.idx e)
          (List.rev !entries);
        let entries = List.rev_map (fun idx -> Hashtbl.find tbl idx) !order in
        Ok (hdr, entries)))

(* ---- open / write ---- *)

let create ~path ~campaign ~cells =
  let oc = open_out path in
  output_string oc (header_line ~campaign ~cells);
  output_char oc '\n';
  flush oc;
  { oc; lock = Mutex.create () }

let append ~path =
  let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
  { oc; lock = Mutex.create () }

let open_ ~path ~campaign ~cells ~resume =
  if not resume then Ok (create ~path ~campaign ~cells, [])
  else if not (Sys.file_exists path) then Ok (create ~path ~campaign ~cells, [])
  else
    match load ~path with
    | Error msg -> Error msg
    | Ok (hdr, entries) ->
      if hdr.campaign <> campaign then
        Error
          (Printf.sprintf
             "%s: checkpoint is for campaign %S, refusing to resume campaign %S" path
             hdr.campaign campaign)
      else if hdr.cells <> cells then
        Error
          (Printf.sprintf
             "%s: checkpoint has %d cells, campaign has %d — parameters changed" path
             hdr.cells cells)
      else Ok (append ~path, entries)

let record t ~idx ~key ~payload =
  Mutex.lock t.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.lock)
    (fun () ->
      output_string t.oc (record_line ~idx ~key ~payload);
      output_char t.oc '\n';
      flush t.oc)

let close t = close_out t.oc
