(** The harness resilience layer (see [docs/ROBUSTNESS.md]).

    Long campaigns — E16-style fault sweeps, frontier explorations,
    randomized bake-offs — run for hours across domains, and a single
    stuck or crashing cell must not throw the rest away. This module
    provides the four pieces the campaign runners share:

    - {b per-cell deadlines}: a wall-clock/fuel budget a cell's work is
      checked against, cooperatively (between engine runs and shrink
      replays) and inside the engine (via {!guard_observer});
    - {b a documented error taxonomy} distinguishing transient failures
      (worth retrying) from harness bugs (fail the cell, keep the
      campaign) — genuine counterexamples are {e values} returned by
      the cell function and never enter this taxonomy;
    - {b bounded retry with exponential backoff}, with demotion: the
      attempt number is passed back to the caller's deadline builder so
      a retried cell can run with a reduced budget (graceful
      degradation instead of abort);
    - {b coverage accounting}: every campaign result reports
      [cells_done / cells_total], timeouts, errors, retries and
      degradation explicitly, so partial results are never silently
      presented as complete.

    {!map} composes these with {!Hwf_par.Pool.map}: because every cell
    is wrapped in {!run_cell}, no exception ever reaches the pool, so
    one bad cell cannot poison the output array.

    The interrupt flag ({!install_interrupt_handlers}) converts
    SIGINT/SIGTERM into cooperative cancellation: {!map} stops claiming
    new cells, completed work is kept (and, through the campaign
    runners' checkpoints, journaled), and the process can flush partial
    reports with an explicit truncation marker before exiting. *)

(** {1 Deadlines} *)

type deadline
(** A per-cell budget: an absolute wall-clock expiry and/or a fuel
    (statement) budget. Immutable except for the fuel counter. *)

exception Deadline_exceeded of string
(** Raised by {!check_deadline} / {!guard_observer} when a deadline
    expires. Classified as a timeout, not an error, by {!run_cell}. *)

val deadline : ?wall_s:float -> ?fuel:int -> unit -> deadline
(** A deadline expiring [wall_s] seconds from now and/or after [fuel]
    units have been {!spend}-ed. Omitting both yields {!no_deadline}. *)

val no_deadline : deadline
(** Never expires. *)

val expired : deadline -> bool

val check_deadline : deadline -> unit
(** @raise Deadline_exceeded if the deadline has expired. Cheap enough
    to call between engine runs and shrink replays. *)

val spend : deadline -> int -> unit
(** Consume fuel. Does not raise; the next {!check_deadline} does. *)

val wall_left_s : deadline -> float option
(** Seconds until wall-clock expiry ([None] if no wall budget). *)

val guard_observer : ?every:int -> deadline -> ('a -> unit)
(** An engine-observer-shaped guard: counts calls and polls the wall
    clock every [every] events (default 2048), raising
    {!Deadline_exceeded} from inside [Engine.run] — this is what turns
    a livelocked engine run into a structured timeout instead of a
    hang. Compose it with a real observer if one is installed. *)

(** {1 Error taxonomy} *)

type error_class =
  | Transient  (** [Out_of_memory], [Stack_overflow] — machine pressure
                   or a deadline race; retrying may succeed. *)
  | Harness_bug
      (** Any other exception escaping a cell: the cell function was
          expected to return its verdict as a value (counterexamples
          included), so an exception is a bug in the harness itself.
          Reported, never retried, never conflated with a
          counterexample. *)

val classify : exn -> error_class
val pp_error_class : error_class Fmt.t

(** {1 Retry policy} *)

type retry = {
  attempts : int;  (** Max attempts per cell, including the first. *)
  backoff_s : float;  (** Sleep before attempt 2. *)
  backoff_factor : float;  (** Multiplier per further attempt. *)
  max_backoff_s : float;  (** Backoff ceiling. *)
  retry_timeouts : bool;
      (** Whether a [Deadline_exceeded] cell is retried (with the
          attempt number passed to the deadline builder, so the caller
          can demote the budget). *)
}

val default_retry : retry
(** 3 attempts, 50 ms base backoff, x8 factor, 2 s ceiling, timeouts
    retried. *)

val no_retry : retry
(** 1 attempt. *)

(** {1 Cell outcomes} *)

type 'a outcome =
  | Ok_cell of 'a  (** The cell's verdict (counterexamples included). *)
  | Timed_out of string  (** Exceeded its deadline on every attempt. *)
  | Errored of error_class * string
      (** An exception escaped the cell function on its last attempt. *)
  | Skipped of string
      (** Never evaluated: interrupt or stop requested first. *)

type 'a cell = {
  outcome : 'a outcome;
  attempts : int;  (** Attempts actually made (0 when skipped). *)
}

val cell_value : 'a cell -> 'a option

val run_cell :
  ?retry:retry ->
  ?deadline_for:(attempt:int -> deadline) ->
  ?sleep:(float -> unit) ->
  (deadline -> 'a) ->
  'a cell
(** [run_cell f] evaluates [f deadline] under the retry policy
    (default {!no_retry}). [deadline_for] builds a fresh deadline per
    attempt (default: {!no_deadline}); attempts are numbered from 1, so
    a builder can demote the budget for [attempt > 1]. [sleep] is the
    backoff sleep (default [Unix.sleepf]; injectable for tests).
    Exceptions never escape: they are classified and folded into the
    cell outcome. *)

(** {1 Coverage accounting} *)

type coverage = {
  cells_total : int;
  cells_done : int;  (** Cells with an [Ok_cell] outcome. *)
  timeouts : int;
  errors : int;
  skipped : int;
  retries : int;  (** Extra attempts across all cells. *)
  degraded : int;  (** Cells that only succeeded after a retry. *)
  interrupted : bool;  (** True if any cell was skipped by the flag. *)
}

val full_coverage : int -> coverage
(** [cells_total = cells_done = n], everything else zero. *)

val coverage_of_cells : 'a cell array -> coverage
val coverage_union : coverage -> coverage -> coverage
val complete : coverage -> bool
(** All cells done, nothing skipped, timed out or errored. *)

val pp_coverage : coverage Fmt.t
(** E.g. ["37/40 cells (2 timeout, 1 error; 3 retries, 1 degraded)"].
    Prints ["complete"] shorthand only as ["n/n cells"]. *)

val coverage_rows : prefix:string -> coverage -> (string * int) list
(** Harness rows for [Hwf_obs.Metrics.with_harness] / JSONL export:
    [<prefix>.cells_total], [<prefix>.cells_done], [<prefix>.timeouts],
    [<prefix>.errors], [<prefix>.skipped], [<prefix>.retries],
    [<prefix>.degraded], [<prefix>.interrupted]. *)

(** {1 Interrupts} *)

val install_interrupt_handlers : unit -> unit
(** Install SIGINT/SIGTERM handlers that set the cooperative interrupt
    flag. A second signal exits immediately (code 130). Idempotent.
    No-op on platforms without these signals. *)

val interrupted : unit -> bool

val request_interrupt : unit -> unit
(** Set the flag programmatically (tests and embedders). *)

val reset_interrupt : unit -> unit
(** Clear the flag (tests). *)

(** {1 Resilient map} *)

val map :
  ?jobs:int ->
  ?grain:int ->
  ?stats:Hwf_par.Pool.stats ->
  ?retry:retry ->
  ?deadline_for:(attempt:int -> deadline) ->
  ?sleep:(float -> unit) ->
  ?should_stop:(unit -> bool) ->
  ?skip:(int -> 'b cell option) ->
  (deadline -> 'a -> 'b) ->
  'a array ->
  'b cell array
(** {!Hwf_par.Pool.map} with per-cell fault containment: slot [i] is
    [run_cell (fun d -> f d a.(i))] — order-preserving and
    deterministic in the {!Hwf_par.Pool.map} sense, except that
    timeouts and transient errors depend on the machine. [skip i]
    (resume support) supplies a pre-recorded cell instead of
    evaluating; [should_stop] (polled before each cell, ORed with the
    global interrupt flag) turns the remaining cells into [Skipped].
    No exception ever propagates into the pool, so one bad cell cannot
    poison the others. *)

(** {1 Exit codes} *)

val exit_ok : int  (** 0 — clean pass, full coverage. *)

val exit_counterexample : int
(** 1 — a counterexample / certification failure / lint error: the
    {e subject} failed. *)

val exit_harness : int
(** 2 — a harness error: timeout, interrupt, incomplete coverage, bad
    input. The campaign, not the subject, failed. *)
