(* The harness resilience layer: deadlines, error taxonomy, bounded
   retry with backoff, coverage accounting, cooperative interrupts and
   the resilient pool map. See docs/ROBUSTNESS.md for the policy this
   implements. *)

(* ---- deadlines ---- *)

type deadline = {
  expires_at : float option;  (* absolute Unix.gettimeofday *)
  fuel : int Atomic.t option;
}

exception Deadline_exceeded of string

let no_deadline = { expires_at = None; fuel = None }

let deadline ?wall_s ?fuel () =
  {
    expires_at = Option.map (fun s -> Unix.gettimeofday () +. s) wall_s;
    fuel = Option.map Atomic.make fuel;
  }

let expired d =
  (match d.expires_at with
  | Some t -> Unix.gettimeofday () >= t
  | None -> false)
  || match d.fuel with Some f -> Atomic.get f <= 0 | None -> false

let check_deadline d =
  (match d.fuel with
  | Some f when Atomic.get f <= 0 -> raise (Deadline_exceeded "fuel exhausted")
  | Some _ | None -> ());
  match d.expires_at with
  | Some t when Unix.gettimeofday () >= t ->
    raise (Deadline_exceeded "wall-clock deadline exceeded")
  | Some _ | None -> ()

let spend d k =
  match d.fuel with
  | Some f -> ignore (Atomic.fetch_and_add f (-k))
  | None -> ()

let wall_left_s d =
  Option.map (fun t -> t -. Unix.gettimeofday ()) d.expires_at

let guard_observer ?(every = 2048) d =
  (* One int incr + compare per event; a gettimeofday only every
     [every] events. Per-cell state, so no cross-domain traffic. *)
  let count = ref 0 in
  fun _ev ->
    incr count;
    if !count >= every then begin
      count := 0;
      spend d every;
      check_deadline d
    end

(* ---- error taxonomy ---- *)

type error_class = Transient | Harness_bug

let classify = function
  | Out_of_memory | Stack_overflow -> Transient
  | Unix.Unix_error ((Unix.EINTR | Unix.EAGAIN), _, _) -> Transient
  | _ -> Harness_bug

let pp_error_class ppf = function
  | Transient -> Fmt.string ppf "transient"
  | Harness_bug -> Fmt.string ppf "harness-bug"

(* ---- retry policy ---- *)

type retry = {
  attempts : int;
  backoff_s : float;
  backoff_factor : float;
  max_backoff_s : float;
  retry_timeouts : bool;
}

let default_retry =
  {
    attempts = 3;
    backoff_s = 0.05;
    backoff_factor = 8.;
    max_backoff_s = 2.;
    retry_timeouts = true;
  }

let no_retry = { default_retry with attempts = 1 }

let backoff_for retry ~attempt =
  (* Sleep before attempt [attempt] (attempt 2 sleeps the base). *)
  min retry.max_backoff_s
    (retry.backoff_s *. (retry.backoff_factor ** float_of_int (attempt - 2)))

(* ---- cells ---- *)

type 'a outcome =
  | Ok_cell of 'a
  | Timed_out of string
  | Errored of error_class * string
  | Skipped of string

type 'a cell = { outcome : 'a outcome; attempts : int }

let cell_value c = match c.outcome with Ok_cell v -> Some v | _ -> None

let run_cell ?(retry = no_retry) ?(deadline_for = fun ~attempt:_ -> no_deadline)
    ?(sleep = Unix.sleepf) f =
  let attempts = max 1 retry.attempts in
  let rec go attempt =
    let again mk =
      if attempt >= attempts then { outcome = mk (); attempts = attempt }
      else begin
        sleep (backoff_for retry ~attempt:(attempt + 1));
        go (attempt + 1)
      end
    in
    match f (deadline_for ~attempt) with
    | v -> { outcome = Ok_cell v; attempts = attempt }
    | exception Deadline_exceeded detail ->
      if retry.retry_timeouts then again (fun () -> Timed_out detail)
      else { outcome = Timed_out detail; attempts = attempt }
    | exception e -> (
      let detail = Printexc.to_string e in
      match classify e with
      | Transient -> again (fun () -> Errored (Transient, detail))
      | Harness_bug -> { outcome = Errored (Harness_bug, detail); attempts = attempt })
  in
  go 1

(* ---- coverage ---- *)

type coverage = {
  cells_total : int;
  cells_done : int;
  timeouts : int;
  errors : int;
  skipped : int;
  retries : int;
  degraded : int;
  interrupted : bool;
}

let full_coverage n =
  {
    cells_total = n;
    cells_done = n;
    timeouts = 0;
    errors = 0;
    skipped = 0;
    retries = 0;
    degraded = 0;
    interrupted = false;
  }

let coverage_of_cells cells =
  let c = ref (full_coverage 0) in
  Array.iter
    (fun cell ->
      let cur = !c in
      let cur = { cur with cells_total = cur.cells_total + 1 } in
      let cur =
        { cur with retries = cur.retries + max 0 (cell.attempts - 1) }
      in
      c :=
        (match cell.outcome with
        | Ok_cell _ ->
          {
            cur with
            cells_done = cur.cells_done + 1;
            degraded = (cur.degraded + if cell.attempts > 1 then 1 else 0);
          }
        | Timed_out _ -> { cur with timeouts = cur.timeouts + 1 }
        | Errored _ -> { cur with errors = cur.errors + 1 }
        | Skipped _ -> { cur with skipped = cur.skipped + 1; interrupted = true }))
    cells;
  !c

let coverage_union a b =
  {
    cells_total = a.cells_total + b.cells_total;
    cells_done = a.cells_done + b.cells_done;
    timeouts = a.timeouts + b.timeouts;
    errors = a.errors + b.errors;
    skipped = a.skipped + b.skipped;
    retries = a.retries + b.retries;
    degraded = a.degraded + b.degraded;
    interrupted = a.interrupted || b.interrupted;
  }

let complete c =
  c.cells_done = c.cells_total && c.timeouts = 0 && c.errors = 0 && c.skipped = 0

let pp_coverage ppf c =
  Fmt.pf ppf "%d/%d cells" c.cells_done c.cells_total;
  let parts = [] in
  let parts = if c.timeouts > 0 then Fmt.str "%d timeout" c.timeouts :: parts else parts in
  let parts = if c.errors > 0 then Fmt.str "%d error" c.errors :: parts else parts in
  let parts =
    if c.skipped > 0 then
      Fmt.str "%d skipped%s" c.skipped (if c.interrupted then ", interrupted" else "")
      :: parts
    else parts
  in
  let parts = if c.retries > 0 then Fmt.str "%d retries" c.retries :: parts else parts in
  let parts = if c.degraded > 0 then Fmt.str "%d degraded" c.degraded :: parts else parts in
  match List.rev parts with
  | [] -> ()
  | parts -> Fmt.pf ppf " (%s)" (String.concat "; " parts)

let coverage_rows ~prefix c =
  [
    (prefix ^ ".cells_total", c.cells_total);
    (prefix ^ ".cells_done", c.cells_done);
    (prefix ^ ".timeouts", c.timeouts);
    (prefix ^ ".errors", c.errors);
    (prefix ^ ".skipped", c.skipped);
    (prefix ^ ".retries", c.retries);
    (prefix ^ ".degraded", c.degraded);
    (prefix ^ ".interrupted", if c.interrupted then 1 else 0);
  ]

(* ---- interrupts ---- *)

let interrupt_flag = Atomic.make false
let handlers_installed = ref false

let interrupted () = Atomic.get interrupt_flag
let request_interrupt () = Atomic.set interrupt_flag true
let reset_interrupt () = Atomic.set interrupt_flag false

let install_interrupt_handlers () =
  if not !handlers_installed then begin
    handlers_installed := true;
    let handle _ =
      if Atomic.get interrupt_flag then exit 130 else Atomic.set interrupt_flag true
    in
    List.iter
      (fun s ->
        try Sys.set_signal s (Sys.Signal_handle handle)
        with Invalid_argument _ | Sys_error _ -> ())
      [ Sys.sigint; Sys.sigterm ]
  end

(* ---- resilient map ---- *)

let map ?jobs ?grain ?stats ?retry ?deadline_for ?sleep
    ?(should_stop = fun () -> false) ?(skip = fun _ -> None) f a =
  let cell i x =
    match skip i with
    | Some c -> c
    | None ->
      if interrupted () || should_stop () then
        { outcome = Skipped "interrupted"; attempts = 0 }
      else run_cell ?retry ?deadline_for ?sleep (fun d -> f d x)
  in
  (* [cell] never raises: run_cell folds exceptions into the outcome,
     so the pool's min-index error path is unreachable from here and a
     bad cell cannot poison the array. *)
  Hwf_par.Pool.map ?jobs ?grain ?stats
    (fun (i, x) -> cell i x)
    (Array.mapi (fun i x -> (i, x)) a)

(* ---- exit codes ---- *)

let exit_ok = 0
let exit_counterexample = 1
let exit_harness = 2
