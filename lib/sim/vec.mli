(** Growable arrays.

    OCaml 5.1 predates [Dynarray]; this is the small subset the simulator
    needs: amortized O(1) append, O(1) random access, iteration. *)

type 'a t

val create : unit -> 'a t

val length : 'a t -> int

val get : 'a t -> int -> 'a
(** [get v i] is the [i]-th element. @raise Invalid_argument if out of range. *)

val push : 'a t -> 'a -> unit

val clear : 'a t -> unit
(** [clear v] drops all elements but keeps the underlying buffer, so a
    vector can be reused across runs without reallocating. Old elements
    are not overwritten (they stay reachable until pushed over) — reuse
    is for per-worker scratch buffers, not for releasing memory. *)

val iter : ('a -> unit) -> 'a t -> unit

val iteri : (int -> 'a -> unit) -> 'a t -> unit

val fold_left : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc

val to_list : 'a t -> 'a list

val of_list : 'a list -> 'a t

val last : 'a t -> 'a option
(** [last v] is the most recently pushed element, if any. *)

val exists : ('a -> bool) -> 'a t -> bool

val filter : ('a -> bool) -> 'a t -> 'a list
