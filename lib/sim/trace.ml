type event =
  | Stmt of { idx : int; pid : Proc.pid; op : Op.t; inv : int; cost : int }
  | Inv_begin of { pid : Proc.pid; inv : int; label : string }
  | Inv_end of { pid : Proc.pid; inv : int; label : string }
  | Note of { pid : Proc.pid; text : string }
  | Set_priority of { pid : Proc.pid; priority : int }
  | Axiom2_gate of { at : int; active : bool }

type stmt_sink = idx:int -> pid:Proc.pid -> op:Op.t -> inv:int -> cost:int -> unit

type sink = { on_stmt : stmt_sink; on_event : event -> unit }

(* Packed encoding: events live in one int array as variable-stride
   records, decoded lazily by the iterators. Each record starts with a
   header int carrying the tag (low 3 bits) and the pid (the rest);
   payloads are ints, with ops and strings interned into side tables
   (structurally distinct ops/labels are few; the same id is reused for
   every repetition). Appending a statement is therefore a handful of
   int stores — no event record, no per-event pointer — which is what
   the engine's burst loop runs against. *)

let tag_stmt = 0
let tag_inv_begin = 1
let tag_inv_end = 2
let tag_note = 3
let tag_set_priority = 4
let tag_gate = 5

let no_stmt ~idx:_ ~pid:_ ~op:_ ~inv:_ ~cost:_ = ()
let no_event (_ : event) = ()

type t = {
  config : Config.t;
  mutable buf : int array;  (* packed events *)
  mutable pos : int;  (* ints used in [buf] *)
  mutable len : int;  (* number of events *)
  ops : Op.t Vec.t;  (* op intern table, id = index *)
  op_ids : (Op.t, int) Hashtbl.t;
  mutable last_op : Op.t option;  (* 1-entry memo in front of [op_ids] *)
  mutable last_op_id : int;
  strs : string Vec.t;  (* label/text intern table *)
  str_ids : (string, int) Hashtbl.t;
  mutable stmts : int;
  mutable time : int;
  own : int array;  (* per-pid statement counts, maintained incrementally *)
  mutable now_reads : int;
  mutable stamp_reads : int;
  (* Observer sink, split per event class so the statement hot path
     passes fields instead of allocating an event record. Always
     callable: when nothing is installed both are no-ops, so the append
     path carries no option match. [observed] gates the (rare) non-Stmt
     appends that would otherwise allocate an event just to discard it. *)
  mutable on_stmt : stmt_sink;
  mutable on_event : event -> unit;
  mutable observed : bool;
}

let create config =
  {
    config;
    buf = [||];
    pos = 0;
    len = 0;
    ops = Vec.create ();
    op_ids = Hashtbl.create 16;
    last_op = None;
    last_op_id = -1;
    strs = Vec.create ();
    str_ids = Hashtbl.create 16;
    stmts = 0;
    time = 0;
    own = Array.make (Config.n config) 0;
    now_reads = 0;
    stamp_reads = 0;
    on_stmt = no_stmt;
    on_event = no_event;
    observed = false;
  }

let clear_observer t =
  t.on_stmt <- no_stmt;
  t.on_event <- no_event;
  t.observed <- false

let reset t =
  (* The packed buffer and the intern tables are kept: ids are internal
     to the encoding (never observable through the API), so letting them
     survive across runs is pure reuse — the point of [trace_buf]. *)
  t.pos <- 0;
  t.len <- 0;
  t.stmts <- 0;
  t.time <- 0;
  Array.fill t.own 0 (Array.length t.own) 0;
  t.now_reads <- 0;
  t.stamp_reads <- 0;
  clear_observer t

let count_now t = t.now_reads <- t.now_reads + 1

let now_reads t = t.now_reads

let count_stamp t = t.stamp_reads <- t.stamp_reads + 1

let stamp_reads t = t.stamp_reads

let config t = t.config

let set_observer t f =
  t.on_event <- f;
  t.on_stmt <- (fun ~idx ~pid ~op ~inv ~cost -> f (Stmt { idx; pid; op; inv; cost }));
  t.observed <- true

let set_sink t (s : sink) =
  t.on_stmt <- s.on_stmt;
  t.on_event <- s.on_event;
  t.observed <- true

let ensure t k =
  let need = t.pos + k in
  if need > Array.length t.buf then begin
    let cap = max 256 (max need (2 * Array.length t.buf)) in
    let buf = Array.make cap 0 in
    Array.blit t.buf 0 buf 0 t.pos;
    t.buf <- buf
  end

let op_id t op =
  match t.last_op with
  | Some o when Op.equal o op -> t.last_op_id
  | _ ->
    let id =
      match Hashtbl.find_opt t.op_ids op with
      | Some id -> id
      | None ->
        let id = Vec.length t.ops in
        Vec.push t.ops op;
        Hashtbl.add t.op_ids op id;
        id
    in
    t.last_op <- Some op;
    t.last_op_id <- id;
    id

let str_id t s =
  match Hashtbl.find_opt t.str_ids s with
  | Some id -> id
  | None ->
    let id = Vec.length t.strs in
    Vec.push t.strs s;
    Hashtbl.add t.str_ids s id;
    id

(* The engine's hot path: append a statement without building the event
   record. [idx] is implicit — always the running statement count. *)
let add_stmt t ~pid ~op ~inv ~cost =
  let idx = t.stmts in
  t.stmts <- idx + 1;
  t.time <- t.time + cost;
  t.own.(pid) <- t.own.(pid) + 1;
  ensure t 5;
  let b = t.buf and p = t.pos in
  b.(p) <- tag_stmt lor (pid lsl 3);
  b.(p + 1) <- idx;
  b.(p + 2) <- op_id t op;
  b.(p + 3) <- inv;
  b.(p + 4) <- cost;
  t.pos <- p + 5;
  t.len <- t.len + 1;
  t.on_stmt ~idx ~pid ~op ~inv ~cost

let add_inv_begin t ~pid ~inv ~label =
  ensure t 3;
  let b = t.buf and p = t.pos in
  b.(p) <- tag_inv_begin lor (pid lsl 3);
  b.(p + 1) <- inv;
  b.(p + 2) <- str_id t label;
  t.pos <- p + 3;
  t.len <- t.len + 1;
  if t.observed then t.on_event (Inv_begin { pid; inv; label })

let add_inv_end t ~pid ~inv ~label =
  ensure t 3;
  let b = t.buf and p = t.pos in
  b.(p) <- tag_inv_end lor (pid lsl 3);
  b.(p + 1) <- inv;
  b.(p + 2) <- str_id t label;
  t.pos <- p + 3;
  t.len <- t.len + 1;
  if t.observed then t.on_event (Inv_end { pid; inv; label })

let add t e =
  match e with
  | Stmt { idx; pid; op; inv; cost } ->
    (* Honor the caller's [idx] (synthetic traces index freely); the
       derived counters advance exactly as before. *)
    t.stmts <- t.stmts + 1;
    t.time <- t.time + cost;
    t.own.(pid) <- t.own.(pid) + 1;
    ensure t 5;
    let b = t.buf and p = t.pos in
    b.(p) <- tag_stmt lor (pid lsl 3);
    b.(p + 1) <- idx;
    b.(p + 2) <- op_id t op;
    b.(p + 3) <- inv;
    b.(p + 4) <- cost;
    t.pos <- p + 5;
    t.len <- t.len + 1;
    t.on_stmt ~idx ~pid ~op ~inv ~cost
  | Inv_begin { pid; inv; label } -> add_inv_begin t ~pid ~inv ~label
  | Inv_end { pid; inv; label } -> add_inv_end t ~pid ~inv ~label
  | Note { pid; text } ->
    ensure t 2;
    let b = t.buf and p = t.pos in
    b.(p) <- tag_note lor (pid lsl 3);
    b.(p + 1) <- str_id t text;
    t.pos <- p + 2;
    t.len <- t.len + 1;
    if t.observed then t.on_event e
  | Set_priority { pid; priority } ->
    ensure t 2;
    let b = t.buf and p = t.pos in
    b.(p) <- tag_set_priority lor (pid lsl 3);
    b.(p + 1) <- priority;
    t.pos <- p + 2;
    t.len <- t.len + 1;
    if t.observed then t.on_event e
  | Axiom2_gate { at; active } ->
    ensure t 3;
    let b = t.buf and p = t.pos in
    b.(p) <- tag_gate;
    b.(p + 1) <- at;
    b.(p + 2) <- (if active then 1 else 0);
    t.pos <- p + 3;
    t.len <- t.len + 1;
    if t.observed then t.on_event e

(* Sequential lazy decode: each record is rebuilt as an [event] only
   when a consumer walks the trace. *)
let iter f t =
  let b = t.buf in
  let p = ref 0 in
  while !p < t.pos do
    let h = b.(!p) in
    let tag = h land 7 and pid = h lsr 3 in
    if tag = tag_stmt then begin
      f
        (Stmt
           {
             idx = b.(!p + 1);
             pid;
             op = Vec.get t.ops b.(!p + 2);
             inv = b.(!p + 3);
             cost = b.(!p + 4);
           });
      p := !p + 5
    end
    else if tag = tag_inv_begin then begin
      f (Inv_begin { pid; inv = b.(!p + 1); label = Vec.get t.strs b.(!p + 2) });
      p := !p + 3
    end
    else if tag = tag_inv_end then begin
      f (Inv_end { pid; inv = b.(!p + 1); label = Vec.get t.strs b.(!p + 2) });
      p := !p + 3
    end
    else if tag = tag_note then begin
      f (Note { pid; text = Vec.get t.strs b.(!p + 1) });
      p := !p + 2
    end
    else if tag = tag_set_priority then begin
      f (Set_priority { pid; priority = b.(!p + 1) });
      p := !p + 2
    end
    else begin
      f (Axiom2_gate { at = b.(!p + 1); active = b.(!p + 2) = 1 });
      p := !p + 3
    end
  done

let fold f acc t =
  let acc = ref acc in
  iter (fun e -> acc := f !acc e) t;
  !acc

let events t =
  let acc = ref [] in
  iter (fun e -> acc := e :: !acc) t;
  List.rev !acc

let length t = t.len

let statements t = t.stmts

let time t = t.time

let own_statements t pid =
  if pid < 0 || pid >= Array.length t.own then invalid_arg "Trace.own_statements";
  t.own.(pid)

let pp_event ppf = function
  | Stmt { idx; pid; op; inv; cost } ->
    Fmt.pf ppf "%4d  %a.%d  %a%s" idx Proc.pp_pid pid inv Op.pp op
      (if cost = 1 then "" else Printf.sprintf " (cost %d)" cost)
  | Inv_begin { pid; inv; label } ->
    Fmt.pf ppf "      %a.%d  BEGIN %s" Proc.pp_pid pid inv label
  | Inv_end { pid; inv; label } ->
    Fmt.pf ppf "      %a.%d  END %s" Proc.pp_pid pid inv label
  | Note { pid; text } -> Fmt.pf ppf "      %a  -- %s" Proc.pp_pid pid text
  | Set_priority { pid; priority } ->
    Fmt.pf ppf "      %a  PRIORITY := %d" Proc.pp_pid pid priority
  | Axiom2_gate { at; active } ->
    Fmt.pf ppf "%4d  AXIOM 2 %s" at (if active then "RESUMED" else "SUSPENDED")

let pp ppf t =
  let first = ref true in
  Fmt.pf ppf "@[<v>";
  iter
    (fun e ->
      if !first then first := false else Fmt.pf ppf "@,";
      pp_event ppf e)
    t;
  Fmt.pf ppf "@]"
