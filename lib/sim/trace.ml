type event =
  | Stmt of { idx : int; pid : Proc.pid; op : Op.t; inv : int; cost : int }
  | Inv_begin of { pid : Proc.pid; inv : int; label : string }
  | Inv_end of { pid : Proc.pid; inv : int; label : string }
  | Note of { pid : Proc.pid; text : string }
  | Set_priority of { pid : Proc.pid; priority : int }
  | Axiom2_gate of { at : int; active : bool }

type t = {
  config : Config.t;
  events : event Vec.t;
  mutable stmts : int;
  mutable time : int;
  own : int array;  (* per-pid statement counts, maintained incrementally *)
  mutable now_reads : int;
  mutable observer : (event -> unit) option;
}

let create config =
  {
    config;
    events = Vec.create ();
    stmts = 0;
    time = 0;
    own = Array.make (Config.n config) 0;
    now_reads = 0;
    observer = None;
  }

let reset t =
  Vec.clear t.events;
  t.stmts <- 0;
  t.time <- 0;
  Array.fill t.own 0 (Array.length t.own) 0;
  t.now_reads <- 0;
  t.observer <- None

let count_now t = t.now_reads <- t.now_reads + 1

let now_reads t = t.now_reads

let config t = t.config

let set_observer t f = t.observer <- Some f

let clear_observer t = t.observer <- None

let add t e =
  (match e with
  | Stmt { pid; cost; _ } ->
    t.stmts <- t.stmts + 1;
    t.time <- t.time + cost;
    t.own.(pid) <- t.own.(pid) + 1
  | _ -> ());
  Vec.push t.events e;
  match t.observer with None -> () | Some f -> f e

let events t = Vec.to_list t.events

let iter f t = Vec.iter f t.events

let fold f acc t = Vec.fold_left f acc t.events

let length t = Vec.length t.events

let statements t = t.stmts

let time t = t.time

let own_statements t pid =
  if pid < 0 || pid >= Array.length t.own then invalid_arg "Trace.own_statements";
  t.own.(pid)

let pp_event ppf = function
  | Stmt { idx; pid; op; inv; cost } ->
    Fmt.pf ppf "%4d  %a.%d  %a%s" idx Proc.pp_pid pid inv Op.pp op
      (if cost = 1 then "" else Printf.sprintf " (cost %d)" cost)
  | Inv_begin { pid; inv; label } ->
    Fmt.pf ppf "      %a.%d  BEGIN %s" Proc.pp_pid pid inv label
  | Inv_end { pid; inv; label } ->
    Fmt.pf ppf "      %a.%d  END %s" Proc.pp_pid pid inv label
  | Note { pid; text } -> Fmt.pf ppf "      %a  -- %s" Proc.pp_pid pid text
  | Set_priority { pid; priority } ->
    Fmt.pf ppf "      %a  PRIORITY := %d" Proc.pp_pid pid priority
  | Axiom2_gate { at; active } ->
    Fmt.pf ppf "%4d  AXIOM 2 %s" at (if active then "RESUMED" else "SUSPENDED")

let pp ppf t =
  let first = ref true in
  Fmt.pf ppf "@[<v>";
  iter
    (fun e ->
      if !first then first := false else Fmt.pf ppf "@,";
      pp_event ppf e)
    t;
  Fmt.pf ppf "@]"
