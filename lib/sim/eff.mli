(** The effect vocabulary connecting process code to the engine.

    Process bodies are ordinary OCaml functions. Each atomic statement is
    announced by performing {!step} (or one of its wrappers in
    {!Shared}); the engine executes exactly one statement per scheduling
    decision, so the code between two performs runs atomically — this is
    what makes "quantum = statement count" exact.

    Invocation boundaries ({!invocation}) are not statements: they are
    the thinking/ready transitions of the paper's long-lived-object
    model. A process suspended at an invocation boundary is {e thinking}
    and has no enabled statement; the scheduler decides when it wakes. *)

val step : Op.t -> unit
(** Announce that the next atomic statement is about to execute.
    Everything up to the next perform runs atomically. Must only be
    called from code running under {!Engine.run}. *)

val local : string -> unit
(** [local l] is [step (Op.local l)]: a numbered statement that touches
    only private variables. *)

val invocation : string -> (unit -> 'a) -> 'a
(** [invocation label body] brackets [body] as one object invocation:
    the process transits thinking → ready before the first statement of
    [body] and ready → thinking after its last. *)

val note : string -> unit
(** Zero-cost trace annotation (not a statement). *)

val now : unit -> int
(** The global statement count so far. Zero-cost (not a statement); used
    by history recorders to timestamp operation intervals.

    Reading the global clock makes the run schedule-sensitive: commuting
    two independent statements of {e other} processes changes the value
    returned here, so partial-order pruning must treat a [now]-reading
    run as tainted (see {!Explore}). Prefer {!stamp} for history
    timestamps. *)

val stamp : unit -> int * int
(** [(processor, count)] — the calling process's processor and the
    number of statements executed {e on that processor} so far.
    Zero-cost (not a statement).

    Unlike {!now}, this order is stable under partial-order reduction:
    statements on the same processor never commute (the scheduler's
    per-processor accounting orders them), so the per-processor count is
    invariant under every reordering of independent statements that
    DPOR considers equivalent. Two stamps are ordered only when they
    share a processor; history checkers must treat stamps on different
    processors as concurrent. *)

val set_priority : int -> unit
(** Change the calling process's priority (Sec. 5: dynamic priorities).
    Only legal between invocations — "a process's priority cannot change
    during an object invocation" — and zero-cost (priority management is
    the scheduler's business, not a shared-memory statement).
    @raise Invalid_argument if performed mid-invocation or if the level
    is outside [1..V]. *)

(**/**)

(* Exposed for the engine only. *)
type _ Effect.t +=
  | Step : Op.t -> unit Effect.t
  | Inv_begin : string -> unit Effect.t
  | Inv_end : string -> unit Effect.t
  | Note : string -> unit Effect.t
  | Now : int Effect.t
  | Stamp : (int * int) Effect.t
  | Set_priority : int -> unit Effect.t
