(** Shared variables.

    A ['a t] is a single-word shared variable in the paper's sense: reads
    and writes of it are atomic statements. Records the paper stores "in
    one word" (e.g. [hdtype]) are represented directly as OCaml values
    held in one variable, which preserves the atomicity granularity.

    Each access performs exactly one {!Eff.step}, so accesses are visible
    to the scheduler and counted against the quantum.

    A store models memory shared between {e simulated} processes, not
    between OCaml domains: it is a plain mutable cell, safe because the
    engine executes one statement at a time on one domain. When runs are
    fanned out across a domain pool ([docs/PARALLELISM.md]), each run
    must build its own stores (scenario [make] functions already do),
    so no store is ever touched by two domains. *)

type 'a t

val make : string -> 'a -> 'a t
(** [make name init] creates a shared variable. [name] appears in traces. *)

val name : 'a t -> string

val read : 'a t -> 'a
(** Atomic read (one statement). *)

val write : 'a t -> 'a -> unit
(** Atomic write (one statement). *)

val peek : 'a t -> 'a
(** Read the current value {e without} consuming a statement. For test
    harnesses and checkers inspecting quiescent state only — never call
    from process code. The contract is enforced at run time: under an
    active {!Engine.run}, a peek from process code raises
    [Invalid_argument] unless it is wrapped in
    {!Runtime.instrumentation} (deliberate zero-statement bookkeeping)
    or a lint tap is installed ({!Runtime.with_tap}), in which case the
    offence is reported to the linter instead. *)

val poke : 'a t -> 'a -> unit
(** Initialize/overwrite without consuming a statement. Harness use
    only; enforced at run time exactly like {!peek}. *)

val array : string -> int -> (int -> 'a) -> 'a t array
(** [array name n init] creates [n] shared variables named
    [name[1]] … [name[n]], element [i] initialized to [init i]
    (0-based [i]; names render 1-based like the paper). *)

val matrix : string -> int -> int -> (int -> int -> 'a) -> 'a t array array
(** Two-dimensional variant: [name[i][j]]. *)
