type 'a t = { mutable v : 'a; name : string }

let make name v = { v; name }

let name t = t.name

let read t =
  Eff.step (Op.read t.name);
  Runtime.report ~var:t.name ~kind:Runtime.Read;
  t.v

let write t x =
  Eff.step (Op.write t.name);
  Runtime.report ~var:t.name ~kind:Runtime.Write;
  t.v <- x

let peek t =
  Runtime.harness_access ~var:t.name ~kind:Runtime.Peek;
  t.v

let poke t x =
  Runtime.harness_access ~var:t.name ~kind:Runtime.Poke;
  t.v <- x

let array name n init =
  Array.init n (fun i -> make (Printf.sprintf "%s[%d]" name (i + 1)) (init i))

let matrix name rows cols init =
  Array.init rows (fun i ->
      Array.init cols (fun j ->
          make (Printf.sprintf "%s[%d][%d]" name (i + 1) (j + 1)) (init i j)))
