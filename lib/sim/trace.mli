(** Execution histories.

    A trace is the machine-readable form of the paper's notion of a
    history: the sequence of atomic statement executions, interleaved
    with invocation boundaries and free-form notes. Traces are the input
    to the well-formedness checker ({!Wellformed}), the interleaving
    renderer ({!Render}) and the linearizability checker. *)

type event =
  | Stmt of { idx : int; pid : Proc.pid; op : Op.t; inv : int; cost : int }
      (** The [idx]-th statement of the run, executed by [pid] as part of
          its [inv]-th invocation (0-based). [cost] is the statement's
          duration in time units, in [tmin..tmax] (1 in the pure
          statement-count model). *)
  | Inv_begin of { pid : Proc.pid; inv : int; label : string }
  | Inv_end of { pid : Proc.pid; inv : int; label : string }
  | Note of { pid : Proc.pid; text : string }
  | Set_priority of { pid : Proc.pid; priority : int }
      (** The process changed its own priority between invocations
          (Sec. 5: dynamic priorities). *)
  | Axiom2_gate of { at : int; active : bool }
      (** Fault injection toggled enforcement of the Axiom 2 quantum
          guarantee at statement index [at] ({!Engine.run}'s
          [axiom2_active] hook). Recorded so a trace remains
          self-describing: {!Wellformed.check} suspends its quantum
          checks while the gate is off. Absent in unfaulted runs. *)

type t

val create : Config.t -> t

val reset : t -> unit
(** Return the trace to its just-created state — no events, zero
    counters, no observer — while keeping the underlying event buffer,
    so one trace can serve as a reusable per-worker scratch across many
    engine runs (see {!Engine.run}'s [trace_buf]). The configuration is
    retained: a reset trace is only valid for runs of the same
    configuration. *)

val config : t -> Config.t

val set_observer : t -> (event -> unit) -> unit
(** Install a sink that sees every event as it is appended (after the
    trace's own bookkeeping). At most one observer is active; installing
    replaces the previous one. The hook is nullable-by-default: when no
    observer is installed, {!add} pays a single [match] — this is the
    zero-overhead guard the observability layer ({!Hwf_obs.Metrics})
    relies on. *)

val clear_observer : t -> unit

val add : t -> event -> unit

val events : t -> event list
(** A fresh list copy of the whole history — O(length) allocation. For
    a single pass prefer {!iter} or {!fold}, which walk the underlying
    vector without copying. *)

val iter : (event -> unit) -> t -> unit
(** [iter f t] applies [f] to every event in append order, without
    materializing a list. *)

val fold : ('acc -> event -> 'acc) -> 'acc -> t -> 'acc
(** [fold f acc t] folds over events in append order, without
    materializing a list. *)

val length : t -> int
(** Number of events (not statements). *)

val statements : t -> int
(** Number of statements executed. *)

val time : t -> int
(** Total time units consumed (equals [statements] when all costs are 1). *)

val own_statements : t -> Proc.pid -> int
(** Statements executed by [pid], maintained incrementally on {!add}
    (O(1), not a refold of the event vector).
    @raise Invalid_argument if [pid] is outside the configuration. *)

val count_now : t -> unit
(** Engine-internal: record that the running program observed the global
    statement clock ([Eff.now]). Not an event — a plain counter. *)

val now_reads : t -> int
(** How many times the run observed the global statement clock. The
    explorer's sleep-set pruning ({!Hwf_adversary.Explore}) is sound
    only for runs that never read global state outside their [Shared]
    footprints; [now_reads > 0] is the taint signal that disables it. *)

val pp_event : event Fmt.t

val pp : t Fmt.t
(** One event per line. *)
