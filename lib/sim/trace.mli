(** Execution histories.

    A trace is the machine-readable form of the paper's notion of a
    history: the sequence of atomic statement executions, interleaved
    with invocation boundaries and free-form notes. Traces are the input
    to the well-formedness checker ({!Wellformed}), the interleaving
    renderer ({!Render}) and the linearizability checker.

    {b Representation.} Events are stored packed: one flat int array of
    variable-stride records (tag + pid in a header word, int payloads),
    with ops and labels interned into side tables. The {!event} records
    handed out by {!iter}/{!fold}/{!events} are decoded lazily, on the
    walk; appending a statement ({!add_stmt}) is a handful of int
    stores with no allocation. The encoding is an internal detail — the
    event-level API is unchanged and decode order is append order. *)

type event =
  | Stmt of { idx : int; pid : Proc.pid; op : Op.t; inv : int; cost : int }
      (** The [idx]-th statement of the run, executed by [pid] as part of
          its [inv]-th invocation (0-based). [cost] is the statement's
          duration in time units, in [tmin..tmax] (1 in the pure
          statement-count model). *)
  | Inv_begin of { pid : Proc.pid; inv : int; label : string }
  | Inv_end of { pid : Proc.pid; inv : int; label : string }
  | Note of { pid : Proc.pid; text : string }
  | Set_priority of { pid : Proc.pid; priority : int }
      (** The process changed its own priority between invocations
          (Sec. 5: dynamic priorities). *)
  | Axiom2_gate of { at : int; active : bool }
      (** Fault injection toggled enforcement of the Axiom 2 quantum
          guarantee at statement index [at] ({!Engine.run}'s
          [axiom2_active] hook). Recorded so a trace remains
          self-describing: {!Wellformed.check} suspends its quantum
          checks while the gate is off. Absent in unfaulted runs. *)

type stmt_sink = idx:int -> pid:Proc.pid -> op:Op.t -> inv:int -> cost:int -> unit
(** Allocation-free observer entry point for statement events: the
    fields arrive as arguments (all immediates plus the interned op
    pointer), so observing a statement allocates nothing. *)

type sink = {
  on_stmt : stmt_sink;  (** Every statement, in append order. *)
  on_event : event -> unit;  (** Every {e non-statement} event. *)
}
(** A split observer: the hot event class (statements) bypasses event
    allocation entirely; the rare classes arrive as ordinary events.
    See {!Hwf_obs.Metrics.sink} for the canonical implementation. *)

type t

val create : Config.t -> t

val reset : t -> unit
(** Return the trace to its just-created state — no events, zero
    counters, no observer — while keeping the underlying packed buffer
    and intern tables, so one trace can serve as a reusable per-worker
    scratch across many engine runs (see {!Engine.run}'s [trace_buf]).
    The configuration is retained: a reset trace is only valid for runs
    of the same configuration. *)

val config : t -> Config.t

val set_observer : t -> (event -> unit) -> unit
(** Install a sink that sees every event as it is appended (after the
    trace's own bookkeeping). At most one observer is active; installing
    replaces the previous one (including one installed via {!set_sink}).
    A generic observer receives statement events as allocated {!event}
    records; observers on the hot path should prefer {!set_sink}. When
    nothing is installed, the append path runs against no-op sinks — no
    option match, no event allocation for statements. *)

val set_sink : t -> sink -> unit
(** Like {!set_observer}, but split per event class so statements are
    observed allocation-free (see {!sink}). Replaces any installed
    observer. *)

val clear_observer : t -> unit
(** Remove the installed observer or sink (a no-op when none is
    installed). {!Engine.run} installs and removes its observer
    symmetrically on every exit path, so a trace never escapes a run
    with a stale observer attached. *)

val add : t -> event -> unit

val add_stmt : t -> pid:Proc.pid -> op:Op.t -> inv:int -> cost:int -> unit
(** Append a statement event whose [idx] is the running statement count
    — the engine's hot path. Equivalent to
    [add t (Stmt { idx = statements t; pid; op; inv; cost })] but
    allocation-free (no event record is built unless a generic
    {!set_observer} observer is installed). *)

val add_inv_begin : t -> pid:Proc.pid -> inv:int -> label:string -> unit

val add_inv_end : t -> pid:Proc.pid -> inv:int -> label:string -> unit

val events : t -> event list
(** A fresh list copy of the whole history — O(length) allocation. For
    a single pass prefer {!iter} or {!fold}, which walk the underlying
    vector without copying. *)

val iter : (event -> unit) -> t -> unit
(** [iter f t] applies [f] to every event in append order, without
    materializing a list. *)

val fold : ('acc -> event -> 'acc) -> 'acc -> t -> 'acc
(** [fold f acc t] folds over events in append order, without
    materializing a list. *)

val length : t -> int
(** Number of events (not statements). *)

val statements : t -> int
(** Number of statements executed. *)

val time : t -> int
(** Total time units consumed (equals [statements] when all costs are 1). *)

val own_statements : t -> Proc.pid -> int
(** Statements executed by [pid], maintained incrementally on {!add}
    (O(1), not a refold of the event vector).
    @raise Invalid_argument if [pid] is outside the configuration. *)

val count_now : t -> unit
(** Engine-internal: record that the running program observed the global
    statement clock ([Eff.now]). Not an event — a plain counter. *)

val now_reads : t -> int
(** How many times the run observed the global statement clock. The
    explorer's sleep-set pruning ({!Hwf_adversary.Explore}) is sound
    only for runs that never read global state outside their [Shared]
    footprints; [now_reads > 0] is the taint signal that disables it. *)

val count_stamp : t -> unit
(** Engine-internal: record that the running program observed its
    per-processor timestamp ([Eff.stamp]). Not an event — a plain
    counter. *)

val stamp_reads : t -> int
(** How many times the run observed a per-processor timestamp. Unlike
    {!now_reads} this does {e not} taint partial-order pruning: the
    per-processor statement count is invariant under commutation of
    independent statements (same-processor statements never commute),
    so a stamp-reading run stays prunable. Counted for observability
    only. *)

val pp_event : event Fmt.t

val pp : t Fmt.t
(** One event per line. *)
