open Effect.Deep

type stop_reason =
  | All_finished
  | Policy_stopped
  | Step_limit
  | Decision_limit
  | All_halted

type result = {
  trace : Trace.t;
  finished : bool array;
  own_steps : int array;
  halted : bool array;
  stop : stop_reason;
}

type pstate =
  | Boundary of (unit, unit) continuation
      (* Thinking, suspended just before the next invocation's body. *)
  | Ready of (unit, unit) continuation * Op.t
      (* Mid-invocation (or about to start one), next statement pending. *)
  | Finished

type cell = {
  info : Proc.t;
  mutable priority : int;  (* current priority; Sec. 5 dynamic priorities *)
  mutable state : pstate;
  mutable inv : int;  (* invocations begun so far *)
  mutable inv_label : string;  (* label of the pending/current invocation *)
  mutable mid_inv : bool;
  mutable own_steps : int;
  mutable inv_steps : int;
  mutable stamp : int;
      (* Processor statement count at this process's last own statement
         (or invocation start). The process was preempted since its last
         statement iff its processor's count has moved past the stamp,
         which derives the old eager [pending] flag without the per-
         statement broadcast over all cells. *)
  mutable guarantee : int;  (* remaining protected statements (Axiom 2) *)
  mutable grant_ver : int;  (* runnable-set version before this cell's
                               current guarantee was granted *)
  mutable dirty : bool;  (* scratch policy view needs rebuilding *)
}

let run ?(step_limit = 1_000_000) ?cost ?halted ?axiom2_active ?observer ?sink
    ?trace_buf ?(self_check = false) ~(config : Config.t) ~(policy : Policy.t)
    programs =
  let n = Config.n config in
  if Array.length programs <> n then
    invalid_arg "Engine.run: program count <> process count";
  (* Instantiate the policy's per-run decision function exactly once:
     stateful policies (round-robin cursor, seeded RNG, script position)
     get fresh state here, so reusing one [Policy.t] across runs is safe. *)
  let choose = Policy.prepare policy in
  let trace =
    match trace_buf with
    | None -> Trace.create config
    | Some t ->
      if Config.n (Trace.config t) <> n then
        invalid_arg "Engine.run: trace_buf configured for a different process count";
      Trace.reset t;
      t
  in
  (match (observer, sink) with
  | Some _, Some _ -> invalid_arg "Engine.run: ?observer and ?sink are mutually exclusive"
  | Some f, None -> Trace.set_observer trace f
  | None, Some s -> Trace.set_sink trace s
  | None, None -> ());
  let cost_of =
    match cost with
    | None -> fun _view _pid _op -> config.tmin
    | Some f ->
      fun view pid op -> max config.tmin (min config.tmax (f view pid op))
  in
  let cells =
    Array.init n (fun pid ->
        {
          info = config.procs.(pid);
          priority = config.procs.(pid).Proc.priority;
          state = Finished (* replaced below *);
          inv = 0;
          inv_label = "";
          mid_inv = false;
          own_steps = 0;
          inv_steps = 0;
          stamp = 0;
          guarantee = 0;
          grant_ver = 0;
          dirty = true;
        })
  in
  (* Incremental scheduler state (docs/ARCHITECTURE.md): every quantity
     the per-decision loop needs is maintained under the state
     transitions instead of recomputed by scanning all cells per
     candidate.

     - [proc_stmts.(P)]: statements executed on processor P; with each
       cell's [stamp] it derives the preempted-since-last-statement flag.
     - [ready_count.(P).(L)] and the cached [max_ready.(P)]: Ready cells
       per priority level, so Axiom 1 is one comparison per candidate.
     - [guard_count.(P).(L)]: unfinished cells holding an active quantum
       guarantee, so Axiom 2 blocking is one comparison per candidate.
     - the live list ([link_next]/[link_prev]): unfinished cells in
       ascending pid order, so a decision walks O(live) cells.
     - [live_count.(P).(L)] / [max_live.(P)] / [live_on.(P)] /
       [live_total]: unfinished cells per (processor, level), the cached
       per-processor maximum level, per-processor totals and the global
       total. These answer the burst-batching question — "is this
       process's selection forced?" — in O(1) (see the burst loop). *)
  let processors = config.processors in
  let proc_stmts = Array.make processors 0 in
  (* Last executor per processor: the only cell (other than the one
     executing) whose lazily-derived [pending] flag can flip at a
     statement, so the dirty tracking below can be exact without a scan. *)
  let last_exec = Array.make processors (-1) in
  let ready_count = Array.make_matrix processors (config.levels + 1) 0 in
  let max_ready = Array.make processors 0 in
  let guard_count = Array.make_matrix processors (config.levels + 1) 0 in
  let live_count = Array.make_matrix processors (config.levels + 1) 0 in
  let max_live = Array.make processors 0 in
  let live_on = Array.make processors 0 in
  let live_total = ref n in
  (* Membership version of the runnable set: bumped by every event that
     can change WHICH cells pass the runnable test (a [max_ready] move, a
     quantum-guard 0<->+ transition, a priority change, an unlink, an
     Axiom-2 gate flip). While the version is unchanged the decision loop
     reuses the previously built schedulable list instead of rescanning
     the live cells. [rs_built] is the version the cached list was built
     at. *)
  let rs_version = ref 0 in
  let rs_built = ref (-1) in
  Array.iter
    (fun c ->
      let p = c.info.Proc.processor and l = c.priority in
      live_count.(p).(l) <- live_count.(p).(l) + 1;
      if l > max_live.(p) then max_live.(p) <- l;
      live_on.(p) <- live_on.(p) + 1)
    cells;
  let incr_live p l =
    live_count.(p).(l) <- live_count.(p).(l) + 1;
    if l > max_live.(p) then max_live.(p) <- l
  in
  let decr_live p l =
    live_count.(p).(l) <- live_count.(p).(l) - 1;
    if l = max_live.(p) && live_count.(p).(l) = 0 then begin
      let m = ref 0 and l' = ref (l - 1) in
      while !l' >= 1 && !m = 0 do
        if live_count.(p).(!l') > 0 then m := !l';
        decr l'
      done;
      max_live.(p) <- !m
    end
  in
  (* Intrusive doubly-linked list of unfinished cells, ascending pid;
     index [n] is the head sentinel. *)
  let link_next = Array.make (n + 1) (-1) in
  let link_prev = Array.make (n + 1) (-1) in
  for i = 0 to n - 1 do
    link_next.(if i = 0 then n else i - 1) <- i;
    link_prev.(i) <- (if i = 0 then n else i - 1)
  done;
  let linked = Array.make n true in
  let unlink pid =
    if linked.(pid) then begin
      linked.(pid) <- false;
      incr rs_version;
      let c = cells.(pid) in
      live_on.(c.info.processor) <- live_on.(c.info.processor) - 1;
      live_total := !live_total - 1;
      decr_live c.info.processor c.priority;
      let p = link_prev.(pid) and nx = link_next.(pid) in
      link_next.(p) <- nx;
      if nx >= 0 then link_prev.(nx) <- p
    end
  in
  let incr_ready p l =
    ready_count.(p).(l) <- ready_count.(p).(l) + 1;
    if l > max_ready.(p) then begin
      max_ready.(p) <- l;
      incr rs_version
    end
  in
  let decr_ready p l =
    ready_count.(p).(l) <- ready_count.(p).(l) - 1;
    if l = max_ready.(p) && ready_count.(p).(l) = 0 then begin
      (* The top level emptied: rescan downwards. Each rescan step pays
         for an earlier [incr_ready] that raised the maximum. *)
      let m = ref 0 and l' = ref (l - 1) in
      while !l' >= 1 && !m = 0 do
        if ready_count.(p).(!l') > 0 then m := !l';
        decr l'
      done;
      max_ready.(p) <- !m;
      incr rs_version
    end
  in
  (* Dirty queue: every mutation that can stale a cell's policy view
     enqueues the pid, so a decision that reuses the cached runnable set
     refreshes exactly the touched views instead of walking all live
     cells. [queued] dedups; [refresh]/[drain_dirty] below consume. *)
  let queued = Array.make (max n 1) false in
  let dirty_buf = Array.make (max n 1) 0 in
  let dirty_len = ref 0 in
  let mark_dirty c =
    c.dirty <- true;
    let pid = c.info.pid in
    if not queued.(pid) then begin
      queued.(pid) <- true;
      dirty_buf.(!dirty_len) <- pid;
      incr dirty_len
    end
  in
  (* When [c] executes a statement on [proc], the only OTHER cell whose
     [pending] derivation can flip is the previous last executor (its
     stamp stops matching [proc_stmts]); mark it so its view refreshes. *)
  let note_exec c proc =
    let prev = last_exec.(proc) in
    if prev >= 0 && prev <> c.info.pid then mark_dirty cells.(prev);
    last_exec.(proc) <- c.info.pid
  in
  (* [state]/[priority]/[guarantee] are stale while a continuation chain
     runs (they describe the last suspension point); the counters mirror
     the fields, so they are exact whenever the decision loop looks. *)
  let set_state c st =
    (match c.state with
    | Ready _ -> decr_ready c.info.processor c.priority
    | Boundary _ | Finished -> ());
    c.state <- st;
    mark_dirty c;
    match st with
    | Ready _ -> incr_ready c.info.processor c.priority
    | Boundary _ -> ()
    | Finished -> unlink c.info.pid
  in
  let set_guarantee c g =
    if g <> c.guarantee then begin
      let was = c.guarantee > 0 and now = g > 0 in
      c.guarantee <- g;
      mark_dirty c;
      if was <> now then begin
        let gc = guard_count.(c.info.processor) in
        gc.(c.priority) <- (gc.(c.priority) + if now then 1 else -1);
        (* A guarantee's grant and drain are a matched pair: if nothing
           else touched the version while [c] held it, the drain restores
           membership exactly, so restore the version too and let the
           decision loop keep its cached runnable set (the common case —
           grants and drains happen inside the burst the holder is
           running, between two full decisions that both see the
           guarantee-free set). Any intervening bump forces the rescan
           as usual; so does a rebuild DURING the hold ([rs_built] at the
           held version) — restoring then could alias that held-set list
           with a later hold's different membership at the same version
           number. *)
        if now then begin
          c.grant_ver <- !rs_version;
          incr rs_version
        end
        else if !rs_version = c.grant_ver + 1 && !rs_built <> !rs_version then
          rs_version := c.grant_ver
        else incr rs_version
      end
    end
  in
  let is_pending c = c.mid_inv && proc_stmts.(c.info.processor) > c.stamp in
  (* Process-context marking (Runtime): the flag is true exactly while
     body code runs, so Shared can police its harness-only accessors.
     Every resume sets it; every handler entry clears it (handler code —
     including Trace appends and the scheduler loop — is harness
     context). *)
  let resume k v =
    Runtime.enter_process ();
    continue k v
  in
  let decisions = ref 0 in
  (* Statement-free decisions (empty invocations, finishing wakes) are
     invisible to [step_limit]; bound total decisions too so a
     statement-free loop cannot spin the scheduler forever. A legitimate
     run spends at most one decision per statement plus one per empty
     invocation, so 4x the statement budget is generous headroom. The
     two bounds stop with distinct reasons — a [Decision_limit] stop is
     the signature of a statement-free spin. *)
  let decision_limit =
    if step_limit >= max_int / 4 then max_int else 4 * step_limit
  in
  let stop = ref All_finished in
  let check_limits () =
    if Trace.statements trace >= step_limit then begin
      stop := Step_limit;
      raise Exit
    end;
    if !decisions >= decision_limit then begin
      stop := Decision_limit;
      raise Exit
    end
  in
  (* [chain > 0] arms the in-handler burst fast path: the scheduler has
     established that the running cell's decisions are forced, so the
     [Eff.Step] handler may execute statements inline and [continue] the
     body directly instead of unwinding to the decision loop. The value
     bounds the nested-[continue] depth (each inline statement leaves a
     parent-stack frame until the burst unwinds); the scheduler's burst
     loop re-arms it, so the cap only costs one unwind per [chain_max]
     statements. *)
  let chain = ref 0 in
  let chain_max = 512 in
  (* Eager shadow of the lazy pending derivation, maintained under
     [self_check] exactly as the pre-incremental engine maintained its
     per-cell flag. *)
  let eager_pending = Array.make n false in
  let cur = ref cells.(0) in
  (* Record that [c]'s next invocation begins now. *)
  let begin_inv c =
    c.mid_inv <- true;
    c.inv_steps <- 0;
    (* A fresh invocation starts unpreempted. *)
    c.stamp <- proc_stmts.(c.info.processor);
    mark_dirty c;
    Trace.add_inv_begin trace ~pid:c.info.pid ~inv:c.inv ~label:c.inv_label;
    c.inv <- c.inv + 1
  in
  let end_inv c label =
    if not c.mid_inv then begin_inv c (* empty invocation *);
    c.mid_inv <- false;
    set_guarantee c 0;
    c.inv_steps <- 0;
    mark_dirty c;
    if self_check then eager_pending.(c.info.pid) <- false;
    Trace.add_inv_end trace ~pid:c.info.pid ~inv:(c.inv - 1) ~label
  in
  (* The effect-handler functions are allocated once per run and
     re-returned from [effc] through pre-built [Some] cells; the effect's
     payload travels through a stash ref written by [effc] immediately
     before the handler function runs (nothing can intervene: the
     machinery calls it straight away, on this same fiber). This keeps
     the per-statement handler path allocation-free — a fresh closure +
     option per perform is most of what the old path allocated. *)
  let stash_op = ref (Op.local "") in
  let stash_str = ref "" in
  let stash_level = ref 0 in
  let step_fn (k : (unit, unit) continuation) =
    Runtime.exit_process ();
    let op = !stash_op in
    let c = !cur in
    (* Burst fast path: while this cell's next decision is still forced
       — it is the last unfinished process, the sole live process at its
       level with nothing live above it, or its quantum guarantee plus
       Axiom 1 silence every other candidate (see the burst loop's
       soundness argument) — execute the statement here and resume the
       body without unwinding to the scheduler. Every mutation below is
       the decision loop's per-statement path verbatim, so the
       observable run is identical; the handlers that could invalidate
       forcedness (Inv_end clearing the guarantee, Set_priority moving
       levels, a finishing body unlinking) all update the counters this
       test reads before the next statement can reach it. *)
    if
      !chain > 0
      && (!live_total = 1
         ||
         let p = c.info.processor in
         live_on.(p) = !live_total
         && max_live.(p) = c.priority
         && (live_count.(p).(c.priority) = 1
            || (config.axiom2 && c.guarantee > 0)))
    then begin
      decr chain;
      check_limits ();
      incr decisions;
      if not c.mid_inv then begin_inv c;
      if is_pending c then set_guarantee c config.quantum;
      let cost = config.tmin in
      Trace.add_stmt trace ~pid:c.info.pid ~op ~inv:(c.inv - 1) ~cost;
      c.own_steps <- c.own_steps + 1;
      c.inv_steps <- c.inv_steps + 1;
      mark_dirty c;
      set_guarantee c (max 0 (c.guarantee - cost));
      let proc = c.info.processor in
      note_exec c proc;
      proc_stmts.(proc) <- proc_stmts.(proc) + 1;
      c.stamp <- proc_stmts.(proc);
      resume k ()
    end
    else set_state c (Ready (k, op))
  in
  let step_some = Some step_fn in
  let inv_begin_fn (k : (unit, unit) continuation) =
    Runtime.exit_process ();
    let label = !stash_str in
    let c = !cur in
    if c.mid_inv then
      Fmt.invalid_arg "Eff.invocation: nested invocation %S in %s" label
        c.info.name;
    c.inv_label <- label;
    set_state c (Boundary k)
  in
  let inv_begin_some = Some inv_begin_fn in
  let inv_end_fn (k : (unit, unit) continuation) =
    Runtime.exit_process ();
    end_inv !cur !stash_str;
    resume k ()
  in
  let inv_end_some = Some inv_end_fn in
  let note_fn (k : (unit, unit) continuation) =
    Runtime.exit_process ();
    Trace.add trace (Trace.Note { pid = !cur.info.pid; text = !stash_str });
    resume k ()
  in
  let note_some = Some note_fn in
  let now_fn (k : (int, unit) continuation) =
    Runtime.exit_process ();
    Trace.count_now trace;
    resume k (Trace.statements trace)
  in
  let now_some = Some now_fn in
  let stamp_fn (k : (int * int, unit) continuation) =
    Runtime.exit_process ();
    Trace.count_stamp trace;
    let proc = !cur.info.processor in
    resume k (proc, proc_stmts.(proc))
  in
  let stamp_some = Some stamp_fn in
  let set_priority_fn (k : (unit, unit) continuation) =
    Runtime.exit_process ();
    let p = !stash_level in
    let c = !cur in
    if c.mid_inv then
      Fmt.invalid_arg "Eff.set_priority: %s cannot change priority mid-invocation"
        c.info.name;
    if p < 1 || p > config.levels then
      invalid_arg "Eff.set_priority: level out of range";
    if p <> c.priority then begin
      let proc = c.info.processor in
      (match c.state with
      | Ready _ -> decr_ready proc c.priority
      | Boundary _ | Finished -> ());
      if c.guarantee > 0 then begin
        let gc = guard_count.(proc) in
        gc.(c.priority) <- gc.(c.priority) - 1;
        gc.(p) <- gc.(p) + 1
      end;
      decr_live proc c.priority;
      c.priority <- p;
      incr_live proc p;
      mark_dirty c;
      incr rs_version;
      (match c.state with
      | Ready _ -> incr_ready proc p
      | Boundary _ | Finished -> ())
    end;
    Trace.add trace (Trace.Set_priority { pid = c.info.pid; priority = p });
    resume k ()
  in
  let set_priority_some = Some set_priority_fn in
  let handler =
    {
      retc =
        (fun () ->
          Runtime.exit_process ();
          let c = !cur in
          (* A body may return mid-invocation (statements with no closing
             [Inv_end]): its guarantee and preemption bookkeeping die with
             it, or equal-priority peers would stay guarded by a finished
             process forever and the runnable set could empty out. *)
          c.mid_inv <- false;
          set_guarantee c 0;
          if self_check then eager_pending.(c.info.pid) <- false;
          set_state c Finished);
      exnc =
        (fun e ->
          Runtime.exit_process ();
          raise e);
      effc =
        (fun (type a) (e : a Effect.t) : ((a, unit) continuation -> unit) option ->
          match e with
          | Eff.Step op ->
            stash_op := op;
            step_some
          | Eff.Inv_begin label ->
            stash_str := label;
            inv_begin_some
          | Eff.Inv_end label ->
            stash_str := label;
            inv_end_some
          | Eff.Note text ->
            stash_str := text;
            note_some
          | Eff.Now -> now_some
          | Eff.Stamp -> stamp_some
          | Eff.Set_priority p ->
            stash_level := p;
            set_priority_some
          | _ -> None);
    }
  in
  (* From here on the observer can fire (launch already appends events)
     and process bodies can raise: guarantee the observer/sink is
     detached on every exit path — normal return, body exception, policy
     misbehaviour — so a [trace_buf] reused across runs can never leak a
     stale observer into the next run, and a returned [result.trace]
     never escapes with a live hook attached. *)
  Fun.protect ~finally:(fun () -> Trace.clear_observer trace) @@ fun () ->
  (* Launch every process up to its first suspension point. *)
  Array.iteri
    (fun pid body ->
      cur := cells.(pid);
      Runtime.enter_process ();
      match_with body () handler)
    programs;
  (* Axiom 2 enforcement may be gated off by fault injection; gate flips
     are recorded in the trace so the checker stays in sync. *)
  let gate_active = ref true in
  let sync_gate () =
    match axiom2_active with
    | None -> ()
    | Some f ->
      let now = f ~step:(Trace.statements trace) in
      if now <> !gate_active then begin
        gate_active := now;
        incr rs_version;
        (* Guarantees granted while enforcement was off were never
           enforceable; carrying them into the restored regime could
           leave every process guarded by another (no runnable pick).
           Re-enforcement starts fresh: pending flags survive, so a
           preempted process still earns protection at its next resume. *)
        if now then Array.iter (fun c -> set_guarantee c 0) cells;
        Trace.add trace (Trace.Axiom2_gate { at = Trace.statements trace; active = now })
      end
  in
  (* While the gate is on there is at most one guarantee holder per
     (processor, level) — re-enforcement cleared the rest — so [c] is
     guarded iff the level's holder count exceeds [c]'s own holding. *)
  let guarded_by_other c =
    config.axiom2 && !gate_active
    && guard_count.(c.info.processor).(c.priority)
       > (if c.guarantee > 0 then 1 else 0)
  in
  let pview c : Policy.pview =
    {
      pid = c.info.pid;
      processor = c.info.processor;
      priority = c.priority;
      phase =
        (match c.state with
        | Finished -> Policy.Finished
        | Ready _ -> Policy.Ready
        | Boundary _ -> Policy.Thinking);
      next_op = (match c.state with Ready (_, op) -> Some op | _ -> None);
      own_steps = c.own_steps;
      inv_steps = c.inv_steps;
      inv = c.inv;
      guarantee = c.guarantee;
      pending = is_pending c;
    }
  in
  (* Scratch policy views, refreshed in place: only cells that changed
     since the last decision re-allocate a view record. *)
  let views = Array.map pview cells in
  Array.iter (fun c -> c.dirty <- false) cells;
  let refresh pid =
    let c = cells.(pid) in
    if c.dirty || views.(pid).Policy.pending <> is_pending c then begin
      views.(pid) <- pview c;
      c.dirty <- false
    end
  in
  let drain_dirty () =
    for j = 0 to !dirty_len - 1 do
      let pid = dirty_buf.(j) in
      queued.(pid) <- false;
      refresh pid
    done;
    dirty_len := 0
  in
  let is_finished c = match c.state with Finished -> true | Ready _ | Boundary _ -> false in
  (* A halted (fault-injected) process is withheld from the policy's
     choices but still blocks per Axioms 1/2 — a crash is the scheduler
     never allocating it another quantum, not the process vanishing. *)
  let is_halted_view (pv : Policy.pview) =
    match halted with
    | None -> false
    | Some pred -> pv.Policy.phase <> Policy.Finished && pred pv
  in
  (* Naive reference semantics, retained for [self_check]: recompute each
     scheduling quantity by full scan, exactly as the pre-incremental
     engine did, and require agreement. *)
  let naive_max_ready processor =
    Array.fold_left
      (fun acc c ->
        match c.state with
        | Ready _ when c.info.processor = processor -> max acc c.priority
        | Ready _ | Boundary _ | Finished -> acc)
      0 cells
  in
  let naive_guarded c =
    config.axiom2 && !gate_active
    && Array.exists
         (fun q ->
           q != c
           && q.info.processor = c.info.processor
           && q.priority = c.priority
           && q.guarantee > 0
           && not (is_finished q))
         cells
  in
  let naive_runnable c =
    match c.state with
    | Finished -> false
    | Ready _ | Boundary _ ->
      c.priority >= naive_max_ready c.info.processor && not (naive_guarded c)
  in
  let naive_live processor =
    Array.fold_left
      (fun acc c ->
        if (not (is_finished c)) && c.info.processor = processor then acc + 1 else acc)
      0 cells
  in
  let naive_max_live processor =
    Array.fold_left
      (fun acc c ->
        if (not (is_finished c)) && c.info.processor = processor then max acc c.priority
        else acc)
      0 cells
  in
  let check_invariants nr runnable_buf =
    for p = 0 to processors - 1 do
      assert (max_ready.(p) = naive_max_ready p);
      assert (live_on.(p) = naive_live p);
      assert (max_live.(p) = naive_max_live p)
    done;
    assert (!live_total = Array.fold_left (fun a c -> a + if is_finished c then 0 else 1) 0 cells);
    Array.iteri
      (fun i c ->
        assert (views.(i) = pview c);
        assert (eager_pending.(i) = is_pending c);
        if is_finished c then assert (not linked.(i)))
      cells;
    let naive = ref [] in
    Array.iter (fun c -> if naive_runnable c then naive := c.info.pid :: !naive) cells;
    assert (List.rev !naive = List.init nr (fun j -> runnable_buf.(j)))
  in
  let runnable_buf = Array.make (max n 1) 0 in
  let sched_buf = Array.make (max n 1) 0 in
  let sched_mark = Array.make (max n 1) 0 in
  let build_id = ref 0 in
  let cached_sched = ref [] in
  (* Schedulable-list reuse is valid only when membership is judged by
     the incremental counters alone: [halted] re-judges membership with a
     per-decision predicate, and [self_check] must run the naive scan
     every decision (it is also how the dirty tracking above is audited —
     a missed [mark_dirty] fails the views assertion). *)
  let caching = (not self_check) && Option.is_none halted in
  (* Quantum-burst batching (the Axiom-2 fast path). A decision is
     {e forced} when the schedulable set is the singleton [{c}]; under a
     burst-safe policy ({!Policy.t}) consulting it is then observable
     nowhere, so the engine may run such decisions in a tight loop
     without rebuilding views, runnable sets, or calling the policy.
     Forcedness is detected in O(1) from the live counters, in three
     modes (the last two share the [live_on = live_total] premise: any
     OTHER processor with a live process always contributes at least one
     candidate — its top live level has either an unguarded process or
     the guarantee holder itself):

     - {e solo}: [c] is the only unfinished process anywhere. Trivially
       the only candidate, through any number of invocations.
     - {e singleton level}: [c] is Ready and the only live process at
       its level on its processor, with nothing live above
       ([live_count = 1] and [max_live = c.priority]). [c] Ready puts
       [max_ready] at [c]'s level, so Axiom 1 silences everything
       below; nothing shares the level, so no quantum guarantee is
       needed. Holds across invocation boundaries of [c] itself (the
       in-handler fast path), but not through a Boundary wake in the
       burst loop below — while [c] thinks, lower levels are runnable.
     - {e guarantee}: Axiom 2 is enforced and [c] is Ready mid-quantum
       ([guarantee > 0], so every equal-priority process on its
       processor is guarded), with no live process on its processor
       above [c]'s level ([max_live = c.priority]; Axiom 1 silences
       everyone below).

     Nothing else can change engine state while the burst runs — all
     other processes are suspended — so the conditions only need
     re-checking against [c]'s own transitions, once per statement. The
     hooks that could observe or perturb individual decisions disable
     batching wholesale: [self_check] (the eager shadow must track every
     decision), [halted] (consulted per decision), [axiom2_active] (can
     revoke the guarantee mid-burst), [cost] (sees per-decision views),
     and non-burst-safe policies (would miss decisions). Each burst
     iteration replays the per-decision path below exactly — wake, lazy
     [begin_inv], guarantee grant/drain, limits, one [decisions] tick —
     so traces, counters and stop reasons are byte-identical to the
     unbatched engine (the differential suite in test/test_burst.ml
     holds it to that). *)
  let batching =
    (not self_check)
    && Option.is_none halted
    && Option.is_none axiom2_active
    && Option.is_none cost
    && policy.Policy.burst_safe
  in
  let forced c =
    linked.(c.info.pid)
    && (!live_total = 1
       ||
       let p = c.info.processor in
       live_on.(p) = !live_total
       && max_live.(p) = c.priority
       && (match c.state with Ready _ -> true | Boundary _ | Finished -> false)
       && (live_count.(p).(c.priority) = 1
          || (config.axiom2 && c.guarantee > 0)))
  in
  (try
     while link_next.(n) >= 0 do
       check_limits ();
       incr decisions;
       sync_gate ();
       let schedulable =
         if caching && !rs_built = !rs_version then begin
           (* Membership unchanged since the last scan: reuse the built
              list, refreshing only the views the dirty queue names. *)
           drain_dirty ();
           !cached_sched
         end
         else begin
           drain_dirty ();
           incr build_id;
           (* One pass over live cells in ascending pid order: refresh
              the scratch views and collect the runnable/schedulable
              sets. *)
           let nr = ref 0 and ns = ref 0 in
           let i = ref link_next.(n) in
           while !i >= 0 do
             let c = cells.(!i) in
             refresh !i;
             if c.priority >= max_ready.(c.info.processor) && not (guarded_by_other c)
             then begin
               runnable_buf.(!nr) <- !i;
               incr nr;
               if not (is_halted_view views.(!i)) then begin
                 sched_buf.(!ns) <- !i;
                 incr ns;
                 sched_mark.(!i) <- !build_id
               end
             end;
             i := link_next.(!i)
           done;
           if self_check then check_invariants !nr runnable_buf;
           assert (!nr > 0);
           if !ns = 0 then begin
             stop := All_halted;
             raise Exit
           end;
           let rec build j acc =
             if j < 0 then acc else build (j - 1) (sched_buf.(j) :: acc)
           in
           let l = build (!ns - 1) [] in
           cached_sched := l;
           rs_built := !rs_version;
           l
         end
       in
       let view : Policy.view =
         { step = Trace.statements trace; runnable = schedulable; procs = views }
       in
       (match choose view with
       | None ->
         stop := Policy_stopped;
         raise Exit
       | Some pid ->
         if pid < 0 || pid >= n || sched_mark.(pid) <> !build_id then
           Fmt.invalid_arg "Engine.run: policy %s chose non-runnable %a" policy.name
             Proc.pp_pid pid;
         let c = cells.(pid) in
         (* Wake: advance through the invocation boundary if thinking. *)
         (match c.state with
         | Boundary k ->
           cur := c;
           resume k ()
         | Ready _ | Finished -> ());
         (match c.state with
         | Ready (k, op) ->
           if not c.mid_inv then begin_inv c;
           if self_check then assert (eager_pending.(pid) = is_pending c);
           if is_pending c then
             (* Axiom 2: resuming after a preemption grants Q protected
                statements (this one included). *)
             set_guarantee c config.quantum;
           if self_check then eager_pending.(pid) <- false;
           let cost = cost_of view pid op in
           Trace.add_stmt trace ~pid ~op ~inv:(c.inv - 1) ~cost;
           c.own_steps <- c.own_steps + 1;
           c.inv_steps <- c.inv_steps + 1;
           mark_dirty c;
           set_guarantee c (max 0 (c.guarantee - cost));
           (* Everyone else mid-invocation on this processor is now
              preempted-before-its-next-statement: advancing the
              processor counter past their stamps says exactly that. *)
           let proc = c.info.processor in
           note_exec c proc;
           proc_stmts.(proc) <- proc_stmts.(proc) + 1;
           c.stamp <- proc_stmts.(proc);
           if self_check then
             Array.iter
               (fun q ->
                 if q != c && q.info.processor = proc && q.mid_inv then
                   eager_pending.(q.info.pid) <- true)
               cells;
           cur := c;
           if batching then chain := chain_max;
           resume k ();
           chain := 0
         | Boundary _ | Finished ->
           (* The wake consumed an empty invocation, or the body finished
              without executing a statement: the decision was a no-op. *)
           ());
         (* Burst: as long as [c]'s selection stays forced, keep
            executing its decisions without re-entering the machinery
            above. With [batching] true the hooks are all absent, so
            [cost_of] is the constant [tmin] and [sync_gate] is a no-op
            — each iteration below is the per-decision path verbatim. *)
         if batching then begin
           while forced c do
             check_limits ();
             incr decisions;
             (match c.state with
             | Boundary k ->
               cur := c;
               resume k ()
             | Ready _ | Finished -> ());
             match c.state with
             | Ready (k, op) ->
               if not c.mid_inv then begin_inv c;
               if is_pending c then set_guarantee c config.quantum;
               let cost = config.tmin in
               Trace.add_stmt trace ~pid ~op ~inv:(c.inv - 1) ~cost;
               c.own_steps <- c.own_steps + 1;
               c.inv_steps <- c.inv_steps + 1;
               mark_dirty c;
               set_guarantee c (max 0 (c.guarantee - cost));
               let proc = c.info.processor in
               note_exec c proc;
               proc_stmts.(proc) <- proc_stmts.(proc) + 1;
               c.stamp <- proc_stmts.(proc);
               cur := c;
               chain := chain_max;
               resume k ();
               chain := 0
             | Boundary _ | Finished -> ()
           done
         end)
     done
   with Exit -> ());
  {
    trace;
    finished = Array.map is_finished cells;
    own_steps = Array.map (fun c -> c.own_steps) cells;
    halted =
      Array.map
        (fun c ->
          match halted with
          | None -> false
          | Some pred -> (not (is_finished c)) && pred (pview c))
        cells;
    stop = !stop;
  }
