open Effect.Deep

type stop_reason = All_finished | Policy_stopped | Step_limit | All_halted

type result = {
  trace : Trace.t;
  finished : bool array;
  own_steps : int array;
  halted : bool array;
  stop : stop_reason;
}

type pstate =
  | Boundary of (unit, unit) continuation
      (* Thinking, suspended just before the next invocation's body. *)
  | Ready of (unit, unit) continuation * Op.t
      (* Mid-invocation (or about to start one), next statement pending. *)
  | Finished

type cell = {
  info : Proc.t;
  mutable priority : int;  (* current priority; Sec. 5 dynamic priorities *)
  mutable state : pstate;
  mutable inv : int;  (* invocations begun so far *)
  mutable inv_label : string;  (* label of the pending/current invocation *)
  mutable mid_inv : bool;
  mutable own_steps : int;
  mutable inv_steps : int;
  mutable stamp : int;
      (* Processor statement count at this process's last own statement
         (or invocation start). The process was preempted since its last
         statement iff its processor's count has moved past the stamp,
         which derives the old eager [pending] flag without the per-
         statement broadcast over all cells. *)
  mutable guarantee : int;  (* remaining protected statements (Axiom 2) *)
  mutable dirty : bool;  (* scratch policy view needs rebuilding *)
}

let run ?(step_limit = 1_000_000) ?cost ?halted ?axiom2_active ?observer
    ?trace_buf ?(self_check = false) ~(config : Config.t) ~(policy : Policy.t)
    programs =
  let n = Config.n config in
  if Array.length programs <> n then
    invalid_arg "Engine.run: program count <> process count";
  (* Instantiate the policy's per-run decision function exactly once:
     stateful policies (round-robin cursor, seeded RNG, script position)
     get fresh state here, so reusing one [Policy.t] across runs is safe. *)
  let choose = Policy.prepare policy in
  let trace =
    match trace_buf with
    | None -> Trace.create config
    | Some t ->
      if Config.n (Trace.config t) <> n then
        invalid_arg "Engine.run: trace_buf configured for a different process count";
      Trace.reset t;
      t
  in
  (match observer with None -> () | Some f -> Trace.set_observer trace f);
  let cost_of =
    match cost with
    | None -> fun _view _pid _op -> config.tmin
    | Some f ->
      fun view pid op -> max config.tmin (min config.tmax (f view pid op))
  in
  let cells =
    Array.init n (fun pid ->
        {
          info = config.procs.(pid);
          priority = config.procs.(pid).Proc.priority;
          state = Finished (* replaced below *);
          inv = 0;
          inv_label = "";
          mid_inv = false;
          own_steps = 0;
          inv_steps = 0;
          stamp = 0;
          guarantee = 0;
          dirty = true;
        })
  in
  (* Incremental scheduler state (docs/ARCHITECTURE.md): every quantity
     the per-decision loop needs is maintained under the state
     transitions instead of recomputed by scanning all cells per
     candidate.

     - [proc_stmts.(P)]: statements executed on processor P; with each
       cell's [stamp] it derives the preempted-since-last-statement flag.
     - [ready_count.(P).(L)] and the cached [max_ready.(P)]: Ready cells
       per priority level, so Axiom 1 is one comparison per candidate.
     - [guard_count.(P).(L)]: unfinished cells holding an active quantum
       guarantee, so Axiom 2 blocking is one comparison per candidate.
     - the live list ([link_next]/[link_prev]): unfinished cells in
       ascending pid order, so a decision walks O(live) cells. *)
  let processors = config.processors in
  let proc_stmts = Array.make processors 0 in
  let ready_count = Array.make_matrix processors (config.levels + 1) 0 in
  let max_ready = Array.make processors 0 in
  let guard_count = Array.make_matrix processors (config.levels + 1) 0 in
  (* Intrusive doubly-linked list of unfinished cells, ascending pid;
     index [n] is the head sentinel. *)
  let link_next = Array.make (n + 1) (-1) in
  let link_prev = Array.make (n + 1) (-1) in
  for i = 0 to n - 1 do
    link_next.(if i = 0 then n else i - 1) <- i;
    link_prev.(i) <- (if i = 0 then n else i - 1)
  done;
  let linked = Array.make n true in
  let unlink pid =
    if linked.(pid) then begin
      linked.(pid) <- false;
      let p = link_prev.(pid) and nx = link_next.(pid) in
      link_next.(p) <- nx;
      if nx >= 0 then link_prev.(nx) <- p
    end
  in
  let incr_ready p l =
    ready_count.(p).(l) <- ready_count.(p).(l) + 1;
    if l > max_ready.(p) then max_ready.(p) <- l
  in
  let decr_ready p l =
    ready_count.(p).(l) <- ready_count.(p).(l) - 1;
    if l = max_ready.(p) && ready_count.(p).(l) = 0 then begin
      (* The top level emptied: rescan downwards. Each rescan step pays
         for an earlier [incr_ready] that raised the maximum. *)
      let m = ref 0 and l' = ref (l - 1) in
      while !l' >= 1 && !m = 0 do
        if ready_count.(p).(!l') > 0 then m := !l';
        decr l'
      done;
      max_ready.(p) <- !m
    end
  in
  (* [state]/[priority]/[guarantee] are stale while a continuation chain
     runs (they describe the last suspension point); the counters mirror
     the fields, so they are exact whenever the decision loop looks. *)
  let set_state c st =
    (match c.state with
    | Ready _ -> decr_ready c.info.processor c.priority
    | Boundary _ | Finished -> ());
    c.state <- st;
    c.dirty <- true;
    match st with
    | Ready _ -> incr_ready c.info.processor c.priority
    | Boundary _ -> ()
    | Finished -> unlink c.info.pid
  in
  let set_guarantee c g =
    if g <> c.guarantee then begin
      let was = c.guarantee > 0 and now = g > 0 in
      c.guarantee <- g;
      c.dirty <- true;
      if was <> now then begin
        let gc = guard_count.(c.info.processor) in
        gc.(c.priority) <- (gc.(c.priority) + if now then 1 else -1)
      end
    end
  in
  let is_pending c = c.mid_inv && proc_stmts.(c.info.processor) > c.stamp in
  (* Process-context marking (Runtime): the flag is true exactly while
     body code runs, so Shared can police its harness-only accessors.
     Every resume sets it; every handler entry clears it (handler code —
     including Trace appends and the scheduler loop — is harness
     context). *)
  let resume k v =
    Runtime.enter_process ();
    continue k v
  in
  (* Eager shadow of the lazy pending derivation, maintained under
     [self_check] exactly as the pre-incremental engine maintained its
     per-cell flag. *)
  let eager_pending = Array.make n false in
  let cur = ref cells.(0) in
  (* Record that [c]'s next invocation begins now. *)
  let begin_inv c =
    c.mid_inv <- true;
    c.inv_steps <- 0;
    (* A fresh invocation starts unpreempted. *)
    c.stamp <- proc_stmts.(c.info.processor);
    c.dirty <- true;
    Trace.add trace (Trace.Inv_begin { pid = c.info.pid; inv = c.inv; label = c.inv_label });
    c.inv <- c.inv + 1
  in
  let end_inv c label =
    if not c.mid_inv then begin_inv c (* empty invocation *);
    c.mid_inv <- false;
    set_guarantee c 0;
    c.inv_steps <- 0;
    c.dirty <- true;
    if self_check then eager_pending.(c.info.pid) <- false;
    Trace.add trace (Trace.Inv_end { pid = c.info.pid; inv = c.inv - 1; label })
  in
  let handler =
    {
      retc =
        (fun () ->
          Runtime.exit_process ();
          let c = !cur in
          (* A body may return mid-invocation (statements with no closing
             [Inv_end]): its guarantee and preemption bookkeeping die with
             it, or equal-priority peers would stay guarded by a finished
             process forever and the runnable set could empty out. *)
          c.mid_inv <- false;
          set_guarantee c 0;
          if self_check then eager_pending.(c.info.pid) <- false;
          set_state c Finished);
      exnc =
        (fun e ->
          Runtime.exit_process ();
          raise e);
      effc =
        (fun (type a) (e : a Effect.t) ->
          match e with
          | Eff.Step op ->
            Some
              (fun (k : (a, unit) continuation) ->
                Runtime.exit_process ();
                let c = !cur in
                set_state c (Ready (k, op)))
          | Eff.Inv_begin label ->
            Some
              (fun (k : (a, unit) continuation) ->
                Runtime.exit_process ();
                let c = !cur in
                if c.mid_inv then
                  Fmt.invalid_arg "Eff.invocation: nested invocation %S in %s" label
                    c.info.name;
                c.inv_label <- label;
                set_state c (Boundary k))
          | Eff.Inv_end label ->
            Some
              (fun (k : (a, unit) continuation) ->
                Runtime.exit_process ();
                end_inv !cur label;
                resume k ())
          | Eff.Note text ->
            Some
              (fun (k : (a, unit) continuation) ->
                Runtime.exit_process ();
                Trace.add trace (Trace.Note { pid = !cur.info.pid; text });
                resume k ())
          | Eff.Now ->
            Some
              (fun (k : (a, unit) continuation) ->
                Runtime.exit_process ();
                Trace.count_now trace;
                resume k (Trace.statements trace))
          | Eff.Set_priority p ->
            Some
              (fun (k : (a, unit) continuation) ->
                Runtime.exit_process ();
                let c = !cur in
                if c.mid_inv then
                  Fmt.invalid_arg
                    "Eff.set_priority: %s cannot change priority mid-invocation"
                    c.info.name;
                if p < 1 || p > config.levels then
                  invalid_arg "Eff.set_priority: level out of range";
                if p <> c.priority then begin
                  let proc = c.info.processor in
                  (match c.state with
                  | Ready _ -> decr_ready proc c.priority
                  | Boundary _ | Finished -> ());
                  if c.guarantee > 0 then begin
                    let gc = guard_count.(proc) in
                    gc.(c.priority) <- gc.(c.priority) - 1;
                    gc.(p) <- gc.(p) + 1
                  end;
                  c.priority <- p;
                  c.dirty <- true;
                  match c.state with
                  | Ready _ -> incr_ready proc p
                  | Boundary _ | Finished -> ()
                end;
                Trace.add trace (Trace.Set_priority { pid = c.info.pid; priority = p });
                resume k ())
          | _ -> None);
    }
  in
  (* Launch every process up to its first suspension point. *)
  Array.iteri
    (fun pid body ->
      cur := cells.(pid);
      Runtime.enter_process ();
      match_with body () handler)
    programs;
  (* Axiom 2 enforcement may be gated off by fault injection; gate flips
     are recorded in the trace so the checker stays in sync. *)
  let gate_active = ref true in
  let sync_gate () =
    match axiom2_active with
    | None -> ()
    | Some f ->
      let now = f ~step:(Trace.statements trace) in
      if now <> !gate_active then begin
        gate_active := now;
        (* Guarantees granted while enforcement was off were never
           enforceable; carrying them into the restored regime could
           leave every process guarded by another (no runnable pick).
           Re-enforcement starts fresh: pending flags survive, so a
           preempted process still earns protection at its next resume. *)
        if now then Array.iter (fun c -> set_guarantee c 0) cells;
        Trace.add trace (Trace.Axiom2_gate { at = Trace.statements trace; active = now })
      end
  in
  (* While the gate is on there is at most one guarantee holder per
     (processor, level) — re-enforcement cleared the rest — so [c] is
     guarded iff the level's holder count exceeds [c]'s own holding. *)
  let guarded_by_other c =
    config.axiom2 && !gate_active
    && guard_count.(c.info.processor).(c.priority)
       > (if c.guarantee > 0 then 1 else 0)
  in
  let pview c : Policy.pview =
    {
      pid = c.info.pid;
      processor = c.info.processor;
      priority = c.priority;
      phase =
        (match c.state with
        | Finished -> Policy.Finished
        | Ready _ -> Policy.Ready
        | Boundary _ -> Policy.Thinking);
      next_op = (match c.state with Ready (_, op) -> Some op | _ -> None);
      own_steps = c.own_steps;
      inv_steps = c.inv_steps;
      inv = c.inv;
      guarantee = c.guarantee;
      pending = is_pending c;
    }
  in
  (* Scratch policy views, refreshed in place: only cells that changed
     since the last decision re-allocate a view record. *)
  let views = Array.map pview cells in
  Array.iter (fun c -> c.dirty <- false) cells;
  let refresh pid =
    let c = cells.(pid) in
    if c.dirty || views.(pid).Policy.pending <> is_pending c then begin
      views.(pid) <- pview c;
      c.dirty <- false
    end
  in
  let is_finished c = match c.state with Finished -> true | Ready _ | Boundary _ -> false in
  (* A halted (fault-injected) process is withheld from the policy's
     choices but still blocks per Axioms 1/2 — a crash is the scheduler
     never allocating it another quantum, not the process vanishing. *)
  let is_halted_view (pv : Policy.pview) =
    match halted with
    | None -> false
    | Some pred -> pv.Policy.phase <> Policy.Finished && pred pv
  in
  (* Naive reference semantics, retained for [self_check]: recompute each
     scheduling quantity by full scan, exactly as the pre-incremental
     engine did, and require agreement. *)
  let naive_max_ready processor =
    Array.fold_left
      (fun acc c ->
        match c.state with
        | Ready _ when c.info.processor = processor -> max acc c.priority
        | Ready _ | Boundary _ | Finished -> acc)
      0 cells
  in
  let naive_guarded c =
    config.axiom2 && !gate_active
    && Array.exists
         (fun q ->
           q != c
           && q.info.processor = c.info.processor
           && q.priority = c.priority
           && q.guarantee > 0
           && not (is_finished q))
         cells
  in
  let naive_runnable c =
    match c.state with
    | Finished -> false
    | Ready _ | Boundary _ ->
      c.priority >= naive_max_ready c.info.processor && not (naive_guarded c)
  in
  let check_invariants nr runnable_buf =
    for p = 0 to processors - 1 do
      assert (max_ready.(p) = naive_max_ready p)
    done;
    Array.iteri
      (fun i c ->
        assert (views.(i) = pview c);
        assert (eager_pending.(i) = is_pending c);
        if is_finished c then assert (not linked.(i)))
      cells;
    let naive = ref [] in
    Array.iter (fun c -> if naive_runnable c then naive := c.info.pid :: !naive) cells;
    assert (List.rev !naive = List.init nr (fun j -> runnable_buf.(j)))
  in
  let runnable_buf = Array.make (max n 1) 0 in
  let sched_buf = Array.make (max n 1) 0 in
  let sched_stamp = Array.make (max n 1) 0 in
  let decisions = ref 0 in
  (* Statement-free decisions (empty invocations, finishing wakes) are
     invisible to [step_limit]; bound total decisions too so a
     statement-free loop cannot spin the scheduler forever. A legitimate
     run spends at most one decision per statement plus one per empty
     invocation, so 4x the statement budget is generous headroom. *)
  let decision_limit =
    if step_limit >= max_int / 4 then max_int else 4 * step_limit
  in
  let stop = ref All_finished in
  (try
     while link_next.(n) >= 0 do
       if Trace.statements trace >= step_limit || !decisions >= decision_limit
       then begin
         stop := Step_limit;
         raise Exit
       end;
       incr decisions;
       sync_gate ();
       (* One pass over live cells in ascending pid order: refresh the
          scratch views and collect the runnable/schedulable sets. *)
       let nr = ref 0 and ns = ref 0 in
       let i = ref link_next.(n) in
       while !i >= 0 do
         let c = cells.(!i) in
         refresh !i;
         if c.priority >= max_ready.(c.info.processor) && not (guarded_by_other c)
         then begin
           runnable_buf.(!nr) <- !i;
           incr nr;
           if not (is_halted_view views.(!i)) then begin
             sched_buf.(!ns) <- !i;
             incr ns;
             sched_stamp.(!i) <- !decisions
           end
         end;
         i := link_next.(!i)
       done;
       if self_check then check_invariants !nr runnable_buf;
       assert (!nr > 0);
       if !ns = 0 then begin
         stop := All_halted;
         raise Exit
       end;
       let schedulable =
         let rec build j acc =
           if j < 0 then acc else build (j - 1) (sched_buf.(j) :: acc)
         in
         build (!ns - 1) []
       in
       let view : Policy.view =
         { step = Trace.statements trace; runnable = schedulable; procs = views }
       in
       (match choose view with
       | None ->
         stop := Policy_stopped;
         raise Exit
       | Some pid ->
         if pid < 0 || pid >= n || sched_stamp.(pid) <> !decisions then
           Fmt.invalid_arg "Engine.run: policy %s chose non-runnable %a" policy.name
             Proc.pp_pid pid;
         let c = cells.(pid) in
         (* Wake: advance through the invocation boundary if thinking. *)
         (match c.state with
         | Boundary k ->
           cur := c;
           resume k ()
         | Ready _ | Finished -> ());
         (match c.state with
         | Ready (k, op) ->
           if not c.mid_inv then begin_inv c;
           if self_check then assert (eager_pending.(pid) = is_pending c);
           if is_pending c then
             (* Axiom 2: resuming after a preemption grants Q protected
                statements (this one included). *)
             set_guarantee c config.quantum;
           if self_check then eager_pending.(pid) <- false;
           let cost = cost_of view pid op in
           Trace.add trace
             (Trace.Stmt { idx = Trace.statements trace; pid; op; inv = c.inv - 1; cost });
           c.own_steps <- c.own_steps + 1;
           c.inv_steps <- c.inv_steps + 1;
           c.dirty <- true;
           set_guarantee c (max 0 (c.guarantee - cost));
           (* Everyone else mid-invocation on this processor is now
              preempted-before-its-next-statement: advancing the
              processor counter past their stamps says exactly that. *)
           let proc = c.info.processor in
           proc_stmts.(proc) <- proc_stmts.(proc) + 1;
           c.stamp <- proc_stmts.(proc);
           if self_check then
             Array.iter
               (fun q ->
                 if q != c && q.info.processor = proc && q.mid_inv then
                   eager_pending.(q.info.pid) <- true)
               cells;
           cur := c;
           resume k ()
         | Boundary _ | Finished ->
           (* The wake consumed an empty invocation, or the body finished
              without executing a statement: the decision was a no-op. *)
           ());
         refresh pid)
     done
   with Exit -> ());
  {
    trace;
    finished = Array.map is_finished cells;
    own_steps = Array.map (fun c -> c.own_steps) cells;
    halted =
      Array.map
        (fun c ->
          match halted with
          | None -> false
          | Some pred -> (not (is_finished c)) && pred (pview c))
        cells;
    stop = !stop;
  }
