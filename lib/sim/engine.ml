open Effect.Deep

type stop_reason = All_finished | Policy_stopped | Step_limit | All_halted

type result = {
  trace : Trace.t;
  finished : bool array;
  own_steps : int array;
  halted : bool array;
  stop : stop_reason;
}

type pstate =
  | Boundary of (unit, unit) continuation
      (* Thinking, suspended just before the next invocation's body. *)
  | Ready of (unit, unit) continuation * Op.t
      (* Mid-invocation (or about to start one), next statement pending. *)
  | Finished

type cell = {
  info : Proc.t;
  mutable priority : int;  (* current priority; Sec. 5 dynamic priorities *)
  mutable state : pstate;
  mutable inv : int;  (* invocations begun so far *)
  mutable inv_label : string;  (* label of the pending/current invocation *)
  mutable mid_inv : bool;
  mutable own_steps : int;
  mutable inv_steps : int;
  mutable pending : bool;  (* preempted since its last statement *)
  mutable guarantee : int;  (* remaining protected statements (Axiom 2) *)
}

let run ?(step_limit = 1_000_000) ?cost ?halted ?axiom2_active ?observer
    ~(config : Config.t) ~(policy : Policy.t) programs =
  let n = Config.n config in
  if Array.length programs <> n then
    invalid_arg "Engine.run: program count <> process count";
  let trace = Trace.create config in
  (match observer with None -> () | Some f -> Trace.set_observer trace f);
  let cost_of =
    match cost with
    | None -> fun _view _pid _op -> config.tmin
    | Some f ->
      fun view pid op -> max config.tmin (min config.tmax (f view pid op))
  in
  let cells =
    Array.init n (fun pid ->
        {
          info = config.procs.(pid);
          priority = config.procs.(pid).Proc.priority;
          state = Finished (* replaced below *);
          inv = 0;
          inv_label = "";
          mid_inv = false;
          own_steps = 0;
          inv_steps = 0;
          pending = false;
          guarantee = 0;
        })
  in
  let cur = ref cells.(0) in
  (* Record that [c]'s next invocation begins now. *)
  let begin_inv c =
    c.mid_inv <- true;
    c.inv_steps <- 0;
    Trace.add trace (Trace.Inv_begin { pid = c.info.pid; inv = c.inv; label = c.inv_label });
    c.inv <- c.inv + 1
  in
  let end_inv c label =
    if not c.mid_inv then begin_inv c (* empty invocation *);
    c.mid_inv <- false;
    c.pending <- false;
    c.guarantee <- 0;
    c.inv_steps <- 0;
    Trace.add trace (Trace.Inv_end { pid = c.info.pid; inv = c.inv - 1; label })
  in
  let handler =
    {
      retc = (fun () -> !cur.state <- Finished);
      exnc = (fun e -> raise e);
      effc =
        (fun (type a) (e : a Effect.t) ->
          match e with
          | Eff.Step op ->
            Some
              (fun (k : (a, unit) continuation) ->
                let c = !cur in
                c.state <- Ready (k, op))
          | Eff.Inv_begin label ->
            Some
              (fun (k : (a, unit) continuation) ->
                let c = !cur in
                if c.mid_inv then
                  Fmt.invalid_arg "Eff.invocation: nested invocation %S in %s" label
                    c.info.name;
                c.inv_label <- label;
                c.state <- Boundary k)
          | Eff.Inv_end label ->
            Some
              (fun (k : (a, unit) continuation) ->
                end_inv !cur label;
                continue k ())
          | Eff.Note text ->
            Some
              (fun (k : (a, unit) continuation) ->
                Trace.add trace (Trace.Note { pid = !cur.info.pid; text });
                continue k ())
          | Eff.Now ->
            Some
              (fun (k : (a, unit) continuation) -> continue k (Trace.statements trace))
          | Eff.Set_priority p ->
            Some
              (fun (k : (a, unit) continuation) ->
                let c = !cur in
                if c.mid_inv then
                  invalid_arg "Eff.set_priority: cannot change priority mid-invocation";
                if p < 1 || p > config.levels then
                  invalid_arg "Eff.set_priority: level out of range";
                c.priority <- p;
                Trace.add trace (Trace.Set_priority { pid = c.info.pid; priority = p });
                continue k ())
          | _ -> None);
    }
  in
  (* Launch every process up to its first suspension point. *)
  Array.iteri
    (fun pid body ->
      cur := cells.(pid);
      match_with body () handler)
    programs;
  (* True while [c] may legally execute its next statement (wake fused in). *)
  let max_ready_level processor =
    Array.fold_left
      (fun acc c ->
        match c.state with
        | Ready _ when c.info.processor = processor -> max acc c.priority
        | Ready _ | Boundary _ | Finished -> acc)
      0 cells
  in
  (* Axiom 2 enforcement may be gated off by fault injection; gate flips
     are recorded in the trace so the checker stays in sync. *)
  let gate_active = ref true in
  let sync_gate () =
    match axiom2_active with
    | None -> ()
    | Some f ->
      let now = f ~step:(Trace.statements trace) in
      if now <> !gate_active then begin
        gate_active := now;
        (* Guarantees granted while enforcement was off were never
           enforceable; carrying them into the restored regime could
           leave every process guarded by another (no runnable pick).
           Re-enforcement starts fresh: pending flags survive, so a
           preempted process still earns protection at its next resume. *)
        if now then Array.iter (fun c -> c.guarantee <- 0) cells;
        Trace.add trace (Trace.Axiom2_gate { at = Trace.statements trace; active = now })
      end
  in
  let guarded_by_other c =
    config.axiom2 && !gate_active
    && Array.exists
         (fun q ->
           q != c
           && q.info.processor = c.info.processor
           && q.priority = c.priority
           && q.guarantee > 0)
         cells
  in
  let runnable c =
    match c.state with
    | Finished -> false
    | Ready _ | Boundary _ ->
      c.priority >= max_ready_level c.info.processor && not (guarded_by_other c)
  in
  let pview c : Policy.pview =
    {
      pid = c.info.pid;
      processor = c.info.processor;
      priority = c.priority;
      phase =
        (match c.state with
        | Finished -> Policy.Finished
        | Ready _ -> Policy.Ready
        | Boundary _ -> Policy.Thinking);
      next_op = (match c.state with Ready (_, op) -> Some op | _ -> None);
      own_steps = c.own_steps;
      inv_steps = c.inv_steps;
      inv = c.inv;
      guarantee = c.guarantee;
      pending = c.pending;
    }
  in
  let is_finished c = match c.state with Finished -> true | Ready _ | Boundary _ -> false in
  let all_finished () = Array.for_all is_finished cells in
  (* A halted (fault-injected) process is withheld from the policy's
     choices but still blocks per Axioms 1/2 — a crash is the scheduler
     never allocating it another quantum, not the process vanishing. *)
  let is_halted c =
    match halted with
    | None -> false
    | Some pred -> (not (is_finished c)) && pred (pview c)
  in
  let stop = ref All_finished in
  (try
     while not (all_finished ()) do
       if Trace.statements trace >= step_limit then begin
         stop := Step_limit;
         raise Exit
       end;
       sync_gate ();
       let runnable_pids =
         Array.to_list cells
         |> List.filter runnable
         |> List.map (fun c -> c.info.pid)
       in
       assert (runnable_pids <> []);
       let schedulable =
         List.filter (fun pid -> not (is_halted cells.(pid))) runnable_pids
       in
       if schedulable = [] then begin
         stop := All_halted;
         raise Exit
       end;
       let view : Policy.view =
         {
           step = Trace.statements trace;
           runnable = schedulable;
           procs = Array.map pview cells;
         }
       in
       match policy.choose view with
       | None ->
         stop := Policy_stopped;
         raise Exit
       | Some pid ->
         if not (List.mem pid schedulable) then
           Fmt.invalid_arg "Engine.run: policy %s chose non-runnable %a" policy.name
             Proc.pp_pid pid;
         let c = cells.(pid) in
         (* Wake: advance through the invocation boundary if thinking. *)
         (match c.state with
         | Boundary k ->
           cur := c;
           continue k ()
         | Ready _ | Finished -> ());
         (match c.state with
         | Ready (k, op) ->
           if not c.mid_inv then begin_inv c;
           if c.pending then begin
             (* Axiom 2: resuming after a preemption grants Q protected
                statements (this one included). *)
             c.pending <- false;
             c.guarantee <- config.quantum
           end;
           let cost = cost_of view pid op in
           Trace.add trace
             (Trace.Stmt { idx = Trace.statements trace; pid; op; inv = c.inv - 1; cost });
           c.own_steps <- c.own_steps + 1;
           c.inv_steps <- c.inv_steps + 1;
           c.guarantee <- max 0 (c.guarantee - cost);
           (* Everyone else mid-invocation on this processor is now
              preempted-before-its-next-statement. *)
           Array.iter
             (fun q ->
               if q != c && q.info.processor = c.info.processor && q.mid_inv then
                 q.pending <- true)
             cells;
           cur := c;
           continue k ()
         | Boundary _ | Finished ->
           (* The wake consumed an empty invocation, or the body finished
              without executing a statement: the decision was a no-op. *)
           ())
     done
   with Exit -> ());
  {
    trace;
    finished = Array.map is_finished cells;
    own_steps = Array.map (fun c -> c.own_steps) cells;
    halted = Array.map is_halted cells;
    stop = !stop;
  }
