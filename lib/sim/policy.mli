(** Scheduling policies.

    All nondeterminism in a run flows through one policy: at each step the
    engine computes the set of processes that may legally execute the next
    atomic statement (per Axiom 1, Axiom 2 and the thinking/ready rules)
    and the policy picks one, or stops the run.

    Waking a thinking process is fused with running its first statement:
    a ready-but-never-scheduled process is observationally equivalent to
    one that is still thinking, except that a ready higher-priority
    process blocks lower ones — which is exactly the behaviour obtained
    by waking it at the moment it first runs. This keeps the decision
    space one-dimensional, which the model checker exploits.

    The scheduler may legally starve any process ("a scheduler on some
    processor may choose to never allocate a quantum to some ready
    process" — Sec. 2); a policy models this simply by never picking it. *)

type phase = Thinking | Ready | Finished

type pview = {
  pid : Proc.pid;
  processor : int;
  priority : int;
  phase : phase;
  next_op : Op.t option;  (** The statement that would execute next, when ready. *)
  own_steps : int;  (** Statements executed so far. *)
  inv_steps : int;  (** Statements executed in the current invocation. *)
  inv : int;  (** Invocations begun so far. *)
  guarantee : int;  (** Remaining statements of quantum protection. *)
  pending : bool;  (** Was preempted since its last statement. *)
}

type view = {
  step : int;  (** Global statement count so far. *)
  runnable : Proc.pid list;  (** Legal choices, ascending pid order. *)
  procs : pview array;
      (** Indexed by pid. The engine reuses this array as a scratch
          buffer across decisions: read it freely during [choose], but
          do not retain the array itself. The [pview] records are
          immutable and safe to keep. *)
}

type t = { name : string; burst_safe : bool; make : unit -> view -> Proc.pid option }
(** A policy is a {e factory}: [make ()] instantiates the per-run
    decision function, with any policy state ([round_robin]'s cursor,
    [random]'s RNG, [scripted]'s remaining script) created fresh inside
    that call. {!Engine.run} calls [make] exactly once per run, so one
    [t] value may be reused across any number of runs — each run sees
    virgin state and identical seeds replay identical schedules.

    [burst_safe] declares the {e forced-choice contract}: whenever the
    runnable set is a singleton [[p]], the decision function returns
    [Some p] {e and} the call has no observable effect — no cursor
    advance, no RNG draw, no script consumption, no recording. The
    engine's quantum-burst batching ({!Engine.run}) relies on this to
    skip policy consultation entirely on forced decisions; a policy that
    misdeclares it will see a different decision stream under batching.
    [false] is always sound (it only disables the optimization), and is
    the default for {!of_fun}/{!of_factory}. *)

val of_fun : ?burst_safe:bool -> string -> (view -> Proc.pid option) -> t
(** Wrap a {e stateless} decision function: every run shares [choose].
    If the closure carries mutable state, use {!of_factory} instead —
    [of_fun] would leak that state across runs. [burst_safe] (default
    [false]) asserts the forced-choice contract documented on {!t}. *)

val of_factory : ?burst_safe:bool -> string -> (unit -> view -> Proc.pid option) -> t
(** Wrap a per-run decision-function factory. [make] is invoked once at
    the start of each {!Engine.run}; allocate all mutable policy state
    inside it. [burst_safe] (default [false]) asserts the forced-choice
    contract documented on {!t}. *)

val prepare : t -> view -> Proc.pid option
(** [prepare t] instantiates one run's decision function ([t.make ()]).
    Harness code that drives a policy outside {!Engine.run} (recorders,
    wrappers) should call this once per run and reuse the result, never
    per decision. *)

val round_robin : unit -> t
(** Cycles fairly through runnable processes in pid order; wakes thinking
    processes eagerly. Every process makes progress — a "fair" scheduler
    in the Sec. 5 sense. The cursor is per-run state: reusing the value
    across runs is safe. Burst-safe: a forced (singleton) choice does
    not advance the cursor. *)

val random : seed:int -> t
(** Picks uniformly among runnable processes. Deterministic per seed,
    with a fresh RNG per run: the same value replays the same schedule
    on every run. Burst-safe: a forced (singleton) choice draws nothing
    from the RNG — only genuine decisions consume the stream. *)

val scripted : ?fallback:t -> Proc.pid list -> t
(** Follows the given pid sequence, skipping entries that are not
    currently runnable only if a [fallback] is given (otherwise such an
    entry stops the run). When the script is exhausted, defers to
    [fallback], or stops. The adversarial constructions of Sec. 4.1 are
    expressed as scripts. The script position is per-run state. *)

val first : t
(** Always the lowest-pid runnable process. Deterministic baseline. *)

val highest_pid : t
(** Always the highest-pid runnable process — handy for "let the writer
    finish first" test setups. *)

val by_priority : t
(** Runs the runnable process with the highest current priority (ties by
    lowest pid), waking thinking processes eagerly — the shape of a real
    RTOS dispatcher. *)

val prefer : Proc.pid list -> fallback:t -> t
(** Picks the first process of [pids] (in order) that is runnable;
    otherwise defers to [fallback]. The building block for targeted
    starvation and ordering scenarios. *)

(** {2 Data footprints}

    What a candidate's next statement would touch, as visible through
    the policy view. Two candidates are {e independent} when executing
    them in either order yields the same engine state: they must be on
    different processors (same-processor order feeds the Axiom 1/2
    scheduler state) and their next statements must not conflict on a
    shared variable. Anything not fully visible — a thinking process,
    an unknown next op — is conservatively dependent. Used by the
    sleep-set pruning in [Hwf_adversary.Explore] and the partial-order
    sampling strategy in [Hwf_adversary.Randsched]. *)

type footprint = {
  fpid : Proc.pid;
  fproc : int;  (** Processor. *)
  fvar : string option;  (** Shared variable touched next, if any. *)
  fwrite : bool;
  fknown : bool;  (** Footprint known? unknown => conservatively dependent. *)
  fop : Op.t option;  (** The next statement itself, when known — richer
      relations (commuting RMWs) need the operation, not just the
      variable/write summary. *)
}

val footprint : view -> Proc.pid -> footprint
(** Footprint of one candidate at the current decision point. *)

type relation = footprint -> footprint -> bool
(** An independence judgement: [r a b = true] claims executing [a] and
    [b] in either order yields the same engine state {e and} the same
    downstream behaviour. Must be symmetric and [false] whenever in
    doubt. {!independent} is the baseline; [Hwf_lint.Indep] derives
    stronger (still sound) relations from static analysis. *)

val independent : footprint -> footprint -> bool
(** Sound baseline independence judgement over two footprints ([false]
    when in doubt): different processors and no same-variable conflict
    (same shared variable with at least one write). *)
