(** Scheduling policies.

    All nondeterminism in a run flows through one policy: at each step the
    engine computes the set of processes that may legally execute the next
    atomic statement (per Axiom 1, Axiom 2 and the thinking/ready rules)
    and the policy picks one, or stops the run.

    Waking a thinking process is fused with running its first statement:
    a ready-but-never-scheduled process is observationally equivalent to
    one that is still thinking, except that a ready higher-priority
    process blocks lower ones — which is exactly the behaviour obtained
    by waking it at the moment it first runs. This keeps the decision
    space one-dimensional, which the model checker exploits.

    The scheduler may legally starve any process ("a scheduler on some
    processor may choose to never allocate a quantum to some ready
    process" — Sec. 2); a policy models this simply by never picking it. *)

type phase = Thinking | Ready | Finished

type pview = {
  pid : Proc.pid;
  processor : int;
  priority : int;
  phase : phase;
  next_op : Op.t option;  (** The statement that would execute next, when ready. *)
  own_steps : int;  (** Statements executed so far. *)
  inv_steps : int;  (** Statements executed in the current invocation. *)
  inv : int;  (** Invocations begun so far. *)
  guarantee : int;  (** Remaining statements of quantum protection. *)
  pending : bool;  (** Was preempted since its last statement. *)
}

type view = {
  step : int;  (** Global statement count so far. *)
  runnable : Proc.pid list;  (** Legal choices, ascending pid order. *)
  procs : pview array;
      (** Indexed by pid. The engine reuses this array as a scratch
          buffer across decisions: read it freely during [choose], but
          do not retain the array itself. The [pview] records are
          immutable and safe to keep. *)
}

type t = { name : string; choose : view -> Proc.pid option }

val of_fun : string -> (view -> Proc.pid option) -> t

val round_robin : unit -> t
(** Cycles fairly through runnable processes in pid order; wakes thinking
    processes eagerly. Every process makes progress — a "fair" scheduler
    in the Sec. 5 sense. Stateful: create a fresh one per run. *)

val random : seed:int -> t
(** Picks uniformly among runnable processes. Deterministic per seed. *)

val scripted : ?fallback:t -> Proc.pid list -> t
(** Follows the given pid sequence, skipping entries that are not
    currently runnable only if a [fallback] is given (otherwise such an
    entry stops the run). When the script is exhausted, defers to
    [fallback], or stops. The adversarial constructions of Sec. 4.1 are
    expressed as scripts. *)

val first : t
(** Always the lowest-pid runnable process. Deterministic baseline. *)

val highest_pid : t
(** Always the highest-pid runnable process — handy for "let the writer
    finish first" test setups. *)

val by_priority : t
(** Runs the runnable process with the highest current priority (ties by
    lowest pid), waking thinking processes eagerly — the shape of a real
    RTOS dispatcher. *)

val prefer : Proc.pid list -> fallback:t -> t
(** Picks the first process of [pids] (in order) that is runnable;
    otherwise defers to [fallback]. The building block for targeted
    starvation and ordering scenarios. *)
