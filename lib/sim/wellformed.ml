type violation = {
  at : int;
  pid : Proc.pid;
  axiom : [ `Priority | `Quantum ];
  blame : Proc.pid;
}

let pp_violation ppf v =
  Fmt.pf ppf "@[stmt %d: %a violated %s of %a@]" v.at Proc.pp_pid v.pid
    (match v.axiom with `Priority -> "Axiom 1 (priority)" | `Quantum -> "Axiom 2 (quantum)")
    Proc.pp_pid v.blame

type pst = {
  mutable mid_inv : bool;
  mutable pending : bool;
  mutable guarantee : int;
}

let check trace =
  let config = Trace.config trace in
  let n = Config.n config in
  let st = Array.init n (fun _ -> { mid_inv = false; pending = false; guarantee = 0 }) in
  let violations = ref [] in
  let emit v = violations := v :: !violations in
  let proc pid = config.procs.(pid) in
  (* Current priorities; updated by Set_priority events (Sec. 5). *)
  let priority = Array.map (fun (p : Proc.t) -> p.priority) config.procs in
  (* Axiom 2 enforcement gate; toggled by fault-injected Axiom2_gate
     events. While off, quantum violations are the injected fault, not an
     engine bug. Guarantees granted inside an off-window are void at
     re-enable (mirroring the engine); pending flags survive, so a
     preempted process earns fresh protection at its next resume. *)
  let gate = ref true in
  Trace.iter
    (fun ev ->
      match ev with
      | Trace.Inv_begin { pid; _ } ->
        let s = st.(pid) in
        s.mid_inv <- true;
        s.pending <- false;
        s.guarantee <- 0
      | Trace.Inv_end { pid; _ } ->
        let s = st.(pid) in
        s.mid_inv <- false;
        s.pending <- false;
        s.guarantee <- 0
      | Trace.Note _ -> ()
      | Trace.Axiom2_gate { active; _ } ->
        gate := active;
        if active then Array.iter (fun s -> s.guarantee <- 0) st
      | Trace.Set_priority { pid; priority = p } -> priority.(pid) <- p
      | Trace.Stmt { idx; pid; cost; _ } ->
        let p = proc pid in
        let s = st.(pid) in
        (* Axiom 1: no ready (mid-invocation) higher-priority process on
           the same processor. *)
        for q = 0 to n - 1 do
          let pq = proc q in
          if
            q <> pid && pq.processor = p.processor
            && priority.(q) > priority.(pid)
            && st.(q).mid_inv
          then emit { at = idx; pid; axiom = `Priority; blame = q }
        done;
        (* Axiom 2: no equal-priority process under an active quantum
           guarantee on the same processor. *)
        if config.axiom2 && !gate then
          for q = 0 to n - 1 do
            let pq = proc q in
            if
              q <> pid && pq.processor = p.processor
              && priority.(q) = priority.(pid)
              && st.(q).guarantee > 0
            then emit { at = idx; pid; axiom = `Quantum; blame = q }
          done;
        if s.pending then begin
          s.pending <- false;
          s.guarantee <- config.quantum
        end;
        s.guarantee <- max 0 (s.guarantee - cost);
        for q = 0 to n - 1 do
          if q <> pid && (proc q).processor = p.processor && st.(q).mid_inv then
            st.(q).pending <- true
        done)
    trace;
  List.rev !violations

let is_well_formed trace = check trace = []
