type violation = {
  at : int;
  pid : Proc.pid;
  axiom : [ `Priority | `Quantum | `Burst ];
  blame : Proc.pid;
}

let pp_violation ppf v =
  Fmt.pf ppf "@[stmt %d: %a violated %s of %a@]" v.at Proc.pp_pid v.pid
    (match v.axiom with
    | `Priority -> "Axiom 1 (priority)"
    | `Quantum -> "Axiom 2 (quantum)"
    | `Burst -> "Axiom 2 (burst)")
    Proc.pp_pid v.blame

type pst = {
  mutable mid_inv : bool;
  mutable pending : bool;
  mutable guarantee : int;
}

let check trace =
  let config = Trace.config trace in
  let n = Config.n config in
  let st = Array.init n (fun _ -> { mid_inv = false; pending = false; guarantee = 0 }) in
  let violations = ref [] in
  let emit v = violations := v :: !violations in
  let proc pid = config.procs.(pid) in
  (* Current priorities; updated by Set_priority events (Sec. 5). *)
  let priority = Array.map (fun (p : Proc.t) -> p.priority) config.procs in
  (* Axiom 2 enforcement gate; toggled by fault-injected Axiom2_gate
     events. While off, quantum violations are the injected fault, not an
     engine bug. Guarantees granted inside an off-window are void at
     re-enable (mirroring the engine); pending flags survive, so a
     preempted process earns fresh protection at its next resume. *)
  let gate = ref true in
  Trace.iter
    (fun ev ->
      match ev with
      | Trace.Inv_begin { pid; _ } ->
        let s = st.(pid) in
        s.mid_inv <- true;
        s.pending <- false;
        s.guarantee <- 0
      | Trace.Inv_end { pid; _ } ->
        let s = st.(pid) in
        s.mid_inv <- false;
        s.pending <- false;
        s.guarantee <- 0
      | Trace.Note _ -> ()
      | Trace.Axiom2_gate { active; _ } ->
        gate := active;
        if active then Array.iter (fun s -> s.guarantee <- 0) st
      | Trace.Set_priority { pid; priority = p } -> priority.(pid) <- p
      | Trace.Stmt { idx; pid; cost; _ } ->
        let p = proc pid in
        let s = st.(pid) in
        (* Axiom 1: no ready (mid-invocation) higher-priority process on
           the same processor. *)
        for q = 0 to n - 1 do
          let pq = proc q in
          if
            q <> pid && pq.processor = p.processor
            && priority.(q) > priority.(pid)
            && st.(q).mid_inv
          then emit { at = idx; pid; axiom = `Priority; blame = q }
        done;
        (* Axiom 2: no equal-priority process under an active quantum
           guarantee on the same processor. *)
        if config.axiom2 && !gate then
          for q = 0 to n - 1 do
            let pq = proc q in
            if
              q <> pid && pq.processor = p.processor
              && priority.(q) = priority.(pid)
              && st.(q).guarantee > 0
            then emit { at = idx; pid; axiom = `Quantum; blame = q }
          done;
        if s.pending then begin
          s.pending <- false;
          s.guarantee <- config.quantum
        end;
        s.guarantee <- max 0 (s.guarantee - cost);
        for q = 0 to n - 1 do
          if q <> pid && (proc q).processor = p.processor && st.(q).mid_inv then
            st.(q).pending <- true
        done)
    trace;
  List.rev !violations

let is_well_formed trace = check trace = []

(* Axiom-2 burst intervals, from the guarantee holder's perspective: a
   process that resumes after a preemption is owed a burst of [Q]
   statements' worth of same-priority exclusivity. [check] flags the
   same executions statement-by-statement from the perpetrator's side;
   this two-pass interval reconstruction is an independent second
   opinion, so a bookkeeping bug in either implementation surfaces as a
   disagreement (the lint suite cross-validates them). *)
type burst = {
  holder : Proc.pid;
  processor : int;
  level : int;  (* the holder's priority for the whole burst *)
  lo : int;  (* first protected statement index *)
  mutable hi : int;  (* first index past the burst (exclusive) *)
}

let axiom2_bursts trace =
  let config = Trace.config trace in
  let n = Config.n config in
  if not config.axiom2 then []
  else begin
    let proc pid = config.procs.(pid) in
    let priority = Array.map (fun (p : Proc.t) -> p.priority) config.procs in
    let mid_inv = Array.make n false in
    let pending = Array.make n false in
    let budget = Array.make n 0 in
    let open_burst : burst option array = Array.make n None in
    let bursts = ref [] in
    let stmts = ref 0 in
    let close pid hi =
      match open_burst.(pid) with
      | None -> ()
      | Some b ->
        b.hi <- hi;
        if b.hi > b.lo then bursts := b :: !bursts;
        open_burst.(pid) <- None
    in
    (* Pass 1: reconstruct every burst interval. *)
    Trace.iter
      (fun ev ->
        match ev with
        | Trace.Inv_begin { pid; _ } | Trace.Inv_end { pid; _ } ->
          mid_inv.(pid) <- (match ev with Trace.Inv_begin _ -> true | _ -> false);
          pending.(pid) <- false;
          budget.(pid) <- 0;
          close pid !stmts
        | Trace.Note _ -> ()
        | Trace.Set_priority { pid; priority = p } -> priority.(pid) <- p
        | Trace.Axiom2_gate { active; _ } ->
          (* Guarantees granted while enforcement was off are void at
             re-enable (see [check]); bursts close with them. *)
          if active then
            for pid = 0 to n - 1 do
              budget.(pid) <- 0;
              close pid !stmts
            done
        | Trace.Stmt { idx; pid; cost; _ } ->
          stmts := idx + 1;
          if pending.(pid) then begin
            pending.(pid) <- false;
            budget.(pid) <- config.quantum;
            close pid idx;
            if config.quantum > cost then
              open_burst.(pid) <-
                Some
                  {
                    holder = pid;
                    processor = (proc pid).processor;
                    level = priority.(pid);
                    lo = idx + 1;
                    hi = max_int;
                  }
          end;
          budget.(pid) <- max 0 (budget.(pid) - cost);
          if budget.(pid) = 0 then close pid (idx + 1);
          for q = 0 to n - 1 do
            if q <> pid && (proc q).processor = (proc pid).processor && mid_inv.(q)
            then pending.(q) <- true
          done)
      trace;
    for pid = 0 to n - 1 do
      close pid max_int
    done;
    let bursts = List.rev !bursts in
    (* Pass 2: any same-priority statement inside another process's
       burst is a preemption of a guarantee holder mid-burst. *)
    let violations = ref [] in
    let priority = Array.map (fun (p : Proc.t) -> p.priority) config.procs in
    let gate = ref true in
    Trace.iter
      (fun ev ->
        match ev with
        | Trace.Set_priority { pid; priority = p } -> priority.(pid) <- p
        | Trace.Axiom2_gate { active; _ } -> gate := active
        | Trace.Inv_begin _ | Trace.Inv_end _ | Trace.Note _ -> ()
        | Trace.Stmt { idx; pid; _ } ->
          if !gate then
            List.iter
              (fun b ->
                if
                  b.holder <> pid
                  && b.processor = (proc pid).processor
                  && b.level = priority.(pid)
                  && b.lo <= idx && idx < b.hi
                then
                  violations :=
                    { at = idx; pid; axiom = `Burst; blame = b.holder } :: !violations)
              bursts)
      trace;
    List.rev !violations
  end
