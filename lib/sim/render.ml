let lanes ?(max_width = 200) trace =
  let config = Trace.config trace in
  let n = Config.n config in
  let total = Trace.statements trace in
  let width = min total max_width in
  let truncated = total > max_width in
  let rows = Array.init n (fun _ -> Bytes.make width ' ') in
  let mid = Array.make n false in
  let started = Array.make n (-1) in
  (* first stmt column of current invocation *)
  let col = ref 0 in
  Trace.iter
    (fun ev ->
      match ev with
      | Trace.Inv_begin { pid; _ } ->
        mid.(pid) <- true;
        started.(pid) <- -1
      | Trace.Inv_end { pid; _ } ->
        mid.(pid) <- false;
        (* close the bracket at the last statement this process executed *)
        if started.(pid) >= 0 && !col - 1 < width && !col - 1 >= 0 then begin
          let last = !col - 1 in
          if last < width then Bytes.set rows.(pid) last ']'
        end
      | Trace.Note _ | Trace.Set_priority _ | Trace.Axiom2_gate _ -> ()
      | Trace.Stmt { pid; _ } ->
        if !col < width then begin
          for q = 0 to n - 1 do
            if q <> pid && mid.(q) then Bytes.set rows.(q) !col '.'
          done;
          let ch = if started.(pid) < 0 then '[' else '=' in
          if started.(pid) < 0 then started.(pid) <- !col;
          Bytes.set rows.(pid) !col ch
        end;
        incr col)
    trace;
  let buf = Buffer.create 1024 in
  let label (p : Proc.t) = Printf.sprintf "%-12s" (Printf.sprintf "%s pri=%d" p.name p.priority) in
  (* Highest priority first, then by pid. *)
  let order =
    List.sort
      (fun a b ->
        let pa = config.procs.(a) and pb = config.procs.(b) in
        match compare pb.priority pa.priority with 0 -> compare a b | c -> c)
      (List.init n Fun.id)
  in
  List.iter
    (fun pid ->
      Buffer.add_string buf (label config.procs.(pid));
      Buffer.add_string buf (Bytes.to_string rows.(pid));
      if truncated then Buffer.add_string buf " ...";
      Buffer.add_char buf '\n')
    order;
  if config.processors = 1 && config.quantum > 0 then begin
    let ruler = Bytes.make width ' ' in
    let q = config.quantum in
    let i = ref q in
    while !i < width do
      Bytes.set ruler !i '|';
      i := !i + q
    done;
    Buffer.add_string buf (Printf.sprintf "%-12s" (Printf.sprintf "Q=%d" q));
    Buffer.add_string buf (Bytes.to_string ruler);
    Buffer.add_char buf '\n'
  end;
  Buffer.contents buf

let pp ppf trace = Fmt.string ppf (lanes trace)
