(** Post-hoc well-formedness checking of histories.

    Re-validates a recorded trace against the paper's definition of a
    well-formed history (Sec. 2), independently of the engine that
    produced it:

    - {b Axiom 1}: for any statement execution [s_j] by process [p], no
      higher-priority process on [p]'s processor has an enabled statement
      (is mid-invocation) at that point.
    - {b Axiom 2}: if [p] is preempted before [s_j] (another process on
      its processor executed a statement between two statements of [p]'s
      current invocation), then no equal-priority process on [p]'s
      processor executes after [s_j] until [p] has executed [Q]
      statements or [p]'s invocation terminates.

    Every test in this repository runs its traces through this checker,
    so a scheduler bug cannot silently invalidate an experiment. *)

type violation = {
  at : int;  (** Statement index of the offending execution. *)
  pid : Proc.pid;  (** The process that executed illegally. *)
  axiom : [ `Priority | `Quantum | `Burst ];
      (** [`Priority]/[`Quantum] come from {!check}; [`Burst] comes from
          the independent {!axiom2_bursts} reconstruction. *)
  blame : Proc.pid;  (** The process whose rights were violated. *)
}

val pp_violation : violation Fmt.t

val check : Trace.t -> violation list
(** All violations, in trace order. Empty for a well-formed history.
    When the trace's config has [axiom2 = false], quantum violations are
    not reported (that mode deliberately weakens the scheduler). *)

val is_well_formed : Trace.t -> bool

val axiom2_bursts : Trace.t -> violation list
(** Axiom 2 re-checked from the guarantee {e holder}'s perspective: the
    trace is first decomposed into burst intervals (a process resuming
    after a preemption is owed [Q] statements' worth of same-priority
    exclusivity, ending early at invocation end), then every statement
    executed by a same-priority process on the same processor inside
    another process's burst is reported as a [`Burst] violation.

    On any trace this flags exactly the statement executions that
    {!check} reports as [`Quantum] violations — the two implementations
    are deliberately independent (statement-by-statement simulation vs
    two-pass interval reconstruction) so that dynamic traces and the
    static linter can cross-validate the scheduler's Axiom 2
    bookkeeping. Suspended-gate windows ({!Trace.event.Axiom2_gate})
    are honoured the same way as in {!check}. *)
