type inv_stat = {
  pid : Proc.pid;
  inv : int;
  label : string;
  statements : int;
  same_level_preemptions : int;
  higher_level_preemptions : int;
  completed : bool;
}

type t = {
  invocations : inv_stat list;
  switches : int;
  per_pid_statements : int array;
  max_invocation_statements : int;
  same_level_preemptions : int;
  higher_level_preemptions : int;
}

(* Per-pid in-flight invocation accumulator. *)
type acc = {
  mutable label : string;
  mutable inv : int;
  mutable statements : int;
  mutable same : int;
  mutable higher : int;
  mutable open_ : bool;
  (* during a gap: the strongest foreign activity seen since our last
     statement; [ `None | `Same | `Higher ] *)
  mutable gap : [ `None | `Same | `Higher ];
}

let of_trace trace =
  let config = Trace.config trace in
  let n = Config.n config in
  let priority = Array.map (fun (p : Proc.t) -> p.Proc.priority) config.Config.procs in
  let processor pid = config.Config.procs.(pid).Proc.processor in
  let accs =
    Array.init n (fun _ ->
        { label = ""; inv = 0; statements = 0; same = 0; higher = 0; open_ = false; gap = `None })
  in
  let finished = ref [] in
  let switches = ref 0 in
  let per_pid = Array.make n 0 in
  let max_inv = ref 0 in
  (* A context switch is a change of running process on one processor;
     consecutive trace statements from different processors are ordinary
     parallelism, not switches. *)
  let last_on = Array.make config.Config.processors (-1) in
  let close pid completed =
    let a = accs.(pid) in
    if a.open_ then begin
      finished :=
        {
          pid;
          inv = a.inv;
          label = a.label;
          statements = a.statements;
          same_level_preemptions = a.same;
          higher_level_preemptions = a.higher;
          completed;
        }
        :: !finished;
      max_inv := max !max_inv a.statements;
      a.open_ <- false
    end
  in
  Trace.iter
    (fun ev ->
      match ev with
      | Trace.Set_priority { pid; priority = p } -> priority.(pid) <- p
      | Trace.Inv_begin { pid; inv; label } ->
        let a = accs.(pid) in
        a.label <- label;
        a.inv <- inv;
        a.statements <- 0;
        a.same <- 0;
        a.higher <- 0;
        a.gap <- `None;
        a.open_ <- true
      | Trace.Inv_end { pid; _ } -> close pid true
      | Trace.Note _ | Trace.Axiom2_gate _ -> ()
      | Trace.Stmt { pid; _ } ->
        let pr = processor pid in
        if last_on.(pr) >= 0 && last_on.(pr) <> pid then incr switches;
        last_on.(pr) <- pid;
        per_pid.(pid) <- per_pid.(pid) + 1;
        let a = accs.(pid) in
        if a.open_ then begin
          (* settle any pending gap as a preemption *)
          (match a.gap with
          | `None -> ()
          | `Same -> a.same <- a.same + 1
          | `Higher -> a.higher <- a.higher + 1);
          a.gap <- `None;
          a.statements <- a.statements + 1
        end;
        (* this statement contributes to every other open invocation's gap
           on the same processor *)
        for q = 0 to n - 1 do
          if q <> pid && processor q = processor pid && accs.(q).open_
             && accs.(q).statements > 0
          then begin
            let cls = if priority.(pid) > priority.(q) then `Higher else `Same in
            match (accs.(q).gap, cls) with
            | `Higher, _ -> ()
            | _, `Higher -> accs.(q).gap <- `Higher
            | _, `Same -> accs.(q).gap <- `Same
          end
        done)
    trace;
  for pid = 0 to n - 1 do
    close pid false
  done;
  let invocations = List.rev !finished in
  {
    invocations;
    switches = !switches;
    per_pid_statements = per_pid;
    max_invocation_statements = !max_inv;
    same_level_preemptions =
      List.fold_left (fun acc (i : inv_stat) -> acc + i.same_level_preemptions) 0 invocations;
    higher_level_preemptions =
      List.fold_left (fun acc (i : inv_stat) -> acc + i.higher_level_preemptions) 0 invocations;
  }

let max_same_level_preemptions_per_invocation t =
  List.fold_left (fun acc (i : inv_stat) -> max acc i.same_level_preemptions) 0 t.invocations

let pp_summary ppf t =
  Fmt.pf ppf
    "@[<v>invocations: %d@,switches: %d@,max statements/invocation: %d@,\
     same-level preemptions: %d (max %d per invocation)@,\
     higher-level preemptions: %d@]"
    (List.length t.invocations) t.switches t.max_invocation_statements
    t.same_level_preemptions
    (max_same_level_preemptions_per_invocation t)
    t.higher_level_preemptions
