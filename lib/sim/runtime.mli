(** Per-domain execution context shared by {!Engine}, {!Shared} and the
    lint recorder ([Hwf_lint]).

    Three concerns live here, all domain-local (one engine run executes
    entirely on one domain, so domain-local state is per-run state):

    - the {e process-context flag}: true exactly while process code (a
      body resumed by {!Engine.run}) is executing. {!Shared.peek} and
      {!Shared.poke} consult it to enforce their harness-only contract
      at run time instead of by documentation alone;
    - the {e instrumentation bracket}: algorithm modules that keep
      harness statistics from inside process code (e.g. the
      access-failure tap of [Hwf_core.Multi_consensus]) wrap those
      zero-statement accesses in {!instrumentation}, which exempts them
      from the guard and marks them for the lint recorder;
    - the {e access tap}: when installed (lint replay), every concrete
      store access — including peeks and pokes that would otherwise
      raise — is reported instead, so the conformance linter can
      cross-check accesses against announced statements rather than
      crash on the first offence. *)

type access_kind = Read | Write | Peek | Poke

type access = {
  var : string;  (** The shared variable's name. *)
  kind : access_kind;
  instrumentation : bool;
      (** The access happened inside an {!instrumentation} bracket. *)
}

val pp_kind : access_kind Fmt.t
val pp_access : access Fmt.t

val enter_process : unit -> unit
(** Mark the start of process-code execution. {b Engine use only} —
    called immediately before resuming a process continuation. *)

val exit_process : unit -> unit
(** Mark the end of process-code execution. {b Engine use only} —
    called as soon as control returns to the scheduler (effect handler
    entry). *)

val in_process : unit -> bool
(** True while process code is executing on this domain. *)

val instrumentation : (unit -> 'a) -> 'a
(** [instrumentation f] runs [f] with the harness-only guard suspended:
    {!Shared.peek}/{!Shared.poke} inside [f] do not raise even from
    process code, and any tapped accesses are flagged as
    instrumentation (the linter ignores them). For deliberate,
    zero-statement bookkeeping only — never for algorithm steps. *)

val with_tap : (access -> unit) -> (unit -> 'a) -> 'a
(** [with_tap tap f] installs [tap] as this domain's access sink for
    the duration of [f] (restoring any previous tap afterwards). While
    installed, harness-only accesses from process code report instead
    of raising. *)

val report : var:string -> kind:access_kind -> unit
(** Report a legitimate (announced) store access to the tap, if one is
    installed. {b Shared use only.} *)

val harness_access : var:string -> kind:access_kind -> unit
(** Police one {!Shared.peek}/{!Shared.poke}: report it to the tap when
    one is installed; otherwise raise [Invalid_argument] if called from
    process code outside an {!instrumentation} bracket. {b Shared use
    only.} *)
