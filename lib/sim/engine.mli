(** The execution engine.

    Implements the paper's model of program execution (Sec. 2) on top of
    OCaml effect handlers. Each process is a direct-style function; each
    atomic statement is announced by an {!Eff.step}; the engine executes
    exactly one statement per scheduling decision and enforces
    well-formedness:

    - {b Axiom 1} (priority scheduling): a statement of process [q] may
      execute only if no higher-priority process on [q]'s processor has
      an enabled statement (i.e. is ready mid-invocation).
    - {b Axiom 2} (quantum scheduling): if a process [p] was preempted —
      some other process on its processor executed a statement between
      two statements of [p]'s current invocation — then once [p] resumes,
      no equal-priority process on its processor may execute until [p]
      has executed [Q] statements or [p]'s invocation terminates. The
      first preemption of an invocation may occur at any point (the
      process's quantum alignment on entry is arbitrary, as in the
      lower-bound model of Sec. 4.1 / Appendix A).

    Processors interleave freely with respect to one another: any
    interleaving of statements across processors is schedulable, which
    models true multiprocessor parallelism at statement granularity.

    {b Domain-locality.} [run] allocates every piece of engine state —
    process cells, the trace, the current-process cursor — inside the
    call, and its effect handler is installed with [match_with] on the
    calling domain only (OCaml effects do not cross domains). Concurrent
    [run]s on different domains therefore never share engine state, which
    is what lets the exploration and certification layers fan whole runs
    out across a domain pool ([docs/PARALLELISM.md]); the one obligation
    on callers is that [programs] and the state they close over (e.g.
    {!Shared} stores) are freshly built per run and not shared between
    concurrent runs. *)

type stop_reason =
  | All_finished
  | Policy_stopped  (** The policy returned [None]. *)
  | Step_limit  (** The statement budget ([step_limit]) was exhausted. *)
  | Decision_limit
      (** The scheduling-decision budget (4x [step_limit]) was exhausted
          before the statement budget — the signature of a process
          spinning on statement-free (empty) invocations, which
          [step_limit] alone cannot see. Reported distinctly so
          downstream tooling can tell a long computation ([Step_limit])
          from a statement-free livelock. *)
  | All_halted
      (** Every legally runnable process was withheld by the [halted]
          fault hook: only crashed processes (and processes they block)
          remain — the fault-injection analogue of [Policy_stopped]. *)

type result = {
  trace : Trace.t;
  finished : bool array;  (** Indexed by pid. *)
  own_steps : int array;  (** Statements executed, per pid. *)
  halted : bool array;
      (** Unfinished processes the [halted] hook withheld at the end of
          the run (all [false] when the hook was not supplied). *)
  stop : stop_reason;
}

val run :
  ?step_limit:int ->
  ?cost:(Policy.view -> Proc.pid -> Op.t -> int) ->
  ?halted:(Policy.pview -> bool) ->
  ?axiom2_active:(step:int -> bool) ->
  ?observer:(Trace.event -> unit) ->
  ?sink:Trace.sink ->
  ?trace_buf:Trace.t ->
  ?self_check:bool ->
  config:Config.t ->
  policy:Policy.t ->
  (unit -> unit) array ->
  result
(** [run ~config ~policy programs] executes [programs.(pid)] for each
    process of [config] under [policy]. [step_limit] (default 1_000_000)
    bounds total statements ([Step_limit]); the engine additionally
    bounds scheduling decisions at four times the statement budget, so a
    process looping on statement-free (empty) invocations — which
    [step_limit] alone cannot see — still terminates the run, with
    [Decision_limit].

    The scheduling hot path is incremental: ready-level counts, quantum
    guards, preemption stamps and a live-process list make each decision
    one allocation-light pass over unfinished processes instead of a
    quadratic rescan (see docs/ARCHITECTURE.md). The [Policy.view.procs]
    array handed to the policy (and to [cost]) is a reused scratch
    buffer: its contents are valid only for the duration of that call
    and must not be retained (the [pview] records themselves are
    immutable and safe to keep).

    On top of that, {e forced} decisions are batched into quantum
    bursts: when the schedulable set is provably the singleton [{p}] —
    [p] is the last unfinished process ({e solo}), or the only live
    process at the top live level of its processor ({e singleton
    level}), or holds an active Axiom-2 quantum guarantee that together
    with Axiom 1 silences every other candidate ({e guarantee}) — and
    the policy declares the forced-choice contract
    ([Policy.burst_safe]), the engine executes [p]'s next decisions in
    a tight loop without rebuilding views or consulting the policy,
    falling back to the per-decision path the moment forcedness can
    lapse (guarantee drained, invocation ended, priority changed,
    limits near). Unforced decisions are cheap too: the schedulable
    list is cached and reused across decisions, invalidated by a
    version counter that every membership-changing transition bumps
    (and a matched guarantee grant/drain restores), with a dirty queue
    refreshing only the policy views that a statement could have
    changed. Batching is disabled wholesale when any per-decision hook
    is supplied ([cost], [halted], [axiom2_active]) or under
    [self_check], and list caching under [halted] or [self_check];
    both are pure optimizations — traces, counters and stop reasons
    are byte-identical either way (see docs/ARCHITECTURE.md and the
    differential suite in test/test_burst.ml).

    [cost] chooses each statement's duration in time units, clamped to
    the configuration's [tmin..tmax] (default: every statement costs
    [tmin]). In the time model the quantum guarantee of Axiom 2 protects
    [Q] time units rather than [Q] statements, so an adversarial [cost]
    of [tmax] shrinks the number of protected statements — the Tmax/Tmin
    structure of Table 1.

    [halted] is the fault-injection hook behind {!Hwf_faults.Inject}
    (the paper's halting failures, Sec. 2): a process whose view
    satisfies the predicate is withheld from the policy's choices while
    still participating in the Axiom 1/2 blocking rules — a crash is the
    scheduler never allocating the process another quantum, not the
    process vanishing. When only halted processes remain runnable, the
    run stops with [All_halted]. The predicate must be monotone in
    [own_steps] for a given pid (crashed processes stay crashed) and
    should leave processes holding an active quantum guarantee running
    (see {!Hwf_adversary.Crash}); it is consulted afresh each scheduling
    decision, so it must be stateless.

    [axiom2_active] gates enforcement of the Axiom 2 quantum guarantee
    per scheduling step (given the global statement count): while it
    returns [false], same-level processes may run despite another's
    active guarantee. Gate flips are recorded as {!Trace.Axiom2_gate}
    events so {!Wellformed.check} judges the trace against the weakened
    scheduler rather than reporting spurious quantum violations.
    Bookkeeping (pending flags, guarantee draining) continues while the
    gate is off. This models a scheduler that intermittently violates
    Axiom 2 — the paper's Sec. 2 degradation, used as a fault plan and
    as the negative control of the wait-freedom certifier.

    [observer] is installed on the run's trace ({!Trace.set_observer})
    before any process is launched, so it sees every event in append
    order, and removed again on {e every} exit path — normal return,
    process-body exception, policy misbehaviour — so a reused
    [trace_buf] can never leak one run's observer into the next. It is
    the engine-level entry point of the observability layer
    ({!Hwf_obs.Metrics} collectors); when absent there is no per-event
    cost (the trace's sinks are no-ops). [sink] is the allocation-free
    variant ({!Trace.set_sink}): statement events arrive as plain
    arguments instead of allocated {!Trace.event} records — prefer it on
    hot paths ({!Hwf_obs.Metrics.sink} adapts a collector). At most one
    of [observer]/[sink] may be supplied.

    [trace_buf] makes the run record into a caller-supplied trace
    ({!Trace.reset} is applied first) instead of allocating a fresh one
    — the scratch-arena hook that lets an exploration worker reuse one
    event buffer across thousands of runs. The caller promises the
    previous run's [result.trace] is dead by the time it passes the
    buffer again; the explorer severs the reference when a trace escapes
    inside a counterexample. The buffer must be configured for the same
    process count.

    [self_check] (default [false]) runs the engine's retained naive
    reference semantics alongside the incremental structures: each
    decision recomputes the maximum ready level, Axiom-2 guarding, the
    preemption flags and the runnable set by full scan — exactly as the
    pre-incremental engine did — and asserts agreement, including that
    the scratch policy views equal freshly built ones. Intended for
    tests; it restores the old quadratic cost.

    @raise Invalid_argument if the program count differs from the process
    count, or if both [observer] and [sink] are supplied.
    @raise Stdlib.Exit never; exceptions raised by process bodies
    propagate. *)
