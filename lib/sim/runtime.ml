type access_kind = Read | Write | Peek | Poke

type access = { var : string; kind : access_kind; instrumentation : bool }

let pp_kind ppf k =
  Fmt.string ppf
    (match k with Read -> "read" | Write -> "write" | Peek -> "peek" | Poke -> "poke")

let pp_access ppf a =
  Fmt.pf ppf "%a %s%s" pp_kind a.kind a.var
    (if a.instrumentation then " (instrumentation)" else "")

(* One context per domain: the engine executes a run entirely on one
   domain, and the pool fans runs out over distinct domains, so
   domain-local state is exactly per-run state. *)
type ctx = {
  mutable in_process : bool;
  mutable instr_depth : int;
  mutable tap : (access -> unit) option;
}

let key =
  Domain.DLS.new_key (fun () -> { in_process = false; instr_depth = 0; tap = None })

let ctx () = Domain.DLS.get key

let enter_process () = (ctx ()).in_process <- true
let exit_process () = (ctx ()).in_process <- false
let in_process () = (ctx ()).in_process

let instrumentation f =
  let c = ctx () in
  c.instr_depth <- c.instr_depth + 1;
  Fun.protect ~finally:(fun () -> c.instr_depth <- c.instr_depth - 1) f

let with_tap tap f =
  let c = ctx () in
  let previous = c.tap in
  c.tap <- Some tap;
  Fun.protect ~finally:(fun () -> c.tap <- previous) f

let report ~var ~kind =
  let c = ctx () in
  match c.tap with
  | None -> ()
  | Some f -> f { var; kind; instrumentation = c.instr_depth > 0 }

let harness_access ~var ~kind =
  let c = ctx () in
  if c.in_process && c.instr_depth = 0 then begin
    match c.tap with
    | Some f -> f { var; kind; instrumentation = false }
    | None ->
      Fmt.invalid_arg "Shared.%a: harness-only access to %s from process code"
        pp_kind kind var
  end
  else
    match c.tap with
    | None -> ()
    | Some f -> f { var; kind; instrumentation = c.instr_depth > 0 }
