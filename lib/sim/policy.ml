type phase = Thinking | Ready | Finished

type pview = {
  pid : Proc.pid;
  processor : int;
  priority : int;
  phase : phase;
  next_op : Op.t option;
  own_steps : int;
  inv_steps : int;
  inv : int;
  guarantee : int;
  pending : bool;
}

type view = { step : int; runnable : Proc.pid list; procs : pview array }

type t = { name : string; burst_safe : bool; make : unit -> view -> Proc.pid option }

let of_fun ?(burst_safe = false) name choose =
  { name; burst_safe; make = (fun () -> choose) }

let of_factory ?(burst_safe = false) name make = { name; burst_safe; make }
let prepare t = t.make ()

let round_robin () =
  of_factory ~burst_safe:true "round-robin" (fun () ->
      let last = ref (-1) in
      fun v ->
        match v.runnable with
        | [] -> None
        (* A singleton choice is forced: return it without advancing the
           cursor, so skipping the consultation entirely (the engine's
           burst batching) is observationally identical. *)
        | [ p ] -> Some p
        | l ->
          let pick =
            match List.find_opt (fun p -> p > !last) l with
            | Some p -> p
            | None -> List.hd l
          in
          last := pick;
          Some pick)

let random ~seed =
  of_factory ~burst_safe:true
    (Printf.sprintf "random(%d)" seed)
    (fun () ->
      let st = Random.State.make [| seed |] in
      (* Scratch pid buffer, grown on demand: one pass over [runnable]
         replaces the List.length + List.nth double traversal while
         keeping the RNG stream identical (one [int] draw per decision,
         same bound). *)
      let buf = ref (Array.make 8 0) in
      (* The engine hands back the physically-same runnable list while
         membership is unchanged (its schedulable-list cache), so memo
         the list->buffer conversion on identity. The lists are rebuilt
         fresh whenever membership changes, so a stale hit is
         impossible; the RNG stream is untouched either way. *)
      let memo_list = ref [] and memo_n = ref 0 in
      fun v ->
        match v.runnable with
        | [] -> None
        (* Forced choice: no RNG draw, so the stream is the same whether
           or not the engine consulted us (burst batching skips the
           call; a draw here would desynchronize later decisions). *)
        | [ p ] -> Some p
        | l ->
          if l != !memo_list then begin
            let n = ref 0 in
            List.iter
              (fun pid ->
                if !n >= Array.length !buf then begin
                  let bigger = Array.make (2 * Array.length !buf) 0 in
                  Array.blit !buf 0 bigger 0 !n;
                  buf := bigger
                end;
                !buf.(!n) <- pid;
                incr n)
              l;
            memo_list := l;
            memo_n := !n
          end;
          Some !buf.(Random.State.int st !memo_n))

let scripted ?fallback script =
  of_factory "scripted" (fun () ->
      let remaining = ref script in
      let fb = Option.map (fun f -> f.make ()) fallback in
      fun v ->
        let rec next () =
          match !remaining with
          | [] -> (match fb with Some f -> f v | None -> None)
          | pid :: rest ->
            if List.mem pid v.runnable then begin
              remaining := rest;
              Some pid
            end
            else begin
              match fb with
              | Some _ ->
                remaining := rest;
                next ()
              | None -> None
            end
        in
        next ())

let first =
  of_fun ~burst_safe:true "first" (fun v ->
      match v.runnable with [] -> None | pid :: _ -> Some pid)

let highest_pid =
  of_fun ~burst_safe:true "highest-pid" (fun v ->
      match List.rev v.runnable with [] -> None | pid :: _ -> Some pid)

let by_priority =
  of_fun ~burst_safe:true "by-priority" (fun v ->
      match v.runnable with
      | [] -> None
      | first :: rest ->
        Some
          (List.fold_left
             (fun best p ->
               if v.procs.(p).priority > v.procs.(best).priority then p else best)
             first rest))

let prefer pids ~fallback =
  (* Stateless given a burst-safe fallback: on a singleton set both the
     pids scan and the fallback return the one candidate unchanged. *)
  of_factory ~burst_safe:fallback.burst_safe "prefer" (fun () ->
      let fb = fallback.make () in
      fun v ->
        match List.find_opt (fun p -> List.mem p v.runnable) pids with
        | Some p -> Some p
        | None -> fb v)

(* Data footprints over the policy view: what the next statement of a
   candidate would touch. Shared by the sleep-set pruning in
   [Hwf_adversary.Explore] and the POS sampler in
   [Hwf_adversary.Randsched] — both need the same independence
   judgement, so it lives here at the view layer. *)

type footprint = {
  fpid : Proc.pid;
  fproc : int;
  fvar : string option;
  fwrite : bool;
  fknown : bool;
  fop : Op.t option;
}

let footprint (view : view) pid =
  let pv = view.procs.(pid) in
  match (pv.phase, pv.next_op) with
  | Ready, Some op ->
    let fvar, fwrite =
      match op with
      | Op.Read v -> (Some v, false)
      | Op.Write v -> (Some v, true)
      | Op.Rmw { var; _ } -> (Some var, true)
      | Op.Local _ -> (None, false)
    in
    { fpid = pid; fproc = pv.processor; fvar; fwrite; fknown = true; fop = Some op }
  | _ ->
    {
      fpid = pid;
      fproc = pv.processor;
      fvar = None;
      fwrite = true;
      fknown = false;
      fop = None;
    }

type relation = footprint -> footprint -> bool

let independent a b =
  a.fknown && b.fknown
  && a.fproc <> b.fproc
  &&
  match (a.fvar, b.fvar) with
  | Some x, Some y -> (not (a.fwrite || b.fwrite)) || not (String.equal x y)
  | None, _ | _, None -> true
