type _ Effect.t +=
  | Step : Op.t -> unit Effect.t
  | Inv_begin : string -> unit Effect.t
  | Inv_end : string -> unit Effect.t
  | Note : string -> unit Effect.t
  | Now : int Effect.t
  | Stamp : (int * int) Effect.t
  | Set_priority : int -> unit Effect.t

let step op = Effect.perform (Step op)
let local l = step (Op.local l)

let invocation label body =
  Effect.perform (Inv_begin label);
  let r = body () in
  Effect.perform (Inv_end label);
  r

let note s = Effect.perform (Note s)
let now () = Effect.perform Now
let stamp () = Effect.perform Stamp
let set_priority p = Effect.perform (Set_priority p)
