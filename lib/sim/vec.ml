type 'a t = { mutable data : 'a array; mutable len : int }

let create () = { data = [||]; len = 0 }

let length v = v.len

let get v i =
  if i < 0 || i >= v.len then invalid_arg "Vec.get";
  v.data.(i)

let clear v = v.len <- 0

let push v x =
  let cap = Array.length v.data in
  if v.len = cap then begin
    let cap' = if cap = 0 then 8 else cap * 2 in
    let data' = Array.make cap' x in
    Array.blit v.data 0 data' 0 v.len;
    v.data <- data'
  end;
  v.data.(v.len) <- x;
  v.len <- v.len + 1

let iter f v =
  for i = 0 to v.len - 1 do
    f v.data.(i)
  done

let iteri f v =
  for i = 0 to v.len - 1 do
    f i v.data.(i)
  done

let fold_left f acc v =
  let acc = ref acc in
  for i = 0 to v.len - 1 do
    acc := f !acc v.data.(i)
  done;
  !acc

let to_list v = List.init v.len (fun i -> v.data.(i))

let of_list l =
  let v = create () in
  List.iter (push v) l;
  v

let last v = if v.len = 0 then None else Some v.data.(v.len - 1)

let exists p v =
  let rec loop i = i < v.len && (p v.data.(i) || loop (i + 1)) in
  loop 0

let filter p v = List.filter p (to_list v)
