let default_jobs () = Domain.recommended_domain_count ()

type stats = {
  claims : int Atomic.t;
  evaluated : int Atomic.t;
  skipped : int Atomic.t;
  per_worker : int Atomic.t array;
}

let make_stats ~jobs =
  if jobs < 1 then invalid_arg "Pool.make_stats: jobs must be >= 1";
  {
    claims = Atomic.make 0;
    evaluated = Atomic.make 0;
    skipped = Atomic.make 0;
    per_worker = Array.init jobs (fun _ -> Atomic.make 0);
  }

let stats_claims s = Atomic.get s.claims
let stats_evaluated s = Atomic.get s.evaluated
let stats_skipped s = Atomic.get s.skipped
let stats_per_worker s = Array.map Atomic.get s.per_worker
let bump a k = ignore (Atomic.fetch_and_add a k)

(* Record the minimum-index failure; CAS loop because two domains may
   fail concurrently. *)
let rec note_error err idx e =
  match Atomic.get err with
  | Some (i, _) when i <= idx -> ()
  | cur ->
    if not (Atomic.compare_and_set err cur (Some (idx, e))) then note_error err idx e

(* Test-only injection point: called once per worker after its claim
   loop, before the stats flush — the retirement window the worker-death
   regression tests exercise. Always [None] in production. *)
let worker_retire_test_hook : (int -> unit) option ref = ref None

let map ?jobs ?(batch = 1) ?stats f a =
  let n = Array.length a in
  let jobs = match jobs with Some j -> j | None -> default_jobs () in
  if batch < 1 then invalid_arg "Pool.map: batch must be >= 1";
  (* Size-check the stats histogram against the workers this call will
     actually use, up front: a mismatch would otherwise silently fold
     overflow workers into the last bucket (or, worse, surface as a
     worker-side exception mid-run). *)
  let workers = if jobs <= 1 || n <= 1 then 1 else 1 + min (jobs - 1) (n - 1) in
  (match stats with
  | Some s when Array.length s.per_worker < workers ->
    invalid_arg
      (Printf.sprintf
         "Pool.map: stats sized for %d worker(s) but this call uses %d (make_stats \
          ~jobs must cover map ~jobs)"
         (Array.length s.per_worker) workers)
  | Some _ | None -> ());
  if n = 0 then [||]
  else if workers = 1 then begin
    (match stats with
    | None -> ()
    | Some s ->
      bump s.claims 1;
      bump s.evaluated n;
      bump s.per_worker.(0) n);
    Array.map f a
  end
  else begin
    let out = Array.make n None in
    let next = Atomic.make 0 in
    let err = Atomic.make None in
    let worker wid () =
      (* Counters are worker-local refs, flushed to [stats] once on
         retirement: no shared-counter traffic in the claim loop, and
         nothing at all touched when [stats] is absent. *)
      let claims = ref 0 and evaluated = ref 0 and skipped = ref 0 in
      let body () =
        let live = ref true in
        while !live do
          let lo = Atomic.fetch_and_add next batch in
          if lo >= n then live := false
          else begin
            incr claims;
            for i = lo to min n (lo + batch) - 1 do
              (* A recorded error at index [j] makes every cell with a
                 higher index dead: the output array is discarded once
                 [err] is set, and only a lower-index failure can replace
                 [j] in [note_error]. Skipping those cells still re-raises
                 the minimum-index exception regardless of how domains
                 interleaved, without evaluating work whose result cannot
                 be observed. *)
              match Atomic.get err with
              | Some (j, _) when i > j -> incr skipped
              | _ -> (
                incr evaluated;
                match f a.(i) with
                | v -> out.(i) <- Some v
                | exception e -> note_error err i e)
            done
          end
        done;
        (match !worker_retire_test_hook with None -> () | Some h -> h wid);
        match stats with
        | None -> ()
        | Some s ->
          bump s.claims !claims;
          bump s.evaluated !evaluated;
          bump s.skipped !skipped;
          bump s.per_worker.(wid) !evaluated
      in
      (* Worker-death containment: an exception escaping the claim loop
         {e outside} [f] (stats flush, claim bookkeeping, OOM in the
         worker's own allocations) must not propagate out of
         [Domain.join] — that would bypass [note_error]'s min-index
         contract, and from worker 0 it would leak the spawned domains
         unjoined. Record it at sentinel index [n]: every genuine cell
         error (index < n) takes precedence, and if the worker death is
         the only failure it is re-raised after all workers retire. *)
      try body () with e -> note_error err n e
    in
    let spawned =
      Array.init (workers - 1) (fun i -> Domain.spawn (worker (i + 1)))
    in
    worker 0 ();
    Array.iter Domain.join spawned;
    match Atomic.get err with
    | Some (_, e) -> raise e
    | None -> Array.map (function Some v -> v | None -> assert false) out
  end

let map_list ?jobs ?batch ?stats f l =
  Array.to_list (map ?jobs ?batch ?stats f (Array.of_list l))
