let default_jobs () = Domain.recommended_domain_count ()

type stats = {
  claims : int Atomic.t;
  steals : int Atomic.t;
  evaluated : int Atomic.t;
  skipped : int Atomic.t;
  per_worker : int Atomic.t array;
}

let make_stats ~jobs =
  if jobs < 1 then invalid_arg "Pool.make_stats: jobs must be >= 1";
  {
    claims = Atomic.make 0;
    steals = Atomic.make 0;
    evaluated = Atomic.make 0;
    skipped = Atomic.make 0;
    per_worker = Array.init jobs (fun _ -> Atomic.make 0);
  }

let stats_claims s = Atomic.get s.claims
let stats_steals s = Atomic.get s.steals
let stats_evaluated s = Atomic.get s.evaluated
let stats_skipped s = Atomic.get s.skipped
let stats_per_worker s = Array.map Atomic.get s.per_worker
let bump a k = ignore (Atomic.fetch_and_add a k)

(* Record the minimum-index failure; CAS loop because two domains may
   fail concurrently. *)
let rec note_error err idx e =
  match Atomic.get err with
  | Some (i, _) when i <= idx -> ()
  | cur ->
    if not (Atomic.compare_and_set err cur (Some (idx, e))) then note_error err idx e

(* Test-only injection point: called once per worker after its claim
   loop, before the stats flush — the retirement window the worker-death
   regression tests exercise. Always [None] in production. *)
let worker_retire_test_hook : (int -> unit) option ref = ref None

(* A fixed-capacity Chase–Lev-style deque of chunk ids. The buffer never
   grows (every chunk is seeded at creation and only removed), which
   removes the resize/ABA machinery of the full algorithm: [buf] is
   immutable after creation, so a thief that wins the CAS on [top] has
   read a valid element. The buffer is stored in descending chunk order
   so the owner ([take], at [bottom]) drains its block in ascending
   canonical order while thieves ([steal], at [top]) bite off the far
   end — stolen work is the work the owner would have reached last. *)
type deque = {
  buf : int array;
  top : int Atomic.t;
  bottom : int Atomic.t;
}

let deque_of_block ~lo ~hi =
  {
    buf = Array.init (hi - lo) (fun k -> hi - 1 - k);
    top = Atomic.make 0;
    bottom = Atomic.make (hi - lo);
  }

let take d =
  let b = Atomic.get d.bottom - 1 in
  Atomic.set d.bottom b;
  let t = Atomic.get d.top in
  if b < t then begin
    (* empty (thieves drained it); restore the canonical empty shape *)
    Atomic.set d.bottom t;
    None
  end
  else if b = t then begin
    (* last element: race the thieves for it via the CAS on [top] *)
    let won = Atomic.compare_and_set d.top t (t + 1) in
    Atomic.set d.bottom (t + 1);
    if won then Some d.buf.(b) else None
  end
  else Some d.buf.(b)

type steal_result = Stolen of int | Empty | Lost

let steal d =
  let t = Atomic.get d.top in
  let b = Atomic.get d.bottom in
  if t >= b then Empty
  else
    let x = d.buf.(t) in
    if Atomic.compare_and_set d.top t (t + 1) then Stolen x else Lost

(* Auto grain: enough chunks that every worker keeps ~8 steal targets in
   flight (load balance), but never more than one chunk per cell and
   never chunks above 256 cells (a stuck mega-chunk would pin a domain).
   With few cells this degenerates to grain 1 — exactly the old
   cell-per-claim behaviour, which is right for coarse cells. *)
let auto_grain ~n ~jobs =
  if jobs <= 1 then max 1 n else max 1 (min 256 (n / (jobs * 8)))

let map_scratch ?jobs ?grain ?stats ~make f a =
  let n = Array.length a in
  let jobs = match jobs with Some j -> j | None -> default_jobs () in
  let grain =
    match grain with
    | Some g -> if g < 1 then invalid_arg "Pool.map: grain must be >= 1" else g
    | None -> auto_grain ~n ~jobs
  in
  let nchunks = if n = 0 then 0 else ((n - 1) / grain) + 1 in
  (* Size-check the stats histogram against the workers this call will
     actually use, up front: a mismatch would otherwise silently fold
     overflow workers into the last bucket (or, worse, surface as a
     worker-side exception mid-run). *)
  let workers =
    if jobs <= 1 || nchunks <= 1 then 1 else 1 + min (jobs - 1) (nchunks - 1)
  in
  (match stats with
  | Some s when Array.length s.per_worker < workers ->
    invalid_arg
      (Printf.sprintf
         "Pool.map: stats sized for %d worker(s) but this call uses %d (make_stats \
          ~jobs must cover map ~jobs)"
         (Array.length s.per_worker) workers)
  | Some _ | None -> ());
  if n = 0 then [||]
  else if workers = 1 then begin
    (match stats with
    | None -> ()
    | Some s ->
      bump s.claims nchunks;
      bump s.evaluated n;
      bump s.per_worker.(0) n);
    let scratch = make () in
    Array.map (f scratch) a
  end
  else begin
    let out = Array.make n None in
    let err = Atomic.make None in
    (* Chunks are block-partitioned across workers in ascending order:
       worker 0 owns the canonically-first block (whose results gate
       early-abort merges), worker [w-1] the last. [remaining] counts
       unclaimed chunks and is decremented at claim time, so it reaches
       zero exactly when every chunk has an executor — idle workers spin
       (with backoff) until then and retire the moment it does, even if
       a claimed chunk is still running (the joins below wait for it). *)
    let remaining = Atomic.make nchunks in
    let deques =
      let q = nchunks / workers and r = nchunks mod workers in
      Array.init workers (fun w ->
          let lo = (w * q) + min w r in
          let hi = lo + q + if w < r then 1 else 0 in
          deque_of_block ~lo ~hi)
    in
    let worker wid () =
      (* Counters are worker-local refs, flushed to [stats] once on
         retirement: no shared-counter traffic in the claim loop, and
         nothing at all touched when [stats] is absent. *)
      let claims = ref 0 and steals = ref 0 in
      let evaluated = ref 0 and skipped = ref 0 in
      let backoff = ref 1 in
      let claim () =
        match take deques.(wid) with
        | Some c ->
          ignore (Atomic.fetch_and_add remaining (-1));
          incr claims;
          Some c
        | None ->
          (* Own block drained: steal, round-robin from the next worker,
             until every chunk in the pool is claimed. A lost CAS means a
             victim still has work — re-sweep immediately; an all-empty
             sweep with chunks still unclaimed means the tail chunks are
             mid-execution elsewhere — back off exponentially before
             looking again. *)
          let result = ref None in
          while !result = None && Atomic.get remaining > 0 do
            let contended = ref false in
            for k = 1 to workers - 1 do
              if !result = None then
                match steal deques.((wid + k) mod workers) with
                | Stolen c ->
                  ignore (Atomic.fetch_and_add remaining (-1));
                  incr claims;
                  incr steals;
                  backoff := 1;
                  result := Some c
                | Lost -> contended := true
                | Empty -> ()
            done;
            if !result = None && not !contended && Atomic.get remaining > 0
            then begin
              for _ = 1 to !backoff do
                Domain.cpu_relax ()
              done;
              backoff := min 4096 (2 * !backoff)
            end
          done;
          !result
      in
      let exec scratch c =
        let lo = c * grain and hi = min n ((c + 1) * grain) in
        for i = lo to hi - 1 do
          (* A recorded error at index [j] makes every cell with a
             higher index dead: the output array is discarded once
             [err] is set, and only a lower-index failure can replace
             [j] in [note_error]. Skipping those cells still re-raises
             the minimum-index exception regardless of how domains
             interleaved, without evaluating work whose result cannot
             be observed. *)
          match Atomic.get err with
          | Some (j, _) when i > j -> incr skipped
          | _ -> (
            incr evaluated;
            match f scratch a.(i) with
            | v -> out.(i) <- Some v
            | exception e -> note_error err i e)
        done
      in
      let body () =
        (* The scratch is created on the worker's own domain so its
           buffers live in that domain's minor heap. *)
        let scratch = make () in
        let live = ref true in
        while !live do
          match claim () with
          | Some c -> exec scratch c
          | None -> live := false
        done;
        (match !worker_retire_test_hook with None -> () | Some h -> h wid);
        match stats with
        | None -> ()
        | Some s ->
          bump s.claims !claims;
          bump s.steals !steals;
          bump s.evaluated !evaluated;
          bump s.skipped !skipped;
          bump s.per_worker.(wid) !evaluated
      in
      (* Worker-death containment: an exception escaping the claim loop
         {e outside} [f] (stats flush, claim bookkeeping, OOM in the
         worker's own allocations) must not propagate out of
         [Domain.join] — that would bypass [note_error]'s min-index
         contract, and from worker 0 it would leak the spawned domains
         unjoined. Record it at sentinel index [n]: every genuine cell
         error (index < n) takes precedence, and if the worker death is
         the only failure it is re-raised after all workers retire. The
         dead worker's unclaimed chunks stay in its deque, where the
         surviving workers steal them — claims, and so retirement, do
         not depend on the owner staying alive. *)
      try body () with e -> note_error err n e
    in
    let spawned =
      Array.init (workers - 1) (fun i -> Domain.spawn (worker (i + 1)))
    in
    worker 0 ();
    Array.iter Domain.join spawned;
    match Atomic.get err with
    | Some (_, e) -> raise e
    | None -> Array.map (function Some v -> v | None -> assert false) out
  end

let map ?jobs ?grain ?stats f a =
  map_scratch ?jobs ?grain ?stats ~make:(fun () -> ()) (fun () x -> f x) a

let map_list ?jobs ?grain ?stats f l =
  Array.to_list (map ?jobs ?grain ?stats f (Array.of_list l))
