let default_jobs () = Domain.recommended_domain_count ()

(* Record the minimum-index failure; CAS loop because two domains may
   fail concurrently. *)
let rec note_error err idx e =
  match Atomic.get err with
  | Some (i, _) when i <= idx -> ()
  | cur ->
    if not (Atomic.compare_and_set err cur (Some (idx, e))) then note_error err idx e

let map ?jobs ?(batch = 1) f a =
  let n = Array.length a in
  let jobs = match jobs with Some j -> j | None -> default_jobs () in
  if batch < 1 then invalid_arg "Pool.map: batch must be >= 1";
  if n = 0 then [||]
  else if jobs <= 1 || n = 1 then Array.map f a
  else begin
    let out = Array.make n None in
    let next = Atomic.make 0 in
    let err = Atomic.make None in
    let worker () =
      let live = ref true in
      while !live do
        let lo = Atomic.fetch_and_add next batch in
        if lo >= n then live := false
        else
          for i = lo to min n (lo + batch) - 1 do
            (* No early exit on error: every cell is evaluated so the
               re-raised exception is the minimum-index one regardless
               of how domains interleaved. *)
            match f a.(i) with
            | v -> out.(i) <- Some v
            | exception e -> note_error err i e
          done
      done
    in
    let spawned = Array.init (min (jobs - 1) (n - 1)) (fun _ -> Domain.spawn worker) in
    worker ();
    Array.iter Domain.join spawned;
    match Atomic.get err with
    | Some (_, e) -> raise e
    | None -> Array.map (function Some v -> v | None -> assert false) out
  end

let map_list ?jobs ?batch f l =
  Array.to_list (map ?jobs ?batch f (Array.of_list l))
