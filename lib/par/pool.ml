let default_jobs () = Domain.recommended_domain_count ()

type stats = {
  claims : int Atomic.t;
  evaluated : int Atomic.t;
  skipped : int Atomic.t;
  per_worker : int Atomic.t array;
}

let make_stats ~jobs =
  if jobs < 1 then invalid_arg "Pool.make_stats: jobs must be >= 1";
  {
    claims = Atomic.make 0;
    evaluated = Atomic.make 0;
    skipped = Atomic.make 0;
    per_worker = Array.init jobs (fun _ -> Atomic.make 0);
  }

let stats_claims s = Atomic.get s.claims
let stats_evaluated s = Atomic.get s.evaluated
let stats_skipped s = Atomic.get s.skipped
let stats_per_worker s = Array.map Atomic.get s.per_worker
let bump a k = ignore (Atomic.fetch_and_add a k)

(* Record the minimum-index failure; CAS loop because two domains may
   fail concurrently. *)
let rec note_error err idx e =
  match Atomic.get err with
  | Some (i, _) when i <= idx -> ()
  | cur ->
    if not (Atomic.compare_and_set err cur (Some (idx, e))) then note_error err idx e

let map ?jobs ?(batch = 1) ?stats f a =
  let n = Array.length a in
  let jobs = match jobs with Some j -> j | None -> default_jobs () in
  if batch < 1 then invalid_arg "Pool.map: batch must be >= 1";
  if n = 0 then [||]
  else if jobs <= 1 || n = 1 then begin
    (match stats with
    | None -> ()
    | Some s ->
      bump s.claims 1;
      bump s.evaluated n;
      bump s.per_worker.(0) n);
    Array.map f a
  end
  else begin
    let out = Array.make n None in
    let next = Atomic.make 0 in
    let err = Atomic.make None in
    let worker wid () =
      (* Counters are worker-local refs, flushed to [stats] once on
         retirement: no shared-counter traffic in the claim loop, and
         nothing at all touched when [stats] is absent. *)
      let claims = ref 0 and evaluated = ref 0 and skipped = ref 0 in
      let live = ref true in
      while !live do
        let lo = Atomic.fetch_and_add next batch in
        if lo >= n then live := false
        else begin
          incr claims;
          for i = lo to min n (lo + batch) - 1 do
            (* A recorded error at index [j] makes every cell with a
               higher index dead: the output array is discarded once
               [err] is set, and only a lower-index failure can replace
               [j] in [note_error]. Skipping those cells still re-raises
               the minimum-index exception regardless of how domains
               interleaved, without evaluating work whose result cannot
               be observed. *)
            match Atomic.get err with
            | Some (j, _) when i > j -> incr skipped
            | _ -> (
              incr evaluated;
              match f a.(i) with
              | v -> out.(i) <- Some v
              | exception e -> note_error err i e)
          done
        end
      done;
      match stats with
      | None -> ()
      | Some s ->
        bump s.claims !claims;
        bump s.evaluated !evaluated;
        bump s.skipped !skipped;
        bump s.per_worker.(min wid (Array.length s.per_worker - 1)) !evaluated
    in
    let spawned =
      Array.init (min (jobs - 1) (n - 1)) (fun i -> Domain.spawn (worker (i + 1)))
    in
    worker 0 ();
    Array.iter Domain.join spawned;
    match Atomic.get err with
    | Some (_, e) -> raise e
    | None -> Array.map (function Some v -> v | None -> assert false) out
  end

let map_list ?jobs ?batch ?stats f l =
  Array.to_list (map ?jobs ?batch ?stats f (Array.of_list l))
