(** A hand-rolled work-distributing domain pool (OCaml 5 [Domain], no
    Domainslib).

    The pool model is a {e shared-counter work queue}: the input array
    is the queue, and an atomic next-index counter is the only shared
    scheduling state. Every worker — the calling domain plus up to
    [jobs - 1] spawned domains — claims a batch of consecutive indices
    with one [Atomic.fetch_and_add] and evaluates them; when the counter
    passes the end of the array the worker retires. This is effectively
    work stealing with a single global deque: a slow cell (say, a fault
    plan whose schedule shrinks for a long time) occupies one domain
    while the others drain the remaining cells, so load balance degrades
    gracefully without per-domain deques.

    Determinism contract: [map f a] writes [f a.(i)] into slot [i] of
    the result, so the {e output} is independent of how work was
    interleaved across domains — callers merge results in input order
    and obtain the sequential answer. The contract holds only if [f]
    itself is domain-safe: it must not mutate state shared between
    cells except through [Atomic] (see [docs/PARALLELISM.md]).

    Exceptions: if any cell raises, [map] re-raises the exception of the
    {e lowest} failing index after all workers retire — again the
    sequential behaviour, independent of interleaving. Once an error is
    recorded, cells with a {e higher} index are skipped rather than
    evaluated: their results could never be observed (the output array is
    discarded) and only a lower-index failure can displace the recorded
    one, so skipping preserves the minimum-index contract.

    Worker death: an exception escaping a worker {e outside} [f] (claim
    bookkeeping, stats flush, an allocation failure in the worker's own
    code) is contained the same way — recorded at sentinel index
    [Array.length a], past every genuine cell, so real cell errors take
    precedence and the spawned domains are always joined before anything
    is re-raised. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()] — the pool width used by the
    CLI's [--jobs] default. *)

type stats
(** Accumulating occupancy counters for {!map}. Off by default: a [map]
    without [?stats] touches no shared counters (workers keep local
    counts and the flush is skipped). A single [stats] value may be
    threaded through many [map] calls; counters only ever grow.

    The counts depend on how domains raced for the shared counter, so
    they are {e display-only} diagnostics — never part of a
    deterministic result or a JSONL export. *)

val make_stats : jobs:int -> stats
(** [jobs] sizes the per-worker histogram (worker 0 is the calling
    domain). It must cover the [jobs] of every {!map} the value is
    threaded through: {!map} size-checks at call time and raises rather
    than fold overflow workers into the last bucket.
    @raise Invalid_argument if [jobs < 1]. *)

val stats_claims : stats -> int
(** Batch claims (counter increments) across all workers. *)

val stats_evaluated : stats -> int
(** Cells actually evaluated. *)

val stats_skipped : stats -> int
(** Cells skipped because an error with a lower index was already
    recorded. *)

val stats_per_worker : stats -> int array
(** Cells evaluated per worker slot — the pool's load-balance picture.
    Slot [i] is exactly worker [i]'s count: {!map} refuses stats too
    small for its worker set, so no folding ever occurs. *)

val map : ?jobs:int -> ?batch:int -> ?stats:stats -> ('a -> 'b) -> 'a array -> 'b array
(** [map ~jobs ~batch f a] evaluates [f] on every element of [a] using
    up to [jobs] domains (default {!default_jobs}; [jobs <= 1] or a
    short array runs inline with no domains spawned) claiming [batch]
    indices per counter increment (default 1 — right for coarse cells
    like whole engine runs, where one claim per cell is noise; raise it
    only for micro-cells). Result slot [i] is [f a.(i)].
    @raise Invalid_argument if [stats] is sized for fewer workers than
    this call uses. *)

(**/**)

val worker_retire_test_hook : (int -> unit) option ref
(** Test-only: called with the worker id once per worker after its claim
    loop, inside the worker-death containment window. Used by the
    regression tests to simulate a worker dying outside [f]; must be
    reset to [None] afterwards. *)

(**/**)

val map_list : ?jobs:int -> ?batch:int -> ?stats:stats -> ('a -> 'b) -> 'a list -> 'b list
(** {!map} over a list, preserving order. *)
