(** A hand-rolled work-stealing domain pool (OCaml 5 [Domain], no
    Domainslib).

    The pool model: the input array is cut into {e chunks} of [grain]
    consecutive cells, and the chunks are block-partitioned across the
    workers — the calling domain plus up to [jobs - 1] spawned domains —
    in ascending order, one fixed-capacity Chase–Lev-style deque of
    chunk ids per worker. A worker drains its own deque from the bottom
    (plain loads plus one CAS only for the last element), so the common
    case touches {e no} shared scheduling state; a worker whose deque is
    empty steals from the {e top} of the other deques, round-robin, and
    backs off exponentially ([Domain.cpu_relax]) when a sweep finds
    every deque empty while chunks are still executing. The deques never
    grow — every chunk is seeded at creation — which removes the
    resize/ABA machinery of the full Chase–Lev algorithm.

    [grain] is the unit-of-work knob: one claim (and one potential
    steal) per [grain] cells. The default is automatic —
    [n / (jobs * 8)] clamped to [1 .. 256] — which keeps ~8 steal
    targets per worker for load balance while amortizing the handoff
    cost over many cells. Coarse cells (whole exploration subtrees,
    certification plans) want grain 1, which the auto rule picks for
    small [n]; micro-cells (individual engine runs in the thousands)
    get chunks of hundreds. See [docs/PARALLELISM.md] for tuning.

    Determinism contract: [map f a] writes [f a.(i)] into slot [i] of
    the result, so the {e output} is independent of how chunks were
    distributed or stolen — callers merge results in input order and
    obtain the sequential answer, at every [jobs] and every [grain].
    The contract holds only if [f] itself is domain-safe: it must not
    mutate state shared between cells except through [Atomic] (see
    [docs/PARALLELISM.md]).

    Exceptions: if any cell raises, [map] re-raises the exception of the
    {e lowest} failing index after all workers retire — again the
    sequential behaviour, independent of interleaving. Once an error is
    recorded, cells with a {e higher} index are skipped rather than
    evaluated: their results could never be observed (the output array is
    discarded) and only a lower-index failure can displace the recorded
    one, so skipping preserves the minimum-index contract.

    Worker death: an exception escaping a worker {e outside} [f] (claim
    bookkeeping, stats flush, an allocation failure in the worker's own
    code) is contained the same way — recorded at sentinel index
    [Array.length a], past every genuine cell, so real cell errors take
    precedence and the spawned domains are always joined before anything
    is re-raised. A dead worker's unclaimed chunks remain in its deque
    and are stolen by the survivors: no chunk is lost with its owner. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()] — the pool width used by the
    CLI's [--jobs] default. *)

type stats
(** Accumulating occupancy counters for {!map}. Off by default: a [map]
    without [?stats] touches no shared counters (workers keep local
    counts and the flush is skipped). A single [stats] value may be
    threaded through many [map] calls; counters only ever grow.

    The counts depend on how domains raced for chunks, so they are
    {e display-only} diagnostics — never part of a deterministic result
    or a JSONL export. *)

val make_stats : jobs:int -> stats
(** [jobs] sizes the per-worker histogram (worker 0 is the calling
    domain). It must cover the [jobs] of every {!map} the value is
    threaded through: {!map} size-checks at call time and raises rather
    than fold overflow workers into the last bucket.
    @raise Invalid_argument if [jobs < 1]. *)

val stats_claims : stats -> int
(** Chunks claimed (own-deque takes plus successful steals) across all
    workers. *)

val stats_steals : stats -> int
(** Chunks obtained by stealing from another worker's deque — the pool's
    load-imbalance signal. Zero means every worker stayed busy on its
    own block (or the run was inline). *)

val stats_evaluated : stats -> int
(** Cells actually evaluated. *)

val stats_skipped : stats -> int
(** Cells skipped because an error with a lower index was already
    recorded. *)

val stats_per_worker : stats -> int array
(** Cells evaluated per worker slot — the pool's load-balance picture.
    Slot [i] is exactly worker [i]'s count: {!map} refuses stats too
    small for its worker set, so no folding ever occurs. *)

val map : ?jobs:int -> ?grain:int -> ?stats:stats -> ('a -> 'b) -> 'a array -> 'b array
(** [map ~jobs ~grain f a] evaluates [f] on every element of [a] using
    up to [jobs] domains (default {!default_jobs}; [jobs <= 1] or a
    single-chunk array runs inline with no domains spawned), claiming
    [grain] consecutive cells per deque operation (default: automatic,
    see above). Result slot [i] is [f a.(i)].
    @raise Invalid_argument if [grain < 1], or if [stats] is sized for
    fewer workers than this call uses. *)

val map_scratch :
  ?jobs:int ->
  ?grain:int ->
  ?stats:stats ->
  make:(unit -> 's) ->
  ('s -> 'a -> 'b) ->
  'a array ->
  'b array
(** {!map} with a per-worker scratch value: [make ()] is called once per
    worker, {e on that worker's own domain} (so scratch buffers live in
    the evaluating domain's minor heap), and the result is passed to
    every cell the worker evaluates. This is the reuse hook for
    allocation-heavy cells — an exploration worker keeps one trace
    buffer and one decision stack for its thousands of engine runs
    instead of allocating fresh ones per run and paying cross-domain GC
    traffic. The scratch must not escape into results that outlive the
    call unless [f] severs the reference first (the explorer drops its
    buffer from the scratch when a counterexample escapes with it). *)

(**/**)

val worker_retire_test_hook : (int -> unit) option ref
(** Test-only: called with the worker id once per worker after its claim
    loop, inside the worker-death containment window. Used by the
    regression tests to simulate a worker dying outside [f]; must be
    reset to [None] afterwards. *)

(**/**)

val map_list : ?jobs:int -> ?grain:int -> ?stats:stats -> ('a -> 'b) -> 'a list -> 'b list
(** {!map} over a list, preserving order. *)
