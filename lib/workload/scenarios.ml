open Hwf_sim
open Hwf_core
open Hwf_check
open Hwf_adversary

type consensus_impl =
  | Fig3
  | Fig7 of { consensus_number : int }
  | Fig9 of { consensus_number : int }

type consensus_built = {
  scenario : Explore.scenario;
  last_outputs : unit -> int option array;
  last_decision : unit -> int option;
}

let all_finished (r : Engine.result) = Array.for_all Fun.id r.finished

let agreement_check ~n outputs (r : Engine.result) extra =
  if not (all_finished r) then Error "not all processes finished"
  else
    let outs = Array.map (function Some v -> v | None -> -1) outputs in
    let first = outs.(0) in
    if Array.exists (fun v -> v <> first) outs then
      Error (Fmt.str "disagreement: %a" Fmt.(Dump.array int) outs)
    else if first < 100 || first >= 100 + n then
      Error (Fmt.str "invalid decision %d" first)
    else extra ()

let consensus ~name ~impl ~quantum ~layout =
  let n = List.length layout in
  let config = Layout.to_config ~quantum layout in
  (match impl with
  | Fig3 ->
    if Layout.processors layout <> 1 then
      invalid_arg "Scenarios.consensus: Fig3 requires a uniprocessor layout"
  | Fig7 _ | Fig9 _ -> ());
  let latest = ref (Array.make n None) in
  let make () =
    let outputs = Array.make n None in
    latest := outputs;
    let decide =
      match impl with
      | Fig3 ->
        let obj = Uni_consensus.make (name ^ ".cons") in
        fun _pid v -> Uni_consensus.decide obj v
      | Fig7 { consensus_number } ->
        let obj = Multi_consensus.make ~config ~name:(name ^ ".mc") ~consensus_number () in
        fun pid v -> Multi_consensus.decide obj ~pid v
      | Fig9 { consensus_number } ->
        let obj = Fair_consensus.make ~config ~name:(name ^ ".fc") ~consensus_number in
        fun pid v -> Fair_consensus.decide obj ~pid v
    in
    let programs =
      Array.init n (fun pid () ->
          Eff.invocation "decide" (fun () -> outputs.(pid) <- Some (decide pid (100 + pid))))
    in
    let check r = agreement_check ~n outputs r (fun () -> Ok ()) in
    Explore.{ programs; check }
  in
  {
    scenario = Explore.{ name; config; make };
    last_outputs = (fun () -> !latest);
    last_decision =
      (fun () ->
        let o = !latest in
        match Array.to_list o |> List.filter_map Fun.id with
        | [] -> None
        | v :: rest -> if List.for_all (( = ) v) rest then Some v else None);
  }

type mc_summary = {
  finished : bool;
  agreed : bool;
  valid : bool;
  exhausted : int;
  access_failures : (int * int) list;
  af_same : (int * int) list;
  af_diff : (int * int) list;
  af_same_events : int;
  af_diff_events : int;
  deciding_level : int option;
  levels : int;
  statements : int;
  max_own_steps : int;
  well_formed : bool;
  trace : Trace.t;
}

let run_multi ?(step_limit = 3_000_000) ?observer ~quantum ~consensus_number ~layout
    ~policy () =
  let n = List.length layout in
  let config = Layout.to_config ~quantum layout in
  let obj = Multi_consensus.make ~config ~name:"mc" ~consensus_number () in
  let outputs = Array.make n None in
  let programs =
    Array.init n (fun pid () ->
        Eff.invocation "decide" (fun () ->
            outputs.(pid) <- Some (Multi_consensus.decide obj ~pid (100 + pid))))
  in
  let r = Engine.run ~step_limit ?observer ~config ~policy programs in
  let outs = Array.to_list outputs |> List.filter_map Fun.id in
  let distinct = List.sort_uniq compare outs in
  let af_same_events, af_diff_events = Multi_consensus.access_failure_events obj in
  {
    finished = all_finished r;
    agreed = List.length distinct <= 1;
    valid = List.for_all (fun v -> v >= 100 && v < 100 + n) distinct;
    exhausted = Multi_consensus.exhausted_proposals obj;
    access_failures = Multi_consensus.access_failures obj;
    af_same = fst (Multi_consensus.access_failures_classified obj);
    af_diff = snd (Multi_consensus.access_failures_classified obj);
    af_same_events;
    af_diff_events;
    deciding_level = Multi_consensus.first_deciding_level obj;
    levels = Multi_consensus.levels obj;
    statements = Trace.statements r.trace;
    max_own_steps = Array.fold_left max 0 r.own_steps;
    well_formed = Wellformed.is_well_formed r.trace;
    trace = r.trace;
  }

let adversarial_policies ~seeds ~var_prefix =
  (fun () -> Stagger.max_interleave ())
  :: List.concat_map
       (fun seed ->
         [
           (fun () -> Policy.random ~seed);
           (fun () -> Stagger.exhaustion_pressure ~seed ~var_prefix ());
           (fun () -> Stagger.delayed_wake ~seed ~wake_every:(40 + (seed mod 60)) ());
           (fun () ->
             (* staggering with random escapes: breaks the lockstep that
                pure max-interleave can settle into *)
             Policy.of_factory "stagger-mix" (fun () ->
                 let stagger = Policy.prepare (Stagger.max_interleave ()) in
                 fun v ->
                   let st = Random.State.make [| seed; v.Policy.step |] in
                   if Random.State.int st 4 = 0 then
                     Policy.prepare (Policy.random ~seed:(seed + v.Policy.step)) v
                   else stagger v));
         ])
       seeds

let violation (s : mc_summary) =
  (not s.finished) || (not s.agreed) || (not s.valid) || s.exhausted > 0

(* C&S scenarios *)

type cas_op = Cas of int * int | Rd

let pp_cas_op ppf = function
  | Cas (e, d) -> Fmt.pf ppf "C&S(%d,%d)" e d
  | Rd -> Fmt.pf ppf "Read"

let random_script ~seed ~n ~ops_per =
  let st = Random.State.make [| seed; 0xcabe |] in
  List.init n (fun pid ->
      List.init ops_per (fun k ->
          match Random.State.int st 3 with
          | 0 -> Rd
          | 1 -> Cas (0, (pid * 100) + k + 1)
          | _ ->
            Cas (Random.State.int st (n * 100), (pid * 100) + k + 51)))

let cas_spec =
  Lincheck.make_spec ~init:0 ~apply:(fun s op ->
      match op with
      | Cas (e, d) -> if s = e then (d, `Bool true) else (s, `Bool false)
      | Rd -> (s, `Val s))

let hybrid_cas ~name ~quantum ~layout ~script =
  if Layout.processors layout <> 1 then
    invalid_arg "Scenarios.hybrid_cas: uniprocessor layout required";
  let n = List.length layout in
  if List.length script <> n then invalid_arg "Scenarios.hybrid_cas: script/layout mismatch";
  let config = Layout.to_config ~quantum layout in
  let make () =
    let obj = Hybrid_cas.make ~config ~name:(name ^ ".o") ~init:0 in
    let hist = Hist.create () in
    let programs =
      Array.init n (fun pid () ->
          List.iter
            (fun op ->
              Eff.invocation "op" (fun () ->
                  match op with
                  | Cas (e, d) ->
                    ignore
                      (Hist.wrap hist ~pid op (fun () ->
                           `Bool (Hybrid_cas.cas obj ~pid ~expected:e ~desired:d)))
                  | Rd ->
                    ignore
                      (Hist.wrap hist ~pid op (fun () -> `Val (Hybrid_cas.read obj ~pid)))))
            (List.nth script pid))
    in
    let check r =
      if not (all_finished r) then Error "not all processes finished"
      else Lincheck.check_hist cas_spec hist
    in
    Explore.{ programs; check }
  in
  Explore.{ name; config; make }

type cas_summary = {
  cas_finished : bool;
  linearizable : bool;
  cas_stats : Hybrid_cas.stats;
  cas_well_formed : bool;
  cas_trace : Trace.t;
}

let run_cas ?(step_limit = 3_000_000) ?observer ~quantum ~layout ~script ~policy () =
  if Layout.processors layout <> 1 then
    invalid_arg "Scenarios.run_cas: uniprocessor layout required";
  let n = List.length layout in
  if List.length script <> n then invalid_arg "Scenarios.run_cas: script/layout mismatch";
  let config = Layout.to_config ~quantum layout in
  let obj = Hybrid_cas.make ~config ~name:"cas.o" ~init:0 in
  let hist = Hist.create () in
  let programs =
    Array.init n (fun pid () ->
        List.iter
          (fun op ->
            Eff.invocation "op" (fun () ->
                match op with
                | Cas (e, d) ->
                  ignore
                    (Hist.wrap hist ~pid op (fun () ->
                         `Bool (Hybrid_cas.cas obj ~pid ~expected:e ~desired:d)))
                | Rd ->
                  ignore (Hist.wrap hist ~pid op (fun () -> `Val (Hybrid_cas.read obj ~pid)))))
          (List.nth script pid))
  in
  let r = Engine.run ~step_limit ?observer ~config ~policy programs in
  {
    cas_finished = all_finished r;
    linearizable = Lincheck.check_hist cas_spec hist = Ok ();
    cas_stats = Hybrid_cas.stats obj;
    cas_well_formed = Wellformed.is_well_formed r.trace;
    cas_trace = r.trace;
  }

let q_cas ~name ~quantum ~n ~script =
  if List.length script <> n then invalid_arg "Scenarios.q_cas: script length mismatch";
  let layout = Layout.uniform ~processors:1 ~per_processor:n in
  let config = Layout.to_config ~quantum layout in
  let make () =
    let obj = Q_cas.make (name ^ ".o") 0 in
    let hist = Hist.create () in
    let programs =
      Array.init n (fun pid () ->
          List.iter
            (fun op ->
              Eff.invocation "op" (fun () ->
                  match op with
                  | Cas (e, d) ->
                    ignore
                      (Hist.wrap hist ~pid op (fun () ->
                           `Bool (Q_cas.cas obj ~who:pid ~expected:e ~desired:d)))
                  | Rd ->
                    ignore (Hist.wrap hist ~pid op (fun () -> `Val (Q_cas.read obj)))))
            (List.nth script pid))
    in
    let check r =
      if not (all_finished r) then Error "not all processes finished"
      else Lincheck.check_hist cas_spec hist
    in
    Explore.{ programs; check }
  in
  Explore.{ name; config; make }

(* Universal-construction scenarios *)

let queue_spec =
  Lincheck.make_spec ~init:([], []) ~apply:(fun st op ->
      match op with
      | `Enq x ->
        let f, b = st in
        ((f, x :: b), None)
      | `Deq -> (
        match st with
        | x :: f, b -> ((f, b), Some x)
        | [], b -> (
          match List.rev b with
          | x :: f -> ((f, []), Some x)
          | [] -> (([], []), None))))

let universal_queue ~name ~quantum ~consensus_number ~layout ~ops_per =
  let n = List.length layout in
  let config = Layout.to_config ~quantum layout in
  let make () =
    let factory = Wf_objects.multi_factory ~config ~consensus_number () in
    let q = Wf_objects.queue ~name:(name ^ ".q") ~n ~factory in
    let hist = Hist.create () in
    let programs =
      Array.init n (fun pid () ->
          for k = 0 to ops_per - 1 do
            Eff.invocation "enq" (fun () ->
                let v = (pid * 1000) + k in
                ignore
                  (Hist.wrap hist ~pid (`Enq v) (fun () ->
                       Wf_objects.enqueue q ~pid v;
                       None)))
          done;
          for _ = 0 to ops_per - 1 do
            Eff.invocation "deq" (fun () ->
                ignore (Hist.wrap hist ~pid `Deq (fun () -> Wf_objects.dequeue q ~pid)))
          done)
    in
    let check r =
      if not (all_finished r) then Error "not all processes finished"
      else Lincheck.check_hist queue_spec hist
    in
    Explore.{ programs; check }
  in
  Explore.{ name; config; make }

let universal_counter_uni ~name ~quantum ~pris =
  let n = List.length pris in
  let layout = List.map (fun p -> (0, p)) pris in
  let config = Layout.to_config ~quantum layout in
  let make () =
    let factory = Wf_objects.uni_factory () in
    let c = Wf_objects.counter ~name:(name ^ ".ctr") ~n ~factory in
    let results = Array.make n (-1) in
    let programs =
      Array.init n (fun pid () ->
          Eff.invocation "incr" (fun () -> results.(pid) <- Wf_objects.incr c ~pid))
    in
    let check r =
      if not (all_finished r) then Error "not all processes finished"
      else
        let sorted = Array.copy results in
        Array.sort compare sorted;
        if sorted = Array.init n (fun i -> i + 1) then Ok ()
        else Error (Fmt.str "counter results not 1..N: %a" Fmt.(Dump.array int) results)
    in
    Explore.{ programs; check }
  in
  Explore.{ name; config; make }
