(** The lint registry: one {!Hwf_lint.Lint.spec} per paper algorithm.

    Each spec pairs a workload (the same bodies the scenarios and the
    wait-freedom certifier run) with the theorem preconditions the rest
    of the repository asserts about it — the same constants
    ({!Hwf_core.Bounds.fig5_stmt_const} etc.) that size the certifier's
    own-step bounds, so the linter and [Hwf_faults.Suite] cannot drift
    apart:

    - [fig3] — Theorem 1: exactly
      {!Hwf_core.Uni_consensus.statements_per_decide} statements per
      decide, [Q >= 8];
    - [fig5] — Theorem 2: at most [c.V] statements per operation,
      [Q >= c] with [c = Bounds.fig5_stmt_const];
    - [fig7] — Theorem 4: at most [c.L] statements per decide,
      [Q >= max (2c) (c(2P+1-C))] with [c = Bounds.fig7_stmt_const];
    - [fig9] — Sec. 5: helping-based, no static per-invocation bound
      (linted under fair schedules only);
    - [universal] — counter over Fig. 3 cells: at most [c.N] statements
      per increment, [Q >= 8] per cell. *)

val fig3 : unit -> Hwf_lint.Lint.spec
val fig5 : unit -> Hwf_lint.Lint.spec
val fig7 : unit -> Hwf_lint.Lint.spec
val fig9 : unit -> Hwf_lint.Lint.spec
val universal : unit -> Hwf_lint.Lint.spec

val all : unit -> Hwf_lint.Lint.spec list
(** Every registered spec, in a fixed order. *)

val names : string list
(** The registered names, matching {!find}. *)

val find : string -> Hwf_lint.Lint.spec option
