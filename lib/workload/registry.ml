open Hwf_sim
open Hwf_core
open Hwf_adversary
open Hwf_lint

let programs_of (s : Explore.scenario) () = (s.Explore.make ()).Explore.programs

let fig3 () =
  let layout = Layout.uniform ~processors:1 ~per_processor:3 in
  let b =
    Scenarios.consensus ~name:"fig3" ~impl:Scenarios.Fig3
      ~quantum:Bounds.uniprocessor_consensus_quantum ~layout
  in
  {
    Lint.name = "fig3";
    config = b.Scenarios.scenario.Explore.config;
    make = programs_of b.Scenarios.scenario;
    expect = Checks.Exact Uni_consensus.statements_per_decide;
    min_quantum = Bounds.uniprocessor_consensus_quantum;
    theorem = "Theorem 1";
    fair_only = false;
    step_limit = 100_000;
  }

let fig5 () =
  let layout = [ (0, 1); (0, 2); (0, 3) ] in
  let v = Layout.levels layout in
  let script = Scenarios.random_script ~seed:5 ~n:(List.length layout) ~ops_per:2 in
  let s = Scenarios.hybrid_cas ~name:"fig5" ~quantum:600 ~layout ~script in
  {
    Lint.name = "fig5";
    config = s.Explore.config;
    make = programs_of s;
    expect = Checks.At_most (Bounds.fig5_stmt_const * v);
    min_quantum = Bounds.fig5_stmt_const;
    theorem = "Theorem 2";
    fair_only = false;
    step_limit = 100_000;
  }

let fig7 () =
  let layout = Layout.uniform ~processors:2 ~per_processor:2 in
  let consensus_number = 2 in
  let b =
    Scenarios.consensus ~name:"fig7"
      ~impl:(Scenarios.Fig7 { consensus_number })
      ~quantum:4000 ~layout
  in
  let config = b.Scenarios.scenario.Explore.config in
  let p = config.Config.processors in
  let k = min consensus_number (2 * p) - p in
  let l = Bounds.levels ~m:(Config.max_per_processor config) ~p ~k in
  {
    Lint.name = "fig7";
    config;
    make = programs_of b.Scenarios.scenario;
    expect = Checks.At_most (Bounds.fig7_stmt_const * l);
    min_quantum =
      (match Bounds.universal_quantum ~c:Bounds.fig7_stmt_const ~p ~consensus_number with
      | Some q -> q
      | None -> invalid_arg "Registry.fig7: consensus_number < processors");
    theorem = "Theorem 4";
    fair_only = false;
    step_limit = 200_000;
  }

let fig9 () =
  let layout = Layout.uniform ~processors:2 ~per_processor:2 in
  let b =
    Scenarios.consensus ~name:"fig9"
      ~impl:(Scenarios.Fig9 { consensus_number = 2 })
      ~quantum:4000 ~layout
  in
  {
    Lint.name = "fig9";
    config = b.Scenarios.scenario.Explore.config;
    make = programs_of b.Scenarios.scenario;
    expect = Checks.Helping;
    min_quantum = 1;
    theorem = "Sec. 5 (fair scheduling)";
    fair_only = true;
    step_limit = 200_000;
  }

let universal () =
  let pris = [ 1; 1; 1 ] in
  let s = Scenarios.universal_counter_uni ~name:"universal" ~quantum:3000 ~pris in
  {
    Lint.name = "universal";
    config = s.Explore.config;
    make = programs_of s;
    expect = Checks.At_most (Bounds.universal_stmt_const * List.length pris);
    min_quantum = Bounds.uniprocessor_consensus_quantum;
    theorem = "Theorem 1 (per consensus cell)";
    fair_only = false;
    step_limit = 100_000;
  }

let all () = [ fig3 (); fig5 (); fig7 (); fig9 (); universal () ]

let names = [ "fig3"; "fig5"; "fig7"; "fig9"; "universal" ]

let find name =
  match name with
  | "fig3" -> Some (fig3 ())
  | "fig5" -> Some (fig5 ())
  | "fig7" -> Some (fig7 ())
  | "fig9" -> Some (fig9 ())
  | "universal" -> Some (universal ())
  | _ -> None
