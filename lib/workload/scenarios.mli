(** Ready-made experiment scenarios.

    Each builder packages a machine shape, process programs and a
    correctness verdict into an {!Hwf_adversary.Explore.scenario}, so the
    same workload can be model-checked, random-tested, probed for
    bivalence or run once under a chosen policy. These are the workloads
    behind experiments E1–E12 (DESIGN.md). *)

open Hwf_adversary

(** {1 Consensus scenarios} *)

type consensus_impl =
  | Fig3  (** Uniprocessor read/write consensus (Theorem 1). *)
  | Fig7 of { consensus_number : int }  (** Multiprocessor (Theorem 4). *)
  | Fig9 of { consensus_number : int }  (** Fair-scheduling variant (Sec. 5). *)

type consensus_built = {
  scenario : Explore.scenario;
  last_outputs : unit -> int option array;
      (** Per-pid decisions of the most recent instance. *)
  last_decision : unit -> int option;
      (** The common decision of the most recent instance, if all
          finished processes agreed; [None] otherwise. For
          {!Hwf_adversary.Bivalence.probe}. *)
}

val consensus :
  name:string -> impl:consensus_impl -> quantum:int -> layout:Layout.t -> consensus_built
(** Every process proposes [100 + pid] once; the verdict demands that all
    processes finish, agree, and decide a proposed value (and, for Fig7,
    that no [C]-consensus object was exhausted — which the Theorem 4
    quantum guarantees). *)

(** {1 One-shot multiprocessor consensus run with full statistics} *)

type mc_summary = {
  finished : bool;
  agreed : bool;
  valid : bool;  (** Decision is one of the proposed inputs. *)
  exhausted : int;  (** Proposals that hit an exhausted object. *)
  access_failures : (int * int) list;
  af_same : (int * int) list;  (** Same-priority access failures. *)
  af_diff : (int * int) list;  (** Different-priority access failures. *)
  af_same_events : int;
      (** Total same-priority AF observations (every event, not just
          distinct sites) — reported against the Lemma 3 envelope. *)
  af_diff_events : int;  (** Total different-priority AF observations. *)
  deciding_level : int option;
  levels : int;  (** The instance's [L]. *)
  statements : int;  (** Total statements of the run. *)
  max_own_steps : int;  (** Worst per-process statement count. *)
  well_formed : bool;
  trace : Hwf_sim.Trace.t;  (** The full history, for structured export. *)
}

val run_multi :
  ?step_limit:int ->
  ?observer:(Hwf_sim.Trace.event -> unit) ->
  quantum:int ->
  consensus_number:int ->
  layout:Layout.t ->
  policy:Hwf_sim.Policy.t ->
  unit ->
  mc_summary
(** One Fig. 7 consensus execution under [policy], with the measurements
    used by experiments E1 and E5–E7. [observer] is passed through to
    {!Hwf_sim.Engine.run} (live metrics collection). *)

val adversarial_policies :
  seeds:int list -> var_prefix:string -> (unit -> Hwf_sim.Policy.t) list
(** The adversary battery shared by experiments E1 and E6: the
    lower-bound staggering schedule, seeded random schedules, rmw-
    triggered exhaustion pressure against variables under [var_prefix],
    and a stagger/random mix. Each element builds a fresh policy. *)

val violation : mc_summary -> bool
(** True when the run violated its contract: not finished, disagreement,
    invalid value, or an exhausted [C]-consensus object. *)

(** {1 C&S linearizability scenarios (Theorem 2 / E4)} *)

type cas_op = Cas of int * int | Rd

val pp_cas_op : cas_op Fmt.t

val cas_spec : (cas_op, [ `Bool of bool | `Val of int ]) Hwf_check.Lincheck.spec
(** The sequential C&S specification shared by the scenario verdicts.
    Exported so fault-injection campaigns can re-check histories of
    partially crashed runs with
    {!Hwf_check.Lincheck.check_with_pending}. *)

val random_script : seed:int -> n:int -> ops_per:int -> cas_op list list
(** A deterministic mixed CAS/read workload, one op list per pid. *)

val hybrid_cas :
  name:string -> quantum:int -> layout:Layout.t -> script:cas_op list list ->
  Explore.scenario
(** Fig. 5 object exercised by [script]; verdict = all finished and the
    recorded history is linearizable against the sequential C&S spec.
    The layout must be uniprocessor. *)

type cas_summary = {
  cas_finished : bool;
  linearizable : bool;
  cas_stats : Hwf_core.Hybrid_cas.stats;
      (** The Fig. 5 access-failure tap, for measured-vs-Lemma-2
          reporting. *)
  cas_well_formed : bool;
  cas_trace : Hwf_sim.Trace.t;
}

val run_cas :
  ?step_limit:int ->
  ?observer:(Hwf_sim.Trace.event -> unit) ->
  quantum:int ->
  layout:Layout.t ->
  script:cas_op list list ->
  policy:Hwf_sim.Policy.t ->
  unit ->
  cas_summary
(** One Fig. 5 C&S/read execution under [policy] — the one-shot
    counterpart of {!hybrid_cas} that keeps the object visible so its
    {!Hwf_core.Hybrid_cas.stats} can be reported ([hybridsim stats]).
    The layout must be uniprocessor. *)

val q_cas :
  name:string -> quantum:int -> n:int -> script:cas_op list list -> Explore.scenario
(** Same verdict for the {!Hwf_core.Q_cas} object (single priority level,
    its contract). *)

(** {1 Universal-construction scenarios (E10)} *)

val universal_queue :
  name:string ->
  quantum:int ->
  consensus_number:int ->
  layout:Layout.t ->
  ops_per:int ->
  Explore.scenario
(** Every process enqueues [ops_per] stamped values then dequeues
    [ops_per] times on a queue built over Fig. 7 consensus; verdict =
    linearizable FIFO behaviour. *)

val universal_counter_uni :
  name:string -> quantum:int -> pris:int list -> Explore.scenario
(** Counter over Fig. 3 consensus on a hybrid uniprocessor: every process
    increments once; verdict = final count equals N and all increment
    results are distinct. *)
