(** Fig. 5: wait-free compare-and-swap (and read) for hybrid-scheduled
    uniprocessors, from reads and writes only, in O(V) time (Theorem 2).

    The object is Herlihy's append-to-a-list construction specialized to
    C&S: a linked list of cells, one per {e successful} non-trivial C&S;
    the [nxt] pointers are read/write consensus objects (Fig. 3). Per
    priority level there is one head variable [Hd[i]]; finding the head
    is an O(V) scan guided by the invariant that some same-or-higher
    [Hd[i]] points to the head or to the cell one behind it. Cell memory
    is bounded: each process owns [4N+2] cells and picks a fresh tag per
    operation with the constant-time tag-selection rule of [Anderson &
    Moir, PODC '95] (exclude the last [2N] tags read from the feedback
    matrix [A], the last [2N] tags selected, and the tag of the last cell
    appended).

    [Hd] variables are updated only by processes of their own level,
    using the quantum-based C&S of {!Q_cas}; see DESIGN.md Substitution 2
    for the one deviation from the paper (reads of [Hd] cost O(1 + lag)
    statements instead of a single load; they remain linearizable and
    read-only, so cross-level reads stay safe).

    Interpretation notes (the published listing is an extended abstract):
    - line 42's early exit fires after the process has already won the
      [nxt] consensus at line 37, so it returns [true] (success), not
      [false]: the operation is linearized, only the head bookkeeping is
      skipped because a successor is already in place;
    - lines 17/20 read the head cell's [nxt] consensus once and reuse the
      value (it is stable once decided).

    A C&S that would not change the state ("trivial", [expected = actual]
    with [expected = desired]) returns without appending (lines 26–27).

    Correctness is established empirically in this reproduction:
    linearizability of concurrent [cas]/[read] histories is model-checked
    and volume-tested in the E4 experiment and the test suite. *)

type 'a t

val make : config:Hwf_sim.Config.t -> name:string -> init:'a -> 'a t
(** The [config] supplies the process table (N, priorities, V). All
    accessing processes must be on one processor. *)

val cas : 'a t -> pid:int -> expected:'a -> desired:'a -> bool
(** The C&S procedure (Fig. 5 lines 8–45). A [false] may also be
    returned when a concurrent successful C&S is detected, which is
    always linearizable (the concurrent operation moved the value away
    from [expected], or this operation may be ordered after it). *)

val read : 'a t -> pid:int -> 'a
(** The Read procedure (Fig. 5 lines 46–62). *)

val appends : 'a t -> int
(** Harness inspection: cells successfully appended (successful
    non-trivial C&S operations) so far. Not a statement. *)

type stats = {
  af_diff : int;
      (** Feedback line-5 aborts: a {e higher}-priority [Hd] changed
          between the read and the recheck. Lemma 2 bounds these at [M]
          per operation. *)
  af_same : int;
      (** Feedback lines 6–7: a {e same}-priority [Hd] changed and the
          operation re-read it (quantum-protected retry). *)
  scan_failures : int;
      (** Line-25 fallthroughs: a whole C&S scan completed without
          finding the head — the operation was preempted throughout and
          linearizes as a failed C&S. *)
  worst_af_diff : int;  (** Max [af_diff] of any single operation. *)
  worst_af_same : int;  (** Max [af_same] of any single operation. *)
  ops : int;  (** Completed [cas] + [read] operations. *)
  appends : int;  (** As {!appends}. *)
}

val stats : 'a t -> stats
(** The access-failure tap behind [hybridsim stats]: measured
    access-failure counts to report against the Lemma 2 envelope
    ([worst_af_diff <= M]). Counter updates are plain OCaml bookkeeping,
    not simulated statements — reading them does not perturb the
    schedule space. *)
