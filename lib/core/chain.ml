open Hwf_sim

type ('s, 'op, 'r) t = {
  name : string;
  init : 's;
  apply : 's -> 'op -> 's * 'r;
  slots : (int * int * 'op) Uni_consensus.t Vec.t;
  vals : 's option Shared.t Vec.t;
  ver : int Shared.t;
  seqs : (int, int ref) Hashtbl.t;  (* private per-process op counters *)
  mutable max_attempts : int;
}

(* find_current (~4 stmts) + decide (8) + two writes + locals *)
let statements_per_attempt_hint = 16

let val_cell t k =
  while Vec.length t.vals <= k do
    Vec.push t.vals
      (Shared.make (Printf.sprintf "%s.val[%d]" t.name (Vec.length t.vals)) None)
  done;
  Vec.get t.vals k

let slot_cell t k =
  while Vec.length t.slots <= k do
    Vec.push t.slots
      (Uni_consensus.make (Printf.sprintf "%s.slot[%d]" t.name (Vec.length t.slots)))
  done;
  Vec.get t.slots k

let make ~name ~init ~apply =
  let t =
    {
      name;
      init;
      apply;
      slots = Vec.create ();
      vals = Vec.create ();
      ver = Shared.make (name ^ ".ver") 0;
      seqs = Hashtbl.create 8;
      max_attempts = 0;
    }
  in
  (* Initialization-before-publication: objects may be built lazily from
     inside process code (e.g. fresh consensus cells mid-operation), and
     seeding a cell nobody else can reach yet is not a shared access in
     the model's sense. *)
  Runtime.instrumentation (fun () -> Shared.poke (val_cell t 0) (Some init));
  t

(* Scan from the version hint to the first undecided slot, replaying
   decided operations. The hint is monotone-safe: it is only ever
   written after the corresponding state-log entry (program order of the
   unique winner), and stale writes can only lower it. *)
let find_current t =
  let k0 = Shared.read t.ver in
  let s0 =
    match Shared.read (val_cell t k0) with
    | Some s -> s
    | None -> assert false (* ver is written only after vals.(ver) *)
  in
  let k = ref k0 and s = ref s0 in
  let scanning = ref true in
  while !scanning do
    match Uni_consensus.read (slot_cell t !k) with
    | None -> scanning := false
    | Some (_, _, op) ->
      let s', _ = t.apply !s op in
      s := s';
      incr k
  done;
  (!k, !s)

let next_seq t ~who =
  match Hashtbl.find_opt t.seqs who with
  | Some r ->
    incr r;
    !r
  | None ->
    Hashtbl.add t.seqs who (ref 0);
    0

let invoke t ~who op =
  let seq = next_seq t ~who in
  let rec attempt n =
    let k, s = find_current t in
    Eff.local (t.name ^ ".propose");
    let winner_who, winner_seq, _winner_op =
      Uni_consensus.decide (slot_cell t k) (who, seq, op)
    in
    if winner_who = who && winner_seq = seq then begin
      let s', r = t.apply s op in
      Shared.write (val_cell t (k + 1)) (Some s');
      Shared.write t.ver (k + 1);
      if n > t.max_attempts then t.max_attempts <- n;
      r
    end
    else attempt (n + 1)
  in
  attempt 1

let read t =
  let _, s = find_current t in
  s

let peek_state t =
  let rec loop k s =
    match Uni_consensus.peek (slot_cell t k) with
    | None -> s
    | Some (_, _, op) -> loop (k + 1) (fst (t.apply s op))
  in
  loop 0 t.init

let ops_count t =
  let rec loop k =
    match Uni_consensus.peek (slot_cell t k) with None -> k | Some _ -> loop (k + 1)
  in
  loop 0

let max_attempts t = t.max_attempts
