open Hwf_sim
open Hwf_objects

(* Port[i,v] is advanced with both F&I (line 23/25) and C&S (lines 9/21),
   so its chain state machine supports both operations. *)
type port_op = Fetch_inc | Port_cas of int * int

type 'a t = {
  name : string;
  config : Config.t;
  c : int;
  k : int;
  l : int;
  numports : int array;  (* per processor *)
  outval : 'a option Shared.t array array;  (* [P][0..L]; index 0 unused *)
  lastpub : int Q_cas.t array array;  (* [P][V] *)
  port : (int, port_op, int) Chain.t array array;  (* [P][V]; state = next port *)
  elections : int Uni_consensus.t Vec.t array;  (* [P], per port, lazy *)
  cons : 'a Cons_obj.t array;  (* [L] *)
  (* harness statistics *)
  mutable exhausted : int;
  af : (int * int, [ `Same | `Diff | `Both ]) Hashtbl.t;
      (* (processor, level) pairs observed inaccessible-yet-unpublished
         at input-determination time — the paper's access failures —
         classified by the observer's priority vs the parked claimant's
         (same-priority / different-priority, Sec. 4.2) *)
  claimants : (int * int, int) Hashtbl.t;  (* (processor, level) -> last claimant pid *)
  (* every AF observation, not just distinct (processor, level) sites —
     the totals the observability layer exports *)
  mutable af_same_events : int;
  mutable af_diff_events : int;
  returned : 'a Vec.t;
}

let apply_port s = function
  | Fetch_inc -> (s + 1, s)
  | Port_cas (e, d) -> if s = e then (d, 1) else (s, 0)

let make ?levels_override ~config ~name ~consensus_number () =
  let p = config.Config.processors in
  if consensus_number < p then
    invalid_arg "Multi_consensus.make: consensus_number < processors";
  let k = min consensus_number (2 * p) - p in
  let m = max 1 (Config.max_per_processor config) in
  let l =
    match levels_override with
    | Some l ->
      if l < 1 then invalid_arg "Multi_consensus.make: levels_override < 1";
      l
    | None -> Bounds.levels ~m ~p ~k
  in
  let v = config.Config.levels in
  {
    name;
    config;
    c = consensus_number;
    k;
    l;
    numports = Array.init p (fun i -> Bounds.ports_per_processor ~p ~k ~processor:i);
    outval =
      Array.init p (fun i ->
          Array.init (l + 1) (fun lev ->
              Shared.make (Printf.sprintf "%s.Outval[%d][%d]" name (i + 1) lev) None));
    lastpub =
      Array.init p (fun i ->
          Array.init v (fun w ->
              Q_cas.make (Printf.sprintf "%s.Lastpub[%d][%d]" name (i + 1) (w + 1)) 0));
    port =
      Array.init p (fun i ->
          Array.init v (fun w ->
              Chain.make
                ~name:(Printf.sprintf "%s.Port[%d][%d]" name (i + 1) (w + 1))
                ~init:1 ~apply:apply_port));
    elections = Array.init p (fun _ -> Vec.create ());
    cons =
      Array.init l (fun lev ->
          Cons_obj.make ~consensus_number
            (Printf.sprintf "%s.Cons[%d]" name (lev + 1)));
    exhausted = 0;
    af = Hashtbl.create 32;
    claimants = Hashtbl.create 32;
    af_same_events = 0;
    af_diff_events = 0;
    returned = Vec.create ();
  }

let election t i port =
  let v = t.elections.(i) in
  while Vec.length v < port do
    Vec.push v
      (Uni_consensus.make
         (Printf.sprintf "%s.elect[%d][%d]" t.name (i + 1) (Vec.length v + 1)))
  done;
  Vec.get v (port - 1)

let levels t = t.l
let k t = t.k

let return_value t r =
  Vec.push t.returned r;
  r

(* Fig. 7, procedure decide(val). Line numbers follow the paper. *)
let decide t ~pid input0 =
  let i = t.config.Config.procs.(pid).Proc.processor in
  let v = t.config.Config.procs.(pid).Proc.priority in
  let lastpub_v = t.lastpub.(i).(v - 1) in
  let port_v = t.port.(i).(v - 1) in
  match Shared.read t.outval.(i).(t.l) (* line 1 *) with
  | Some r ->
    Eff.local (t.name ^ ".2");
    return_value t r (* line 2 *)
  | None ->
    Eff.local (t.name ^ ".3");
    let numports = t.numports.(i) (* line 3 *) in
    Eff.local (t.name ^ ".4");
    let input = ref input0 and prevlevel = ref 0 and level = ref 0 (* line 4 *) in
    (* lines 5-13: lower-priority processes may have made progress *)
    for w = 1 to v - 1 do
      let lowerport = Chain.read t.port.(i).(w - 1) (* line 6 *) in
      let port = Chain.read port_v (* line 7 *) in
      Eff.local (t.name ^ ".8");
      if lowerport > port (* line 8 *) then
        ignore (Chain.invoke port_v ~who:pid (Port_cas (port, lowerport))) (* line 9 *);
      let lowerpublevel = Q_cas.read t.lastpub.(i).(w - 1) (* line 10 *) in
      let publevel = Q_cas.read lastpub_v (* line 11 *) in
      Eff.local (t.name ^ ".12");
      if lowerpublevel > publevel (* line 12 *) then
        ignore
          (Q_cas.cas lastpub_v ~who:pid ~expected:publevel ~desired:lowerpublevel)
        (* line 13 *)
    done;
    let result = ref None in
    while !result = None && !level <= t.l (* line 14 *) do
      (match Shared.read t.outval.(i).(t.l) (* line 15 *) with
      | Some r ->
        Eff.local (t.name ^ ".16");
        result := Some r (* line 16 *)
      | None ->
        let port = Chain.read port_v (* line 17 *) in
        Eff.local (t.name ^ ".18");
        level := ((port - 1) / numports) + 1 (* line 18 *);
        let claimed_port =
          Eff.local (t.name ^ ".19");
          if !prevlevel = !level (* line 19 *) then begin
            Eff.local (t.name ^ ".20");
            let newport = port + numports (* line 20 *) in
            if Chain.invoke port_v ~who:pid (Port_cas (port, newport + 1)) = 1
               (* line 21 *)
            then begin
              Eff.local (t.name ^ ".22");
              newport (* line 22 *)
            end
            else Chain.invoke port_v ~who:pid Fetch_inc (* line 23 *)
          end
          else Chain.invoke port_v ~who:pid Fetch_inc (* line 25 *)
        in
        Eff.local (t.name ^ ".26");
        level := ((claimed_port - 1) / numports) + 1 (* line 26 *);
        (* Access-failure instrumentation (Sec. 4.2): at this moment every
           port of every level below [level] on this processor has been
           claimed; any such level still without a published output is an
           access failure, classified same-/different-priority by the
           observer vs the parked claimant. Harness-only peeks, inside a
           Runtime.instrumentation bracket: exempt from the process-code
           guard and invisible to the conformance linter. *)
        Runtime.instrumentation (fun () ->
            for l = 1 to min !level t.l - 1 do
              if Shared.peek t.outval.(i).(l) = None then begin
                let cls =
                  match Hashtbl.find_opt t.claimants (i, l) with
                  | Some claimant
                    when t.config.Config.procs.(claimant).Proc.priority = v ->
                    `Same
                  | Some _ -> `Diff
                  | None -> `Diff (* ports consumed but never election-claimed *)
                in
                (match cls with
                | `Same -> t.af_same_events <- t.af_same_events + 1
                | `Diff -> t.af_diff_events <- t.af_diff_events + 1
                | `Both -> assert false (* fresh classification is never merged *));
                let cls =
                  match Hashtbl.find_opt t.af (i, l) with
                  | None -> cls
                  | Some prev when prev = cls -> cls
                  | Some _ -> `Both
                in
                Hashtbl.replace t.af (i, l) cls
              end
            done);
        let publevel = Q_cas.read lastpub_v (* line 27 *) in
        Eff.local (t.name ^ ".28");
        if publevel <> 0 then begin
          match Shared.read t.outval.(i).(publevel) (* line 28 *) with
          | Some out -> input := out
          | None -> assert false (* Outval is written before Lastpub advances *)
        end;
        if !level <= t.l (* line 29 *) then begin
          (* line 30: at most one process may use each port *)
          if Uni_consensus.decide (election t i claimed_port) pid = pid then begin
            Hashtbl.replace t.claimants (i, !level) pid;
            let output =
              match Cons_obj.propose t.cons.(!level - 1) !input (* line 31 *) with
              | Some out -> out
              | None ->
                (* Exhausted object: no useful information (only possible
                   below the Theorem 3 quantum threshold). *)
                t.exhausted <- t.exhausted + 1;
                !input
            in
            Shared.write t.outval.(i).(!level) (Some output) (* line 32 *);
            ignore (Q_cas.cas lastpub_v ~who:pid ~expected:publevel ~desired:!level)
            (* line 33 *)
          end;
          Eff.local (t.name ^ ".34");
          prevlevel := !level (* line 34 *)
        end)
    done;
    (match !result with
    | Some r -> return_value t r
    | None -> (
      let publevel = Q_cas.read lastpub_v (* line 35 *) in
      match
        if publevel = 0 then None else Shared.read t.outval.(i).(publevel)
        (* line 36 *)
      with
      | Some r -> return_value t r
      | None ->
        (* Unreachable when the quantum assumption holds; return own input
           so under-quantum adversarial runs terminate (E6 detects the
           disagreement). *)
        return_value t !input))

let exhausted_proposals t = t.exhausted

let access_failures t =
  Hashtbl.fold (fun key _ acc -> key :: acc) t.af [] |> List.sort compare

let access_failures_classified t =
  Hashtbl.fold
    (fun (i, l) cls (same, diff) ->
      match cls with
      | `Same -> ((i, l) :: same, diff)
      | `Diff -> (same, (i, l) :: diff)
      | `Both -> ((i, l) :: same, (i, l) :: diff))
    t.af ([], [])
  |> fun (same, diff) -> (List.sort compare same, List.sort compare diff)

let access_failure_events t = (t.af_same_events, t.af_diff_events)

let first_deciding_level t =
  let af = access_failures t in
  let failed_levels = List.map snd af |> List.sort_uniq compare in
  let rec find lev =
    if lev > t.l then None
    else if List.mem lev failed_levels then find (lev + 1)
    else Some lev
  in
  find 1

let decisions_agree t =
  match Vec.to_list t.returned with
  | [] -> true
  | r :: rest -> List.for_all (fun x -> x = r) rest
