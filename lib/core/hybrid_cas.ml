open Hwf_sim

(* ptrtype: identifies a list cell. *)
type ptr = { id : int; tag : int }

(* hdtype: stored in one word; (id, tag) identify a cell, [last] is the
   pid of the last process to claim this Hd variable. *)
type hd = { hid : int; htag : int; last : int }

type 'a cell = { value : 'a Shared.t; nxt : ptr Uni_consensus.t Shared.t }

(* Private variables, retained across invocations (Fig. 5 caption). *)
type pstate = {
  mutable j : int;  (* 0-based cursor into A's rows *)
  mutable lasttag : int;
  reads : int Queue.t;  (* last 2N tags read *)
  selected : int Queue.t;  (* last 2N tags selected *)
  (* access failures observed by the operation in progress *)
  mutable op_diff : int;
  mutable op_same : int;
}

type stats = {
  af_diff : int;
  af_same : int;
  scan_failures : int;
  worst_af_diff : int;
  worst_af_same : int;
  ops : int;
  appends : int;
}

type 'a t = {
  name : string;
  n : int;  (* N, real processes *)
  v : int;  (* V, priority levels *)
  priority : int -> int;  (* pid (or pseudo-id N) -> level *)
  cells : 'a cell array array;  (* (N+1) x (4N+2); row N = initial cell owner *)
  hd : hd Q_cas.t array;  (* per level *)
  a : int Shared.t array array;  (* 2N x V tag-feedback matrix *)
  seen : 'a Shared.t array;  (* per level *)
  pstates : (int, pstate) Hashtbl.t;
  mutable appends : int;  (* harness statistic *)
  (* access-failure tap (Lemma 2): totals plus the worst single
     operation, updated as operations complete. Plain bookkeeping, not
     statements. *)
  mutable af_diff : int;
  mutable af_same : int;
  mutable scan_failures : int;
  mutable worst_af_diff : int;
  mutable worst_af_same : int;
  mutable ops : int;
}

let tag_space n = (4 * n) + 2

let make ~config ~name ~init =
  let n = Config.n config in
  let v = config.Config.levels in
  let priority pid =
    if pid = n then 1 else config.Config.procs.(pid).Proc.priority
  in
  let fresh_nxt owner tag =
    Uni_consensus.make (Printf.sprintf "%s.Cell[%d][%d].nxt" name owner tag)
  in
  let cells =
    Array.init (n + 1) (fun owner ->
        Array.init (tag_space n) (fun tag ->
            {
              value =
                Shared.make (Printf.sprintf "%s.Cell[%d][%d].val" name owner tag) init;
              nxt =
                Shared.make
                  (Printf.sprintf "%s.Cell[%d][%d].nxt" name owner tag)
                  (fresh_nxt owner tag);
            }))
  in
  (* "We assume the list is initialized as if some process had previously
     performed a successful C&S in isolation": a pseudo-process (id N,
     priority 1) owns the initial cell (N, 0); every Hd points at it. *)
  let initial = { hid = n; htag = 0; last = n } in
  let hd =
    Array.init v (fun i -> Q_cas.make (Printf.sprintf "%s.Hd[%d]" name (i + 1)) initial)
  in
  let a =
    Array.init (2 * n) (fun q ->
        Array.init v (fun i ->
            Shared.make (Printf.sprintf "%s.A[%d][%d]" name (q + 1) (i + 1)) 0))
  in
  let seen =
    Array.init v (fun i -> Shared.make (Printf.sprintf "%s.Seen[%d]" name (i + 1)) init)
  in
  {
    name;
    n;
    v;
    priority;
    cells;
    hd;
    a;
    seen;
    pstates = Hashtbl.create 8;
    appends = 0;
    af_diff = 0;
    af_same = 0;
    scan_failures = 0;
    worst_af_diff = 0;
    worst_af_same = 0;
    ops = 0;
  }

let pstate t pid =
  match Hashtbl.find_opt t.pstates pid with
  | Some s -> s
  | None ->
    let s =
      {
        j = 0;
        lasttag = -1;
        reads = Queue.create ();
        selected = Queue.create ();
        op_diff = 0;
        op_same = 0;
      }
    in
    Hashtbl.add t.pstates pid s;
    s

let begin_op st =
  st.op_diff <- 0;
  st.op_same <- 0

let end_op t st =
  t.ops <- t.ops + 1;
  if st.op_diff > t.worst_af_diff then t.worst_af_diff <- st.op_diff;
  if st.op_same > t.worst_af_same then t.worst_af_same <- st.op_same

let cell_of_hd t (h : hd) = t.cells.(h.hid).(h.htag)

(* Fig. 5, procedure Feedback(q, i, cmp, var hd). Returns false iff the
   caller should abort because a higher-priority Hd changed (line 5). *)
let feedback t ~q ~i ~(cmp : hd) ~(h : hd ref) =
  let caller = if q < t.n then q else q - t.n in
  let pri = t.priority caller in
  Eff.local (t.name ^ ".fb.1");
  if i < pri then true (* line 1: no feedback below own level *)
  else begin
    Shared.write t.a.(q).(i - 1) !h.htag (* line 2 *);
    let tmp = Q_cas.read t.hd.(i - 1) (* line 3 *) in
    Eff.local (t.name ^ ".fb.4");
    if (cmp.hid, cmp.htag) <> (tmp.hid, tmp.htag) then begin
      let st = pstate t caller in
      if i > pri then begin
        (* line 5: higher-priority preemption *)
        st.op_diff <- st.op_diff + 1;
        t.af_diff <- t.af_diff + 1;
        false
      end
      else begin
        (* i = pri; lines 6-7 (protected by the quantum) *)
        st.op_same <- st.op_same + 1;
        t.af_same <- t.af_same + 1;
        Shared.write t.a.(q).(i - 1) tmp.htag (* line 6 *);
        Eff.local (t.name ^ ".fb.7");
        h := tmp;
        true
      end
    end
    else true
  end

(* Lines 8-10: constant-time tag selection per [Anderson & Moir '95]. *)
let select_tag t st ~pri =
  let read_tag = Shared.read t.a.(st.j).(pri - 1) (* line 8 *) in
  Queue.add read_tag st.reads;
  if Queue.length st.reads > 2 * t.n then ignore (Queue.pop st.reads);
  Eff.local (t.name ^ ".9");
  st.j <- (st.j + 1) mod (2 * t.n) (* line 9 *);
  Eff.local (t.name ^ ".10");
  let excluded tag =
    tag = st.lasttag
    || Queue.fold (fun acc x -> acc || x = tag) false st.reads
    || Queue.fold (fun acc x -> acc || x = tag) false st.selected
  in
  let rec pick tag = if excluded tag then pick (tag + 1) else tag in
  let tag = pick 0 in
  assert (tag < tag_space t.n);
  Queue.add tag st.selected;
  if Queue.length st.selected > 2 * t.n then ignore (Queue.pop st.selected);
  tag

(* Lines 32-36 and 39-43: install [target] into Hd[pri]. Returns false
   iff the cell being installed already has a successor (lines 35/42). *)
let update_hd t ~pid ~pri (target : hd) =
  let rec outer () =
    let rec inner () =
      let tmp = Q_cas.read t.hd.(pri - 1) (* lines 33/40 *) in
      let claimed = { tmp with last = pid } in
      if Q_cas.cas t.hd.(pri - 1) ~who:pid ~expected:tmp ~desired:claimed
         (* lines 34/41 *)
      then claimed
      else inner ()
    in
    let claimed = inner () in
    let nxt_obj = Shared.read (cell_of_hd t target).nxt in
    match Uni_consensus.read nxt_obj (* lines 35/42 *) with
    | Some _ -> false
    | None ->
      if Q_cas.cas t.hd.(pri - 1) ~who:pid ~expected:claimed ~desired:target
         (* lines 36/43 *)
      then true
      else outer ()
  in
  outer ()

(* Fig. 5, procedure Apply(old, new, hd) — lines 26-45. [mytag] is the
   tag selected at line 10 for this operation's own cell. *)
let apply t ~pid ~pri ~old ~new_ ~mytag (h : hd) =
  let st = pstate t pid in
  let v = Shared.read (cell_of_hd t h).value (* line 26 *) in
  if v <> old then false
  else begin
    Eff.local (t.name ^ ".27");
    if old = new_ then true (* line 27: trivial C&S *)
    else begin
      (* lines 28-29: help lower-priority reads *)
      for i = 1 to pri - 1 do
        Shared.write t.seen.(i - 1) old
      done;
      Eff.local (t.name ^ ".30");
      let install_first = t.priority h.hid <= pri (* line 30 *) in
      let proceed =
        if install_first then begin
          Eff.local (t.name ^ ".31");
          update_hd t ~pid ~pri { h with last = pid } (* lines 31-36 *)
        end
        else true
      in
      if not proceed then false (* line 35: a successor appeared *)
      else begin
        (* line 37: consensus on the head cell's nxt pointer *)
        let nxt_obj = Shared.read (cell_of_hd t h).nxt in
        let mine = { id = pid; tag = mytag } in
        let won = Uni_consensus.decide nxt_obj mine in
        if won = mine then begin
          Eff.local (t.name ^ ".38");
          st.lasttag <- mytag;
          t.appends <- t.appends + 1;
          let my_hd = { hid = pid; htag = mytag; last = pid } in
          ignore (update_hd t ~pid ~pri my_hd) (* lines 39-43 *);
          true (* line 44 (and the line-42 early exit; see .mli notes) *)
        end
        else false (* line 45 *)
      end
    end
  end

(* Fig. 5, procedure C&S(old, new) — lines 8-25. *)
let cas t ~pid ~expected ~desired =
  let pri = t.priority pid in
  let st = pstate t pid in
  begin_op st;
  let mytag = select_tag t st ~pri (* lines 8-10 *) in
  let my_cell = t.cells.(pid).(mytag) in
  Shared.write my_cell.value desired (* line 11 *);
  Shared.write my_cell.nxt
    (Uni_consensus.make (Printf.sprintf "%s.Cell[%d][%d].nxt'" t.name pid mytag))
  (* line 12 *);
  (* lines 13-24: scan the Hd variables for the list head *)
  let result = ref None in
  let i = ref 1 in
  while !result = None && !i <= t.v do
    let h = ref (Q_cas.read t.hd.(!i - 1)) (* line 14 *) in
    Eff.local (t.name ^ ".15");
    if !i <= pri || t.priority !h.hid = !i (* line 15 *) then begin
      if not (feedback t ~q:pid ~i:!i ~cmp:!h ~h) (* line 16 *) then
        result := Some false
      else begin
        let nxt_obj = Shared.read (cell_of_hd t !h).nxt in
        match Uni_consensus.read nxt_obj (* lines 17/20 *) with
        | None -> result := Some (apply t ~pid ~pri ~old:expected ~new_:desired ~mytag !h)
          (* line 18 *)
        | Some np ->
          Eff.local (t.name ^ ".19");
          if !i <= pri (* line 19 *) then begin
            let next = ref { hid = np.id; htag = np.tag; last = np.id } in
            Eff.local (t.name ^ ".21");
            if t.priority np.id = !i (* line 21 *) then begin
              ignore (feedback t ~q:(pid + t.n) ~i:!i ~cmp:!h ~h:next) (* line 22 *);
              let nxt2 = Shared.read (cell_of_hd t !next).nxt in
              match Uni_consensus.read nxt2 (* line 23 *) with
              | None ->
                result :=
                  Some (apply t ~pid ~pri ~old:expected ~new_:desired ~mytag !next)
                (* line 24 *)
              | Some _ -> ()
            end
          end
      end
    end;
    incr i
  done;
  let res =
    match !result with
    | Some b -> b
    | None ->
      Eff.local (t.name ^ ".25");
      t.scan_failures <- t.scan_failures + 1;
      false (* line 25: preempted throughout the scan; some C&S succeeded *)
  in
  end_op t st;
  res

(* Fig. 5, procedure Read() — lines 46-62. *)
let read t ~pid =
  let pri = t.priority pid in
  let st = pstate t pid in
  begin_op st;
  (* line 46: levels in order 1..V, with the own level visited last *)
  let order = List.filter (fun i -> i <> pri) (List.init t.v (fun i -> i + 1)) @ [ pri ] in
  let rhd = Array.make t.v { hid = t.n; htag = 0; last = t.n } in
  let next = ref None in
  let result = ref None in
  List.iter
    (fun i ->
      if !result = None then begin
        rhd.(i - 1) <- Q_cas.read t.hd.(i - 1) (* line 47 *);
        Eff.local (t.name ^ ".48");
        if i <= pri || t.priority rhd.(i - 1).hid = i (* line 48 *) then begin
          let href = ref rhd.(i - 1) in
          if not (feedback t ~q:pid ~i ~cmp:rhd.(i - 1) ~h:href) (* line 49 *) then
            result := Some (Shared.read t.seen.(pri - 1)) (* line 50 *)
          else begin
            rhd.(i - 1) <- !href;
            let nxt_obj = Shared.read (cell_of_hd t rhd.(i - 1)).nxt in
            match Uni_consensus.read nxt_obj (* lines 51/54 *) with
            | None ->
              result := Some (Shared.read (cell_of_hd t rhd.(i - 1)).value)
              (* line 52 *)
            | Some np ->
              Eff.local (t.name ^ ".53");
              if i <= pri (* line 53 *) then begin
                let nx = { hid = np.id; htag = np.tag; last = np.id } in
                next := Some nx;
                Eff.local (t.name ^ ".55");
                if t.priority np.id = i (* line 55 *) then begin
                  let nref = ref nx in
                  ignore (feedback t ~q:(pid + t.n) ~i ~cmp:rhd.(i - 1) ~h:nref)
                  (* line 56 *);
                  next := Some !nref;
                  let nxt2 = Shared.read (cell_of_hd t !nref).nxt in
                  match Uni_consensus.read nxt2 (* line 57 *) with
                  | None ->
                    result := Some (Shared.read (cell_of_hd t !nref).value)
                    (* line 58 *)
                  | Some _ -> ()
                end
              end
          end
        end
      end)
    order;
  let res =
    match !result with
    | Some value -> value
    | None -> (
      (* lines 59-61: some same- or higher-priority Hd must have changed *)
      let changed = ref false in
      for i = pri + 1 to t.v do
        let cur = Q_cas.read t.hd.(i - 1) (* line 60 *) in
        if cur <> rhd.(i - 1) then changed := true
      done;
      if !changed then Shared.read t.seen.(pri - 1) (* line 61 *)
      else
        (* line 62: it was a same-priority change *)
        match !next with
        | Some nx -> Shared.read (cell_of_hd t nx).value
        | None -> assert false (* the own-level iteration always sets [next] *))
  in
  end_op t st;
  res

let appends t = t.appends

let stats t =
  {
    af_diff = t.af_diff;
    af_same = t.af_same;
    scan_failures = t.scan_failures;
    worst_af_diff = t.worst_af_diff;
    worst_af_same = t.worst_af_same;
    ops = t.ops;
    appends = t.appends;
  }
