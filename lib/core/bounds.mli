(** Closed-form bounds from the paper (Table 1, Theorems 1–4, Lemmas
    2/3/B.1/B.2).

    The paper states quantum bounds as multiples of [T_max]/[T_min], the
    maximum/minimum time of an atomic operation. In the statement-count
    model every statement takes one unit, so [T_max = T_min = 1] and the
    bounds reduce to pure statement counts, exactly as the remark below
    Theorem 4 observes. The constant [c] is algorithm-specific ("the
    worst-case number of statement executions per level" for Theorem 4;
    "the longest code sequence for which we require at most one quantum
    preemption" for Theorem 2); callers supply the [c] measured for this
    implementation. *)

val uniprocessor_consensus_quantum : int
(** Theorem 1: [Q >= 8] suffices for the Fig. 3 algorithm. This is both
    the quantum bound and the exact statement count of one [decide]
    ({!Uni_consensus.statements_per_decide} re-exports it from the
    algorithm's side); the linter re-derives it from replayed bodies. *)

val fig5_stmt_const : int
(** The per-level statement constant [c] of the Fig. 5 hybrid C&S
    implementation: an upper bound on the statements one [cas]/[read]
    executes per priority level (each retries at most once per level).
    Theorem 2 asks for [Q >= c]; {!Hwf_faults.Suite.fig5}'s own-step
    bound is [c * V * ops]. Declared with slack above the measured
    worst case; the linter checks the declaration against the maximum
    it derives by replay. *)

val fig7_stmt_const : int
(** The per-level statement constant [c] of the Fig. 7 multiprocessor
    consensus implementation, used in the Theorem 4 quantum
    [max (2c) (c(2P + 1 - C))] and in {!Hwf_faults.Suite.fig7}'s
    own-step bound [c * L]. Declared with slack; linted like
    {!fig5_stmt_const}. *)

val universal_stmt_const : int
(** The per-operation statement constant of the universal-construction
    counter over Fig. 3 cells ({!Hwf_faults.Suite.universal}'s bound is
    [c * N]). Declared with slack; linted like {!fig5_stmt_const}. *)

val universal_quantum : c:int -> p:int -> consensus_number:int -> int option
(** Theorem 4 / Table 1 middle column: the quantum at which an object
    with the given consensus number is universal on [p] processors —
    [max (2c) (c * (2p + 1 - consensus_number))] — or [None] when
    [consensus_number < p] (impossible regardless of the quantum). A
    [consensus_number >= 2p] yields [2c]; [max_int] (infinite consensus
    number) yields [0]: any quantum works. *)

val impossibility_quantum : p:int -> consensus_number:int -> int option
(** Theorem 3 / Table 1 last column: the largest quantum at which
    wait-free consensus is impossible with the given base objects —
    [max 1 (2p - consensus_number)] — or [None] when the consensus
    number is infinite ([max_int]). For [consensus_number < p] every
    quantum is impossible; this function still reports the Table 1 row
    value for finite cases. *)

val levels : m:int -> p:int -> k:int -> int
(** Fig. 7's constant [L = (K+1)M(1+P-K) + (P-K)^2 M + 1], the number of
    consensus levels needed when [C = P + K], [0 <= k <= p], with at most
    [m] processes per processor.
    @raise Invalid_argument unless [0 <= k <= p] and [m >= 1]. *)

val ports_per_processor : p:int -> k:int -> processor:int -> int
(** Fig. 8: processors [0..k-1] have two ports per consensus object,
    processors [k..p-1] one (0-based [processor]). *)

val af_diff_bound : m:int -> int
(** Lemma 2: [AF_diff <= M]. *)

val af_same_bound : m:int -> p:int -> k:int -> l:int -> int
(** Lemma 3: [AF_same <= KM + (P-K)(L + M(P-K)) / (1+P-K)] (real-valued
    bound, rounded up). *)

val deciding_level_threshold : m:int -> p:int -> k:int -> int
(** Lemma 3: a deciding level exists whenever
    [L > (K+1)M(1+P-K) + (P-K)^2 M]; this returns that right-hand side. *)

val exponential_baseline_levels : m:int -> p:int -> int
(** Substitution 3 (DESIGN.md): level count [M * 4^P] of the
    deliberately exponential baseline used to exhibit the paper's
    polynomial-vs-exponential contrast with [7] (chosen to dominate the
    polynomial [L] already at small [P]). *)
