(** Fig. 7: wait-free multiprocessor consensus for any number of
    processes from [C]-consensus objects, [C >= P] (Theorem 4).

    Processes march through [L] consensus levels (Fig. 8), where
    [L = (K+1)M(1+P-K) + (P-K)^2 M + 1] and [C = P + K]. Each level is
    one hardware [C]-consensus object; access is mediated by ports —
    two per level on processors [1..K], one on processors [K+1..P], so a
    level sees at most [C] invocations. Per processor and priority
    level, a port counter [Port[i,v]] (advanced with local F&I / local
    C&S), a published-output table [Outval[i,l]] and a high-water mark
    [Lastpub[i,v]] (advanced with local C&S) coordinate the processes of
    one processor; a per-port local consensus object elects the single
    process that may use each port. All the local objects are the
    uniprocessor constructions of {!Uni_consensus}, {!Q_cas} and
    {!Q_fai}, so beyond the [C]-consensus objects the algorithm uses
    only reads and writes.

    With a quantum of at least [c(2P+1-C)] statements (Table 1, middle
    column; [c] is the per-level statement constant of this
    implementation, measured by the E5 bench), enough levels avoid
    access failures that a {e deciding level} exists and all processes
    agree. Run below Theorem 3's threshold under an adversarial
    scheduler, the [C]-consensus objects get exhausted and agreement can
    fail — that is experiment E6, not a bug.

    When [C >= 2P] the [K = P] instance is used, as the paper notes. *)

type 'a t

val make :
  ?levels_override:int ->
  config:Hwf_sim.Config.t ->
  name:string ->
  consensus_number:int ->
  unit ->
  'a t
(** [levels_override] replaces the computed [L] — used only by the E9
    bench to instantiate the deliberately exponential baseline
    ({!Bounds.exponential_baseline_levels}) and by robustness tests;
    correctness requires at least the Lemma 3 value.
    @raise Invalid_argument if [consensus_number < processors]. *)

val decide : 'a t -> pid:int -> 'a -> 'a
(** Propose a value; returns the common decision. Wait-free: the number
    of own statements is O(L) with the quantum of Theorem 4. *)

val levels : 'a t -> int
(** The constant [L] of this instance. *)

val k : 'a t -> int
(** [K = min C (2P) - P]. *)

(** Harness statistics (not statements), for experiments E5–E7. *)

val exhausted_proposals : 'a t -> int
(** Proposals that hit an exhausted [C]-consensus object (only possible
    below the quantum bound). *)

val access_failures : 'a t -> (int * int) list
(** [(processor, level)] pairs that some process observed as
    inaccessible-yet-unpublished when determining an input value — the
    paper's access failures (Sec. 4.2): all ports of the level were
    already claimed on that processor, but its claimants had not yet
    published (they were preempted mid-level). *)

val access_failures_classified : 'a t -> (int * int) list * (int * int) list
(** [(same_priority, different_priority)] access failures: the paper's
    [AF_same] / [AF_diff] split (Lemmas B.1–B.2 vs Lemma 2). A failure
    observed both ways appears in both lists, mirroring the paper's
    remark that one preemption can cause both kinds. *)

val access_failure_events : 'a t -> int * int
(** [(same, diff)] counts of {e every} access-failure observation, not
    just the distinct [(processor, level)] sites of
    {!access_failures_classified} — the raw totals the observability
    layer exports against the Lemma 3 / Lemma 2 envelopes. *)

val first_deciding_level : 'a t -> int option
(** Quiescent: the smallest level at which no processor had an access
    failure, if any. *)

val decisions_agree : 'a t -> bool
(** Quiescent: all values returned by [decide] so far are equal. *)
