let uniprocessor_consensus_quantum = 8
let fig5_stmt_const = 60
let fig7_stmt_const = 160
let universal_stmt_const = 40

let universal_quantum ~c ~p ~consensus_number =
  if consensus_number < p then None
  else if consensus_number = max_int then Some 0
  else Some (max (2 * c) (c * (2 * p + 1 - min consensus_number (2 * p))))

let impossibility_quantum ~p ~consensus_number =
  if consensus_number = max_int then None
  else Some (max 1 (2 * p - consensus_number))

let levels ~m ~p ~k =
  if k < 0 || k > p then invalid_arg "Bounds.levels: need 0 <= k <= p";
  if m < 1 then invalid_arg "Bounds.levels: need m >= 1";
  ((k + 1) * m * (1 + p - k)) + ((p - k) * (p - k) * m) + 1

let ports_per_processor ~p ~k ~processor =
  if processor < 0 || processor >= p then
    invalid_arg "Bounds.ports_per_processor: processor out of range";
  if processor < k then 2 else 1

let af_diff_bound ~m = m

let af_same_bound ~m ~p ~k ~l =
  (* KM + (P-K)(L + M(P-K)) / (1+P-K), rounded up *)
  let num = (p - k) * (l + (m * (p - k))) in
  let den = 1 + p - k in
  (k * m) + ((num + den - 1) / den)

let deciding_level_threshold ~m ~p ~k =
  ((k + 1) * m * (1 + p - k)) + ((p - k) * (p - k) * m)

let exponential_baseline_levels ~m ~p = m * (1 lsl (2 * p))
