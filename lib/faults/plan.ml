open Hwf_sim

type crash = { victim : Proc.pid; after : int }

type cost = Uniform | Slow | Jitter of int

type axiom2 = Enforced | Windows of { period : int; off : int; phase : int } | Suspended

type t = { label : string; crashes : crash list; cost : cost; axiom2 : axiom2 }

let none = { label = "none"; crashes = []; cost = Uniform; axiom2 = Enforced }

let pp_crash ppf { victim; after } = Fmt.pf ppf "p%d@%d" (victim + 1) after

let pp_cost ppf = function
  | Uniform -> Fmt.string ppf "uniform"
  | Slow -> Fmt.string ppf "slow"
  | Jitter seed -> Fmt.pf ppf "jitter#%d" seed

let pp_axiom2 ppf = function
  | Enforced -> Fmt.string ppf "on"
  | Windows { period; off; phase } -> Fmt.pf ppf "win(%d/%d+%d)" off period phase
  | Suspended -> Fmt.string ppf "off"

let describe t =
  let parts = [] in
  let parts =
    match t.crashes with
    | [] -> parts
    | cs ->
      ("crash " ^ String.concat ", " (List.map (Fmt.str "%a" pp_crash) cs)) :: parts
  in
  let parts =
    match t.cost with Uniform -> parts | c -> Fmt.str "cost %a" pp_cost c :: parts
  in
  let parts =
    match t.axiom2 with
    | Enforced -> parts
    | a -> Fmt.str "axiom2 %a" pp_axiom2 a :: parts
  in
  match List.rev parts with [] -> "no faults" | parts -> String.concat "; " parts

let relabel t = { t with label = describe t }

let crash_at ~victim ~after = relabel { none with crashes = [ { victim; after } ] }

let crashes cs = relabel { none with crashes = cs }

let with_cost cost t = relabel { t with cost }

let with_axiom2 axiom2 t = relabel { t with axiom2 }

let with_label label t = { t with label }

let layer a b =
  relabel
    {
      label = "";
      crashes = a.crashes @ b.crashes;
      cost = (match b.cost with Uniform -> a.cost | c -> c);
      axiom2 = (match b.axiom2 with Enforced -> a.axiom2 | g -> g);
    }

let chaos ~seed ~n ~max_after =
  let st = Random.State.make [| seed; 0xC4A05 |] in
  let nvict = 1 + Random.State.int st (max 1 (n / 2)) in
  let pool = Array.init n Fun.id in
  (* Fisher–Yates prefix: pick [nvict] distinct victims. *)
  for i = 0 to nvict - 1 do
    let j = i + Random.State.int st (n - i) in
    let tmp = pool.(i) in
    pool.(i) <- pool.(j);
    pool.(j) <- tmp
  done;
  let crashes =
    List.init nvict (fun i ->
        { victim = pool.(i); after = Random.State.int st (max_after + 1) })
  in
  let cost =
    match Random.State.int st 3 with 0 -> Uniform | 1 -> Slow | _ -> Jitter seed
  in
  with_label
    (Fmt.str "chaos#%d: %s" seed (describe { none with crashes; cost }))
    { none with crashes; cost }

let pp ppf t = Fmt.pf ppf "%s" t.label

let to_string t = t.label
