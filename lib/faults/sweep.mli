(** Fault-plan generators.

    Pure plan enumeration; running them is {!Certify}'s job. The crash
    sweeps take [solo], the per-pid own-statement counts of an
    {e unfaulted} run of the same subject (see
    {!Certify.solo_own_steps}): crashing victim [v] after [k] own
    statements for every [k] in [0 .. solo.(v)] visits every
    own-statement index the victim can reach, i.e. the sweep is
    exhaustive in crash position. *)

open Hwf_sim

val crash_points :
  ?stride:int -> victims:Proc.pid list -> solo:int array -> unit -> Plan.t list
(** One single-victim plan per victim per crash point
    [0, stride, 2*stride, .. <= solo.(victim)]. [stride] defaults to 1
    (exhaustive). *)

val crash_pairs :
  ?stride:int -> victims:Proc.pid list -> solo:int array -> unit -> Plan.t list
(** Two-victim plans over every unordered victim pair, crash points on a
    [stride] grid (default 2 — pairs square the plan count, so the
    default grid is coarser). *)

val cost_plans : seeds:int list -> Plan.t list
(** The [Slow] plan plus one [Jitter] plan per seed. Only meaningful for
    subjects whose config has [tmax > tmin]. *)

val chaos : seeds:int list -> n:int -> max_after:int -> Plan.t list
(** One {!Plan.chaos} plan per seed; crashes and adversarial costs, never
    Axiom-2 weakening (positive campaigns must pass). *)

val axiom2_off_plans : periods:int list -> Plan.t list
(** [Suspended] plus a half-duty [Windows] plan per period — the
    negative-control battery. *)
