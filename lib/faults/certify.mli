(** The wait-freedom certifier.

    Runs a {e subject} (an algorithm under a fixed machine shape, policy
    and theorem bound) against a battery of fault plans and judges every
    run on three counts:

    + {b survivors finish} — every non-victim process completes its
      program, unless a halted strictly-higher-priority victim on its
      processor permanently blocks it (the model's Axiom 1 caveat:
      a parked victim stays ready; such runs count as [blocked], not
      failures — the scheduler is starving the survivor, not the
      algorithm). Equal-priority survivors are never excused, because a
      victim's quantum guarantee drains before it parks.
    + {b bounded own work} — no process exceeds the subject's
      [step_bound] own statements: O(1) for Theorem 1, O(V) per
      operation for Theorem 2, O(L) for Theorem 4. Wait-freedom is a
      bound on {e own} steps, so it must hold regardless of crashes.
    + {b the subject's semantic check} — agreement/validity for
      consensus, linearizability for objects (pending operations of
      crashed processes handled by
      {!Hwf_check.Lincheck.check_with_pending}).

    Failing runs are minimized with {!Hwf_adversary.Shrink.shrink_by}
    over the recorded decision sequence — replay re-applies the same
    fault plan, so the shrunk schedule is a genuine counterexample of
    the faulted configuration — and reported with both the plan and the
    shrunk schedule. *)

open Hwf_sim
open Hwf_adversary

type instance = {
  programs : (unit -> unit) array;
  check : survivors:Proc.pid list -> Engine.result -> (unit, string) result;
      (** [survivors] lists the pids that finished; the check must only
          constrain those (a victim's operation may be half-applied). *)
}

type subject = {
  name : string;
  config : Config.t;
  policy : unit -> Policy.t;  (** Fresh policy per run (policies may be stateful). *)
  make : unit -> instance;  (** Fresh shared object + programs per run. *)
  step_bound : int;  (** Max own statements any process may execute. *)
  bound_desc : string;  (** e.g. ["8 (Thm 1, O(1))"] — shown in reports. *)
  step_limit : int;  (** Engine budget; hitting it is a failure. *)
}

type verdict = Pass of { blocked : bool } | Fail of string

type failure = {
  plan : Plan.t;
  message : string;
  schedule : Schedule.t;  (** Shrunk replay schedule. *)
  shrunk_from : int;  (** Decision count before shrinking. *)
}

type report = {
  subject : string;
  bound_desc : string;
  plans : int;
  passed : int;
  blocked : int;  (** Passing runs with victim-blocked survivors. *)
  worst_own_steps : int;  (** Max own statements seen across all runs. *)
  failures : failure list;
  coverage : Hwf_resil.Resil.coverage;
      (** Harness-level accounting: which cells were actually evaluated
          (vs timed out, errored or skipped on interrupt). A report with
          incomplete coverage is a {e partial} result — [passed] and
          [failures] only describe the evaluated cells. *)
}

val solo_own_steps : subject -> int array
(** Per-pid own statements of one unfaulted run — the crash-point sweep
    bounds for {!Sweep.crash_points}. *)

val judge : subject -> instance -> Engine.result -> verdict
(** The three-verdict judgement described above, applied to one run. *)

val run_plan :
  ?observer:(Trace.event -> unit) -> subject -> Plan.t -> verdict * Engine.result * Schedule.t
(** One judged run under a plan, with its recorded decision sequence. *)

val replay_judge : ?observer:(Trace.event -> unit) -> subject -> Plan.t -> Schedule.t -> verdict
(** Deterministic re-execution (fresh instance, scripted policy) — the
    predicate behind shrinking. *)

val certify :
  ?shrink:bool ->
  ?max_shrink_rounds:int ->
  ?jobs:int ->
  ?grain:int ->
  ?pool_stats:Hwf_par.Pool.stats ->
  ?retry:Hwf_resil.Resil.retry ->
  ?cell_wall_s:float ->
  ?checkpoint:string ->
  ?resume:bool ->
  ?should_stop:(unit -> bool) ->
  ?sleep:(float -> unit) ->
  subject ->
  Plan.t list ->
  report
(** Run and judge every plan. [shrink] (default [true]) minimizes each
    failing schedule. Deterministic: same subject, plans and seeds give
    the same report.

    [jobs] (default 1) distributes the plans — the independent
    (victim, crash-point, plan) cells that {!Sweep} and
    {!Suite.campaign} generate — over that many domains. Each cell
    rebuilds its policy from the subject's seed ([subject.policy ()] is
    called once per plan, parallel or not) and shrinks its own failure
    by replaying only its own plan, so the report is identical to
    [~jobs:1] plan for plan, including the shrunk counterexample
    schedules. [grain] sets the pool's cells-per-claim (default
    automatic — grain 1 for campaign-sized plan lists, which is right
    for cells this coarse).

    [pool_stats] (off by default) accumulates the domain pool's
    occupancy counters for [hybridsim stats]; it never affects the
    report.

    Resilience (see [docs/ROBUSTNESS.md]): every plan is one fault-
    contained cell. [cell_wall_s] gives each cell a wall-clock budget,
    enforced inside its engine runs via the observer hook and between
    shrink replays — a livelocked cell becomes a structured timeout in
    [coverage], not a hang. [retry] (default
    {!Hwf_resil.Resil.no_retry}) re-runs timed-out/transiently-failed
    cells with backoff; a retried cell is {e demoted} — shrinking is
    disabled for it, trading counterexample minimality for coverage.
    Exceptions escaping a cell are classified
    ({!Hwf_resil.Resil.classify}) and folded into [coverage] as errors;
    they never abort the other plans. Note that a counterexample is a
    {e verdict}, never an exception — failed cells are successful
    evaluations and appear in [failures] exactly as before.

    [checkpoint] journals each completed cell to an [hwf-ckpt/1] file;
    with [resume = true] the journal's cells are restored instead of
    re-evaluated (the journal must match the campaign — same subject
    and plan battery — or the call raises [Invalid_argument]). A clean
    campaign killed and resumed yields a report identical to an
    uninterrupted one. [should_stop] (polled before each cell, ORed
    with {!Hwf_resil.Resil.interrupted}) stops claiming new cells;
    completed cells are kept and journaled. [sleep] is the backoff
    sleep, injectable for tests. *)

val certified : report -> bool
(** No failures. *)

val pp_failure : failure Fmt.t
val pp_report : report Fmt.t
