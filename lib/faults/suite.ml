open Hwf_sim
open Hwf_core
open Hwf_check
open Hwf_workload

(* Fig. 3: uniprocessor read/write consensus, three equal-priority
   processes, Q = 8 (Theorem 1). Own work is exactly the 8 unrolled
   statements of one decide. *)
let fig3 ?(seed = 17) () =
  let n = 3 in
  let layout = Layout.uniform ~processors:1 ~per_processor:n in
  let config = Layout.to_config ~quantum:Bounds.uniprocessor_consensus_quantum layout in
  let make () =
    let obj = Uni_consensus.make "f3.cons" in
    let outputs = Array.make n None in
    let programs =
      Array.init n (fun pid () ->
          Eff.invocation "decide" (fun () ->
              outputs.(pid) <- Some (Uni_consensus.decide obj (100 + pid))))
    in
    let check ~survivors _r =
      let outs = List.filter_map (fun p -> outputs.(p)) survivors in
      match List.sort_uniq compare outs with
      | [] -> Ok ()
      | [ v ] when v >= 100 && v < 100 + n -> Ok ()
      | [ v ] -> Error (Fmt.str "invalid decision %d" v)
      | vs -> Error (Fmt.str "disagreement: %a" Fmt.(Dump.list int) vs)
    in
    Certify.{ programs; check }
  in
  Certify.
    {
      name = "fig3";
      config;
      policy = (fun () -> Policy.random ~seed);
      make;
      step_bound = Uni_consensus.statements_per_decide;
      bound_desc = "8 (Thm 1, O(1))";
      step_limit = 10_000;
    }

(* Fig. 3 in the time model of Table 1: statements cost 1..2 time units
   and Q is a time budget, sized so that even all-Tmax statements leave
   a full invocation protected (Q >= 8 * Tmax). The [Slow] and [Jitter]
   cost plans attack exactly this headroom. *)
let fig3_time ?(seed = 19) () =
  let n = 3 in
  let tmax = 2 in
  let procs =
    List.init n (fun pid -> Proc.make ~pid ~processor:0 ~priority:1 ())
  in
  let config =
    Config.uniprocessor ~tmin:1 ~tmax
      ~quantum:(Bounds.uniprocessor_consensus_quantum * tmax)
      ~levels:1 procs
  in
  let base = fig3 ~seed () in
  Certify.
    {
      base with
      name = "fig3-time";
      config;
      bound_desc = "8 (Thm 1, O(1); Q a time budget)";
    }

(* Fig. 5: the O(V) hybrid C&S object on a uniprocessor with three
   distinct priorities, each process running a short scripted CAS/read
   workload. Linearizability is judged with crashed processes'
   operations pending. The per-process own-step bound is c.V per
   operation (Theorem 2): each cas/read retries at most once per
   priority level; the constant below was measured over the full crash
   sweep and holds with slack. *)
let fig5 ?(seed = 23) () =
  let n = 3 in
  let layout = [ (0, 1); (0, 2); (0, 3) ] in
  let config = Layout.to_config ~quantum:600 layout in
  let ops_per = 2 in
  let script = Scenarios.random_script ~seed:5 ~n ~ops_per in
  let make () =
    let obj = Hybrid_cas.make ~config ~name:"f5.o" ~init:0 in
    let hist = Hist.create () in
    let programs =
      Array.init n (fun pid () ->
          List.iter
            (fun op ->
              Eff.invocation "op" (fun () ->
                  match op with
                  | Scenarios.Cas (e, d) ->
                    ignore
                      (Hist.wrap hist ~pid op (fun () ->
                           `Bool (Hybrid_cas.cas obj ~pid ~expected:e ~desired:d)))
                  | Scenarios.Rd ->
                    ignore
                      (Hist.wrap hist ~pid op (fun () -> `Val (Hybrid_cas.read obj ~pid)))))
            (List.nth script pid))
    in
    let check ~survivors:_ _r = Lincheck.check_hist_with_pending Scenarios.cas_spec hist in
    Certify.{ programs; check }
  in
  Certify.
    {
      name = "fig5";
      config;
      policy = (fun () -> Policy.random ~seed);
      make;
      step_bound = Bounds.fig5_stmt_const * Layout.levels layout * ops_per;
      bound_desc =
        Fmt.str "%d = c.V.ops (Thm 2, O(V) per op)"
          (Bounds.fig5_stmt_const * Layout.levels layout * ops_per);
      step_limit = 50_000;
    }

(* Fig. 7: multiprocessor consensus from 2-consensus objects, four
   equal-priority processes on two processors (M = 2), Theorem 4
   quantum. Own work is O(L) with L the level count of the instance. *)
let fig7 ?(seed = 29) () =
  let layout = Layout.uniform ~processors:2 ~per_processor:2 in
  let n = List.length layout in
  let config = Layout.to_config ~quantum:4000 layout in
  let consensus_number = 2 in
  let levels =
    Bounds.levels ~m:(Config.max_per_processor config) ~p:config.Config.processors
      ~k:consensus_number
  in
  let make () =
    let obj = Multi_consensus.make ~config ~name:"f7.mc" ~consensus_number () in
    let outputs = Array.make n None in
    let programs =
      Array.init n (fun pid () ->
          Eff.invocation "decide" (fun () ->
              outputs.(pid) <- Some (Multi_consensus.decide obj ~pid (100 + pid))))
    in
    let check ~survivors _r =
      if Multi_consensus.exhausted_proposals obj > 0 then
        Error "a C-consensus object was exhausted (Theorem 4 quantum violated)"
      else
        let outs = List.filter_map (fun p -> outputs.(p)) survivors in
        match List.sort_uniq compare outs with
        | [] -> Ok ()
        | [ v ] when v >= 100 && v < 100 + n -> Ok ()
        | [ v ] -> Error (Fmt.str "invalid decision %d" v)
        | vs -> Error (Fmt.str "disagreement: %a" Fmt.(Dump.list int) vs)
    in
    Certify.{ programs; check }
  in
  Certify.
    {
      name = "fig7";
      config;
      policy = (fun () -> Policy.random ~seed);
      make;
      step_bound = Bounds.fig7_stmt_const * levels;
      bound_desc =
        Fmt.str "%d = c.L, L=%d (Thm 4, O(L))" (Bounds.fig7_stmt_const * levels) levels;
      step_limit = 100_000;
    }

(* Universal construction: a counter over Fig. 3 consensus cells on a
   hybrid uniprocessor. Survivors' increment results must be distinct
   values in 1..N. *)
let universal ?(seed = 31) () =
  let pris = [ 1; 1; 1 ] in
  let n = List.length pris in
  let layout = List.map (fun p -> (0, p)) pris in
  let config = Layout.to_config ~quantum:3000 layout in
  let make () =
    let factory = Wf_objects.uni_factory () in
    let c = Wf_objects.counter ~name:"u.ctr" ~n ~factory in
    let results = Array.make n None in
    let programs =
      Array.init n (fun pid () ->
          Eff.invocation "incr" (fun () ->
              results.(pid) <- Some (Wf_objects.incr c ~pid)))
    in
    let check ~survivors _r =
      let outs = List.filter_map (fun p -> results.(p)) survivors in
      let distinct = List.sort_uniq compare outs in
      if List.length distinct <> List.length outs then
        Error (Fmt.str "duplicate increment results: %a" Fmt.(Dump.list int) outs)
      else if List.exists (fun v -> v < 1 || v > n) outs then
        Error (Fmt.str "increment result outside 1..%d: %a" n Fmt.(Dump.list int) outs)
      else Ok ()
    in
    Certify.{ programs; check }
  in
  Certify.
    {
      name = "universal";
      config;
      policy = (fun () -> Policy.random ~seed);
      make;
      step_bound = Bounds.universal_stmt_const * n;
      bound_desc =
        Fmt.str "%d = c.N (universal, O(N) per op)" (Bounds.universal_stmt_const * n);
      step_limit = 50_000;
    }

(* The negative control: two processes racing the Fig. 3 algorithm under
   a hand-derived schedule that only becomes legal once the Axiom 2
   quantum guarantee is switched off. Both processes read every P[i]
   cell as unset before either writes, and p2 completes its final read
   of P[3] before p1's overwrite lands — a disagreement (Sec. 2: without
   Axiom 2 the hierarchy collapses, so read/write consensus must fail).
   Under an enforced Axiom 2 the scripted entries are illegal at the
   decisive points and the fallback reorders the run into a passing one,
   which is exactly what makes this a control: the certifier must accept
   the enforced run and reject the suspended one. *)
let attack_schedule = [ 0; 0; 1; 1; 0; 1; 0; 1; 0; 1; 0; 1; 1; 1; 0; 0 ]

let negative ?seed:_ () =
  let n = 2 in
  let layout = Layout.uniform ~processors:1 ~per_processor:n in
  let config = Layout.to_config ~quantum:Bounds.uniprocessor_consensus_quantum layout in
  let make () =
    let obj = Uni_consensus.make "neg.cons" in
    let outputs = Array.make n None in
    let programs =
      Array.init n (fun pid () ->
          Eff.invocation "decide" (fun () ->
              outputs.(pid) <- Some (Uni_consensus.decide obj (100 + pid))))
    in
    let check ~survivors _r =
      let outs = List.filter_map (fun p -> outputs.(p)) survivors in
      match List.sort_uniq compare outs with
      | [] -> Ok ()
      | [ v ] when v >= 100 && v < 100 + n -> Ok ()
      | [ v ] -> Error (Fmt.str "invalid decision %d" v)
      | vs -> Error (Fmt.str "disagreement: %a" Fmt.(Dump.list int) vs)
    in
    Certify.{ programs; check }
  in
  Certify.
    {
      name = "fig3-no-axiom2";
      config;
      policy = (fun () -> Policy.scripted ~fallback:Policy.first attack_schedule);
      make;
      step_bound = Uni_consensus.statements_per_decide;
      bound_desc = "8 (Thm 1, O(1))";
      step_limit = 10_000;
    }

let negative_plan = Plan.(with_axiom2 Suspended none)

let positive_subjects ?seed () =
  [ fig3 ?seed (); fig3_time ?seed (); fig5 ?seed (); fig7 ?seed (); universal ?seed () ]

let victims subject = List.init (Config.n subject.Certify.config) Fun.id

let campaign ?(quick = false) ?seed subject =
  let solo = Certify.solo_own_steps subject in
  let n = Config.n subject.Certify.config in
  let base_seed = match seed with Some s -> s | None -> 41 in
  let stride =
    if quick then max 1 (Array.fold_left max 1 solo / 8) else 1
  in
  let crash = Sweep.crash_points ~stride ~victims:(victims subject) ~solo () in
  let pairs =
    if quick then []
    else
      Sweep.crash_pairs
        ~stride:(max 2 (Array.fold_left max 1 solo / 4))
        ~victims:(victims subject) ~solo ()
  in
  let chaos =
    Sweep.chaos
      ~seeds:(List.init (if quick then 2 else 8) (fun i -> base_seed + i))
      ~n
      ~max_after:(Array.fold_left max 0 solo)
  in
  let cost =
    let cfg = subject.Certify.config in
    if cfg.Config.tmax > cfg.Config.tmin then begin
      let costs =
        Sweep.cost_plans
          ~seeds:(List.init (if quick then 1 else 4) (fun i -> base_seed + 100 + i))
      in
      (* also layer each cost model over a mid-run crash of the last
         victim, so quantum pressure and crashes interact *)
      let mid = { Plan.victim = n - 1; after = solo.(n - 1) / 2 } in
      costs @ List.map (fun c -> Plan.layer (Plan.crashes [ mid ]) c) costs
    end
    else []
  in
  (Plan.none :: crash) @ pairs @ cost @ chaos
