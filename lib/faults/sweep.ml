let crash_points ?(stride = 1) ~victims ~solo () =
  if stride <= 0 then invalid_arg "Sweep.crash_points: stride must be positive";
  List.concat_map
    (fun victim ->
      let limit = solo.(victim) in
      let rec points after acc =
        if after > limit then List.rev acc
        else points (after + stride) (Plan.crash_at ~victim ~after :: acc)
      in
      points 0 [])
    victims

let crash_pairs ?(stride = 2) ~victims ~solo () =
  if stride <= 0 then invalid_arg "Sweep.crash_pairs: stride must be positive";
  let rec pairs = function
    | [] -> []
    | v :: rest -> List.map (fun w -> (v, w)) rest @ pairs rest
  in
  List.concat_map
    (fun (v, w) ->
      let pts victim =
        let limit = solo.(victim) in
        let rec go after acc = if after > limit then List.rev acc else go (after + stride) (after :: acc) in
        go 0 []
      in
      List.concat_map
        (fun a ->
          List.map
            (fun b ->
              Plan.crashes [ { Plan.victim = v; after = a }; { Plan.victim = w; after = b } ])
            (pts w))
        (pts v))
    (pairs victims)

let cost_plans ~seeds =
  Plan.(with_cost Slow none) :: List.map (fun s -> Plan.(with_cost (Jitter s) none)) seeds

let chaos ~seeds ~n ~max_after = List.map (fun seed -> Plan.chaos ~seed ~n ~max_after) seeds

let axiom2_off_plans ~periods =
  Plan.(with_axiom2 Suspended none)
  :: List.map
       (fun period ->
         Plan.(with_axiom2 (Windows { period; off = period / 2; phase = 0 }) none))
       periods
