open Hwf_sim

let halted_pred (plan : Plan.t) =
  match plan.crashes with
  | [] -> None
  | crashes ->
    Some
      (fun (pv : Policy.pview) ->
        List.exists
          (fun (c : Plan.crash) ->
            c.victim = pv.Policy.pid && pv.own_steps >= c.after && pv.guarantee = 0)
          crashes)

(* Deterministic per-(seed, step, pid) hash, avalanched with the usual
   multiplicative constants; no mutable state, so replay is exact. *)
let jitter_hash ~seed ~step ~pid =
  let h = (seed * 0x9E3779B1) lxor (step * 0x85EBCA6B) lxor (pid * 0xC2B2AE35) in
  let h = h lxor (h lsr 15) in
  let h = h * 0x27D4EB2F in
  (h lxor (h lsr 13)) land max_int

let cost_fn (plan : Plan.t) ~(config : Config.t) =
  match plan.cost with
  | Plan.Uniform -> None
  | Plan.Slow -> Some (fun _view _pid _op -> config.tmax)
  | Plan.Jitter seed ->
    let span = config.tmax - config.tmin + 1 in
    Some
      (fun (view : Policy.view) pid _op ->
        config.tmin + (jitter_hash ~seed ~step:view.Policy.step ~pid mod span))

let gate_fn (plan : Plan.t) =
  match plan.axiom2 with
  | Plan.Enforced -> None
  | Plan.Suspended -> Some (fun ~step:_ -> false)
  | Plan.Windows { period; off; phase } ->
    if period <= 0 || off < 0 || off > period then
      invalid_arg "Inject: Windows requires 0 <= off <= period, period > 0";
    Some (fun ~step -> (step + phase) mod period >= off)

let run ?step_limit ?observer ?self_check ~plan ~config ~policy programs =
  Engine.run ?step_limit ?observer ?self_check
    ?cost:(cost_fn plan ~config)
    ?halted:(halted_pred plan)
    ?axiom2_active:(gate_fn plan)
    ~config ~policy programs

let run_recorded ?step_limit ?observer ~plan ~config ~policy programs =
  let decisions = ref [] in
  let recording =
    Policy.of_factory
      (policy.Policy.name ^ "+rec")
      (fun () ->
        let choose = Policy.prepare policy in
        fun view ->
          match choose view with
          | Some pid as r ->
            decisions := pid :: !decisions;
            r
          | None -> None)
  in
  let result = run ?step_limit ?observer ~plan ~config ~policy:recording programs in
  (result, List.rev !decisions)

let replay ?step_limit ?observer ~plan ~config ~schedule programs =
  let policy = Policy.scripted ~fallback:Policy.first schedule in
  run ?step_limit ?observer ~plan ~config ~policy programs
