(** Executing a run under a fault plan.

    Translates a {!Plan.t} into the engine's fault hooks: crashes become
    the [halted] predicate (victim parked once past its crash point with
    no active quantum guarantee), the cost model becomes the [cost]
    hook, and Axiom-2 windows become the [axiom2_active] gate. Because
    all three are engine-level and deterministic, a faulted run can be
    re-executed exactly from its decision sequence — which is what makes
    schedule shrinking work on counterexamples found under faults. *)

open Hwf_sim

val run :
  ?step_limit:int ->
  ?observer:(Trace.event -> unit) ->
  ?self_check:bool ->
  plan:Plan.t ->
  config:Config.t ->
  policy:Policy.t ->
  (unit -> unit) array ->
  Engine.result
(** One run of [programs] under [plan]. [observer] is passed through to
    [Engine.run] — this is also the hook the resilience layer uses to
    enforce wall-clock deadlines inside a run
    ({!Hwf_resil.Resil.guard_observer}). [self_check] (passed through
    likewise) runs the engine's self-checking reference mode; the
    burst/caching differential suite uses it to pin faulted runs to the
    naive scheduler byte-for-byte. *)

val run_recorded :
  ?step_limit:int ->
  ?observer:(Trace.event -> unit) ->
  plan:Plan.t ->
  config:Config.t ->
  policy:Policy.t ->
  (unit -> unit) array ->
  Engine.result * Proc.pid list
(** Like {!run}, also returning the scheduling decisions taken, in
    order — a replayable schedule for {!replay} and
    {!Hwf_adversary.Shrink.shrink_by}. *)

val replay :
  ?step_limit:int ->
  ?observer:(Trace.event -> unit) ->
  plan:Plan.t ->
  config:Config.t ->
  schedule:Proc.pid list ->
  (unit -> unit) array ->
  Engine.result
(** Re-run under [plan] following [schedule]
    (via {!Hwf_sim.Policy.scripted} with {!Hwf_sim.Policy.first} as
    fallback, so shrunk schedules — which may have gaps — still drive a
    complete run). *)

val halted_pred : Plan.t -> (Policy.pview -> bool) option
(** The crash predicate the plan induces ([None] when it has no
    crashes). Exposed for tests. *)

val jitter_hash : seed:int -> step:int -> pid:int -> int
(** The deterministic hash behind [Jitter] costs. Exposed for tests. *)
