open Hwf_sim
open Hwf_adversary
module Resil = Hwf_resil.Resil
module Checkpoint = Hwf_resil.Checkpoint

type instance = {
  programs : (unit -> unit) array;
  check : survivors:Proc.pid list -> Engine.result -> (unit, string) result;
}

type subject = {
  name : string;
  config : Config.t;
  policy : unit -> Policy.t;
  make : unit -> instance;
  step_bound : int;
  bound_desc : string;
  step_limit : int;
}

type verdict = Pass of { blocked : bool } | Fail of string

type failure = {
  plan : Plan.t;
  message : string;
  schedule : Schedule.t;
  shrunk_from : int;
}

type report = {
  subject : string;
  bound_desc : string;
  plans : int;
  passed : int;
  blocked : int;
  worst_own_steps : int;
  failures : failure list;
  coverage : Resil.coverage;
}

let solo_own_steps subject =
  let inst = subject.make () in
  let r =
    Inject.run ~step_limit:subject.step_limit ~plan:Plan.none ~config:subject.config
      ~policy:(subject.policy ()) inst.programs
  in
  r.Engine.own_steps

let judge subject (inst : instance) (r : Engine.result) =
  let config = subject.config in
  let n = Config.n config in
  match Wellformed.check r.trace with
  | v :: _ -> Fail (Fmt.str "ill-formed trace: %a" Wellformed.pp_violation v)
  | [] ->
    if r.stop = Engine.Step_limit then Fail "step limit hit (possible non-termination)"
    else if r.stop = Engine.Decision_limit then
      Fail "decision limit hit (statement-free spin; possible non-termination)"
    else begin
      let procs = config.Config.procs in
      (* The model caveat of halting failures under Axiom 1: a parked
         victim stays ready, so it permanently blocks strictly
         lower-priority processes on its processor. Such survivors are
         excused (the scheduler, not the algorithm, is starving them).
         Equal-priority survivors are never excused — guarantees drain
         before a victim parks, so Axiom 1 lets them run. *)
      let blocked_by_victim p =
        let me = procs.(p) in
        let ok = ref false in
        Array.iteri
          (fun q hq ->
            if
              hq
              && procs.(q).Proc.processor = me.Proc.processor
              && procs.(q).Proc.priority > me.Proc.priority
            then ok := true)
          r.halted;
        !ok
      in
      let unexcused = ref [] and blocked = ref false in
      for p = n - 1 downto 0 do
        if (not r.finished.(p)) && not r.halted.(p) then
          if blocked_by_victim p then blocked := true else unexcused := p :: !unexcused
      done;
      match !unexcused with
      | p :: _ ->
        Fail
          (Fmt.str
             "survivor p%d did not finish (and no halted higher-priority victim blocks it)"
             (p + 1))
      | [] -> (
        let over = ref [] in
        Array.iteri
          (fun p s -> if s > subject.step_bound then over := (p, s) :: !over)
          r.own_steps;
        match !over with
        | (p, s) :: _ ->
          Fail
            (Fmt.str "p%d executed %d own statements, over the wait-freedom bound %d (%s)"
               (p + 1) s subject.step_bound subject.bound_desc)
        | [] -> (
          let survivors = List.filter (fun p -> r.finished.(p)) (List.init n Fun.id) in
          match inst.check ~survivors r with
          | Ok () -> Pass { blocked = !blocked }
          | Error m -> Fail m))
    end

let replay_judge ?observer subject plan schedule =
  let inst = subject.make () in
  let r =
    Inject.replay ~step_limit:subject.step_limit ?observer ~plan ~config:subject.config
      ~schedule inst.programs
  in
  judge subject inst r

let run_plan ?observer subject plan =
  let inst = subject.make () in
  let result, decisions =
    Inject.run_recorded ~step_limit:subject.step_limit ?observer ~plan
      ~config:subject.config ~policy:(subject.policy ()) inst.programs
  in
  (judge subject inst result, result, decisions)

(* One certification cell: everything [certify] needs from one plan's
   run (and, on failure, its shrink). Cells are fully independent — the
   policy is rebuilt per plan from the subject's seed and shrinking
   replays only this cell's plan — so they can be evaluated on any
   domain in any order and folded back in plan order. *)
type cell = Cell_pass of { blocked : bool; worst : int } | Cell_fail of failure * int

let run_cell ~shrink ~max_shrink_rounds ?(deadline = Resil.no_deadline) subject plan =
  (* One guard for the whole cell: the event count and fuel accumulate
     across the initial run and every shrink replay, so the deadline
     bounds the cell, not each engine run separately. *)
  let observer = Resil.guard_observer deadline in
  let verdict, result, decisions = run_plan ~observer subject plan in
  let worst = Array.fold_left max 0 result.Engine.own_steps in
  match verdict with
  | Pass { blocked } -> Cell_pass { blocked; worst }
  | Fail message ->
    let fails sched =
      Resil.check_deadline deadline;
      match replay_judge ~observer subject plan sched with Fail _ -> true | Pass _ -> false
    in
    let schedule =
      if shrink then Shrink.shrink_by ~max_rounds:max_shrink_rounds ~fails decisions
      else decisions
    in
    (* Shrinking may converge on a different failure of the same
       plan; report the message the shrunk schedule actually
       produces. *)
    let message =
      match replay_judge ~observer subject plan schedule with
      | Fail m -> m
      | Pass _ -> message
    in
    Cell_fail ({ plan; message; schedule; shrunk_from = List.length decisions }, worst)

(* ---- checkpoint payloads ----

   One line per completed cell; [msg] is always the last field because
   failure messages may contain any character (the journal layer handles
   JSON escaping; this layer only needs an unambiguous last field). The
   schedule is the raw 0-based pid sequence, space-separated. *)

let payload_of_cell = function
  | Cell_pass { blocked; worst } ->
    Printf.sprintf "pass;blocked=%d;worst=%d" (if blocked then 1 else 0) worst
  | Cell_fail (f, worst) ->
    Printf.sprintf "fail;worst=%d;from=%d;sched=%s;msg=%s" worst f.shrunk_from
      (String.concat " " (List.map string_of_int f.schedule))
      f.message

let strip_prefix ~prefix s =
  let np = String.length prefix and ns = String.length s in
  if ns >= np && String.sub s 0 np = prefix then Some (String.sub s np (ns - np))
  else None

let index_of_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = if i + m > n then None else if String.sub s i m = sub then Some i else go (i + 1) in
  go 0

let cell_of_payload plan payload =
  let ( let* ) = Option.bind in
  let int_kv key part = Option.bind (strip_prefix ~prefix:(key ^ "=") part) int_of_string_opt in
  match strip_prefix ~prefix:"pass;" payload with
  | Some rest -> (
    match String.split_on_char ';' rest with
    | [ b; w ] ->
      let* b = int_kv "blocked" b in
      let* worst = int_kv "worst" w in
      if b = 0 || b = 1 then Some (Cell_pass { blocked = b = 1; worst }) else None
    | _ -> None)
  | None ->
    let* rest = strip_prefix ~prefix:"fail;" payload in
    let* mi = index_of_sub rest ";msg=" in
    let message = String.sub rest (mi + 5) (String.length rest - mi - 5) in
    (match String.split_on_char ';' (String.sub rest 0 mi) with
    | [ w; f; s ] ->
      let* worst = int_kv "worst" w in
      let* shrunk_from = int_kv "from" f in
      let* sched = strip_prefix ~prefix:"sched=" s in
      let* schedule =
        List.fold_left
          (fun acc p ->
            let* acc = acc in
            let* v = int_of_string_opt p in
            Some (v :: acc))
          (Some [])
          (if sched = "" then [] else String.split_on_char ' ' sched)
        |> Option.map List.rev
      in
      Some (Cell_fail ({ plan; message; schedule; shrunk_from }, worst))
    | _ -> None)

let campaign_id subject plans =
  (* Identifies the run's parameters for resume validation: same
     subject and same plan battery, position for position. *)
  Printf.sprintf "certify/%s/%s" subject.name
    (Digest.to_hex (Digest.string (String.concat "\n" (List.map Plan.to_string plans))))

let certify ?(shrink = true) ?(max_shrink_rounds = 200) ?(jobs = 1) ?grain
    ?pool_stats ?(retry = Resil.no_retry) ?cell_wall_s ?checkpoint
    ?(resume = false) ?(should_stop = fun () -> false) ?sleep subject plans =
  let plan_arr = Array.of_list plans in
  let total = Array.length plan_arr in
  let journal, restored =
    match checkpoint with
    | None -> (None, fun _ -> None)
    | Some path -> (
      match
        Checkpoint.open_ ~path ~campaign:(campaign_id subject plans) ~cells:total ~resume
      with
      | Error msg -> invalid_arg ("Certify.certify: " ^ msg)
      | Ok (t, entries) ->
        let tbl = Hashtbl.create 16 in
        List.iter
          (fun (e : Checkpoint.entry) ->
            if e.idx >= 0 && e.idx < total && e.key = Plan.to_string plan_arr.(e.idx) then
              match cell_of_payload plan_arr.(e.idx) e.payload with
              | Some c -> Hashtbl.replace tbl e.idx c
              | None -> ())
          entries;
        (Some t, fun i -> Hashtbl.find_opt tbl i))
  in
  let eval i plan =
    (* Graceful degradation: a cell that exhausts its budget (or hits a
       transient error) re-runs with shrinking demoted off — the shrink
       replays are the expensive part — trading counterexample
       minimality for campaign coverage. *)
    let demoted = ref false in
    let deadline_for ~attempt =
      if attempt > 1 then demoted := true;
      match cell_wall_s with
      | None -> Resil.no_deadline
      | Some s -> Resil.deadline ~wall_s:s ()
    in
    let rc =
      Resil.run_cell ~retry ~deadline_for ?sleep (fun deadline ->
          run_cell ~shrink:(shrink && not !demoted) ~max_shrink_rounds ~deadline subject
            plan)
    in
    (match (journal, rc.Resil.outcome) with
    | Some t, Resil.Ok_cell c ->
      Checkpoint.record t ~idx:i ~key:(Plan.to_string plan) ~payload:(payload_of_cell c)
    | _ -> ());
    rc
  in
  let cells =
    Hwf_par.Pool.map ~jobs ?grain ?stats:pool_stats
      (fun (i, plan) ->
        match restored i with
        | Some c -> { Resil.outcome = Resil.Ok_cell c; attempts = 1 }
        | None ->
          if Resil.interrupted () || should_stop () then
            { Resil.outcome = Resil.Skipped "interrupted"; attempts = 0 }
          else eval i plan)
      (Array.mapi (fun i p -> (i, p)) plan_arr)
  in
  Option.iter Checkpoint.close journal;
  let passed = ref 0 and blocked = ref 0 and worst = ref 0 in
  let failures = ref [] in
  Array.iter
    (fun rc ->
      match rc.Resil.outcome with
      | Resil.Ok_cell (Cell_pass { blocked = b; worst = w }) ->
        incr passed;
        if b then incr blocked;
        worst := max !worst w
      | Resil.Ok_cell (Cell_fail (f, w)) ->
        worst := max !worst w;
        failures := f :: !failures
      | Resil.Timed_out _ | Resil.Errored _ | Resil.Skipped _ -> ())
    cells;
  {
    subject = subject.name;
    bound_desc = subject.bound_desc;
    plans = total;
    passed = !passed;
    blocked = !blocked;
    worst_own_steps = !worst;
    failures = List.rev !failures;
    coverage = Resil.coverage_of_cells cells;
  }

let certified r = r.failures = []

let pp_failure ppf f =
  Fmt.pf ppf "@[<v2>plan [%a]: %s@,schedule (%d decisions, shrunk from %d): %s@]" Plan.pp
    f.plan f.message (List.length f.schedule) f.shrunk_from
    (Schedule.to_string f.schedule)

let pp_report ppf r =
  Fmt.pf ppf "@[<v>%s: %d/%d plans passed%s, worst own-steps %d (bound: %s)%a%a@]"
    r.subject r.passed r.plans
    (if r.blocked > 0 then Fmt.str " (%d with victim-blocked survivors)" r.blocked else "")
    r.worst_own_steps r.bound_desc
    Fmt.(list ~sep:nop (fun ppf f -> Fmt.pf ppf "@,%a" pp_failure f))
    r.failures
    (* Coverage is printed only when the campaign is incomplete, so
       clean-run output is unchanged and partial results are impossible
       to mistake for complete ones. *)
    (fun ppf c ->
      if not (Resil.complete c) then Fmt.pf ppf "@,INCOMPLETE coverage: %a" Resil.pp_coverage c)
    r.coverage
