open Hwf_sim
open Hwf_adversary

type instance = {
  programs : (unit -> unit) array;
  check : survivors:Proc.pid list -> Engine.result -> (unit, string) result;
}

type subject = {
  name : string;
  config : Config.t;
  policy : unit -> Policy.t;
  make : unit -> instance;
  step_bound : int;
  bound_desc : string;
  step_limit : int;
}

type verdict = Pass of { blocked : bool } | Fail of string

type failure = {
  plan : Plan.t;
  message : string;
  schedule : Schedule.t;
  shrunk_from : int;
}

type report = {
  subject : string;
  bound_desc : string;
  plans : int;
  passed : int;
  blocked : int;
  worst_own_steps : int;
  failures : failure list;
}

let solo_own_steps subject =
  let inst = subject.make () in
  let r =
    Inject.run ~step_limit:subject.step_limit ~plan:Plan.none ~config:subject.config
      ~policy:(subject.policy ()) inst.programs
  in
  r.Engine.own_steps

let judge subject (inst : instance) (r : Engine.result) =
  let config = subject.config in
  let n = Config.n config in
  match Wellformed.check r.trace with
  | v :: _ -> Fail (Fmt.str "ill-formed trace: %a" Wellformed.pp_violation v)
  | [] ->
    if r.stop = Engine.Step_limit then Fail "step limit hit (possible non-termination)"
    else begin
      let procs = config.Config.procs in
      (* The model caveat of halting failures under Axiom 1: a parked
         victim stays ready, so it permanently blocks strictly
         lower-priority processes on its processor. Such survivors are
         excused (the scheduler, not the algorithm, is starving them).
         Equal-priority survivors are never excused — guarantees drain
         before a victim parks, so Axiom 1 lets them run. *)
      let blocked_by_victim p =
        let me = procs.(p) in
        let ok = ref false in
        Array.iteri
          (fun q hq ->
            if
              hq
              && procs.(q).Proc.processor = me.Proc.processor
              && procs.(q).Proc.priority > me.Proc.priority
            then ok := true)
          r.halted;
        !ok
      in
      let unexcused = ref [] and blocked = ref false in
      for p = n - 1 downto 0 do
        if (not r.finished.(p)) && not r.halted.(p) then
          if blocked_by_victim p then blocked := true else unexcused := p :: !unexcused
      done;
      match !unexcused with
      | p :: _ ->
        Fail
          (Fmt.str
             "survivor p%d did not finish (and no halted higher-priority victim blocks it)"
             (p + 1))
      | [] -> (
        let over = ref [] in
        Array.iteri
          (fun p s -> if s > subject.step_bound then over := (p, s) :: !over)
          r.own_steps;
        match !over with
        | (p, s) :: _ ->
          Fail
            (Fmt.str "p%d executed %d own statements, over the wait-freedom bound %d (%s)"
               (p + 1) s subject.step_bound subject.bound_desc)
        | [] -> (
          let survivors = List.filter (fun p -> r.finished.(p)) (List.init n Fun.id) in
          match inst.check ~survivors r with
          | Ok () -> Pass { blocked = !blocked }
          | Error m -> Fail m))
    end

let replay_judge subject plan schedule =
  let inst = subject.make () in
  let r =
    Inject.replay ~step_limit:subject.step_limit ~plan ~config:subject.config ~schedule
      inst.programs
  in
  judge subject inst r

let run_plan subject plan =
  let inst = subject.make () in
  let result, decisions =
    Inject.run_recorded ~step_limit:subject.step_limit ~plan ~config:subject.config
      ~policy:(subject.policy ()) inst.programs
  in
  (judge subject inst result, result, decisions)

(* One certification cell: everything [certify] needs from one plan's
   run (and, on failure, its shrink). Cells are fully independent — the
   policy is rebuilt per plan from the subject's seed and shrinking
   replays only this cell's plan — so they can be evaluated on any
   domain in any order and folded back in plan order. *)
type cell = Cell_pass of { blocked : bool; worst : int } | Cell_fail of failure * int

let run_cell ~shrink ~max_shrink_rounds subject plan =
  let verdict, result, decisions = run_plan subject plan in
  let worst = Array.fold_left max 0 result.Engine.own_steps in
  match verdict with
  | Pass { blocked } -> Cell_pass { blocked; worst }
  | Fail message ->
    let fails sched =
      match replay_judge subject plan sched with Fail _ -> true | Pass _ -> false
    in
    let schedule =
      if shrink then Shrink.shrink_by ~max_rounds:max_shrink_rounds ~fails decisions
      else decisions
    in
    (* Shrinking may converge on a different failure of the same
       plan; report the message the shrunk schedule actually
       produces. *)
    let message =
      match replay_judge subject plan schedule with Fail m -> m | Pass _ -> message
    in
    Cell_fail ({ plan; message; schedule; shrunk_from = List.length decisions }, worst)

let certify ?(shrink = true) ?(max_shrink_rounds = 200) ?(jobs = 1) ?pool_stats subject
    plans =
  let cells =
    Hwf_par.Pool.map_list ~jobs ?stats:pool_stats
      (run_cell ~shrink ~max_shrink_rounds subject)
      plans
  in
  let passed = ref 0 and blocked = ref 0 and worst = ref 0 in
  let failures = ref [] in
  List.iter
    (fun cell ->
      match cell with
      | Cell_pass { blocked = b; worst = w } ->
        incr passed;
        if b then incr blocked;
        worst := max !worst w
      | Cell_fail (f, w) ->
        worst := max !worst w;
        failures := f :: !failures)
    cells;
  {
    subject = subject.name;
    bound_desc = subject.bound_desc;
    plans = List.length plans;
    passed = !passed;
    blocked = !blocked;
    worst_own_steps = !worst;
    failures = List.rev !failures;
  }

let certified r = r.failures = []

let pp_failure ppf f =
  Fmt.pf ppf "@[<v2>plan [%a]: %s@,schedule (%d decisions, shrunk from %d): %s@]" Plan.pp
    f.plan f.message (List.length f.schedule) f.shrunk_from
    (Schedule.to_string f.schedule)

let pp_report ppf r =
  Fmt.pf ppf "@[<v>%s: %d/%d plans passed%s, worst own-steps %d (bound: %s)%a@]" r.subject
    r.passed r.plans
    (if r.blocked > 0 then Fmt.str " (%d with victim-blocked survivors)" r.blocked else "")
    r.worst_own_steps r.bound_desc
    Fmt.(list ~sep:nop (fun ppf f -> Fmt.pf ppf "@,%a" pp_failure f))
    r.failures
