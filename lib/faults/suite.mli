(** The certification suite: the paper's core algorithms packaged as
    {!Certify.subject}s, plus the standard fault campaigns run against
    them.

    Positive subjects (must certify clean under every plan the
    campaigns generate):

    - [fig3] — uniprocessor read/write consensus, Theorem 1 bound.
    - [fig3_time] — the same algorithm in the Table 1 time model
      ([tmax > tmin]), where [Slow]/[Jitter] cost plans squeeze the
      quantum.
    - [fig5] — the O(V) hybrid C&S object, Theorem 2 bound,
      linearizability judged with crashed processes' operations pending.
    - [fig7] — multiprocessor consensus from 2-consensus objects,
      Theorem 4 bound.
    - [universal] — a counter from the universal construction over
      Fig. 3 cells.

    The negative control [negative] is Fig. 3 driven by a hand-derived
    two-process schedule that is only schedulable when Axiom 2 is
    suspended; certifying it under {!negative_plan} must {e fail} (the
    two processes decide different values), while the same subject under
    {!Plan.none} passes. A certifier that accepts the suspended run is
    broken — this is the suite's teeth. *)

open Hwf_sim

val fig3 : ?seed:int -> unit -> Certify.subject
val fig3_time : ?seed:int -> unit -> Certify.subject
val fig5 : ?seed:int -> unit -> Certify.subject
val fig7 : ?seed:int -> unit -> Certify.subject
val universal : ?seed:int -> unit -> Certify.subject

val positive_subjects : ?seed:int -> unit -> Certify.subject list

val negative : ?seed:int -> unit -> Certify.subject
val negative_plan : Plan.t
val attack_schedule : Proc.pid list
(** The hand-derived disagreement schedule (0-based pids), exposed for
    the tests that document it. *)

val campaign : ?quick:bool -> ?seed:int -> Certify.subject -> Plan.t list
(** The standard plan battery for a subject: the fault-free plan, the
    exhaustive single-victim crash-point sweep (strided when [quick]),
    two-victim crash pairs on a coarse grid (full mode only),
    cost-model plans when the config has time spread ([tmax > tmin]),
    and seeded chaos plans. Never weakens Axiom 2. Deterministic per
    [seed]. *)
