(** Composable deterministic fault plans.

    A plan bundles the three fault dimensions the certifier sweeps:

    - {b crashes} — halting failures (paper Sec. 2: the scheduler simply
      never allocates another quantum). Each victim is parked at the
      first legal point once it has executed [after] of its own
      statements {e and} holds no active quantum guarantee (protected
      windows belong to the scheduler and are never cut short). A parked
      victim still blocks lower-priority processes on its processor, per
      Axiom 1.
    - {b cost} — adversarial statement durations in the Table 1
      time model: [Slow] charges every statement [tmax]; [Jitter seed]
      picks a deterministic pseudo-random duration in [tmin..tmax] per
      (step, pid), shrinking the number of statements a quantum
      protects.
    - {b axiom2} — windows during which the scheduler stops honouring
      the Axiom 2 quantum guarantee. [Suspended] turns it off for the
      whole run; [Windows] gates it off for the first [off] steps of
      every [period]-step span (shifted by [phase]). Used as the
      {e negative control}: the paper's algorithms must fail without
      Axiom 2 (Sec. 2), and a certifier that cannot see them fail
      proves nothing.

    Plans are data: pure values, equal-by-structure, printable, and
    replayable — the same plan plus the same schedule reproduces the
    same run exactly. *)

open Hwf_sim

type crash = { victim : Proc.pid; after : int }
(** Park [victim] once it has executed [after] own statements (and any
    active quantum guarantee has drained). [after = 0] crashes it before
    its first statement. *)

type cost = Uniform | Slow | Jitter of int

type axiom2 = Enforced | Windows of { period : int; off : int; phase : int } | Suspended

type t = { label : string; crashes : crash list; cost : cost; axiom2 : axiom2 }

val none : t
(** The fault-free plan. *)

val crash_at : victim:Proc.pid -> after:int -> t

val crashes : crash list -> t

val with_cost : cost -> t -> t

val with_axiom2 : axiom2 -> t -> t

val with_label : string -> t -> t

val layer : t -> t -> t
(** [layer a b] composes: crashes of both; [b]'s cost/axiom2 where they
    are non-default, else [a]'s. *)

val chaos : seed:int -> n:int -> max_after:int -> t
(** A deterministic pseudo-random plan for an [n]-process subject:
    one to [n/2] distinct victims with crash points in [0..max_after],
    and a random cost model. Never weakens Axiom 2 — chaos plans are
    used in positive campaigns, which must pass. *)

val describe : t -> string
(** Human-readable summary of the plan's faults (ignores the label). *)

val pp : t Fmt.t
val to_string : t -> string
