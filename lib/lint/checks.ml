open Hwf_sim

type severity = Error | Warning

let pp_severity ppf s = Fmt.string ppf (match s with Error -> "error" | Warning -> "warning")

type finding = { rule : string; severity : severity; pid : int; detail : string }

let pp_finding ppf f =
  Fmt.pf ppf "[%a] %s: %s" pp_severity f.severity f.rule f.detail

type expectation = Exact of int | At_most of int | Helping

(* Findings are deduplicated on their full content and sorted, so the
   output is deterministic however many replays re-observe the same
   offence. *)
let finalize findings =
  List.sort_uniq compare findings
  |> List.sort (fun a b ->
         compare
           ((match a.severity with Error -> 0 | Warning -> 1), a.rule, a.pid, a.detail)
           ((match b.severity with Error -> 0 | Warning -> 1), b.rule, b.pid, b.detail))

let pp_pid ppf pid = if pid < 0 then Fmt.string ppf "p?" else Fmt.pf ppf "p%d" (pid + 1)

let atomicity (runs : Recorder.run list) =
  let out = ref [] in
  let emit rule pid detail = out := { rule; severity = Error; pid; detail } :: !out in
  let check_window (w : Recorder.window) =
    let accs = List.filter (fun (a : Runtime.access) -> not a.instrumentation) w.w_accesses in
    if accs <> [] then begin
      let vars =
        List.map (fun (a : Runtime.access) -> a.var) accs |> List.sort_uniq String.compare
      in
      List.iter
        (fun (a : Runtime.access) ->
          match a.kind with
          | Runtime.Peek | Runtime.Poke ->
            emit "atomicity.harness-access" w.w_pid
              (Fmt.str "%a %s %s inside process code (%s)" pp_pid w.w_pid
                 (match a.kind with Runtime.Peek -> "peeks" | _ -> "pokes")
                 a.var
                 (match w.w_op with
                 | Some op -> Fmt.str "during statement '%a'" Op.pp op
                 | None -> "between statements"))
          | Runtime.Read | Runtime.Write -> ())
        accs;
      match w.w_op with
      | Some (Op.Read v | Op.Write v | Op.Rmw { var = v; _ }) ->
        if List.length vars > 1 then
          emit "atomicity.multi-var" w.w_pid
            (Fmt.str "%a statement '%a' touches %d shared variables (%a)" pp_pid w.w_pid
               Op.pp (Option.get w.w_op) (List.length vars)
               Fmt.(list ~sep:comma string)
               vars);
        List.iter
          (fun var ->
            if var <> v then
              emit "atomicity.var-mismatch" w.w_pid
                (Fmt.str "%a statement '%a' accesses %s" pp_pid w.w_pid Op.pp
                   (Option.get w.w_op) var))
          vars;
        List.iter
          (fun (a : Runtime.access) ->
            match (w.w_op, a.kind) with
            | Some (Op.Read _), Runtime.Write ->
              emit "atomicity.kind-mismatch" w.w_pid
                (Fmt.str "%a writes %s under a read announcement" pp_pid w.w_pid a.var)
            | Some (Op.Write _), Runtime.Read ->
              emit "atomicity.kind-mismatch" w.w_pid
                (Fmt.str "%a reads %s under a write announcement" pp_pid w.w_pid a.var)
            | _ -> ())
          accs
      | Some (Op.Local l) ->
        List.iter
          (fun var ->
            emit "atomicity.unannounced" w.w_pid
              (Fmt.str "%a accesses %s under local statement '%s'" pp_pid w.w_pid var l))
          vars
      | None ->
        List.iter
          (fun (a : Runtime.access) ->
            match a.kind with
            | Runtime.Read | Runtime.Write ->
              emit "atomicity.unannounced" w.w_pid
                (Fmt.str "%a accesses %s without an announced statement" pp_pid w.w_pid
                   a.var)
            | Runtime.Peek | Runtime.Poke -> ()  (* already reported above *))
          accs
    end
  in
  List.iter (fun (r : Recorder.run) -> List.iter check_window r.windows) runs;
  finalize !out

let loop_bound (cfg : Cfg.t) =
  let out = ref [] in
  List.iter
    (fun (l : Cfg.loop) ->
      match l.Cfg.l_class with
      | Cfg.Unbounded ->
        out :=
          {
            rule = "loop-bound.unbounded";
            severity = Error;
            pid = l.Cfg.l_pid;
            detail =
              Fmt.str "%a loop at '%s' in invocation '%s' exceeded the replay budget"
                pp_pid l.Cfg.l_pid l.Cfg.l_head l.Cfg.l_label;
          }
          :: !out
      | Cfg.Helping ->
        out :=
          {
            rule = "loop-bound.helping";
            severity = Warning;
            pid = l.Cfg.l_pid;
            detail =
              Fmt.str
                "%a loop at '%s' in invocation '%s' is helping-bounded (spins on \
                 another process's writes)"
                pp_pid l.Cfg.l_pid l.Cfg.l_head l.Cfg.l_label;
          }
          :: !out
      | Cfg.Static -> ())
    cfg.Cfg.loops;
  List.iter
    (fun (pid, label) ->
      if
        not
          (List.exists
             (fun (l : Cfg.loop) ->
               l.Cfg.l_class = Cfg.Unbounded && l.Cfg.l_pid = pid && l.Cfg.l_label = label)
             cfg.Cfg.loops)
      then
        out :=
          {
            rule = "loop-bound.unbounded";
            severity = Error;
            pid;
            detail =
              Fmt.str "%a invocation '%s' did not complete within the replay budget"
                pp_pid pid label;
          }
          :: !out)
    cfg.Cfg.truncated;
  finalize !out

let quantum_shape ~expect ~min_quantum ~theorem ~(config : Config.t) (cfg : Cfg.t) =
  let out = ref [] in
  (match expect with
  | Exact c ->
    if cfg.Cfg.derived_c <> c then
      out :=
        {
          rule = "quantum-shape.constant";
          severity = Error;
          pid = -1;
          detail =
            Fmt.str "derived per-invocation constant c=%d, but %s asserts exactly %d"
              cfg.Cfg.derived_c theorem c;
        }
        :: !out
  | At_most c ->
    if cfg.Cfg.derived_c > c then
      out :=
        {
          rule = "quantum-shape.constant";
          severity = Error;
          pid = -1;
          detail =
            Fmt.str "derived per-invocation constant c=%d exceeds the %s bound %d"
              cfg.Cfg.derived_c theorem c;
        }
        :: !out
  | Helping -> ());
  if config.Config.quantum < min_quantum then
    out :=
      {
        rule = "quantum-shape.quantum";
        severity = Error;
        pid = -1;
        detail =
          Fmt.str "configured quantum Q=%d is below the %s precondition Q>=%d"
            config.Config.quantum theorem min_quantum;
      }
      :: !out;
  finalize !out

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec at i = i + n <= m && (String.sub s i n = sub || at (i + 1)) in
  n = 0 || at 0

let priority (runs : Recorder.run list) =
  let out = ref [] in
  List.iter
    (fun (r : Recorder.run) ->
      (match r.outcome with
      | Error (Invalid_argument msg) when contains ~sub:"set_priority" msg ->
        out := { rule = "priority.mid-invocation"; severity = Error; pid = -1; detail = msg } :: !out
      | Error e ->
        out :=
          {
            rule = "lint.crash";
            severity = Error;
            pid = -1;
            detail =
              Fmt.str "replay under %s raised %s" r.policy_name (Printexc.to_string e);
          }
          :: !out
      | Ok _ -> ());
      (* Defense in depth: the engine already rejects mid-invocation
         priority changes, but a recorded event stream is re-checked so
         a bypassing code path cannot lint clean. *)
      let mid = Hashtbl.create 4 in
      List.iter
        (fun ev ->
          match ev with
          | Trace.Inv_begin { pid; _ } -> Hashtbl.replace mid pid true
          | Trace.Inv_end { pid; _ } -> Hashtbl.replace mid pid false
          | Trace.Set_priority { pid; priority } ->
            if Hashtbl.find_opt mid pid = Some true then
              out :=
                {
                  rule = "priority.mid-invocation";
                  severity = Error;
                  pid;
                  detail =
                    Fmt.str "%a changed priority to %d inside an invocation" pp_pid pid
                      priority;
                }
                :: !out
          | Trace.Stmt _ | Trace.Note _ | Trace.Axiom2_gate _ -> ())
        r.events)
    runs;
  finalize !out
