open Hwf_sim

(* ---- the static independence oracle ----

   The baseline relation ([Policy.independent]) declares two
   cross-processor transitions independent only when their footprints
   avoid a same-variable conflict. That loses the classic commuting
   cases: two fetch&adds on one counter commute as state updates
   (addition is commutative) even though both write the variable. What
   addition cannot fix is the {e results}: swapping two F&As swaps the
   old values they fetch. The oracle therefore extends the baseline
   only for RMW pairs whose kinds commute as updates {e and} whose
   nodes are result-insensitive: across every replay of the schedule
   battery, the node's per-process successor sequence is identical —
   the schedules vary the fetched values, so a value that steered
   control would have produced diverging successors in some replay.
   (A plain unique-successor test over the merged CFG would reject
   straight-line repetition — two consecutive F&As give the node the
   successor set {itself, next} — so the criterion is per-replay
   sequence equality, not merged-edge uniqueness.)

   Static insensitivity is an under-approximation in two ways the
   certifier below exists to police: the battery replays at most a
   dozen schedules (every replay may happen to fetch values that agree
   on the hidden branch), and a control-insensitive result can still
   escape as {e data} (stashed in a local, inspected by a harness
   verdict). Both escapes change a verdict or a per-process event
   sequence under reordering, which is exactly what [certify]'s
   swap-replay detects — the oracle is only armed through
   [certified_relation]. *)

module Node = struct
  type t = int * string (* pid, Cfg.key of the op *)

  let equal (p1, k1) (p2, k2) = p1 = p2 && String.equal k1 k2
  let hash = Hashtbl.hash
end

module Ntbl = Hashtbl.Make (Node)

(* RMW kinds that commute with themselves and each other as pure state
   updates: additive fetch-and-X. "C&S"/"propose"/"dcas" are
   first-writer-wins and stay dependent. *)
let additive_kind = function "F&A" | "F&I" -> true | _ -> false

type t = {
  insensitive : unit Ntbl.t;
      (* RMW nodes with replay-invariant successor sequences *)
  rmw_nodes : int;
  insensitive_nodes : int;
  indep_vars : string list;
      (* vars carrying only additive, insensitive RMW traffic *)
}

type summary = {
  rmw_nodes : int;
  insensitive_nodes : int;
  indep_vars : string list;
  indep_pairs : int;
}

let summary t =
  (* Count unordered node pairs the extension adds over the baseline:
     insensitive additive-RMW nodes of distinct pids on one variable
     (a node key reads "<kind> <var>"; non-additive kinds never commute,
     so they contribute no pairs however insensitive they are). *)
  let by_var = Hashtbl.create 8 in
  Ntbl.iter
    (fun (pid, key) () ->
      match String.index_opt key ' ' with
      | Some i when additive_kind (String.sub key 0 i) ->
        let var = String.sub key (i + 1) (String.length key - i - 1) in
        let cur = Option.value ~default:[] (Hashtbl.find_opt by_var var) in
        if not (List.mem pid cur) then Hashtbl.replace by_var var (pid :: cur)
      | _ -> ())
    t.insensitive;
  let pairs =
    Hashtbl.fold
      (fun _ pids acc ->
        let n = List.length pids in
        acc + (n * (n - 1) / 2))
      by_var 0
  in
  {
    rmw_nodes = t.rmw_nodes;
    insensitive_nodes = t.insensitive_nodes;
    indep_vars = t.indep_vars;
    indep_pairs = pairs;
  }

let build (o : Lint.outcome) =
  let n = Config.n o.Lint.spec.Lint.config in
  (* Pids whose replays were cut by the step limit have incomplete
     successor sequences: claim nothing about them. *)
  let truncated_pids =
    List.fold_left (fun acc (pid, _) -> pid :: acc) [] o.Lint.cfg.Cfg.truncated
  in
  (* Every RMW node observed in the battery, in discovery order (the
     CFG keys alone cannot be parsed back into ops, so collect from the
     raw events). *)
  let rmw_nodes = ref 0 in
  let seen = Ntbl.create 32 in
  let order = ref [] in
  List.iter
    (fun (run : Recorder.run) ->
      List.iter
        (fun (ev : Trace.event) ->
          match ev with
          | Trace.Stmt { pid; op = Op.Rmw _ as op; _ } ->
            let key = Cfg.key op in
            if not (Ntbl.mem seen (pid, key)) then begin
              Ntbl.add seen (pid, key) ();
              incr rmw_nodes;
              order := (pid, key) :: !order
            end
          | _ -> ())
        run.Recorder.events)
    o.Lint.runs_detail;
  (* One replay's successor map: for each RMW node, the ordered
     sequence of successor nodes its occurrences flowed to in that
     replay's per-process projection (invocation boundaries included as
     pseudo-nodes, like the CFG's). *)
  let succ_map (run : Recorder.run) =
    let seqs = Array.make n [] in
    let push pid node = if pid >= 0 && pid < n then seqs.(pid) <- node :: seqs.(pid) in
    List.iter
      (fun (ev : Trace.event) ->
        match ev with
        | Trace.Stmt { pid; op; _ } -> push pid (Cfg.key op)
        | Trace.Inv_begin { pid; label; _ } -> push pid ("entry:" ^ label)
        | Trace.Inv_end { pid; label; _ } -> push pid ("exit:" ^ label)
        | _ -> ())
      run.Recorder.events;
    let m = Ntbl.create 32 in
    Array.iteri
      (fun pid rev_seq ->
        let rec go = function
          | node :: rest ->
            if Ntbl.mem seen (pid, node) then begin
              let nxt = match rest with next :: _ -> next | [] -> "end" in
              let cur = Option.value ~default:[] (Ntbl.find_opt m (pid, node)) in
              Ntbl.replace m (pid, node) (nxt :: cur)
            end;
            go rest
          | [] -> ()
        in
        go (List.rev rev_seq))
      seqs;
    m
  in
  (* A node is result-insensitive when every replay agrees on its
     successor sequence: the battery varies the interleavings (and so
     the fetched values), so a result that steered control would have
     produced diverging successors in some replay. *)
  let insensitive = Ntbl.create 32 in
  (match o.Lint.runs_detail with
  | [] -> ()
  | first :: rest ->
    let reference = succ_map first in
    let others = List.map succ_map rest in
    List.iter
      (fun (pid, key) ->
        let agree =
          match Ntbl.find_opt reference (pid, key) with
          | None -> false
          | Some ref_succs ->
            List.for_all
              (fun m -> Ntbl.find_opt m (pid, key) = Some ref_succs)
              others
        in
        if agree && not (List.mem pid truncated_pids) then
          Ntbl.replace insensitive (pid, key) ())
      !order);
  (* Vars whose RMW traffic is exclusively additive and whose every
     observed RMW node is insensitive — the vars the relation can
     commute on (reported for observability; the relation itself
     checks pairwise). *)
  let indep_vars =
    List.filter_map
      (fun (var, info) ->
        let kinds = info.Astore.rmw_kinds in
        if
          kinds <> []
          && List.for_all additive_kind kinds
          && Ntbl.fold
               (fun (pid, key) () ok ->
                 ok
                 ||
                 (* at least one insensitive node on this var *)
                 match String.index_opt key ' ' with
                 | Some i ->
                   String.equal var
                     (String.sub key (i + 1) (String.length key - i - 1))
                   && Ntbl.mem insensitive (pid, key)
                 | None -> false)
               seen false
        then Some var
        else None)
      (Astore.vars o.Lint.store)
  in
  {
    insensitive;
    rmw_nodes = !rmw_nodes;
    insensitive_nodes = Ntbl.length insensitive;
    indep_vars;
  }

let insensitive t pid op = Ntbl.mem t.insensitive (pid, Cfg.key op)

let relation t : Policy.relation =
 fun a b ->
  Policy.independent a b
  || a.Policy.fknown && b.Policy.fknown
     && a.Policy.fproc <> b.Policy.fproc
     &&
     match (a.Policy.fop, b.Policy.fop) with
     | ( Some (Op.Rmw { var = v1; kind = k1 } as op1),
         Some (Op.Rmw { var = v2; kind = k2 } as op2) ) ->
       String.equal v1 v2 && additive_kind k1 && additive_kind k2
       && insensitive t a.Policy.fpid op1
       && insensitive t b.Policy.fpid op2
     | _ -> false

(* ---- differential swap-replay certification ----

   Record a handful of deterministic schedules with per-decision
   footprints; for each adjacent decision pair the relation claims
   independent, replay the schedule with the two decisions transposed
   and require (a) the same verdict and (b) per-process event
   sequences identical up to the global interleaving — Mazurkiewicz
   equivalence made operational. Any discrepancy is a refutation of
   the independence claim and a hard error for the caller. *)

type certification = {
  schedules : int;
  swaps : int;
  failures : string list;
}

(* Per-pid projection with global positions erased: two
   trace-equivalent runs must agree on these exactly. *)
let projection events n =
  let per = Array.make n [] in
  let push pid x = if pid >= 0 && pid < n then per.(pid) <- x :: per.(pid) in
  List.iter
    (fun (ev : Trace.event) ->
      match ev with
      | Trace.Stmt { pid; op; inv; cost; _ } ->
        push pid (Fmt.str "s:%a/%d/%d" Op.pp op inv cost)
      | Trace.Inv_begin { pid; inv; label } -> push pid (Fmt.str "b:%s/%d" label inv)
      | Trace.Inv_end { pid; inv; label } -> push pid (Fmt.str "e:%s/%d" label inv)
      | Trace.Note { pid; text } -> push pid ("n:" ^ text)
      | Trace.Set_priority { pid; priority } ->
        push pid (Fmt.str "p:%d" priority)
      | Trace.Axiom2_gate _ -> ())
    events;
  Array.map List.rev per

let record_schedule ~step_limit ~config ~policy programs =
  let decisions = Vec.create () in
  let fps = Vec.create () in
  let recording =
    Policy.of_factory "indep-record" (fun () ->
        let choose = Policy.prepare policy in
        fun view ->
          match choose view with
          | Some pid as r ->
            Vec.push decisions pid;
            Vec.push fps (Policy.footprint view pid);
            r
          | None -> None)
  in
  let result = Engine.run ~step_limit ~config ~policy:recording programs in
  (result, Vec.to_list decisions, Vec.to_list fps)

let certify ?(max_swaps = 64) ?(check = fun (_ : Engine.result) -> Ok ())
    ~config ~make t =
  let rel = relation t in
  let n = Config.n config in
  let step_limit = 200_000 in
  let policies = Recorder.battery ~budget:4 ~fair_only:true () in
  let swaps = ref 0 in
  let failures = ref [] in
  let schedules = ref 0 in
  let fail fmt = Fmt.kstr (fun m -> failures := m :: !failures) fmt in
  List.iter
    (fun (pname, mk_policy) ->
      if !swaps < max_swaps then begin
        incr schedules;
        let result0, decisions, fps =
          record_schedule ~step_limit ~config ~policy:(mk_policy ()) (make ())
        in
        let verdict0 = check result0 in
        let proj0 = projection (Trace.events result0.Engine.trace) n in
        let decisions = Array.of_list decisions in
        let fps = Array.of_list fps in
        (* Certify each distinct claimed-independent (op,op) node pair
           at its first adjacent occurrence in this schedule. *)
        let tried = Hashtbl.create 16 in
        for i = 0 to Array.length fps - 2 do
          if !swaps < max_swaps then begin
            let a = fps.(i) and b = fps.(i + 1) in
            let pair_key =
              ( a.Policy.fpid,
                Option.map Cfg.key a.Policy.fop,
                b.Policy.fpid,
                Option.map Cfg.key b.Policy.fop )
            in
            (* Only claims BEYOND the baseline need certification here:
               the baseline relation is regression-tested by the DPOR
               parity suite, and spending the swap budget on disjoint
               pairs would starve the extension claims. *)
            if
              a.Policy.fpid <> b.Policy.fpid
              && rel a b
              && not (Policy.independent a b)
              && not (Hashtbl.mem tried pair_key)
            then begin
              Hashtbl.add tried pair_key ();
              incr swaps;
              let swapped = Array.copy decisions in
              swapped.(i) <- decisions.(i + 1);
              swapped.(i + 1) <- decisions.(i);
              let policy = Policy.scripted (Array.to_list swapped) in
              let result1 =
                Engine.run ~step_limit ~config ~policy (make ())
              in
              let verdict1 = check result1 in
              let describe () =
                Fmt.str "%s: swap @@%d (p%d:%a / p%d:%a)" pname i
                  (a.Policy.fpid + 1)
                  Fmt.(option ~none:(any "?") Op.pp)
                  a.Policy.fop
                  (b.Policy.fpid + 1)
                  Fmt.(option ~none:(any "?") Op.pp)
                  b.Policy.fop
              in
              if
                Trace.statements result1.Engine.trace
                <> Trace.statements result0.Engine.trace
              then
                fail "%s: swapped replay diverged (%d statements vs %d)"
                  (describe ())
                  (Trace.statements result1.Engine.trace)
                  (Trace.statements result0.Engine.trace)
              else if verdict1 <> verdict0 then
                fail "%s: verdict changed under reordering (%s vs %s)"
                  (describe ())
                  (match verdict1 with Ok () -> "ok" | Error m -> m)
                  (match verdict0 with Ok () -> "ok" | Error m -> m)
              else begin
                let proj1 = projection (Trace.events result1.Engine.trace) n in
                let mismatch = ref None in
                Array.iteri
                  (fun pid p0 ->
                    if !mismatch = None && p0 <> proj1.(pid) then
                      mismatch := Some pid)
                  proj0;
                match !mismatch with
                | Some pid ->
                  fail "%s: p%d's event sequence changed under reordering"
                    (describe ()) (pid + 1)
                | None -> ()
              end
            end
          end
        done
      end)
    policies;
  { schedules = !schedules; swaps = !swaps; failures = List.rev !failures }

let certified_relation ?max_swaps ?check ~config ~make o =
  let t = build o in
  let cert = certify ?max_swaps ?check ~config ~make t in
  match cert.failures with
  | [] -> Ok (t, cert)
  | f :: _ ->
    Error
      (Fmt.str
         "Indep.certified_relation: independence claim refuted by swap replay \
          (%d of %d swaps failed; first: %s)"
         (List.length cert.failures) cert.swaps f)

let pp_summary ppf s =
  Fmt.pf ppf
    "@[<v>rmw nodes: %d (%d result-insensitive)@,\
     commuting vars: %a@,\
     pairs proven independent beyond baseline: %d@]"
    s.rmw_nodes s.insensitive_nodes
    Fmt.(list ~sep:comma string)
    s.indep_vars s.indep_pairs

let pp_certification ppf c =
  if c.failures = [] then
    Fmt.pf ppf "certified: %d swap replays over %d schedules, all equivalent"
      c.swaps c.schedules
  else
    Fmt.pf ppf "@[<v>REFUTED (%d/%d swaps):@,%a@]"
      (List.length c.failures)
      c.swaps
      Fmt.(list ~sep:(any "@,") string)
      c.failures
