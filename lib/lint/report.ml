open Hwf_sim
module Jsonl = Hwf_obs.Jsonl

let pp_outcome ppf (o : Lint.outcome) =
  let errors = Lint.errors o and warnings = Lint.warnings o in
  Fmt.pf ppf "@[<v>lint %s (%s): %s — %d replays, derived c=%d, %d error%s, %d warning%s@,"
    o.Lint.spec.Lint.name o.Lint.spec.Lint.theorem
    (if Lint.ok o then "OK" else "FAIL")
    o.Lint.runs o.Lint.cfg.Cfg.derived_c (List.length errors)
    (if List.length errors = 1 then "" else "s")
    (List.length warnings)
    (if List.length warnings = 1 then "" else "s");
  List.iter
    (fun (s : Cfg.shape) ->
      Fmt.pf ppf "  inv '%s': max %d stmts, %d completed@," s.Cfg.s_label
        s.Cfg.s_max_stmts s.Cfg.s_completed)
    o.Lint.cfg.Cfg.shapes;
  List.iter
    (fun (l : Cfg.loop) ->
      Fmt.pf ppf "  loop p%d '%s' at '%s': %a@," (l.Cfg.l_pid + 1) l.Cfg.l_label
        l.Cfg.l_head Cfg.pp_class l.Cfg.l_class)
    o.Lint.cfg.Cfg.loops;
  List.iter (fun f -> Fmt.pf ppf "  %a@," Checks.pp_finding f) o.Lint.findings;
  Fmt.pf ppf "@]"

(* ---- JSONL (schema hwf-lint/1; see docs/OBSERVABILITY.md) ----
   Same determinism contract as the trace/metrics writers: fixed field
   order, ints/bools/strings only, rows sorted — byte-equal output for
   equal inputs. *)

let header (o : Lint.outcome) =
  let config = o.Lint.spec.Lint.config in
  Jsonl.obj
    [
      ("schema", Jsonl.str Jsonl.lint_schema);
      ("subject", Jsonl.str o.Lint.spec.Lint.name);
      ("theorem", Jsonl.str o.Lint.spec.Lint.theorem);
      ("n", string_of_int (Config.n config));
      ("processors", string_of_int config.Config.processors);
      ("quantum", string_of_int config.Config.quantum);
      ("levels", string_of_int config.Config.levels);
    ]

let to_buffer buf (o : Lint.outcome) =
  let line s =
    Buffer.add_string buf s;
    Buffer.add_char buf '\n'
  in
  line (header o);
  line
    (Jsonl.obj
       [
         ("l", Jsonl.str "summary");
         ("ok", Jsonl.bool (Lint.ok o));
         ("runs", string_of_int o.Lint.runs);
         ("derived_c", string_of_int o.Lint.cfg.Cfg.derived_c);
         ("min_quantum", string_of_int o.Lint.spec.Lint.min_quantum);
         ("errors", string_of_int (List.length (Lint.errors o)));
         ("warnings", string_of_int (List.length (Lint.warnings o)));
       ]);
  List.iter
    (fun (f : Checks.finding) ->
      line
        (Jsonl.obj
           [
             ("l", Jsonl.str "finding");
             ("rule", Jsonl.str f.Checks.rule);
             ("severity", Jsonl.str (Fmt.str "%a" Checks.pp_severity f.Checks.severity));
             ("pid", string_of_int f.Checks.pid);
             ("detail", Jsonl.str f.Checks.detail);
           ]))
    o.Lint.findings;
  List.iter
    (fun (s : Cfg.shape) ->
      line
        (Jsonl.obj
           [
             ("l", Jsonl.str "inv");
             ("label", Jsonl.str s.Cfg.s_label);
             ("max_stmts", string_of_int s.Cfg.s_max_stmts);
             ("completed", string_of_int s.Cfg.s_completed);
           ]))
    o.Lint.cfg.Cfg.shapes;
  List.iter
    (fun (l : Cfg.loop) ->
      line
        (Jsonl.obj
           [
             ("l", Jsonl.str "loop");
             ("pid", string_of_int l.Cfg.l_pid);
             ("label", Jsonl.str l.Cfg.l_label);
             ("head", Jsonl.str l.Cfg.l_head);
             ("class", Jsonl.str (Fmt.str "%a" Cfg.pp_class l.Cfg.l_class));
           ]))
    o.Lint.cfg.Cfg.loops;
  List.iter
    (fun (v, (i : Astore.info)) ->
      line
        (Jsonl.obj
           [
             ("l", Jsonl.str "var");
             ("var", Jsonl.str v);
             ("readers", string_of_int (List.length (Astore.readers o.Lint.store v)));
             ("writers", string_of_int (List.length (Astore.writers o.Lint.store v)));
             ("peeks", string_of_int i.Astore.peeks);
             ("pokes", string_of_int i.Astore.pokes);
             ("instrumented", string_of_int i.Astore.instrumented);
           ]))
    (Astore.vars o.Lint.store)

let to_string (outcomes : Lint.outcome list) =
  let buf = Buffer.create 4096 in
  List.iter (fun o -> to_buffer buf o) outcomes;
  Buffer.contents buf

let write ~path outcomes =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string outcomes))
