(** Lint output: human-readable text and JSONL (schema [hwf-lint/1]).

    The JSONL form follows the observability layer's determinism
    contract ([docs/OBSERVABILITY.md]): one object per line, fixed
    field order, ints/bools/strings only, rows sorted — so the bytes
    are a function of the outcomes alone. Per outcome: a header line
    (schema + subject + machine shape), a ["summary"] row, then
    ["finding"], ["inv"], ["loop"] and ["var"] rows. *)

val pp_outcome : Lint.outcome Fmt.t

val to_string : Lint.outcome list -> string
(** Concatenated JSONL documents, one per outcome, each line
    ['\n']-terminated. *)

val write : path:string -> Lint.outcome list -> unit
(** [to_string] to [path] (truncating). *)
