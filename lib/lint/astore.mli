(** The abstract store: who touches which shared variable, and how.

    Folded from the announced statements and tapped accesses of a
    replay battery, it is the value domain of the linter's abstract
    interpretation — per-variable reader/writer process sets (plus
    harness-access counters). The loop checker consults it to decide
    whether a spin loop is {e helping-bounded}: a loop whose body reads
    a variable that a different process writes can be released by that
    process, while one that reads only self-written state cannot. *)

type info = {
  mutable readers : Set.Make(Int).t;  (** Pids that announced reads. *)
  mutable writers : Set.Make(Int).t;  (** Pids that announced writes (incl. rmw). *)
  mutable rmw_kinds : string list;  (** Distinct rmw kinds seen. *)
  mutable peeks : int;  (** Non-instrumentation peeks from process windows. *)
  mutable pokes : int;  (** Non-instrumentation pokes from process windows. *)
  mutable instrumented : int;  (** Accesses inside {!Hwf_sim.Runtime.instrumentation}. *)
}

type t

val build : Recorder.run list -> t

val writers : t -> string -> int list
(** Writer pids of a variable, ascending ([[]] for unknown variables). *)

val readers : t -> string -> int list
(** Reader pids of a variable, ascending. *)

val written_by_other : t -> var:string -> pid:int -> bool
(** Does any process other than [pid] write [var]? *)

val vars : t -> (string * info) list
(** All variables, sorted by name (deterministic report order). *)

val pp_info : info Fmt.t
