open Hwf_sim

module Iset = Set.Make (Int)

type info = {
  mutable readers : Iset.t;
  mutable writers : Iset.t;
  mutable rmw_kinds : string list;
  mutable peeks : int;
  mutable pokes : int;
  mutable instrumented : int;
}

type t = (string, info) Hashtbl.t

let info t var =
  match Hashtbl.find_opt t var with
  | Some i -> i
  | None ->
    let i =
      {
        readers = Iset.empty;
        writers = Iset.empty;
        rmw_kinds = [];
        peeks = 0;
        pokes = 0;
        instrumented = 0;
      }
    in
    Hashtbl.add t var i;
    i

let build (runs : Recorder.run list) =
  let t : t = Hashtbl.create 64 in
  List.iter
    (fun (r : Recorder.run) ->
      List.iter
        (fun ev ->
          match ev with
          | Trace.Stmt { pid; op; _ } -> (
            match op with
            | Op.Read v -> (info t v).readers <- Iset.add pid (info t v).readers
            | Op.Write v -> (info t v).writers <- Iset.add pid (info t v).writers
            | Op.Rmw { var; kind } ->
              let i = info t var in
              i.readers <- Iset.add pid i.readers;
              i.writers <- Iset.add pid i.writers;
              if not (List.mem kind i.rmw_kinds) then i.rmw_kinds <- kind :: i.rmw_kinds
            | Op.Local _ -> ())
          | Trace.Inv_begin _ | Trace.Inv_end _ | Trace.Note _ | Trace.Set_priority _
          | Trace.Axiom2_gate _ -> ())
        r.events;
      List.iter
        (fun (w : Recorder.window) ->
          List.iter
            (fun (a : Runtime.access) ->
              let i = info t a.var in
              if a.instrumentation then i.instrumented <- i.instrumented + 1
              else
                match a.kind with
                | Runtime.Peek -> i.peeks <- i.peeks + 1
                | Runtime.Poke -> i.pokes <- i.pokes + 1
                | Runtime.Read | Runtime.Write -> ())
            w.w_accesses)
        r.windows)
    runs;
  t

let writers t var =
  match Hashtbl.find_opt t var with
  | None -> []
  | Some i -> Iset.elements i.writers

let readers t var =
  match Hashtbl.find_opt t var with
  | None -> []
  | Some i -> Iset.elements i.readers

let written_by_other t ~var ~pid = List.exists (fun q -> q <> pid) (writers t var)

let vars t =
  Hashtbl.fold (fun v i acc -> (v, i) :: acc) t []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let pp_info ppf (i : info) =
  Fmt.pf ppf "readers=%a writers=%a%s%s" Fmt.(Dump.list int) (Iset.elements i.readers)
    Fmt.(Dump.list int)
    (Iset.elements i.writers)
    (if i.peeks + i.pokes > 0 then Fmt.str " peeks=%d pokes=%d" i.peeks i.pokes else "")
    (if i.instrumented > 0 then Fmt.str " instrumented=%d" i.instrumented else "")
