open Hwf_sim

type window = {
  w_pid : int;
  w_op : Op.t option;
  w_inv : int;
  w_label : string;
  mutable w_accesses : Runtime.access list;
}

type run = {
  policy_name : string;
  outcome : (Engine.result, exn) result;
  events : Trace.event list;
  windows : window list;
}

(* Attribution relies on the engine being synchronous on one domain: a
   Stmt event is appended (observer fires) immediately before the
   process's continuation resumes, and every store access the process
   performs before its next effect happens before any further event. So
   "accesses after event E, before the next event" is exactly "accesses
   of the statement (or boundary segment) E announced". *)
let record ?(step_limit = 200_000) ~policy_name ~config ~policy programs =
  let events = ref [] in
  let windows = ref [] in
  let current = ref None in
  let close () =
    match !current with
    | None -> ()
    | Some w ->
      w.w_accesses <- List.rev w.w_accesses;
      windows := w :: !windows;
      current := None
  in
  let open_window pid op inv label =
    close ();
    current := Some { w_pid = pid; w_op = op; w_inv = inv; w_label = label; w_accesses = [] }
  in
  let label = Array.make (Config.n config) "" in
  let observer ev =
    events := ev :: !events;
    match ev with
    | Trace.Stmt { pid; op; inv; _ } -> open_window pid (Some op) inv label.(pid)
    | Trace.Inv_begin { pid; inv; label = l } ->
      label.(pid) <- l;
      open_window pid None inv l
    | Trace.Inv_end { pid; _ } ->
      label.(pid) <- "";
      open_window pid None (-1) ""
    | Trace.Note _ | Trace.Set_priority _ | Trace.Axiom2_gate _ -> ()
  in
  let tap access =
    (match !current with
    | None ->
      (* Launch-time prelude, before any event gave us a pid. *)
      open_window (-1) None (-1) ""
    | Some _ -> ());
    match !current with
    | Some w -> w.w_accesses <- access :: w.w_accesses
    | None -> assert false
  in
  let outcome =
    try
      Ok
        (Runtime.with_tap tap (fun () ->
             Engine.run ~step_limit ~observer ~config ~policy programs))
    with e -> Error e
  in
  close ();
  { policy_name; outcome; events = List.rev !events; windows = List.rev !windows }

let battery ?(budget = 12) ~fair_only () =
  let budget = max 1 budget in
  let base =
    if fair_only then [ ("round-robin", fun () -> Policy.round_robin ()) ]
    else
      [
        ("round-robin", fun () -> Policy.round_robin ());
        ("first", fun () -> Policy.first);
        ("highest-pid", fun () -> Policy.highest_pid);
        ("by-priority", fun () -> Policy.by_priority);
      ]
  in
  let randoms =
    List.init (max 0 (budget - List.length base)) (fun i ->
        (Printf.sprintf "random-%d" i, fun () -> Policy.random ~seed:(100 + (37 * i))))
  in
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | x :: rest -> x :: take (n - 1) rest
  in
  take budget (base @ randoms)

let record_battery ?budget ?step_limit ~fair_only ~config ~make () =
  List.map
    (fun (policy_name, policy) ->
      record ?step_limit ~policy_name ~config ~policy:(policy ()) (make ()))
    (battery ?budget ~fair_only ())
