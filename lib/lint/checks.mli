(** The four conformance checkers.

    Each consumes the replay battery (or the CFG folded from it) and
    produces findings; an [Error]-severity finding fails the lint, a
    [Warning] is informational. Rule identifiers are stable strings
    (["atomicity.multi-var"], ["loop-bound.unbounded"], ...) — the
    corpus tests and the JSONL schema key on them. *)

open Hwf_sim

type severity = Error | Warning

val pp_severity : severity Fmt.t

type finding = {
  rule : string;  (** Stable rule identifier, ["checker.rule"]. *)
  severity : severity;
  pid : int;  (** Offending process, or [-1] when not attributable. *)
  detail : string;
}

val pp_finding : finding Fmt.t

type expectation =
  | Exact of int
      (** The derived per-invocation statement constant must equal this
          (Fig. 3: exactly the 8 statements of Theorem 1). *)
  | At_most of int
      (** The derived constant must not exceed this (Theorems 2/4
          bounds, declared with slack). *)
  | Helping
      (** No static per-invocation bound: termination rests on a
          helping/fairness argument (Sec. 5); only loop classification
          applies. *)

val atomicity : Recorder.run list -> finding list
(** Model conformance of statements: every window's concrete accesses
    must stay within its announcement. Rules: [atomicity.multi-var] (a
    statement touches more than one shared variable),
    [atomicity.harness-access] (a non-instrumentation peek/poke is
    reachable from process code), [atomicity.var-mismatch] (access to a
    variable other than the announced one), [atomicity.kind-mismatch]
    (write under a read announcement or vice versa),
    [atomicity.unannounced] (shared access under a [Local] statement or
    outside any announcement). Zero accesses under a shared
    announcement are allowed — objects built on plain OCaml state
    ([Hw_atomic]) are invisible to the tap by design. *)

val loop_bound : Cfg.t -> finding list
(** Wait-freedom of loops: [loop-bound.unbounded] ([Error]) for loops
    or invocations cut off by the replay budget; [loop-bound.helping]
    ([Warning]) for loops that spin on another process's writes. Static
    loops produce no finding. *)

val quantum_shape :
  expect:expectation ->
  min_quantum:int ->
  theorem:string ->
  config:Config.t ->
  Cfg.t ->
  finding list
(** Theorem preconditions: [quantum-shape.constant] when the derived
    per-invocation constant disagrees with the declared expectation,
    [quantum-shape.quantum] when the configured quantum is below the
    theorem's [Q >= ...] precondition. *)

val priority : Recorder.run list -> finding list
(** Priority-change legality: [priority.mid-invocation] when a replay
    raised the engine's mid-invocation [set_priority] rejection or a
    recorded event stream contains a mid-invocation change;
    [lint.crash] for any other exception escaping a replay. *)
