(** Control-flow reconstruction from replayed statement sequences.

    Nodes are announced statements (keyed by their rendering, so "read
    X" is one node however many syntactic sites produce it — an
    observational CFG); edges connect consecutive statements of one
    invocation, bracketed by [entry:label]/[exit:label] pseudo-nodes. A
    statement recurring within a single invocation is a back edge, and
    the segment since its previous occurrence is one iteration of the
    loop body.

    Loop classification ({!loop_class}) is the wait-freedom core of the
    linter: [Static] loops read no variable another process writes, so
    their iteration count cannot depend on other processes (bounded by
    the code itself); [Helping] loops spin on a variable some other
    process writes — bounded only under a helping/fairness argument
    (Sec. 5); [Unbounded] loops belong to an invocation that was still
    open when a replay exhausted its statement budget, the replay
    signature of a non-wait-free loop. *)

open Hwf_sim

type loop_class = Static | Helping | Unbounded

val pp_class : loop_class Fmt.t

type loop = {
  l_pid : int;
  l_label : string;  (** Enclosing invocation label. *)
  l_head : string;  (** The repeated statement (rendered). *)
  l_body : Op.t list;  (** One observed iteration, head first. *)
  mutable l_class : loop_class;
}

type shape = {
  s_label : string;
  mutable s_max_stmts : int;
      (** Longest observed statement path of one invocation, across all
          replays and processes — the per-invocation constant [c]. *)
  mutable s_completed : int;  (** Completed invocations observed. *)
}

type t = {
  edges : (int * string * string) list;  (** (pid, from, to), sorted. *)
  loops : loop list;
  shapes : shape list;
  truncated : (int * string) list;
      (** (pid, label) invocations left open by a [Step_limit] stop. *)
  derived_c : int;  (** Max of [s_max_stmts] over all shapes. *)
}

val key : Op.t -> string
(** The node key of a statement (its rendering). *)

val build : Astore.t -> Recorder.run list -> t
(** Fold every replay into one CFG; the store decides helping-ness. *)
