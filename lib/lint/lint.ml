open Hwf_sim

type spec = {
  name : string;
  config : Config.t;
  make : unit -> (unit -> unit) array;
  expect : Checks.expectation;
  min_quantum : int;
  theorem : string;
  fair_only : bool;
  step_limit : int;
}

type outcome = {
  spec : spec;
  runs : int;
  runs_detail : Recorder.run list;
  store : Astore.t;
  cfg : Cfg.t;
  findings : Checks.finding list;
}

let run ?budget spec =
  let runs =
    Recorder.record_battery ?budget ~step_limit:spec.step_limit ~fair_only:spec.fair_only
      ~config:spec.config ~make:spec.make ()
  in
  let store = Astore.build runs in
  let cfg = Cfg.build store runs in
  let findings =
    Checks.atomicity runs
    @ Checks.loop_bound cfg
    @ Checks.quantum_shape ~expect:spec.expect ~min_quantum:spec.min_quantum
        ~theorem:spec.theorem ~config:spec.config cfg
    @ Checks.priority runs
  in
  { spec; runs = List.length runs; runs_detail = runs; store; cfg; findings }

let errors o =
  List.filter (fun (f : Checks.finding) -> f.Checks.severity = Checks.Error) o.findings

let warnings o =
  List.filter (fun (f : Checks.finding) -> f.Checks.severity = Checks.Warning) o.findings

let ok o = errors o = []
