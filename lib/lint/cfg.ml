open Hwf_sim

type loop_class = Static | Helping | Unbounded

let pp_class ppf c =
  Fmt.string ppf
    (match c with Static -> "static" | Helping -> "helping" | Unbounded -> "unbounded")

type loop = {
  l_pid : int;
  l_label : string;
  l_head : string;
  l_body : Op.t list;
  mutable l_class : loop_class;
}

type shape = {
  s_label : string;
  mutable s_max_stmts : int;
  mutable s_completed : int;
}

type t = {
  edges : (int * string * string) list;
  loops : loop list;
  shapes : shape list;
  truncated : (int * string) list;
  derived_c : int;
}

let key op = Fmt.str "%a" Op.pp op

(* Per-pid state while replaying one run's event stream. *)
type path = { p_label : string; mutable p_ops : Op.t list (* reversed *) }

let build (store : Astore.t) (runs : Recorder.run list) =
  let edges = Hashtbl.create 256 in
  let loops : (int * string * string, loop) Hashtbl.t = Hashtbl.create 16 in
  let shapes : (string, shape) Hashtbl.t = Hashtbl.create 16 in
  let truncated = Hashtbl.create 8 in
  let shape label =
    match Hashtbl.find_opt shapes label with
    | Some s -> s
    | None ->
      let s = { s_label = label; s_max_stmts = 0; s_completed = 0 } in
      Hashtbl.add shapes label s;
      s
  in
  let edge pid a b = Hashtbl.replace edges (pid, a, b) () in
  let classify pid body =
    let reads_var_of_other op =
      match op with
      | Op.Read v | Op.Rmw { var = v; _ } -> Astore.written_by_other store ~var:v ~pid
      | Op.Write _ | Op.Local _ -> false
    in
    if List.exists reads_var_of_other body then Helping else Static
  in
  let record_loop pid label head body =
    let k = (pid, label, head) in
    if not (Hashtbl.mem loops k) then
      Hashtbl.add loops k
        { l_pid = pid; l_label = label; l_head = head; l_body = body; l_class = classify pid body }
  in
  List.iter
    (fun (r : Recorder.run) ->
      let paths : (int, path) Hashtbl.t = Hashtbl.create 8 in
      List.iter
        (fun ev ->
          match ev with
          | Trace.Inv_begin { pid; label; _ } ->
            Hashtbl.replace paths pid { p_label = label; p_ops = [] }
          | Trace.Stmt { pid; op; _ } -> (
            match Hashtbl.find_opt paths pid with
            | None -> ()  (* statement outside an invocation: engine forbids *)
            | Some p ->
              let k = key op in
              (match p.p_ops with
              | [] -> edge pid ("entry:" ^ p.p_label) k
              | prev :: _ -> edge pid (key prev) k);
              (* Back edge: this op already executed in the current
                 invocation — the segment since its last occurrence is
                 one iteration of a loop body. *)
              (let rec since acc = function
                 | [] -> None
                 | o :: rest -> if key o = k then Some (o :: acc) else since (o :: acc) rest
               in
               match since [] p.p_ops with
               | None -> ()
               | Some body -> record_loop pid p.p_label k body);
              p.p_ops <- op :: p.p_ops)
          | Trace.Inv_end { pid; label; _ } -> (
            match Hashtbl.find_opt paths pid with
            | None -> ()
            | Some p ->
              (match p.p_ops with
              | [] -> edge pid ("entry:" ^ label) ("exit:" ^ label)
              | last :: _ -> edge pid (key last) ("exit:" ^ label));
              let s = shape label in
              s.s_max_stmts <- max s.s_max_stmts (List.length p.p_ops);
              s.s_completed <- s.s_completed + 1;
              Hashtbl.remove paths pid)
          | Trace.Note _ | Trace.Set_priority _ | Trace.Axiom2_gate _ -> ())
        r.events;
      (* Invocations still open when the statement budget ran out are
         the replay signature of an unbounded loop. *)
      match r.outcome with
      | Ok { Engine.stop = Engine.Step_limit | Engine.Decision_limit; _ } ->
        Hashtbl.iter
          (fun pid (p : path) ->
            Hashtbl.replace truncated (pid, p.p_label) ();
            Hashtbl.iter
              (fun (lp, ll, _) (l : loop) ->
                if lp = pid && ll = p.p_label then l.l_class <- Unbounded)
              loops)
          paths
      | Ok _ | Error _ -> ())
    runs;
  let edges =
    Hashtbl.fold (fun e () acc -> e :: acc) edges [] |> List.sort compare
  in
  let loops =
    Hashtbl.fold (fun _ l acc -> l :: acc) loops []
    |> List.sort (fun a b -> compare (a.l_pid, a.l_label, a.l_head) (b.l_pid, b.l_label, b.l_head))
  in
  let shapes =
    Hashtbl.fold (fun _ s acc -> s :: acc) shapes []
    |> List.sort (fun a b -> String.compare a.s_label b.s_label)
  in
  let truncated = Hashtbl.fold (fun k () acc -> k :: acc) truncated [] |> List.sort compare in
  let derived_c = List.fold_left (fun acc s -> max acc s.s_max_stmts) 0 shapes in
  { edges; loops; shapes; truncated; derived_c }
