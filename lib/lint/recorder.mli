(** The replay harness behind the conformance linter.

    The "static" analysis of [Hwf_lint] is enumerative symbolic replay:
    process bodies are ordinary OCaml closures, so instead of parsing
    syntax the recorder runs them under {!Hwf_sim.Engine.run} with an
    instrumented store and reconstructs their control-flow from the
    announced statements. Bodies are deterministic given the values
    their reads return, and those values depend only on the
    interleaving — so replaying a battery of schedules (the {e branch
    budget}) enumerates the data-dependent branch outcomes the
    schedules can produce. [docs/LINT.md] spells out the resulting
    over-/under-approximation caveats. *)

open Hwf_sim

type window = {
  w_pid : int;  (** Executing process; [-1] for launch-time prelude code. *)
  w_op : Op.t option;
      (** [Some op] — the window covers the execution of the announced
          statement [op]. [None] — boundary code between an invocation
          event and the next statement. *)
  w_inv : int;  (** Invocation index; [-1] outside any invocation. *)
  w_label : string;  (** Invocation label; [""] outside. *)
  mutable w_accesses : Runtime.access list;
      (** Concrete store accesses attributed to this window, in order. *)
}

type run = {
  policy_name : string;
  outcome : (Engine.result, exn) result;
      (** [Error e] when the engine (or a body) raised — e.g. an illegal
          mid-invocation {!Hwf_sim.Eff.set_priority}. The events and
          windows gathered up to that point are still available. *)
  events : Trace.event list;
      (** The full event history, collected through the observer hook
          (so it survives an engine exception, unlike the trace). *)
  windows : window list;  (** Chronological access windows. *)
}

val record :
  ?step_limit:int ->
  policy_name:string ->
  config:Config.t ->
  policy:Policy.t ->
  (unit -> unit) array ->
  run
(** One instrumented replay: installs an access tap
    ({!Hwf_sim.Runtime.with_tap}) and a trace observer around
    {!Hwf_sim.Engine.run} and correlates every store access with the
    statement (or boundary segment) that was executing. [step_limit]
    defaults to 200_000; a run cut short by it is how the linter detects
    statically unbounded loops. *)

val battery :
  ?budget:int -> fair_only:bool -> unit -> (string * (unit -> Policy.t)) list
(** The deterministic schedule battery, at most [budget] (default 12)
    entries: round-robin, the deterministic extremes (first,
    highest-pid, by-priority) and seeded random policies. With
    [fair_only] the unfair deterministic policies are dropped — required
    for subjects whose termination assumes fair scheduling (Sec. 5
    helping loops, which an unfair policy may legally starve). *)

val record_battery :
  ?budget:int ->
  ?step_limit:int ->
  fair_only:bool ->
  config:Config.t ->
  make:(unit -> (unit -> unit) array) ->
  unit ->
  run list
(** [record] once per battery entry, building fresh programs (and the
    shared state they close over) for every replay. *)
