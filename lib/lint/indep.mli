(** The static independence oracle and its differential certifier.

    The baseline relation ({!Hwf_sim.Policy.independent}) treats every
    same-variable pair with a write as dependent. That forfeits the
    classic commuting case: two fetch&adds on one counter commute as
    state updates — addition is commutative — and differ only in the
    old values they fetch. When the fetched value demonstrably steers
    nothing, the pair is independent in the Mazurkiewicz sense and the
    explorer ({!Hwf_adversary.Explore}) may prune one of the two
    orders.

    {b The oracle.} [build] derives, from a linter outcome (the
    schedule-battery replays of {!Lint.run}), the set of
    {e result-insensitive} RMW nodes: RMW statements whose per-process
    successor sequence is identical across every replay of the battery,
    for processes whose replays were never truncated. (Sequence
    equality per replay, not unique-successor over the merged CFG:
    straight-line repetition — two consecutive F&As — gives the merged
    node the successor set [{itself, next}] while remaining perfectly
    insensitive.) The derived {!relation} extends the baseline with:
    both footprints known, different processors, both next statements
    RMWs on the same variable with {e additive} kinds ([F&A]/[F&I] —
    cross-kind allowed, addition commutes), and both nodes
    result-insensitive.

    {b Soundness argument.} Commuting the updates preserves the final
    store (addition is commutative and each RMW is atomic); preserving
    downstream {e control} is what replay-invariant successors witness —
    the battery varies the interleavings and hence the fetched values,
    so a value that steered control would have produced diverging
    successors in some replay. Two escapes remain, both dynamic: the
    battery replays at most a dozen schedules, so every replay may
    happen to fetch values that agree on a hidden branch; and a
    control-insensitive fetched value can still escape as {e data} into
    a harness verdict. Both change a verdict or a per-process event
    sequence under reordering — which is what the certifier checks, so
    the oracle is only armed through {!certified_relation}.

    {b The certifier.} [certify] records deterministic schedules with
    per-decision footprints, and for each adjacent decision pair the
    relation claims independent, replays the schedule with the two
    decisions transposed (strict {!Hwf_sim.Policy.scripted} — a stalled
    replay is itself a failure) and requires the same verdict and
    per-process event sequences identical up to the interleaving. Any
    discrepancy refutes the independence claim and must be treated as a
    hard error. *)

open Hwf_sim

type t
(** The oracle: result-insensitive RMW nodes plus summary counts. *)

type summary = {
  rmw_nodes : int;  (** Distinct (pid, RMW node) pairs observed. *)
  insensitive_nodes : int;  (** Of those, proven result-insensitive. *)
  indep_vars : string list;
      (** Variables carrying additive-only RMW traffic with at least one
          insensitive node — the variables the relation can commute on. *)
  indep_pairs : int;
      (** Unordered node pairs proven independent beyond the baseline. *)
}

val build : Lint.outcome -> t
(** Derive the oracle from a linter outcome. Pure static pass: no runs
    are performed. *)

val summary : t -> summary

val insensitive : t -> Proc.pid -> Op.t -> bool
(** Is this pid's node for [op] result-insensitive (replay-invariant
    successor sequence across the battery, untruncated pid)? *)

val relation : t -> Policy.relation
(** The extended independence judgement. Symmetric; [false] whenever in
    doubt; at least as strong as {!Policy.independent}. Do not feed it
    to an explorer without certification — use {!certified_relation}. *)

type certification = {
  schedules : int;  (** Deterministic schedules recorded. *)
  swaps : int;  (** Adjacent transpositions replayed. *)
  failures : string list;
      (** Human-readable refutations; empty iff certified. *)
}

val certify :
  ?max_swaps:int ->
  ?check:(Engine.result -> (unit, string) result) ->
  config:Config.t ->
  make:(unit -> (unit -> unit) array) ->
  t ->
  certification
(** Differentially certify the oracle on a workload: [make] must build
    fresh programs per call (same contract as {!Lint.spec.make}), and
    [check] is the harness verdict that must be invariant under claimed
    commutations (default: always [Ok]). [max_swaps] (default 64) caps
    replay cost; distinct node pairs are certified once per schedule. *)

val certified_relation :
  ?max_swaps:int ->
  ?check:(Engine.result -> (unit, string) result) ->
  config:Config.t ->
  make:(unit -> (unit -> unit) array) ->
  Lint.outcome ->
  (t * certification, string) result
(** [build] then [certify]; [Error] carries the first refutation and is
    a hard error — the workload's battery produced an unsound
    independence claim, so the oracle must not be used. *)

val pp_summary : summary Fmt.t
val pp_certification : certification Fmt.t
