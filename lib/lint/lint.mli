(** The model-conformance linter, end to end.

    A {!spec} names a workload (fresh programs per replay, like an
    exploration scenario) together with the theorem preconditions it
    claims; {!run} replays it under the schedule battery
    ({!Recorder.battery}), folds the replays into an abstract store and
    CFG, and runs the four checkers ({!Checks}). The curated specs for
    the paper's algorithms live in [Hwf_workload.Registry]; known-bad
    specs for testing the checkers live in the corpus library under
    [test/lint_corpus/]. *)

open Hwf_sim

type spec = {
  name : string;
  config : Config.t;
  make : unit -> (unit -> unit) array;
      (** Must build fresh shared state per call (replays are
          independent runs). *)
  expect : Checks.expectation;
      (** Declared per-invocation statement constant. *)
  min_quantum : int;
      (** The theorem's [Q >= ...] precondition on [config.quantum]. *)
  theorem : string;  (** For messages, e.g. ["Theorem 1"]. *)
  fair_only : bool;
      (** Restrict the battery to fair schedules (helping subjects). *)
  step_limit : int;  (** Per-replay statement budget. *)
}

type outcome = {
  spec : spec;
  runs : int;  (** Replays performed (the consumed branch budget). *)
  runs_detail : Recorder.run list;
      (** The raw replays the store/CFG were folded from — kept so
          downstream passes ({!Indep}) can revisit the per-run events. *)
  store : Astore.t;
  cfg : Cfg.t;
  findings : Checks.finding list;
}

val run : ?budget:int -> spec -> outcome
(** Replay, fold, check. [budget] bounds the schedule battery
    (default 12). *)

val errors : outcome -> Checks.finding list
val warnings : outcome -> Checks.finding list

val ok : outcome -> bool
(** No [Error]-severity findings. *)
