open Hwf_sim

(* Happens-before race certification over recorded traces.

   Vector clocks, FastTrack-shaped per-variable state. The
   happens-before order is deliberately sparse:

   - per-process program order, and
   - RMW statements synchronize per variable (release into the
     variable's clock on every RMW, acquire from it before the check) —
     an RMW is the model's only synchronization primitive, so two RMWs
     on one variable never race, like lock-protected critical sections.

   Same-processor interleaving order is deliberately NOT part of
   happens-before: the scheduler serializes same-processor statements,
   but which order it picks is nondeterministic, so two conflicting
   plain accesses from different processes race even on a uniprocessor
   — the schedule that exposes the bug merely hasn't been picked yet.
   Including scheduler order would certify uniprocessor traces
   race-free by construction, which is exactly the false negative this
   pass exists to rule out. *)

type access = Read | Write | Update

let access_tag = function Read -> "r" | Write -> "w" | Update -> "u"

type race = {
  var : string;
  pid : Proc.pid;
  op : Op.t;
  idx : int;
  prior_pid : Proc.pid;
  prior_access : access;
  prior_idx : int;
}

type report = {
  n : int;
  statements : int;
  accesses : int;
  vars : int;
  races : race list;
  racy_vars : string list;
}

type var_state = {
  lock : int array;  (* release clock: join of every RMW's clock *)
  last_w : int array;  (* epoch of each pid's last write/update *)
  last_w_idx : int array;
  last_w_access : access array;
  last_r : int array;  (* epoch of each pid's last plain read *)
  last_r_idx : int array;
}

let of_trace trace =
  let config = Trace.config trace in
  let n = Config.n config in
  let vc = Array.init n (fun _ -> Array.make n 0) in
  let vars : (string, var_state) Hashtbl.t = Hashtbl.create 16 in
  let var_order = ref [] in
  let state var =
    match Hashtbl.find_opt vars var with
    | Some s -> s
    | None ->
      let s =
        {
          lock = Array.make n 0;
          last_w = Array.make n 0;
          last_w_idx = Array.make n (-1);
          last_w_access = Array.make n Write;
          last_r = Array.make n 0;
          last_r_idx = Array.make n (-1);
        }
      in
      Hashtbl.add vars var s;
      var_order := var :: !var_order;
      s
  in
  let races = ref [] in
  let reported = Hashtbl.create 16 in
  let accesses = ref 0 in
  let report ~var ~pid ~op ~idx ~prior_pid ~prior_access ~prior_idx =
    (* One report per (var, pid pair, prior kind): each further
       occurrence is the same bug. *)
    let key = (var, min pid prior_pid, max pid prior_pid, prior_access) in
    if not (Hashtbl.mem reported key) then begin
      Hashtbl.add reported key ();
      races :=
        { var; pid; op; idx; prior_pid; prior_access; prior_idx } :: !races
    end
  in
  let check_writes s ~var ~pid ~op ~idx =
    Array.iteri
      (fun q epoch ->
        if q <> pid && epoch > vc.(pid).(q) then
          report ~var ~pid ~op ~idx ~prior_pid:q
            ~prior_access:s.last_w_access.(q) ~prior_idx:s.last_w_idx.(q))
      s.last_w
  in
  let check_reads s ~var ~pid ~op ~idx =
    Array.iteri
      (fun q epoch ->
        if q <> pid && epoch > vc.(pid).(q) then
          report ~var ~pid ~op ~idx ~prior_pid:q ~prior_access:Read
            ~prior_idx:s.last_r_idx.(q))
      s.last_r
  in
  Trace.iter
    (fun ev ->
      match ev with
      | Trace.Stmt { idx; pid; op; _ } when pid >= 0 && pid < n -> (
        let me = vc.(pid) in
        match op with
        | Op.Read var ->
          incr accesses;
          me.(pid) <- me.(pid) + 1;
          let s = state var in
          check_writes s ~var ~pid ~op ~idx;
          s.last_r.(pid) <- me.(pid);
          s.last_r_idx.(pid) <- idx
        | Op.Write var ->
          incr accesses;
          me.(pid) <- me.(pid) + 1;
          let s = state var in
          check_writes s ~var ~pid ~op ~idx;
          check_reads s ~var ~pid ~op ~idx;
          s.last_w.(pid) <- me.(pid);
          s.last_w_idx.(pid) <- idx;
          s.last_w_access.(pid) <- Write
        | Op.Rmw { var; _ } ->
          incr accesses;
          me.(pid) <- me.(pid) + 1;
          let s = state var in
          (* Acquire first: epochs released by earlier RMWs drop below
             the joined clock, so only unsynchronized (plain) accesses
             survive the checks — RMW/RMW pairs never race. *)
          for q = 0 to n - 1 do
            if s.lock.(q) > me.(q) then me.(q) <- s.lock.(q)
          done;
          check_writes s ~var ~pid ~op ~idx;
          check_reads s ~var ~pid ~op ~idx;
          s.last_w.(pid) <- me.(pid);
          s.last_w_idx.(pid) <- idx;
          s.last_w_access.(pid) <- Update;
          (* Release. *)
          Array.blit me 0 s.lock 0 n
        | Op.Local _ -> ())
      | _ -> ())
    trace;
  let races = List.rev !races in
  let racy_vars =
    List.sort_uniq String.compare (List.map (fun r -> r.var) races)
  in
  {
    n;
    statements = Trace.statements trace;
    accesses = !accesses;
    vars = Hashtbl.length vars;
    races;
    racy_vars;
  }

let racy r = r.races <> []
let count r = List.length r.races

let pp_race ppf r =
  Fmt.pf ppf "race on %s: p%d %a @@%d vs p%d %s @@%d" r.var (r.pid + 1) Op.pp
    r.op r.idx (r.prior_pid + 1)
    (match r.prior_access with
    | Read -> "read"
    | Write -> "write"
    | Update -> "update")
    r.prior_idx

let pp_report ppf r =
  if r.races = [] then
    Fmt.pf ppf "no races: %d accesses over %d vars, %d statements" r.accesses
      r.vars r.statements
  else
    Fmt.pf ppf "@[<v>%d race%s on %a (%d accesses over %d vars):@,%a@]"
      (List.length r.races)
      (if List.length r.races = 1 then "" else "s")
      Fmt.(list ~sep:comma string)
      r.racy_vars r.accesses r.vars
      Fmt.(list ~sep:(any "@,") pp_race)
      r.races
