(** Happens-before race certification over recorded traces.

    A vector-clock pass ({!of_trace}) over one execution history that
    flags pairs of conflicting plain accesses unordered by
    happens-before. The happens-before order is deliberately sparse:

    - {b program order} within each process, and
    - {b RMW synchronization} per variable: every RMW releases its
      clock into the variable and acquires the variable's clock first,
      so two RMWs on one variable never race — an RMW is the model's
      only synchronization primitive, the analogue of a lock-protected
      section.

    Same-{e processor} interleaving order is {e not} happens-before:
    the scheduler serializes same-processor statements, but which
    serialization it picks is nondeterministic, so two conflicting
    plain accesses from different processes race even on a
    uniprocessor. Including scheduler order would certify uniprocessor
    traces race-free by construction — the false negative this pass
    exists to rule out.

    A reported race is therefore schedule-{e in}dependent evidence: some
    legal schedule orders the two accesses the other way with no
    intervening synchronization. The pass also serves as the dynamic
    backstop of the static independence oracle ([Hwf_lint.Indep]):
    racy variables are exactly the ones whose access pairs must never
    be claimed independent without RMW mediation.

    Exported as [hwf-analyze/1] JSONL via {!Jsonl.races_to_string}. *)

open Hwf_sim

type access = Read | Write | Update  (** [Update] = RMW. *)

val access_tag : access -> string
(** ["r"], ["w"], ["u"] — the JSONL encoding. *)

type race = {
  var : string;
  pid : Proc.pid;  (** The later access. *)
  op : Op.t;
  idx : int;  (** Statement index of the later access. *)
  prior_pid : Proc.pid;
  prior_access : access;
  prior_idx : int;  (** [-1] when the prior epoch predates recording. *)
}

type report = {
  n : int;  (** Process count of the trace's configuration. *)
  statements : int;
  accesses : int;  (** Shared-variable statements examined. *)
  vars : int;  (** Distinct shared variables touched. *)
  races : race list;
      (** In trace order, deduplicated per (variable, process pair,
          prior access kind). *)
  racy_vars : string list;  (** Sorted. *)
}

val of_trace : Trace.t -> report
(** One forward pass, O(statements * n). *)

val racy : report -> bool

val count : report -> int
(** [List.length report.races]. *)

val pp_race : race Fmt.t
val pp_report : report Fmt.t
