open Hwf_sim

(* Minimal JSON emission — no dependency beyond the stdlib. Every
   emitted value is an object on one line; see docs/OBSERVABILITY.md for
   the schema. Field order is fixed, so equal inputs give byte-equal
   output (the determinism the golden tests and the --jobs contract
   rely on). *)

let escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | ch when Char.code ch < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code ch))
      | ch -> Buffer.add_char b ch)
    s;
  Buffer.contents b

let str s = "\"" ^ escape s ^ "\""
let bool b = if b then "true" else "false"

let obj fields =
  "{" ^ String.concat "," (List.map (fun (k, v) -> str k ^ ":" ^ v) fields) ^ "}"

(* ---- traces ---- *)

let trace_schema = "hwf-trace/1"
let metrics_schema = "hwf-metrics/1"
let lint_schema = "hwf-lint/1"
let analyze_schema = "hwf-analyze/1"

let config_fields (config : Config.t) =
  [
    ("n", string_of_int (Config.n config));
    ("processors", string_of_int config.Config.processors);
    ("quantum", string_of_int config.Config.quantum);
    ("levels", string_of_int config.Config.levels);
    ("axiom2", bool config.Config.axiom2);
    ("tmin", string_of_int config.Config.tmin);
    ("tmax", string_of_int config.Config.tmax);
  ]

let trace_header config = obj (("schema", str trace_schema) :: config_fields config)

let op_json (op : Op.t) =
  match op with
  | Op.Read v -> obj [ ("kind", str "read"); ("var", str v) ]
  | Op.Write v -> obj [ ("kind", str "write"); ("var", str v) ]
  | Op.Rmw { var; kind } -> obj [ ("kind", str "rmw"); ("var", str var); ("rmw", str kind) ]
  | Op.Local l -> obj [ ("kind", str "local"); ("label", str l) ]

let event (e : Trace.event) =
  match e with
  | Trace.Stmt { idx; pid; op; inv; cost } ->
    obj
      [
        ("ev", str "stmt");
        ("idx", string_of_int idx);
        ("pid", string_of_int pid);
        ("inv", string_of_int inv);
        ("cost", string_of_int cost);
        ("op", op_json op);
      ]
  | Trace.Inv_begin { pid; inv; label } ->
    obj
      [
        ("ev", str "inv_begin");
        ("pid", string_of_int pid);
        ("inv", string_of_int inv);
        ("label", str label);
      ]
  | Trace.Inv_end { pid; inv; label } ->
    obj
      [
        ("ev", str "inv_end");
        ("pid", string_of_int pid);
        ("inv", string_of_int inv);
        ("label", str label);
      ]
  | Trace.Note { pid; text } ->
    obj [ ("ev", str "note"); ("pid", string_of_int pid); ("text", str text) ]
  | Trace.Set_priority { pid; priority } ->
    obj
      [
        ("ev", str "set_priority");
        ("pid", string_of_int pid);
        ("priority", string_of_int priority);
      ]
  | Trace.Axiom2_gate { at; active } ->
    obj [ ("ev", str "axiom2_gate"); ("at", string_of_int at); ("active", bool active) ]

let trace_to_buffer buf trace =
  Buffer.add_string buf (trace_header (Trace.config trace));
  Buffer.add_char buf '\n';
  Trace.iter
    (fun e ->
      Buffer.add_string buf (event e);
      Buffer.add_char buf '\n')
    trace

let trace_to_string trace =
  let buf = Buffer.create 4096 in
  trace_to_buffer buf trace;
  Buffer.contents buf

(* ---- metrics ---- *)

let metrics_header (m : Metrics.t) =
  obj
    [
      ("schema", str metrics_schema);
      ("n", string_of_int m.Metrics.n);
      ("quantum", string_of_int m.Metrics.quantum);
    ]

let metrics_to_buffer buf (m : Metrics.t) =
  let line fields =
    Buffer.add_string buf (obj fields);
    Buffer.add_char buf '\n'
  in
  Buffer.add_string buf (metrics_header m);
  Buffer.add_char buf '\n';
  line
    [
      ("m", str "totals");
      ("statements", string_of_int m.Metrics.statements);
      ("time", string_of_int m.Metrics.time);
      ("switches", string_of_int m.Metrics.switches);
    ];
  Array.iteri
    (fun pid (s : Metrics.pid_stat) ->
      line
        [
          ("m", str "pid");
          ("pid", string_of_int pid);
          ("statements", string_of_int s.Metrics.statements);
          ("time", string_of_int s.Metrics.time);
          ("invocations", string_of_int s.Metrics.invocations);
          ("completed", string_of_int s.Metrics.completed);
          ("same_preemptions", string_of_int s.Metrics.same_preemptions);
          ("higher_preemptions", string_of_int s.Metrics.higher_preemptions);
          ("priority_changes", string_of_int s.Metrics.priority_changes);
          ("guarantee_grants", string_of_int s.Metrics.guarantee_grants);
          ("protected_statements", string_of_int s.Metrics.protected_statements);
        ])
    m.Metrics.per_pid;
  List.iter
    (fun (i : Metrics.inv_stat) ->
      line
        [
          ("m", str "inv");
          ("pid", string_of_int i.Metrics.pid);
          ("inv", string_of_int i.Metrics.inv);
          ("label", str i.Metrics.label);
          ("statements", string_of_int i.Metrics.statements);
          ("time", string_of_int i.Metrics.time);
          ("same_preemptions", string_of_int i.Metrics.same_preemptions);
          ("higher_preemptions", string_of_int i.Metrics.higher_preemptions);
          ("completed", bool i.Metrics.completed);
        ])
    m.Metrics.invocations;
  List.iter
    (fun (r : Metrics.bound_row) ->
      line
        (( "m", str "bound")
        :: ("name", str r.Metrics.name)
        :: ("measured", string_of_int r.Metrics.measured)
        ::
        (match r.Metrics.bound with
        | None -> []
        | Some b ->
          [ ("bound", string_of_int b); ("margin", string_of_int (b - r.Metrics.measured)) ])))
    m.Metrics.bounds;
  List.iter
    (fun (k, v) -> line [ ("m", str "harness"); ("key", str k); ("value", string_of_int v) ])
    m.Metrics.harness

let metrics_to_string m =
  let buf = Buffer.create 2048 in
  metrics_to_buffer buf m;
  Buffer.contents buf

(* ---- analyze (race certification) ---- *)

let races_to_buffer buf ~config (r : Races.report) =
  let line fields =
    Buffer.add_string buf (obj fields);
    Buffer.add_char buf '\n'
  in
  line (("schema", str analyze_schema) :: config_fields config);
  List.iter
    (fun (race : Races.race) ->
      line
        [
          ("a", str "race");
          ("var", str race.Races.var);
          ("pid", string_of_int race.Races.pid);
          ("idx", string_of_int race.Races.idx);
          ("op", op_json race.Races.op);
          ("prior_pid", string_of_int race.Races.prior_pid);
          ("prior_access", str (Races.access_tag race.Races.prior_access));
          ("prior_idx", string_of_int race.Races.prior_idx);
        ])
    r.Races.races;
  line
    [
      ("a", str "summary");
      ("statements", string_of_int r.Races.statements);
      ("accesses", string_of_int r.Races.accesses);
      ("vars", string_of_int r.Races.vars);
      ("races", string_of_int (Races.count r));
      ( "racy_vars",
        "[" ^ String.concat "," (List.map str r.Races.racy_vars) ^ "]" );
    ]

let races_to_string ~config r =
  let buf = Buffer.create 1024 in
  races_to_buffer buf ~config r;
  Buffer.contents buf

let write_file path contents =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc contents)

let write_trace ~path trace = write_file path (trace_to_string trace)
let write_metrics ~path m = write_file path (metrics_to_string m)
let write_races ~path ~config r = write_file path (races_to_string ~config r)
