open Hwf_sim

type inv_stat = {
  pid : Proc.pid;
  inv : int;
  label : string;
  statements : int;
  time : int;
  same_preemptions : int;
  higher_preemptions : int;
  completed : bool;
}

type pid_stat = {
  statements : int;
  time : int;
  invocations : int;
  completed : int;
  same_preemptions : int;
  higher_preemptions : int;
  priority_changes : int;
  guarantee_grants : int;
  protected_statements : int;
}

type bound_row = { name : string; measured : int; bound : int option }

type t = {
  n : int;
  quantum : int;
  statements : int;
  time : int;
  switches : int;
  per_pid : pid_stat array;
  invocations : inv_stat list;
  bounds : bound_row list;
  harness : (string * int) list;
}

let margin r = match r.bound with None -> None | Some b -> Some (b - r.measured)

let with_bounds t bounds = { t with bounds = t.bounds @ bounds }

let with_harness t kvs = { t with harness = t.harness @ kvs }

(* ---- incremental collection ---- *)

(* Per-pid shadow of the engine's scheduling state, advanced one event
   at a time. The preemption-classification rules are exactly those of
   {!Hwf_sim.Analysis} (a preemption is a maximal gap between two
   statements of an open invocation, classified by the strongest foreign
   priority that ran in the gap); the quantum accounting mirrors the
   engine (a pending process is granted [Q] protected statements when it
   resumes; [Inv_end] and an Axiom-2 re-activation reset guarantees). *)
type acc = {
  mutable priority : int;
  mutable open_ : bool;
  mutable label : string;
  mutable inv : int;
  mutable inv_statements : int;
  mutable inv_time : int;
  mutable inv_same : int;
  mutable inv_higher : int;
  mutable gap : [ `None | `Same | `Higher ];
      (* explicitly flushed classification (only a Set_priority mid-gap
         forces a flush); the live gap is carried by [synced] below *)
  mutable pending : bool;  (* flushed preemption flag, same deal *)
  mutable synced : int;
      (* processor statement count when this pid's window last reset
         (own statement, invocation close, Inv_begin, priority change);
         statements on the processor past it are foreign to this pid *)
  mutable guarantee : int;
  (* running per-pid totals *)
  mutable statements : int;
  mutable time : int;
  mutable invocations : int;
  mutable completed : int;
  mutable same : int;
  mutable higher : int;
  mutable priority_changes : int;
  mutable grants : int;
  mutable protected_ : int;
}

type collector = {
  config : Config.t;
  accs : acc array;
  mutable c_statements : int;
  mutable c_time : int;
  mutable c_switches : int;
  last_on : int array;
      (* last pid to execute on each processor: a switch is a change of
         running process on one processor, so cross-processor
         interleaving must not count *)
  pcount : int array;  (* statements executed per processor *)
  last_at : int array array;
      (* [last_at.(pr).(v)]: the [pcount] stamp of the most recent
         statement executed on processor [pr] at priority [v] — how a
         pid resolves its preemption class in O(levels) at its own next
         statement instead of an O(N) peer broadcast per statement *)
  mutable closed : inv_stat list;  (* reverse close order *)
}

let collector config =
  let n = Config.n config in
  {
    config;
    accs =
      Array.init n (fun pid ->
          {
            priority = config.Config.procs.(pid).Proc.priority;
            open_ = false;
            label = "";
            inv = 0;
            inv_statements = 0;
            inv_time = 0;
            inv_same = 0;
            inv_higher = 0;
            gap = `None;
            pending = false;
            synced = 0;
            guarantee = 0;
            statements = 0;
            time = 0;
            invocations = 0;
            completed = 0;
            same = 0;
            higher = 0;
            priority_changes = 0;
            grants = 0;
            protected_ = 0;
          });
    c_statements = 0;
    c_time = 0;
    c_switches = 0;
    last_on = Array.make config.Config.processors (-1);
    pcount = Array.make config.Config.processors 0;
    last_at =
      Array.init config.Config.processors (fun _ ->
          Array.make (config.Config.levels + 1) 0);
    closed = [];
  }

(* The live (unflushed) window state for [pid] on its processor [pr]:
   any foreign statement since the window reset, and whether one ran at
   a strictly higher priority than [pid]'s current one. *)
let window_any c pr (a : acc) = c.pcount.(pr) > a.synced

let window_higher c pr (a : acc) =
  let la = c.last_at.(pr) in
  let levels = Array.length la - 1 in
  let rec go v = v <= levels && (la.(v) > a.synced || go (v + 1)) in
  go (a.priority + 1)

let combine_gap g1 g2 =
  match (g1, g2) with
  | `Higher, _ | _, `Higher -> `Higher
  | `Same, _ | _, `Same -> `Same
  | `None, `None -> `None

let close_inv c pid completed =
  let a = c.accs.(pid) in
  if a.open_ then begin
    c.closed <-
      {
        pid;
        inv = a.inv;
        label = a.label;
        statements = a.inv_statements;
        time = a.inv_time;
        same_preemptions = a.inv_same;
        higher_preemptions = a.inv_higher;
        completed;
      }
      :: c.closed;
    if completed then a.completed <- a.completed + 1;
    a.open_ <- false;
    a.pending <- false;
    a.synced <- c.pcount.(c.config.Config.procs.(pid).Proc.processor);
    a.guarantee <- 0
  end

(* Statement path, shared by {!feed} and the allocation-free {!sink}:
   takes the fields directly so the engine's hot path never has to
   build a [Trace.Stmt] record just to have it destructured here. *)
let feed_stmt c ~idx:_ ~pid ~op:_ ~inv:_ ~cost =
  let config = c.config in
  let pr = config.Config.procs.(pid).Proc.processor in
  if c.last_on.(pr) >= 0 && c.last_on.(pr) <> pid then
    c.c_switches <- c.c_switches + 1;
  c.last_on.(pr) <- pid;
  c.c_statements <- c.c_statements + 1;
  c.c_time <- c.c_time + cost;
  let a = c.accs.(pid) in
  (* Resolve this pid's window: foreign statements on its processor
     since its last reset. (A preemption flag can only be raised while
     the invocation is open, and closing resets the window, so
     [a.open_] here certifies the whole window ran open.) *)
  let foreign = window_any c pr a in
  if a.pending || (a.open_ && foreign) then begin
    a.pending <- false;
    a.grants <- a.grants + 1;
    a.guarantee <- config.Config.quantum
  end;
  if a.guarantee > 0 then a.protected_ <- a.protected_ + 1;
  a.guarantee <- max 0 (a.guarantee - cost);
  a.statements <- a.statements + 1;
  a.time <- a.time + cost;
  if a.open_ then begin
    let gap =
      if a.inv_statements = 0 then `None
        (* a gap is a hole between two statements of one invocation;
           foreign statements before the first are not preemptions *)
      else
        combine_gap a.gap
          (if not foreign then `None
           else if window_higher c pr a then `Higher
           else `Same)
    in
    (match gap with
    | `None -> ()
    | `Same ->
      a.inv_same <- a.inv_same + 1;
      a.same <- a.same + 1
    | `Higher ->
      a.inv_higher <- a.inv_higher + 1;
      a.higher <- a.higher + 1);
    a.gap <- `None;
    a.inv_statements <- a.inv_statements + 1;
    a.inv_time <- a.inv_time + cost
  end;
  (* Publish this statement to the processor's board and reset our own
     window past it: O(1) per statement where the broadcast loop was
     O(N) in same-processor peers. *)
  let stamp = c.pcount.(pr) + 1 in
  c.pcount.(pr) <- stamp;
  let la = c.last_at.(pr) in
  if a.priority >= 0 && a.priority < Array.length la then la.(a.priority) <- stamp;
  a.synced <- stamp

let feed c (e : Trace.event) =
  match e with
  | Trace.Inv_begin { pid; inv; label } ->
    let a = c.accs.(pid) in
    a.open_ <- true;
    a.label <- label;
    a.inv <- inv;
    a.inv_statements <- 0;
    a.inv_time <- 0;
    a.inv_same <- 0;
    a.inv_higher <- 0;
    a.gap <- `None;
    a.synced <- c.pcount.(c.config.Config.procs.(pid).Proc.processor);
    a.invocations <- a.invocations + 1
  | Trace.Inv_end { pid; _ } -> close_inv c pid true
  | Trace.Note _ -> ()
  | Trace.Set_priority { pid; priority } ->
    let a = c.accs.(pid) in
    (* The window is classified against the priority the pid held while
       the foreign statements ran: flush it under the old priority
       before switching (rare — one flush per priority change). *)
    let pr = c.config.Config.procs.(pid).Proc.processor in
    if a.open_ && window_any c pr a then begin
      a.pending <- true;
      if a.inv_statements > 0 then
        a.gap <-
          combine_gap a.gap (if window_higher c pr a then `Higher else `Same)
    end;
    a.synced <- c.pcount.(pr);
    a.priority <- priority;
    a.priority_changes <- a.priority_changes + 1
  | Trace.Axiom2_gate { active; _ } ->
    (* Re-activation starts enforcement fresh (engine rule): stale
       guarantees are dropped. *)
    if active then Array.iter (fun a -> a.guarantee <- 0) c.accs
  | Trace.Stmt { idx; pid; op; inv; cost } -> feed_stmt c ~idx ~pid ~op ~inv ~cost

let sink c = { Trace.on_stmt = feed_stmt c; on_event = feed c }

let finish c =
  for pid = 0 to Array.length c.accs - 1 do
    close_inv c pid false
  done;
  {
    n = Array.length c.accs;
    quantum = c.config.Config.quantum;
    statements = c.c_statements;
    time = c.c_time;
    switches = c.c_switches;
    per_pid =
      Array.map
        (fun a ->
          {
            statements = a.statements;
            time = a.time;
            invocations = a.invocations;
            completed = a.completed;
            same_preemptions = a.same;
            higher_preemptions = a.higher;
            priority_changes = a.priority_changes;
            guarantee_grants = a.grants;
            protected_statements = a.protected_;
          })
        c.accs;
    invocations = List.rev c.closed;
    bounds = [];
    harness = [];
  }

let of_trace trace =
  let c = collector (Trace.config trace) in
  Trace.iter (feed c) trace;
  finish c

let quantum_utilization t pid =
  let s = t.per_pid.(pid) in
  if s.guarantee_grants = 0 || t.quantum = 0 then None
  else Some (float_of_int s.protected_statements /. float_of_int (s.guarantee_grants * t.quantum))

(* ---- rendering ---- *)

let pp_bound_row ppf r =
  match r.bound with
  | None -> Fmt.pf ppf "%-28s %8d %8s %8s" r.name r.measured "-" "-"
  | Some b -> Fmt.pf ppf "%-28s %8d %8d %8d" r.name r.measured b (b - r.measured)

let pp ppf (t : t) =
  Fmt.pf ppf "@[<v>";
  Fmt.pf ppf "statements: %d  time: %d  switches: %d  quantum: %d@," t.statements t.time
    t.switches t.quantum;
  Fmt.pf ppf "@,%-5s %6s %6s %5s %5s %5s %6s %6s %6s %6s %6s@," "pid" "stmts" "time"
    "invs" "done" "churn" "sameP" "highP" "grants" "prot" "util";
  Array.iteri
    (fun pid (s : pid_stat) ->
      Fmt.pf ppf "p%-4d %6d %6d %5d %5d %5d %6d %6d %6d %6d %6s@," (pid + 1) s.statements
        s.time s.invocations s.completed s.priority_changes s.same_preemptions
        s.higher_preemptions s.guarantee_grants s.protected_statements
        (match quantum_utilization t pid with
        | None -> "-"
        | Some u -> Printf.sprintf "%.2f" u))
    t.per_pid;
  (match t.invocations with
  | [] -> ()
  | invs ->
    let worst_stmts =
      List.fold_left (fun acc (i : inv_stat) -> max acc i.statements) 0 invs
    in
    let worst_time = List.fold_left (fun acc (i : inv_stat) -> max acc i.time) 0 invs in
    Fmt.pf ppf "@,invocations: %d (worst latency: %d statements, %d time units)@,"
      (List.length invs) worst_stmts worst_time);
  (match t.bounds with
  | [] -> ()
  | bounds ->
    Fmt.pf ppf "@,%-28s %8s %8s %8s@," "bound" "measured" "bound" "margin";
    List.iter (fun r -> Fmt.pf ppf "%a@," pp_bound_row r) bounds);
  (match t.harness with
  | [] -> ()
  | kvs ->
    Fmt.pf ppf "@,harness counters:@,";
    List.iter (fun (k, v) -> Fmt.pf ppf "  %-28s %d@," k v) kvs);
  Fmt.pf ppf "@]"
