(** Structured export: JSON-lines writers for traces and metrics.

    One JSON object per line; the first line is a header object carrying
    a ["schema"] tag ({!trace_schema} / {!metrics_schema}) plus the run
    configuration, so a consumer can dispatch without sniffing. The
    schema — field names, order, and which quantities are included — is
    documented in [docs/OBSERVABILITY.md] and is stable: field order is
    fixed, every value is an int, bool, string, or nested object, and no
    floats or wall-clock quantities appear, so the bytes produced for a
    given run are deterministic and identical across [--jobs] settings
    (the same contract as the simulator itself). *)

open Hwf_sim

val trace_schema : string
(** ["hwf-trace/1"]. *)

val metrics_schema : string
(** ["hwf-metrics/1"]. *)

val lint_schema : string
(** ["hwf-lint/1"] — emitted by the conformance linter
    ([Hwf_lint.Report]); the schema constant lives here so every JSONL
    schema tag has one home. *)

val analyze_schema : string
(** ["hwf-analyze/1"] — race-certification reports ({!Races}, the
    [hybridsim analyze] subcommand). *)

(** {1 Emission helpers}

    Shared by the writers in this module and by other JSONL producers
    (the lint reporter). Same determinism contract: callers fix field
    order, values are ints/bools/strings/nested objects only. *)

val str : string -> string
(** A JSON string literal (quoted, escaped). *)

val bool : bool -> string
(** ["true"]/["false"]. *)

val obj : (string * string) list -> string
(** One-line JSON object from already-rendered values, in list order. *)

val event : Trace.event -> string
(** One event as a single-line JSON object (no trailing newline). *)

val trace_to_string : Trace.t -> string
(** Header line + one {!event} line per event, each ['\n']-terminated. *)

val metrics_to_string : Metrics.t -> string
(** Header line, then ["totals"], per-pid, per-invocation, bound and
    harness rows (in that order), each a one-line object tagged by its
    ["m"] field. Bound rows without a bound omit the [bound]/[margin]
    fields. *)

val races_to_string : config:Config.t -> Races.report -> string
(** [hwf-analyze/1]: header line (schema + configuration), one ["a":
    "race"] line per deduplicated race in trace order, then one
    ["a": "summary"] line with totals and the sorted racy-variable
    list. Deterministic bytes for a given trace. *)

val write_trace : path:string -> Trace.t -> unit
(** [trace_to_string] to [path] (truncating). *)

val write_metrics : path:string -> Metrics.t -> unit

val write_races : path:string -> config:Config.t -> Races.report -> unit
