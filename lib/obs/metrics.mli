(** Run metrics: the measured quantities behind the paper's bounds.

    A {!t} aggregates one engine run into the numbers the paper's
    arguments reason about — per-process statement counts and
    cost-weighted time, per-invocation latency, preemption counts split
    same-priority vs higher-priority (so Axiom 2's rationing and
    Axiom 1's free preemptions are separately visible), quantum
    utilization (protected statements actually used per granted
    guarantee), and priority-change churn (Sec. 5 dynamic priorities).

    Collection is {e incremental}: a {!collector}'s {!feed} is designed
    to sit behind the nullable trace observer hook
    ({!Hwf_sim.Engine.run}'s [observer] / {!Hwf_sim.Trace.set_observer}),
    so metrics accrue while the engine runs and cost nothing when no
    sink is configured. {!of_trace} replays a recorded trace through the
    same collector, and is guaranteed to produce the same result as
    feeding events live.

    Preemption classification follows {!Hwf_sim.Analysis} exactly; the
    quantum accounting mirrors the engine's Axiom 2 bookkeeping
    (guarantee granted on resume after a preemption, reset on invocation
    end and on Axiom-2 re-activation).

    Measured-vs-bound rows ({!bound_row}, attached with {!with_bounds})
    carry the Lemma 2/3 access-failure margins; harness counters
    ({!with_harness}) carry search-layer statistics (runs, subtree
    sizes). Both are filled by the harness that owns the run — see
    [docs/OBSERVABILITY.md] for the symbol mapping. *)

open Hwf_sim

type inv_stat = {
  pid : Proc.pid;
  inv : int;
  label : string;
  statements : int;  (** Latency in statements. *)
  time : int;  (** Latency in cost-weighted time units. *)
  same_preemptions : int;
  higher_preemptions : int;
  completed : bool;
}

type pid_stat = {
  statements : int;
  time : int;
  invocations : int;
  completed : int;
  same_preemptions : int;  (** The preemptions Axiom 2 rations. *)
  higher_preemptions : int;  (** The preemptions Axiom 1 permits freely. *)
  priority_changes : int;  (** [Set_priority] events (Sec. 5 churn). *)
  guarantee_grants : int;  (** Quantum guarantees granted on resume. *)
  protected_statements : int;
      (** Statements executed while holding a positive guarantee. *)
}

type bound_row = {
  name : string;
  measured : int;
  bound : int option;  (** [None]: counter reported without a bound. *)
}

type t = {
  n : int;
  quantum : int;
  statements : int;
  time : int;
  switches : int;
  per_pid : pid_stat array;
  invocations : inv_stat list;  (** In close order, as in {!Analysis}. *)
  bounds : bound_row list;
  harness : (string * int) list;
}

val margin : bound_row -> int option
(** [bound - measured]; non-negative iff the bound holds. *)

val with_bounds : t -> bound_row list -> t
val with_harness : t -> (string * int) list -> t

type collector

val collector : Config.t -> collector

val feed : collector -> Trace.event -> unit
(** Advance the collector by one event; pass this (partially applied) as
    the engine's [observer]. *)

val sink : collector -> Trace.sink
(** Allocation-free observer: a {!Hwf_sim.Trace.sink} whose statement
    callback takes the event fields directly, so the engine's hot path
    feeds this collector without materializing a [Trace.Stmt] record
    per statement. Pass as {!Hwf_sim.Engine.run}'s [sink]; equivalent
    to [feed] observed through [observer], just cheaper. *)

val finish : collector -> t
(** Close any still-open invocations (as incomplete) and freeze. *)

val of_trace : Trace.t -> t
(** [finish] of a fresh collector fed every event of the trace — equal
    to live collection of the same run. *)

val quantum_utilization : t -> Proc.pid -> float option
(** [protected_statements / (guarantee_grants * quantum)]; [None] when
    no guarantee was ever granted (or [quantum = 0]). *)

val pp : t Fmt.t
(** The pretty metrics table printed by [hybridsim stats]. *)
