(* hybridsim — command-line driver for the hybrid-scheduling wait-free
   synchronization library (Anderson & Moir, PODC 1999 reproduction).

   Subcommands expose the simulator directly: run a consensus algorithm
   once under a chosen scheduler and render the interleaving, model-check
   a scenario, probe bivalence, linearizability-test the Fig. 5 C&S, or
   print the Table 1 thresholds. The full experiment suite lives in
   `dune exec bench/main.exe`. *)

open Cmdliner
open Hwf_sim
open Hwf_adversary
open Hwf_workload
module Resil = Hwf_resil.Resil

(* ---- shared argument parsing ---- *)

let layout_conv =
  let parse s =
    try
      let entries = String.split_on_char ',' s in
      let layout =
        List.map
          (fun e ->
            match String.split_on_char ':' (String.trim e) with
            | [ cpu; pri ] -> (int_of_string cpu, int_of_string pri)
            | _ -> failwith "bad entry")
          entries
      in
      if layout = [] then failwith "empty layout";
      Ok layout
    with _ ->
      Error (`Msg (Printf.sprintf "cannot parse layout %S (expected cpu:pri,cpu:pri,...)" s))
  in
  let print ppf l = Fmt.pf ppf "%a" Layout.pp l in
  Arg.conv (parse, print)

let layout_arg =
  let doc =
    "Process placement, comma-separated cpu:priority pairs (0-based cpus, \
     1-based priorities), e.g. 0:1,0:1,1:2."
  in
  Arg.(
    value
    & opt layout_conv [ (0, 1); (0, 1) ]
    & info [ "l"; "layout" ] ~docv:"LAYOUT" ~doc)

let quantum_arg =
  let doc = "Scheduling quantum, in atomic statements." in
  Arg.(value & opt int 8 & info [ "q"; "quantum" ] ~docv:"Q" ~doc)

let seed_arg =
  let doc = "PRNG seed for randomized schedulers." in
  Arg.(value & opt int 0 & info [ "seed" ] ~docv:"SEED" ~doc)

let jobs_arg =
  let doc =
    "Worker domains for the parallel search paths (explore subtrees, \
     fault-plan cells), served from a work-stealing pool. Results are \
     byte-identical to --jobs 1 at any setting; the default is the machine's \
     recommended domain count."
  in
  Arg.(
    value
    & opt int (Hwf_par.Pool.default_jobs ())
    & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let grain_arg =
  let doc =
    "Cells per work-stealing claim. Smaller grains balance better, larger \
     grains amortize claim overhead; the default picks automatically from the \
     cell count and --jobs (docs/PARALLELISM.md has the tuning guide). Never \
     affects results, only scheduling."
  in
  Arg.(value & opt (some int) None & info [ "grain" ] ~docv:"G" ~doc)

let no_dpor_arg =
  let doc =
    "Disable sleep-set pruning and explore every schedule exhaustively. \
     Pruning never changes verdicts or the first counterexample, so this is \
     an escape hatch for cross-checking it (and the only option when a \
     scenario's checks read the simulated clock mid-run)."
  in
  Arg.(value & flag & info [ "no-dpor" ] ~doc)

(* ---- resilience options (docs/ROBUSTNESS.md) ---- *)

let checkpoint_arg =
  let doc =
    "Journal completed campaign cells to $(docv) (schema hwf-ckpt/1). With \
     --resume, cells already journaled are restored instead of re-run."
  in
  Arg.(value & opt (some string) None & info [ "checkpoint" ] ~docv:"FILE" ~doc)

let resume_arg =
  let doc =
    "Resume from the --checkpoint journal: skip finished cells. The journal \
     must match the campaign (same subject and parameters); a clean campaign \
     killed and resumed reproduces the uninterrupted output."
  in
  Arg.(value & flag & info [ "resume" ] ~doc)

let cell_wall_arg =
  let doc =
    "Wall-clock budget per campaign cell, in seconds. A cell exceeding it \
     becomes a structured timeout (coverage drops below 100% and the exit \
     code is 2) instead of hanging the campaign."
  in
  Arg.(value & opt (some float) None & info [ "cell-wall" ] ~docv:"SECS" ~doc)

let retries_arg =
  let doc =
    "Attempts per cell (including the first) for timed-out or transiently \
     failing cells, with exponential backoff; retried cells are demoted \
     (no counterexample shrinking)."
  in
  Arg.(value & opt int 1 & info [ "retries" ] ~docv:"N" ~doc)

let retry_of_attempts n =
  if n <= 1 then Resil.no_retry else { Resil.default_retry with attempts = n }

(* Exit-code taxonomy (docs/ROBUSTNESS.md): 0 clean pass, 1 the subject
   failed (counterexample / certification failure / lint error), 2 the
   harness failed (timeout, interrupt, bad input, incomplete coverage).
   [guarded] maps stray harness exceptions onto 2 so no subcommand can
   leak an uncaught exception as a bogus "counterexample". *)
let guarded f =
  try f () with
  | Resil.Deadline_exceeded m ->
    Fmt.epr "harness timeout: %s@." m;
    exit Resil.exit_harness
  | e ->
    Fmt.epr "harness error: %s@." (Printexc.to_string e);
    exit Resil.exit_harness

(* Incomplete coverage is a harness verdict, not a subject verdict. *)
let exit_if_incomplete coverage =
  if not (Resil.complete coverage) then begin
    Fmt.epr "harness: incomplete campaign — %a@." Resil.pp_coverage coverage;
    exit Resil.exit_harness
  end

let policy_arg =
  let doc = "Scheduling policy: random, rr (round-robin), first, stagger." in
  Arg.(
    value
    & opt (enum [ ("random", `Random); ("rr", `Rr); ("first", `First); ("stagger", `Stagger) ]) `Random
    & info [ "p"; "policy" ] ~docv:"POLICY" ~doc)

let make_policy policy seed =
  match policy with
  | `Random -> Policy.random ~seed
  | `Rr -> Policy.round_robin ()
  | `First -> Policy.first
  | `Stagger -> Stagger.max_interleave ()

let impl_arg =
  let doc = "Consensus implementation: fig3 (uniprocessor), fig7, fig9 (fair)." in
  Arg.(
    value
    & opt (enum [ ("fig3", `Fig3); ("fig7", `Fig7); ("fig9", `Fig9) ]) `Fig3
    & info [ "i"; "impl" ] ~docv:"IMPL" ~doc)

let cnum_arg =
  let doc = "Consensus number C of the base objects (fig7/fig9)." in
  Arg.(value & opt int 2 & info [ "c"; "consensus-number" ] ~docv:"C" ~doc)

let render_arg =
  let doc = "Render the interleaving diagram of the run." in
  Arg.(value & flag & info [ "r"; "render" ] ~doc)

let trace_out_arg =
  let doc =
    "Write the run's event trace as JSON lines (schema hwf-trace/1; see \
     docs/OBSERVABILITY.md). Deterministic: identical bytes across --jobs \
     settings."
  in
  Arg.(value & opt (some string) None & info [ "trace-out" ] ~docv:"FILE" ~doc)

let metrics_out_arg =
  let doc =
    "Write run metrics as JSON lines (schema hwf-metrics/1; see \
     docs/OBSERVABILITY.md). Deterministic: identical bytes across --jobs \
     settings."
  in
  Arg.(value & opt (some string) None & info [ "metrics-out" ] ~docv:"FILE" ~doc)

let export_trace path trace =
  Hwf_obs.Jsonl.write_trace ~path trace;
  Fmt.pr "trace: %s@." path

let export_metrics path m =
  Hwf_obs.Jsonl.write_metrics ~path m;
  Fmt.pr "metrics: %s@." path

let scenario_of impl cnum quantum layout =
  let impl =
    match impl with
    | `Fig3 -> Scenarios.Fig3
    | `Fig7 -> Scenarios.Fig7 { consensus_number = cnum }
    | `Fig9 -> Scenarios.Fig9 { consensus_number = cnum }
  in
  Scenarios.consensus ~name:"cli" ~impl ~quantum ~layout

(* ---- run: one consensus execution ---- *)

let run_cmd =
  let action impl cnum quantum layout policy seed render trace_out metrics_out =
    let b = scenario_of impl cnum quantum layout in
    let config = b.Scenarios.scenario.Explore.config in
    let instance = b.Scenarios.scenario.Explore.make () in
    (* Metrics are collected live through the engine's observer hook;
       when no sink is requested, no collector exists and the engine
       pays a single match per event. *)
    let collector =
      match metrics_out with
      | None -> None
      | Some _ -> Some (Hwf_obs.Metrics.collector config)
    in
    let r =
      Engine.run ~step_limit:20_000_000
        ?observer:(Option.map Hwf_obs.Metrics.feed collector)
        ~config ~policy:(make_policy policy seed) instance.Explore.programs
    in
    let wf = Wellformed.check r.trace in
    Fmt.pr "finished: %b@." (Array.for_all Fun.id r.finished);
    Fmt.pr "statements: %d@." (Trace.statements r.trace);
    Fmt.pr "well-formed: %b@."
      (wf = []);
    List.iter (fun v -> Fmt.pr "  %a@." Wellformed.pp_violation v) wf;
    let outs = b.Scenarios.last_outputs () in
    Array.iteri
      (fun pid o ->
        Fmt.pr "p%d decided: %s@." (pid + 1)
          (match o with Some v -> string_of_int v | None -> "-"))
      outs;
    (match b.Scenarios.last_decision () with
    | Some v -> Fmt.pr "consensus: %d@." v
    | None -> Fmt.pr "consensus: DISAGREEMENT OR INCOMPLETE@.");
    if render then Fmt.pr "@.%s@." (Render.lanes r.trace);
    Option.iter (fun path -> export_trace path r.trace) trace_out;
    Option.iter
      (fun path -> export_metrics path (Hwf_obs.Metrics.finish (Option.get collector)))
      metrics_out;
    if b.Scenarios.last_decision () = None then exit 1
  in
  let term =
    Term.(
      const action $ impl_arg $ cnum_arg $ quantum_arg $ layout_arg $ policy_arg
      $ seed_arg $ render_arg $ trace_out_arg $ metrics_out_arg)
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run a consensus algorithm once and report the decision.")
    term

(* ---- explore: model checking ---- *)

let explore_cmd =
  (* Explore accepts one subject beyond the consensus figures: the
     universal queue, whose verdict replays a Hist-recorded history
     through the linearizability checker — the scenario family that
     per-processor stamp clocks keep prunable (docs/PARALLELISM.md). *)
  let impl_arg =
    let doc =
      "Scenario: fig3 (uniprocessor), fig7, fig9 (fair), or queue (universal \
       queue over Fig. 7 consensus, history-checked via Lincheck)."
    in
    Arg.(
      value
      & opt
          (enum
             [ ("fig3", `Fig3); ("fig7", `Fig7); ("fig9", `Fig9); ("queue", `Queue) ])
          `Fig3
      & info [ "i"; "impl" ] ~docv:"IMPL" ~doc)
  in
  let pb_arg =
    let doc = "Preemption bound (context bound); omit for unbounded." in
    Arg.(value & opt (some int) None & info [ "b"; "preemption-bound" ] ~docv:"N" ~doc)
  in
  let max_runs_arg =
    let doc = "Maximum schedules to explore." in
    Arg.(value & opt int 200_000 & info [ "max-runs" ] ~docv:"N" ~doc)
  in
  let shrink_arg =
    let doc = "Minimize any counterexample schedule before reporting it." in
    Arg.(value & flag & info [ "shrink" ] ~doc)
  in
  let save_arg =
    let doc = "Write the (possibly shrunk) counterexample schedule to this file." in
    Arg.(value & opt (some string) None & info [ "save" ] ~docv:"FILE" ~doc)
  in
  let strategy_arg =
    let doc =
      "Search strategy: $(b,dfs) (exhaustive DFS, the default) or a randomized \
       sampler — $(b,naive) (uniform), $(b,pct) (probabilistic concurrency \
       testing; see --depth), $(b,pos) (partial order sampling), $(b,surw) \
       (selectively uniform random walk). Samplers run --runs seeded schedules \
       derived from --seed and report schedules-to-first-bug with a 95% \
       confidence interval (docs/SAMPLING.md)."
    in
    Arg.(value & opt string "dfs" & info [ "strategy" ] ~docv:"STRAT" ~doc)
  in
  let runs_arg =
    let doc = "Schedules to sample (randomized strategies only)." in
    Arg.(value & opt int 1_000 & info [ "runs" ] ~docv:"N" ~doc)
  in
  let depth_arg =
    let doc = "PCT bug depth d (d-1 priority-change points per run)." in
    Arg.(value & opt int 3 & info [ "depth" ] ~docv:"D" ~doc)
  in
  let indep_arg =
    let doc =
      "Arm the static independence oracle (docs/LINT.md): derive \
       result-insensitive commuting RMW pairs from a schedule-battery replay \
       of the scenario, differentially certify every claim by swap-replay \
       (any refutation is a hard error, exit 1), and feed the stronger \
       relation into the sleep-set pruning. Verdicts and counterexamples are \
       unchanged; run counts can only shrink. DFS only."
    in
    Arg.(value & flag & info [ "indep" ] ~doc)
  in
  let action impl cnum quantum layout pb max_runs do_shrink save jobs grain
      no_dpor indep ckpt resume cell_wall trace_out metrics_out strategy runs
      depth seed =
   guarded @@ fun () ->
    Resil.install_interrupt_handlers ();
    let scenario =
      match impl with
      | `Queue ->
        Scenarios.universal_queue ~name:"cli" ~quantum ~consensus_number:cnum
          ~layout ~ops_per:1
      | (`Fig3 | `Fig7 | `Fig9) as impl ->
        (scenario_of impl cnum quantum layout).Scenarios.scenario
    in
    let estats = Explore.make_stats ~jobs scenario in
    let relation =
      if not indep then None
      else begin
        let module Lint = Hwf_lint.Lint in
        let module Indep = Hwf_lint.Indep in
        (* The certifier replays [make] on its own; thread each fresh
           instance's verdict closure through so data escapes into the
           harness check are caught, not just trace divergences. *)
        let current_check = ref (fun (_ : Engine.result) -> Ok ()) in
        let make () =
          let i = scenario.Explore.make () in
          current_check := i.Explore.check;
          i.Explore.programs
        in
        let spec =
          {
            Lint.name = scenario.Explore.name;
            config = scenario.Explore.config;
            make;
            expect = Hwf_lint.Checks.Helping;
            min_quantum = 1;
            theorem = "independence oracle";
            fair_only = true;
            step_limit = 8_000_000;
          }
        in
        let outcome = Lint.run spec in
        match
          Indep.certified_relation ~check:(fun r -> !current_check r)
            ~config:scenario.Explore.config ~make outcome
        with
        | Error m ->
          Fmt.epr "independence oracle REFUTED: %s@." m;
          exit 1
        | Ok (t, cert) ->
          Fmt.pr "oracle: %a@." Indep.pp_summary (Indep.summary t);
          Fmt.pr "oracle: %a@." Indep.pp_certification cert;
          Some { Explore.rname = "static"; rel = Indep.relation t }
      end
    in
    let o =
      match strategy with
      | "dfs" ->
        Explore.explore ?preemption_bound:pb ~max_runs ~step_limit:8_000_000 ~jobs
          ?grain ~dpor:(not no_dpor) ?relation ~stats:estats
          ?cell_wall_s:cell_wall ?checkpoint:ckpt ~resume scenario
      | s -> (
        match Randsched.of_name ~depth s with
        | Error m ->
          Fmt.epr "%s@." m;
          exit 2
        | Ok strategy ->
          let o =
            Explore.sample ~runs ~step_limit:8_000_000 ~jobs ?grain ~stats:estats
              ~strategy ~seed scenario
          in
          (match o.Explore.counterexample with
          | Some _ ->
            let lo, hi = Explore.stf_ci o in
            Fmt.pr "%s: first bug at schedule %d of %d (stf 95%% CI [%.1f, %.1f])@."
              (Randsched.name strategy) o.Explore.runs runs lo hi
          | None ->
            let lo, _ = Explore.stf_ci o in
            Fmt.pr "%s: no bug in %d schedules (stf 95%% lower bound %.1f)@."
              (Randsched.name strategy) o.Explore.runs lo);
          (* Engine runs actually performed: with --jobs > 1 cells past a
             known failure are skipped, so this can exceed [o.runs] (the
             first-failure index) without affecting determinism. *)
          Fmt.pr "sampled: %d engine runs@." (Explore.stats_sampled estats);
          o)
    in
    Fmt.pr "%a@." Explore.pp_outcome o;
    if strategy = "dfs" then begin
      Fmt.pr "sleep sets: %d branches pruned; source sets: %d blocked prefixes@."
        (Explore.stats_pruned estats)
        (Explore.stats_source_prunes estats);
      (* Taint probe on the canonical first schedule: a clock read
         (Eff.now) disarms pruning; per-processor stamps (Eff.stamp) do
         not (docs/PARALLELISM.md). *)
      let probe, _ = Schedule.replay scenario [] in
      let tr = probe.Engine.trace in
      Fmt.pr "clock taint: %s (%d stamp reads, %d clock reads)@."
        (if Trace.now_reads tr = 0 then "none (pruning armed)"
         else "TAINTED (pruning disarmed)")
        (Trace.stamp_reads tr) (Trace.now_reads tr)
    end;
    (* Exports are schedule-deterministic: the counterexample's replayed
       trace if one was found, otherwise the canonical first (all-zeros)
       schedule — both identical across --jobs settings whenever the
       outcome is. *)
    let export schedule =
      let result, _ = Schedule.replay scenario schedule in
      Option.iter (fun path -> export_trace path result.Engine.trace) trace_out;
      Option.iter
        (fun path ->
          let m = Hwf_obs.Metrics.of_trace result.Engine.trace in
          let m =
            Hwf_obs.Metrics.with_harness m
              [
                ("explore.runs", o.Explore.runs);
                ("explore.exhaustive", if o.Explore.exhaustive then 1 else 0);
              ]
          in
          export_metrics path m)
        metrics_out
    in
    match o.counterexample with
    | None ->
      if trace_out <> None || metrics_out <> None then export [];
      exit_if_incomplete o.Explore.coverage
    | Some c ->
      let schedule =
        if do_shrink then begin
          let small = Shrink.shrink scenario c.decisions in
          Fmt.pr "shrunk %d decisions to %d@." (List.length c.decisions)
            (List.length small);
          small
        end
        else c.decisions
      in
      let result, _ = Schedule.replay scenario schedule in
      Fmt.pr "@.%s@.schedule: %s@." (Render.lanes result.trace)
        (Schedule.to_string schedule);
      (match save with
      | Some path ->
        Schedule.save ~path schedule;
        Fmt.pr "saved to %s@." path
      | None -> ());
      export schedule;
      exit Resil.exit_counterexample
  in
  let term =
    Term.(
      const action $ impl_arg $ cnum_arg $ quantum_arg $ layout_arg $ pb_arg
      $ max_runs_arg $ shrink_arg $ save_arg $ jobs_arg $ grain_arg $ no_dpor_arg
      $ indep_arg $ checkpoint_arg $ resume_arg $ cell_wall_arg $ trace_out_arg
      $ metrics_out_arg $ strategy_arg $ runs_arg $ depth_arg $ seed_arg)
  in
  Cmd.v
    (Cmd.info "explore"
       ~doc:
         "Model-check a consensus scenario over scheduler decisions \
          (domain-parallel with --jobs), exhaustively or with randomized \
          sampling strategies (--strategy naive|pct|pos|surw).")
    term

(* ---- replay: re-judge a saved schedule ---- *)

let replay_cmd =
  let file_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"FILE" ~doc:"Schedule file (from explore --save).")
  in
  let action impl cnum quantum layout file =
    let b = scenario_of impl cnum quantum layout in
    match Schedule.load ~n:(Hwf_sim.Config.n b.Scenarios.scenario.config) ~path:file () with
    | Error m ->
      Fmt.epr "%s@." m;
      exit 2
    | Ok schedule -> (
      let result, _ = Schedule.replay b.Scenarios.scenario schedule in
      Fmt.pr "%s@." (Render.lanes result.trace);
      match Schedule.verdict b.Scenarios.scenario schedule with
      | Ok () -> Fmt.pr "verdict: passes@."
      | Error m ->
        Fmt.pr "verdict: FAILS (%s)@." m;
        exit 1)
  in
  let term =
    Term.(const action $ impl_arg $ cnum_arg $ quantum_arg $ layout_arg $ file_arg)
  in
  Cmd.v
    (Cmd.info "replay" ~doc:"Replay a saved schedule against a scenario and re-judge it.")
    term

(* ---- analyze: run once and print trace analytics + race report ---- *)

let analyze_cmd =
  let report_arg =
    let doc =
      "Write the happens-before race report as JSON lines (schema \
       hwf-analyze/1; see docs/OBSERVABILITY.md). Deterministic for a \
       deterministic policy."
    in
    Arg.(value & opt (some string) None & info [ "report" ] ~docv:"FILE" ~doc)
  in
  let corpus_arg =
    let doc =
      "Negative-control mode: run the race certifier over the known-racy and \
       known-clean corpus instead of a scenario. Every racy case must be \
       flagged on its expected variable and every clean case must come back \
       empty; exit 1 otherwise."
    in
    Arg.(value & flag & info [ "corpus" ] ~doc)
  in
  let action impl cnum quantum layout policy seed report corpus =
   guarded @@ fun () ->
    if corpus then begin
      let module C = Hwf_race_corpus.Corpus in
      let misses =
        List.filter_map
          (fun (c : C.case) ->
            let r = C.analyze c in
            let ok = C.verdict_matches c r in
            Fmt.pr "%-16s expected %-5s found %d race(s)%s %s@." c.C.name
              (if c.C.racy then "racy" else "clean")
              (Hwf_obs.Races.count r)
              (match c.C.var with Some v -> " on " ^ v | None -> "")
              (if ok then "(ok)" else "MISMATCH");
            if ok then None else Some c.C.name)
          (C.all)
      in
      match misses with
      | [] ->
        Fmt.pr "corpus: all %d race-certifier controls passed@."
          (List.length C.all)
      | ms ->
        Fmt.epr "corpus: %d control(s) failed: %a@." (List.length ms)
          Fmt.(list ~sep:comma string)
          ms;
        exit 1
    end
    else begin
      let b = scenario_of impl cnum quantum layout in
      let config = b.Scenarios.scenario.Explore.config in
      let instance = b.Scenarios.scenario.Explore.make () in
      let r =
        Engine.run ~step_limit:20_000_000 ~config
          ~policy:(make_policy policy seed) instance.Explore.programs
      in
      let a = Analysis.of_trace r.trace in
      Fmt.pr "%a@." Analysis.pp_summary a;
      List.iter
        (fun (i : Analysis.inv_stat) ->
          Fmt.pr "  %a.%d %-8s %3d stmts, %d same-level / %d higher-level preemptions%s@."
            Proc.pp_pid i.pid i.inv i.label i.statements i.same_level_preemptions
            i.higher_level_preemptions
            (if i.completed then "" else " (incomplete)"))
        a.invocations;
      let races = Hwf_obs.Races.of_trace r.trace in
      Fmt.pr "@.%a@." Hwf_obs.Races.pp_report races;
      Option.iter
        (fun path ->
          Hwf_obs.Jsonl.write_races ~path ~config races;
          Fmt.pr "report: %s@." path)
        report
    end
  in
  let term =
    Term.(
      const action $ impl_arg $ cnum_arg $ quantum_arg $ layout_arg $ policy_arg
      $ seed_arg $ report_arg $ corpus_arg)
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:
         "Run a scenario once and print per-invocation preemption analytics \
          plus the happens-before race report (or, with --corpus, check the \
          race certifier against its known-racy/known-clean controls).")
    term

(* ---- bivalence ---- *)

let bivalence_cmd =
  let max_runs_arg =
    Arg.(value & opt int 100_000 & info [ "max-runs" ] ~docv:"N" ~doc:"Schedule budget.")
  in
  let action impl cnum quantum layout max_runs =
    let b = scenario_of impl cnum quantum layout in
    let p =
      Bivalence.probe ~max_runs ~scenario:b.Scenarios.scenario
        ~decision:b.Scenarios.last_decision ()
    in
    Fmt.pr "%a@." Bivalence.pp p
  in
  let term =
    Term.(const action $ impl_arg $ cnum_arg $ quantum_arg $ layout_arg $ max_runs_arg)
  in
  Cmd.v
    (Cmd.info "bivalence"
       ~doc:"Probe the bivalence horizon of a consensus scenario (Theorem 3).")
    term

(* ---- cas: Fig. 5 linearizability testing ---- *)

let cas_cmd =
  let ops_arg =
    Arg.(value & opt int 2 & info [ "ops" ] ~docv:"N" ~doc:"Operations per process.")
  in
  let runs_arg =
    Arg.(value & opt int 100 & info [ "runs" ] ~docv:"N" ~doc:"Random schedules to test.")
  in
  let action quantum layout seed ops runs jobs grain trace_out metrics_out =
    let n = List.length layout in
    let script = Scenarios.random_script ~seed ~n ~ops_per:ops in
    let s = Scenarios.hybrid_cas ~name:"cli" ~quantum ~layout ~script in
    let o = Explore.random_runs ~runs ~step_limit:2_000_000 ~jobs ?grain ~seed s in
    Fmt.pr "%a@." Explore.pp_outcome o;
    (if trace_out <> None || metrics_out <> None then
       match o.counterexample with
       | Some c ->
         Option.iter (fun path -> export_trace path c.Explore.trace) trace_out;
         Option.iter
           (fun path ->
             let m = Hwf_obs.Metrics.of_trace c.Explore.trace in
             export_metrics path
               (Hwf_obs.Metrics.with_harness m [ ("cas.runs", o.Explore.runs) ]))
           metrics_out
       | None ->
         (* No failure: export one canonical single-threaded run (live
            collector), with the Fig. 5 access-failure tap reported
            against the Lemma 2 envelope. *)
         let collector =
           Hwf_obs.Metrics.collector (Hwf_workload.Layout.to_config ~quantum layout)
         in
         let sum =
           Scenarios.run_cas ~step_limit:2_000_000
             ~observer:(Hwf_obs.Metrics.feed collector)
             ~quantum ~layout ~script ~policy:(Policy.random ~seed) ()
         in
         Option.iter (fun path -> export_trace path sum.Scenarios.cas_trace) trace_out;
         Option.iter
           (fun path ->
             let st = sum.Scenarios.cas_stats in
             let m = Hwf_obs.Metrics.finish collector in
             let m =
               Hwf_obs.Metrics.with_bounds m
                 [
                   {
                     Hwf_obs.Metrics.name = "cas.worst_af_diff (Lemma 2)";
                     measured = st.Hwf_core.Hybrid_cas.worst_af_diff;
                     bound =
                       Some
                         (Hwf_core.Bounds.af_diff_bound
                            ~m:
                              (Config.max_per_processor
                                 (Hwf_workload.Layout.to_config ~quantum layout)));
                   };
                   {
                     Hwf_obs.Metrics.name = "cas.worst_af_same";
                     measured = st.Hwf_core.Hybrid_cas.worst_af_same;
                     bound = None;
                   };
                 ]
             in
             let m =
               Hwf_obs.Metrics.with_harness m
                 [
                   ("cas.runs", o.Explore.runs);
                   ("cas.ops", st.Hwf_core.Hybrid_cas.ops);
                   ("cas.appends", st.Hwf_core.Hybrid_cas.appends);
                   ("cas.af_diff_total", st.Hwf_core.Hybrid_cas.af_diff);
                   ("cas.af_same_total", st.Hwf_core.Hybrid_cas.af_same);
                   ("cas.scan_failures", st.Hwf_core.Hybrid_cas.scan_failures);
                 ]
             in
             export_metrics path m)
           metrics_out);
    if o.counterexample <> None then exit 1
  in
  let term =
    Term.(
      const action $ quantum_arg $ layout_arg $ seed_arg $ ops_arg $ runs_arg
      $ jobs_arg $ grain_arg $ trace_out_arg $ metrics_out_arg)
  in
  Cmd.v
    (Cmd.info "cas"
       ~doc:
         "Exercise the Fig. 5 hybrid C&S with a random workload and check \
          linearizability.")
    term

(* ---- bounds: Table 1 calculator ---- *)

let bounds_cmd =
  let p_arg = Arg.(value & opt int 2 & info [ "p" ] ~docv:"P" ~doc:"Processors.") in
  let c_arg =
    Arg.(value & opt int 2 & info [ "c" ] ~docv:"C" ~doc:"Consensus number of base objects.")
  in
  let const_arg =
    Arg.(
      value & opt int 1
      & info [ "stmt-const" ] ~docv:"c"
          ~doc:"Implementation constant (statements per level).")
  in
  let m_arg =
    Arg.(value & opt int 2 & info [ "m" ] ~docv:"M" ~doc:"Max processes per processor.")
  in
  let action p c const m =
    let open Hwf_core in
    Fmt.pr "P=%d C=%d (statement constant %d, M=%d)@." p c const m;
    (match Bounds.universal_quantum ~c:const ~p ~consensus_number:c with
    | Some q -> Fmt.pr "universal if Q >= %d@." q
    | None -> Fmt.pr "not universal at any quantum (C < P)@.");
    (match Bounds.impossibility_quantum ~p ~consensus_number:c with
    | Some q -> Fmt.pr "not universal if Q <= %d@." q
    | None -> Fmt.pr "no impossibility region (infinite consensus number)@.");
    if c >= p then begin
      let k = min c (2 * p) - p in
      Fmt.pr "Fig 7 instance: K=%d, L=%d levels, ports per processor:@." k
        (Bounds.levels ~m ~p ~k);
      for i = 0 to p - 1 do
        Fmt.pr "  cpu %d: %d@." (i + 1) (Bounds.ports_per_processor ~p ~k ~processor:i)
      done
    end
  in
  let term = Term.(const action $ p_arg $ c_arg $ const_arg $ m_arg) in
  Cmd.v
    (Cmd.info "bounds" ~doc:"Print the Table 1 thresholds and Fig. 7/8 constants.")
    term

(* ---- sweep: quantum sweep for a Fig. 7 instance (a Table 1 row) ---- *)

let sweep_cmd =
  let seeds_arg =
    Arg.(value & opt int 8 & info [ "seeds" ] ~docv:"N" ~doc:"Adversarial seeds per point.")
  in
  let action cnum layout seeds =
    let quanta = [ 1; 2; 4; 8; 16; 32; 64; 128; 256; 512; 1024; 2048; 4096 ] in
    let seed_list = List.init seeds Fun.id in
    Fmt.pr "Q sweep, C=%d, layout %a@." cnum Layout.pp layout;
    List.iter
      (fun quantum ->
        let verdicts =
          List.map
            (fun policy ->
              Scenarios.run_multi ~step_limit:8_000_000 ~quantum ~consensus_number:cnum
                ~layout ~policy:(policy ()) ())
            (Scenarios.adversarial_policies ~seeds:seed_list ~var_prefix:"mc.Cons")
        in
        let broken = List.filter Scenarios.violation verdicts in
        Fmt.pr "  Q=%-5d %s (%d/%d adversarial runs violated)@." quantum
          (if broken = [] then "no violation found" else "VIOLATED          ")
          (List.length broken) (List.length verdicts))
      quanta
  in
  let term = Term.(const action $ cnum_arg $ layout_arg $ seeds_arg) in
  Cmd.v
    (Cmd.info "sweep"
       ~doc:
         "Sweep the quantum for a Fig. 7 consensus instance under the adversary \
          battery — one Table 1 row, live.")
    term

(* ---- faults: the wait-freedom certifier ---- *)

let faults_cmd =
  let open Hwf_faults in
  let subjects =
    [
      ("fig3", Suite.fig3);
      ("fig3-time", Suite.fig3_time);
      ("fig5", Suite.fig5);
      ("fig7", Suite.fig7);
      ("universal", Suite.universal);
    ]
  in
  let subject_arg =
    let doc =
      "Subjects to certify (repeatable): fig3, fig3-time, fig5, fig7, universal. \
       Default: all."
    in
    Arg.(
      value
      & opt_all (enum (List.map (fun (n, _) -> (n, n)) subjects)) []
      & info [ "s"; "subject" ] ~docv:"SUBJECT" ~doc)
  in
  let full_arg =
    let doc = "Exhaustive sweeps (default: strided quick sweeps)." in
    Arg.(value & flag & info [ "full" ] ~doc)
  in
  let negative_arg =
    let doc =
      "Also run the negative control (Fig. 3 with Axiom 2 suspended); it must be \
       rejected, and certification fails if it is not."
    in
    Arg.(value & flag & info [ "negative" ] ~doc)
  in
  let livelock_arg =
    let doc =
      "Also run the watchdog negative control: a synthetic subject whose only \
       cell livelocks. It must degrade to a structured timeout (coverage below \
       100%, exit code 2), not hang. Implies a 2s --cell-wall when none is \
       given."
    in
    Arg.(value & flag & info [ "inject-livelock" ] ~doc)
  in
  (* A cell that never terminates on its own: the step limit is set far
     beyond any wall budget, so only the per-cell deadline (enforced by
     the engine-observer guard) can stop it. *)
  let livelock_subject () =
    Certify.
      {
        name = "livelock";
        config = Layout.to_config ~quantum:8 [ (0, 1) ];
        policy = (fun () -> Policy.first);
        make =
          (fun () ->
            {
              programs =
                [|
                  (fun () ->
                    Eff.invocation "spin" (fun () ->
                        while true do
                          Eff.local "s"
                        done));
                |];
              check = (fun ~survivors:_ _ -> Ok ());
            });
        step_bound = max_int;
        bound_desc = "none (synthetic livelock)";
        step_limit = max_int;
      }
  in
  let action chosen seed full negative inject_livelock jobs grain ckpt resume
      cell_wall retries trace_out metrics_out =
   guarded @@ fun () ->
    Resil.install_interrupt_handlers ();
    let chosen =
      if chosen = [] then subjects
      else List.filter (fun (n, _) -> List.mem n chosen) subjects
    in
    let retry = retry_of_attempts retries in
    let cell_wall =
      match (cell_wall, inject_livelock) with None, true -> Some 2.0 | v, _ -> v
    in
    let ckpt_for name =
      Option.map (fun base -> Printf.sprintf "%s.%s.ckpt.jsonl" base name) ckpt
    in
    let rows = ref [] and all_ok = ref true in
    let failures = ref [] in
    let total_plans = ref 0 and total_passed = ref 0 in
    let total_blocked = ref 0 and worst_steps = ref 0 in
    let total_cov = ref (Resil.full_coverage 0) in
    List.iter
      (fun (name, make_subject) ->
        let subject = make_subject ?seed:(Some seed) () in
        let plans = Suite.campaign ~quick:(not full) ~seed subject in
        let report =
          Certify.certify ~jobs ?grain ~retry ?cell_wall_s:cell_wall
            ?checkpoint:(ckpt_for name) ~resume subject plans
        in
        total_cov := Resil.coverage_union !total_cov report.Certify.coverage;
        total_plans := !total_plans + report.Certify.plans;
        total_passed := !total_passed + report.Certify.passed;
        total_blocked := !total_blocked + report.Certify.blocked;
        worst_steps := max !worst_steps report.Certify.worst_own_steps;
        if not (Certify.certified report) then begin
          all_ok := false;
          failures := report :: !failures
        end;
        rows :=
          [
            report.Certify.subject;
            string_of_int report.Certify.plans;
            string_of_int report.Certify.passed;
            string_of_int report.Certify.blocked;
            string_of_int report.Certify.worst_own_steps;
            report.Certify.bound_desc;
            (if not (Resil.complete report.Certify.coverage) then
               Fmt.str "INCOMPLETE (%a)" Resil.pp_coverage report.Certify.coverage
             else if Certify.certified report then "CERTIFIED"
             else Printf.sprintf "FAILED (%d)" (List.length report.Certify.failures));
          ]
          :: !rows)
      chosen;
    if inject_livelock then begin
      let subject = livelock_subject () in
      let report =
        Certify.certify ~retry ?cell_wall_s:cell_wall subject [ Hwf_faults.Plan.none ]
      in
      total_cov := Resil.coverage_union !total_cov report.Certify.coverage;
      rows :=
        [
          report.Certify.subject;
          "1";
          string_of_int report.Certify.passed;
          string_of_int report.Certify.blocked;
          string_of_int report.Certify.worst_own_steps;
          report.Certify.bound_desc;
          (if Resil.complete report.Certify.coverage then
             "COMPLETED (watchdog control bug!)"
           else Fmt.str "TIMED OUT (expected; %a)" Resil.pp_coverage report.Certify.coverage);
        ]
        :: !rows
    end;
    if negative then begin
      let subject = Suite.negative () in
      let report = Certify.certify subject [ Suite.negative_plan ] in
      total_cov := Resil.coverage_union !total_cov report.Certify.coverage;
      let rejected = not (Certify.certified report) in
      if not rejected then all_ok := false;
      rows :=
        [
          report.Certify.subject;
          "1";
          string_of_int report.Certify.passed;
          string_of_int report.Certify.blocked;
          string_of_int report.Certify.worst_own_steps;
          report.Certify.bound_desc;
          (if rejected then "REJECTED (expected)" else "NOT REJECTED (certifier bug!)");
        ]
        :: !rows
    end;
    let header = [ "subject"; "plans"; "passed"; "blocked"; "worst"; "bound"; "verdict" ] in
    let rows = header :: List.rev !rows in
    let widths =
      List.init (List.length header) (fun i ->
          List.fold_left (fun acc r -> max acc (String.length (List.nth r i))) 0 rows)
    in
    List.iteri
      (fun k r ->
        Fmt.pr "%s@."
          (String.concat "  " (List.map2 (Printf.sprintf "%-*s") widths r));
        if k = 0 then
          Fmt.pr "%s@." (String.concat "  " (List.map (fun w -> String.make w '-') widths)))
      rows;
    List.iter (fun r -> Fmt.pr "@.%a@." Certify.pp_report r) (List.rev !failures);
    (* Exports: one deterministic judged run — the first chosen subject's
       first campaign plan — plus the campaign totals as harness rows. *)
    (if trace_out <> None || metrics_out <> None then
       match chosen with
       | [] -> ()
       | (_, make_subject) :: _ -> (
         let subject = make_subject ?seed:(Some seed) () in
         match Suite.campaign ~quick:(not full) ~seed subject with
         | [] -> ()
         | plan :: _ ->
           let _, r, _ = Certify.run_plan subject plan in
           Option.iter (fun path -> export_trace path r.Engine.trace) trace_out;
           Option.iter
             (fun path ->
               let m = Hwf_obs.Metrics.of_trace r.Engine.trace in
               let m =
                 Hwf_obs.Metrics.with_harness m
                   ([
                      ("faults.plans", !total_plans);
                      ("faults.passed", !total_passed);
                      ("faults.blocked", !total_blocked);
                      ("faults.worst_own_steps", !worst_steps);
                    ]
                   @ Resil.coverage_rows ~prefix:"faults" !total_cov)
               in
               export_metrics path m)
             metrics_out));
    (* Harness verdict first: a campaign with incomplete coverage is a
       partial result, so exit 2 regardless of what the evaluated cells
       say; only a complete campaign may exit 1 on failures. *)
    exit_if_incomplete !total_cov;
    if not !all_ok then exit Resil.exit_counterexample
  in
  let term =
    Term.(
      const action $ subject_arg $ seed_arg $ full_arg $ negative_arg $ livelock_arg
      $ jobs_arg $ grain_arg $ checkpoint_arg $ resume_arg $ cell_wall_arg
      $ retries_arg $ trace_out_arg $ metrics_out_arg)
  in
  Cmd.v
    (Cmd.info "faults"
       ~doc:
         "Certify wait-freedom of the core algorithms under fault-plan sweeps \
          (crash points, adversarial costs, chaos), printing a report table \
          (domain-parallel with --jobs).")
    term

(* ---- stats: the observability report ---- *)

let stats_cmd =
  let open Hwf_core in
  let impl_arg =
    let doc =
      "Subject: fig5 (hybrid C&S, Lemma 2 margin) or fig7 (multiprocessor \
       consensus, Lemma 2/3 margins)."
    in
    Arg.(
      value
      & opt (enum [ ("fig5", `Fig5); ("fig7", `Fig7) ]) `Fig5
      & info [ "i"; "impl" ] ~docv:"IMPL" ~doc)
  in
  let ops_arg =
    Arg.(value & opt int 3 & info [ "ops" ] ~docv:"N" ~doc:"Operations per process (fig5).")
  in
  let max_runs_arg =
    let doc = "Schedule budget for the harness-statistics exploration." in
    Arg.(value & opt int 2_000 & info [ "max-runs" ] ~docv:"N" ~doc)
  in
  let action impl cnum quantum layout policy seed ops max_runs jobs grain no_dpor
      trace_out metrics_out =
    let config = Layout.to_config ~quantum layout in
    let mpp = Config.max_per_processor config in
    (* One measured run, metrics collected live through the observer
       hook, with the algorithm's access-failure tap reported against
       the paper's envelopes (docs/OBSERVABILITY.md maps the symbols). *)
    let collector = Hwf_obs.Metrics.collector config in
    let observer = Hwf_obs.Metrics.feed collector in
    let metrics, trace, scenario =
      match impl with
      | `Fig5 ->
        let n = List.length layout in
        let script = Scenarios.random_script ~seed ~n ~ops_per:ops in
        let sum =
          Scenarios.run_cas ~step_limit:8_000_000 ~observer ~quantum ~layout ~script
            ~policy:(make_policy policy seed) ()
        in
        let st = sum.Scenarios.cas_stats in
        Fmt.pr "fig5 run: finished=%b linearizable=%b well-formed=%b@."
          sum.Scenarios.cas_finished sum.Scenarios.linearizable
          sum.Scenarios.cas_well_formed;
        let m = Hwf_obs.Metrics.finish collector in
        let m =
          Hwf_obs.Metrics.with_bounds m
            [
              {
                Hwf_obs.Metrics.name = "AF_diff/op (Lemma 2, <=M)";
                measured = st.Hybrid_cas.worst_af_diff;
                bound = Some (Bounds.af_diff_bound ~m:mpp);
              };
              {
                Hwf_obs.Metrics.name = "AF_same/op (worst)";
                measured = st.Hybrid_cas.worst_af_same;
                bound = None;
              };
            ]
        in
        let m =
          Hwf_obs.Metrics.with_harness m
            [
              ("cas.ops", st.Hybrid_cas.ops);
              ("cas.appends", st.Hybrid_cas.appends);
              ("cas.af_diff_total", st.Hybrid_cas.af_diff);
              ("cas.af_same_total", st.Hybrid_cas.af_same);
              ("cas.scan_failures", st.Hybrid_cas.scan_failures);
            ]
        in
        ( m,
          sum.Scenarios.cas_trace,
          Scenarios.hybrid_cas ~name:"stats" ~quantum ~layout ~script )
      | `Fig7 ->
        let sum =
          Scenarios.run_multi ~step_limit:8_000_000 ~observer ~quantum
            ~consensus_number:cnum ~layout ~policy:(make_policy policy seed) ()
        in
        let p = config.Config.processors in
        let k = min cnum (2 * p) - p in
        Fmt.pr "fig7 run: finished=%b agreed=%b valid=%b well-formed=%b@."
          sum.Scenarios.finished sum.Scenarios.agreed sum.Scenarios.valid
          sum.Scenarios.well_formed;
        let m = Hwf_obs.Metrics.finish collector in
        let m =
          Hwf_obs.Metrics.with_bounds m
            [
              {
                Hwf_obs.Metrics.name = "AF_diff sites (Lemma 2)";
                measured = List.length sum.Scenarios.af_diff;
                bound = Some (Bounds.af_diff_bound ~m:mpp);
              };
              {
                Hwf_obs.Metrics.name = "AF_same sites (Lemma 3)";
                measured = List.length sum.Scenarios.af_same;
                bound =
                  Some (Bounds.af_same_bound ~m:mpp ~p ~k ~l:sum.Scenarios.levels);
              };
            ]
        in
        let m =
          Hwf_obs.Metrics.with_harness m
            [
              ("mc.af_same_events", sum.Scenarios.af_same_events);
              ("mc.af_diff_events", sum.Scenarios.af_diff_events);
              ("mc.exhausted", sum.Scenarios.exhausted);
              ("mc.levels", sum.Scenarios.levels);
            ]
        in
        (m, sum.Scenarios.trace, (scenario_of `Fig7 cnum quantum layout).Scenarios.scenario)
    in
    Fmt.pr "@.%a@." Hwf_obs.Metrics.pp metrics;
    (* Harness statistics: a bounded exploration of the same scenario
       with the search-layer counters on. Runs/sec and the pool picture
       depend on wall clock and domain racing — display-only, never
       exported. *)
    let estats = Explore.make_stats ~jobs scenario in
    let t0 = Unix.gettimeofday () in
    let o =
      Explore.explore ~max_runs ~step_limit:2_000_000 ~jobs ?grain
        ~dpor:(not no_dpor) ~stats:estats scenario
    in
    let dt = Unix.gettimeofday () -. t0 in
    Fmt.pr "@.search: %d runs in %.3fs (%.0f runs/sec, jobs=%d)%s@." o.Explore.runs dt
      (if dt > 0. then float_of_int o.Explore.runs /. dt else 0.)
      jobs
      (if o.Explore.exhaustive then ", exhaustive" else "");
    Array.iteri
      (fun i r -> if r > 0 then Fmt.pr "  subtree %d: %d runs@." i r)
      (Explore.stats_subtree_runs estats);
    Fmt.pr "sleep sets: %d branches pruned@." (Explore.stats_pruned estats);
    Fmt.pr "source sets: %d blocked prefixes discarded@."
      (Explore.stats_source_prunes estats);
    let races = Hwf_obs.Races.of_trace trace in
    Fmt.pr "races: %d on %d variable(s)%s@."
      (Hwf_obs.Races.count races)
      (List.length races.Hwf_obs.Races.racy_vars)
      (if Hwf_obs.Races.racy races then
         Fmt.str " (%a)" Fmt.(list ~sep:comma string) races.Hwf_obs.Races.racy_vars
       else "");
    Fmt.pr "clock taint: %s (%d stamp reads, %d clock reads)@."
      (if Trace.now_reads trace = 0 then "none" else "tainted")
      (Trace.stamp_reads trace) (Trace.now_reads trace);
    let pool = Explore.stats_pool estats in
    Fmt.pr "pool: %d claims (%d stolen), %d cells evaluated, %d skipped@."
      (Hwf_par.Pool.stats_claims pool)
      (Hwf_par.Pool.stats_steals pool)
      (Hwf_par.Pool.stats_evaluated pool)
      (Hwf_par.Pool.stats_skipped pool);
    Array.iteri
      (fun w c -> if c > 0 then Fmt.pr "  domain %d: %d cells@." w c)
      (Hwf_par.Pool.stats_per_worker pool);
    Option.iter (fun path -> export_trace path trace) trace_out;
    Option.iter
      (fun path ->
        let m =
          Hwf_obs.Metrics.with_harness metrics
            [
              ("explore.runs", o.Explore.runs);
              ("explore.exhaustive", if o.Explore.exhaustive then 1 else 0);
            ]
        in
        export_metrics path m)
      metrics_out
  in
  let term =
    Term.(
      const action $ impl_arg $ cnum_arg $ quantum_arg $ layout_arg $ policy_arg
      $ seed_arg $ ops_arg $ max_runs_arg $ jobs_arg $ grain_arg $ no_dpor_arg
      $ trace_out_arg $ metrics_out_arg)
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:
         "Run a scenario with live metrics collection and print the observability \
          report: per-process scheduling metrics, measured access failures vs the \
          Lemma 2/3 bounds (with margins), and search-harness counters.")
    term

(* ---- trace: Fig. 1/2 demo ---- *)

let trace_cmd =
  let action quantum layout policy seed =
    let config = Layout.to_config ~quantum layout in
    let n = List.length layout in
    let x = Shared.make "obj" 0 in
    let bodies =
      Array.init n (fun _ () ->
          Eff.invocation "access" (fun () ->
              let v = Shared.read x in
              Eff.local "compute";
              Shared.write x (v + 1)))
    in
    let r = Engine.run ~config ~policy:(make_policy policy seed) bodies in
    Fmt.pr "%s@." (Render.lanes r.trace);
    Fmt.pr "well-formed: %b@." (Wellformed.is_well_formed r.trace)
  in
  let term = Term.(const action $ quantum_arg $ layout_arg $ policy_arg $ seed_arg) in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Render the interleaving of simple object accesses (Figs. 1-2).")
    term

(* ---- lint: the model-conformance linter ---- *)

let lint_cmd =
  let open Hwf_lint in
  let subjects_arg =
    let doc =
      Fmt.str "Subject to lint (repeatable; default: all). One of %a."
        Fmt.(list ~sep:comma string)
        Registry.names
    in
    Arg.(value & opt_all (enum (List.map (fun n -> (n, n)) Registry.names)) []
         & info [ "s"; "subject" ] ~docv:"NAME" ~doc)
  in
  let budget_arg =
    let doc = "Schedule battery size: replays per subject (round-robin, the \
               deterministic policies, then seeded randoms)." in
    Arg.(value & opt int 12 & info [ "budget" ] ~docv:"N" ~doc)
  in
  let report_arg =
    let doc = "Also write the machine-readable hwf-lint/1 JSONL report to $(docv)." in
    Arg.(value & opt (some string) None & info [ "report" ] ~docv:"FILE" ~doc)
  in
  let corpus_arg =
    let doc =
      "Negative-control mode: lint the known-bad corpus instead of the \
       registry and require every case to be rejected with its expected \
       rule. Exit 1 if any checker fails to fire."
    in
    Arg.(value & flag & info [ "corpus" ] ~doc)
  in
  let action subjects budget report corpus =
    if corpus then begin
      let misses =
        List.filter_map
          (fun (c : Hwf_lint_corpus.Corpus.case) ->
            let o, fired = Hwf_lint_corpus.Corpus.fires ~budget c in
            Fmt.pr "%-24s %-28s %s@." o.Lint.spec.Lint.name c.Hwf_lint_corpus.Corpus.expected_rule
              (if fired then "rejected (ok)" else "NOT REJECTED");
            if fired then None else Some o.Lint.spec.Lint.name)
          (Hwf_lint_corpus.Corpus.all ())
      in
      match misses with
      | [] ->
        Fmt.pr "corpus: all %d known-bad cases rejected@."
          (List.length (Hwf_lint_corpus.Corpus.all ()))
      | ms ->
        Fmt.epr "corpus: %d case(s) not rejected: %a@." (List.length ms)
          Fmt.(list ~sep:comma string)
          ms;
        exit 1
    end
    else begin
      let specs =
        match subjects with
        | [] -> Registry.all ()
        | names -> List.filter_map Registry.find names
      in
      let outcomes = List.map (Lint.run ~budget) specs in
      List.iter (Fmt.pr "%a@." Report.pp_outcome) outcomes;
      Option.iter (fun path -> Report.write ~path outcomes) report;
      let errors = List.concat_map Lint.errors outcomes in
      if errors = [] then
        Fmt.pr "lint: %d subject(s) clean@." (List.length outcomes)
      else begin
        Fmt.epr "lint: %d error(s)@." (List.length errors);
        exit 1
      end
    end
  in
  let term = Term.(const action $ subjects_arg $ budget_arg $ report_arg $ corpus_arg) in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Model-conformance linter: replay each algorithm under a schedule \
          battery, reconstruct its statement-level CFG, and check atomicity, \
          quantum shape (derived constant c vs. the theorem preconditions), \
          wait-freedom loop bounds and priority-change legality. Exit 1 on \
          any error finding.")
    term

let () =
  let doc =
    "Wait-free synchronization under hybrid priority/quantum scheduling \
     (Anderson & Moir, PODC 1999) — simulator CLI."
  in
  let info = Cmd.info "hybridsim" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            run_cmd; explore_cmd; replay_cmd; analyze_cmd; bivalence_cmd; cas_cmd;
            bounds_cmd; sweep_cmd; faults_cmd; stats_cmd; trace_cmd; lint_cmd;
          ]))
