(* Sec. 5 extension in action: processes change their own priorities
   between object invocations, and the paper's algorithms keep working
   unmodified.

   A control task normally runs at priority 1; when it detects an alarm
   it promotes itself to priority 3 (above the samplers) for the
   handling phase, then demotes back. All coordination goes through a
   wait-free register and counter built from Fig. 3 consensus cells.

   Run with: dune exec examples/dynamic_priorities.exe *)

open Hwf_sim
open Hwf_core

let () =
  let procs =
    [
      Proc.make ~pid:0 ~processor:0 ~priority:1 ~name:"control" ();
      Proc.make ~pid:1 ~processor:0 ~priority:2 ~name:"sampler-a" ();
      Proc.make ~pid:2 ~processor:0 ~priority:2 ~name:"sampler-b" ();
    ]
  in
  let config = Config.uniprocessor ~quantum:3000 ~levels:3 procs in
  let factory = Wf_objects.uni_factory () in
  let alarm = Wf_objects.register ~name:"alarm" ~n:3 ~init:false ~factory in
  let handled = Wf_objects.counter ~name:"handled" ~n:3 ~factory:(Wf_objects.uni_factory ()) in

  let handled_count = ref 0 in
  let control () =
    (* poll at low priority *)
    let saw_alarm = ref false in
    for _ = 1 to 4 do
      Eff.invocation "poll" (fun () ->
          if Wf_objects.read alarm ~pid:0 then saw_alarm := true)
    done;
    if !saw_alarm then begin
      (* promote for the handling phase: from here on the samplers
         cannot preempt us *)
      Eff.set_priority 3;
      Eff.invocation "handle" (fun () ->
          handled_count := Wf_objects.incr handled ~pid:0;
          Wf_objects.set alarm ~pid:0 false);
      Eff.set_priority 1
    end
  in
  let sampler pid () =
    for k = 1 to 3 do
      Eff.invocation "sample" (fun () ->
          if k = 2 && pid = 1 then Wf_objects.set alarm ~pid true
          else ignore (Wf_objects.read alarm ~pid))
    done
  in
  let bodies = [| control; sampler 1; sampler 2 |] in
  let r = Engine.run ~step_limit:4_000_000 ~config ~policy:(Policy.round_robin ()) bodies in
  assert (Array.for_all Fun.id r.finished);
  assert (Wellformed.is_well_formed r.trace);

  let promoted =
    List.exists
      (function Trace.Set_priority { pid = 0; priority = 3 } -> true | _ -> false)
      (Trace.events r.trace)
  in
  Fmt.pr "control promoted itself: %b@." promoted;
  Fmt.pr "alarms handled: %d@." !handled_count;
  Fmt.pr "trace is well-formed against the dynamic priorities: OK@.";
  Fmt.pr "%s@." (Render.lanes r.trace)
