(* The multiprocessor story end to end: producers on one processor,
   consumers on another, communicating through a wait-free FIFO queue
   whose consensus cells are the paper's Fig. 7 algorithm over
   2-consensus base objects — i.e. cross-processor wait-free
   synchronization bought entirely with scheduling structure plus
   minimal hardware power (C = P = 2).

   Run with: dune exec examples/multicore_workers.exe *)

open Hwf_sim
open Hwf_core
open Hwf_workload

let jobs_per_producer = 3

let () =
  (* Two producers + a supervisor on cpu 0; two consumers on cpu 1.
     The supervisor runs at a higher priority band, QNX-style. *)
  let layout = [ (0, 1); (0, 1); (0, 2); (1, 1); (1, 1) ] in
  let config = Layout.to_config ~quantum:6000 layout in
  let n = List.length layout in
  let factory = Wf_objects.multi_factory ~config ~consensus_number:2 () in
  let jobs = Wf_objects.queue ~name:"jobs" ~n ~factory in
  let done_count =
    Wf_objects.counter ~name:"done" ~n
      ~factory:(Wf_objects.multi_factory ~config ~consensus_number:2 ())
  in

  let consumed = Array.make n [] in
  let supervisor_view = ref 0 in

  let producer pid () =
    for k = 1 to jobs_per_producer do
      Eff.invocation "produce" (fun () ->
          Wf_objects.enqueue jobs ~pid ((pid * 100) + k))
    done
  in
  let supervisor () =
    Eff.invocation "check" (fun () -> supervisor_view := Wf_objects.get done_count ~pid:2)
  in
  let consumer pid () =
    (* each consumer attempts enough dequeues to drain its share *)
    for _ = 1 to 2 * jobs_per_producer do
      Eff.invocation "consume" (fun () ->
          match Wf_objects.dequeue jobs ~pid with
          | Some job ->
            consumed.(pid) <- job :: consumed.(pid);
            ignore (Wf_objects.incr done_count ~pid)
          | None -> ())
    done
  in
  let bodies = [| producer 0; producer 1; supervisor; consumer 3; consumer 4 |] in
  let r =
    Engine.run ~step_limit:40_000_000 ~config ~policy:(Policy.random ~seed:11) bodies
  in
  assert (Array.for_all Fun.id r.finished);
  assert (Wellformed.is_well_formed r.trace);

  let all = consumed.(3) @ consumed.(4) |> List.sort compare in
  Fmt.pr "jobs produced: %d, consumed: %d (cpu1 got %d + %d)@."
    (2 * jobs_per_producer) (List.length all)
    (List.length consumed.(3))
    (List.length consumed.(4));
  Fmt.pr "consumed set: %a@." Fmt.(Dump.list int) all;
  (* No job lost, none duplicated. *)
  assert (List.length (List.sort_uniq compare all) = List.length all);
  assert (List.for_all (fun j -> j mod 100 >= 1 && j mod 100 <= jobs_per_producer) all);
  Fmt.pr "supervisor's last progress snapshot: %d@." !supervisor_view;
  Fmt.pr
    "cross-processor wait-free pipeline over 2-consensus objects: no job lost or \
     duplicated. OK@."
