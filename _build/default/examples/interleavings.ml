(* Reproduces the paper's Figs. 1 and 2: how three processes accessing a
   common object interleave on one processor under quantum-based versus
   priority-based scheduling, and why the quantum case is harder (a
   preemptor may itself be preempted mid-invocation).

   Run with: dune exec examples/interleavings.exe *)

open Hwf_sim

let access x _pid () =
  Eff.invocation "access" (fun () ->
      let v = Shared.read x in
      Eff.local "compute";
      Eff.local "compute";
      Shared.write x (v + 1))

let show title config script =
  let x = Shared.make "obj" 0 in
  let bodies = Array.init 3 (access x) in
  let policy = Policy.scripted ~fallback:Policy.first script in
  let r = Engine.run ~config ~policy bodies in
  assert (Wellformed.is_well_formed r.trace);
  Fmt.pr "@.-- %s --@.%s" title (Render.lanes r.trace)

let () =
  (* Fig. 1(a) / Fig. 2: pure quantum scheduling, Q = 4. Process p (p1)
     is preempted by q (p2), which is itself preempted by r (p3): none of
     the preemptors is guaranteed to have finished its invocation when p
     resumes. *)
  let quantum_cfg =
    Config.uniprocessor ~quantum:4 ~levels:1
      (List.init 3 (fun i -> Proc.make ~pid:i ~processor:0 ~priority:1 ()))
  in
  show "Fig 1(a) / Fig 2: quantum-based, Q=4" quantum_cfg
    [ 0; 0; 1; 1; 2; 2; 2; 2 ];
  (* Fig. 1(b): priority scheduling, r > q > p. Preemptors always run to
     completion before the preempted process resumes, so their
     invocations appear atomic to it. *)
  let priority_cfg =
    Config.uniprocessor ~quantum:4 ~levels:3
      (List.init 3 (fun i -> Proc.make ~pid:i ~processor:0 ~priority:(i + 1) ()))
  in
  show "Fig 1(b): priority-based (p1 lowest, p3 highest)" priority_cfg
    [ 0; 0; 1; 1; 2; 2; 2; 2 ];
  Fmt.pr
    "@.'[' invocation begins, '=' statement, '.' preempted mid-invocation,@.\
     ']' invocation ends, '|' quantum boundaries.@.\
     In (b) higher-priority invocations nest: they appear atomic to the@.\
     preempted process — the key structural difference the paper exploits.@."
