examples/multicore_workers.mli:
