examples/quickstart.mli:
