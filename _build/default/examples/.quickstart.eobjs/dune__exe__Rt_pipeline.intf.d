examples/rt_pipeline.mli:
