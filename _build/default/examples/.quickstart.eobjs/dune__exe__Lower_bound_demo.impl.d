examples/lower_bound_demo.ml: Explore Fmt Hwf_adversary Hwf_sim Hwf_workload Layout Scenarios Stagger
