examples/multicore_workers.ml: Array Dump Eff Engine Fmt Fun Hwf_core Hwf_sim Hwf_workload Layout List Policy Wellformed Wf_objects
