examples/rt_pipeline.ml: Array Config Dump Eff Engine Fmt Fun Hwf_core Hwf_sim List Policy Proc Trace Wellformed Wf_objects
