examples/interleavings.ml: Array Config Eff Engine Fmt Hwf_sim List Policy Proc Render Shared Wellformed
