examples/dynamic_priorities.mli:
