examples/dynamic_priorities.ml: Array Config Eff Engine Fmt Fun Hwf_core Hwf_sim List Policy Proc Render Trace Wellformed Wf_objects
