examples/interleavings.mli:
