(* Quickstart: a wait-free shared counter for four processes of mixed
   priorities on a hybrid-scheduled uniprocessor, built from reads and
   writes only (Fig. 3 consensus cells + the universal construction).

   Run with: dune exec examples/quickstart.exe *)

open Hwf_sim
open Hwf_core

let () =
  (* 1. Describe the machine: one processor, quantum of 3000 statements,
        two processes at priority 1, one at 2, one at 3. *)
  let procs =
    [
      Proc.make ~pid:0 ~processor:0 ~priority:1 ~name:"worker-a" ();
      Proc.make ~pid:1 ~processor:0 ~priority:1 ~name:"worker-b" ();
      Proc.make ~pid:2 ~processor:0 ~priority:2 ~name:"service" ();
      Proc.make ~pid:3 ~processor:0 ~priority:3 ~name:"irq" ();
    ]
  in
  let config = Config.uniprocessor ~quantum:3000 ~levels:3 procs in

  (* 2. A wait-free counter shared by all four processes. The consensus
        cells inside are the paper's Fig. 3 read/write algorithm, correct
        on any hybrid-scheduled uniprocessor. *)
  let counter =
    Wf_objects.counter ~name:"hits" ~n:4 ~factory:(Wf_objects.uni_factory ())
  in

  (* 3. Process bodies: each increments twice; every shared-memory access
        inside is an atomic statement visible to the scheduler. *)
  let results = Array.make 4 [] in
  let bodies =
    Array.init 4 (fun pid () ->
        for _ = 1 to 2 do
          Eff.invocation "incr" (fun () ->
              let v = Wf_objects.incr counter ~pid in
              results.(pid) <- v :: results.(pid))
        done)
  in

  (* 4. Execute under a seeded random hybrid scheduler and validate the
        trace against the paper's well-formedness conditions. *)
  let r = Engine.run ~config ~policy:(Policy.random ~seed:2026) bodies in
  assert (Array.for_all Fun.id r.finished);
  assert (Wellformed.is_well_formed r.trace);

  Fmt.pr "total statements executed: %d@." (Trace.statements r.trace);
  Array.iteri
    (fun pid vs ->
      Fmt.pr "%-8s got counter values: %a@."
        (List.nth procs pid).Proc.name
        Fmt.(Dump.list int)
        (List.rev vs))
    results;
  (* All 8 increments are distinct and cover 1..8: linearizable. *)
  let all = Array.to_list results |> List.concat |> List.sort compare in
  Fmt.pr "all increments: %a@." Fmt.(Dump.list int) all;
  assert (all = List.init 8 (fun i -> i + 1));
  Fmt.pr "wait-free counter is linearizable under hybrid scheduling. OK@."
