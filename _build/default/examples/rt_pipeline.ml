(* A QNX/VxWorks-style real-time workload — the systems that motivate the
   paper's hybrid scheduler model (Sec. 1). One processor runs:

   - an interrupt handler at priority 3 that publishes sensor readings,
   - two sampler tasks at priority 2 sharing the CPU round-robin within
     their band (quantum scheduling), each draining readings and folding
     them into an aggregate,
   - a logger at priority 1 that snapshots the aggregate.

   All communication uses wait-free objects built from reads and writes
   only (Fig. 3 consensus cells under the universal construction), so no
   task ever blocks on a lock — an interrupt can fire mid-operation of
   any task and the shared state stays consistent.

   Run with: dune exec examples/rt_pipeline.exe *)

open Hwf_sim
open Hwf_core

let n_readings = 6

let () =
  let procs =
    [
      Proc.make ~pid:0 ~processor:0 ~priority:3 ~name:"irq" ();
      Proc.make ~pid:1 ~processor:0 ~priority:2 ~name:"sampler-a" ();
      Proc.make ~pid:2 ~processor:0 ~priority:2 ~name:"sampler-b" ();
      Proc.make ~pid:3 ~processor:0 ~priority:1 ~name:"logger" ();
    ]
  in
  let config = Config.uniprocessor ~quantum:4000 ~levels:3 procs in
  let factory = Wf_objects.uni_factory () in
  let readings = Wf_objects.queue ~name:"readings" ~n:4 ~factory in
  let factory2 = Wf_objects.uni_factory () in
  let aggregate = Wf_objects.counter ~name:"aggregate" ~n:4 ~factory:factory2 in

  let consumed = Array.make 4 0 in
  let snapshots = ref [] in

  let irq () =
    for i = 1 to n_readings do
      Eff.invocation "publish" (fun () -> Wf_objects.enqueue readings ~pid:0 (i * 10))
    done
  in
  let sampler pid () =
    let got = ref 0 in
    (* each sampler makes enough attempts to drain its share *)
    for _ = 1 to n_readings do
      Eff.invocation "sample" (fun () ->
          match Wf_objects.dequeue readings ~pid with
          | Some _reading ->
            incr got;
            ignore (Wf_objects.incr aggregate ~pid)
          | None -> ())
    done;
    consumed.(pid) <- !got
  in
  let logger () =
    for _ = 1 to 3 do
      Eff.invocation "log" (fun () ->
          snapshots := Wf_objects.get aggregate ~pid:3 :: !snapshots)
    done
  in
  let bodies = [| irq; sampler 1; sampler 2; logger |] in
  let r = Engine.run ~step_limit:5_000_000 ~config ~policy:(Policy.random ~seed:7) bodies in
  assert (Array.for_all Fun.id r.finished);
  assert (Wellformed.is_well_formed r.trace);

  Fmt.pr "statements executed: %d@." (Trace.statements r.trace);
  Fmt.pr "sampler-a consumed %d, sampler-b consumed %d (total %d of %d published)@."
    consumed.(1) consumed.(2)
    (consumed.(1) + consumed.(2))
    n_readings;
  Fmt.pr "logger snapshots (monotone): %a@." Fmt.(Dump.list int) (List.rev !snapshots);

  (* Invariants of the pipeline: *)
  assert (consumed.(1) + consumed.(2) <= n_readings);
  let snaps = List.rev !snapshots in
  let rec monotone = function
    | a :: (b :: _ as rest) -> a <= b && monotone rest
    | _ -> true
  in
  assert (monotone snaps);
  Fmt.pr "pipeline invariants hold: no reading lost or duplicated, snapshots monotone. OK@."
