(* The lower-bound side of the paper, live (Theorem 3, Figs. 4/6/10):

   1. For the uniprocessor algorithm (Fig. 3), the model checker finds a
      concrete schedule on which two processes decide differently once
      the quantum drops below the Theorem 1 threshold — the Fig. 4
      scenario made executable.
   2. For the multiprocessor algorithm (Fig. 7) run below the Theorem 3
      threshold Q <= 2P - C, a staggering adversary forces more than C
      distinct processes into a C-consensus object, which then returns
      bottom — the exact mechanism of the valency proof.

   Run with: dune exec examples/lower_bound_demo.exe *)

open Hwf_adversary
open Hwf_workload

let () =
  (* 1. Fig. 3 at Q=1: exhaustive search for a disagreement. *)
  let b =
    Scenarios.consensus ~name:"demo" ~impl:Scenarios.Fig3 ~quantum:1
      ~layout:[ (0, 1); (0, 1) ]
  in
  (match (Explore.explore b.scenario).counterexample with
  | Some c ->
    Fmt.pr "Fig. 3 at Q=1: %s@." c.message;
    Fmt.pr "the violating interleaving (cf. Fig. 4):@.%s@."
      (Hwf_sim.Render.lanes c.trace)
  | None -> Fmt.pr "unexpected: no violation found@.");

  (* Control: the same search at Q=8 proves agreement over all schedules. *)
  let b8 =
    Scenarios.consensus ~name:"demo8" ~impl:Scenarios.Fig3 ~quantum:8
      ~layout:[ (0, 1); (0, 1) ]
  in
  let o8 = Explore.explore b8.scenario in
  Fmt.pr "Fig. 3 at Q=8: %a@.@." Explore.pp_outcome o8;

  (* 2. Fig. 7 with P=2, C=2 at Q = 2P-C = 2: exhaust a C-consensus
        object with a staggering adversary. *)
  let layout = Layout.uniform ~processors:2 ~per_processor:4 in
  let rec hunt seed =
    if seed > 400 then None
    else
      let s =
        Scenarios.run_multi ~step_limit:8_000_000 ~quantum:2 ~consensus_number:2
          ~layout
          ~policy:(Stagger.exhaustion_pressure ~seed ~var_prefix:"mc.Cons" ())
          ()
      in
      if s.exhausted > 0 || not (s.agreed && s.valid) then Some (seed, s) else hunt (seed + 1)
  in
  (match hunt 0 with
  | Some (seed, s) ->
    Fmt.pr
      "Fig. 7 (P=2, C=2) at Q=2 <= 2P-C, adversary seed %d:@.  %d proposals hit an \
       exhausted 2-consensus object (more than C distinct processes reached it);@.  \
       agreement %b, validity %b.@."
      seed s.exhausted s.agreed s.valid
  | None -> Fmt.pr "no violation found in 400 adversarial runs (increase the budget)@.");
  let safe =
    Scenarios.run_multi ~step_limit:8_000_000 ~quantum:4096 ~consensus_number:2
      ~layout
      ~policy:(Stagger.exhaustion_pressure ~seed:0 ~var_prefix:"mc.Cons" ())
      ()
  in
  Fmt.pr
    "control at Q=4096 (above the Theorem 4 threshold): exhausted %d, agreement %b. OK@."
    safe.exhausted safe.agreed
