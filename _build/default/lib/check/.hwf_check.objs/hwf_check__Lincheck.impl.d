lib/check/lincheck.ml: Array Hashtbl Hist
