lib/check/hist.ml: Eff Fmt Hwf_sim Vec
