lib/check/hist.mli: Fmt
