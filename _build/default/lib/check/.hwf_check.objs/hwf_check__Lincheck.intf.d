lib/check/lincheck.mli: Hist
