open Hwf_sim

type ('op, 'r) entry = { pid : int; op : 'op; result : 'r; t0 : int; t1 : int }

type ('op, 'r) t = ('op, 'r) entry Vec.t

let create () = Vec.create ()

let wrap h ~pid op f =
  let t0 = Eff.now () in
  let result = f () in
  let t1 = Eff.now () in
  Vec.push h { pid; op; result; t0; t1 };
  result

let entries h = Vec.to_list h

let pp ~op ~result ppf h =
  let pp_entry ppf e =
    Fmt.pf ppf "[%d,%d) p%d: %a -> %a" e.t0 e.t1 (e.pid + 1) op e.op result e.result
  in
  Fmt.pf ppf "@[<v>%a@]" Fmt.(list ~sep:(any "@,") pp_entry) (entries h)
