(** Linearizability checking (Wing–Gong style).

    Decides whether a recorded concurrent history is linearizable with
    respect to a sequential specification: is there a total order of the
    completed operations that (a) respects real-time precedence
    (operation [a] precedes [b] whenever [a.t1 <= b.t0]) and (b) replays
    through the spec with every operation producing exactly the result
    it returned in the concurrent run?

    The search memoizes on (set of linearized ops, spec state), which
    keeps the small histories used by the test suites tractable. Spec
    states and results must support structural equality and hashing. *)

type ('op, 'r) spec

val make_spec : init:'s -> apply:('s -> 'op -> 's * 'r) -> ('op, 'r) spec
(** Wraps a typed sequential specification. [apply] must be pure. *)

val check : ('op, 'r) spec -> ('op, 'r) Hist.entry list -> (unit, string) result
(** [Ok ()] iff the history is linearizable. *)

val check_hist : ('op, 'r) spec -> ('op, 'r) Hist.t -> (unit, string) result

val check_sequential_consistency :
  ('op, 'r) spec -> ('op, 'r) Hist.entry list -> (unit, string) result
(** The weaker criterion: a total order that respects only each
    process's {e program order} (not cross-process real time) and
    replays through the spec. Every linearizable history is sequentially
    consistent; the converse fails — the paper's algorithms are held to
    the stronger bar, and the test suite exhibits a history separating
    the two so this checker documents what linearizability adds. *)
