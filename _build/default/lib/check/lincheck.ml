type ('op, 'r) spec =
  | Spec : { init : 's; apply : 's -> 'op -> 's * 'r } -> ('op, 'r) spec

let make_spec ~init ~apply = Spec { init; apply }

exception Found

(* A compact bitmask identifies the set of already-linearized operations;
   histories beyond 62 operations are rejected up front (the suites stay
   far below that). *)
(* Shared search: [precede] gives, per op, the bitmask of ops that must
   come earlier in any witness order. *)
let search_order spec entries precede =
  match spec with
  | Spec { init; apply } ->
    let n = Array.length entries in
    begin
      let full = (1 lsl n) - 1 in
      let seen = Hashtbl.create 1024 in
      let rec search done_mask state =
        if done_mask = full then raise Found;
        let key = (done_mask, state) in
        if not (Hashtbl.mem seen key) then begin
          Hashtbl.add seen key ();
          for i = 0 to n - 1 do
            let bit = 1 lsl i in
            if done_mask land bit = 0 && precede.(i) land lnot done_mask = 0 then begin
              let e = entries.(i) in
              let state', r = apply state e.Hist.op in
              if r = e.Hist.result then search (done_mask lor bit) state'
            end
          done
        end
      in
      match search 0 init with
      | () -> Error "no valid order exists"
      | exception Found -> Ok ()
    end

let check spec entries =
  let entries = Array.of_list entries in
  let n = Array.length entries in
  if n > 62 then Error "Lincheck.check: history too long (> 62 operations)"
  else
    let precede =
      Array.init n (fun i ->
          let e = entries.(i) in
          let mask = ref 0 in
          for j = 0 to n - 1 do
            if j <> i && entries.(j).Hist.t1 <= e.Hist.t0 then
              mask := !mask lor (1 lsl j)
          done;
          !mask)
    in
    match search_order spec entries precede with
    | Ok () -> Ok ()
    | Error _ -> Error "not linearizable: no valid linearization order exists"

let check_hist spec hist = check spec (Hist.entries hist)

let check_sequential_consistency spec entries =
  let entries = Array.of_list entries in
  let n = Array.length entries in
  if n > 62 then Error "Lincheck.check_sequential_consistency: history too long"
  else
    (* only same-process program order constrains *)
    let precede =
      Array.init n (fun i ->
          let e = entries.(i) in
          let mask = ref 0 in
          for j = 0 to n - 1 do
            if j <> i && entries.(j).Hist.pid = e.Hist.pid && entries.(j).Hist.t1 <= e.Hist.t0
            then mask := !mask lor (1 lsl j)
          done;
          !mask)
    in
    match search_order spec entries precede with
    | Ok () -> Ok ()
    | Error _ -> Error "not sequentially consistent: no program-order-respecting order"
