(** Trace analytics: the per-invocation quantities the paper's arguments
    reason about, derived from a recorded history.

    A {e preemption} of an invocation is a maximal gap between two of its
    statements in which other processes on the same processor executed;
    each preemption is classified by the highest priority that ran during
    the gap relative to the preempted process's (dynamic) priority —
    same-level preemptions are the ones Axiom 2 rations, higher-level
    ones are the ones Axiom 1 permits freely. *)

type inv_stat = {
  pid : Proc.pid;
  inv : int;
  label : string;
  statements : int;
  same_level_preemptions : int;
  higher_level_preemptions : int;
  completed : bool;
}

type t = {
  invocations : inv_stat list;  (** In begin order. *)
  switches : int;  (** Statement-to-statement process changes. *)
  per_pid_statements : int array;
  max_invocation_statements : int;
  same_level_preemptions : int;  (** Totals over all invocations. *)
  higher_level_preemptions : int;
}

val of_trace : Trace.t -> t

val max_same_level_preemptions_per_invocation : t -> int
(** The quantity Theorem 1/2's quantum conditions bound: with [Q] at
    least the invocation length, this is at most 1. *)

val pp_summary : t Fmt.t
