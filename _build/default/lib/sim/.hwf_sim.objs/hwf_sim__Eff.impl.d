lib/sim/eff.ml: Effect Op
