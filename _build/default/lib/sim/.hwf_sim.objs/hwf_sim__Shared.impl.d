lib/sim/shared.ml: Array Eff Op Printf
