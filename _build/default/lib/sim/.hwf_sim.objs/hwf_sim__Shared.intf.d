lib/sim/shared.mli:
