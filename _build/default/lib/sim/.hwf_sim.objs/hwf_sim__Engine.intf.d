lib/sim/engine.mli: Config Op Policy Proc Trace
