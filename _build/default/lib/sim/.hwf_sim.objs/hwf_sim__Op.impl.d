lib/sim/op.ml: Fmt String
