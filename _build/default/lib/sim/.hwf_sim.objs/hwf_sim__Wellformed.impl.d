lib/sim/wellformed.ml: Array Config Fmt List Proc Trace
