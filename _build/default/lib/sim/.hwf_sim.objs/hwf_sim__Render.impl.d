lib/sim/render.ml: Array Buffer Bytes Config Fmt Fun List Printf Proc Trace
