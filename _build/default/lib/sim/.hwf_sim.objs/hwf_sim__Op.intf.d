lib/sim/op.mli: Fmt
