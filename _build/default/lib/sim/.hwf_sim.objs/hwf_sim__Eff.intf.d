lib/sim/eff.mli: Effect Op
