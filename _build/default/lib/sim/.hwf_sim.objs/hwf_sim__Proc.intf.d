lib/sim/proc.mli: Fmt
