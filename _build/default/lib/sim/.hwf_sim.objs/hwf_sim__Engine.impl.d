lib/sim/engine.ml: Array Config Eff Effect Fmt List Op Policy Proc Trace
