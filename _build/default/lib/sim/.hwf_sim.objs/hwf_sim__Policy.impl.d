lib/sim/policy.ml: Array List Op Printf Proc Random
