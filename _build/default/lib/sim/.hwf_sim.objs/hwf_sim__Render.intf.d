lib/sim/render.mli: Fmt Trace
