lib/sim/proc.ml: Fmt Printf
