lib/sim/config.ml: Array Fmt List Proc
