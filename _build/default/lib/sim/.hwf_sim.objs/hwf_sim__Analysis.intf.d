lib/sim/analysis.mli: Fmt Proc Trace
