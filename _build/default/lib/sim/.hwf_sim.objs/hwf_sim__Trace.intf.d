lib/sim/trace.mli: Config Fmt Op Proc
