lib/sim/trace.ml: Config Fmt Op Printf Proc Vec
