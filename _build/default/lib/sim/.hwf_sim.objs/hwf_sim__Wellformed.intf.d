lib/sim/wellformed.mli: Fmt Proc Trace
