lib/sim/vec.mli:
