lib/sim/analysis.ml: Array Config Fmt List Proc Trace
