lib/sim/config.mli: Fmt Proc
