lib/sim/policy.mli: Op Proc
