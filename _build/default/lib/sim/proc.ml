type pid = int

type t = { pid : pid; processor : int; priority : int; name : string }

let make ?name ~pid ~processor ~priority () =
  let name = match name with Some n -> n | None -> Printf.sprintf "p%d" (pid + 1) in
  { pid; processor; priority; name }

let pp_pid ppf pid = Fmt.pf ppf "p%d" (pid + 1)

let pp ppf t =
  Fmt.pf ppf "%s(cpu=%d,pri=%d)" t.name (t.processor + 1) t.priority
