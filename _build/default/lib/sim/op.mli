(** Atomic-statement descriptors.

    Every numbered statement of a paper algorithm is one atomic statement
    in the model, whether it touches shared memory or only private
    variables (the quantum is a statement count over {e all} statements,
    cf. Sec. 2). The descriptor is recorded in the trace and shown to
    scheduling policies {e before} the statement executes. *)

type t =
  | Read of string  (** Read of the named shared variable. *)
  | Write of string  (** Write of the named shared variable. *)
  | Rmw of { var : string; kind : string }
      (** Atomic read-modify-write primitive on [var]; [kind] names the
          primitive, e.g. ["C&S"], ["F&I"], ["consensus"]. *)
  | Local of string  (** Statement touching only private variables. *)

val read : string -> t
val write : string -> t
val rmw : var:string -> kind:string -> t
val local : string -> t

val var : t -> string option
(** Shared variable touched, if any. *)

val is_shared : t -> bool

val pp : t Fmt.t
val equal : t -> t -> bool
