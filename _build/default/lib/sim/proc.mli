(** Process identities.

    Following the paper's model (Sec. 2): the system has [N] processes,
    each statically assigned to one of [P] processors and given a static
    priority in [1..V] where [V] is the highest priority. Process ids are
    0-based internally; printers render them 1-based like the paper. *)

type pid = int
(** Process identifier, [0 .. N-1]. *)

type t = {
  pid : pid;
  processor : int;  (** 0-based processor index, [0 .. P-1]. *)
  priority : int;  (** Priority level in [1 .. V]; larger is higher. *)
  name : string;  (** Human-readable label used in traces. *)
}

val make : ?name:string -> pid:pid -> processor:int -> priority:int -> unit -> t
(** [make ~pid ~processor ~priority ()] builds a process descriptor. The
    default [name] is ["p<pid+1>"]. *)

val pp : t Fmt.t

val pp_pid : pid Fmt.t
(** Renders a pid 1-based, e.g. [p3]. *)
