(** ASCII interleaving diagrams in the style of the paper's Figs. 1 and 2.

    Each process gets one lane; time (global statement index) runs left
    to right. Within a lane:

    - ['['] / [']'] bracket an object invocation (as in the paper),
    - ['='] marks a statement executed by the process,
    - ['.'] marks a point where the process is mid-invocation but another
      process is executing (i.e. it is preempted),
    - [' '] marks thinking time.

    For uniprocessor traces a ruler row marks every [Q]-th statement so
    quantum boundaries are visible (cf. Fig. 2). *)

val lanes : ?max_width:int -> Trace.t -> string
(** Multi-line diagram, highest-priority process first. Truncates to
    [max_width] columns (default 200) with an ellipsis marker. *)

val pp : Trace.t Fmt.t
