type t =
  | Read of string
  | Write of string
  | Rmw of { var : string; kind : string }
  | Local of string

let read v = Read v
let write v = Write v
let rmw ~var ~kind = Rmw { var; kind }
let local l = Local l

let var = function
  | Read v | Write v | Rmw { var = v; _ } -> Some v
  | Local _ -> None

let is_shared = function Read _ | Write _ | Rmw _ -> true | Local _ -> false

let pp ppf = function
  | Read v -> Fmt.pf ppf "read %s" v
  | Write v -> Fmt.pf ppf "write %s" v
  | Rmw { var; kind } -> Fmt.pf ppf "%s %s" kind var
  | Local l -> Fmt.pf ppf "local %s" l

let equal a b =
  match (a, b) with
  | Read x, Read y | Write x, Write y | Local x, Local y -> String.equal x y
  | Rmw { var = v1; kind = k1 }, Rmw { var = v2; kind = k2 } ->
    String.equal v1 v2 && String.equal k1 k2
  | (Read _ | Write _ | Rmw _ | Local _), _ -> false
