type phase = Thinking | Ready | Finished

type pview = {
  pid : Proc.pid;
  processor : int;
  priority : int;
  phase : phase;
  next_op : Op.t option;
  own_steps : int;
  inv_steps : int;
  inv : int;
  guarantee : int;
  pending : bool;
}

type view = { step : int; runnable : Proc.pid list; procs : pview array }

type t = { name : string; choose : view -> Proc.pid option }

let of_fun name choose = { name; choose }

let round_robin () =
  let last = ref (-1) in
  of_fun "round-robin" (fun v ->
      match v.runnable with
      | [] -> None
      | l ->
        let pick =
          match List.find_opt (fun p -> p > !last) l with
          | Some p -> p
          | None -> List.hd l
        in
        last := pick;
        Some pick)

let random ~seed =
  let st = Random.State.make [| seed |] in
  of_fun (Printf.sprintf "random(%d)" seed) (fun v ->
      match v.runnable with
      | [] -> None
      | l -> Some (List.nth l (Random.State.int st (List.length l))))

let scripted ?fallback script =
  let remaining = ref script in
  of_fun "scripted" (fun v ->
      let rec next () =
        match !remaining with
        | [] -> (match fallback with Some f -> f.choose v | None -> None)
        | pid :: rest ->
          if List.mem pid v.runnable then begin
            remaining := rest;
            Some pid
          end
          else begin
            match fallback with
            | Some _ ->
              remaining := rest;
              next ()
            | None -> None
          end
      in
      next ())

let first =
  of_fun "first" (fun v -> match v.runnable with [] -> None | pid :: _ -> Some pid)

let highest_pid =
  of_fun "highest-pid" (fun v ->
      match List.rev v.runnable with [] -> None | pid :: _ -> Some pid)

let by_priority =
  of_fun "by-priority" (fun v ->
      match v.runnable with
      | [] -> None
      | first :: rest ->
        Some
          (List.fold_left
             (fun best p ->
               if v.procs.(p).priority > v.procs.(best).priority then p else best)
             first rest))

let prefer pids ~fallback =
  of_fun "prefer" (fun v ->
      match List.find_opt (fun p -> List.mem p v.runnable) pids with
      | Some p -> Some p
      | None -> fallback.choose v)
