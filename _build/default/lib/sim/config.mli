(** System configuration.

    A configuration fixes the machine shape of the paper's model: the
    process set (with static processor assignment and priorities), the
    number of processors [P], the scheduling quantum [Q] (a statement
    count) and the number of priority levels [V].

    The [axiom2] flag exists to reproduce the paper's Sec. 2 discussion:
    a hybrid scheduler satisfying Axiom 1 but violating Axiom 2 collapses
    back to Herlihy's hierarchy. Setting [axiom2 = false] removes the
    quantum guarantee entirely, which lets experiments demonstrate that
    the paper's algorithms genuinely rely on it. *)

type t = private {
  procs : Proc.t array;  (** Indexed by pid. *)
  processors : int;  (** P. *)
  quantum : int;  (** Q, in atomic statements. *)
  levels : int;  (** V: priorities range over [1..V]. *)
  axiom2 : bool;  (** Enforce the quantum guarantee (default [true]). *)
  tmin : int;  (** Minimum statement duration in time units (default 1). *)
  tmax : int;  (** Maximum statement duration (default 1). With
                   [tmin = tmax = 1] the model is the paper's pure
                   statement-count model; larger spans reproduce the
                   Tmax/Tmin structure of Table 1 (the paper notes time
                   is "easily incorporated"). The quantum [Q] is then a
                   time budget. *)
}

val make :
  ?axiom2:bool ->
  ?tmin:int ->
  ?tmax:int ->
  quantum:int ->
  processors:int ->
  levels:int ->
  Proc.t list ->
  t
(** Builds and validates a configuration.
    @raise Invalid_argument if pids are not [0..N-1] in order, a processor
    index is out of range, a priority is outside [1..levels], or
    [quantum < 0]. *)

val uniprocessor :
  ?axiom2:bool -> ?tmin:int -> ?tmax:int -> quantum:int -> levels:int -> Proc.t list -> t
(** [uniprocessor] is [make ~processors:1]. *)

val n : t -> int
(** Number of processes, the paper's [N]. *)

val procs_on : t -> int -> Proc.t list
(** [procs_on t i] lists processes assigned to processor [i]. *)

val max_per_processor : t -> int
(** The paper's [M]: the maximum number of processes on any processor. *)

val is_pure_priority : t -> bool
(** True when all processes sharing a processor have distinct priorities,
    i.e. the quantum machinery can never engage. *)

val is_pure_quantum : t -> bool
(** True when every process has the same priority. *)

val pp : t Fmt.t
