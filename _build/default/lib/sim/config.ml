type t = {
  procs : Proc.t array;
  processors : int;
  quantum : int;
  levels : int;
  axiom2 : bool;
  tmin : int;
  tmax : int;
}

let make ?(axiom2 = true) ?(tmin = 1) ?(tmax = 1) ~quantum ~processors ~levels procs =
  let procs = Array.of_list procs in
  if quantum < 0 then invalid_arg "Config.make: quantum < 0";
  if tmin < 1 || tmax < tmin then invalid_arg "Config.make: need 1 <= tmin <= tmax";
  if processors < 1 then invalid_arg "Config.make: processors < 1";
  if levels < 1 then invalid_arg "Config.make: levels < 1";
  Array.iteri
    (fun i (p : Proc.t) ->
      if p.pid <> i then invalid_arg "Config.make: pids must be 0..N-1 in order";
      if p.processor < 0 || p.processor >= processors then
        invalid_arg "Config.make: processor out of range";
      if p.priority < 1 || p.priority > levels then
        invalid_arg "Config.make: priority out of range")
    procs;
  { procs; processors; quantum; levels; axiom2; tmin; tmax }

let uniprocessor ?axiom2 ?tmin ?tmax ~quantum ~levels procs =
  make ?axiom2 ?tmin ?tmax ~quantum ~processors:1 ~levels procs

let n t = Array.length t.procs

let procs_on t i =
  Array.to_list t.procs |> List.filter (fun (p : Proc.t) -> p.processor = i)

let max_per_processor t =
  let counts = Array.make t.processors 0 in
  Array.iter (fun (p : Proc.t) -> counts.(p.processor) <- counts.(p.processor) + 1) t.procs;
  Array.fold_left max 0 counts

let is_pure_priority t =
  let ok = ref true in
  for i = 0 to t.processors - 1 do
    let pris = procs_on t i |> List.map (fun (p : Proc.t) -> p.priority) in
    let sorted = List.sort_uniq compare pris in
    if List.length sorted <> List.length pris then ok := false
  done;
  !ok

let is_pure_quantum t =
  match Array.to_list t.procs with
  | [] -> true
  | p :: rest -> List.for_all (fun (q : Proc.t) -> q.priority = p.priority) rest

let pp ppf t =
  Fmt.pf ppf "@[<v>P=%d Q=%d V=%d axiom2=%b N=%d@,%a@]" t.processors t.quantum
    t.levels t.axiom2 (n t)
    Fmt.(list ~sep:(any "@,") Proc.pp)
    (Array.to_list t.procs)
