lib/objects/cons_obj.ml: Eff Hwf_sim Op
