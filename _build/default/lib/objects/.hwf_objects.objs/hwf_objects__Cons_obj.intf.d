lib/objects/cons_obj.mli:
