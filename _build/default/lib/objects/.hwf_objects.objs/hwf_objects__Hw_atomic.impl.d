lib/objects/hw_atomic.ml: Eff Hwf_sim Op
