lib/objects/hw_atomic.mli:
