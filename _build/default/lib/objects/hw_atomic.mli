(** Hardware read-modify-write primitives.

    Used by baselines and examples only — the paper's point is precisely
    that its constructions avoid needing these on a uniprocessor. Each
    operation is one atomic statement. *)

type 'a t

val make : string -> 'a -> 'a t

val read : 'a t -> 'a

val write : 'a t -> 'a -> unit

val cas : 'a t -> expected:'a -> desired:'a -> bool
(** Compare-and-swap with structural equality on ['a]. *)

val fetch_and_add : int t -> int -> int
(** Returns the pre-increment value. *)

val peek : 'a t -> 'a
(** Harness inspection; not a statement. *)
