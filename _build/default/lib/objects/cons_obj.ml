open Hwf_sim

type 'a t = {
  name : string;
  consensus_number : int;
  mutable decided : 'a option;
  mutable invocations : int;
}

let make ?(consensus_number = max_int) name =
  if consensus_number < 1 then invalid_arg "Cons_obj.make: consensus_number < 1";
  { name; consensus_number; decided = None; invocations = 0 }

let consensus_number t = t.consensus_number

let propose t v =
  Eff.step (Op.rmw ~var:t.name ~kind:"propose");
  t.invocations <- t.invocations + 1;
  if t.invocations > t.consensus_number then None
  else begin
    (match t.decided with None -> t.decided <- Some v | Some _ -> ());
    t.decided
  end

let read t =
  Eff.step (Op.read t.name);
  t.decided

let invocations t = t.invocations
let peek t = t.decided
let exhausted t = t.invocations > t.consensus_number
