open Hwf_sim

type 'a t = { name : string; mutable v : 'a }

let make name v = { name; v }

let read t =
  Eff.step (Op.read t.name);
  t.v

let write t x =
  Eff.step (Op.write t.name);
  t.v <- x

let cas t ~expected ~desired =
  Eff.step (Op.rmw ~var:t.name ~kind:"C&S");
  if t.v = expected then begin
    t.v <- desired;
    true
  end
  else false

let fetch_and_add t d =
  Eff.step (Op.rmw ~var:t.name ~kind:"F&A");
  let old = t.v in
  t.v <- old + d;
  old

let peek t = t.v
