(** Hardware [C]-consensus objects.

    The base objects of the paper's multiprocessor results: an object
    with consensus number [C] solves consensus for at most [C] processes.
    Following the lower-bound model (Sec. 4.1), an invocation beyond the
    [C]-th returns no useful information, modelled as [None] (the paper's
    ⊥). The upper-bound algorithm (Fig. 7) keeps within the budget by
    mediating access through ports; the lower-bound adversary
    deliberately exhausts it.

    A [propose] is a single atomic statement. *)

type 'a t

val make : ?consensus_number:int -> string -> 'a t
(** [make name] creates an undecided object. [consensus_number] defaults
    to [max_int] (an object of infinite consensus number, e.g. C&S). *)

val consensus_number : 'a t -> int

val propose : 'a t -> 'a -> 'a option
(** [propose t v] decides [v] if the object is undecided, and returns the
    decided value — or [None] if this is invocation number [C+1] or
    later. One atomic statement. *)

val read : 'a t -> 'a option
(** [read t] returns the decided value without counting against the
    invocation budget, or [None] if undecided. One atomic statement.
    (Used where the paper reads a consensus object, e.g. Fig. 5 line 17:
    a read is "implemented by reading one shared variable".) *)

val invocations : 'a t -> int
(** Harness inspection: number of [propose]s so far. Not a statement. *)

val peek : 'a t -> 'a option
(** Harness inspection of the decided value. Not a statement. *)

val exhausted : 'a t -> bool
(** Harness inspection: [invocations t > consensus_number t]. *)
