open Hwf_sim

(* See the .mli: this construction is DELIBERATELY KEPT BROKEN as the
   ablation justifying the consensus-chain design (DESIGN.md,
   Substitution 2). Do not use it as a synchronization primitive. *)

type 'a t = {
  x : 'a Shared.t;  (* the value *)
  l : int Shared.t;  (* announce: last process to start an operation *)
}

let make name init = { x = Shared.make (name ^ ".X") init; l = Shared.make (name ^ ".L") (-1) }

let rec cas t ~who ~expected ~desired =
  Shared.write t.l who (* 1: announce *);
  let v = Shared.read t.x (* 2 *) in
  if Shared.read t.l <> who (* 3: preempted? retry, now preemption-free *) then
    cas t ~who ~expected ~desired
  else if v <> expected then false (* 4 *)
  else begin
    (* The flaw: a preemption can land between the check (3) and the
       write (5); the preemptor's completed CAS is then clobbered by a
       write based on a stale read, and there is no post-write
       validation that could repair it. *)
    Shared.write t.x desired (* 5 *);
    true (* 6 *)
  end

let read t = Shared.read t.x

let peek t = Shared.peek t.x
