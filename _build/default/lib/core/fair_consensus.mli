(** Fig. 9: multiprocessor consensus with {e fair} quantum allocation and
    a constant-size quantum (Sec. 5).

    One process per (processor, priority level) is elected through a
    local uniprocessor consensus object; losers spin until the decision
    is published. The winners — at most one per level per processor, so
    never subject to same-priority preemption among themselves — run the
    priority-based instance of the Fig. 7 algorithm, which then needs
    only a constant quantum. Under a fair scheduler every spinning loser
    terminates after finitely many of its own steps, so the algorithm is
    wait-free in the "finite number of its own steps" sense the paper
    adopts; under an unfair scheduler losers can spin forever, which is
    exactly the contrast experiment E8 demonstrates. *)

type 'a t

val make : config:Hwf_sim.Config.t -> name:string -> consensus_number:int -> 'a t

val decide : 'a t -> pid:int -> 'a -> 'a
(** May spin (line 2) while the global decision is pending; bound the run
    with a step limit and a fair policy. *)

val elections_lost : 'a t -> int
(** Harness statistic: how many [decide] calls took the spinning path. *)
