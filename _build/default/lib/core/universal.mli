(** Herlihy's universal construction over consensus objects.

    The payoff of the paper's results: once consensus is wait-free
    solvable for any number of processes (Theorems 1 and 4), {e every}
    sequential object has a wait-free linearizable implementation. The
    object is a list of cells, each deciding via a consensus object
    which announced operation comes next; helping (propose the announced
    operation of process [k mod N] at cell [k]) makes every announced
    operation land within [N] cells, giving wait-freedom.

    The consensus objects are supplied by a factory, so the same
    construction runs over Fig. 3 consensus (uniprocessor objects from
    reads and writes), Fig. 7 consensus ([N >> P] processes from
    [P]-consensus objects — the universality claim of Theorem 4), or raw
    hardware consensus (baseline). Each cell's decision is mirrored into
    a one-writer-value cache register so that replaying the list costs
    one read per cell; all writers of a cache write the same decided
    value, so the mirror is race-free by value.

    Memory is unbounded (one cell per operation), as in Herlihy's
    original construction; the paper's Fig. 5 shows the bounded-memory
    specialization for C&S, implemented in {!Hybrid_cas}. *)

type ('s, 'op, 'r) t

type 'v factory = string -> pid:int -> 'v -> 'v
(** [factory name ~pid v] proposes [v] to the consensus object it names
    (created on first use) and returns the decision. See
    {!Wf_objects.uni_factory} and {!Wf_objects.multi_factory}. *)

val make :
  name:string ->
  n:int ->
  init:'s ->
  apply:('s -> 'op -> 's * 'r) ->
  factory:(int * int * 'op) factory ->
  ('s, 'op, 'r) t
(** [n] is the number of processes that may access the object (pids
    [0..n-1]); [apply] must be pure (it is replayed). *)

val invoke : ('s, 'op, 'r) t -> pid:int -> 'op -> 'r
(** Wait-free linearizable operation application. *)

val peek_state : ('s, 'op, 'r) t -> 's
(** Harness inspection: state after all currently visible operations. *)

val ops_count : ('s, 'op, 'r) t -> int
(** Harness inspection: operations visible so far. *)
