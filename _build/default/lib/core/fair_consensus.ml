open Hwf_sim

type 'a t = {
  name : string;
  config : Config.t;
  output : 'a option Shared.t;
  elections : int Uni_consensus.t array array;  (* [P][V] *)
  global : 'a Multi_consensus.t;
  mutable lost : int;
}

let make ~config ~name ~consensus_number =
  let p = config.Config.processors in
  let v = config.Config.levels in
  {
    name;
    config;
    output = Shared.make (name ^ ".Output") None;
    elections =
      Array.init p (fun i ->
          Array.init v (fun w ->
              Uni_consensus.make
                (Printf.sprintf "%s.elect[%d][%d]" name (i + 1) (w + 1))));
    global = Multi_consensus.make ~config ~name:(name ^ ".global") ~consensus_number ();
    lost = 0;
  }

let decide t ~pid input =
  let i = t.config.Config.procs.(pid).Proc.processor in
  let v = t.config.Config.procs.(pid).Proc.priority in
  (* line 1: elect one process per (processor, level) *)
  if Uni_consensus.decide t.elections.(i).(v - 1) pid <> pid then begin
    t.lost <- t.lost + 1;
    (* lines 2-3: spin until the winners publish *)
    let rec wait () =
      match Shared.read t.output with None -> wait () | Some r -> r
    in
    wait ()
  end
  else begin
    (* lines 4-6 *)
    let output = Multi_consensus.decide t.global ~pid input in
    Shared.write t.output (Some output);
    output
  end

let elections_lost t = t.lost
