open Hwf_sim

type 'a t = { name : string; p : 'a option Shared.t array }

let make name = { name; p = Shared.array (name ^ ".P") 3 (fun _ -> None) }

let name t = t.name

let statements_per_decide = 8

(* Fig. 3, statements numbered as in the paper:
     1: v := val
     2: for i := 1 to 3 do          (folded into the loop structure)
     3:   w := P[i]
     4:   if w <> bot then
     5:     v := w
          else
     6:     P[i] := v
     7: return P[3]
   Unrolled: 1 + 3*2 + 1 = 8 statements. *)
let decide t value =
  Eff.local (t.name ^ ".v:=val");
  let v = ref value in
  for i = 0 to 2 do
    match Shared.read t.p.(i) with
    | Some w -> Eff.local (t.name ^ ".v:=w"); v := w
    | None -> Shared.write t.p.(i) (Some !v)
  done;
  match Shared.read t.p.(2) with
  | Some d -> d
  | None -> assert false (* P[3] is stable and was written by this process if empty *)

let read t =
  match Shared.read t.p.(0) with
  | None -> None
  | Some v -> Some (decide t v)

let peek t = Shared.peek t.p.(2)
