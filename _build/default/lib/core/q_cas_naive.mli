(** The {e broken} "obvious" quantum-based C&S — kept as a machine-checked
    ablation.

    Announce, read, validate-the-announcement, then write: since the
    quantum limits each invocation to one same-priority preemption, one
    retry seems enough. It is not: a preemption landing {e between} the
    validation and the write lets the resumed process clobber a
    concurrent successful C&S with a write based on a stale read, and
    with no statement after the write there is nowhere to detect it.
    The test suite has the model checker derive a concrete
    linearizability violation from exactly this window.

    This is why the repository's real quantum-based C&S ({!Q_cas}) routes
    every mutation through a consensus object (DESIGN.md, Substitution
    2): the decision statement is simultaneously the test {e and} the
    write, so the check-to-write window does not exist. The original
    Anderson–Jain–Ott algorithms close the window with a
    boundary-detection mechanism whose full code the paper only cites;
    this module documents what goes wrong without one. *)

type 'a t

val make : string -> 'a -> 'a t

val cas : 'a t -> who:int -> expected:'a -> desired:'a -> bool
(** Linearizable only in the absence of check-to-write preemptions —
    i.e. {b not} linearizable under quantum scheduling. *)

val read : 'a t -> 'a

val peek : 'a t -> 'a
(** Harness inspection; not a statement. *)
