open Hwf_objects

let uni_factory () name =
  let obj = Uni_consensus.make name in
  fun ~pid:_ v -> Uni_consensus.decide obj v

let multi_factory ~config ~consensus_number () name =
  let obj = Multi_consensus.make ~config ~name ~consensus_number () in
  fun ~pid v -> Multi_consensus.decide obj ~pid v

let hw_factory () name =
  let obj = Cons_obj.make name in
  fun ~pid:_ v ->
    match Cons_obj.propose obj v with
    | Some d -> d
    | None -> assert false (* infinite consensus number *)

(* Counter *)

type counter = (int, [ `Incr | `Get ], int) Universal.t

let counter ~name ~n ~factory =
  Universal.make ~name ~n ~init:0
    ~apply:(fun s op ->
      match op with `Incr -> (s + 1, s + 1) | `Get -> (s, s))
    ~factory

let incr t ~pid = Universal.invoke t ~pid `Incr
let get t ~pid = Universal.invoke t ~pid `Get

(* FIFO queue: functional two-list representation. *)

type 'a queue = ('a list * 'a list, [ `Enq of 'a | `Deq ], 'a option) Universal.t

let queue_apply (front, back) op =
  match op with
  | `Enq x -> ((front, x :: back), None)
  | `Deq -> (
    match front with
    | x :: front' -> ((front', back), Some x)
    | [] -> (
      match List.rev back with
      | x :: front' -> ((front', []), Some x)
      | [] -> (([], []), None)))

let queue ~name ~n ~factory = Universal.make ~name ~n ~init:([], []) ~apply:queue_apply ~factory

let enqueue t ~pid x = ignore (Universal.invoke t ~pid (`Enq x))
let dequeue t ~pid = Universal.invoke t ~pid `Deq

(* Stack *)

type 'a stack = ('a list, [ `Push of 'a | `Pop ], 'a option) Universal.t

let stack ~name ~n ~factory =
  Universal.make ~name ~n ~init:[]
    ~apply:(fun s op ->
      match op with
      | `Push x -> (x :: s, None)
      | `Pop -> ( match s with x :: s' -> (s', Some x) | [] -> ([], None)))
    ~factory

let push t ~pid x = ignore (Universal.invoke t ~pid (`Push x))
let pop t ~pid = Universal.invoke t ~pid `Pop

(* Atomic snapshot: state is an immutable array mirror. *)

type 'a snapshot =
  ('a array, [ `Update of int * 'a | `Scan ], 'a array) Universal.t

let snapshot ~name ~n ~segments ~init ~factory =
  Universal.make ~name ~n
    ~init:(Array.make segments init)
    ~apply:(fun s op ->
      match op with
      | `Update (i, v) ->
        let s' = Array.copy s in
        s'.(i) <- v;
        (s', s')
      | `Scan -> (s, s))
    ~factory

let update t ~pid ~segment v = ignore (Universal.invoke t ~pid (`Update (segment, v)))
let scan t ~pid = Universal.invoke t ~pid `Scan

(* Register *)

type 'a register = ('a, [ `Set of 'a | `Read ], 'a) Universal.t

let register ~name ~n ~init ~factory =
  Universal.make ~name ~n ~init
    ~apply:(fun s op -> match op with `Set v -> (v, v) | `Read -> (s, s))
    ~factory

let set t ~pid v = ignore (Universal.invoke t ~pid (`Set v))
let read t ~pid = Universal.invoke t ~pid `Read
