(** Long-lived uniprocessor objects from reads and writes: the
    consensus-chain kernel (DESIGN.md, Substitution 2).

    Stands in for the constant-time quantum-based C&S / F&I / counter
    algorithms of Anderson, Jain and Ott (DISC '98) that the paper's
    Figs. 5 and 7 use as subroutines ("Q-C&S", "local-C&S", "local-F&I").
    Operation [k] on the object is decided by a read/write consensus
    object [slot.(k)] (the paper's own Fig. 3 algorithm, so the whole
    construction is reads and writes only); a per-slot state log has a
    unique writer and therefore needs no further synchronization; a
    monotone version hint keeps scans short.

    Correctness contract (validated by model checking in the test
    suite): linearizable for processes of one priority level on one
    processor under hybrid scheduling. Wait-freedom: a process can lose
    a slot only if some other same-level process executed during its
    attempt — on a uniprocessor that requires a preemption — so with a
    quantum at least twice {!statements_per_attempt_hint} an operation
    completes in at most two attempts. Reads are read-only and safe from
    any priority level (they cost O(1 + lag) statements rather than the
    single load of the original AJO read; the lag is measured by the E4
    bench).

    The object is a deterministic state machine ['s] with operations
    ['op] producing results ['r]. *)

type ('s, 'op, 'r) t

val make : name:string -> init:'s -> apply:('s -> 'op -> 's * 'r) -> ('s, 'op, 'r) t
(** [apply] must be a pure function: it is replayed by readers. *)

val invoke : ('s, 'op, 'r) t -> who:int -> 'op -> 'r
(** Applies [op] atomically and returns its result. [who] identifies the
    calling process (any int unique per process). *)

val read : ('s, 'op, 'r) t -> 's
(** Linearizable wait-free read of the current state; never contends. *)

val peek_state : ('s, 'op, 'r) t -> 's
(** Harness inspection of the current abstract state; not a statement. *)

val ops_count : ('s, 'op, 'r) t -> int
(** Harness inspection: operations linearized so far. *)

val max_attempts : ('s, 'op, 'r) t -> int
(** Harness inspection: the worst number of attempts any single [invoke]
    on this object needed — 1 in preemption-free runs, and at most
    [1 + preemptions] when used by a single priority level. *)

val statements_per_attempt_hint : int
(** A conservative constant bound on the statements of one attempt when
    the version hint is fresh; used to size quanta in experiments. *)
