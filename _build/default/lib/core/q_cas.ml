type 'a op = Cas of 'a * 'a | Store of 'a

type 'a t = ('a, 'a op, bool) Chain.t

let apply s = function
  | Cas (expected, desired) -> if s = expected then (desired, true) else (s, false)
  | Store v -> (v, true)

let make name init = Chain.make ~name ~init ~apply

let cas t ~who ~expected ~desired = Chain.invoke t ~who (Cas (expected, desired))

let read t = Chain.read t

let write t ~who v = ignore (Chain.invoke t ~who (Store v))

let peek t = Chain.peek_state t

let max_attempts t = Chain.max_attempts t
