lib/core/q_cas.mli:
