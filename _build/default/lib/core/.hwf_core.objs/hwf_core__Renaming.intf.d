lib/core/renaming.mli:
