lib/core/bounds.ml:
