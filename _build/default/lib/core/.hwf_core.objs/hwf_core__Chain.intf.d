lib/core/chain.mli:
