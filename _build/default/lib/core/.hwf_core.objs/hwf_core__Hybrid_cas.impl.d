lib/core/hybrid_cas.ml: Array Config Eff Hashtbl Hwf_sim List Printf Proc Q_cas Queue Shared Uni_consensus
