lib/core/q_cas_naive.mli:
