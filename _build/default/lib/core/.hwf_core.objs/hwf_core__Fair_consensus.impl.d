lib/core/fair_consensus.ml: Array Config Hwf_sim Multi_consensus Printf Proc Shared Uni_consensus
