lib/core/universal.ml: Array Hashtbl Hwf_sim Printf Shared Vec
