lib/core/universal.mli:
