lib/core/uni_consensus.mli:
