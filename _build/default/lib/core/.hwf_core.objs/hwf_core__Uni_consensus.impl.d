lib/core/uni_consensus.ml: Array Eff Hwf_sim Shared
