lib/core/q_fai.ml: Chain
