lib/core/q_cas_naive.ml: Hwf_sim Shared
