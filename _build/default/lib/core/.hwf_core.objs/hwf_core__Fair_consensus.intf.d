lib/core/fair_consensus.mli: Hwf_sim
