lib/core/multi_consensus.ml: Array Bounds Chain Config Cons_obj Eff Hashtbl Hwf_objects Hwf_sim List Printf Proc Q_cas Shared Uni_consensus Vec
