lib/core/q_cas.ml: Chain
