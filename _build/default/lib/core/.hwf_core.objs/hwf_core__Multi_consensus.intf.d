lib/core/multi_consensus.mli: Hwf_sim
