lib/core/wf_objects.ml: Array Cons_obj Hwf_objects List Multi_consensus Uni_consensus Universal
