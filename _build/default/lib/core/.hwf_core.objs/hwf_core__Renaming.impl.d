lib/core/renaming.ml: Hwf_sim Printf Uni_consensus Vec
