lib/core/hybrid_cas.mli: Hwf_sim
