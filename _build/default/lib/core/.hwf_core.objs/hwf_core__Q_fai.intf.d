lib/core/q_fai.mli:
