lib/core/wf_objects.mli: Hwf_sim Universal
