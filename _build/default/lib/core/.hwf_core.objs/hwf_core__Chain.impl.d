lib/core/chain.ml: Eff Hashtbl Hwf_sim Printf Shared Uni_consensus Vec
