lib/core/bounds.mli:
