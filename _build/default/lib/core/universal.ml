open Hwf_sim

type 'v factory = string -> pid:int -> 'v -> 'v

(* One list cell: the consensus deciding the k-th operation, plus a cache
   register mirroring the decision (every writer writes the same decided
   value, so the cache is race-free by value). *)
type 'v cell = { decide : pid:int -> 'v -> 'v; cache : 'v option Shared.t }

(* Private per-process view of the list, retained across invocations. *)
type ('s, 'r) cursor = {
  mutable pos : int;
  mutable state : 's;
  applied : (int * int, unit) Hashtbl.t;  (* (pid, seq) already replayed *)
  results : (int, 'r) Hashtbl.t;  (* own seq -> result *)
}

type ('s, 'op, 'r) t = {
  name : string;
  n : int;
  init : 's;
  apply : 's -> 'op -> 's * 'r;
  factory : (int * int * 'op) factory;
  announce : (int * 'op) option Shared.t array;  (* per pid: (seq, op) *)
  cells : (int * int * 'op) cell Vec.t;
  cursors : (int, ('s, 'r) cursor) Hashtbl.t;
  seqs : int array;  (* private per-process operation counters *)
}

let make ~name ~n ~init ~apply ~factory =
  {
    name;
    n;
    init;
    apply;
    factory;
    announce = Shared.array (name ^ ".announce") n (fun _ -> None);
    cells = Vec.create ();
    cursors = Hashtbl.create 8;
    seqs = Array.make n 0;
  }

let cell t k =
  while Vec.length t.cells <= k do
    let idx = Vec.length t.cells in
    let cname = Printf.sprintf "%s.cell[%d]" t.name idx in
    let decide = t.factory cname in
    Vec.push t.cells
      { decide; cache = Shared.make (cname ^ ".cache") None }
  done;
  Vec.get t.cells k

let cursor t pid =
  match Hashtbl.find_opt t.cursors pid with
  | Some c -> c
  | None ->
    let c =
      { pos = 0; state = t.init; applied = Hashtbl.create 16; results = Hashtbl.create 4 }
    in
    Hashtbl.add t.cursors pid c;
    c

(* Replay decided cells into [cur]; stops at the first cell whose cache
   is still empty. Each step costs one read statement. *)
let replay t pid cur =
  let continue_ = ref true in
  while !continue_ do
    let c = cell t cur.pos in
    match Shared.read c.cache with
    | None -> continue_ := false
    | Some (who, seq, op) ->
      let state', r = t.apply cur.state op in
      cur.state <- state';
      Hashtbl.replace cur.applied (who, seq) ();
      if who = pid then Hashtbl.replace cur.results seq r;
      cur.pos <- cur.pos + 1
  done

let invoke t ~pid op =
  let cur = cursor t pid in
  let seq = t.seqs.(pid) in
  t.seqs.(pid) <- seq + 1;
  Shared.write t.announce.(pid) (Some (seq, op));
  let rec loop () =
    replay t pid cur;
    match Hashtbl.find_opt cur.results seq with
    | Some r -> r
    | None ->
      let k = cur.pos in
      let c = cell t k in
      (* Helping: at cell k, prefer the announced pending operation of
         process (k mod n). *)
      let helpee = k mod t.n in
      let proposal =
        match Shared.read t.announce.(helpee) with
        | Some (hseq, hop) when not (Hashtbl.mem cur.applied (helpee, hseq)) ->
          (helpee, hseq, hop)
        | Some _ | None -> (pid, seq, op)
      in
      let decision = c.decide ~pid proposal in
      Shared.write c.cache (Some decision);
      loop ()
  in
  loop ()

let peek_state t =
  let rec go k s =
    if k >= Vec.length t.cells then s
    else
      match Shared.peek (Vec.get t.cells k).cache with
      | None -> s
      | Some (_, _, op) -> go (k + 1) (fst (t.apply s op))
  in
  go 0 t.init

let ops_count t =
  let rec go k =
    if k >= Vec.length t.cells then k
    else
      match Shared.peek (Vec.get t.cells k).cache with
      | None -> k
      | Some _ -> go (k + 1)
  in
  go 0
