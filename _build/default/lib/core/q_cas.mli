(** Quantum-based compare-and-swap from reads and writes ("Q-C&S").

    The subroutine used by Fig. 5 (lines 34/36/41/43) to update the
    per-priority-level head variables, and by Fig. 7 ("local-C&S") to
    update [Port] and [Lastpub]: a linearizable, wait-free C&S object
    shared by processes of {e one} priority level on one processor. See
    {!Chain} for the construction and its contract, and DESIGN.md
    (Substitution 2) for how it relates to the original constant-time
    algorithm of Anderson–Jain–Ott.

    Values are compared with structural equality. *)

type 'a t

val make : string -> 'a -> 'a t

val cas : 'a t -> who:int -> expected:'a -> desired:'a -> bool
(** Atomically: if the current value equals [expected], replace it with
    [desired] and return [true]; otherwise return [false]. *)

val read : 'a t -> 'a
(** Linearizable read; safe from any priority level. *)

val write : 'a t -> who:int -> 'a -> unit
(** Unconditional atomic store (a C&S that always succeeds), provided
    for baselines and tests. *)

val peek : 'a t -> 'a
(** Harness inspection; not a statement. *)

val max_attempts : 'a t -> int
(** Harness inspection, see {!Chain.max_attempts}. *)
