(** Fig. 3: wait-free consensus for hybrid-scheduled uniprocessors from
    reads and writes only (Theorem 1).

    The algorithm copies a value from [P[1]] to [P[2]] to [P[3]]; every
    process returns [P[3]]. It is correct for any number of processes on
    one processor, at any mix of priorities, provided the quantum ensures
    each invocation is quantum-preempted at most once; unrolled, the
    invocation is 8 statements, hence
    [Q >= Bounds.uniprocessor_consensus_quantum = 8] (Theorem 1).

    The object is long-lived in the sense that it can also be read
    (needed by Fig. 5 line 17): a read costs one statement when the
    object is undecided, and re-runs [decide] on the value found in
    [P[1]] otherwise — the paper's suggested implementation. *)

type 'a t

val make : string -> 'a t

val name : 'a t -> string

val decide : 'a t -> 'a -> 'a
(** [decide t v] proposes [v] and returns the common decision. Exactly 8
    atomic statements. Must run inside an invocation on the creating
    processor's machine. *)

val read : 'a t -> 'a option
(** [None] while no process has completed line 6 for [P[1]]; otherwise
    the decided value. *)

val peek : 'a t -> 'a option
(** Harness inspection of [P[3]] (the decision slot); not a statement. *)

val statements_per_decide : int
(** = 8, the unrolled statement count used in Theorem 1. *)
