(** Quantum-based fetch-and-increment from reads and writes ("Q-F&I",
    the paper's "local-F&I" in Fig. 7).

    Same construction and contract as {!Q_cas}; see {!Chain} and
    DESIGN.md Substitution 2. Returns the pre-increment value, matching
    Fig. 7's use where [port := local-F&I(&Port[i,v])] claims the value
    read and leaves the counter at the next free port. *)

type t

val make : string -> int -> t

val fetch_and_increment : t -> who:int -> int
(** Atomically increments and returns the {e pre}-increment value. *)

val read : t -> int

val peek : t -> int
(** Harness inspection; not a statement. *)
