(** Wait-free linearizable data structures via the universal construction.

    These are the deliverables of universality (Theorem 4 applied through
    {!Universal}): counters, queues, stacks and registers shared by any
    number of processes, parameterized by the consensus factory — Fig. 3
    consensus on a uniprocessor, Fig. 7 consensus on [P] processors from
    [P]-consensus objects, or hardware consensus as a baseline. *)

val uni_factory : unit -> string -> pid:int -> 'v -> 'v
(** Consensus cells from the Fig. 3 read/write algorithm — correct on a
    hybrid-scheduled uniprocessor with [Q >= 8·(cells touched per op)]
    headroom. *)

val multi_factory :
  config:Hwf_sim.Config.t ->
  consensus_number:int ->
  unit ->
  string ->
  pid:int ->
  'v ->
  'v
(** Consensus cells from the Fig. 7 algorithm over [C]-consensus
    objects. *)

val hw_factory : unit -> string -> pid:int -> 'v -> 'v
(** Consensus cells from hardware consensus objects of infinite consensus
    number (baseline / oracle). *)

(** {1 Counter} *)

type counter

val counter :
  name:string -> n:int -> factory:(int * int * [ `Incr | `Get ]) Universal.factory -> counter

val incr : counter -> pid:int -> int
(** Increments; returns the post-increment value. *)

val get : counter -> pid:int -> int

(** {1 FIFO queue} *)

type 'a queue

val queue :
  name:string ->
  n:int ->
  factory:(int * int * [ `Enq of 'a | `Deq ]) Universal.factory ->
  'a queue

val enqueue : 'a queue -> pid:int -> 'a -> unit
val dequeue : 'a queue -> pid:int -> 'a option

(** {1 LIFO stack} *)

type 'a stack

val stack :
  name:string ->
  n:int ->
  factory:(int * int * [ `Push of 'a | `Pop ]) Universal.factory ->
  'a stack

val push : 'a stack -> pid:int -> 'a -> unit
val pop : 'a stack -> pid:int -> 'a option

(** {1 Atomic snapshot} *)

type 'a snapshot

val snapshot :
  name:string ->
  n:int ->
  segments:int ->
  init:'a ->
  factory:(int * int * [ `Update of int * 'a | `Scan ]) Universal.factory ->
  'a snapshot
(** A single-writer-per-segment atomic snapshot object: [segments] cells,
    [update] one, [scan] all atomically — the classic primitive, here
    simply as another sequential object under the universal
    construction. *)

val update : 'a snapshot -> pid:int -> segment:int -> 'a -> unit
val scan : 'a snapshot -> pid:int -> 'a array

(** {1 Read/write register} *)

type 'a register

val register :
  name:string ->
  n:int ->
  init:'a ->
  factory:(int * int * [ `Set of 'a | `Read ]) Universal.factory ->
  'a register

val set : 'a register -> pid:int -> 'a -> unit
val read : 'a register -> pid:int -> 'a
