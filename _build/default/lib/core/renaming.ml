open Hwf_sim

type t = { name : string; slots : int Uni_consensus.t Vec.t }

let make name = { name; slots = Vec.create () }

let slot t i =
  while Vec.length t.slots <= i do
    Vec.push t.slots
      (Uni_consensus.make (Printf.sprintf "%s.slot[%d]" t.name (Vec.length t.slots + 1)))
  done;
  Vec.get t.slots i

let acquire t ~pid =
  let rec claim i =
    if Uni_consensus.decide (slot t i) pid = pid then i + 1 else claim (i + 1)
  in
  claim 0

let names_assigned t =
  let rec count i =
    if i >= Vec.length t.slots then i
    else
      match Uni_consensus.peek (Vec.get t.slots i) with
      | Some _ -> count (i + 1)
      | None -> i
  in
  count 0
