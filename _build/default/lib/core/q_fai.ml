type t = (int, unit, int) Chain.t

let make name init = Chain.make ~name ~init ~apply:(fun s () -> (s + 1, s))

let fetch_and_increment t ~who = Chain.invoke t ~who ()

let read t = Chain.read t

let peek t = Chain.peek_state t
