(** One-shot wait-free renaming for hybrid-scheduled uniprocessors, from
    reads and writes only.

    Sec. 5 of the paper notes that its multiprocessor consensus extends
    to dynamic priorities given a renaming object, and that reads/writes
    being universal on a hybrid uniprocessor makes such an object
    implementable. This is the direct construction: name slot [i] is a
    Fig. 3 consensus object deciding its owner; a process claims slots in
    increasing order until it wins one. A process loses a slot only if
    another process's claim interleaves with its own — on a uniprocessor
    that requires a preemption — so with the Theorem 1 quantum each
    acquisition costs O(1 + preemptions suffered) slots: wait-free.

    Names are dense: the k-th process to linearize its claim gets a name
    at most k, so N processes always fit in the name space [1..N]. *)

type t

val make : string -> t

val acquire : t -> pid:int -> int
(** Returns this process's name, [>= 1]. At most one call per process
    (one-shot renaming; repeated calls would consume fresh names). *)

val names_assigned : t -> int
(** Harness inspection: slots decided so far; not a statement. *)
