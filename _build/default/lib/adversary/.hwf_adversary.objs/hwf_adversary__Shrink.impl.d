lib/adversary/shrink.ml: List Schedule
