lib/adversary/shrink.mli: Explore Schedule
