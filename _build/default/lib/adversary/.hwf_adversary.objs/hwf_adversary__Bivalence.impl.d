lib/adversary/bivalence.ml: Dump Explore Fmt List
