lib/adversary/stagger.mli: Hwf_sim
