lib/adversary/schedule.ml: Engine Explore Fmt Fun Hwf_sim In_channel List Policy Printf Proc String Wellformed
