lib/adversary/crash.mli: Hwf_sim
