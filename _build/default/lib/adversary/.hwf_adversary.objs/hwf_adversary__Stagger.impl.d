lib/adversary/stagger.ml: Array Hashtbl Hwf_sim List Op Option Policy Printf Random String
