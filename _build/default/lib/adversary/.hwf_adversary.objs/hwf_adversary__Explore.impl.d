lib/adversary/explore.ml: Array Config Engine Fmt Hwf_sim List Policy Proc Trace Vec Wellformed
