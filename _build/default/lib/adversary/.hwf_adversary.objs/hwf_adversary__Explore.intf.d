lib/adversary/explore.mli: Fmt Hwf_sim
