lib/adversary/bivalence.mli: Explore Fmt
