lib/adversary/crash.ml: Array Engine Hwf_sim List Policy
