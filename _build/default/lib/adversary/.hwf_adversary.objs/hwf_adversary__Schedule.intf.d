lib/adversary/schedule.mli: Explore Hwf_sim
