(** Schedules as data: serialize, replay and re-judge the decision
    sequences produced by {!Explore}, so counterexamples can be saved,
    shared and re-examined.

    A schedule is the pid sequence of scheduling decisions. Replaying
    follows it with a strict scripted policy backed by a deterministic
    fallback ({!Hwf_sim.Policy.first}) for decisions the script cannot
    take (after shrinking, some entries may no longer be runnable at
    their turn — they are skipped). *)

type t = Hwf_sim.Proc.pid list

val to_string : t -> string
(** One decision per token, 1-based pids: ["1 2 2 1"]. *)

val of_string : string -> (t, string) result

val save : path:string -> t -> unit

val load : path:string -> (t, string) result

val replay :
  ?step_limit:int ->
  Explore.scenario ->
  t ->
  Hwf_sim.Engine.result * Explore.instance
(** Runs a fresh instance of the scenario under the schedule. *)

val verdict : ?step_limit:int -> Explore.scenario -> t -> (unit, string) result
(** Replays and judges: well-formedness, then the scenario's own check.
    A step-limit stop is an error. *)
