type probe = {
  runs : int;
  decisions : int list;
  horizon : int;
  deepest_run : int;
}

(* A trie over decision paths; each node stores the set (as a sorted
   list) of decision values reachable below it. *)
type node = { mutable values : int list; mutable children : (int * node) list }

let new_node () = { values = []; children = [] }

let add_value node v = if not (List.mem v node.values) then node.values <- v :: node.values

let rec insert node path v =
  add_value node v;
  match path with
  | [] -> ()
  | pid :: rest ->
    let child =
      match List.assoc_opt pid node.children with
      | Some c -> c
      | None ->
        let c = new_node () in
        node.children <- (pid, c) :: node.children;
        c
    in
    insert child rest v

(* Depth of the deepest node with >= 2 distinct reachable decisions. *)
let rec horizon_of node depth =
  if List.length node.values < 2 then depth - 1
  else
    List.fold_left
      (fun acc (_, c) -> max acc (horizon_of c (depth + 1)))
      depth node.children

let probe ?preemption_bound ?(max_runs = 20_000) ?(step_limit = 100_000) ~scenario
    ~decision () =
  let root = new_node () in
  let deepest = ref 0 in
  let runs =
    Explore.iter_schedules ?preemption_bound ~max_runs ~step_limit scenario
      ~f:(fun ~pids _result ->
        deepest := max !deepest (List.length pids);
        (match decision () with
        | Some v -> insert root pids v
        | None -> ());
        `Continue)
  in
  {
    runs;
    decisions = List.sort_uniq compare root.values;
    horizon = (if List.length root.values < 2 then 0 else max 0 (horizon_of root 0));
    deepest_run = !deepest;
  }

let pp ppf p =
  Fmt.pf ppf "runs=%d decisions=%a horizon=%d deepest=%d" p.runs
    Fmt.(Dump.list int)
    p.decisions p.horizon p.deepest_run
