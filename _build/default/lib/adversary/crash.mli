(** Halting-failure injection.

    The paper's schedulers may "choose to never allocate a quantum to
    some ready process — such behavior corresponds to a halting failure
    in an asynchronous system" (Sec. 2). Wait-freedom is exactly
    robustness against this: every {e scheduled} process finishes in a
    bounded number of its own statements no matter how many others halt
    mid-invocation.

    [wrap] turns any policy into one that permanently stops scheduling
    each victim once it has executed its crash-point number of own
    statements. The victim stays parked mid-invocation (still ready, so
    Axiom 1 keeps blocking lower priorities on its processor — choose
    victims accordingly). If only victims remain runnable the policy
    halts the run, which surfaces as [Policy_stopped]. *)

val wrap :
  victims:(Hwf_sim.Proc.pid * int) list ->
  Hwf_sim.Policy.t ->
  Hwf_sim.Policy.t
(** [wrap ~victims policy]: [(pid, after)] crashes [pid] at the first
    legal parking point once it has executed [after] own statements — a
    process holding an active quantum guarantee keeps running until the
    guarantee drains, because parking it there would forbid its
    same-level peers from running at all (the model's protected windows
    belong to the scheduler, not the process). Stateless (reads progress
    from the view), so safe to reuse across runs. *)

val survivors_finished : Hwf_sim.Engine.result -> victims:Hwf_sim.Proc.pid list -> bool
(** All non-victim processes completed. *)
