(** Adversarial schedules in the shape of the Theorem 3 lower bound
    (Sec. 4.1, Appendix A, Figs. 6 and 10).

    The valency argument builds histories in which processes are
    preempted immediately after invoking the shared [C]-consensus object
    [O], so that [Q + 2(P - Q) = 2P - Q] {e distinct} processes invoke
    [O] and exhaust its consensus number whenever [C <= 2P - Q]. The
    policies here reproduce that pressure against a concrete algorithm:

    - {!preempt_after_rmw} switches away from a process the moment it
      completes a read-modify-write on a matching shared object (each
      process is victimized at most [victim_ops] times); between such
      preemptions it defers to a fallback policy. Under the engine's
      rules the switch is only taken when legal, so all produced
      histories remain well-formed — the point of Theorem 3 is precisely
      that small quanta make these histories legal.

    Use together with {!Explore.random_runs} / a fallback seed sweep to
    search for agreement violations below the Table 1 threshold
    (experiment E6). *)

val preempt_after_rmw :
  ?victim_ops:int ->
  var_prefix:string ->
  fallback:Hwf_sim.Policy.t ->
  unit ->
  Hwf_sim.Policy.t
(** [preempt_after_rmw ~var_prefix ~fallback ()] runs [fallback], except
    that when the process just executed an [Rmw] on a variable whose name
    starts with [var_prefix], the policy switches to a different runnable
    process if it legally can (round-robin over victims). [victim_ops]
    (default [1]) bounds how many times each process is victimized, so
    runs terminate. Stateful: build a fresh policy per run. *)

val exhaustion_pressure :
  seed:int -> var_prefix:string -> unit -> Hwf_sim.Policy.t
(** Convenience: {!preempt_after_rmw} over a seeded random fallback. *)

val delayed_wake : seed:int -> wake_every:int -> unit -> Hwf_sim.Policy.t
(** Runs already-started processes and wakes a thinking one only every
    [wake_every] statements (or when nothing else is runnable) — the
    "eligibility" control of the lower-bound model: freshly woken
    higher-priority processes land mid-invocation of lower ones, which is
    what produces access failures (E7) and the Fig. 6 history shape. *)

val max_interleave : unit -> Hwf_sim.Policy.t
(** The staggering schedule of the lower-bound proof: always run the
    legal process with the fewest own statements, switching as often as
    Axioms 1–2 allow. With [M] fresh processes per level, the first [M]
    preemptions are free (a process's first preemption may occur at any
    point), after which switches occur every [Q] statements — the
    densest legal interleaving, which is what defeats read/write
    constructions once [Q] drops below the Table 1 thresholds. *)
