(** Bivalence probing: a machine-checked rendering of the valency
    argument (Theorem 3, Appendix A, Figs. 4/6/10).

    A schedule prefix is {e bivalent} if two different decision values
    are reachable by extending it. The paper's lower bound constructs an
    infinite sequence of bivalent states whenever [Q <= 2P - C]; a
    wait-free-correct algorithm, by contrast, runs out of bivalence
    within its (bounded) schedule length.

    The prober enumerates schedules of a consensus scenario (with a
    preemption bound, like {!Explore}), records the decision value of
    every complete run together with its decision path, and reports the
    {e bivalence horizon}: the length of the longest prefix below which
    two distinct decisions are still reachable. Below the Table 1
    threshold the horizon grows with the probe bounds (evidence of the
    paper's infinite bivalent history); above it the horizon is small
    and stable (experiment E6b). *)

type probe = {
  runs : int;
  decisions : int list;  (** Distinct decision values observed. *)
  horizon : int;  (** Longest bivalent prefix length; 0 if univalent. *)
  deepest_run : int;  (** Longest schedule observed, for scale. *)
}

val probe :
  ?preemption_bound:int ->
  ?max_runs:int ->
  ?step_limit:int ->
  scenario:Explore.scenario ->
  decision:(unit -> int option) ->
  unit ->
  probe
(** [decision ()] must report the decided value of the most recent run
    (the scenario's instances are expected to stash it; see the E6 bench
    for the pattern: [make] stores the latest instance's outputs in a
    cell that [decision] reads). Runs whose decision is [None]
    (non-termination within the step limit, or disagreement sentinel) are
    counted but excluded from valency classification. *)

val pp : probe Fmt.t
