open Hwf_sim

type t = (int * int) list

let uniform ~processors ~per_processor =
  List.concat_map
    (fun cpu -> List.init per_processor (fun _ -> (cpu, 1)))
    (List.init processors Fun.id)

let distinct_priorities ~processors ~per_processor =
  List.concat_map
    (fun cpu -> List.init per_processor (fun k -> (cpu, k + 1)))
    (List.init processors Fun.id)

let banded ~processors ~levels ~per_level =
  List.concat_map
    (fun cpu ->
      List.concat_map
        (fun lvl -> List.init per_level (fun _ -> (cpu, lvl + 1)))
        (List.init levels Fun.id))
    (List.init processors Fun.id)

let random ~seed ~processors ~levels ~n =
  let st = Random.State.make [| seed; 0x1a40 |] in
  List.init n (fun _ ->
      (Random.State.int st processors, 1 + Random.State.int st levels))

let levels t = List.fold_left (fun acc (_, p) -> max acc p) 1 t
let processors t = List.fold_left (fun acc (c, _) -> max acc (c + 1)) 1 t

let to_config ?axiom2 ~quantum t =
  let procs =
    List.mapi (fun pid (cpu, pri) -> Proc.make ~pid ~processor:cpu ~priority:pri ()) t
  in
  Config.make ?axiom2 ~quantum ~processors:(processors t) ~levels:(levels t) procs

let pp ppf t =
  Fmt.pf ppf "@[%a@]"
    Fmt.(list ~sep:sp (pair ~sep:(any ":") int int))
    t
