(** Process-placement generators.

    A layout is the [(processor, priority)] assignment for pids
    [0 .. N-1]; the paper's machine shapes are produced from a handful of
    parametric families used throughout the experiments. *)

type t = (int * int) list

val uniform : processors:int -> per_processor:int -> t
(** All processes at priority 1, [per_processor] on each processor — the
    pure quantum-scheduled shape. *)

val distinct_priorities : processors:int -> per_processor:int -> t
(** Each process on a processor gets a distinct priority — the pure
    priority-scheduled shape (the quantum machinery never engages). *)

val banded : processors:int -> levels:int -> per_level:int -> t
(** [per_level] processes at each of [levels] priorities on every
    processor — the general hybrid shape (QNX-style bands). *)

val random : seed:int -> processors:int -> levels:int -> n:int -> t
(** Uniformly random placement, deterministic per seed. *)

val to_config :
  ?axiom2:bool -> quantum:int -> t -> Hwf_sim.Config.t
(** Builds the configuration; [levels] is inferred as the maximum
    priority present and [processors] as the maximum processor + 1. *)

val levels : t -> int
val processors : t -> int
val pp : t Fmt.t
