lib/workload/layout.ml: Config Fmt Fun Hwf_sim List Proc Random
