lib/workload/opgen.ml: List Random Scenarios
