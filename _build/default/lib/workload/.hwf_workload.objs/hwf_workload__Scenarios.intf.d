lib/workload/scenarios.mli: Explore Fmt Hwf_adversary Hwf_sim Layout
