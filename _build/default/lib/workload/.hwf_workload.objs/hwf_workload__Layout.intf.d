lib/workload/layout.mli: Fmt Hwf_sim
