lib/workload/opgen.mli: Scenarios
