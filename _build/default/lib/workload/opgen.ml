let pct st p = Random.State.int st 100 < p

let cas_mix ~seed ~n ~ops_per ~read_pct ~contended_pct =
  let st = Random.State.make [| seed; 0x0401 |] in
  List.init n (fun pid ->
      List.init ops_per (fun k ->
          if pct st read_pct then Scenarios.Rd
          else if pct st contended_pct then
            (* aim at a value someone plausibly installed *)
            let victim = Random.State.int st n in
            Scenarios.Cas ((victim * 1000) + Random.State.int st (k + 1), (pid * 1000) + k + 1)
          else if k = 0 then Scenarios.Cas (0, (pid * 1000) + 1)
          else Scenarios.Cas ((pid * 1000) + k, (pid * 1000) + k + 1)))

let queue_mix ~seed ~n ~ops_per ~enq_pct =
  let st = Random.State.make [| seed; 0x0402 |] in
  List.init n (fun pid ->
      List.init ops_per (fun k ->
          if pct st enq_pct then `Enq ((pid * 10_000) + k) else `Deq))

let counter_mix ~seed ~n ~ops_per ~read_pct =
  let st = Random.State.make [| seed; 0x0403 |] in
  List.init n (fun _ -> List.init ops_per (fun _ -> if pct st read_pct then `Get else `Incr))
