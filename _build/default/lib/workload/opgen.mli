(** Parametric operation-mix generators.

    Deterministic per seed. Percentages are integers in [0..100]; the
    generators are used by the E4/E10 benches and the stress tests to
    produce workloads with controlled read ratios and contention. *)

val cas_mix :
  seed:int ->
  n:int ->
  ops_per:int ->
  read_pct:int ->
  contended_pct:int ->
  Scenarios.cas_op list list
(** C&S/read scripts for [n] processes. A contended C&S guesses a value
    another process may have installed (creating success/failure races);
    an uncontended one targets a process-private value progression. *)

val queue_mix :
  seed:int -> n:int -> ops_per:int -> enq_pct:int -> [ `Enq of int | `Deq ] list list
(** Enqueue/dequeue scripts; enqueued values are unique per (pid, index)
    so FIFO violations are attributable. *)

val counter_mix :
  seed:int -> n:int -> ops_per:int -> read_pct:int -> [ `Incr | `Get ] list list
