(* E9 — polynomial vs exponential complexity (Sec. 1 / Sec. 3.2).
   The paper's Fig. 7 uses polynomially many levels, in contrast with
   the exponential multiprocessor algorithm of Ramamurthy et al. [7].
   The original exponential algorithm is not published in this paper, so
   the baseline is a deliberately exponential-level instantiation of the
   same machinery (DESIGN.md, Substitution 3): same code, M * 2^P levels. *)

open Hwf_sim
open Hwf_core
open Hwf_workload

let measure ?levels_override ~p ~m () =
  let layout = Layout.uniform ~processors:p ~per_processor:m in
  let config = Layout.to_config ~quantum:1_000_000 layout in
  let n = List.length layout in
  let obj =
    Multi_consensus.make ?levels_override ~config ~name:"mc" ~consensus_number:p ()
  in
  let outputs = Array.make n None in
  let programs =
    Array.init n (fun pid () ->
        Eff.invocation "decide" (fun () ->
            outputs.(pid) <- Some (Multi_consensus.decide obj ~pid (100 + pid))))
  in
  let r = Engine.run ~step_limit:60_000_000 ~config ~policy:(Policy.round_robin ()) programs in
  let agreed =
    match Array.to_list outputs |> List.filter_map Fun.id with
    | v :: rest -> List.for_all (( = ) v) rest
    | [] -> false
  in
  (Multi_consensus.levels obj, Array.fold_left max 0 r.own_steps, agreed)

let run ~quick =
  Tbl.section "E9: polynomial levels (Fig. 7) vs exponential baseline";
  let m = 2 in
  let ps = if quick then [ 1; 2; 3 ] else [ 1; 2; 3; 4 ] in
  let rows =
    List.map
      (fun p ->
        let l_poly, steps_poly, ok_poly = measure ~p ~m () in
        let l_expo = Bounds.exponential_baseline_levels ~m ~p in
        let _, steps_expo, ok_expo =
          measure ~levels_override:(max l_expo l_poly) ~p ~m ()
        in
        [
          string_of_int p;
          string_of_int l_poly;
          string_of_int steps_poly;
          (if ok_poly then "yes" else "NO");
          string_of_int (max l_expo l_poly);
          string_of_int steps_expo;
          (if ok_expo then "yes" else "NO");
        ])
      ps
  in
  Tbl.print
    ~title:"per-process statements, polynomial L vs exponential-level baseline (M=2, C=P)"
    ~header:
      [
        "P"; "L (paper)"; "statements (paper)"; "agree";
        "L (exponential)"; "statements (exponential)"; "agree";
      ]
    rows;
  Tbl.note
    "both variants are correct; the exponential-level variant pays\n\
     exponentially more statements as P grows, which is the complexity\n\
     contrast the paper draws against [7]."
