(* E3 — Theorem 1 (Fig. 3): read/write consensus on a hybrid
   uniprocessor is correct iff the quantum is large enough. *)

open Hwf_adversary
open Hwf_workload

let fig3 ~quantum ~pris =
  Scenarios.consensus ~name:"fig3" ~impl:Scenarios.Fig3 ~quantum
    ~layout:(List.map (fun p -> (0, p)) pris)

let verdict_row ~label ~pris ~quantum ~pb ~max_runs =
  let b = fig3 ~quantum ~pris in
  let o =
    match pb with
    | None -> Explore.explore ~max_runs b.scenario
    | Some preemption_bound -> Explore.explore ~preemption_bound ~max_runs b.scenario
  in
  [
    label;
    string_of_int quantum;
    string_of_int o.runs;
    (if o.exhaustive then "yes" else "no");
    (match o.counterexample with None -> "agreement holds" | Some c -> c.message);
  ]

let run ~quick =
  Tbl.section "E3: Theorem 1 — Fig. 3 uniprocessor consensus";
  let max_runs = if quick then 300_000 else 2_000_000 in
  let rows =
    [
      verdict_row ~label:"2 procs, equal pri" ~pris:[ 1; 1 ] ~quantum:8 ~pb:None ~max_runs;
      verdict_row ~label:"2 procs, pri 1/2" ~pris:[ 1; 2 ] ~quantum:8 ~pb:None ~max_runs;
      verdict_row ~label:"3 procs, equal pri" ~pris:[ 1; 1; 1 ] ~quantum:8 ~pb:(Some 4)
        ~max_runs;
      verdict_row ~label:"3 procs, pri 1/2/3" ~pris:[ 1; 2; 3 ] ~quantum:8 ~pb:(Some 4)
        ~max_runs;
      verdict_row ~label:"2 procs, equal pri" ~pris:[ 1; 1 ] ~quantum:4 ~pb:None ~max_runs;
      verdict_row ~label:"2 procs, equal pri" ~pris:[ 1; 1 ] ~quantum:2 ~pb:None ~max_runs;
      verdict_row ~label:"2 procs, equal pri" ~pris:[ 1; 1 ] ~quantum:1 ~pb:None ~max_runs;
    ]
  in
  Tbl.print ~title:"model-checked verdicts (schedule exploration)"
    ~header:[ "configuration"; "Q"; "schedules"; "exhaustive"; "verdict" ]
    rows;
  (* Show one violating interleaving, Fig. 4 style. *)
  let b = fig3 ~quantum:1 ~pris:[ 1; 1 ] in
  (match (Explore.explore b.scenario).counterexample with
  | Some c ->
    Printf.printf "\nsample violating schedule at Q=1 (the Fig. 4 situation):\n%s"
      (Hwf_sim.Render.lanes c.trace)
  | None -> Tbl.note "unexpected: no counterexample found at Q=1");
  Tbl.note
    "Theorem 1 claims correctness at Q >= 8 = the unrolled statement count\n\
     of decide(); every decide() costs exactly 8 own statements (O(1))."
