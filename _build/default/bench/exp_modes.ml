(* E12 — hybrid algorithms are correct in pure-priority and pure-quantum
   systems (Sec. 1 / Sec. 5): re-run the main algorithms unchanged under
   both degenerate scheduler shapes. *)

open Hwf_adversary
open Hwf_workload

let verdict o =
  match o.Explore.counterexample with None -> "correct" | Some c -> c.message

let run ~quick =
  Tbl.section "E12: hybrid algorithms under pure-priority / pure-quantum scheduling";
  let runs = if quick then 30 else 200 in
  let fig3 pris =
    let b =
      Scenarios.consensus ~name:"f3" ~impl:Scenarios.Fig3 ~quantum:8
        ~layout:(List.map (fun p -> (0, p)) pris)
    in
    verdict (Explore.random_runs ~runs ~seed:1 b.scenario)
  in
  let fig5 pris =
    let s =
      Scenarios.hybrid_cas ~name:"f5" ~quantum:600
        ~layout:(List.map (fun p -> (0, p)) pris)
        ~script:(Scenarios.random_script ~seed:5 ~n:(List.length pris) ~ops_per:2)
    in
    verdict (Explore.random_runs ~runs ~step_limit:600_000 ~seed:2 s)
  in
  let fig7 layout =
    let b =
      Scenarios.consensus ~name:"f7"
        ~impl:(Scenarios.Fig7 { consensus_number = 2 })
        ~quantum:4000 ~layout
    in
    verdict (Explore.random_runs ~runs:(runs / 3) ~step_limit:8_000_000 ~seed:3 b.scenario)
  in
  let rows =
    [
      [ "Fig 3 consensus"; "pure quantum"; fig3 [ 1; 1; 1 ] ];
      [ "Fig 3 consensus"; "pure priority"; fig3 [ 1; 2; 3 ] ];
      [ "Fig 3 consensus"; "hybrid"; fig3 [ 1; 1; 2 ] ];
      [ "Fig 5 C&S"; "pure quantum"; fig5 [ 1; 1; 1 ] ];
      [ "Fig 5 C&S"; "pure priority"; fig5 [ 1; 2; 3 ] ];
      [ "Fig 5 C&S"; "hybrid"; fig5 [ 1; 1; 2 ] ];
      [
        "Fig 7 consensus"; "pure quantum";
        fig7 (Layout.uniform ~processors:2 ~per_processor:2);
      ];
      [
        "Fig 7 consensus"; "pure priority";
        fig7 (Layout.distinct_priorities ~processors:2 ~per_processor:2);
      ];
      [
        "Fig 7 consensus"; "hybrid";
        fig7 (Layout.banded ~processors:2 ~levels:2 ~per_level:1);
      ];
    ]
  in
  Tbl.print ~title:"one code path, three scheduler shapes"
    ~header:[ "algorithm"; "scheduling"; "verdict" ]
    rows
