(* E10 — universality in practice: wait-free linearizable objects for
   N >> P processes from P-consensus base objects, via Herlihy's
   construction over Fig. 7 consensus. *)

open Hwf_adversary
open Hwf_workload

let run ~quick =
  Tbl.section "E10: universal construction over Fig. 7 consensus";
  let runs = if quick then 10 else 60 in
  let rows =
    List.map
      (fun (p, n_extra, ops_per) ->
        let layout =
          Layout.uniform ~processors:p ~per_processor:((n_extra + (2 * p) - 1) / p + 1)
        in
        let n = List.length layout in
        let s =
          Scenarios.universal_queue ~name:"uq" ~quantum:6000 ~consensus_number:p
            ~layout ~ops_per
        in
        let o = Explore.random_runs ~runs ~step_limit:40_000_000 ~seed:(p * 7) s in
        [
          string_of_int p;
          string_of_int p;
          string_of_int n;
          string_of_int (n * ops_per * 2);
          string_of_int o.runs;
          (match o.counterexample with
          | None -> "linearizable FIFO"
          | Some c -> c.message);
        ])
      [ (2, 4, 1); (2, 6, 1); (3, 6, 1) ]
  in
  Tbl.print
    ~title:"wait-free FIFO queue for N processes on P processors from C=P objects"
    ~header:[ "P"; "C"; "N"; "ops"; "runs"; "verdict" ]
    rows;
  (* counters over Fig. 3 cells on a hybrid uniprocessor *)
  let s = Scenarios.universal_counter_uni ~name:"uc" ~quantum:3000 ~pris:[ 1; 1; 2; 3 ] in
  let o = Explore.random_runs ~runs:(runs * 2) ~step_limit:5_000_000 ~seed:99 s in
  Tbl.note
    "uniprocessor counter over Fig. 3 consensus (4 procs, 3 levels): %s after %d runs."
    (match o.counterexample with None -> "all increments distinct 1..N" | Some c -> c.message)
    o.runs
