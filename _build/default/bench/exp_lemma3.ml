(* E7 — Lemmas 2, 3, B.1, B.2: access-failure accounting. An access
   failure at level l happens when the process(es) that claimed
   processor i's port(s) for l were preempted before publishing, and is
   observable at quiescence as a claimed-but-unpublished level (such a
   process returned early through the Outval[i,L] check). Priority
   preemption is what parks claimants, so the layouts here are banded.
   We compare the worst observed AF against the closed-form Lemma 2+3
   bound and report deciding levels. *)

open Hwf_core
open Hwf_workload

let run ~quick =
  Tbl.section "E7: Lemmas 2/3 — access failures and deciding levels";
  let seeds = List.init (if quick then 12 else 60) Fun.id in
  (* (P, K, levels, per_level) *)
  let grid = [ (2, 0, 2, 1); (2, 0, 2, 2); (2, 2, 2, 1); (3, 0, 2, 1); (2, 0, 3, 1) ] in
  let rows =
    List.map
      (fun (p, k, levels, per_level) ->
        let consensus_number = p + k in
        let layout = Layout.banded ~processors:p ~levels ~per_level in
        let m = levels * per_level in
        let l = Bounds.levels ~m ~p ~k in
        let same_bound = Bounds.af_same_bound ~m ~p ~k ~l in
        let diff_bound = Bounds.af_diff_bound ~m in
        let worst_same = ref 0 and worst_diff = ref 0 in
        let worst_deciding = ref 0 and missing = ref 0 in
        let af_runs = ref 0 and total = ref 0 in
        List.iter
          (fun policy ->
            let s =
              Scenarios.run_multi ~step_limit:10_000_000 ~quantum:4096
                ~consensus_number ~layout ~policy:(policy ()) ()
            in
            incr total;
            if s.access_failures <> [] then incr af_runs;
            worst_same := max !worst_same (List.length s.af_same);
            worst_diff := max !worst_diff (List.length s.af_diff);
            match s.deciding_level with
            | Some d -> worst_deciding := max !worst_deciding d
            | None -> incr missing)
          (Scenarios.adversarial_policies ~seeds ~var_prefix:"mc.Cons");
        [
          string_of_int p; string_of_int k; string_of_int m; string_of_int l;
          Printf.sprintf "%d/%d" !af_runs !total;
          Printf.sprintf "%d <= %d" !worst_same same_bound;
          Printf.sprintf "%d <= %d" !worst_diff diff_bound;
          string_of_int !worst_deciding;
          string_of_int !missing;
        ])
      grid
  in
  Tbl.print
    ~title:"access failures under the adversary battery (banded priorities, Q=4096)"
    ~header:
      [
        "P"; "K"; "M"; "L"; "runs with AF"; "AF_same vs Lemma 3";
        "AF_diff vs Lemma 2"; "worst deciding level"; "runs w/o deciding level";
      ]
    rows;
  Tbl.note
    "every observed AF count sits within the closed-form bound, and a\n\
     deciding level always exists (Lemma 3's guarantee given the Fig. 7\n\
     level count); the worst deciding level stays well inside L."
