(* E4 — Theorem 2 (Fig. 5): hybrid uniprocessor C&S + Read in O(V) time
   from reads and writes. Reports the measured per-operation statement
   cost as V grows (the O(V) series), linearizability verdicts, and the
   pure-priority / pure-quantum specializations (the Sec. 3.2 claim that
   the algorithm's time matches the earlier specialized ones). *)

open Hwf_sim
open Hwf_core
open Hwf_adversary
open Hwf_workload

(* Statement cost of a low-priority CAS when the list head lives at
   level V (worst-case scan). *)
let scan_cost v =
  let pris = [ 1; v ] in
  let config = Layout.to_config ~quantum:600 (List.map (fun p -> (0, p)) pris) in
  let obj = Hybrid_cas.make ~config ~name:"o" ~init:0 in
  let cost = ref 0 in
  let bodies =
    [|
      (fun () ->
        Eff.invocation "low" (fun () ->
            let t0 = Eff.now () in
            ignore (Hybrid_cas.cas obj ~pid:0 ~expected:1 ~desired:2);
            cost := Eff.now () - t0));
      (fun () ->
        Eff.invocation "high" (fun () ->
            ignore (Hybrid_cas.cas obj ~pid:1 ~expected:0 ~desired:1)));
    |]
  in
  let policy = Policy.highest_pid in
  ignore (Engine.run ~config ~policy bodies);
  !cost

let lin_verdict ~label ~pris ~script ~runs ~seed =
  let s =
    Scenarios.hybrid_cas ~name:"h" ~quantum:600
      ~layout:(List.map (fun p -> (0, p)) pris)
      ~script
  in
  let o = Explore.random_runs ~runs ~step_limit:600_000 ~seed s in
  [
    label;
    string_of_int (List.length pris);
    string_of_int o.runs;
    (match o.counterexample with None -> "linearizable" | Some c -> c.message);
  ]

let run ~quick =
  Tbl.section "E4: Theorem 2 — Fig. 5 hybrid C&S in O(V)";
  (* O(V) series: the worst case needs the head to live at a foreign high
     level, which requires V >= 2. *)
  let vs = [ 2; 3; 4; 5; 6; 7; 8 ] in
  let costs = List.map (fun v -> (v, scan_cost v)) vs in
  Tbl.print ~title:"statements per C&S vs number of priority levels V"
    ~header:[ "V"; "statements (worst-case scan)" ]
    (List.map (fun (v, c) -> [ string_of_int v; string_of_int c ]) costs);
  (match (costs, List.rev costs) with
  | (v_lo, c_lo) :: _, (v_hi, c_hi) :: _ ->
    let slope = (c_hi - c_lo) / max 1 (v_hi - v_lo) in
    Tbl.note "series is linear: %d statements per additional level." slope
  | _ -> ());
  (* Linearizability *)
  let runs = if quick then 40 else 400 in
  let rows =
    [
      lin_verdict ~label:"hybrid (2 levels)" ~pris:[ 1; 1; 2 ]
        ~script:(Scenarios.random_script ~seed:1 ~n:3 ~ops_per:2)
        ~runs ~seed:11;
      lin_verdict ~label:"hybrid (3 levels)" ~pris:[ 1; 2; 3 ]
        ~script:(Scenarios.random_script ~seed:2 ~n:3 ~ops_per:2)
        ~runs ~seed:12;
      lin_verdict ~label:"pure quantum (V=1)" ~pris:[ 1; 1; 1 ]
        ~script:(Scenarios.random_script ~seed:3 ~n:3 ~ops_per:2)
        ~runs ~seed:13;
      lin_verdict ~label:"pure priority" ~pris:[ 1; 2; 3 ]
        ~script:(Scenarios.random_script ~seed:4 ~n:3 ~ops_per:2)
        ~runs ~seed:14;
    ]
  in
  Tbl.print ~title:"linearizability under random schedules"
    ~header:[ "scheduling mode"; "N"; "runs"; "verdict" ]
    rows;
  Tbl.note
    "the same code passes in hybrid, pure-quantum and pure-priority modes\n\
     (Sec. 3.2: its O(V) time matches the specialized algorithms of [7]\n\
     and [1]). Exhaustive (context-bounded) checks run in the test suite."
