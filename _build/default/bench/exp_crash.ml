(* E15 — wait-freedom under halting failures (Sec. 2's failure model):
   the scheduler simply stops selecting some processes; every process it
   keeps scheduling still finishes in a bounded number of own statements
   and the safety properties hold among the survivors. *)

open Hwf_sim
open Hwf_core
open Hwf_adversary
open Hwf_workload

let fig7_with_crashes ~seeds ~crash_per_processor =
  let layout = Layout.uniform ~processors:2 ~per_processor:3 in
  let config = Layout.to_config ~quantum:4000 layout in
  let n = 6 in
  let victims =
    List.concat_map
      (fun cpu -> List.init crash_per_processor (fun k -> ((cpu * 3) + k, 40 + (10 * k))))
      [ 0; 1 ]
  in
  let victim_pids = List.map fst victims in
  let ok = ref 0 and total = ref 0 in
  List.iter
    (fun seed ->
      let obj = Multi_consensus.make ~config ~name:"mc" ~consensus_number:2 () in
      let outs = Array.make n None in
      let bodies =
        Array.init n (fun pid () ->
            Eff.invocation "decide" (fun () ->
                outs.(pid) <- Some (Multi_consensus.decide obj ~pid (100 + pid))))
      in
      let policy = Crash.wrap ~victims (Policy.random ~seed) in
      let r = Engine.run ~step_limit:4_000_000 ~config ~policy bodies in
      incr total;
      let survivors = List.filter (fun p -> not (List.mem p victim_pids)) (List.init n Fun.id) in
      let decisions =
        survivors |> List.filter_map (fun pid -> outs.(pid)) |> List.sort_uniq compare
      in
      if
        Crash.survivors_finished r ~victims:victim_pids
        && List.length decisions = 1
        && Wellformed.is_well_formed r.trace
      then incr ok)
    seeds;
  (!ok, !total)

let run ~quick =
  Tbl.section "E15: halting failures — wait-freedom among survivors";
  let seeds = List.init (if quick then 25 else 150) Fun.id in
  let rows =
    List.map
      (fun crash_per_processor ->
        let ok, total = fig7_with_crashes ~seeds ~crash_per_processor in
        [
          string_of_int (2 * crash_per_processor);
          string_of_int (6 - (2 * crash_per_processor));
          Printf.sprintf "%d/%d" ok total;
        ])
      [ 0; 1; 2 ]
  in
  Tbl.print
    ~title:
      "Fig. 7 consensus (P=2, C=2, N=6) with processes crashed mid-operation"
    ~header:[ "crashed"; "survivors"; "runs where all survivors decide+agree" ]
    rows;
  Tbl.note
    "crashed processes are parked forever mid-invocation (at legal\n\
     parking points); wait-freedom is exactly that the schedule of the\n\
     survivors never has to wait for them."
