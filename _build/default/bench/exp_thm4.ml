(* E5 — Theorem 4 (Figs. 7/8): wait-free multiprocessor consensus for any
   number of processes from C-consensus objects. Reports the Fig. 8
   port/level layout, agreement verdicts across (P, K, M), and the O(L)
   per-process work. *)

open Hwf_core
open Hwf_adversary
open Hwf_workload

let port_layout_rows ~p =
  List.concat_map
    (fun k ->
      let c = p + k in
      let ports =
        List.init p (fun i -> Bounds.ports_per_processor ~p ~k ~processor:i)
      in
      [
        [
          string_of_int c;
          string_of_int k;
          String.concat " " (List.map string_of_int ports);
          string_of_int (List.fold_left ( + ) 0 ports);
        ];
      ])
    (List.init (p + 1) Fun.id)

let verdict ~quantum ~consensus_number ~layout ~runs ~seed =
  let b =
    Scenarios.consensus ~name:"mc" ~impl:(Scenarios.Fig7 { consensus_number }) ~quantum
      ~layout
  in
  let o = Explore.random_runs ~runs ~step_limit:8_000_000 ~seed b.scenario in
  match o.counterexample with None -> "agreement holds" | Some c -> c.message

let run ~quick =
  Tbl.section "E5: Theorem 4 — Fig. 7 multiprocessor consensus";
  (* Fig. 8 layout *)
  Tbl.print ~title:"Fig. 8 port layout, P = 3"
    ~header:[ "C"; "K"; "ports per processor"; "total ports (= C)" ]
    (port_layout_rows ~p:3);
  (* verdicts across the (P, C, M) grid *)
  let runs = if quick then 20 else 120 in
  let grid =
    [
      (2, 2, 1); (2, 2, 2); (2, 3, 2); (2, 4, 2); (2, 4, 3);
      (3, 3, 1); (3, 4, 2); (3, 6, 2);
    ]
  in
  let rows =
    List.map
      (fun (p, c, m) ->
        let layout = Layout.uniform ~processors:p ~per_processor:m in
        let l = Bounds.levels ~m ~p ~k:(min c (2 * p) - p) in
        let v =
          verdict ~quantum:(if p >= 3 then 8000 else 4000) ~consensus_number:c ~layout
            ~runs ~seed:(p * 100 + c)
        in
        [
          string_of_int p; string_of_int c; string_of_int m;
          string_of_int (p * m); string_of_int l; v;
        ])
      grid
  in
  Tbl.print ~title:"agreement/validity/wait-freedom under random schedules"
    ~header:[ "P"; "C"; "M"; "N"; "L"; "verdict" ]
    rows;
  (* O(L) work *)
  let work_rows =
    List.map
      (fun (p, c, m) ->
        let layout = Layout.uniform ~processors:p ~per_processor:m in
        let s =
          Scenarios.run_multi ~step_limit:20_000_000 ~quantum:1_000_000
            ~consensus_number:c ~layout
            ~policy:(Hwf_sim.Policy.round_robin ())
            ()
        in
        [
          string_of_int p; string_of_int c; string_of_int m;
          string_of_int s.levels;
          string_of_int s.max_own_steps;
          string_of_int (s.max_own_steps / max 1 s.levels);
        ])
      [ (2, 2, 1); (2, 2, 2); (2, 2, 3); (3, 3, 2); (2, 4, 2) ]
  in
  Tbl.print ~title:"per-process work is O(L): statements / L is a stable constant c"
    ~header:[ "P"; "C"; "M"; "L"; "max own statements"; "statements per level (c)" ]
    work_rows
