(* E2 — Figs. 1 and 2: interleavings of three processes accessing a
   common object on one processor under (a) quantum-based and (b)
   priority-based scheduling, rendered as ASCII lanes. *)

open Hwf_sim

let body x _pid () =
  Eff.invocation "access" (fun () ->
      let v = Shared.read x in
      Eff.local "compute";
      Eff.local "compute";
      Shared.write x (v + 1))

let render ~title ~config ~policy =
  let x = Shared.make "obj" 0 in
  let bodies = Array.init 3 (body x) in
  let r = Engine.run ~config ~policy bodies in
  assert (Wellformed.is_well_formed r.trace);
  Printf.printf "\n-- %s --\n%s" title (Render.lanes r.trace)

let run ~quick:_ =
  Tbl.section "E2: Figs. 1-2 — quantum vs priority interleavings";
  (* (a) quantum-based: one priority level, Q = 4; r preempts q preempts
     p mid-invocation (first preemptions are free), then each finishes
     its quantum. *)
  let procs_q = List.init 3 (fun i -> Proc.make ~pid:i ~processor:0 ~priority:1 ()) in
  let config_q = Config.uniprocessor ~quantum:4 ~levels:1 procs_q in
  render ~title:"Fig. 1(a)/Fig. 2: quantum-based (Q=4, equal priorities)"
    ~config:config_q
    ~policy:(Policy.scripted ~fallback:Policy.first [ 0; 0; 1; 1; 2; 2; 2; 2 ]);
  (* (b) priority-based: r > q > p; each preemptor runs to completion
     before the preempted process resumes. *)
  let procs_p = List.init 3 (fun i -> Proc.make ~pid:i ~processor:0 ~priority:(i + 1) ()) in
  let config_p = Config.uniprocessor ~quantum:4 ~levels:3 procs_p in
  render ~title:"Fig. 1(b): priority-based (p lowest, r highest)"
    ~config:config_p
    ~policy:(Policy.scripted ~fallback:Policy.first [ 0; 0; 1; 1; 2; 2; 2; 2 ]);
  Tbl.note
    "reading: '[' first statement of an invocation, '=' statement, '.'\n\
     preempted mid-invocation, ']' invocation end; '|' marks quantum\n\
     boundaries. In (b) the higher-priority lanes nest strictly inside\n\
     the lower one — operations of higher-priority processes appear\n\
     atomic to lower ones, the paper's key observation."
