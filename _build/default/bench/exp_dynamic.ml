(* E13 — Sec. 5 extensions: dynamic priorities and renaming.

   The paper sketches (a) that Fig. 3 consensus remains correct verbatim
   when priorities change between invocations, and (b) that the renaming
   object needed to extend Fig. 7 to dynamic priorities is implementable
   from reads and writes. Both are exercised here. *)

open Hwf_sim
open Hwf_core

let consensus_across_shuffles ~rounds ~seeds =
  (* n processes run [rounds] consensus rounds, shuffling priorities
     between rounds; agreement must hold in every round. *)
  let n = 3 in
  let config =
    Config.uniprocessor ~quantum:8 ~levels:3
      (List.init n (fun i -> Proc.make ~pid:i ~processor:0 ~priority:(1 + (i mod 3)) ()))
  in
  let failures = ref 0 and total = ref 0 in
  List.iter
    (fun seed ->
      let st = Random.State.make [| seed; 0xe13 |] in
      let objs = Array.init rounds (fun r -> Uni_consensus.make (Printf.sprintf "c%d" r)) in
      let outs = Array.make_matrix rounds n (-1) in
      let prio_plan =
        Array.init rounds (fun _ -> Array.init n (fun _ -> 1 + Random.State.int st 3))
      in
      let programs =
        Array.init n (fun pid () ->
            for r = 0 to rounds - 1 do
              Eff.set_priority prio_plan.(r).(pid);
              Eff.invocation "decide" (fun () ->
                  outs.(r).(pid) <- Uni_consensus.decide objs.(r) ((100 * r) + pid))
            done)
      in
      let res = Engine.run ~config ~policy:(Policy.random ~seed) programs in
      incr total;
      let ok =
        Array.for_all Fun.id res.finished
        && Wellformed.is_well_formed res.trace
        && Array.for_all
             (fun row -> Array.for_all (fun v -> v = row.(0)) row)
             outs
      in
      if not ok then incr failures)
    seeds;
  (!total, !failures)

let renaming_density ~n ~seeds =
  let config =
    Config.uniprocessor ~quantum:3000 ~levels:2
      (List.init n (fun i -> Proc.make ~pid:i ~processor:0 ~priority:(1 + (i mod 2)) ()))
  in
  let bad = ref 0 and total = ref 0 in
  List.iter
    (fun seed ->
      let r = Renaming.make "names" in
      let got = Array.make n 0 in
      let programs =
        Array.init n (fun pid () ->
            Eff.invocation "acquire" (fun () -> got.(pid) <- Renaming.acquire r ~pid))
      in
      let res = Engine.run ~config ~policy:(Policy.random ~seed) programs in
      incr total;
      let sorted = Array.copy got in
      Array.sort compare sorted;
      let distinct = Array.to_list sorted |> List.sort_uniq compare in
      if
        (not (Array.for_all Fun.id res.finished))
        || List.length distinct <> n
        || sorted.(n - 1) > n
      then incr bad)
    seeds;
  (!total, !bad)

let run ~quick =
  Tbl.section "E13: Sec. 5 extensions — dynamic priorities and renaming";
  let seeds = List.init (if quick then 60 else 400) Fun.id in
  let total, failures = consensus_across_shuffles ~rounds:4 ~seeds in
  Tbl.print ~title:"Fig. 3 consensus with priorities shuffled between rounds"
    ~header:[ "rounds"; "runs"; "failures" ]
    [ [ "4"; string_of_int total; string_of_int failures ] ];
  let rows =
    List.map
      (fun n ->
        let total, bad = renaming_density ~n ~seeds in
        [ string_of_int n; string_of_int total; string_of_int bad ])
      [ 2; 4; 6 ]
  in
  Tbl.print
    ~title:"one-shot renaming: names distinct and dense in 1..N (read/write only)"
    ~header:[ "N"; "runs"; "violations" ]
    rows;
  Tbl.note
    "both Sec. 5 sketches hold in the implementation: the unmodified\n\
     Fig. 3 algorithm survives dynamic priorities, and renaming is\n\
     wait-free implementable from reads and writes on a hybrid\n\
     uniprocessor."
