(* E8 — Fig. 9 / Sec. 5: with fair quantum allocation, a constant-size
   quantum suffices (election + priority-based global consensus);
   with an unfair scheduler, election losers can starve — the reason
   Fig. 7 exists. *)

open Hwf_sim
open Hwf_core
open Hwf_workload

let build ~quantum ~layout =
  let n = List.length layout in
  let config = Layout.to_config ~quantum layout in
  let obj = Fair_consensus.make ~config ~name:"fc" ~consensus_number:2 in
  let outputs = Array.make n None in
  let programs =
    Array.init n (fun pid () ->
        Eff.invocation "decide" (fun () ->
            outputs.(pid) <- Some (Fair_consensus.decide obj ~pid (100 + pid))))
  in
  (config, obj, outputs, programs)

let run ~quick:_ =
  Tbl.section "E8: Fig. 9 — fair scheduling, constant quantum";
  let layout = Layout.banded ~processors:2 ~levels:2 ~per_level:2 in
  let rows =
    List.map
      (fun quantum ->
        let config, obj, outputs, programs = build ~quantum ~layout in
        let r =
          Engine.run ~step_limit:10_000_000 ~config ~policy:(Policy.round_robin ())
            programs
        in
        let agreed =
          match Array.to_list outputs |> List.filter_map Fun.id with
          | v :: rest -> List.for_all (( = ) v) rest
          | [] -> false
        in
        [
          string_of_int quantum;
          (if Array.for_all Fun.id r.finished then "yes" else "no");
          (if agreed then "yes" else "no");
          string_of_int (Fair_consensus.elections_lost obj);
          string_of_int (Hwf_sim.Trace.statements r.trace);
        ])
      [ 16; 64; 256; 2048 ]
  in
  Tbl.print ~title:"Fig. 9 under a fair (round-robin) scheduler, N=8 P=2 V=2"
    ~header:[ "Q"; "terminates"; "agreement"; "election losers (spinners)"; "statements" ]
    rows;
  (* unfair contrast *)
  let config, _, _, programs = build ~quantum:2048 ~layout:(Layout.uniform ~processors:1 ~per_processor:2) in
  let phase = ref `Warmup in
  let policy =
    Policy.of_fun "unfair" (fun v ->
        (match !phase with
        | `Warmup when v.Policy.step > 40 -> phase := `Starve
        | _ -> ());
        let prefer pid = if List.mem pid v.Policy.runnable then Some pid else None in
        match !phase with
        | `Warmup -> ( match prefer 0 with Some p -> Some p | None -> prefer 1)
        | `Starve -> ( match prefer 1 with Some p -> Some p | None -> prefer 0))
  in
  let r = Engine.run ~step_limit:30_000 ~config ~policy programs in
  Tbl.note
    "unfair scheduler contrast: the election loser spins forever — run\n\
     stopped by the step limit: %b (Fig. 9 is wait-free only in the\n\
     'finite number of its own steps under fairness' sense; Fig. 7 needs\n\
     no fairness)."
    (r.stop = Engine.Step_limit)
