(* Minimal ASCII table printing for the experiment reports. With
   [csv_mode] set (bench --csv), tables are emitted as CSV blocks instead
   so plots can be regenerated from the harness output directly. *)

let csv_mode = ref false

let csv_escape c =
  if String.exists (fun ch -> ch = ',' || ch = '"' || ch = '\n') c then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' c) ^ "\""
  else c

let hr widths =
  let line = List.map (fun w -> String.make (w + 2) '-') widths in
  Printf.printf "+%s+\n" (String.concat "+" line)

let row widths cells =
  let padded =
    List.map2 (fun w c -> Printf.sprintf " %-*s " w c) widths cells
  in
  Printf.printf "|%s|\n" (String.concat "|" padded)

let print_ascii ~title ~header rows =
  Printf.printf "\n== %s ==\n" title;
  let all = header :: rows in
  let ncols = List.length header in
  let widths =
    List.init ncols (fun i ->
        List.fold_left (fun acc r -> max acc (String.length (List.nth r i))) 0 all)
  in
  hr widths;
  row widths header;
  hr widths;
  List.iter (row widths) rows;
  hr widths

let print ~title ~header rows =
  if !csv_mode then begin
    Printf.printf "\n# %s\n" title;
    List.iter
      (fun r -> print_endline (String.concat "," (List.map csv_escape r)))
      (header :: rows)
  end
  else print_ascii ~title ~header rows

let section name = Printf.printf "\n######## %s ########\n" name

let note fmt = Printf.ksprintf (fun s -> Printf.printf "%s\n" s) fmt
