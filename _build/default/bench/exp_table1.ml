(* E1 — Table 1: conditions under which an object with consensus number C
   is universal on P processors, as a function of the quantum Q.

   For each (P, C) row we report:
   - the paper's universality threshold c(2P+1-C) with the constant c
     measured for this implementation (statements per level),
   - the smallest Q in a candidate ladder at which the Fig. 7 algorithm
     survives every trial of the adversary battery,
   - the paper's impossibility threshold 2P-C,
   - the largest Q at which an adversarial trial forced a violation
     (exhausted C-consensus object, disagreement, or invalid value). *)

open Hwf_core
open Hwf_workload

let trial ~quantum ~consensus_number ~layout ~policy =
  Scenarios.run_multi ~step_limit:8_000_000 ~quantum ~consensus_number ~layout
    ~policy:(policy ()) ()

let survives_all ~quantum ~consensus_number ~layout ~seeds =
  List.for_all
    (fun policy ->
      not (Scenarios.violation (trial ~quantum ~consensus_number ~layout ~policy)))
    (Scenarios.adversarial_policies ~seeds ~var_prefix:"mc.Cons")

(* Statements per level in an undisturbed run: the implementation's c. *)
let measured_c ~consensus_number ~layout =
  let s =
    Scenarios.run_multi ~step_limit:8_000_000 ~quantum:1_000_000 ~consensus_number
      ~layout
      ~policy:(Hwf_sim.Policy.round_robin ())
      ()
  in
  if s.levels = 0 then 0 else (s.max_own_steps + s.levels - 1) / s.levels

let ladder = [ 1; 2; 4; 8; 16; 32; 64; 128; 256; 512; 1024; 2048; 4096 ]

let run ~quick =
  Tbl.section "E1: Table 1 — universality vs (C, P, Q)";
  let ps = if quick then [ 2 ] else [ 2; 3 ] in
  let seeds = List.init (if quick then 12 else 40) Fun.id in
  List.iter
    (fun p ->
      let layout = Layout.uniform ~processors:p ~per_processor:4 in
      let rows =
        List.map
          (fun consensus_number ->
            let c = measured_c ~consensus_number ~layout in
            let theory_upper =
              match Bounds.universal_quantum ~c ~p ~consensus_number with
              | Some q -> q
              | None -> -1
            in
            let theory_lower =
              Option.value ~default:(-1)
                (Bounds.impossibility_quantum ~p ~consensus_number)
            in
            let verdicts =
              List.map
                (fun quantum ->
                  (quantum, survives_all ~quantum ~consensus_number ~layout ~seeds))
                ladder
            in
            let smallest_safe =
              (* smallest ladder point from which every larger one passes *)
              let rec from = function
                | [] -> None
                | (q, ok) :: rest ->
                  if ok && List.for_all snd rest then Some q else from rest
              in
              from verdicts
            in
            let largest_broken =
              List.filter (fun (_, ok) -> not ok) verdicts
              |> List.fold_left (fun acc (q, _) -> max acc q) (-1)
            in
            [
              string_of_int consensus_number;
              string_of_int c;
              string_of_int theory_upper;
              (match smallest_safe with Some q -> string_of_int q | None -> ">max");
              string_of_int theory_lower;
              (if largest_broken < 0 then "none" else string_of_int largest_broken);
            ])
          (List.init (p + 1) (fun i -> p + i))
      in
      Tbl.print
        ~title:(Printf.sprintf "Table 1 reproduction, P = %d (M = 4)" p)
        ~header:
          [
            "C";
            "measured c";
            "universal if Q >= c(2P+1-C)";
            "smallest safe Q (measured)";
            "not universal if Q <= 2P-C";
            "largest broken Q (measured)";
          ]
        rows;
      Tbl.note
        "shape check: violations (exhausted C-consensus objects — the\n\
         Theorem 3 mechanism) appear only at small quanta and vanish as Q\n\
         grows; the theoretical thresholds bracket the measured boundary\n\
         (the upper one is sufficient, not necessary, so the measured safe\n\
         point sits at or below it; the region between 2P-C and c(2P+1-C)\n\
         is not covered by either guarantee).")
    ps
