(* E14 — the time model (paper's remark below Theorem 4: "If we were to
   incorporate time within our model, then we could easily incorporate
   the Tmax term given in Table 1").

   Statements cost adversary-chosen durations in [Tmin, Tmax] and the
   quantum protects Q time units. We measure, for the Fig. 3 algorithm,
   the smallest exhaustively-safe quantum as Tmax grows: it scales
   linearly with Tmax, which is exactly the Tmax factor in Table 1's
   middle column. *)

open Hwf_sim
open Hwf_workload

let slow_cost _view _pid _op = max_int (* clamp to tmax *)

(* Exhaustive DFS over 2-process Fig. 3 schedules with all statements at
   Tmax; returns true iff agreement holds over all schedules. *)
let safe ~tmax ~quantum =
  let layout = [ (0, 1); (0, 1) ] in
  let b = Scenarios.consensus ~name:"f3time" ~impl:Scenarios.Fig3 ~quantum ~layout in
  let base = Layout.to_config ~quantum layout in
  let config =
    Config.uniprocessor ~tmin:1 ~tmax ~quantum ~levels:base.Config.levels
      (Array.to_list base.Config.procs)
  in
  let ok = ref true in
  let runs = ref 0 in
  let rec loop prefix =
    if !ok && !runs < 100_000 then begin
      incr runs;
      let instance = b.Scenarios.scenario.Hwf_adversary.Explore.make () in
      let depth = ref 0 and slots = ref [] in
      let choose (v : Policy.view) =
        let d = !depth in
        incr depth;
        let idx = if d < Array.length prefix then prefix.(d) else 0 in
        let idx = if idx < List.length v.runnable then idx else 0 in
        slots := (idx, List.length v.runnable) :: !slots;
        Some (List.nth v.runnable idx)
      in
      let r =
        Engine.run ~step_limit:10_000 ~cost:slow_cost ~config
          ~policy:(Policy.of_fun "slow" choose)
          instance.Hwf_adversary.Explore.programs
      in
      (match instance.Hwf_adversary.Explore.check r with
      | Error _ -> ok := false
      | Ok () -> ());
      if !ok then begin
        let slots = Array.of_list (List.rev !slots) in
        let rec bt i =
          if i < 0 then None
          else
            let idx, n = slots.(i) in
            if idx + 1 < n then Some i else bt (i - 1)
        in
        match bt (Array.length slots - 1) with
        | None -> ()
        | Some i ->
          let prefix' = Array.init (i + 1) (fun j -> fst slots.(j)) in
          prefix'.(i) <- fst slots.(i) + 1;
          loop prefix'
      end
    end
  in
  loop [||];
  !ok

let smallest_safe_quantum ~tmax =
  let rec find q = if q > 128 then -1 else if safe ~tmax ~quantum:q then q else find (q + 1)
  in
  find 1

let run ~quick:_ =
  Tbl.section "E14: the time model — Table 1's Tmax factor";
  let rows =
    List.map
      (fun tmax ->
        let q = smallest_safe_quantum ~tmax in
        [
          string_of_int tmax;
          string_of_int q;
          string_of_int (8 * tmax);
          Printf.sprintf "%.2f" (float_of_int q /. float_of_int tmax);
        ])
      [ 1; 2; 3; 4; 6 ]
  in
  Tbl.print
    ~title:
      "smallest exhaustively-safe time quantum for Fig. 3 (2 procs, adversarial \
       statement costs = Tmax)"
    ~header:[ "Tmax"; "measured safe Q"; "statement-model bound 8*Tmax"; "Q / Tmax" ]
    rows;
  Tbl.note
    "the safe quantum grows linearly in Tmax (constant Q/Tmax ratio),\n\
     reproducing Table 1's c(2P+1-C)*Tmax form; the measured constant is\n\
     below 8 because the statement-count bound is sufficient, not tight."
