(* E6 — Theorem 3 (Figs. 6/10): below Q = 2P - C the adversary can drive
   more than C distinct processes into a C-consensus object (bottom
   returns), and bivalence persists. Two measurements:

   (a) violation pressure vs Q on the Fig. 7 algorithm: fraction of
       adversarial runs with an exhausted object / disagreement;
   (b) the bivalence horizon of the Fig. 3 algorithm vs Q (the
       uniprocessor instance of the same valency phenomenon). *)

open Hwf_adversary
open Hwf_workload

let pressure ~quantum ~consensus_number ~layout ~seeds =
  let policies = Scenarios.adversarial_policies ~seeds ~var_prefix:"mc.Cons" in
  let total = List.length policies in
  let exhausted = ref 0 and disagreed = ref 0 in
  List.iter
    (fun policy ->
      let s =
        Scenarios.run_multi ~step_limit:8_000_000 ~quantum ~consensus_number ~layout
          ~policy:(policy ()) ()
      in
      if s.exhausted > 0 then incr exhausted;
      if not (s.agreed && s.valid) then incr disagreed)
    policies;
  (total, !exhausted, !disagreed)

let run ~quick =
  Tbl.section "E6: Theorem 3 — lower bound on the quantum";
  let p = 2 and consensus_number = 2 in
  let threshold = 2 * p - consensus_number in
  let layout = Layout.uniform ~processors:p ~per_processor:4 in
  let seeds = List.init (if quick then 25 else 120) Fun.id in
  let rows =
    List.map
      (fun quantum ->
        let total, exhausted, disagreed =
          pressure ~quantum ~consensus_number ~layout ~seeds
        in
        [
          string_of_int quantum;
          (if quantum <= threshold then "impossible" else "(above)");
          Printf.sprintf "%d/%d" exhausted total;
          Printf.sprintf "%d/%d" disagreed total;
        ])
      [ 1; 2; 3; 4; 8; 64; 512; 4096 ]
  in
  Tbl.print
    ~title:
      (Printf.sprintf
         "adversarial pressure on Fig. 7 (P=%d, C=%d, threshold 2P-C=%d)" p
         consensus_number threshold)
    ~header:[ "Q"; "Table 1 region"; "runs with exhausted object"; "runs with bad value" ]
    rows;
  Tbl.note
    "an 'exhausted object' run is one where more than C = %d distinct\n\
     processes invoked one C-consensus object — exactly the mechanism the\n\
     valency proof uses (Fig. 6: 2P-Q processes reach object O). Pressure\n\
     is strongest in the impossible region; occasional hits just above it\n\
     are expected (between 2P-C and the Theorem 4 threshold neither\n\
     guarantee applies to this particular algorithm) and all pressure\n\
     vanishes once Q clears c(2P+1-C)."
    consensus_number;
  (* (b) bivalence horizon for the uniprocessor algorithm *)
  let max_runs = if quick then 60_000 else 400_000 in
  let rows =
    List.map
      (fun quantum ->
        let b =
          Scenarios.consensus ~name:"f3" ~impl:Scenarios.Fig3 ~quantum
            ~layout:[ (0, 1); (0, 1) ]
        in
        let pr =
          Bivalence.probe ~max_runs ~scenario:b.scenario ~decision:b.last_decision ()
        in
        [
          string_of_int quantum;
          string_of_int (List.length pr.decisions);
          string_of_int pr.horizon;
          string_of_int pr.deepest_run;
          string_of_int pr.runs;
        ])
      [ 1; 2; 4; 6; 8 ]
  in
  Tbl.print
    ~title:"bivalence horizon of Fig. 3 vs quantum (2 processes)"
    ~header:[ "Q"; "reachable decisions"; "bivalence horizon"; "run length"; "schedules" ]
    rows;
  Tbl.note
    "below the safe quantum the adversary can keep the execution bivalent\n\
     deep into the run (and at Q=1 actually force disagreement, see E3);\n\
     at Q=8 bivalence dies out early: the machine-checked shadow of the\n\
     paper's infinite bivalent history."
