(* E11 — Axiom 2 is necessary (Sec. 2): a hybrid scheduler satisfying
   Axiom 1 but violating Axiom 2 leaves Herlihy's hierarchy intact, so
   the read/write consensus algorithm must fail under some schedule. *)

open Hwf_sim
open Hwf_adversary
open Hwf_workload

let run ~quick:_ =
  Tbl.section "E11: necessity of Axiom 2";
  let with_axiom axiom2 =
    let layout = [ (0, 1); (0, 1) ] in
    let config = Layout.to_config ~axiom2 ~quantum:8 layout in
    let b =
      Scenarios.consensus ~name:"f3" ~impl:Scenarios.Fig3 ~quantum:8 ~layout
    in
    let scenario = Explore.{ b.scenario with config } in
    Explore.explore scenario
  in
  let on = with_axiom true in
  let off = with_axiom false in
  Tbl.print ~title:"Fig. 3 at Q=8, with and without the quantum guarantee"
    ~header:[ "Axiom 2"; "schedules"; "verdict" ]
    [
      [
        "enforced";
        string_of_int on.runs;
        (match on.counterexample with None -> "agreement (exhaustive)" | Some c -> c.message);
      ];
      [
        "violated";
        string_of_int off.runs;
        (match off.counterexample with None -> "agreement (?)" | Some c -> c.message);
      ];
    ];
  (match off.counterexample with
  | Some c ->
    Printf.printf "\nviolating schedule without Axiom 2:\n%s" (Render.lanes c.trace)
  | None -> ());
  Tbl.note
    "with Axiom 2 the exploration is exhaustive and safe; without it the\n\
     checker finds disagreement — read/write consensus is impossible, as\n\
     the paper argues when motivating the axiom."
