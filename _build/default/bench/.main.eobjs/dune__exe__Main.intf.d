bench/main.mli:
