bench/exp_dynamic.ml: Array Config Eff Engine Fun Hwf_core Hwf_sim List Policy Printf Proc Random Renaming Tbl Uni_consensus Wellformed
