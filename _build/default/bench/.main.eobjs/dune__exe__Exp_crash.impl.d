bench/exp_crash.ml: Array Crash Eff Engine Fun Hwf_adversary Hwf_core Hwf_sim Hwf_workload Layout List Multi_consensus Policy Printf Tbl Wellformed
