bench/exp_figs12.ml: Array Config Eff Engine Hwf_sim List Policy Printf Proc Render Shared Tbl Wellformed
