bench/exp_thm4.ml: Bounds Explore Fun Hwf_adversary Hwf_core Hwf_sim Hwf_workload Layout List Scenarios String Tbl
