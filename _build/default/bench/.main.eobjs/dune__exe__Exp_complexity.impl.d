bench/exp_complexity.ml: Array Bounds Eff Engine Fun Hwf_core Hwf_sim Hwf_workload Layout List Multi_consensus Policy Tbl
