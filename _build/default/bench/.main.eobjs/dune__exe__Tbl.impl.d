bench/tbl.ml: List Printf String
