bench/exp_lemma3.ml: Bounds Fun Hwf_core Hwf_workload Layout List Printf Scenarios Tbl
