bench/exp_universal.ml: Explore Hwf_adversary Hwf_workload Layout List Scenarios Tbl
