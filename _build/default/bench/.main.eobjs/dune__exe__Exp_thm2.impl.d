bench/exp_thm2.ml: Eff Engine Explore Hwf_adversary Hwf_core Hwf_sim Hwf_workload Hybrid_cas Layout List Policy Scenarios Tbl
