bench/bech.ml: Analyze Bechamel Benchmark Hashtbl Instance List Measure Printf Staged Tbl Test Time Toolkit
