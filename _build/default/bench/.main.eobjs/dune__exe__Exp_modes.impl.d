bench/exp_modes.ml: Explore Hwf_adversary Hwf_workload Layout List Scenarios Tbl
