bench/exp_thm3.ml: Bivalence Fun Hwf_adversary Hwf_workload Layout List Printf Scenarios Tbl
