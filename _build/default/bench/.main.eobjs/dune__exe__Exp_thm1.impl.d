bench/exp_thm1.ml: Explore Hwf_adversary Hwf_sim Hwf_workload List Printf Scenarios Tbl
