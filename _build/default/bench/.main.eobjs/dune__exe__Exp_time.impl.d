bench/exp_time.ml: Array Config Engine Hwf_adversary Hwf_sim Hwf_workload Layout List Policy Printf Scenarios Tbl
