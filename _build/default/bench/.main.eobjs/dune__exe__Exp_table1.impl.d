bench/exp_table1.ml: Bounds Fun Hwf_core Hwf_sim Hwf_workload Layout List Option Printf Scenarios Tbl
