bench/exp_axiom2.ml: Explore Hwf_adversary Hwf_sim Hwf_workload Layout Printf Render Scenarios Tbl
