bench/exp_fair.ml: Array Eff Engine Fair_consensus Fun Hwf_core Hwf_sim Hwf_workload Layout List Policy Tbl
