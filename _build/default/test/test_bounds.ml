open Hwf_core

(* Table 1 rows for fixed P, unit-cost statements (c = 1). *)
let test_table1_middle_column () =
  let q c consensus_number = Bounds.universal_quantum ~c ~p:4 ~consensus_number in
  (* C < P: impossible *)
  Alcotest.(check (option int)) "C<P" None (q 1 3);
  (* P <= C <= 2P: proportional to 2P+1-C *)
  Alcotest.(check (option int)) "C=P" (Some 5) (q 1 4);
  Alcotest.(check (option int)) "C=P+1" (Some 4) (q 1 5);
  Alcotest.(check (option int)) "C=2P-1" (Some 2) (q 1 7);
  (* the max(2c, .) floor binds from C = 2P - 1 with c = 1 *)
  Alcotest.(check (option int)) "C=2P" (Some 2) (q 1 8);
  Alcotest.(check (option int)) "C=2P+5" (Some 2) (q 1 13);
  (* infinite consensus number: any quantum *)
  Alcotest.(check (option int)) "C=inf" (Some 0) (q 1 max_int)

let test_table1_last_column () =
  let q consensus_number = Bounds.impossibility_quantum ~p:4 ~consensus_number in
  Alcotest.(check (option int)) "C=P" (Some 4) (q 4);
  Alcotest.(check (option int)) "C=P+1" (Some 3) (q 5);
  Alcotest.(check (option int)) "C=2P-1" (Some 1) (q 7);
  Alcotest.(check (option int)) "C=2P" (Some 1) (q 8);
  Alcotest.(check (option int)) "C=2P+3" (Some 1) (q 11);
  Alcotest.(check (option int)) "C=inf" None (q max_int)

let test_theorem1_constant () =
  Alcotest.(check int) "Q >= 8" 8 Bounds.uniprocessor_consensus_quantum;
  Alcotest.(check int)
    "matches Fig 3 statement count" Uni_consensus.statements_per_decide
    Bounds.uniprocessor_consensus_quantum

let test_levels_formula () =
  (* L = (K+1)M(1+P-K) + (P-K)^2 M + 1, spot values *)
  Alcotest.(check int) "P=2 K=0 M=1" (1 * 1 * 3 + 4 * 1 + 1) (Bounds.levels ~m:1 ~p:2 ~k:0);
  Alcotest.(check int) "P=2 K=2 M=3" (3 * 3 * 1 + 0 + 1) (Bounds.levels ~m:3 ~p:2 ~k:2);
  Alcotest.(check int) "P=3 K=1 M=2" (2 * 2 * 3 + 4 * 2 + 1) (Bounds.levels ~m:2 ~p:3 ~k:1);
  Alcotest.check_raises "k range" (Invalid_argument "Bounds.levels: need 0 <= k <= p")
    (fun () -> ignore (Bounds.levels ~m:1 ~p:2 ~k:3))

let test_levels_exceed_threshold () =
  (* Lemma 3: L as defined exceeds the deciding-level threshold. *)
  for p = 1 to 6 do
    for k = 0 to p do
      for m = 1 to 5 do
        let l = Bounds.levels ~m ~p ~k in
        let thr = Bounds.deciding_level_threshold ~m ~p ~k in
        if l <> thr + 1 then
          Alcotest.failf "L <> threshold+1 at p=%d k=%d m=%d (%d vs %d)" p k m l thr
      done
    done
  done

let test_ports () =
  (* Fig 8: K processors with 2 ports, P-K with 1; totals C = P+K. *)
  for p = 1 to 5 do
    for k = 0 to p do
      let total = ref 0 in
      for i = 0 to p - 1 do
        total := !total + Bounds.ports_per_processor ~p ~k ~processor:i
      done;
      Alcotest.(check int) (Printf.sprintf "ports p=%d k=%d" p k) (p + k) !total
    done
  done

let test_af_bounds () =
  Alcotest.(check int) "AF_diff <= M" 4 (Bounds.af_diff_bound ~m:4);
  (* Corollary B.1: C=2P (K=P) gives AF_same <= MP. *)
  let p = 3 and m = 2 in
  let l = Bounds.levels ~m ~p ~k:p in
  Alcotest.(check int) "K=P collapses to KM" (p * m) (Bounds.af_same_bound ~m ~p ~k:p ~l);
  (* Lemma B.2 shape for K=0: P(L+PM)/(1+P), rounded up. *)
  let l0 = Bounds.levels ~m ~p ~k:0 in
  let expect = (p * (l0 + (m * p)) + p) / (p + 1) in
  Alcotest.(check int) "K=0 shape" expect (Bounds.af_same_bound ~m ~p ~k:0 ~l:l0)

let prop_universal_monotone_in_c =
  Util.qtest ~count:200 "required quantum shrinks as C grows"
    QCheck2.Gen.(tup2 (int_range 1 6) (int_range 1 20))
    (fun (p, c) ->
      let rec mono prev cn =
        if cn > (2 * p) + 3 then true
        else
          match Bounds.universal_quantum ~c ~p ~consensus_number:cn with
          | None -> mono prev (cn + 1)
          | Some q -> q <= prev && mono q (cn + 1)
      in
      mono max_int p)

let prop_impossibility_below_universal =
  Util.qtest ~count:200 "impossible region sits below universal region"
    QCheck2.Gen.(tup2 (int_range 1 6) (int_range 0 8))
    (fun (p, dc) ->
      let consensus_number = p + dc in
      match
        ( Bounds.impossibility_quantum ~p ~consensus_number,
          Bounds.universal_quantum ~c:1 ~p ~consensus_number )
      with
      | Some lower, Some upper -> lower < upper || upper <= 1
      | _ -> true)

let prop_levels_positive =
  Util.qtest ~count:200 "L >= 1 and grows with M"
    QCheck2.Gen.(tup2 (int_range 1 6) (int_range 1 6))
    (fun (p, m) ->
      List.for_all
        (fun k ->
          let l = Bounds.levels ~m ~p ~k in
          l >= 1 && (m = 1 || l > Bounds.levels ~m:(m - 1) ~p ~k))
        (List.init (p + 1) Fun.id))

let test_exponential_baseline () =
  Alcotest.(check int) "M 4^P" (3 * 256) (Bounds.exponential_baseline_levels ~m:3 ~p:4);
  (* the polynomial L sits below the exponential baseline from P=1 on *)
  let m = 2 in
  List.iter
    (fun p ->
      Util.checkb
        (Printf.sprintf "polynomial beats exponential at P=%d" p)
        (Bounds.levels ~m ~p ~k:0 < Bounds.exponential_baseline_levels ~m ~p))
    [ 1; 2; 3; 4; 10 ]

let () =
  Alcotest.run "bounds"
    [
      ( "table1",
        [
          Alcotest.test_case "middle column" `Quick test_table1_middle_column;
          Alcotest.test_case "last column" `Quick test_table1_last_column;
          Alcotest.test_case "theorem 1 constant" `Quick test_theorem1_constant;
        ] );
      ( "levels",
        [
          Alcotest.test_case "formula" `Quick test_levels_formula;
          Alcotest.test_case "exceeds threshold" `Quick test_levels_exceed_threshold;
          Alcotest.test_case "ports" `Quick test_ports;
          Alcotest.test_case "af bounds" `Quick test_af_bounds;
          Alcotest.test_case "exponential baseline" `Quick test_exponential_baseline;
        ] );
      ( "props",
        [
          prop_universal_monotone_in_c;
          prop_impossibility_below_universal;
          prop_levels_positive;
        ] );
    ]
