test/test_multi_consensus.mli:
