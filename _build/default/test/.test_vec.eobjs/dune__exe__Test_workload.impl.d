test/test_workload.ml: Alcotest Array Fun Hwf_adversary Hwf_sim Hwf_workload Layout List Opgen Option Scenarios Util
