test/test_universal.ml: Alcotest Array Eff Explore Fun Hwf_adversary Hwf_core Hwf_sim Hwf_workload Layout List Policy Scenarios Util Wf_objects
