test/test_bounds.ml: Alcotest Bounds Fun Hwf_core List Printf QCheck2 Uni_consensus Util
