test/test_render.ml: Alcotest Array Config Eff Hwf_sim List Policy Proc Render String Util
