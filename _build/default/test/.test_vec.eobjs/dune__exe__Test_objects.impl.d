test/test_objects.ml: Alcotest Array Cons_obj Eff Engine Fun Hw_atomic Hwf_objects Hwf_sim List Option Policy QCheck2 Util
