test/test_fair_consensus.mli:
