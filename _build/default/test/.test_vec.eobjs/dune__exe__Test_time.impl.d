test/test_time.ml: Alcotest Array Config Eff Engine Explore Fun Hwf_adversary Hwf_sim Hwf_workload Layout List Op Policy QCheck2 Random Scenarios Shared Trace Util Wellformed
