test/test_policy.ml: Alcotest Array Eff Engine Fun Hwf_adversary Hwf_sim List Policy Trace Util
