test/test_dynamic.ml: Alcotest Array Config Dump Eff Engine Explore Fmt Fun Hwf_adversary Hwf_core Hwf_sim List Op Policy Proc Renaming Stagger Trace Uni_consensus Util Wellformed
