test/test_lincheck.ml: Alcotest Eff Hist Hwf_check Hwf_sim Lincheck List Policy QCheck2 Util
