test/test_chain.ml: Alcotest Array Chain Eff Engine Explore Fun Hwf_adversary Hwf_check Hwf_core Hwf_sim Hwf_workload List Policy Printf QCheck2 Q_cas Q_cas_naive Q_fai Scenarios Stagger Util
