test/test_vec.ml: Alcotest Hwf_sim List QCheck2 Util Vec
