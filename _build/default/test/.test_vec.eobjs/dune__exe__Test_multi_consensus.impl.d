test/test_multi_consensus.ml: Alcotest Bounds Explore Hwf_adversary Hwf_core Hwf_sim Hwf_workload Layout List Multi_consensus Printf Scenarios Stagger Util
