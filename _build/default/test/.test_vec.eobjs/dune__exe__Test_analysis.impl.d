test/test_analysis.ml: Alcotest Analysis Array Config Eff Engine Hwf_adversary Hwf_sim Hwf_workload List Policy Proc QCheck2 Shared Trace Util
