test/test_hybrid_cas.ml: Alcotest Array Eff Explore Fun Hwf_adversary Hwf_core Hwf_sim Hwf_workload Hybrid_cas List Policy Printf QCheck2 Random Scenarios Util
