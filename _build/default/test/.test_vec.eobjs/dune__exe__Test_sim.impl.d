test/test_sim.ml: Alcotest Array Config Dump Eff Engine Fmt Fun Hwf_adversary Hwf_sim Hwf_workload List Op Policy Printf Proc QCheck2 Render Shared String Trace Util Wellformed
