test/test_hybrid_cas.mli:
