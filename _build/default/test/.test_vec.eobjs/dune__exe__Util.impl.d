test/util.ml: Alcotest Config Engine Hwf_adversary Hwf_sim List Proc QCheck2 QCheck_alcotest Render String Wellformed
