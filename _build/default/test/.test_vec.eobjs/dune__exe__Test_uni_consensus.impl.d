test/test_uni_consensus.ml: Alcotest Array Eff Engine Explore Fun Hwf_adversary Hwf_core Hwf_sim Hwf_workload Layout List Policy QCheck2 Random Scenarios Trace Util
