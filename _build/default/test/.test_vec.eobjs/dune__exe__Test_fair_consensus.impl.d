test/test_fair_consensus.ml: Alcotest Array Eff Engine Fair_consensus Fun Hwf_core Hwf_sim Hwf_workload Layout List Policy Printf Util Wellformed
