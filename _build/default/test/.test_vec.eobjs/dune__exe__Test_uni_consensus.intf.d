test/test_uni_consensus.mli:
