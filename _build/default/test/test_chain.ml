open Hwf_sim
open Hwf_core
open Hwf_adversary
open Hwf_workload

(* The consensus-chain kernel and its Q-C&S / Q-F&I wrappers
   (DESIGN.md Substitution 2). *)

let test_solo_semantics () =
  let config = Util.uni_config ~quantum:100 [ 1 ] in
  let out = ref [] in
  let bodies =
    [|
      (fun () ->
        Eff.invocation "ops" (fun () ->
            let x = Q_cas.make "x" 0 in
            out := [];
            out := `B (Q_cas.cas x ~who:0 ~expected:0 ~desired:5) :: !out;
            out := `B (Q_cas.cas x ~who:0 ~expected:0 ~desired:9) :: !out;
            out := `I (Q_cas.read x) :: !out;
            Q_cas.write x ~who:0 7;
            out := `I (Q_cas.read x) :: !out));
    |]
  in
  ignore (Util.run ~config ~policy:Policy.first bodies);
  match List.rev !out with
  | [ `B true; `B false; `I 5; `I 7 ] -> ()
  | _ -> Alcotest.fail "unexpected op results"

let test_qfai_sequence () =
  let config = Util.uni_config ~quantum:100 [ 1 ] in
  let out = ref [] in
  let bodies =
    [|
      (fun () ->
        Eff.invocation "ops" (fun () ->
            let c = Q_fai.make "c" 10 in
            for _ = 1 to 4 do
              out := Q_fai.fetch_and_increment c ~who:0 :: !out
            done;
            out := Q_fai.read c :: !out));
    |]
  in
  ignore (Util.run ~config ~policy:Policy.first bodies);
  Alcotest.(check (list int)) "pre-increment values" [ 10; 11; 12; 13; 14 ] (List.rev !out)

let test_exhaustive_qcas () =
  let script = [ [ Scenarios.Cas (0, 1); Scenarios.Cas (1, 2) ]; [ Scenarios.Cas (0, 5); Scenarios.Rd ] ] in
  let s = Scenarios.q_cas ~name:"qc" ~quantum:40 ~n:2 ~script in
  let o = Explore.explore ~preemption_bound:3 ~max_runs:500_000 s in
  Util.expect_ok "qcas 2x2" o

let test_exhaustive_qcas_3 () =
  let script = [ [ Scenarios.Cas (0, 1) ]; [ Scenarios.Cas (0, 2) ]; [ Scenarios.Cas (0, 3) ] ] in
  let s = Scenarios.q_cas ~name:"qc3" ~quantum:40 ~n:3 ~script in
  Util.expect_ok "qcas 3x1" (Explore.explore ~preemption_bound:3 ~max_runs:500_000 s)

let test_reads_from_other_processes () =
  let script = [ [ Scenarios.Cas (0, 1); Scenarios.Rd ]; [ Scenarios.Rd; Scenarios.Rd ] ] in
  let s = Scenarios.q_cas ~name:"qcr" ~quantum:40 ~n:2 ~script in
  Util.expect_ok "reads linearize" (Explore.explore ~preemption_bound:3 ~max_runs:500_000 s)

(* Wait-freedom at one level: at most 2 attempts per op when Q covers two
   attempts (the chain contract). *)
let test_two_attempt_bound () =
  let n = 3 in
  let config = Util.uni_config ~quantum:64 (List.init n (fun _ -> 1)) in
  let check_with policy_name policy =
    let obj = Q_cas.make "x" 0 in
    let bodies =
      Array.init n (fun pid () ->
          for k = 0 to 2 do
            Eff.invocation "cas" (fun () ->
                ignore
                  (Q_cas.cas obj ~who:pid ~expected:(100 * pid) ~desired:((100 * pid) + k)))
          done)
    in
    let r = Util.run ~config ~policy bodies in
    Util.checkb (policy_name ^ " finished") (Array.for_all Fun.id r.finished);
    Util.checkb
      (Printf.sprintf "%s: max attempts %d <= 2" policy_name (Q_cas.max_attempts obj))
      (Q_cas.max_attempts obj <= 2)
  in
  check_with "rr" (Policy.round_robin ());
  check_with "stagger" (Stagger.max_interleave ());
  check_with "random" (Policy.random ~seed:3)

(* Ablation: the "obvious" announce/validate/write construction is
   refuted by the model checker — the motivation for the chain design
   (DESIGN.md Substitution 2). *)
let test_naive_qcas_is_broken () =
  let n = 2 in
  let config = Util.uni_config ~quantum:6 (List.init n (fun _ -> 1)) in
  let make () =
    let obj = Q_cas_naive.make "nx" 0 in
    let hist = Hwf_check.Hist.create () in
    let programs =
      Array.init n (fun pid () ->
          Eff.invocation "cas" (fun () ->
              ignore
                (Hwf_check.Hist.wrap hist ~pid (Scenarios.Cas (0, pid + 1)) (fun () ->
                     `Bool (Q_cas_naive.cas obj ~who:pid ~expected:0 ~desired:(pid + 1)))));
          Eff.invocation "read" (fun () ->
              ignore
                (Hwf_check.Hist.wrap hist ~pid Scenarios.Rd (fun () ->
                     `Val (Q_cas_naive.read obj)))))
    in
    let check (r : Engine.result) =
      if not (Array.for_all Fun.id r.finished) then Error "unfinished"
      else
        Hwf_check.Lincheck.check_hist
          (Hwf_check.Lincheck.make_spec ~init:0 ~apply:(fun s op ->
               match op with
               | Scenarios.Cas (e, d) -> if s = e then (d, `Bool true) else (s, `Bool false)
               | Scenarios.Rd -> (s, `Val s)))
          hist
    in
    Explore.{ programs; check }
  in
  let o = Explore.explore ~max_runs:500_000 Explore.{ name = "naive"; config; make } in
  Util.expect_fail "naive q-cas must be refuted" o;
  (* ... while the chain-based one passes the same scenario shape. *)
  let script = [ [ Scenarios.Cas (0, 1); Scenarios.Rd ]; [ Scenarios.Cas (0, 2); Scenarios.Rd ] ] in
  Util.expect_ok "chain q-cas passes it"
    (Explore.explore ~preemption_bound:3 ~max_runs:500_000
       (Scenarios.q_cas ~name:"cq" ~quantum:64 ~n:2 ~script))

(* Random volume across priority levels: correctness contract is per
   level; reads may come from any level. Writers stay on one level. *)
let prop_qcas_random_volume =
  Util.qtest ~count:40 "qcas random schedules stay linearizable"
    QCheck2.Gen.(int_range 0 100_000)
    (fun seed ->
      let script = Scenarios.random_script ~seed ~n:4 ~ops_per:3 in
      let s = Scenarios.q_cas ~name:"qcv" ~quantum:60 ~n:4 ~script in
      (Explore.random_runs ~runs:25 ~seed s).counterexample = None)

(* Generic chain: an append-only log state machine. *)
let test_chain_custom_state_machine () =
  let config = Util.uni_config ~quantum:100 [ 1; 1 ] in
  let log = Chain.make ~name:"log" ~init:[] ~apply:(fun s x -> (x :: s, List.length s)) in
  let out = Array.make 2 (-1) in
  let bodies =
    Array.init 2 (fun pid () ->
        Eff.invocation "append" (fun () -> out.(pid) <- Chain.invoke log ~who:pid pid))
  in
  let r = Util.run ~config ~policy:(Policy.random ~seed:5) bodies in
  Util.checkb "finished" (Array.for_all Fun.id r.finished);
  Util.checki "two ops applied" 2 (Chain.ops_count log);
  let positions = List.sort compare (Array.to_list out) in
  Alcotest.(check (list int)) "distinct positions" [ 0; 1 ] positions;
  Util.checki "final length" 2 (List.length (Chain.peek_state log))

let test_chain_read_is_snapshot () =
  (* A read between two writes returns the intermediate state. *)
  let config = Util.uni_config ~quantum:100 [ 1 ] in
  let seen = ref (-1) in
  let bodies =
    [|
      (fun () ->
        Eff.invocation "ops" (fun () ->
            let c = Q_fai.make "c" 0 in
            ignore (Q_fai.fetch_and_increment c ~who:0);
            seen := Q_fai.read c;
            ignore (Q_fai.fetch_and_increment c ~who:0)));
    |]
  in
  ignore (Util.run ~config ~policy:Policy.first bodies);
  Util.checki "snapshot" 1 !seen

let () =
  Alcotest.run "chain"
    [
      ( "unit",
        [
          Alcotest.test_case "solo cas semantics" `Quick test_solo_semantics;
          Alcotest.test_case "fai sequence" `Quick test_qfai_sequence;
          Alcotest.test_case "custom state machine" `Quick test_chain_custom_state_machine;
          Alcotest.test_case "read snapshot" `Quick test_chain_read_is_snapshot;
        ] );
      ( "linearizability",
        [
          Alcotest.test_case "exhaustive 2x2" `Slow test_exhaustive_qcas;
          Alcotest.test_case "exhaustive 3x1" `Slow test_exhaustive_qcas_3;
          Alcotest.test_case "reads" `Slow test_reads_from_other_processes;
        ] );
      ( "wait-freedom",
        [ Alcotest.test_case "two-attempt bound" `Quick test_two_attempt_bound ] );
      ( "ablation",
        [ Alcotest.test_case "naive q-cas refuted" `Quick test_naive_qcas_is_broken ] );
      ("props", [ prop_qcas_random_volume ]);
    ]
