open Hwf_sim
open Hwf_adversary
open Hwf_workload

(* Theorem 1 (E3): the Fig. 3 algorithm is correct on hybrid uniprocessors
   once Q >= 8, and breakable below. *)

let built ~quantum ~pris =
  Scenarios.consensus ~name:"fig3" ~impl:Scenarios.Fig3 ~quantum
    ~layout:(List.map (fun p -> (0, p)) pris)

let test_exhaustive_2p_q8 () =
  let b = built ~quantum:8 ~pris:[ 1; 1 ] in
  let o = Explore.explore b.scenario in
  Util.expect_ok "2 procs Q=8" o;
  Util.checkb "exhaustive" o.exhaustive

let test_exhaustive_2p_mixed_priorities () =
  let b = built ~quantum:8 ~pris:[ 1; 2 ] in
  let o = Explore.explore b.scenario in
  Util.expect_ok "2 procs mixed" o;
  Util.checkb "exhaustive" o.exhaustive

let test_3p_same_priority () =
  let b = built ~quantum:8 ~pris:[ 1; 1; 1 ] in
  Util.expect_ok "3 procs same pri"
    (Explore.explore ~preemption_bound:4 ~max_runs:500_000 b.scenario)

let test_3p_three_levels () =
  let b = built ~quantum:8 ~pris:[ 1; 2; 3 ] in
  Util.expect_ok "3 procs 3 levels"
    (Explore.explore ~preemption_bound:4 ~max_runs:500_000 b.scenario)

let test_4p_banded () =
  let b = built ~quantum:8 ~pris:[ 1; 1; 2; 2 ] in
  Util.expect_ok "4 procs banded"
    (Explore.explore ~preemption_bound:3 ~max_runs:500_000 b.scenario)

(* The counterexample side: Q < 8 admits disagreement (Fig. 4 situation). *)
let test_q1_breaks () =
  let b = built ~quantum:1 ~pris:[ 1; 1 ] in
  Util.expect_fail "Q=1" (Explore.explore b.scenario)

let test_q2_breaks () =
  let b = built ~quantum:2 ~pris:[ 1; 1; 1 ] in
  Util.expect_fail "Q=2, 3 procs"
    (Explore.explore ~preemption_bound:4 ~max_runs:500_000 b.scenario)

let test_axiom2_off_breaks () =
  (* E11: dropping Axiom 2 restores Herlihy's hierarchy — the read/write
     algorithm must fail. *)
  let layout = [ (0, 1); (0, 1) ] in
  let config = Layout.to_config ~axiom2:false ~quantum:8 layout in
  let b = built ~quantum:8 ~pris:[ 1; 1 ] in
  let scenario = Explore.{ b.scenario with config } in
  Util.expect_fail "axiom2 off" (Explore.explore scenario)

let test_statement_count () =
  (* decide is exactly 8 statements, solo. *)
  let config = Util.uni_config ~quantum:8 [ 1 ] in
  let obj = Hwf_core.Uni_consensus.make "c" in
  let bodies =
    [| (fun () -> Eff.invocation "d" (fun () -> ignore (Hwf_core.Uni_consensus.decide obj 7))) |]
  in
  let r = Util.run ~config ~policy:Policy.first bodies in
  Util.checki "8 statements" 8 (Trace.statements r.trace)

let test_read_semantics () =
  let config = Util.uni_config ~quantum:8 [ 1 ] in
  let obj = Hwf_core.Uni_consensus.make "c" in
  let out = ref (None, None) in
  let bodies =
    [|
      (fun () ->
        Eff.invocation "d" (fun () ->
            let before = Hwf_core.Uni_consensus.read obj in
            let _ = Hwf_core.Uni_consensus.decide obj 5 in
            out := (before, Hwf_core.Uni_consensus.read obj)));
    |]
  in
  ignore (Util.run ~config ~policy:Policy.first bodies);
  Alcotest.(check (pair (option int) (option int))) "read" (None, Some 5) !out

(* Wait-freedom: every process decides within 8 of its own statements
   under any schedule (sampled). *)
let prop_own_steps_bounded =
  Util.qtest ~count:80 "each decide costs exactly 8 own statements"
    QCheck2.Gen.(int_range 0 10_000)
    (fun seed ->
      let b = built ~quantum:8 ~pris:[ 1; 1; 2 ] in
      let instance = b.scenario.Explore.make () in
      let r =
        Engine.run ~config:b.scenario.Explore.config ~policy:(Policy.random ~seed)
          instance.Explore.programs
      in
      Array.for_all Fun.id r.finished && Array.for_all (fun s -> s = 8) r.own_steps)

(* Validity under volume. *)
let prop_agreement_random_layouts =
  Util.qtest ~count:60 "agreement across random priority mixes"
    QCheck2.Gen.(tup2 (int_range 0 10_000) (int_range 2 5))
    (fun (seed, n) ->
      let st = Random.State.make [| seed |] in
      let pris = List.init n (fun _ -> 1 + Random.State.int st 3) in
      let b = built ~quantum:8 ~pris in
      let o = Explore.random_runs ~runs:30 ~seed b.scenario in
      o.counterexample = None)

let () =
  Alcotest.run "uni_consensus"
    [
      ( "theorem1",
        [
          Alcotest.test_case "exhaustive 2p Q=8" `Quick test_exhaustive_2p_q8;
          Alcotest.test_case "exhaustive mixed priorities" `Quick
            test_exhaustive_2p_mixed_priorities;
          Alcotest.test_case "3p same priority" `Slow test_3p_same_priority;
          Alcotest.test_case "3p three levels" `Quick test_3p_three_levels;
          Alcotest.test_case "4p banded" `Slow test_4p_banded;
          Alcotest.test_case "statement count" `Quick test_statement_count;
          Alcotest.test_case "read semantics" `Quick test_read_semantics;
        ] );
      ( "lower",
        [
          Alcotest.test_case "Q=1 breaks" `Quick test_q1_breaks;
          Alcotest.test_case "Q=2 breaks (3 procs)" `Slow test_q2_breaks;
          Alcotest.test_case "axiom2 off breaks" `Quick test_axiom2_off_breaks;
        ] );
      ("props", [ prop_own_steps_bounded; prop_agreement_random_layouts ]);
    ]
