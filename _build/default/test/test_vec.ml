open Hwf_sim

let test_empty () =
  let v = Vec.create () in
  Util.checki "length" 0 (Vec.length v);
  Alcotest.check Alcotest.(option int) "last" None (Vec.last v);
  Util.checkb "exists" (not (Vec.exists (fun _ -> true) v))

let test_push_get () =
  let v = Vec.create () in
  for i = 0 to 99 do
    Vec.push v (i * 2)
  done;
  Util.checki "length" 100 (Vec.length v);
  Util.checki "get 0" 0 (Vec.get v 0);
  Util.checki "get 99" 198 (Vec.get v 99);
  Alcotest.check Alcotest.(option int) "last" (Some 198) (Vec.last v)

let test_get_out_of_range () =
  let v = Vec.of_list [ 1; 2; 3 ] in
  Alcotest.check_raises "negative" (Invalid_argument "Vec.get") (fun () ->
      ignore (Vec.get v (-1)));
  Alcotest.check_raises "too big" (Invalid_argument "Vec.get") (fun () ->
      ignore (Vec.get v 3))

let test_iter_order () =
  let v = Vec.of_list [ 3; 1; 4; 1; 5 ] in
  let acc = ref [] in
  Vec.iter (fun x -> acc := x :: !acc) v;
  Alcotest.check Alcotest.(list int) "order" [ 3; 1; 4; 1; 5 ] (List.rev !acc)

let test_iteri () =
  let v = Vec.of_list [ 10; 20 ] in
  let acc = ref [] in
  Vec.iteri (fun i x -> acc := (i, x) :: !acc) v;
  Alcotest.check
    Alcotest.(list (pair int int))
    "indexed" [ (0, 10); (1, 20) ] (List.rev !acc)

let test_fold () =
  let v = Vec.of_list [ 1; 2; 3; 4 ] in
  Util.checki "sum" 10 (Vec.fold_left ( + ) 0 v)

let test_filter () =
  let v = Vec.of_list [ 1; 2; 3; 4; 5 ] in
  Alcotest.check Alcotest.(list int) "evens" [ 2; 4 ] (Vec.filter (fun x -> x mod 2 = 0) v)

let prop_roundtrip =
  Util.qtest "of_list/to_list roundtrip" QCheck2.Gen.(list int) (fun l ->
      Vec.to_list (Vec.of_list l) = l)

let prop_push_grows =
  Util.qtest "push grows length by one" QCheck2.Gen.(pair (list int) int) (fun (l, x) ->
      let v = Vec.of_list l in
      let before = Vec.length v in
      Vec.push v x;
      Vec.length v = before + 1 && Vec.get v before = x)

let prop_exists_matches_list =
  Util.qtest "exists agrees with List.exists" QCheck2.Gen.(list small_int) (fun l ->
      Vec.exists (fun x -> x mod 3 = 0) (Vec.of_list l)
      = List.exists (fun x -> x mod 3 = 0) l)

let () =
  Alcotest.run "vec"
    [
      ( "unit",
        [
          Alcotest.test_case "empty" `Quick test_empty;
          Alcotest.test_case "push/get" `Quick test_push_get;
          Alcotest.test_case "out of range" `Quick test_get_out_of_range;
          Alcotest.test_case "iter order" `Quick test_iter_order;
          Alcotest.test_case "iteri" `Quick test_iteri;
          Alcotest.test_case "fold" `Quick test_fold;
          Alcotest.test_case "filter" `Quick test_filter;
        ] );
      ("props", [ prop_roundtrip; prop_push_grows; prop_exists_matches_list ]);
    ]
