open Hwf_sim
open Hwf_objects

(* Run a single-process body on a trivial machine and return its value. *)
let solo body =
  let config = Util.uni_config ~quantum:100 [ 1 ] in
  let out = ref None in
  let bodies = [| (fun () -> Eff.invocation "op" (fun () -> out := Some (body ()))) |] in
  ignore (Util.run ~config ~policy:Policy.first bodies);
  Option.get !out

let test_cons_first_wins () =
  let v =
    solo (fun () ->
        let o = Cons_obj.make ~consensus_number:3 "o" in
        let a = Cons_obj.propose o 7 in
        let b = Cons_obj.propose o 9 in
        (a, b))
  in
  Alcotest.(check (pair (option int) (option int))) "first wins" (Some 7, Some 7) v

let test_cons_exhaustion () =
  let v =
    solo (fun () ->
        let o = Cons_obj.make ~consensus_number:2 "o" in
        let a = Cons_obj.propose o 1 in
        let b = Cons_obj.propose o 2 in
        let c = Cons_obj.propose o 3 in
        (a, b, c, Cons_obj.exhausted o))
  in
  let a, b, c, ex = v in
  Alcotest.(check (option int)) "1st" (Some 1) a;
  Alcotest.(check (option int)) "2nd" (Some 1) b;
  Alcotest.(check (option int)) "3rd returns bottom" None c;
  Util.checkb "exhausted" ex

let test_cons_read_free () =
  let v =
    solo (fun () ->
        let o = Cons_obj.make ~consensus_number:1 "o" in
        let r0 = Cons_obj.read o in
        let _ = Cons_obj.propose o 5 in
        let r1 = Cons_obj.read o in
        (r0, r1, Cons_obj.invocations o))
  in
  let r0, r1, inv = v in
  Alcotest.(check (option int)) "before" None r0;
  Alcotest.(check (option int)) "after" (Some 5) r1;
  Util.checki "reads don't count" 1 inv

let test_cons_infinite_default () =
  let v =
    solo (fun () ->
        let o = Cons_obj.make "o" in
        for i = 0 to 99 do
          ignore (Cons_obj.propose o i)
        done;
        Cons_obj.propose o 123)
  in
  Alcotest.(check (option int)) "never exhausted" (Some 0) v

let test_cons_bad_number () =
  Alcotest.check_raises "C >= 1"
    (Invalid_argument "Cons_obj.make: consensus_number < 1") (fun () ->
      ignore (Cons_obj.make ~consensus_number:0 "o"))

let test_hw_cas () =
  let v =
    solo (fun () ->
        let x = Hw_atomic.make "x" 10 in
        let ok = Hw_atomic.cas x ~expected:10 ~desired:20 in
        let bad = Hw_atomic.cas x ~expected:10 ~desired:30 in
        (ok, bad, Hw_atomic.read x))
  in
  Alcotest.(check (triple bool bool int)) "cas semantics" (true, false, 20) v

let test_hw_faa () =
  let v =
    solo (fun () ->
        let x = Hw_atomic.make "x" 5 in
        let a = Hw_atomic.fetch_and_add x 3 in
        let b = Hw_atomic.fetch_and_add x (-1) in
        (a, b, Hw_atomic.peek x))
  in
  Alcotest.(check (triple int int int)) "faa" (5, 8, 7) v

let test_hw_write () =
  let v =
    solo (fun () ->
        let x = Hw_atomic.make "x" 0 in
        Hw_atomic.write x 9;
        Hw_atomic.read x)
  in
  Util.checki "write/read" 9 v

(* Concurrent: hardware consensus object decides exactly one value under
   any schedule. *)
let prop_cons_agreement =
  Util.qtest ~count:50 "hw consensus agrees under random schedules"
    QCheck2.Gen.(int_range 0 5_000)
    (fun seed ->
      let config = Util.uni_config ~quantum:1 [ 1; 1; 1 ] in
      let o = Cons_obj.make ~consensus_number:3 "o" in
      let outs = Array.make 3 None in
      let bodies =
        Array.init 3 (fun pid () ->
            Eff.invocation "p" (fun () -> outs.(pid) <- Cons_obj.propose o pid))
      in
      let r = Engine.run ~config ~policy:(Policy.random ~seed) bodies in
      Array.for_all Fun.id r.finished
      &&
      match Array.to_list outs |> List.filter_map Fun.id with
      | v :: rest -> List.for_all (( = ) v) rest && v >= 0 && v < 3
      | [] -> false)

let () =
  Alcotest.run "objects"
    [
      ( "cons_obj",
        [
          Alcotest.test_case "first wins" `Quick test_cons_first_wins;
          Alcotest.test_case "exhaustion" `Quick test_cons_exhaustion;
          Alcotest.test_case "read free" `Quick test_cons_read_free;
          Alcotest.test_case "infinite default" `Quick test_cons_infinite_default;
          Alcotest.test_case "bad consensus number" `Quick test_cons_bad_number;
        ] );
      ( "hw_atomic",
        [
          Alcotest.test_case "cas" `Quick test_hw_cas;
          Alcotest.test_case "fetch-and-add" `Quick test_hw_faa;
          Alcotest.test_case "write" `Quick test_hw_write;
        ] );
      ("props", [ prop_cons_agreement ]);
    ]
