open Hwf_sim
open Hwf_core
open Hwf_workload

(* Fig. 9 / Sec. 5 (E8): constant quantum suffices under fair quantum
   allocation. *)

let build ~quantum ~layout =
  let n = List.length layout in
  let config = Layout.to_config ~quantum layout in
  let obj = Fair_consensus.make ~config ~name:"fc" ~consensus_number:2 in
  let outputs = Array.make n None in
  let programs =
    Array.init n (fun pid () ->
        Eff.invocation "decide" (fun () ->
            outputs.(pid) <- Some (Fair_consensus.decide obj ~pid (100 + pid))))
  in
  (config, obj, outputs, programs)

let agree outputs =
  match Array.to_list outputs |> List.filter_map Fun.id with
  | [] -> false
  | v :: rest -> List.for_all (( = ) v) rest

let test_round_robin_terminates () =
  let layout = Layout.banded ~processors:2 ~levels:2 ~per_level:2 in
  let config, obj, outputs, programs = build ~quantum:3000 ~layout in
  let r = Engine.run ~step_limit:10_000_000 ~config ~policy:(Policy.round_robin ()) programs in
  Util.checkb "finished" (Array.for_all Fun.id r.finished);
  Util.checkb "well-formed" (Wellformed.is_well_formed r.trace);
  Util.checkb "agreement" (agree outputs);
  Util.checkb "some processes lost the election and spun"
    (Fair_consensus.elections_lost obj > 0)

let test_random_is_fair_enough () =
  (* Random scheduling is fair with probability 1; sampled runs finish. *)
  for seed = 0 to 9 do
    let layout = Layout.uniform ~processors:2 ~per_processor:2 in
    let config, _obj, outputs, programs = build ~quantum:3000 ~layout in
    let r = Engine.run ~step_limit:10_000_000 ~config ~policy:(Policy.random ~seed) programs in
    Util.checkb "finished" (Array.for_all Fun.id r.finished);
    Util.checkb "agreement" (agree outputs)
  done

let test_unfair_starves_losers () =
  (* The contrast motivating Fig. 7: an unfair scheduler can starve an
     election loser forever; the run hits the step limit with the loser
     spinning. We bias scheduling to the loser to exhibit livelock. *)
  let layout = Layout.uniform ~processors:1 ~per_processor:2 in
  let config, _obj, _outputs, programs = build ~quantum:3000 ~layout in
  (* Let p0 win the election, then starve p0 and run only p1. *)
  let phase = ref `Warmup in
  let policy =
    Policy.of_fun "unfair" (fun v ->
        (match !phase with
        | `Warmup when v.Policy.step > 40 -> phase := `Starve
        | _ -> ());
        let prefer pid = if List.mem pid v.Policy.runnable then Some pid else None in
        match !phase with
        | `Warmup -> (
          match prefer 0 with Some p -> Some p | None -> prefer 1)
        | `Starve -> (
          match prefer 1 with Some p -> Some p | None -> prefer 0))
  in
  let r = Engine.run ~step_limit:20_000 ~config ~policy programs in
  Util.checkb "hits the step limit (loser spins)" (r.stop = Engine.Step_limit)

let test_quantum_independence () =
  (* The point of Fig. 9: a small constant quantum works under fairness
     (here the election itself needs Q >= 8; the global phase tolerates
     any Q because each level hosts one process per processor). *)
  let layout = Layout.uniform ~processors:2 ~per_processor:2 in
  List.iter
    (fun quantum ->
      let config, _obj, outputs, programs = build ~quantum ~layout in
      let r =
        Engine.run ~step_limit:10_000_000 ~config ~policy:(Policy.round_robin ()) programs
      in
      Util.checkb (Printf.sprintf "finished at Q=%d" quantum)
        (Array.for_all Fun.id r.finished);
      Util.checkb
        (Printf.sprintf "agreement at Q=%d" quantum)
        (agree outputs))
    [ 64; 256; 3000 ]

let () =
  Alcotest.run "fair_consensus"
    [
      ( "fig9",
        [
          Alcotest.test_case "round robin terminates" `Quick test_round_robin_terminates;
          Alcotest.test_case "random fair" `Quick test_random_is_fair_enough;
          Alcotest.test_case "unfair starves" `Quick test_unfair_starves_losers;
          Alcotest.test_case "small constant quantum" `Quick test_quantum_independence;
        ] );
    ]
