(* Shared helpers for the test suites. *)
open Hwf_sim

let check = Alcotest.check
let checkb msg b = Alcotest.check Alcotest.bool msg true b
let checki = Alcotest.check Alcotest.int

let uni_procs pris =
  List.mapi (fun i pri -> Proc.make ~pid:i ~processor:0 ~priority:pri ()) pris

let uni_config ?axiom2 ~quantum pris =
  let procs = uni_procs pris in
  let levels = List.fold_left max 1 pris in
  Config.uniprocessor ?axiom2 ~quantum ~levels procs

(* Run a set of bodies and assert the trace is well-formed. *)
let run ?(step_limit = 1_000_000) ~config ~policy bodies =
  let r = Engine.run ~step_limit ~config ~policy bodies in
  (match Wellformed.check r.trace with
  | [] -> ()
  | v :: _ -> Alcotest.failf "ill-formed trace: %a" Wellformed.pp_violation v);
  r

let expect_ok name (o : Hwf_adversary.Explore.outcome) =
  match o.counterexample with
  | None -> ()
  | Some c ->
    Alcotest.failf "%s: counterexample after %d runs: %s@.%s" name o.runs c.message
      (Render.lanes c.trace)

let expect_fail name (o : Hwf_adversary.Explore.outcome) =
  match o.counterexample with
  | Some _ -> ()
  | None -> Alcotest.failf "%s: expected a counterexample, none in %d runs" name o.runs

let qtest ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~name ~count gen prop)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0
