open Hwf_sim
open Hwf_core
open Hwf_adversary
open Hwf_workload

(* Fig. 5 / Theorem 2 (E4): linearizability of the hybrid uniprocessor
   C&S under exhaustive (context-bounded) and random scheduling. *)

let scen ~quantum ~pris ~script =
  Scenarios.hybrid_cas ~name:"h" ~quantum
    ~layout:(List.map (fun p -> (0, p)) pris)
    ~script

let q = 400 (* generous: covers the protected sequences incl. chain lag *)

let test_solo () =
  let config = Util.uni_config ~quantum:q [ 1; 2 ] in
  let obj = Hybrid_cas.make ~config ~name:"o" ~init:0 in
  let out = ref [] in
  let bodies =
    [|
      (fun () ->
        Eff.invocation "ops" (fun () ->
            out := `B (Hybrid_cas.cas obj ~pid:0 ~expected:0 ~desired:3) :: !out;
            out := `B (Hybrid_cas.cas obj ~pid:0 ~expected:0 ~desired:4) :: !out;
            out := `I (Hybrid_cas.read obj ~pid:0) :: !out;
            out := `B (Hybrid_cas.cas obj ~pid:0 ~expected:3 ~desired:3) :: !out;
            out := `I (Hybrid_cas.read obj ~pid:0) :: !out));
      (fun () -> ());
    |]
  in
  ignore (Util.run ~config ~policy:Policy.first bodies);
  (match List.rev !out with
  | [ `B true; `B false; `I 3; `B true (* trivial *); `I 3 ] -> ()
  | _ -> Alcotest.fail "unexpected results");
  Util.checki "one append (trivial C&S does not append)" 1 (Hybrid_cas.appends obj)

let test_exhaustive_same_priority () =
  let s =
    scen ~quantum:q ~pris:[ 1; 1 ]
      ~script:[ [ Scenarios.Cas (0, 1); Scenarios.Cas (1, 2) ]; [ Scenarios.Cas (0, 5); Scenarios.Rd ] ]
  in
  Util.expect_ok "2p same pri" (Explore.explore ~preemption_bound:2 ~max_runs:500_000 s)

let test_exhaustive_two_levels () =
  let s =
    scen ~quantum:q ~pris:[ 1; 2 ]
      ~script:[ [ Scenarios.Cas (0, 1); Scenarios.Rd ]; [ Scenarios.Cas (0, 5); Scenarios.Cas (5, 6) ] ]
  in
  Util.expect_ok "2p two levels" (Explore.explore ~preemption_bound:2 ~max_runs:500_000 s)

let test_exhaustive_three_levels () =
  let s =
    scen ~quantum:q ~pris:[ 1; 2; 3 ]
      ~script:[ [ Scenarios.Cas (0, 1) ]; [ Scenarios.Cas (0, 5); Scenarios.Rd ]; [ Scenarios.Cas (5, 7) ] ]
  in
  Util.expect_ok "3 levels" (Explore.explore ~preemption_bound:2 ~max_runs:2_000_000 s)

let test_reader_heavy () =
  let s =
    scen ~quantum:q ~pris:[ 1; 1; 2 ]
      ~script:
        [ [ Scenarios.Rd; Scenarios.Rd ]; [ Scenarios.Cas (0, 2); Scenarios.Rd ]; [ Scenarios.Cas (0, 9); Scenarios.Cas (9, 10) ] ]
  in
  Util.expect_ok "reader heavy" (Explore.explore ~preemption_bound:2 ~max_runs:2_000_000 s)

(* Tag reuse: with N processes the tag space is 4N+2 per process and the
   selection rule (lines 8-10) must keep live cells from being reused.
   Long scripts force every process through several tag-space cycles. *)
let test_tag_reuse_stress () =
  let n = 2 in
  (* 2 procs, 15 ops each: each process cycles its 10-tag space 1.5x *)
  let script =
    List.init n (fun pid ->
        List.init 15 (fun k ->
            if k mod 3 = 2 then Scenarios.Rd
            else if k = 0 then Scenarios.Cas (0, (pid * 100) + 1)
            else Scenarios.Cas ((pid * 100) + k, (pid * 100) + k + 1)))
  in
  let s = scen ~quantum:q ~pris:[ 1; 1 ] ~script in
  Util.expect_ok "tag reuse random"
    (Explore.random_runs ~runs:150 ~step_limit:2_000_000 ~seed:41 s);
  Util.expect_ok "tag reuse pb=1"
    (Explore.explore ~preemption_bound:1 ~max_runs:300_000 ~step_limit:2_000_000 s)

let test_deeper_context_bound () =
  (* A pb=3 pass over the same-priority scenario: three paid preemptions
     cover every combination of "one preemption per protected sequence"
     the correctness argument allows, plus one extra. Capped (not
     exhaustive) to keep the suite's runtime bounded. *)
  let s =
    scen ~quantum:q ~pris:[ 1; 1 ]
      ~script:[ [ Scenarios.Cas (0, 1) ]; [ Scenarios.Cas (0, 5); Scenarios.Rd ] ]
  in
  Util.expect_ok "pb=3 deep"
    (Explore.explore ~preemption_bound:3 ~max_runs:60_000 ~step_limit:400_000 s)

let test_contended_mix () =
  (* High-contention generated workload across three levels. *)
  let pris = [ 1; 1; 2; 3 ] in
  let script =
    Hwf_workload.Opgen.cas_mix ~seed:9 ~n:4 ~ops_per:3 ~read_pct:30 ~contended_pct:60
  in
  let s = scen ~quantum:q ~pris ~script in
  Util.expect_ok "contended mix"
    (Explore.random_runs ~runs:60 ~step_limit:2_000_000 ~seed:42 s)

let prop_random_mixed =
  Util.qtest ~count:25 "random scripts, random priorities, random schedules"
    QCheck2.Gen.(int_range 0 100_000)
    (fun seed ->
      let st = Random.State.make [| seed; 77 |] in
      let n = 3 + Random.State.int st 2 in
      let pris = List.init n (fun _ -> 1 + Random.State.int st 3) in
      let script = Scenarios.random_script ~seed ~n ~ops_per:2 in
      let s = scen ~quantum:q ~pris ~script in
      (Explore.random_runs ~runs:20 ~seed ~step_limit:400_000 s).counterexample = None)

(* O(V) scan: per-operation own statements grow linearly in V, not with N
   (E4b quantifies; here we sanity-check monotone, bounded growth). *)
let test_scan_cost_grows_with_v () =
  (* The O(V) cost shows when the list head belongs to a high level: a
     priority-V process appends first, then a priority-1 process must
     scan past V-1 stale head variables to find it. *)
  let cost v =
    let pris = [ 1; v ] in
    let config = Util.uni_config ~quantum:q pris in
    let obj = Hybrid_cas.make ~config ~name:"o" ~init:0 in
    let steps_p0 = ref 0 in
    let bodies =
      [|
        (fun () ->
          Eff.invocation "low" (fun () ->
              let t0 = Eff.now () in
              ignore (Hybrid_cas.cas obj ~pid:0 ~expected:1 ~desired:2);
              steps_p0 := Eff.now () - t0));
        (fun () ->
          Eff.invocation "high" (fun () ->
              ignore (Hybrid_cas.cas obj ~pid:1 ~expected:0 ~desired:1)));
      |]
    in
    (* run the high-priority process to completion first *)
    let policy = Policy.highest_pid in
    let r = Util.run ~config ~policy bodies in
    Util.checkb "finished" (Array.for_all Fun.id r.finished);
    !steps_p0
  in
  let c2 = cost 2 and c5 = cost 5 and c8 = cost 8 in
  Util.checkb (Printf.sprintf "V=5 (%d) costs more than V=2 (%d)" c5 c2) (c5 > c2);
  Util.checkb (Printf.sprintf "V=8 (%d) costs more than V=5 (%d)" c8 c5) (c8 > c5);
  (* linearity: the per-level increment is roughly constant *)
  let d1 = (c5 - c2) / 3 and d2 = (c8 - c5) / 3 in
  Util.checkb
    (Printf.sprintf "per-level cost stable (%d vs %d)" d1 d2)
    (abs (d1 - d2) <= max 4 (d1 / 2))

let test_no_preemption_cost_independent_of_n () =
  (* Solo op cost must not grow with the number of registered processes
     (it is O(V), not O(N)). *)
  let cost n =
    let pris = List.init n (fun _ -> 1) in
    let config = Util.uni_config ~quantum:q pris in
    let obj = Hybrid_cas.make ~config ~name:"o" ~init:0 in
    let bodies =
      Array.init n (fun pid () ->
          if pid = 0 then
            Eff.invocation "cas" (fun () ->
                ignore (Hybrid_cas.cas obj ~pid ~expected:0 ~desired:1))
          else ())
    in
    let r = Util.run ~config ~policy:Policy.first bodies in
    r.own_steps.(0)
  in
  Util.checki "cost at N=2 equals cost at N=8" (cost 2) (cost 8)

let () =
  Alcotest.run "hybrid_cas"
    [
      ("unit", [ Alcotest.test_case "solo semantics" `Quick test_solo ]);
      ( "linearizability",
        [
          Alcotest.test_case "exhaustive same priority" `Slow test_exhaustive_same_priority;
          Alcotest.test_case "exhaustive two levels" `Slow test_exhaustive_two_levels;
          Alcotest.test_case "exhaustive three levels" `Slow test_exhaustive_three_levels;
          Alcotest.test_case "reader heavy" `Slow test_reader_heavy;
          Alcotest.test_case "tag reuse stress" `Slow test_tag_reuse_stress;
          Alcotest.test_case "deeper context bound" `Slow test_deeper_context_bound;
          Alcotest.test_case "contended mix" `Quick test_contended_mix;
        ] );
      ( "complexity",
        [
          Alcotest.test_case "O(V) scan" `Quick test_scan_cost_grows_with_v;
          Alcotest.test_case "independent of N" `Quick test_no_preemption_cost_independent_of_n;
        ] );
      ("props", [ prop_random_mixed ]);
    ]
