open Hwf_sim
open Hwf_adversary
open Hwf_workload

(* The time model (Table 1's Tmax/Tmin structure): statement costs are
   adversary-chosen within [tmin..tmax] and the quantum protects Q time
   units. *)

let slow_cost _view _pid _op = max_int (* clamped to tmax *)

let test_default_cost_is_one () =
  let config = Util.uni_config ~quantum:8 [ 1 ] in
  let bodies = [| (fun () -> Eff.invocation "w" (fun () -> Eff.local "a"; Eff.local "b")) |] in
  let r = Util.run ~config ~policy:Policy.first bodies in
  Util.checki "time = statements" (Trace.statements r.trace) (Trace.time r.trace)

let test_cost_clamped () =
  let config =
    Config.uniprocessor ~tmin:2 ~tmax:5 ~quantum:20 ~levels:1 (Util.uni_procs [ 1 ])
  in
  let bodies = [| (fun () -> Eff.invocation "w" (fun () -> Eff.local "a"; Eff.local "b")) |] in
  let r = Engine.run ~cost:slow_cost ~config ~policy:Policy.first bodies in
  Util.checki "clamped to tmax" 10 (Trace.time r.trace);
  let r' = Engine.run ~cost:(fun _ _ _ -> 0) ~config ~policy:Policy.first bodies in
  Util.checki "clamped to tmin" 4 (Trace.time r'.trace)

let test_config_validates_bounds () =
  Alcotest.check_raises "tmin >= 1" (Invalid_argument "Config.make: need 1 <= tmin <= tmax")
    (fun () ->
      ignore
        (Config.uniprocessor ~tmin:0 ~tmax:1 ~quantum:1 ~levels:1 (Util.uni_procs [ 1 ])));
  Alcotest.check_raises "tmax >= tmin"
    (Invalid_argument "Config.make: need 1 <= tmin <= tmax") (fun () ->
      ignore
        (Config.uniprocessor ~tmin:3 ~tmax:2 ~quantum:1 ~levels:1 (Util.uni_procs [ 1 ])))

(* Fig. 3 under slow statements: a time quantum of 8 protects only
   ceil(8/tmax) statements, so with tmax = 4 the algorithm must break;
   scaling the quantum by tmax restores exhaustive safety. This is the
   c*Tmax dependence of Table 1's middle column. *)
let fig3_scenario ~tmin ~tmax ~quantum =
  let layout = [ (0, 1); (0, 1) ] in
  let b = Scenarios.consensus ~name:"f3t" ~impl:Scenarios.Fig3 ~quantum ~layout in
  let config = Layout.to_config ~quantum layout in
  let config =
    Config.uniprocessor ~tmin ~tmax ~quantum ~levels:config.Config.levels
      (Array.to_list config.Config.procs)
  in
  Explore.{ b.scenario with config }

(* Explore with an adversarial cost: replays need determinism, so cost
   depends only on the statement (always tmax). *)
let explore_slow scenario =
  let runs = ref 0 in
  let exhaustive = ref true in
  let failure = ref None in
  let rec loop prefix =
    if !runs >= 300_000 then exhaustive := false
    else begin
      incr runs;
      let instance = scenario.Explore.make () in
      (* scripted replay of the prefix, then first-runnable *)
      let depth = ref 0 in
      let slots = ref [] in
      let choose (v : Policy.view) =
        let d = !depth in
        incr depth;
        let idx = if d < Array.length prefix then prefix.(d) else 0 in
        let idx = if idx < List.length v.runnable then idx else 0 in
        slots := (idx, List.length v.runnable) :: !slots;
        Some (List.nth v.runnable idx)
      in
      let r =
        Engine.run ~step_limit:50_000 ~cost:slow_cost ~config:scenario.Explore.config
          ~policy:(Policy.of_fun "slowx" choose) instance.Explore.programs
      in
      (match Wellformed.check r.trace with
      | v :: _ -> Alcotest.failf "ill-formed: %a" Wellformed.pp_violation v
      | [] -> ());
      match instance.Explore.check r with
      | Error m -> failure := Some m
      | Ok () -> (
        (* backtrack *)
        let slots = Array.of_list (List.rev !slots) in
        let rec bt i =
          if i < 0 then None
          else
            let idx, n = slots.(i) in
            if idx + 1 < n then Some i else bt (i - 1)
        in
        match bt (Array.length slots - 1) with
        | None -> ()
        | Some i ->
          let prefix' = Array.init (i + 1) (fun j -> fst slots.(j)) in
          prefix'.(i) <- fst slots.(i) + 1;
          loop prefix')
    end
  in
  loop [||];
  (!runs, !failure)

let test_tmax_breaks_fig3 () =
  let s = fig3_scenario ~tmin:1 ~tmax:4 ~quantum:8 in
  let _, failure = explore_slow s in
  match failure with
  | Some _ -> ()
  | None -> Alcotest.fail "expected a violation with slow statements at Q=8"

let test_scaled_quantum_restores_safety () =
  let s = fig3_scenario ~tmin:1 ~tmax:4 ~quantum:(8 * 4) in
  let runs, failure = explore_slow s in
  (match failure with
  | None -> ()
  | Some m -> Alcotest.failf "violated at Q=8*Tmax: %s" m);
  Util.checkb "searched some schedules" (runs > 10)

let test_wellformed_accepts_time_guarantees () =
  (* Build a trace where p0 is preempted once and then runs statements
     worth exactly Q time: legal. One more foreign statement inside the
     protected window: illegal. *)
  let config =
    Config.uniprocessor ~tmin:1 ~tmax:4 ~quantum:8 ~levels:1 (Util.uni_procs [ 1; 1 ])
  in
  let stmt t idx pid cost = Trace.add t (Trace.Stmt { idx; pid; op = Op.local "s"; inv = 0; cost }) in
  let t = Trace.create config in
  Trace.add t (Trace.Inv_begin { pid = 0; inv = 0; label = "a" });
  stmt t 0 0 1;
  Trace.add t (Trace.Inv_begin { pid = 1; inv = 0; label = "b" });
  stmt t 1 1 1 (* first preemption of p0 *);
  stmt t 2 0 4;
  stmt t 3 0 4 (* 8 time units consumed: guarantee exhausted *);
  stmt t 4 1 1 (* now legal *);
  Util.checkb "time-exact guarantee accepted" (Wellformed.is_well_formed t);
  let t' = Trace.create config in
  Trace.add t' (Trace.Inv_begin { pid = 0; inv = 0; label = "a" });
  stmt t' 0 0 1;
  Trace.add t' (Trace.Inv_begin { pid = 1; inv = 0; label = "b" });
  stmt t' 1 1 1;
  stmt t' 2 0 4 (* only 4 of 8 time units *);
  stmt t' 3 1 1 (* violates the remaining guarantee *);
  Util.checkb "early same-level statement rejected" (not (Wellformed.is_well_formed t'))

(* Property: under random cost functions the engine's traces remain
   well-formed (the time-based guarantee accounting of engine and
   checker agree). *)
let prop_random_costs_well_formed =
  Util.qtest ~count:60 "random costs keep traces well-formed"
    QCheck2.Gen.(tup3 (int_range 0 10_000) (int_range 1 5) (int_range 0 20))
    (fun (seed, tmax, quantum) ->
      let config =
        Config.uniprocessor ~tmin:1 ~tmax ~quantum ~levels:2
          (Util.uni_procs [ 1; 1; 2 ])
      in
      let x = Shared.make "x" 0 in
      let bodies =
        Array.init 3 (fun _ () ->
            for _ = 1 to 2 do
              Eff.invocation "op" (fun () ->
                  let v = Shared.read x in
                  Eff.local "l";
                  Shared.write x (v + 1))
            done)
      in
      let st = Random.State.make [| seed; 0x7e |] in
      let cost _ _ _ = 1 + Random.State.int st (max 1 tmax) in
      let r =
        Engine.run ~cost ~config ~policy:(Policy.random ~seed:(seed + 1)) bodies
      in
      Array.for_all Fun.id r.finished
      && Wellformed.is_well_formed r.trace
      && Trace.time r.trace >= Trace.statements r.trace)

let () =
  Alcotest.run "time"
    [
      ( "model",
        [
          Alcotest.test_case "default cost" `Quick test_default_cost_is_one;
          Alcotest.test_case "clamping" `Quick test_cost_clamped;
          Alcotest.test_case "config validation" `Quick test_config_validates_bounds;
          Alcotest.test_case "wellformed time guarantees" `Quick
            test_wellformed_accepts_time_guarantees;
        ] );
      ( "table1-scaling",
        [
          Alcotest.test_case "tmax breaks Fig 3 at Q=8" `Quick test_tmax_breaks_fig3;
          Alcotest.test_case "Q scaled by tmax is safe" `Quick
            test_scaled_quantum_restores_safety;
        ] );
      ("props", [ prop_random_costs_well_formed ]);
    ]
