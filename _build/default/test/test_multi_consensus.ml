open Hwf_core
open Hwf_adversary
open Hwf_workload

(* Fig. 7 / Theorem 4 (E5, E7): agreement, validity, wait-freedom and the
   access-failure accounting of Lemmas 2/3. *)

let generous_q = 3000

let mc ~quantum ~consensus_number ~layout =
  Scenarios.consensus ~name:"mc" ~impl:(Scenarios.Fig7 { consensus_number }) ~quantum
    ~layout

let test_make_validation () =
  let layout = Layout.uniform ~processors:3 ~per_processor:1 in
  let config = Layout.to_config ~quantum:10 layout in
  Alcotest.check_raises "C >= P"
    (Invalid_argument "Multi_consensus.make: consensus_number < processors") (fun () ->
      ignore (Multi_consensus.make ~config ~name:"m" ~consensus_number:2 ()))

let test_level_constant () =
  let layout = Layout.uniform ~processors:2 ~per_processor:3 in
  let config = Layout.to_config ~quantum:10 layout in
  let obj = Multi_consensus.make ~config ~name:"m" ~consensus_number:2 () in
  Util.checki "K" 0 (Multi_consensus.k obj);
  Util.checki "L" (Bounds.levels ~m:3 ~p:2 ~k:0) (Multi_consensus.levels obj);
  let obj2 = Multi_consensus.make ~config ~name:"m2" ~consensus_number:4 () in
  Util.checki "K=P at C=2P" 2 (Multi_consensus.k obj2);
  let obj3 = Multi_consensus.make ~config ~name:"m3" ~consensus_number:40 () in
  Util.checki "K capped at P" 2 (Multi_consensus.k obj3)

let random_ok ?(runs = 60) ~quantum ~consensus_number ~layout ~seed () =
  let b = mc ~quantum ~consensus_number ~layout in
  let o = Explore.random_runs ~runs ~step_limit:4_000_000 ~seed b.scenario in
  Util.expect_ok "mc random" o

let test_p2_c2_uniform () =
  random_ok ~quantum:generous_q ~consensus_number:2
    ~layout:(Layout.uniform ~processors:2 ~per_processor:2)
    ~seed:21 ()

let test_p2_c3_uniform () =
  random_ok ~quantum:generous_q ~consensus_number:3
    ~layout:(Layout.uniform ~processors:2 ~per_processor:2)
    ~seed:22 ()

let test_p2_c4_banded () =
  random_ok ~quantum:generous_q ~consensus_number:4
    ~layout:(Layout.banded ~processors:2 ~levels:2 ~per_level:1)
    ~seed:23 ()

let test_p3_c3 () =
  random_ok ~runs:25 ~quantum:6000 ~consensus_number:3
    ~layout:(Layout.uniform ~processors:3 ~per_processor:2)
    ~seed:24 ()

let test_p3_c5_mixed () =
  random_ok ~runs:25 ~quantum:6000 ~consensus_number:5
    ~layout:(Layout.banded ~processors:3 ~levels:2 ~per_level:1)
    ~seed:25 ()

let test_pure_priority_mode () =
  (* E12: the same algorithm under a pure-priority layout. *)
  random_ok ~quantum:generous_q ~consensus_number:2
    ~layout:(Layout.distinct_priorities ~processors:2 ~per_processor:3)
    ~seed:26 ()

let test_single_processor_degenerate () =
  (* P = 1: consensus from 1-consensus objects on one processor. *)
  random_ok ~quantum:generous_q ~consensus_number:1
    ~layout:(Layout.uniform ~processors:1 ~per_processor:3)
    ~seed:27 ()

let test_exhaustive_two_processes () =
  (* One process per processor, one context switch allowed: fully
     exhaustive (824 schedules). A pb=2 pass is also exhaustive at
     ~339k schedules and is recorded in EXPERIMENTS.md (E5); it is too
     slow for the suite. *)
  let b = mc ~quantum:generous_q ~consensus_number:2 ~layout:[ (0, 1); (1, 1) ] in
  let o =
    Explore.explore ~preemption_bound:1 ~max_runs:5_000 ~step_limit:2_000_000 b.scenario
  in
  Util.expect_ok "pb=1 exhaustive" o;
  Util.checkb "exhaustive" o.exhaustive

let test_explore_small () =
  let b =
    mc ~quantum:generous_q ~consensus_number:2
      ~layout:[ (0, 1); (1, 1); (1, 1) ]
  in
  Util.expect_ok "pb=2 exploration"
    (Explore.explore ~preemption_bound:2 ~max_runs:25_000 ~step_limit:3_000_000
       b.scenario)

(* Lemma 2 / Lemma 3 accounting under adversarial pressure (E7). *)
let test_af_bounds_under_stagger () =
  let layout = Layout.uniform ~processors:2 ~per_processor:3 in
  let m = 3 and p = 2 in
  for seed = 0 to 9 do
    let s =
      Scenarios.run_multi ~quantum:generous_q ~consensus_number:2 ~layout
        ~policy:(Stagger.exhaustion_pressure ~seed ~var_prefix:"mc.Cons" ())
        ()
    in
    Util.checkb "finished" s.finished;
    Util.checkb "well-formed" s.well_formed;
    Util.checkb "agreed" s.agreed;
    Util.checki "no exhaustion at generous quantum" 0 s.exhausted;
    let af = List.length s.access_failures in
    let k = 0 in
    let bound =
      Bounds.af_diff_bound ~m
      + Bounds.af_same_bound ~m ~p ~k ~l:(Bounds.levels ~m ~p ~k)
    in
    Util.checkb
      (Printf.sprintf "AF %d within Lemma 3 bound %d" af bound)
      (af <= bound);
    (match s.deciding_level with
    | Some l -> Util.checkb "deciding level within L" (l <= s.levels)
    | None -> Alcotest.fail "no deciding level at generous quantum")
  done

let test_statements_polynomial () =
  (* E9: per-process work scales with L (polynomial), not exponentially. *)
  let steps p =
    let layout = Layout.uniform ~processors:p ~per_processor:1 in
    let s =
      Scenarios.run_multi ~step_limit:20_000_000 ~quantum:20_000 ~consensus_number:p
        ~layout
        ~policy:(Hwf_sim.Policy.round_robin ())
        ()
    in
    Util.checkb "finished" s.finished;
    s.max_own_steps
  in
  let s2 = steps 2 and s4 = steps 4 in
  (* L(P, K=0, M=1) = (1+P) + P^2 + 1; statement growth should stay within
     a polynomial factor, far below 2^P blowup. *)
  Util.checkb
    (Printf.sprintf "P=4 work (%d) < 16x P=2 work (%d)" s4 s2)
    (s4 < 16 * s2)

let () =
  Alcotest.run "multi_consensus"
    [
      ( "construction",
        [
          Alcotest.test_case "validation" `Quick test_make_validation;
          Alcotest.test_case "level constant" `Quick test_level_constant;
        ] );
      ( "agreement",
        [
          Alcotest.test_case "P=2 C=2 uniform" `Quick test_p2_c2_uniform;
          Alcotest.test_case "P=2 C=3 uniform" `Quick test_p2_c3_uniform;
          Alcotest.test_case "P=2 C=4 banded" `Quick test_p2_c4_banded;
          Alcotest.test_case "P=3 C=3" `Slow test_p3_c3;
          Alcotest.test_case "P=3 C=5 mixed" `Slow test_p3_c5_mixed;
          Alcotest.test_case "pure priority mode" `Quick test_pure_priority_mode;
          Alcotest.test_case "P=1 degenerate" `Quick test_single_processor_degenerate;
          Alcotest.test_case "small exploration" `Slow test_explore_small;
          Alcotest.test_case "exhaustive two processes" `Slow test_exhaustive_two_processes;
        ] );
      ( "lemmas",
        [
          Alcotest.test_case "AF bounds under stagger" `Slow test_af_bounds_under_stagger;
          Alcotest.test_case "polynomial statements" `Slow test_statements_polynomial;
        ] );
    ]
