open Hwf_workload

let test_uniform () =
  let l = Layout.uniform ~processors:3 ~per_processor:2 in
  Alcotest.(check int) "size" 6 (List.length l);
  Alcotest.(check int) "processors" 3 (Layout.processors l);
  Alcotest.(check int) "levels" 1 (Layout.levels l);
  Util.checkb "all priority 1" (List.for_all (fun (_, p) -> p = 1) l)

let test_distinct_priorities () =
  let l = Layout.distinct_priorities ~processors:2 ~per_processor:3 in
  Alcotest.(check int) "levels" 3 (Layout.levels l);
  let config = Layout.to_config ~quantum:1 l in
  Util.checkb "pure priority" (Hwf_sim.Config.is_pure_priority config)

let test_banded () =
  let l = Layout.banded ~processors:2 ~levels:3 ~per_level:2 in
  Alcotest.(check int) "size" 12 (List.length l);
  Alcotest.(check int) "levels" 3 (Layout.levels l);
  let on0 = List.filter (fun (c, _) -> c = 0) l in
  Alcotest.(check int) "6 on cpu0" 6 (List.length on0)

let test_random_layout_valid () =
  for seed = 0 to 20 do
    let l = Layout.random ~seed ~processors:3 ~levels:4 ~n:7 in
    Alcotest.(check int) "size" 7 (List.length l);
    let config = Layout.to_config ~quantum:2 l in
    Alcotest.(check int) "n" 7 (Hwf_sim.Config.n config)
  done

let test_random_deterministic () =
  let a = Layout.random ~seed:42 ~processors:2 ~levels:2 ~n:5 in
  let b = Layout.random ~seed:42 ~processors:2 ~levels:2 ~n:5 in
  Util.checkb "same layout" (a = b)

let test_random_script_shape () =
  let s = Scenarios.random_script ~seed:1 ~n:4 ~ops_per:5 in
  Alcotest.(check int) "4 processes" 4 (List.length s);
  Util.checkb "5 ops each" (List.for_all (fun ops -> List.length ops = 5) s);
  let s' = Scenarios.random_script ~seed:1 ~n:4 ~ops_per:5 in
  Util.checkb "deterministic" (s = s')

let test_consensus_builder_fig3_guard () =
  Alcotest.check_raises "multiprocessor rejected for Fig3"
    (Invalid_argument "Scenarios.consensus: Fig3 requires a uniprocessor layout")
    (fun () ->
      ignore
        (Scenarios.consensus ~name:"x" ~impl:Scenarios.Fig3 ~quantum:8
           ~layout:[ (0, 1); (1, 1) ]))

let test_run_multi_summary () =
  let layout = Layout.uniform ~processors:2 ~per_processor:1 in
  let s =
    Scenarios.run_multi ~quantum:2000 ~consensus_number:2 ~layout
      ~policy:(Hwf_sim.Policy.round_robin ())
      ()
  in
  Util.checkb "finished" s.finished;
  Util.checkb "agreed" s.agreed;
  Util.checkb "valid" s.valid;
  Util.checkb "well-formed" s.well_formed;
  Alcotest.(check int) "no exhaustion" 0 s.exhausted;
  Util.checkb "levels positive" (s.levels >= 1);
  Util.checkb "statements counted" (s.statements > 0)

let test_last_outputs_and_decision () =
  let b =
    Scenarios.consensus ~name:"lo" ~impl:Scenarios.Fig3 ~quantum:8
      ~layout:[ (0, 1); (0, 1) ]
  in
  let instance = b.scenario.Hwf_adversary.Explore.make () in
  let r =
    Hwf_sim.Engine.run ~config:b.scenario.Hwf_adversary.Explore.config
      ~policy:Hwf_sim.Policy.first instance.Hwf_adversary.Explore.programs
  in
  Util.checkb "finished" (Array.for_all Fun.id r.finished);
  (match b.last_decision () with
  | Some v -> Util.checkb "valid decision" (v = 100 || v = 101)
  | None -> Alcotest.fail "no decision");
  let outs = b.last_outputs () in
  Util.checkb "both recorded" (Array.for_all Option.is_some outs)

let test_opgen_shapes () =
  let cas = Opgen.cas_mix ~seed:3 ~n:3 ~ops_per:10 ~read_pct:50 ~contended_pct:50 in
  Alcotest.(check int) "3 processes" 3 (List.length cas);
  Util.checkb "10 ops each" (List.for_all (fun l -> List.length l = 10) cas);
  let cas' = Opgen.cas_mix ~seed:3 ~n:3 ~ops_per:10 ~read_pct:50 ~contended_pct:50 in
  Util.checkb "deterministic" (cas = cas');
  (* read percentage is honored in expectation *)
  let all = List.concat (Opgen.cas_mix ~seed:4 ~n:4 ~ops_per:200 ~read_pct:100 ~contended_pct:0) in
  Util.checkb "read_pct=100 gives only reads"
    (List.for_all (function Scenarios.Rd -> true | Scenarios.Cas _ -> false) all);
  let q = Opgen.queue_mix ~seed:5 ~n:2 ~ops_per:50 ~enq_pct:0 in
  Util.checkb "enq_pct=0 gives only deqs"
    (List.for_all (List.for_all (fun op -> op = `Deq)) q);
  let enqs = Opgen.queue_mix ~seed:6 ~n:3 ~ops_per:20 ~enq_pct:100 |> List.concat in
  let values = List.filter_map (function `Enq v -> Some v | `Deq -> None) enqs in
  Alcotest.(check int) "unique enqueue values" (List.length values)
    (List.length (List.sort_uniq compare values));
  let c = Opgen.counter_mix ~seed:7 ~n:2 ~ops_per:30 ~read_pct:0 in
  Util.checkb "read_pct=0 gives only incrs"
    (List.for_all (List.for_all (fun op -> op = `Incr)) c)

let test_adversary_battery_legal () =
  (* Every policy in the battery produces complete, well-formed runs on a
     mixed-priority workload (the engine enforces legality; this guards
     against a battery policy dead-ending or stalling). *)
  let layout = Layout.banded ~processors:2 ~levels:2 ~per_level:1 in
  List.iter
    (fun policy ->
      let s =
        Scenarios.run_multi ~step_limit:6_000_000 ~quantum:4000 ~consensus_number:2
          ~layout ~policy:(policy ()) ()
      in
      Util.checkb "finished" s.finished;
      Util.checkb "well-formed" s.well_formed)
    (Scenarios.adversarial_policies ~seeds:[ 0; 1; 2 ] ~var_prefix:"mc.Cons")

let () =
  Alcotest.run "workload"
    [
      ( "layout",
        [
          Alcotest.test_case "uniform" `Quick test_uniform;
          Alcotest.test_case "distinct priorities" `Quick test_distinct_priorities;
          Alcotest.test_case "banded" `Quick test_banded;
          Alcotest.test_case "random valid" `Quick test_random_layout_valid;
          Alcotest.test_case "random deterministic" `Quick test_random_deterministic;
        ] );
      ( "scenarios",
        [
          Alcotest.test_case "random script" `Quick test_random_script_shape;
          Alcotest.test_case "fig3 guard" `Quick test_consensus_builder_fig3_guard;
          Alcotest.test_case "run_multi summary" `Quick test_run_multi_summary;
          Alcotest.test_case "outputs accessors" `Quick test_last_outputs_and_decision;
          Alcotest.test_case "opgen shapes" `Quick test_opgen_shapes;
          Alcotest.test_case "adversary battery legal" `Slow test_adversary_battery_legal;
        ] );
    ]
