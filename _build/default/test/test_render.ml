open Hwf_sim

(* The ASCII interleaving renderer (Figs. 1-2). *)

let simple_run ~pris ~quantum ~script ~steps_per =
  let config = Util.uni_config ~quantum pris in
  let bodies =
    Array.init (List.length pris) (fun _ () ->
        Eff.invocation "w" (fun () ->
            for _ = 1 to steps_per do
              Eff.local "s"
            done))
  in
  let policy = Policy.scripted ~fallback:Policy.first script in
  (Util.run ~config ~policy bodies).trace

let lines s = String.split_on_char '\n' s |> List.filter (fun l -> l <> "")

let test_lane_per_process () =
  let trace = simple_run ~pris:[ 1; 1 ] ~quantum:4 ~script:[ 0; 1 ] ~steps_per:2 in
  let out = Render.lanes trace in
  (* two process lanes + quantum ruler *)
  Util.checki "three lines" 3 (List.length (lines out));
  Util.checkb "p1 lane" (Util.contains out "p1");
  Util.checkb "p2 lane" (Util.contains out "p2");
  Util.checkb "ruler" (Util.contains out "Q=4")

let test_brackets_and_preemption_dots () =
  let trace = simple_run ~pris:[ 1; 1 ] ~quantum:8 ~script:[ 0; 1; 1; 0 ] ~steps_per:2 in
  let out = Render.lanes trace in
  Util.checkb "open bracket" (String.contains out '[');
  Util.checkb "close bracket" (String.contains out ']');
  Util.checkb "preemption dots" (String.contains out '.')

let test_priority_order_top_down () =
  let trace = simple_run ~pris:[ 1; 3; 2 ] ~quantum:8 ~script:[] ~steps_per:1 in
  let out = Render.lanes trace in
  let idx sub =
    (* position of first occurrence; -1 if absent *)
    let rec find i =
      if i + String.length sub > String.length out then -1
      else if String.sub out i (String.length sub) = sub then i
      else find (i + 1)
    in
    find 0
  in
  Util.checkb "highest priority lane first" (idx "pri=3" < idx "pri=2");
  Util.checkb "then middle" (idx "pri=2" < idx "pri=1")

let test_truncation () =
  let config = Util.uni_config ~quantum:8 [ 1 ] in
  let bodies =
    [|
      (fun () ->
        Eff.invocation "w" (fun () ->
            for _ = 1 to 500 do
              Eff.local "s"
            done));
    |]
  in
  let trace = (Util.run ~config ~policy:Policy.first bodies).trace in
  let out = Render.lanes ~max_width:50 trace in
  Util.checkb "ellipsis marker" (Util.contains out "...");
  List.iter
    (fun l -> Util.checkb "line capped" (String.length l <= 50 + 20))
    (lines out)

let test_no_ruler_on_multiprocessor () =
  let procs =
    [
      Proc.make ~pid:0 ~processor:0 ~priority:1 ();
      Proc.make ~pid:1 ~processor:1 ~priority:1 ();
    ]
  in
  let config = Config.make ~quantum:4 ~processors:2 ~levels:1 procs in
  let bodies =
    Array.init 2 (fun _ () -> Eff.invocation "w" (fun () -> Eff.local "s"))
  in
  let trace = (Util.run ~config ~policy:Policy.first bodies).trace in
  Util.checkb "no quantum ruler across processors"
    (not (Util.contains (Render.lanes trace) "Q=4"))

let () =
  Alcotest.run "render"
    [
      ( "lanes",
        [
          Alcotest.test_case "lane per process" `Quick test_lane_per_process;
          Alcotest.test_case "brackets and dots" `Quick test_brackets_and_preemption_dots;
          Alcotest.test_case "priority order" `Quick test_priority_order_top_down;
          Alcotest.test_case "truncation" `Quick test_truncation;
          Alcotest.test_case "no ruler on multiprocessor" `Quick
            test_no_ruler_on_multiprocessor;
        ] );
    ]
