open Hwf_sim
open Hwf_core
open Hwf_adversary
open Hwf_workload

(* The universal construction and the derived wait-free objects (E10). *)

let uni_layout n pris = ignore n; List.map (fun p -> (0, p)) pris

let run_uni ~pris ~seed bodies_of =
  let layout = uni_layout (List.length pris) pris in
  let config = Layout.to_config ~quantum:3000 layout in
  let n = List.length pris in
  let bodies = bodies_of config n in
  Util.run ~step_limit:5_000_000 ~config ~policy:(Policy.random ~seed) bodies

let test_counter_uniprocessor () =
  (* N increments over Fig. 3 consensus cells: results are 1..N. *)
  let s = Scenarios.universal_counter_uni ~name:"uc" ~quantum:3000 ~pris:[ 1; 1; 2; 3 ] in
  Util.expect_ok "counter" (Explore.random_runs ~runs:40 ~step_limit:4_000_000 ~seed:31 s)

let test_counter_exhaustive_small () =
  let s = Scenarios.universal_counter_uni ~name:"uc2" ~quantum:3000 ~pris:[ 1; 1 ] in
  Util.expect_ok "counter pb=2"
    (Explore.explore ~preemption_bound:2 ~max_runs:300_000 ~step_limit:4_000_000 s)

let test_queue_over_multiprocessor_consensus () =
  (* The Theorem 4 payoff: N=6 >> P=2 processes, C=2 base objects. *)
  let layout = Layout.banded ~processors:2 ~levels:2 ~per_level:1 @ [ (0, 1); (1, 1) ] in
  (* normalize: Layout lists must be plain (processor, priority) tuples *)
  let s =
    Scenarios.universal_queue ~name:"uq" ~quantum:5000 ~consensus_number:2
      ~layout ~ops_per:1
  in
  Util.expect_ok "queue over Fig 7"
    (Explore.random_runs ~runs:25 ~step_limit:20_000_000 ~seed:32 s)

let test_stack_semantics_sequential () =
  let out = ref [] in
  let r =
    run_uni ~pris:[ 1 ] ~seed:0 (fun _config n ->
        [|
          (fun () ->
            let st = Wf_objects.stack ~name:"s" ~n ~factory:(Wf_objects.uni_factory ()) in
            Eff.invocation "ops" (fun () ->
                Wf_objects.push st ~pid:0 1;
                Wf_objects.push st ~pid:0 2;
                out := Wf_objects.pop st ~pid:0 :: !out;
                out := Wf_objects.pop st ~pid:0 :: !out;
                out := Wf_objects.pop st ~pid:0 :: !out));
        |])
  in
  Util.checkb "finished" (Array.for_all Fun.id r.finished);
  Alcotest.(check (list (option int))) "LIFO" [ Some 2; Some 1; None ] (List.rev !out)

let test_register_last_write_wins () =
  let out = ref (-1) in
  let r =
    run_uni ~pris:[ 1 ] ~seed:0 (fun _config n ->
        [|
          (fun () ->
            let reg =
              Wf_objects.register ~name:"r" ~n ~init:0 ~factory:(Wf_objects.uni_factory ())
            in
            Eff.invocation "ops" (fun () ->
                Wf_objects.set reg ~pid:0 5;
                Wf_objects.set reg ~pid:0 9;
                out := Wf_objects.read reg ~pid:0));
        |])
  in
  Util.checkb "finished" (Array.for_all Fun.id r.finished);
  Util.checki "last write" 9 !out

let test_queue_fifo_sequential () =
  let out = ref [] in
  let r =
    run_uni ~pris:[ 1 ] ~seed:0 (fun _config n ->
        [|
          (fun () ->
            let q = Wf_objects.queue ~name:"q" ~n ~factory:(Wf_objects.uni_factory ()) in
            Eff.invocation "ops" (fun () ->
                Wf_objects.enqueue q ~pid:0 10;
                Wf_objects.enqueue q ~pid:0 20;
                Wf_objects.enqueue q ~pid:0 30;
                out := Wf_objects.dequeue q ~pid:0 :: !out;
                out := Wf_objects.dequeue q ~pid:0 :: !out;
                Wf_objects.enqueue q ~pid:0 40;
                out := Wf_objects.dequeue q ~pid:0 :: !out;
                out := Wf_objects.dequeue q ~pid:0 :: !out;
                out := Wf_objects.dequeue q ~pid:0 :: !out));
        |])
  in
  Util.checkb "finished" (Array.for_all Fun.id r.finished);
  Alcotest.(check (list (option int)))
    "FIFO" [ Some 10; Some 20; Some 30; Some 40; None ] (List.rev !out)

let test_helping_guarantees_progress () =
  (* A process whose proposals always lose still completes: the helper
     mechanism appends its announced op. Starve p1 by always preferring
     p0 except when only p1 can run. *)
  let pris = [ 1; 1 ] in
  let layout = uni_layout 2 pris in
  let config = Layout.to_config ~quantum:3000 layout in
  let results = Array.make 2 (-1) in
  let c = Wf_objects.counter ~name:"c" ~n:2 ~factory:(Wf_objects.uni_factory ()) in
  let bodies =
    Array.init 2 (fun pid () ->
        Eff.invocation "incr" (fun () -> results.(pid) <- Wf_objects.incr c ~pid))
  in
  let policy = Policy.prefer [ 0 ] ~fallback:Policy.first in
  let r = Util.run ~step_limit:5_000_000 ~config ~policy bodies in
  Util.checkb "both finished" (Array.for_all Fun.id r.finished);
  let sorted = Array.copy results in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "1..2" [| 1; 2 |] sorted

let test_snapshot_sequential () =
  let out = ref [||] in
  let r =
    run_uni ~pris:[ 1 ] ~seed:0 (fun _config n ->
        let s =
          Wf_objects.snapshot ~name:"snap" ~n ~segments:3 ~init:0
            ~factory:(Wf_objects.uni_factory ())
        in
        [|
          (fun () ->
            Eff.invocation "ops" (fun () ->
                Wf_objects.update s ~pid:0 ~segment:1 7;
                Wf_objects.update s ~pid:0 ~segment:2 9;
                out := Wf_objects.scan s ~pid:0));
        |])
  in
  Util.checkb "finished" (Array.for_all Fun.id r.finished);
  Alcotest.(check (array int)) "scan" [| 0; 7; 9 |] !out

let test_snapshot_concurrent_consistent () =
  (* Scans never observe a torn pair: p1 writes (1,1) then (2,2) to two
     segments; every scan sees equal segment values or an in-between
     single update, never (2,1). *)
  let ok = ref true in
  for seed = 0 to 30 do
    let pris = [ 1; 1 ] in
    let layout = uni_layout 2 pris in
    let config = Hwf_workload.Layout.to_config ~quantum:3000 layout in
    let s =
      Wf_objects.snapshot ~name:"snap" ~n:2 ~segments:2 ~init:0
        ~factory:(Wf_objects.uni_factory ())
    in
    let scans = ref [] in
    let bodies =
      [|
        (fun () ->
          for round = 1 to 2 do
            Eff.invocation "wr" (fun () ->
                Wf_objects.update s ~pid:0 ~segment:0 round;
                Wf_objects.update s ~pid:0 ~segment:1 round)
          done);
        (fun () ->
          for _ = 1 to 3 do
            Eff.invocation "scan" (fun () ->
                scans := Wf_objects.scan s ~pid:1 :: !scans)
          done);
      |]
    in
    let r = Util.run ~step_limit:4_000_000 ~config ~policy:(Policy.random ~seed) bodies in
    if not (Array.for_all Fun.id r.finished) then ok := false;
    List.iter
      (fun snap ->
        match snap with
        | [| a; b |] -> if a < b then ok := false (* segment 0 is written first *)
        | _ -> ok := false)
      !scans
  done;
  Util.checkb "no torn snapshot observed" !ok

let test_hw_factory_baseline () =
  let s_check () =
    let config = Util.uni_config ~quantum:1 [ 1; 1; 1 ] in
    let c = Wf_objects.counter ~name:"c" ~n:3 ~factory:(Wf_objects.hw_factory ()) in
    let results = Array.make 3 (-1) in
    let bodies =
      Array.init 3 (fun pid () ->
          Eff.invocation "incr" (fun () -> results.(pid) <- Wf_objects.incr c ~pid))
    in
    let r = Util.run ~config ~policy:(Policy.random ~seed:9) bodies in
    Util.checkb "finished" (Array.for_all Fun.id r.finished);
    let sorted = Array.copy results in
    Array.sort compare sorted;
    Alcotest.(check (array int)) "1..3" [| 1; 2; 3 |] sorted
  in
  (* hardware consensus needs no quantum at all *)
  s_check ()

let test_ops_count_and_peek () =
  let r = ref 0 in
  let run =
    run_uni ~pris:[ 1 ] ~seed:0 (fun _config n ->
        let c = Wf_objects.counter ~name:"c" ~n ~factory:(Wf_objects.uni_factory ()) in
        [|
          (fun () ->
            Eff.invocation "ops" (fun () ->
                ignore (Wf_objects.incr c ~pid:0);
                ignore (Wf_objects.incr c ~pid:0);
                r := Wf_objects.get c ~pid:0));
        |])
  in
  Util.checkb "finished" (Array.for_all Fun.id run.finished);
  Util.checki "value" 2 !r

let () =
  Alcotest.run "universal"
    [
      ( "objects",
        [
          Alcotest.test_case "stack LIFO" `Quick test_stack_semantics_sequential;
          Alcotest.test_case "queue FIFO" `Quick test_queue_fifo_sequential;
          Alcotest.test_case "register" `Quick test_register_last_write_wins;
          Alcotest.test_case "snapshot sequential" `Quick test_snapshot_sequential;
          Alcotest.test_case "snapshot concurrent" `Quick test_snapshot_concurrent_consistent;
          Alcotest.test_case "ops count / peek" `Quick test_ops_count_and_peek;
          Alcotest.test_case "hw factory baseline" `Quick test_hw_factory_baseline;
        ] );
      ( "concurrent",
        [
          Alcotest.test_case "counter uniprocessor" `Quick test_counter_uniprocessor;
          Alcotest.test_case "counter exhaustive" `Slow test_counter_exhaustive_small;
          Alcotest.test_case "queue over Fig 7" `Slow test_queue_over_multiprocessor_consensus;
          Alcotest.test_case "helping progress" `Quick test_helping_guarantees_progress;
        ] );
    ]
