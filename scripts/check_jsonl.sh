#!/usr/bin/env bash
# JSONL schema sanity check for the hwf-trace/1, hwf-metrics/1,
# hwf-analyze/1, hwf-lint/1 and hwf-ckpt/1 exports
# (docs/OBSERVABILITY.md, docs/ROBUSTNESS.md): every line must parse as
# a JSON object; the first line must carry the "schema" key; every
# subsequent line must be discriminated by "ev" (trace), "m" (metrics),
# "a" (analyze: race rows plus one summary), "l" (lint) or "cell"
# (checkpoint), matching the schema the header declared. Lint reports
# concatenate one header-plus-rows block per linted subject, so a
# fresh header line may restart a block mid-file. Checkpoint journals
# are crash-tolerant by design: a partial *final* line (a write cut by
# SIGKILL) is allowed for hwf-ckpt/1 only, mirroring the loader.
#
# hwf-bench-sched/1 (docs/SAMPLING.md, BENCH_sched.json) and
# hwf-bench-engine/1 (EXPERIMENTS.md E19, BENCH_engine.json) are the
# whole-file JSON schemas: a single pretty-printed object whose "cells"
# rows each carry case/strategy/runs/found (sched) or
# n/processors/observer/statements/seconds/stmts_per_sec (engine).
set -u

if [ "$#" -lt 1 ]; then
  echo "usage: $0 FILE.jsonl ..." >&2
  exit 2
fi

fail=0
for f in "$@"; do
  if ! out=$(python3 - "$f" <<'EOF'
import json, sys

path = sys.argv[1]
with open(path, "r", encoding="utf-8") as fh:
    lines = fh.read().splitlines()
if not lines:
    sys.exit(f"{path}: empty file")

try:
    head = json.loads(lines[0])
except json.JSONDecodeError:
    # Not a one-line header: try the whole-file JSON schemas.
    try:
        doc = json.loads("\n".join(lines))
    except json.JSONDecodeError as e:
        sys.exit(f"{path}: neither JSONL nor whole-file JSON: {e}")
    cell_fields = {
        "hwf-bench-sched/1": ("case", "strategy", "runs", "found"),
        "hwf-bench-engine/1": ("n", "processors", "observer", "statements",
                               "seconds", "stmts_per_sec"),
    }
    schema = doc.get("schema") if isinstance(doc, dict) else None
    if schema not in cell_fields:
        sys.exit(f"{path}: whole-file JSON has no known schema "
                 f"(got {schema if isinstance(doc, dict) else type(doc).__name__!r})")
    cells = doc.get("cells")
    if not isinstance(cells, list) or not cells:
        sys.exit(f"{path}: {schema} lacks a non-empty \"cells\" array")
    for j, cell in enumerate(cells):
        if not isinstance(cell, dict):
            sys.exit(f"{path}: cells[{j}] is not a JSON object")
        for field in cell_fields[schema]:
            if field not in cell:
                sys.exit(f"{path}: cells[{j}] lacks {field!r}")
    print(f"{path}: OK ({schema}, {len(cells)} cells)")
    sys.exit(0)
if not isinstance(head, dict):
    sys.exit(f"{path}: line 1 is not a JSON object")
keys = {"hwf-trace/1": "ev", "hwf-metrics/1": "m", "hwf-analyze/1": "a",
        "hwf-lint/1": "l", "hwf-ckpt/1": "cell"}
schema = head.get("schema")
if schema not in keys:
    sys.exit(f"{path}: line 1 has no known schema (got {schema!r})")
key = keys[schema]
if schema == "hwf-ckpt/1":
    for field in ("campaign", "cells"):
        if field not in head:
            sys.exit(f"{path}: hwf-ckpt/1 header lacks {field!r}")

for i, line in enumerate(lines[1:], start=2):
    try:
        row = json.loads(line)
    except json.JSONDecodeError as e:
        if schema == "hwf-ckpt/1" and i == len(lines):
            print(f"{path}: note: partial trailing line dropped (crash-cut write)")
            break
        sys.exit(f"{path}: line {i} is not valid JSON: {e}")
    if not isinstance(row, dict):
        sys.exit(f"{path}: line {i} is not a JSON object")
    if row.get("schema") == schema and schema == "hwf-lint/1":
        continue  # next subject's header block
    if key not in row:
        sys.exit(f"{path}: line {i} lacks the {key!r} discriminator")

print(f"{path}: OK ({schema}, {len(lines) - 1} rows)")
EOF
  ); then
    echo "$out" >&2
    fail=1
  else
    echo "$out"
  fi
done
exit "$fail"
