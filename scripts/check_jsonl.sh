#!/usr/bin/env bash
# JSONL schema sanity check for the hwf-trace/1 and hwf-metrics/1
# exports (docs/OBSERVABILITY.md): every line must parse as a JSON
# object; the first line must carry the "schema" key; every subsequent
# line must be discriminated by "ev" (trace) or "m" (metrics),
# matching the schema the header declared.
set -u

if [ "$#" -lt 1 ]; then
  echo "usage: $0 FILE.jsonl ..." >&2
  exit 2
fi

fail=0
for f in "$@"; do
  if ! out=$(python3 - "$f" <<'EOF'
import json, sys

path = sys.argv[1]
with open(path, "r", encoding="utf-8") as fh:
    lines = fh.read().splitlines()
if not lines:
    sys.exit(f"{path}: empty file")

try:
    head = json.loads(lines[0])
except json.JSONDecodeError as e:
    sys.exit(f"{path}: line 1 is not valid JSON: {e}")
if not isinstance(head, dict):
    sys.exit(f"{path}: line 1 is not a JSON object")
schema = head.get("schema")
if schema not in ("hwf-trace/1", "hwf-metrics/1"):
    sys.exit(f"{path}: line 1 has no known schema (got {schema!r})")
key = "ev" if schema == "hwf-trace/1" else "m"

for i, line in enumerate(lines[1:], start=2):
    try:
        row = json.loads(line)
    except json.JSONDecodeError as e:
        sys.exit(f"{path}: line {i} is not valid JSON: {e}")
    if not isinstance(row, dict) or key not in row:
        sys.exit(f"{path}: line {i} lacks the {key!r} discriminator")

print(f"{path}: OK ({schema}, {len(lines) - 1} rows)")
EOF
  ); then
    echo "$out" >&2
    fail=1
  else
    echo "$out"
  fi
done
exit "$fail"
