#!/usr/bin/env bash
# Kill-and-resume determinism smoke (docs/ROBUSTNESS.md): SIGTERM the
# E16 certification campaign mid-flight while it journals per-cell
# checkpoints, resume it, and require the resumed BENCH_faults.json to
# be byte-identical to an uninterrupted run's — sequentially and with
# --jobs 2. The interrupted run itself must degrade gracefully: flush
# its checkpoints, write a truncated partial BENCH_faults.json, and
# exit through the harness path (timeout(1) reports 124 when the
# command is still winding down at the deadline, 2 when it exited on
# its own after the first signal).
set -u

BIN=${BIN:-_build/default/bench/main.exe}
if [ ! -x "$BIN" ]; then
  echo "kill_resume_smoke: $BIN not built (dune build first)" >&2
  exit 2
fi
BIN=$(readlink -f "$BIN")
KILL_AFTER=${KILL_AFTER:-0.4}

work=$(mktemp -d)
trap 'rm -rf "$work"' EXIT
cd "$work" || exit 2

fail=0
for jobs in 1 2; do
  echo "kill_resume_smoke: jobs=$jobs"
  rm -f ck.* BENCH_faults.json

  if ! "$BIN" --full faults --jobs "$jobs" > clean.log 2>&1; then
    echo "kill_resume_smoke: FAIL clean run (jobs=$jobs), see log:" >&2
    tail -5 clean.log >&2
    fail=1; continue
  fi
  mv BENCH_faults.json clean.json

  timeout -s TERM "$KILL_AFTER" \
    "$BIN" --full faults --jobs "$jobs" --checkpoint ck > kill.log 2>&1
  killed=$?
  case "$killed" in
    0)   echo "kill_resume_smoke: note: campaign finished before the kill landed" ;;
    2|124) ;;
    *)
      echo "kill_resume_smoke: FAIL killed run exited $killed (expected 2/124)" >&2
      fail=1; continue ;;
  esac
  if [ "$killed" -ne 0 ] && ! grep -q '"truncated": true' BENCH_faults.json; then
    echo "kill_resume_smoke: FAIL killed run did not mark its export truncated" >&2
    fail=1; continue
  fi

  if ! "$BIN" --full faults --jobs "$jobs" --checkpoint ck --resume > resume.log 2>&1; then
    echo "kill_resume_smoke: FAIL resume run (jobs=$jobs), see log:" >&2
    tail -5 resume.log >&2
    fail=1; continue
  fi
  if diff -q clean.json BENCH_faults.json >/dev/null; then
    echo "kill_resume_smoke: OK jobs=$jobs (resumed output byte-identical)"
  else
    echo "kill_resume_smoke: FAIL jobs=$jobs: resumed BENCH_faults.json differs:" >&2
    diff clean.json BENCH_faults.json | head -20 >&2
    fail=1
  fi
done

exit "$fail"
