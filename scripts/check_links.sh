#!/usr/bin/env bash
# Docs link check: fail on dead intra-repo markdown links in README.md
# and docs/. External (http/mailto) and pure-anchor links are skipped;
# everything else is resolved relative to the file that contains it.
set -u
cd "$(dirname "$0")/.."

fail=0

# Every doc the README promises must actually exist (a rename that
# forgets one of these is a dead tour, even if no link syntax broke).
for required in docs/ARCHITECTURE.md docs/MODEL.md docs/ALGORITHMS.md \
  docs/PARALLELISM.md docs/OBSERVABILITY.md docs/LINT.md \
  docs/ROBUSTNESS.md DESIGN.md EXPERIMENTS.md; do
  if [ ! -e "$required" ]; then
    echo "missing required doc: $required"
    fail=1
  fi
done
for f in README.md docs/*.md; do
  dir=$(dirname "$f")
  while IFS= read -r target; do
    case "$target" in
    http://* | https://* | mailto:* | "#"*) continue ;;
    esac
    path="${target%%#*}"
    [ -z "$path" ] && continue
    if [ ! -e "$dir/$path" ]; then
      echo "dead link in $f: ($target)"
      fail=1
    fi
  done < <(grep -oE '\]\([^)]+\)' "$f" | sed -E 's/^\]\(//; s/\)$//')
done

if [ "$fail" -eq 0 ]; then
  echo "link check: OK"
fi
exit "$fail"
