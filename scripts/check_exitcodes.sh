#!/usr/bin/env bash
# Exit-code taxonomy check for the hybridsim CLI (docs/ROBUSTNESS.md):
#   0 - clean pass, full coverage
#   1 - the subject failed (counterexample / certification failure /
#       lint error)
#   2 - the harness failed (timeout, interrupt, incomplete coverage,
#       bad input)
# Every subcommand must honor the same taxonomy, including the
# timeout-injection negative control: a livelocked cell must come back
# as a structured timeout with incomplete coverage and exit 2 — not
# hang, and not masquerade as a counterexample (exit 1).
set -u

BIN=${BIN:-_build/default/bin/hybridsim.exe}
if [ ! -x "$BIN" ]; then
  echo "check_exitcodes: $BIN not built (dune build first)" >&2
  exit 2
fi

fail=0
expect() {
  local want=$1 name=$2
  shift 2
  "$@" >/dev/null 2>&1
  local got=$?
  if [ "$got" -eq "$want" ]; then
    echo "check_exitcodes: OK   $name (exit $got)"
  else
    echo "check_exitcodes: FAIL $name: expected exit $want, got $got" >&2
    fail=1
  fi
}

expect 0 "explore clean (Q=8)"            "$BIN" explore -q 8
expect 1 "explore counterexample (Q=1)"   "$BIN" explore -q 1
expect 0 "cas clean"                      "$BIN" cas
expect 0 "faults clean (fig3)"            "$BIN" faults -s fig3
expect 2 "faults injected livelock"       timeout 60 "$BIN" faults -s fig3 --inject-livelock --cell-wall 1
expect 2 "replay missing schedule file"   "$BIN" replay /nonexistent.sched
expect 0 "lint clean"                     "$BIN" lint
expect 0 "stats clean"                    "$BIN" stats

exit "$fail"
