open Hwf_sim

(* A body performing [k] statements in one invocation, logging the global
   statement index of each of its executions into [log]. *)
let logger_body log pid k () =
  Eff.invocation "work" (fun () ->
      for _ = 1 to k do
        Eff.local "s";
        log := (pid, Eff.now ()) :: !log
      done)

let test_config_validation () =
  let p pid pri = Proc.make ~pid ~processor:0 ~priority:pri () in
  Alcotest.check_raises "bad pid order"
    (Invalid_argument "Config.make: pids must be 0..N-1 in order") (fun () ->
      ignore (Config.uniprocessor ~quantum:1 ~levels:1 [ p 1 1 ]));
  Alcotest.check_raises "priority range"
    (Invalid_argument "Config.make: priority out of range") (fun () ->
      ignore (Config.uniprocessor ~quantum:1 ~levels:1 [ p 0 2 ]));
  Alcotest.check_raises "processor range"
    (Invalid_argument "Config.make: processor out of range") (fun () ->
      ignore
        (Config.make ~quantum:1 ~processors:1 ~levels:1
           [ Proc.make ~pid:0 ~processor:1 ~priority:1 () ]))

let test_config_shapes () =
  let c = Util.uni_config ~quantum:5 [ 1; 1; 2 ] in
  Util.checki "N" 3 (Config.n c);
  Util.checki "M" 3 (Config.max_per_processor c);
  Util.checkb "not pure priority" (not (Config.is_pure_priority c));
  Util.checkb "not pure quantum" (not (Config.is_pure_quantum c));
  let cq = Util.uni_config ~quantum:5 [ 1; 1; 1 ] in
  Util.checkb "pure quantum" (Config.is_pure_quantum cq);
  let cp = Util.uni_config ~quantum:5 [ 1; 2; 3 ] in
  Util.checkb "pure priority" (Config.is_pure_priority cp)

(* Axiom 1: once a higher-priority process has started an invocation, the
   lower-priority one cannot run until it finishes. *)
let test_priority_runs_to_completion () =
  let config = Util.uni_config ~quantum:2 [ 1; 2 ] in
  let log = ref [] in
  let bodies = [| logger_body log 0 6; logger_body log 1 6 |] in
  (* Try hard to interleave: the engine must refuse. *)
  let r = Util.run ~config ~policy:(Hwf_adversary.Stagger.max_interleave ()) bodies in
  Util.checkb "finished" (Array.for_all Fun.id r.finished);
  let order = List.rev_map fst !log in
  (* p1 (pri 2) statements must form a contiguous block. *)
  let rec contiguous seen_hi ended_hi = function
    | [] -> true
    | 1 :: rest -> if ended_hi then false else contiguous true ended_hi rest
    | 0 :: rest -> contiguous seen_hi (seen_hi || ended_hi) rest
    | _ -> assert false
  in
  Util.checkb "high-priority block is contiguous" (contiguous false false order)

(* Axiom 2: after being preempted, a process gets Q uninterrupted
   statements upon resumption (engine-enforced). *)
let test_quantum_guarantee () =
  (* The densest legal schedule under Axiom 2 switches far less often
     than with the axiom disabled: after its free first preemption each
     process runs in blocks of Q (or to its invocation end). *)
  let alternations axiom2 =
    let config = Util.uni_config ~axiom2 ~quantum:4 [ 1; 1 ] in
    let log = ref [] in
    let bodies = [| logger_body log 0 10; logger_body log 1 10 |] in
    let r = Util.run ~config ~policy:(Hwf_adversary.Stagger.max_interleave ()) bodies in
    Util.checkb "finished" (Array.for_all Fun.id r.finished);
    let rec count prev = function
      | [] -> 0
      | p :: rest -> (if p <> prev then 1 else 0) + count p rest
    in
    count (-1) (List.rev_map fst !log)
  in
  let with_axiom = alternations true in
  let without_axiom = alternations false in
  (* 20 statements, Q=4: at most 2 free first preemptions plus one switch
     per quantum block; without the axiom the policy alternates freely. *)
  Util.checkb
    (Printf.sprintf "with axiom few switches (%d)" with_axiom)
    (with_axiom <= 8);
  Util.checkb
    (Printf.sprintf "without axiom many switches (%d > %d)" without_axiom with_axiom)
    (without_axiom > with_axiom)

let test_axiom2_off_allows_pingpong () =
  let config = Util.uni_config ~axiom2:false ~quantum:4 [ 1; 1 ] in
  let log = ref [] in
  let bodies = [| logger_body log 0 5; logger_body log 1 5 |] in
  let r = Util.run ~config ~policy:(Hwf_adversary.Stagger.max_interleave ()) bodies in
  Util.checkb "finished" (Array.for_all Fun.id r.finished);
  let order = List.rev_map fst !log in
  (* With no quantum guarantee, max-interleave achieves strict alternation. *)
  let alternations =
    let rec count prev = function
      | [] -> 0
      | p :: rest -> (if p <> prev then 1 else 0) + count p rest
    in
    match order with [] -> 0 | p :: rest -> count p rest
  in
  Util.checkb "many alternations" (alternations >= 8)

let test_first_preemption_free () =
  (* A fresh process can be preempted immediately after any statement. *)
  let config = Util.uni_config ~quantum:100 [ 1; 1 ] in
  let log = ref [] in
  let bodies = [| logger_body log 0 3; logger_body log 1 3 |] in
  (* Script: p0 one statement, then p1 to completion, then p0. *)
  let policy = Policy.scripted ~fallback:Policy.first [ 0; 1; 1; 1; 0; 0 ] in
  let r = Util.run ~config ~policy bodies in
  Util.checkb "finished" (Array.for_all Fun.id r.finished);
  let order = List.rev_map fst !log in
  Alcotest.(check (list int)) "interleaving allowed" [ 0; 1; 1; 1; 0; 0 ] order

let test_shared_semantics () =
  let config = Util.uni_config ~quantum:10 [ 1 ] in
  let x = Shared.make "x" 0 in
  let seen = ref (-1) in
  let bodies =
    [|
      (fun () ->
        Eff.invocation "rw" (fun () ->
            Shared.write x 41;
            seen := Shared.read x + 1));
    |]
  in
  let r = Util.run ~config ~policy:Policy.first bodies in
  Util.checki "written" 41 (Shared.peek x);
  Util.checki "read" 42 !seen;
  Util.checki "two statements" 2 (Trace.statements r.trace)

let test_trace_contents () =
  let config = Util.uni_config ~quantum:10 [ 1 ] in
  let x = Shared.make "x" 0 in
  let bodies =
    [|
      (fun () ->
        Eff.invocation "op" (fun () ->
            ignore (Shared.read x);
            Eff.note "midpoint";
            Shared.write x 1));
    |]
  in
  let r = Util.run ~config ~policy:Policy.first bodies in
  match Trace.events r.trace with
  | [ Trace.Inv_begin { label = "op"; _ }; Trace.Stmt { op = Op.Read "x"; _ };
      Trace.Note { text = "midpoint"; _ }; Trace.Stmt { op = Op.Write "x"; _ };
      Trace.Inv_end { label = "op"; _ } ] ->
    ()
  | evs -> Alcotest.failf "unexpected events:@.%a" Fmt.(list ~sep:(any "@.") Trace.pp_event) evs

(* S1 regression: own_statements is maintained incrementally; it must
   agree with a fold over the event vector, and the observer hook must
   see every event in append order. *)
let test_own_statements_incremental () =
  let config = Util.uni_config ~quantum:2 [ 1; 1; 2 ] in
  let n = Config.n config in
  let seen = ref 0 in
  let log = ref [] in
  let bodies = Array.init n (fun pid -> logger_body log pid (3 + pid)) in
  let r =
    Engine.run ~config
      ~policy:(Hwf_adversary.Stagger.max_interleave ())
      ~observer:(fun _ -> incr seen)
      bodies
  in
  Util.checki "observer saw every event" (Trace.length r.trace) !seen;
  let folded = Array.make n 0 in
  List.iter
    (function
      | Trace.Stmt { pid; _ } -> folded.(pid) <- folded.(pid) + 1
      | _ -> ())
    (Trace.events r.trace);
  for pid = 0 to n - 1 do
    Util.checki
      (Printf.sprintf "own_statements p%d agrees with fold" (pid + 1))
      folded.(pid)
      (Trace.own_statements r.trace pid)
  done;
  Alcotest.check_raises "pid out of range" (Invalid_argument "Trace.own_statements")
    (fun () -> ignore (Trace.own_statements r.trace n))

let test_now_monotone () =
  let config = Util.uni_config ~quantum:10 [ 1 ] in
  let ts = ref [] in
  let bodies =
    [|
      (fun () ->
        Eff.invocation "op" (fun () ->
            ts := Eff.now () :: !ts;
            Eff.local "a";
            ts := Eff.now () :: !ts;
            Eff.local "b";
            ts := Eff.now () :: !ts));
    |]
  in
  ignore (Util.run ~config ~policy:Policy.first bodies);
  match List.rev !ts with
  | [ a; b; c ] -> Util.checkb "strictly increasing" (a < b && b < c)
  | _ -> Alcotest.fail "expected three timestamps"

let test_step_limit () =
  let config = Util.uni_config ~quantum:10 [ 1 ] in
  let bodies =
    [|
      (fun () ->
        Eff.invocation "spin" (fun () ->
            while true do
              Eff.local "s"
            done));
    |]
  in
  let r = Engine.run ~step_limit:50 ~config ~policy:Policy.first bodies in
  Util.checkb "stopped by limit" (r.stop = Engine.Step_limit);
  Util.checki "statements" 50 (Trace.statements r.trace)

let test_policy_stop () =
  let config = Util.uni_config ~quantum:10 [ 1; 1 ] in
  let log = ref [] in
  let bodies = [| logger_body log 0 5; logger_body log 1 5 |] in
  let policy = Policy.scripted [ 0; 0 ] in
  let r = Engine.run ~config ~policy bodies in
  Util.checkb "policy stop" (r.stop = Engine.Policy_stopped);
  Util.checki "only two statements" 2 (Trace.statements r.trace)

let test_nested_invocation_rejected () =
  let config = Util.uni_config ~quantum:10 [ 1 ] in
  let bodies =
    [|
      (fun () ->
        Eff.invocation "outer" (fun () ->
            Eff.local "s";
            Eff.invocation "inner" (fun () -> Eff.local "t")));
    |]
  in
  match Engine.run ~config ~policy:Policy.first bodies with
  | exception Invalid_argument msg -> Util.checkb "names it" (Util.contains msg "nested")
  | _ -> Alcotest.fail "nested invocation accepted"

let test_exceptions_propagate () =
  let config = Util.uni_config ~quantum:10 [ 1 ] in
  let bodies =
    [|
      (fun () ->
        Eff.invocation "boom" (fun () ->
            Eff.local "s";
            failwith "kaboom"));
    |]
  in
  Alcotest.check_raises "propagates" (Failure "kaboom") (fun () ->
      ignore (Engine.run ~config ~policy:Policy.first bodies))

let test_empty_invocation () =
  (* An invocation with zero statements is recorded and doesn't wedge the
     scheduler. *)
  let config = Util.uni_config ~quantum:10 [ 1; 1 ] in
  let bodies =
    [|
      (fun () ->
        Eff.invocation "empty" (fun () -> ());
        Eff.invocation "real" (fun () -> Eff.local "s"));
      (fun () -> Eff.invocation "w" (fun () -> Eff.local "s"));
    |]
  in
  let r = Util.run ~config ~policy:(Policy.round_robin ()) bodies in
  Util.checkb "finished" (Array.for_all Fun.id r.finished);
  let begins =
    List.filter (function Trace.Inv_begin _ -> true | _ -> false) (Trace.events r.trace)
  in
  Util.checki "three invocations recorded" 3 (List.length begins)

let test_finished_releases_guarantee () =
  (* Regression: a body that returns after executing statements (no
     Inv_end — legal for "bare" bodies that never call Eff.invocation)
     used to leave its cell Finished with an active quantum guarantee,
     permanently guarding every same-priority peer on its processor and
     crashing the scheduling loop on the empty-runnable assert. *)
  let config = Util.uni_config ~quantum:8 [ 1; 1 ] in
  let bare k () =
    for _ = 1 to k do
      Eff.local "s"
    done
  in
  (* p0 one statement; p1 one statement (p0 preempted); p0 resumes under
     a fresh 8-statement guarantee and finishes mid-guarantee; p1 must
     then be allowed to continue. *)
  let policy = Policy.scripted ~fallback:Policy.first [ 0; 1; 0 ] in
  let r = Engine.run ~config ~policy [| bare 2; bare 2 |] in
  Util.checkb "both finished" (Array.for_all Fun.id r.Engine.finished);
  Util.checkb "stops normally" (r.Engine.stop = Engine.All_finished)

let test_empty_invocation_loop_bounded () =
  (* Regression: a statement-free invocation records Inv_begin/Inv_end
     without advancing Trace.statements, so a program looping on empty
     invocations grew the trace and spun the scheduler forever —
     step_limit never fired. Scheduler decisions are bounded too now,
     and the decision bound reports itself as Decision_limit, distinct
     from a genuine statement-budget stop (test_step_limit above). *)
  let config = Util.uni_config ~quantum:4 [ 1 ] in
  let body () =
    while true do
      Eff.invocation "e" (fun () -> ())
    done
  in
  let r = Engine.run ~step_limit:25 ~config ~policy:Policy.first [| body |] in
  Util.checkb "stops with Decision_limit" (r.Engine.stop = Engine.Decision_limit);
  Util.checki "no statements" 0 (Trace.statements r.Engine.trace);
  Util.checkb "trace stayed bounded" (Trace.length r.Engine.trace <= 8 * 25)

let test_wellformed_detects_priority_violation () =
  (* Hand-build a trace where a low-priority process runs while a
     higher-priority one is mid-invocation. *)
  let config = Util.uni_config ~quantum:4 [ 1; 2 ] in
  let t = Trace.create config in
  Trace.add t (Trace.Inv_begin { pid = 1; inv = 0; label = "hi" });
  Trace.add t (Trace.Stmt { idx = 0; pid = 1; op = Op.local "a"; inv = 0; cost = 1 });
  Trace.add t (Trace.Inv_begin { pid = 0; inv = 0; label = "lo" });
  Trace.add t (Trace.Stmt { idx = 1; pid = 0; op = Op.local "b"; inv = 0; cost = 1 });
  match Wellformed.check t with
  | [ { axiom = `Priority; pid = 0; blame = 1; _ } ] -> ()
  | vs -> Alcotest.failf "expected one priority violation, got %d" (List.length vs)

let test_wellformed_detects_quantum_violation () =
  let config = Util.uni_config ~quantum:4 [ 1; 1 ] in
  let t = Trace.create config in
  let stmt idx pid = Trace.add t (Trace.Stmt { idx; pid; op = Op.local "s"; inv = 0; cost = 1 }) in
  Trace.add t (Trace.Inv_begin { pid = 0; inv = 0; label = "a" });
  stmt 0 0;
  Trace.add t (Trace.Inv_begin { pid = 1; inv = 0; label = "b" });
  stmt 1 1 (* first preemption of p0: fine *);
  stmt 2 0 (* p0 resumes: guarantee of 4 begins *);
  stmt 3 1 (* violates p0's guarantee *);
  (match Wellformed.check t with
  | [ { axiom = `Quantum; pid = 1; blame = 0; at = 3 } ] -> ()
  | vs ->
    Alcotest.failf "expected one quantum violation, got %a"
      Fmt.(Dump.list Wellformed.pp_violation)
      vs);
  (* Same trace with axiom2 disabled is accepted. *)
  let config' = Util.uni_config ~axiom2:false ~quantum:4 [ 1; 1 ] in
  let t' = Trace.create config' in
  Trace.add t' (Trace.Inv_begin { pid = 0; inv = 0; label = "a" });
  Trace.add t' (Trace.Stmt { idx = 0; pid = 0; op = Op.local "s"; inv = 0; cost = 1 });
  Trace.add t' (Trace.Inv_begin { pid = 1; inv = 0; label = "b" });
  Trace.add t' (Trace.Stmt { idx = 1; pid = 1; op = Op.local "s"; inv = 0; cost = 1 });
  Trace.add t' (Trace.Stmt { idx = 2; pid = 0; op = Op.local "s"; inv = 0; cost = 1 });
  Trace.add t' (Trace.Stmt { idx = 3; pid = 1; op = Op.local "s"; inv = 0; cost = 1 });
  Util.checkb "accepted without axiom 2" (Wellformed.is_well_formed t')

let test_render_shapes () =
  let config = Util.uni_config ~quantum:3 [ 1; 2 ] in
  let log = ref [] in
  let bodies = [| logger_body log 0 3; logger_body log 1 2 |] in
  let policy = Policy.scripted ~fallback:Policy.first [ 0; 1; 1; 0; 0 ] in
  let r = Util.run ~config ~policy bodies in
  let s = Render.lanes r.trace in
  Util.checkb "has p1 lane" (Util.contains s "p1");
  Util.checkb "has brackets" (String.contains s '[' && String.contains s ']');
  Util.checkb "has quantum ruler" (Util.contains s "Q=3")

let test_multiprocessor_independence () =
  (* Processes on different processors interleave freely regardless of
     priority. *)
  let procs =
    [
      Proc.make ~pid:0 ~processor:0 ~priority:1 ();
      Proc.make ~pid:1 ~processor:1 ~priority:2 ();
    ]
  in
  let config = Config.make ~quantum:100 ~processors:2 ~levels:2 procs in
  let log = ref [] in
  let bodies = [| logger_body log 0 3; logger_body log 1 3 |] in
  let policy = Policy.scripted ~fallback:Policy.first [ 0; 1; 0; 1; 0; 1 ] in
  let r = Util.run ~config ~policy bodies in
  Util.checkb "finished" (Array.for_all Fun.id r.finished);
  let order = List.rev_map fst !log in
  Alcotest.(check (list int)) "free interleaving" [ 0; 1; 0; 1; 0; 1 ] order

let test_halted_hook () =
  (* The halted hook withholds a process from the policy but keeps it in
     the machine; when only halted processes remain, the run stops with
     All_halted and result.halted marks them. *)
  let config = Util.uni_config ~quantum:8 [ 1; 1 ] in
  let log = ref [] in
  let bodies = [| logger_body log 0 3; logger_body log 1 3 |] in
  let halted (pv : Policy.pview) = pv.pid = 1 && pv.own_steps >= 2 in
  let r = Engine.run ~halted ~config ~policy:(Policy.round_robin ()) bodies in
  Util.checkb "p1 finished" r.finished.(0);
  Util.checkb "p2 unfinished" (not r.finished.(1));
  Util.checkb "p2 halted" r.halted.(1);
  Util.checkb "p1 not halted" (not r.halted.(0));
  Util.checkb "stops with All_halted" (r.stop = Engine.All_halted);
  Util.checki "p2 executed exactly 2 own statements" 2 r.own_steps.(1);
  Util.checkb "well-formed" (Wellformed.is_well_formed r.trace)

let test_halted_none_marked_without_hook () =
  let config = Util.uni_config ~quantum:8 [ 1; 1 ] in
  let log = ref [] in
  let bodies = [| logger_body log 0 2; logger_body log 1 2 |] in
  let r = Engine.run ~config ~policy:(Policy.round_robin ()) bodies in
  Util.checkb "no halted marks" (not (Array.exists Fun.id r.halted))

let test_axiom2_gate_hook () =
  (* With the gate off, same-priority processes may interleave inside
     what would be a protected quantum window; the gate flips are in the
     trace and Wellformed accepts the weakened run. *)
  let config = Util.uni_config ~quantum:4 [ 1; 1 ] in
  let log = ref [] in
  let bodies = [| logger_body log 0 4; logger_body log 1 4 |] in
  (* Ping-pong: illegal under an enforced Axiom 2 for Q=4 (after p1 is
     preempted once it must get 4 protected statements on resume). *)
  let policy = Policy.scripted ~fallback:Policy.first [ 0; 1; 0; 1; 0; 1; 0; 1 ] in
  let r = Engine.run ~axiom2_active:(fun ~step:_ -> false) ~config ~policy bodies in
  Util.checkb "finished" (Array.for_all Fun.id r.finished);
  let order = List.rev_map fst !log in
  Alcotest.(check (list int)) "ping-pong happened" [ 0; 1; 0; 1; 0; 1; 0; 1 ] order;
  Util.checkb "gate event recorded"
    (List.exists
       (function Trace.Axiom2_gate { active = false; _ } -> true | _ -> false)
       (Trace.events r.trace));
  Util.checkb "weakened trace judged well-formed" (Wellformed.is_well_formed r.trace);
  (* Sanity: the same script under an enforced gate cannot ping-pong —
     the scripted entries are illegal and the fallback serializes. *)
  let log2 = ref [] in
  let bodies2 = [| logger_body log2 0 4; logger_body log2 1 4 |] in
  let r2 = Engine.run ~config ~policy:(Policy.scripted ~fallback:Policy.first [ 0; 1; 0; 1; 0; 1; 0; 1 ]) bodies2 in
  Util.checkb "enforced run well-formed" (Wellformed.is_well_formed r2.trace);
  Util.checkb "no ping-pong under enforcement"
    (List.rev_map fst !log2 <> [ 0; 1; 0; 1; 0; 1; 0; 1 ])

let test_axiom2_gate_windows () =
  (* A gate that is off only in a window: flips are recorded in pairs
     and the run stays judgeable. *)
  let config = Util.uni_config ~quantum:4 [ 1; 1 ] in
  let log = ref [] in
  let bodies = [| logger_body log 0 6; logger_body log 1 6 |] in
  let gate ~step = step < 2 || step >= 8 in
  let r =
    Engine.run ~axiom2_active:gate ~config ~policy:(Policy.random ~seed:3) bodies
  in
  let flips =
    List.filter_map
      (function Trace.Axiom2_gate { active; _ } -> Some active | _ -> None)
      (Trace.events r.trace)
  in
  Util.checkb "gate off then on" (flips = [ false; true ]);
  Util.checkb "well-formed" (Wellformed.is_well_formed r.trace)

(* Property: every engine run under a random policy and a random layout
   yields a well-formed trace. *)
let prop_engine_always_well_formed =
  let gen =
    QCheck2.Gen.(
      tup4 (int_range 0 10_000) (int_range 1 3) (int_range 1 3) (int_range 0 12))
  in
  Util.qtest ~count:60 "engine traces are well-formed" gen
    (fun (seed, processors, levels, quantum) ->
      let layout =
        Hwf_workload.Layout.random ~seed ~processors ~levels ~n:(3 + (seed mod 3))
      in
      let config = Hwf_workload.Layout.to_config ~quantum layout in
      let n = Hwf_sim.Config.n config in
      let x = Shared.make "x" 0 in
      let bodies =
        Array.init n (fun _pid () ->
            for _ = 1 to 2 do
              Eff.invocation "op" (fun () ->
                  let v = Shared.read x in
                  Eff.local "l";
                  Shared.write x (v + 1))
            done)
      in
      let r = Engine.run ~config ~policy:(Policy.random ~seed:(seed + 1)) bodies in
      Array.for_all Fun.id r.finished && Wellformed.is_well_formed r.trace)

(* Property: the incremental scheduler agrees with the retained naive
   reference. [self_check] recomputes every scheduling quantity by full
   scan each decision and asserts agreement in-run; on top, a checked
   run must be observationally identical to a plain one — same trace
   bytes, stop reason and per-pid result vectors. Exercises random
   multiprocessor layouts, dynamic priorities, empty invocations, the
   Axiom-2 gate and halting faults. *)
let prop_incremental_matches_naive =
  let gen =
    QCheck2.Gen.(
      tup4 (int_range 0 10_000) (int_range 1 3) (int_range 1 3) (int_range 0 12))
  in
  Util.qtest ~count:40 "incremental scheduler = naive reference" gen
    (fun (seed, processors, levels, quantum) ->
      let layout =
        Hwf_workload.Layout.random ~seed ~processors ~levels ~n:(3 + (seed mod 4))
      in
      let config = Hwf_workload.Layout.to_config ~quantum layout in
      let n = Config.n config in
      let axiom2_active =
        if seed mod 2 = 0 then None else Some (fun ~step -> step / 5 mod 2 = 0)
      in
      let halted =
        if seed mod 3 = 0 then
          Some (fun (pv : Policy.pview) -> pv.pid = 0 && pv.own_steps >= 4)
        else None
      in
      let run ~self_check =
        let x = Shared.make "x" 0 in
        let bodies =
          Array.init n (fun pid () ->
              for _ = 1 to 2 do
                Eff.invocation "op" (fun () ->
                    let v = Shared.read x in
                    Eff.local "l";
                    Shared.write x (v + pid + 1))
              done;
              if config.Config.levels > 1 then
                Eff.set_priority (1 + ((pid + seed) mod config.Config.levels));
              Eff.invocation "empty" (fun () -> ()))
        in
        Engine.run ?halted ?axiom2_active ~self_check ~step_limit:2_000 ~config
          ~policy:(Policy.random ~seed:(seed + 1)) bodies
      in
      let a = run ~self_check:false in
      let b = run ~self_check:true in
      Hwf_obs.Jsonl.trace_to_string a.trace = Hwf_obs.Jsonl.trace_to_string b.trace
      && a.stop = b.stop && a.finished = b.finished && a.halted = b.halted
      && a.own_steps = b.own_steps
      && Wellformed.is_well_formed a.trace)

let () =
  Alcotest.run "sim"
    [
      ( "config",
        [
          Alcotest.test_case "validation" `Quick test_config_validation;
          Alcotest.test_case "shapes" `Quick test_config_shapes;
        ] );
      ( "engine",
        [
          Alcotest.test_case "priority runs to completion" `Quick
            test_priority_runs_to_completion;
          Alcotest.test_case "quantum guarantee" `Quick test_quantum_guarantee;
          Alcotest.test_case "axiom2 off allows ping-pong" `Quick
            test_axiom2_off_allows_pingpong;
          Alcotest.test_case "first preemption free" `Quick test_first_preemption_free;
          Alcotest.test_case "shared semantics" `Quick test_shared_semantics;
          Alcotest.test_case "trace contents" `Quick test_trace_contents;
          Alcotest.test_case "own statements incremental" `Quick
            test_own_statements_incremental;
          Alcotest.test_case "now monotone" `Quick test_now_monotone;
          Alcotest.test_case "step limit" `Quick test_step_limit;
          Alcotest.test_case "policy stop" `Quick test_policy_stop;
          Alcotest.test_case "multiprocessor independence" `Quick
            test_multiprocessor_independence;
          Alcotest.test_case "nested invocation rejected" `Quick
            test_nested_invocation_rejected;
          Alcotest.test_case "exceptions propagate" `Quick test_exceptions_propagate;
          Alcotest.test_case "empty invocation" `Quick test_empty_invocation;
          Alcotest.test_case "finished process releases guarantee" `Quick
            test_finished_releases_guarantee;
          Alcotest.test_case "empty-invocation loop bounded" `Quick
            test_empty_invocation_loop_bounded;
          Alcotest.test_case "halted hook" `Quick test_halted_hook;
          Alcotest.test_case "no hook, no halted marks" `Quick
            test_halted_none_marked_without_hook;
          Alcotest.test_case "axiom2 gate off" `Quick test_axiom2_gate_hook;
          Alcotest.test_case "axiom2 gate windows" `Quick test_axiom2_gate_windows;
        ] );
      ( "wellformed",
        [
          Alcotest.test_case "detects priority violation" `Quick
            test_wellformed_detects_priority_violation;
          Alcotest.test_case "detects quantum violation" `Quick
            test_wellformed_detects_quantum_violation;
        ] );
      ("render", [ Alcotest.test_case "lane shapes" `Quick test_render_shapes ]);
      ("props",
       [ prop_engine_always_well_formed; prop_incremental_matches_naive ]);
    ]
