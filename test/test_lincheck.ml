open Hwf_check

(* Register spec: Set v / Get. *)
let reg_spec =
  Lincheck.make_spec ~init:0 ~apply:(fun s op ->
      match op with `Set v -> (v, 0) | `Get -> (s, s))

(* Hand-built uniprocessor histories: everything on processor 0, where
   the per-processor timestamp order is the classical real-time order. *)
let e pid op result t0 t1 = Hist.{ pid; op; result; proc = 0; t0; t1 }

let ok name r =
  match r with Ok () -> () | Error m -> Alcotest.failf "%s: %s" name m

let bad name r =
  match r with Error _ -> () | Ok () -> Alcotest.failf "%s: accepted" name

let test_empty () = ok "empty" (Lincheck.check reg_spec [])

let test_sequential_valid () =
  ok "seq"
    (Lincheck.check reg_spec
       [ e 0 (`Set 5) 0 0 2; e 1 `Get 5 3 4; e 0 `Get 5 5 6 ])

let test_sequential_invalid () =
  bad "stale read after set"
    (Lincheck.check reg_spec [ e 0 (`Set 5) 0 0 2; e 1 `Get 0 3 4 ])

let test_concurrent_reorder () =
  (* Overlapping Set(7) and Get -> 7 is fine even though Get started first. *)
  ok "overlap reorder"
    (Lincheck.check reg_spec [ e 0 `Get 7 0 10; e 1 (`Set 7) 0 1 9 ])

let test_realtime_respected () =
  (* Get returning the old value after a Set fully completed is invalid. *)
  bad "realtime"
    (Lincheck.check reg_spec
       [ e 0 (`Set 1) 0 0 1; e 1 (`Set 2) 0 2 3; e 2 `Get 1 4 5 ])

let test_two_writers_read_order () =
  (* Reads overlapping two concurrent writes may observe them in one
     consistent order... *)
  let h =
    [
      e 0 (`Set 1) 0 0 20;
      e 1 (`Set 2) 0 0 20;
      e 2 `Get 1 5 6;
      e 2 `Get 2 7 8;
    ]
  in
  ok "interleaved order exists" (Lincheck.check reg_spec h);
  (* ... but not flip back and forth. *)
  let h_bad = h @ [ e 2 `Get 1 9 10 ] in
  bad "flip-flop" (Lincheck.check reg_spec h_bad);
  (* And once both writes have completed, later reads must agree on one
     final value. *)
  let h_fixed =
    [ e 0 (`Set 1) 0 0 10; e 1 (`Set 2) 0 0 10; e 2 `Get 1 11 12; e 2 `Get 2 13 14 ]
  in
  bad "state cannot change after both writes completed" (Lincheck.check reg_spec h_fixed)

let cas_spec =
  Lincheck.make_spec ~init:0 ~apply:(fun s op ->
      match op with
      | `Cas (x, y) -> if s = x then (y, true) else (s, false)
      | `Get -> (s, s = 1))

let test_cas_history () =
  ok "two cas, one wins"
    (Lincheck.check
       (Lincheck.make_spec ~init:0 ~apply:(fun s op ->
            match op with `Cas (x, y) -> if s = x then (y, true) else (s, false)))
       [ e 0 (`Cas (0, 1)) true 0 5; e 1 (`Cas (0, 2)) false 0 5 ]);
  bad "both cannot win"
    (Lincheck.check
       (Lincheck.make_spec ~init:0 ~apply:(fun s op ->
            match op with `Cas (x, y) -> if s = x then (y, true) else (s, false)))
       [ e 0 (`Cas (0, 1)) true 0 5; e 1 (`Cas (0, 2)) true 0 5 ]);
  ignore cas_spec

let test_too_long () =
  let h = List.init 63 (fun i -> e 0 `Get 0 (2 * i) ((2 * i) + 1)) in
  bad "63 ops rejected" (Lincheck.check reg_spec h)

let test_closure_bearing_spec_state () =
  (* Regression: the search memoizes on (done_mask, state) with a
     structural Hashtbl; a state embedding a closure raised
     Invalid_argument "compare: functional value" as soon as two
     distinct closures with equal environments collided in a bucket.
     The checker must degrade to an unmemoized search instead. *)
  let mk v () = v in
  let spec =
    Lincheck.make_spec ~init:(0, mk 0) ~apply:(fun (v, _) op ->
        match op with
        | `Get -> ((v, mk v), v)
        | `Set x -> ((x, mk x), v))
  in
  (* Impossible read forces full backtracking: the {Get, Get} mask is
     reached along both orders with structurally equal-but-distinct
     closure states — the pre-fix crash. *)
  bad "closure spec, impossible read"
    (Lincheck.check spec [ e 0 `Get 0 0 10; e 1 `Get 0 0 10; e 2 `Get 42 0 10 ]);
  ok "closure spec, valid history"
    (Lincheck.check spec [ e 0 (`Set 5) 0 0 2; e 1 `Get 5 3 4 ])

let test_sequential_consistency_weaker () =
  (* The canonical separator: a stale read of another process's
     completed write. SC may order the read before the write (no
     program-order constraint across processes); linearizability's
     real-time order forbids it. *)
  let h = [ e 0 (`Set 1) 0 0 1; e 1 `Get 0 2 3 ] in
  bad "not linearizable" (Lincheck.check reg_spec h);
  ok "but sequentially consistent" (Lincheck.check_sequential_consistency reg_spec h);
  (* SC still requires program order: a process contradicting itself
     fails both. *)
  let h_bad = [ e 0 (`Set 5) 0 0 1; e 0 `Get 0 2 3 ] in
  bad "violates program order" (Lincheck.check_sequential_consistency reg_spec h_bad);
  (* and every linearizable history is SC *)
  let h_lin = [ e 0 (`Set 5) 0 0 2; e 1 `Get 5 3 4 ] in
  ok "lin" (Lincheck.check reg_spec h_lin);
  ok "lin implies sc" (Lincheck.check_sequential_consistency reg_spec h_lin)

let test_hist_recorder () =
  (* Hist.wrap timestamps around statements. *)
  let open Hwf_sim in
  let config = Util.uni_config ~quantum:10 [ 1 ] in
  let h = Hist.create () in
  let bodies =
    [|
      (fun () ->
        Eff.invocation "op" (fun () ->
            ignore
              (Hist.wrap h ~pid:0 `Op (fun () ->
                   Eff.local "a";
                   Eff.local "b";
                   42))));
    |]
  in
  ignore (Util.run ~config ~policy:Policy.first bodies);
  match Hist.entries h with
  | [ { pid = 0; op = `Op; result = 42; proc = 0; t0 = 0; t1 = 2 } ] -> ()
  | _ -> Alcotest.fail "unexpected history"

let test_pending_ops () =
  (* A crashed writer's Set may or may not have taken effect. *)
  let pend = [ (0, `Set 9, 0, 0) ] in
  ok "pending set took effect"
    (Lincheck.check_with_pending reg_spec [ e 1 `Get 9 5 6 ] ~pending:pend);
  ok "pending set did not take effect"
    (Lincheck.check_with_pending reg_spec [ e 1 `Get 0 5 6 ] ~pending:pend);
  (* One pending write cannot explain a value flipping back. *)
  bad "cannot flip back"
    (Lincheck.check_with_pending reg_spec
       [ e 1 `Get 9 5 6; e 1 `Get 0 7 8 ]
       ~pending:pend);
  ok "0 then 9 is one linearization"
    (Lincheck.check_with_pending reg_spec
       [ e 1 `Get 0 5 6; e 1 `Get 9 7 8 ]
       ~pending:pend);
  (* Real time still binds: a pending op cannot take effect before an
     operation that completed before its t0. *)
  bad "pending cannot linearize before its start"
    (Lincheck.check_with_pending reg_spec [ e 1 `Get 9 0 1 ]
       ~pending:[ (0, `Set 9, 0, 5) ]);
  (* With no pending ops it degenerates to check. *)
  ok "no pending = check"
    (Lincheck.check_with_pending reg_spec [ e 0 (`Set 5) 0 0 2; e 1 `Get 5 3 4 ] ~pending:[])

let test_hist_pending_recording () =
  (* A process halted mid-operation leaves the op in Hist.pending. *)
  let open Hwf_sim in
  let config = Util.uni_config ~quantum:10 [ 1; 1 ] in
  let h = Hist.create () in
  let bodies =
    Array.init 2 (fun pid () ->
        Eff.invocation "op" (fun () ->
            ignore
              (Hist.wrap h ~pid (`Set pid) (fun () ->
                   Eff.local "a";
                   Eff.local "b";
                   0))))
  in
  let halted (pv : Policy.pview) = pv.pid = 1 && pv.own_steps >= 1 in
  let r = Engine.run ~halted ~config ~policy:(Policy.round_robin ()) bodies in
  Util.checkb "p2 halted" r.halted.(1);
  (match Hist.entries h with
  | [ { pid = 0; op = `Set 0; _ } ] -> ()
  | _ -> Alcotest.fail "expected exactly p1's completed op");
  match Hist.pending h with
  | [ (1, `Set 1, _, _) ] -> ()
  | _ -> Alcotest.fail "expected p2's op pending"

(* Property: any genuinely sequential history replayed through its own
   spec is accepted. *)
let prop_sequential_always_ok =
  Util.qtest ~count:200 "sequential histories accepted"
    QCheck2.Gen.(list_size (int_range 0 12) (int_range 0 30))
    (fun writes ->
      let _, entries =
        List.fold_left
          (fun (t, acc) v ->
            (t + 2, e 0 (`Set v) 0 t (t + 1) :: e 0 `Get v (t + 10_000) (t + 10_001) :: acc))
          (0, []) writes
      in
      (* interleave gets after all sets to keep it simple and valid *)
      let sets = List.filter (fun x -> x.Hist.t0 < 10_000) entries in
      let final = match writes with [] -> None | l -> Some (List.nth l (List.length l - 1)) in
      let h =
        match final with
        | None -> sets
        | Some v -> e 1 `Get v 9_000 9_001 :: sets
      in
      Lincheck.check reg_spec h = Ok ())

let () =
  Alcotest.run "lincheck"
    [
      ( "unit",
        [
          Alcotest.test_case "empty" `Quick test_empty;
          Alcotest.test_case "sequential valid" `Quick test_sequential_valid;
          Alcotest.test_case "sequential invalid" `Quick test_sequential_invalid;
          Alcotest.test_case "concurrent reorder" `Quick test_concurrent_reorder;
          Alcotest.test_case "realtime respected" `Quick test_realtime_respected;
          Alcotest.test_case "two writers" `Quick test_two_writers_read_order;
          Alcotest.test_case "cas history" `Quick test_cas_history;
          Alcotest.test_case "too long" `Quick test_too_long;
          Alcotest.test_case "closure-bearing spec state" `Quick
            test_closure_bearing_spec_state;
          Alcotest.test_case "SC strictly weaker" `Quick test_sequential_consistency_weaker;
          Alcotest.test_case "hist recorder" `Quick test_hist_recorder;
          Alcotest.test_case "pending ops" `Quick test_pending_ops;
          Alcotest.test_case "hist pending recording" `Quick test_hist_pending_recording;
        ] );
      ("props", [ prop_sequential_always_ok ]);
    ]
