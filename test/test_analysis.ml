open Hwf_sim

let run_with ~pris ~quantum ~policy bodies =
  let config = Util.uni_config ~quantum pris in
  Util.run ~config ~policy bodies

let worker log pid k () =
  Eff.invocation "w" (fun () ->
      for _ = 1 to k do
        Eff.local "s";
        log := pid :: !log
      done)

let test_solo_invocation () =
  let log = ref [] in
  let r = run_with ~pris:[ 1 ] ~quantum:4 ~policy:Policy.first [| worker log 0 5 |] in
  let a = Analysis.of_trace r.trace in
  Util.checki "one invocation" 1 (List.length a.invocations);
  Util.checki "no switches" 0 a.switches;
  Util.checki "statements" 5 a.max_invocation_statements;
  Util.checki "no preemptions" 0 a.same_level_preemptions;
  match a.invocations with
  | [ i ] ->
    Util.checkb "completed" i.completed;
    Util.checki "pid" 0 i.pid
  | _ -> Alcotest.fail "expected one"

let test_same_level_preemption_counted () =
  let log = ref [] in
  let r =
    run_with ~pris:[ 1; 1 ] ~quantum:3
      ~policy:(Hwf_adversary.Stagger.max_interleave ())
      [| worker log 0 6; worker log 1 6 |]
  in
  let a = Analysis.of_trace r.trace in
  Util.checkb "some same-level preemptions" (a.same_level_preemptions >= 1);
  Util.checki "no higher-level preemptions" 0 a.higher_level_preemptions;
  (* the quantum rations same-level preemptions: at most
     ceil(6 / 3) = 2 per invocation here *)
  Util.checkb "rationed"
    (Analysis.max_same_level_preemptions_per_invocation a <= 2)

let test_higher_level_classified () =
  let log = ref [] in
  let policy = Policy.scripted ~fallback:Policy.first [ 0; 1; 1; 1; 0 ] in
  let r =
    run_with ~pris:[ 1; 2 ] ~quantum:8 ~policy [| worker log 0 2; worker log 1 3 |]
  in
  let a = Analysis.of_trace r.trace in
  Util.checki "one higher-level preemption" 1 a.higher_level_preemptions;
  Util.checki "no same-level" 0 a.same_level_preemptions

let test_theorem1_quantum_implies_single_preemption () =
  (* The structural fact Theorem 1 relies on: with Q >= invocation
     length, an invocation suffers at most one same-level preemption. *)
  let ok = ref true in
  for seed = 0 to 30 do
    let log = ref [] in
    let r =
      run_with ~pris:[ 1; 1; 1 ] ~quantum:8 ~policy:(Policy.random ~seed)
        [| worker log 0 8; worker log 1 8; worker log 2 8 |]
    in
    let a = Analysis.of_trace r.trace in
    if Analysis.max_same_level_preemptions_per_invocation a > 1 then ok := false
  done;
  Util.checkb "at most one same-level preemption per 8-statement invocation" !ok

let test_switch_count () =
  let log = ref [] in
  let policy = Policy.scripted ~fallback:Policy.first [ 0; 1; 0; 1 ] in
  let r =
    run_with ~pris:[ 1; 1 ] ~quantum:100 ~policy [| worker log 0 2; worker log 1 2 |]
  in
  let a = Analysis.of_trace r.trace in
  Util.checki "three switches" 3 a.switches;
  Alcotest.(check (array int)) "per-pid" [| 2; 2 |] a.per_pid_statements

let test_multiprocessor_switches_not_inflated () =
  (* Regression: switches were counted whenever consecutive trace
     statements had different pids, so ordinary cross-processor
     interleaving inflated the context-switch count on P > 1. A switch
     is a change of running process on one processor. *)
  let procs =
    [ Proc.make ~pid:0 ~processor:0 ~priority:1 ();
      Proc.make ~pid:1 ~processor:1 ~priority:1 () ]
  in
  let config = Config.make ~quantum:4 ~processors:2 ~levels:1 procs in
  let log = ref [] in
  let policy = Policy.scripted ~fallback:Policy.first [ 0; 1; 0; 1 ] in
  let r = Util.run ~config ~policy [| worker log 0 2; worker log 1 2 |] in
  let a = Analysis.of_trace r.trace in
  Util.checki "no switches across processors" 0 a.switches;
  let m = Hwf_obs.Metrics.of_trace r.trace in
  Util.checki "metrics agree" 0 m.Hwf_obs.Metrics.switches

let test_dynamic_priority_classification () =
  (* After p0 raises its priority, its statements count as higher-level
     activity in p1's gaps. *)
  let config =
    Config.uniprocessor ~quantum:8 ~levels:2
      [ Proc.make ~pid:0 ~processor:0 ~priority:1 ();
        Proc.make ~pid:1 ~processor:0 ~priority:1 () ]
  in
  let bodies =
    [|
      (fun () ->
        Eff.invocation "a" (fun () -> Eff.local "s");
        Eff.set_priority 2;
        Eff.invocation "b" (fun () ->
            Eff.local "s";
            Eff.local "s"));
      (fun () ->
        Eff.invocation "w" (fun () ->
            for _ = 1 to 4 do
              Eff.local "s"
            done));
    |]
  in
  (* p1 starts, p0 does inv a (preempting p1 same-level), p1 resumes for
     one statement, p0 raises to 2 and does inv b (preempting p1
     higher-level), p1 finishes. Two separate gaps, two classes. *)
  let policy = Policy.scripted ~fallback:Policy.first [ 1; 0; 1; 0; 0; 1; 1 ] in
  let r = Util.run ~config ~policy bodies in
  let a = Analysis.of_trace r.trace in
  Util.checkb "has higher-level preemption" (a.higher_level_preemptions >= 1);
  Util.checkb "has same-level preemption" (a.same_level_preemptions >= 1)

let prop_analysis_consistent =
  Util.qtest ~count:60 "per-pid statements sum to trace total"
    QCheck2.Gen.(int_range 0 5_000)
    (fun seed ->
      let layout = Hwf_workload.Layout.random ~seed ~processors:2 ~levels:2 ~n:4 in
      let config = Hwf_workload.Layout.to_config ~quantum:(seed mod 10) layout in
      let x = Shared.make "x" 0 in
      let bodies =
        Array.init 4 (fun _ () ->
            Eff.invocation "op" (fun () ->
                let v = Shared.read x in
                Shared.write x (v + 1)))
      in
      let r = Engine.run ~config ~policy:(Policy.random ~seed) bodies in
      let a = Analysis.of_trace r.trace in
      Array.fold_left ( + ) 0 a.per_pid_statements = Trace.statements r.trace
      && List.length a.invocations = 4
      && List.for_all (fun (i : Analysis.inv_stat) -> i.completed) a.invocations)

let () =
  Alcotest.run "analysis"
    [
      ( "unit",
        [
          Alcotest.test_case "solo invocation" `Quick test_solo_invocation;
          Alcotest.test_case "same-level preemption" `Quick
            test_same_level_preemption_counted;
          Alcotest.test_case "higher-level classified" `Quick test_higher_level_classified;
          Alcotest.test_case "theorem 1 structure" `Quick
            test_theorem1_quantum_implies_single_preemption;
          Alcotest.test_case "switch count" `Quick test_switch_count;
          Alcotest.test_case "multiprocessor switches not inflated" `Quick
            test_multiprocessor_switches_not_inflated;
          Alcotest.test_case "dynamic priority classification" `Quick
            test_dynamic_priority_classification;
        ] );
      ("props", [ prop_analysis_consistent ]);
    ]
