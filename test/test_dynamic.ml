open Hwf_sim
open Hwf_core
open Hwf_adversary

(* Sec. 5 extensions: dynamic priorities and renaming. *)

let test_set_priority_changes_scheduling () =
  (* p0 starts low, raises itself to 2 between invocations; from then on
     it preempts p1. *)
  let config = Util.uni_config ~quantum:4 [ 1; 1 ] in
  let log = ref [] in
  let bodies =
    [|
      (fun () ->
        Eff.invocation "a" (fun () -> Eff.local "s");
        Eff.set_priority 2;
        Eff.invocation "b" (fun () ->
            for _ = 1 to 3 do
              Eff.local "s";
              log := (0, Eff.now ()) :: !log
            done));
      (fun () ->
        Eff.invocation "w" (fun () ->
            for _ = 1 to 6 do
              Eff.local "s";
              log := (1, Eff.now ()) :: !log
            done));
    |]
  in
  (* config has 1 level; need 2 *)
  let config =
    Config.uniprocessor ~quantum:4 ~levels:2
      (Array.to_list config.Config.procs)
  in
  let r = Util.run ~config ~policy:(Stagger.max_interleave ()) bodies in
  Util.checkb "finished" (Array.for_all Fun.id r.finished);
  (* once p0's second invocation starts, it must run its 3 statements
     without p1 interleaving (it is higher priority now) *)
  let order = List.rev_map fst !log in
  let rec after_first_p0 = function
    | 0 :: rest -> rest
    | _ :: rest -> after_first_p0 rest
    | [] -> []
  in
  let tail = after_first_p0 order in
  let p0_block =
    let rec leading = function 0 :: rest -> 1 + leading rest | _ -> 0 in
    leading tail
  in
  Util.checkb "p0 high-priority block contiguous" (p0_block >= 2)

let test_set_priority_mid_invocation_rejected () =
  let config = Util.uni_config ~quantum:4 [ 1 ] in
  let config =
    Config.uniprocessor ~quantum:4 ~levels:2 (Array.to_list config.Config.procs)
  in
  let bodies =
    [|
      (fun () ->
        Eff.invocation "bad" (fun () ->
            Eff.local "s";
            Eff.set_priority 2));
    |]
  in
  Alcotest.check_raises "rejected"
    (Invalid_argument "Eff.set_priority: p1 cannot change priority mid-invocation")
    (fun () -> ignore (Engine.run ~config ~policy:Policy.first bodies))

let test_set_priority_mid_invocation_names_offender () =
  (* The error must name the process that performed the illegal change,
     not just the first process of the configuration. *)
  let config = Util.uni_config ~quantum:4 [ 1; 1 ] in
  let config =
    Config.uniprocessor ~quantum:4 ~levels:2 (Array.to_list config.Config.procs)
  in
  let bodies =
    [|
      (fun () -> Eff.invocation "ok" (fun () -> Eff.local "s"));
      (fun () ->
        Eff.invocation "bad" (fun () ->
            Eff.local "s";
            Eff.set_priority 2));
    |]
  in
  Alcotest.check_raises "names p2"
    (Invalid_argument "Eff.set_priority: p2 cannot change priority mid-invocation")
    (fun () -> ignore (Engine.run ~config ~policy:Policy.first bodies))

let test_set_priority_legal_change_recorded () =
  (* A between-invocation change is legal, shows up as a Set_priority
     trace event, and the trace stays well-formed. *)
  let config = Util.uni_config ~quantum:4 [ 1 ] in
  let config =
    Config.uniprocessor ~quantum:4 ~levels:3 (Array.to_list config.Config.procs)
  in
  let bodies =
    [|
      (fun () ->
        Eff.invocation "a" (fun () -> Eff.local "s");
        Eff.set_priority 3;
        Eff.invocation "b" (fun () -> Eff.local "s"));
    |]
  in
  let r = Engine.run ~config ~policy:Policy.first bodies in
  Util.checkb "finished" (Array.for_all Fun.id r.finished);
  let changes =
    Trace.fold
      (fun acc ev ->
        match ev with Trace.Set_priority { pid; priority } -> (pid, priority) :: acc | _ -> acc)
      [] r.trace
  in
  Alcotest.(check (list (pair int int))) "one recorded change" [ (0, 3) ] changes;
  Util.checkb "well-formed" (Wellformed.is_well_formed r.trace)

let test_set_priority_range_check () =
  let config = Util.uni_config ~quantum:4 [ 1 ] in
  let bodies = [| (fun () -> Eff.set_priority 5) |] in
  Alcotest.check_raises "range"
    (Invalid_argument "Eff.set_priority: level out of range") (fun () ->
      ignore (Engine.run ~config ~policy:Policy.first bodies))

let test_wellformed_tracks_dynamic_priority () =
  (* A priority change makes previously legal interleavings illegal: the
     checker must judge statements against the current priority. *)
  let config =
    Config.uniprocessor ~quantum:4 ~levels:2
      [ Proc.make ~pid:0 ~processor:0 ~priority:1 ();
        Proc.make ~pid:1 ~processor:0 ~priority:1 () ]
  in
  let t = Trace.create config in
  Trace.add t (Trace.Set_priority { pid = 0; priority = 2 });
  Trace.add t (Trace.Inv_begin { pid = 0; inv = 0; label = "hi" });
  Trace.add t (Trace.Stmt { idx = 0; pid = 0; op = Op.local "s"; inv = 0; cost = 1 });
  Trace.add t (Trace.Inv_begin { pid = 1; inv = 0; label = "lo" });
  Trace.add t (Trace.Stmt { idx = 1; pid = 1; op = Op.local "s"; inv = 0; cost = 1 });
  (match Wellformed.check t with
  | [ { axiom = `Priority; pid = 1; blame = 0; _ } ] -> ()
  | vs -> Alcotest.failf "expected 1 priority violation, got %d" (List.length vs));
  (* without the priority change the same trace is fine *)
  let t' = Trace.create config in
  Trace.add t' (Trace.Inv_begin { pid = 0; inv = 0; label = "hi" });
  Trace.add t' (Trace.Stmt { idx = 0; pid = 0; op = Op.local "s"; inv = 0; cost = 1 });
  Trace.add t' (Trace.Inv_begin { pid = 1; inv = 0; label = "lo" });
  Trace.add t' (Trace.Stmt { idx = 1; pid = 1; op = Op.local "s"; inv = 0; cost = 1 });
  Util.checkb "legal without the change" (Wellformed.is_well_formed t')

let test_consensus_with_dynamic_priorities () =
  (* Two rounds of Fig. 3 consensus; processes shuffle priorities between
     rounds. Agreement must hold in both rounds under exploration. *)
  let mk () =
    let o1 = Uni_consensus.make "c1" in
    let o2 = Uni_consensus.make "c2" in
    let outs = Array.make_matrix 2 2 (-1) in
    let programs =
      Array.init 2 (fun pid () ->
          Eff.invocation "r1" (fun () -> outs.(0).(pid) <- Uni_consensus.decide o1 pid);
          Eff.set_priority (if pid = 0 then 2 else 1);
          Eff.invocation "r2" (fun () ->
              outs.(1).(pid) <- Uni_consensus.decide o2 (10 + pid)))
    in
    let check (r : Engine.result) =
      if not (Array.for_all Fun.id r.finished) then Error "unfinished"
      else if outs.(0).(0) <> outs.(0).(1) then Error "round 1 disagreement"
      else if outs.(1).(0) <> outs.(1).(1) then Error "round 2 disagreement"
      else Ok ()
    in
    Explore.{ programs; check }
  in
  let config =
    Config.uniprocessor ~quantum:8 ~levels:2
      [ Proc.make ~pid:0 ~processor:0 ~priority:1 ();
        Proc.make ~pid:1 ~processor:0 ~priority:2 () ]
  in
  Util.expect_ok "dynamic priorities"
    (Explore.explore ~max_runs:500_000 Explore.{ name = "dyn"; config; make = mk })

let test_renaming_distinct () =
  let n = 4 in
  let config = Util.uni_config ~quantum:3000 (List.init n (fun _ -> 1)) in
  let make () =
    let r = Renaming.make "names" in
    let got = Array.make n 0 in
    let programs =
      Array.init n (fun pid () ->
          Eff.invocation "acquire" (fun () -> got.(pid) <- Renaming.acquire r ~pid))
    in
    let check (res : Engine.result) =
      if not (Array.for_all Fun.id res.finished) then Error "unfinished"
      else
        let sorted = Array.copy got in
        Array.sort compare sorted;
        let distinct = Array.to_list sorted |> List.sort_uniq compare in
        if List.length distinct <> n then
          Error (Fmt.str "duplicate names %a" Fmt.(Dump.array int) got)
        else if sorted.(n - 1) > n then
          Error (Fmt.str "name %d out of dense range 1..%d" sorted.(n - 1) n)
        else Ok ()
    in
    Explore.{ programs; check }
  in
  let scenario = Explore.{ name = "renaming"; config; make } in
  Util.expect_ok "renaming pb=2"
    (Explore.explore ~preemption_bound:2 ~max_runs:300_000 scenario);
  Util.expect_ok "renaming random" (Explore.random_runs ~runs:200 ~seed:3 scenario)

let test_renaming_mixed_priorities () =
  let config = Util.uni_config ~quantum:3000 [ 1; 2; 3 ] in
  let make () =
    let r = Renaming.make "names" in
    let got = Array.make 3 0 in
    let programs =
      Array.init 3 (fun pid () ->
          Eff.invocation "acquire" (fun () -> got.(pid) <- Renaming.acquire r ~pid))
    in
    let check (res : Engine.result) =
      if not (Array.for_all Fun.id res.finished) then Error "unfinished"
      else
        let sorted = List.sort compare (Array.to_list got) in
        if sorted = [ 1; 2; 3 ] then Ok ()
        else Error (Fmt.str "names %a" Fmt.(Dump.array int) got)
    in
    Explore.{ programs; check }
  in
  Util.expect_ok "renaming 3 levels"
    (Explore.explore ~preemption_bound:2 ~max_runs:300_000
       Explore.{ name = "ren3"; config; make })

let () =
  Alcotest.run "dynamic"
    [
      ( "priorities",
        [
          Alcotest.test_case "changes scheduling" `Quick test_set_priority_changes_scheduling;
          Alcotest.test_case "mid-invocation rejected" `Quick
            test_set_priority_mid_invocation_rejected;
          Alcotest.test_case "mid-invocation names offender" `Quick
            test_set_priority_mid_invocation_names_offender;
          Alcotest.test_case "legal change recorded" `Quick
            test_set_priority_legal_change_recorded;
          Alcotest.test_case "range check" `Quick test_set_priority_range_check;
          Alcotest.test_case "wellformed tracks changes" `Quick
            test_wellformed_tracks_dynamic_priority;
          Alcotest.test_case "consensus across changes" `Quick
            test_consensus_with_dynamic_priorities;
        ] );
      ( "renaming",
        [
          Alcotest.test_case "distinct dense names" `Slow test_renaming_distinct;
          Alcotest.test_case "mixed priorities" `Quick test_renaming_mixed_priorities;
        ] );
    ]
