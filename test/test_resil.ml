(* The resilience layer (lib/resil) and its integration with the
   campaign runners: per-cell deadlines, the error taxonomy and retry
   policy, hwf-ckpt/1 checkpoint journals, and the kill-and-resume
   determinism contract of docs/ROBUSTNESS.md — a campaign interrupted
   mid-flight and resumed from its checkpoint must produce the same
   report as an uninterrupted run, sequentially and under --jobs 2. *)

open Hwf_sim
open Hwf_workload
open Hwf_faults
module Resil = Hwf_resil.Resil
module Checkpoint = Hwf_resil.Checkpoint

let tmpfile () = Filename.temp_file "hwf_resil_test" ".ckpt.jsonl"

(* ---- deadlines ---- *)

let test_deadline_fuel () =
  let d = Resil.deadline ~fuel:3 () in
  Util.checkb "fresh fuel not expired" (not (Resil.expired d));
  Resil.check_deadline d;
  Resil.spend d 3;
  Util.checkb "spent fuel expired" (Resil.expired d);
  (match Resil.check_deadline d with
  | () -> Alcotest.fail "expected Deadline_exceeded"
  | exception Resil.Deadline_exceeded _ -> ());
  Util.checkb "no_deadline never expires" (not (Resil.expired Resil.no_deadline))

let test_deadline_wall () =
  let d = Resil.deadline ~wall_s:0.001 () in
  Unix.sleepf 0.01;
  Util.checkb "wall deadline expired" (Resil.expired d);
  match Resil.wall_left_s d with
  | Some left -> Util.checkb "no wall time left" (left <= 0.)
  | None -> Alcotest.fail "wall deadline reports no wall budget"

let test_guard_observer () =
  (* The guard is what turns a livelocked engine run into a structured
     timeout: it must raise from inside the event stream. *)
  let g = Resil.guard_observer ~every:1 (Resil.deadline ~wall_s:0.0 ()) in
  Unix.sleepf 0.005;
  match
    for _ = 1 to 100 do
      g ()
    done
  with
  | () -> Alcotest.fail "guard never fired"
  | exception Resil.Deadline_exceeded _ -> ()

(* ---- taxonomy and retry ---- *)

let test_classify () =
  let transient e = Resil.classify e = Resil.Transient in
  Util.checkb "OOM is transient" (transient Out_of_memory);
  Util.checkb "stack overflow is transient" (transient Stack_overflow);
  Util.checkb "EINTR is transient"
    (transient (Unix.Unix_error (Unix.EINTR, "read", "")));
  Util.checkb "Failure is a harness bug"
    (Resil.classify (Failure "boom") = Resil.Harness_bug)

let test_run_cell_ok () =
  let c = Resil.run_cell (fun _ -> 42) in
  Util.checkb "value" (Resil.cell_value c = Some 42);
  Util.checki "one attempt" 1 c.Resil.attempts

let test_run_cell_retry_backoff () =
  (* Two transient failures then success: the retry policy must make
     exactly three attempts with exponentially growing backoff sleeps
     (0.05, then 0.05 * 8), and the cell must come back Ok. *)
  let tries = ref 0 and sleeps = ref [] in
  let f _ =
    incr tries;
    if !tries < 3 then raise Stack_overflow else "ok"
  in
  let c =
    Resil.run_cell ~retry:Resil.default_retry
      ~sleep:(fun s -> sleeps := s :: !sleeps)
      f
  in
  Util.checkb "recovered" (Resil.cell_value c = Some "ok");
  Util.checki "three attempts" 3 c.Resil.attempts;
  (match List.rev !sleeps with
  | [ s1; s2 ] ->
    Util.check (Alcotest.float 1e-9) "base backoff" 0.05 s1;
    Util.check (Alcotest.float 1e-9) "x8 backoff" 0.4 s2
  | l -> Alcotest.failf "expected 2 backoff sleeps, got %d" (List.length l));
  let cov = Resil.coverage_of_cells [| c |] in
  Util.checki "retries counted" 2 cov.Resil.retries;
  Util.checki "degraded counted" 1 cov.Resil.degraded

let test_run_cell_harness_bug_not_retried () =
  let tries = ref 0 in
  let c =
    Resil.run_cell ~retry:Resil.default_retry
      ~sleep:(fun _ -> ())
      (fun _ ->
        incr tries;
        failwith "harness bug")
  in
  (match c.Resil.outcome with
  | Resil.Errored (Resil.Harness_bug, msg) ->
    Util.checkb "message kept" (Util.contains msg "harness bug")
  | _ -> Alcotest.fail "expected Errored Harness_bug");
  Util.checki "never retried" 1 !tries

let test_run_cell_timeout_demotion () =
  (* Every attempt times out; the attempt number must reach the deadline
     builder so the caller can demote the budget. *)
  let seen = ref [] in
  let deadline_for ~attempt =
    seen := attempt :: !seen;
    Resil.deadline ~fuel:1 ()
  in
  let c =
    Resil.run_cell
      ~retry:{ Resil.default_retry with attempts = 2 }
      ~sleep:(fun _ -> ())
      ~deadline_for
      (fun d ->
        Resil.spend d 1;
        Resil.check_deadline d)
  in
  (match c.Resil.outcome with
  | Resil.Timed_out _ -> ()
  | _ -> Alcotest.fail "expected Timed_out");
  Util.checki "both attempts made" 2 c.Resil.attempts;
  Util.check Alcotest.(list int) "builder saw attempt numbers" [ 1; 2 ]
    (List.rev !seen)

let test_map_should_stop () =
  Resil.reset_interrupt ();
  let stop = Atomic.make false in
  let cells =
    Resil.map ~jobs:1
      ~should_stop:(fun () -> Atomic.get stop)
      (fun _ i ->
        if i = 1 then Atomic.set stop true;
        i * 10)
      (Array.init 6 Fun.id)
  in
  let cov = Resil.coverage_of_cells cells in
  Util.checki "total" 6 cov.Resil.cells_total;
  Util.checkb "some cells skipped" (cov.Resil.skipped > 0);
  Util.checkb "stop is not silent" (not (Resil.complete cov));
  Util.checkb "completed prefix kept" (Resil.cell_value cells.(0) = Some 0)

(* ---- checkpoint journals ---- *)

let test_checkpoint_roundtrip () =
  let path = tmpfile () in
  let t = Checkpoint.create ~path ~campaign:"camp" ~cells:3 in
  Checkpoint.record t ~idx:0 ~key:"a" ~payload:"p0";
  Checkpoint.record t ~idx:1 ~key:"b" ~payload:"p1";
  Checkpoint.record t ~idx:0 ~key:"a" ~payload:"p0'";
  Checkpoint.close t;
  (match Checkpoint.load ~path with
  | Error e -> Alcotest.failf "load: %s" e
  | Ok (h, entries) ->
    Util.check Alcotest.string "campaign" "camp" h.Checkpoint.campaign;
    Util.checki "cells" 3 h.Checkpoint.cells;
    Util.checki "last-wins dedup" 2 (List.length entries);
    let e0 = List.find (fun e -> e.Checkpoint.idx = 0) entries in
    Util.check Alcotest.string "last record wins" "p0'" e0.Checkpoint.payload);
  Sys.remove path

let test_checkpoint_partial_trailing_line () =
  (* A SIGKILL mid-write leaves a partial last line; the loader must
     drop it and keep everything before. *)
  let path = tmpfile () in
  let t = Checkpoint.create ~path ~campaign:"camp" ~cells:2 in
  Checkpoint.record t ~idx:0 ~key:"a" ~payload:"p0";
  Checkpoint.close t;
  let oc = open_out_gen [ Open_append ] 0o644 path in
  output_string oc "{\"cell\":1,\"key\":\"b\",\"pay";
  close_out oc;
  (match Checkpoint.load ~path with
  | Error e -> Alcotest.failf "load: %s" e
  | Ok (_, entries) ->
    Util.checki "partial line dropped" 1 (List.length entries));
  Sys.remove path

let test_checkpoint_campaign_mismatch () =
  let path = tmpfile () in
  let t = Checkpoint.create ~path ~campaign:"camp-A" ~cells:2 in
  Checkpoint.close t;
  (match Checkpoint.open_ ~path ~campaign:"camp-B" ~cells:2 ~resume:true with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "resume across campaigns must be refused");
  (match Checkpoint.open_ ~path ~campaign:"camp-A" ~cells:5 ~resume:true with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "resume with a different cell count must be refused");
  Sys.remove path;
  (* A missing file degrades to a fresh journal. *)
  match Checkpoint.open_ ~path ~campaign:"camp-A" ~cells:2 ~resume:true with
  | Ok (t, []) ->
    Checkpoint.close t;
    Sys.remove path
  | Ok _ -> Alcotest.fail "missing file must restore no entries"
  | Error e -> Alcotest.failf "missing file must degrade to fresh: %s" e

(* ---- certify kill-and-resume determinism ---- *)

let check_reports name (r1 : Certify.report) (r2 : Certify.report) =
  Util.checki (name ^ ": plans") r1.plans r2.plans;
  Util.checki (name ^ ": passed") r1.passed r2.passed;
  Util.checki (name ^ ": blocked") r1.blocked r2.blocked;
  Util.checki (name ^ ": worst own-steps") r1.worst_own_steps r2.worst_own_steps;
  Util.checki (name ^ ": failures") (List.length r1.failures)
    (List.length r2.failures);
  List.iter2
    (fun (f1 : Certify.failure) (f2 : Certify.failure) ->
      Util.check Alcotest.string (name ^ ": failure message") f1.message f2.message;
      Util.check Alcotest.(list int) (name ^ ": shrunk schedule") f1.schedule
        f2.schedule)
    r1.failures r2.failures

let certify_kill_resume ~jobs () =
  Resil.reset_interrupt ();
  let subject = Suite.fig3 ~seed:17 () in
  let plans = Suite.campaign ~quick:true ~seed:17 subject in
  let reference = Certify.certify ~jobs subject plans in
  let path = tmpfile () in
  (* The "kill": stop claiming cells after the 5th should_stop poll, as
     a SIGTERM would. Completed cells are already journaled. *)
  let polls = Atomic.make 0 in
  let partial =
    Certify.certify ~jobs ~checkpoint:path
      ~should_stop:(fun () -> Atomic.fetch_and_add polls 1 >= 5)
      subject plans
  in
  Util.checkb "interrupted run is visibly partial"
    (not (Resil.complete partial.Certify.coverage));
  Util.checkb "interrupted run did some cells"
    (partial.Certify.coverage.Resil.cells_done > 0);
  let resumed = Certify.certify ~jobs ~checkpoint:path ~resume:true subject plans in
  Util.checkb "resumed run is complete"
    (Resil.complete resumed.Certify.coverage);
  check_reports "resume equals clean" reference resumed;
  Sys.remove path

let test_certify_kill_resume_seq () = certify_kill_resume ~jobs:1 ()
let test_certify_kill_resume_par () = certify_kill_resume ~jobs:2 ()

let test_certify_timeout_structured () =
  (* A livelocked subject (unbounded spin, no step limit) must come back
     as a structured per-cell timeout with partial coverage — not hang
     the campaign and not count as a counterexample. *)
  let subject =
    {
      Certify.name = "livelock";
      config = Layout.to_config ~quantum:8 [ (0, 1) ];
      policy = (fun () -> Policy.first);
      make =
        (fun () ->
          {
            Certify.programs =
              [|
                (fun () ->
                  Eff.invocation "spin" (fun () ->
                      while true do
                        Eff.local "s"
                      done));
              |];
            check = (fun ~survivors:_ _ -> Ok ());
          });
      step_bound = max_int;
      bound_desc = "unbounded";
      step_limit = max_int;
    }
  in
  let r = Certify.certify ~cell_wall_s:0.05 subject [ Plan.none ] in
  let c = r.Certify.coverage in
  Util.checki "one timeout" 1 c.Resil.timeouts;
  Util.checki "nothing done" 0 c.Resil.cells_done;
  Util.checkb "campaign visibly incomplete" (not (Resil.complete c));
  Util.checki "timeouts are not failures" 0 (List.length r.Certify.failures)

(* ---- explore kill-and-resume determinism ---- *)

let fig3_scenario ~quantum ~pris =
  (Scenarios.consensus ~name:"resil.f3" ~impl:Scenarios.Fig3 ~quantum
     ~layout:(List.map (fun p -> (0, p)) pris))
    .Scenarios.scenario

let check_outcomes name (o1 : Hwf_adversary.Explore.outcome)
    (o2 : Hwf_adversary.Explore.outcome) =
  Util.checki (name ^ ": runs") o1.runs o2.runs;
  Util.checkb (name ^ ": exhaustive") (o1.exhaustive = o2.exhaustive);
  match (o1.counterexample, o2.counterexample) with
  | None, None -> ()
  | Some c1, Some c2 ->
    Util.check Alcotest.string (name ^ ": message") c1.message c2.message;
    Util.check Alcotest.(list int) (name ^ ": decisions") c1.decisions c2.decisions
  | _ -> Alcotest.failf "%s: counterexample verdicts differ" name

let test_explore_checkpoint_resume () =
  let open Hwf_adversary in
  let scenario = fig3_scenario ~quantum:8 ~pris:[ 1; 1; 1 ] in
  let reference = Explore.explore ~jobs:1 scenario in
  let path = tmpfile () in
  let fresh = Explore.explore ~checkpoint:path scenario in
  check_outcomes "checkpointed equals plain" reference fresh;
  let resumed = Explore.explore ~checkpoint:path ~resume:true scenario in
  check_outcomes "full resume equals plain" reference resumed;
  (* Truncate the journal to its header plus the first subtree — the
     state a SIGKILL early in the campaign leaves behind — and resume:
     the restored subtree merges with the re-run ones, identically. *)
  let lines = String.split_on_char '\n' (In_channel.with_open_text path In_channel.input_all) in
  let keep = List.filteri (fun i l -> i < 2 && l <> "") lines in
  Out_channel.with_open_text path (fun oc ->
      List.iter (fun l -> Printf.fprintf oc "%s\n" l) keep);
  let resumed = Explore.explore ~checkpoint:path ~resume:true scenario in
  check_outcomes "partial resume equals plain" reference resumed;
  Sys.remove path

let test_explore_checkpoint_resume_counterexample () =
  let open Hwf_adversary in
  let scenario = fig3_scenario ~quantum:1 ~pris:[ 1; 1 ] in
  let reference = Explore.explore ~jobs:1 scenario in
  Util.expect_fail "fig3 Q=1" reference;
  let path = tmpfile () in
  let fresh = Explore.explore ~checkpoint:path scenario in
  check_outcomes "checkpointed counterexample" reference fresh;
  (* The resumed counterexample is rebuilt by replaying its journaled
     decision sequence; trace and message must both survive. *)
  let resumed = Explore.explore ~checkpoint:path ~resume:true scenario in
  check_outcomes "restored counterexample" reference resumed;
  (match (reference.Explore.counterexample, resumed.Explore.counterexample) with
  | Some c1, Some c2 ->
    Util.checki "replayed trace has the same statement count"
      (Trace.statements c1.Explore.trace)
      (Trace.statements c2.Explore.trace)
  | _ -> Alcotest.fail "expected counterexamples on both sides");
  Sys.remove path

let test_explore_checkpoint_jobs_grain () =
  (* Kill-and-resume quantified over the knobs: a campaign cut short by
     [should_stop] must resume to the plain outcome whatever jobs/grain
     the resuming invocation uses — the journal is per subtree at every
     grain. *)
  let open Hwf_adversary in
  let scenario = fig3_scenario ~quantum:8 ~pris:[ 1; 1; 1 ] in
  let reference = Explore.explore ~jobs:1 scenario in
  List.iter
    (fun (jobs, grain) ->
      let path = tmpfile () in
      let polls = ref 0 in
      let stop () =
        incr polls;
        !polls > 40
      in
      let partial = Explore.explore ~checkpoint:path ~should_stop:stop scenario in
      Util.checkb "interrupted campaign is visibly partial"
        (not (Resil.complete partial.Explore.coverage));
      let resumed =
        Explore.explore ~checkpoint:path ~resume:true ~jobs ~grain scenario
      in
      check_outcomes
        (Printf.sprintf "resume at jobs=%d grain=%d" jobs grain)
        reference resumed;
      Sys.remove path)
    [ (1, 1); (2, 1); (4, 2) ]

let test_explore_checkpoint_dpor_identity () =
  (* The armed [dpor] value changes run counts, so it is part of the
     campaign identity: a journal written with pruning cannot seed a
     [--no-dpor] resume. *)
  let open Hwf_adversary in
  let scenario = fig3_scenario ~quantum:8 ~pris:[ 1; 1 ] in
  let path = tmpfile () in
  ignore (Explore.explore ~checkpoint:path scenario);
  (match Explore.explore ~checkpoint:path ~resume:true ~dpor:false scenario with
  | _ -> Alcotest.fail "expected a campaign mismatch"
  | exception Invalid_argument m ->
    Util.checkb "refused as a different campaign" (Util.contains m "Explore.explore"));
  Sys.remove path

let () =
  Alcotest.run "resil"
    [
      ( "deadline",
        [
          Alcotest.test_case "fuel budget" `Quick test_deadline_fuel;
          Alcotest.test_case "wall budget" `Quick test_deadline_wall;
          Alcotest.test_case "guard observer raises" `Quick test_guard_observer;
        ] );
      ( "retry",
        [
          Alcotest.test_case "taxonomy" `Quick test_classify;
          Alcotest.test_case "ok cell" `Quick test_run_cell_ok;
          Alcotest.test_case "transient retry + backoff" `Quick
            test_run_cell_retry_backoff;
          Alcotest.test_case "harness bug not retried" `Quick
            test_run_cell_harness_bug_not_retried;
          Alcotest.test_case "timeout demotion" `Quick
            test_run_cell_timeout_demotion;
          Alcotest.test_case "map stops cooperatively" `Quick test_map_should_stop;
        ] );
      ( "checkpoint",
        [
          Alcotest.test_case "round-trip, last wins" `Quick
            test_checkpoint_roundtrip;
          Alcotest.test_case "partial trailing line" `Quick
            test_checkpoint_partial_trailing_line;
          Alcotest.test_case "campaign mismatch refused" `Quick
            test_checkpoint_campaign_mismatch;
        ] );
      ( "certify",
        [
          Alcotest.test_case "kill and resume (sequential)" `Quick
            test_certify_kill_resume_seq;
          Alcotest.test_case "kill and resume (jobs=2)" `Quick
            test_certify_kill_resume_par;
          Alcotest.test_case "livelock becomes structured timeout" `Quick
            test_certify_timeout_structured;
        ] );
      ( "explore",
        [
          Alcotest.test_case "checkpoint and resume" `Quick
            test_explore_checkpoint_resume;
          Alcotest.test_case "kill and resume across jobs/grain" `Quick
            test_explore_checkpoint_jobs_grain;
          Alcotest.test_case "dpor is campaign identity" `Quick
            test_explore_checkpoint_dpor_identity;
          Alcotest.test_case "restored counterexample" `Quick
            test_explore_checkpoint_resume_counterexample;
        ] );
    ]
