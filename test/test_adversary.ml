open Hwf_sim
open Hwf_adversary
open Hwf_workload

(* The model checker, the stagger adversary and the bivalence prober. *)

let fig3 ~quantum ~pris =
  Scenarios.consensus ~name:"f3" ~impl:Scenarios.Fig3 ~quantum
    ~layout:(List.map (fun p -> (0, p)) pris)

let test_explore_finds_fig3_bug () =
  let b = fig3 ~quantum:1 ~pris:[ 1; 1 ] in
  let o = Explore.explore b.scenario in
  Util.expect_fail "fig3 Q=1" o;
  match o.counterexample with
  | Some c ->
    Util.checkb "message mentions disagreement" (Util.contains c.message "disagreement");
    Util.checkb "counterexample trace is well-formed" (Wellformed.is_well_formed c.trace);
    Util.checkb "has a decision path" (c.decisions <> [])
  | None -> assert false

let test_explore_exhaustive_flag () =
  let b = fig3 ~quantum:8 ~pris:[ 1; 1 ] in
  let o = Explore.explore b.scenario in
  Util.checkb "exhaustive" o.exhaustive;
  let o' = Explore.explore ~max_runs:5 b.scenario in
  Util.checkb "not exhaustive when capped" (not o'.exhaustive)

let test_preemption_bound_restricts () =
  (* With bound 0, only run-to-completion schedules: far fewer runs. *)
  let b = fig3 ~quantum:8 ~pris:[ 1; 1; 1 ] in
  let o0 = Explore.explore ~preemption_bound:0 b.scenario in
  let o1 = Explore.explore ~preemption_bound:1 b.scenario in
  Util.checkb "bound 0 fewer runs than bound 1" (o0.runs < o1.runs);
  Util.expect_ok "bound 0" o0;
  Util.expect_ok "bound 1" o1

let test_explore_respects_check () =
  (* A check that always fails produces a counterexample on the first run. *)
  let config = Util.uni_config ~quantum:8 [ 1 ] in
  let scenario =
    Explore.
      {
        name = "alwaysfail";
        config;
        make =
          (fun () ->
            {
              programs = [| (fun () -> Eff.invocation "x" (fun () -> Eff.local "s")) |];
              check = (fun _ -> Error "nope");
            });
      }
  in
  let o = Explore.explore scenario in
  Util.checki "one run" 1 o.runs;
  Util.expect_fail "always fail" o

let test_iter_schedules_coverage () =
  let b = fig3 ~quantum:8 ~pris:[ 1; 1 ] in
  let seen = ref 0 in
  let n =
    Explore.iter_schedules b.scenario ~f:(fun ~pids _r ->
        incr seen;
        Util.checkb "nonempty path" (pids <> []);
        `Continue)
  in
  Util.checki "callback per run" n !seen;
  let o = Explore.explore b.scenario in
  Util.checki "same count as explore" o.runs n

let test_random_runs_deterministic () =
  let b = fig3 ~quantum:1 ~pris:[ 1; 1; 1 ] in
  let o1 = Explore.random_runs ~runs:300 ~seed:5 b.scenario in
  let o2 = Explore.random_runs ~runs:300 ~seed:5 b.scenario in
  Util.checki "same verdict run count" o1.runs o2.runs

let test_stagger_max_interleave_legal () =
  (* The staggering policy never produces ill-formed traces. *)
  let layout = Layout.uniform ~processors:2 ~per_processor:3 in
  let config = Layout.to_config ~quantum:5 layout in
  let x = Shared.make "x" 0 in
  let bodies =
    Array.init 6 (fun _ () ->
        for _ = 1 to 3 do
          Eff.invocation "op" (fun () ->
              let v = Shared.read x in
              Eff.local "l";
              Shared.write x (v + 1))
        done)
  in
  let r = Util.run ~config ~policy:(Stagger.max_interleave ()) bodies in
  Util.checkb "finished" (Array.for_all Fun.id r.finished)

let test_stagger_interleaves_more_than_rr () =
  let switches policy =
    let config = Util.uni_config ~quantum:2 [ 1; 1; 1 ] in
    let bodies =
      Array.init 3 (fun _ () ->
          Eff.invocation "op" (fun () ->
              for _ = 1 to 6 do
                Eff.local "s"
              done))
    in
    let r = Util.run ~config ~policy bodies in
    let rec count prev = function
      | [] -> 0
      | Trace.Stmt { pid; _ } :: rest -> (if pid <> prev then 1 else 0) + count pid rest
      | _ :: rest -> count prev rest
    in
    count (-1) (Trace.events r.trace)
  in
  let s_stagger = switches (Stagger.max_interleave ()) in
  Util.checkb
    (Printf.sprintf "stagger switches often (%d)" s_stagger)
    (s_stagger >= 6)

let test_preempt_after_rmw_triggers () =
  (* The policy switches right after a matching RMW. *)
  let config = Util.uni_config ~quantum:1 [ 1; 1 ] in
  let o = Hwf_objects.Cons_obj.make ~consensus_number:2 "target" in
  let bodies =
    Array.init 2 (fun pid () ->
        Eff.invocation "op" (fun () ->
            Eff.local "pre";
            ignore (Hwf_objects.Cons_obj.propose o pid);
            Eff.local "post"))
  in
  let policy = Stagger.preempt_after_rmw ~var_prefix:"target" ~fallback:Policy.first () in
  let r = Util.run ~config ~policy bodies in
  Util.checkb "finished" (Array.for_all Fun.id r.finished);
  (* After p0's propose, the policy must run p1 before p0's "post". *)
  let order =
    List.filter_map
      (function Trace.Stmt { pid; op; _ } -> Some (pid, Fmt.str "%a" Op.pp op) | _ -> None)
      (Trace.events r.trace)
  in
  let rec after_rmw = function
    | (0, s) :: (p, _) :: _ when Util.contains s "propose" -> p = 1
    | _ :: rest -> after_rmw rest
    | [] -> false
  in
  Util.checkb "switched after rmw" (after_rmw order)

let test_schedule_roundtrip () =
  let s = [ 0; 1; 1; 0; 2 ] in
  (match Schedule.of_string (Schedule.to_string s) with
  | Ok s' -> Alcotest.(check (list int)) "roundtrip" s s'
  | Error m -> Alcotest.fail m);
  (match Schedule.of_string "1 2\n2 1" with
  | Ok s' -> Alcotest.(check (list int)) "newlines ok" [ 0; 1; 1; 0 ] s'
  | Error m -> Alcotest.fail m);
  match Schedule.of_string "1 x 2" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted garbage"

let test_schedule_replay_reproduces () =
  (* A counterexample found by explore must still fail when replayed
     through the Schedule machinery. *)
  let b = fig3 ~quantum:1 ~pris:[ 1; 1 ] in
  match (Explore.explore b.scenario).counterexample with
  | None -> Alcotest.fail "expected counterexample"
  | Some c -> (
    match Schedule.verdict b.scenario c.decisions with
    | Error _ -> ()
    | Ok () -> Alcotest.fail "replay did not reproduce the failure")

let test_schedule_save_load () =
  let path = Filename.temp_file "hwf" ".sched" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Schedule.save ~path [ 2; 0; 1 ];
      match Schedule.load ~path with
      | Ok s -> Alcotest.(check (list int)) "load" [ 2; 0; 1 ] s
      | Error m -> Alcotest.fail m)

let test_shrink_minimizes () =
  let b = fig3 ~quantum:1 ~pris:[ 1; 1 ] in
  match (Explore.explore b.scenario).counterexample with
  | None -> Alcotest.fail "expected counterexample"
  | Some c ->
    let small = Shrink.shrink b.scenario c.decisions in
    Util.checkb "still fails" (Schedule.verdict b.scenario small <> Ok ());
    Util.checkb
      (Printf.sprintf "no longer than original (%d <= %d)" (List.length small)
         (List.length c.decisions))
      (List.length small <= List.length c.decisions);
    (* local minimality: removing any single decision cures the failure *)
    List.iteri
      (fun i _ ->
        let cand = List.filteri (fun j _ -> j <> i) small in
        Util.checkb "locally minimal" (Schedule.verdict b.scenario cand = Ok ()))
      small

(* S3 regression: [chunk_pass] must pick the next chunk size against the
   list as it is after the pass, not the stale pre-pass length. With
   [fails = mem 10] over [0..10], the size-5 pass collapses the list to
   the single needed element; against the stale length 11 the old code
   then scheduled a size-2 pass over that one-element list, burning a
   shrink-budget call on an empty-list candidate. We pin both the
   minimal result and the exact (deterministic) predicate-call count. *)
let test_shrink_chunk_size_not_stale () =
  let calls = ref 0 in
  let fails cand =
    incr calls;
    List.mem 10 cand
  in
  let small = Shrink.shrink_by ~fails (List.init 11 Fun.id) in
  Alcotest.(check (list int)) "minimal" [ 10 ] small;
  (* 1 initial check + 3 chunk-phase calls + 1 singles-phase call; the
     stale-length bug added a wasted empty-candidate call. *)
  Util.checki "no budget wasted on oversized chunks" 5 !calls

let test_shrink_noop_on_passing () =
  let b = fig3 ~quantum:8 ~pris:[ 1; 1 ] in
  let passing = [ 0; 0; 0; 1 ] in
  Alcotest.(check (list int))
    "unchanged" passing
    (Shrink.shrink b.scenario passing)

let test_bivalence_horizon_fig3 () =
  let probe quantum =
    let b = fig3 ~quantum ~pris:[ 1; 1 ] in
    Bivalence.probe ~max_runs:100_000 ~scenario:b.scenario ~decision:b.last_decision ()
  in
  let p1 = probe 1 and p8 = probe 8 in
  Util.checkb "both values reachable at Q=1" (List.length p1.decisions = 2);
  Util.checkb "horizon shrinks with quantum"
    (p8.horizon < p1.horizon);
  Util.checkb "runs recorded" (p1.runs > 0 && p8.runs > 0)

let test_bivalence_univalent_case () =
  (* A scenario with a single proposer is univalent: horizon 0. *)
  let b = fig3 ~quantum:8 ~pris:[ 1 ] in
  let p = Bivalence.probe ~scenario:b.scenario ~decision:b.last_decision () in
  Util.checki "horizon" 0 p.horizon;
  Util.checki "one decision" 1 (List.length p.decisions)

let () =
  Alcotest.run "adversary"
    [
      ( "explore",
        [
          Alcotest.test_case "finds fig3 bug" `Quick test_explore_finds_fig3_bug;
          Alcotest.test_case "exhaustive flag" `Quick test_explore_exhaustive_flag;
          Alcotest.test_case "preemption bound" `Quick test_preemption_bound_restricts;
          Alcotest.test_case "respects check" `Quick test_explore_respects_check;
          Alcotest.test_case "iter_schedules" `Quick test_iter_schedules_coverage;
          Alcotest.test_case "random deterministic" `Quick test_random_runs_deterministic;
        ] );
      ( "stagger",
        [
          Alcotest.test_case "legal traces" `Quick test_stagger_max_interleave_legal;
          Alcotest.test_case "interleaves densely" `Quick test_stagger_interleaves_more_than_rr;
          Alcotest.test_case "preempt after rmw" `Quick test_preempt_after_rmw_triggers;
        ] );
      ( "schedule",
        [
          Alcotest.test_case "roundtrip" `Quick test_schedule_roundtrip;
          Alcotest.test_case "replay reproduces" `Quick test_schedule_replay_reproduces;
          Alcotest.test_case "save/load" `Quick test_schedule_save_load;
        ] );
      ( "shrink",
        [
          Alcotest.test_case "minimizes" `Quick test_shrink_minimizes;
          Alcotest.test_case "chunk size not stale" `Quick
            test_shrink_chunk_size_not_stale;
          Alcotest.test_case "noop on passing" `Quick test_shrink_noop_on_passing;
        ] );
      ( "bivalence",
        [
          Alcotest.test_case "horizon vs quantum" `Quick test_bivalence_horizon_fig3;
          Alcotest.test_case "univalent case" `Quick test_bivalence_univalent_case;
        ] );
    ]
